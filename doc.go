// Package repro is a from-scratch Go reproduction of "Streaming Graph
// Algorithms in the Massively Parallel Computation Model" (Czumaj, Mishra,
// Mukherjee; PODC 2024). See README.md for the repository layout, the
// pluggable execution-engine architecture of the MPC simulator, the
// workload scenario registry, and how to run the experiment tables and
// benchmarks. The simulator and algorithm packages live under internal/,
// runnable examples under examples/, the experiment harness behind
// bench_test.go and cmd/experiments, and the differential-testing engine —
// which cross-checks every algorithm against the brute-force oracles over
// every registered scenario — in internal/harness.
//
// The hot path is allocation-free at steady state: sketch.Arena backs all
// vertex sketches of a machine shard with one contiguous buffer (sketches
// are cheap views, not heap objects), mpc.MessageBatch packs per-edge
// traffic into one length-prefixed frame buffer per (src, dst) machine
// pair, and the simulator reuses its per-round routing buffers. The
// profile is locked in by allocation-budget tests and the benchmark
// baseline BENCH_sketch.json, gated in CI by scripts/benchdiff.go (see
// README.md "Performance").
//
// The query path is batched and cached to match: mpc.Cluster.AggregateBatches
// tree-combines key-sorted frame batches (the flat counterpart of the map
// payloads it retired), core exposes ConnectedAll / ComponentsOf and their
// allocation-free Into variants so N connectivity queries cost one
// O(1/phi)-round collective, and a coordinator label cache — invalidated
// automatically by updates — answers repeated queries between updates with
// zero MPC rounds and zero allocations. workload.QueryMix generates
// read/write-mix streams, mpcstream -queries drives them oracle-verified,
// and the E15 table plus the gated rounds/query benchmark metric keep the
// round complexity from regressing (see README.md "Query API").
//
// The whole stack is crash-safe: internal/snapshot serializes every
// algorithm's full distributed state — machine shards, sketch arenas,
// coordinator caches, cluster Stats — into a versioned, CRC-guarded
// binary container (reusing the MessageBatch frame encoding), so a killed
// run restores bit-identically and continues without replaying its
// stream. workload.NewCrashSchedule injects seeded kill/restore cycles
// into any scenario (harness Options.CrashEvery, mpcstream -crash-every),
// the CLIs persist snapshots (-checkpoint/-resume), and the E16 table
// plus FuzzSnapshotDecode keep restores exact and corrupt snapshots
// rejected (see README.md "Checkpoint & recovery").
package repro
