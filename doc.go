// Package repro is a from-scratch Go reproduction of "Streaming Graph
// Algorithms in the Massively Parallel Computation Model" (Czumaj, Mishra,
// Mukherjee; PODC 2024). See README.md for the repository layout, the
// pluggable execution-engine architecture of the MPC simulator, the
// workload scenario registry, and how to run the experiment tables and
// benchmarks. The simulator and algorithm packages live under internal/,
// runnable examples under examples/, the experiment harness behind
// bench_test.go and cmd/experiments, and the differential-testing engine —
// which cross-checks every algorithm against the brute-force oracles over
// every registered scenario — in internal/harness.
package repro
