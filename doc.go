// Package repro is a from-scratch Go reproduction of "Streaming Graph
// Algorithms in the Massively Parallel Computation Model" (Czumaj, Mishra,
// Mukherjee; PODC 2024). See README.md for the layout: the MPC simulator
// and algorithm packages live under internal/, runnable examples under
// examples/, and the experiment harness behind bench_test.go and
// cmd/experiments regenerates every table in EXPERIMENTS.md.
package repro
