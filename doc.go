// Package repro is a from-scratch Go reproduction of "Streaming Graph
// Algorithms in the Massively Parallel Computation Model" (Czumaj, Mishra,
// Mukherjee; PODC 2024). See README.md for the repository layout, the
// pluggable execution-engine architecture of the MPC simulator, the
// workload scenario registry, and how to run the experiment tables and
// benchmarks. The simulator and algorithm packages live under internal/,
// runnable examples under examples/, the experiment harness behind
// bench_test.go and cmd/experiments, and the differential-testing engine —
// which cross-checks every algorithm against the brute-force oracles over
// every registered scenario — in internal/harness.
//
// The hot path is allocation-free at steady state: sketch.Arena backs all
// vertex sketches of a machine shard with one contiguous buffer (sketches
// are cheap views, not heap objects), mpc.MessageBatch packs per-edge
// traffic into one length-prefixed frame buffer per (src, dst) machine
// pair, and the simulator reuses its per-round routing buffers. The
// profile is locked in by allocation-budget tests and the benchmark
// baseline BENCH_sketch.json, gated in CI by scripts/benchdiff.go (see
// README.md "Performance").
package repro
