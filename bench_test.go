package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/workload"
)

// The benchmarks regenerate the experiment tables (one bench per
// experiment; the paper has no measured tables of its own, so each theorem
// of the evaluation-grade claims is converted into a table — see README.md
// "Experiments"). Each bench prints its table once and then times the core
// operation it measures.

var printed = map[string]bool{}

func printOnce(b *testing.B, t *experiments.Table) {
	b.Helper()
	if !printed[t.Title] {
		printed[t.Title] = true
		b.Log("\n" + t.String())
	}
}

func BenchmarkE1ConnectivityRounds(b *testing.B) {
	printOnce(b, experiments.E1ConnectivityRounds([]int{64, 128, 256}, []float64{0.5, 0.7}, 6, 1))
	dc, err := core.NewDynamicConnectivity(core.Config{N: 128, Phi: 0.6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewChurn(workload.Config{N: 128, Seed: 2, InsertBias: 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dc.ApplyBatch(gen.Next(dc.MaxBatch())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ConnectivityMemory(b *testing.B) {
	printOnce(b, experiments.E2ConnectivityMemory(128, 0.6, []int{100, 300, 600, 1000}, 2))
	for i := 0; i < b.N; i++ {
		experiments.E2ConnectivityMemory(64, 0.6, []int{50, 150}, uint64(i))
	}
}

func BenchmarkE3QueryRoundsVsAGM(b *testing.B) {
	printOnce(b, experiments.E3QueryVsAGM([]int{64, 128, 256, 512}, 3))
	for i := 0; i < b.N; i++ {
		experiments.E3QueryVsAGM([]int{64}, uint64(i))
	}
}

func BenchmarkE4ExactMSF(b *testing.B) {
	printOnce(b, experiments.E4ExactMSF([]int{64, 128, 256}, 8, 4))
	for i := 0; i < b.N; i++ {
		experiments.E4ExactMSF([]int{48}, 4, uint64(i))
	}
}

func BenchmarkE5ApproxMSF(b *testing.B) {
	printOnce(b, experiments.E5ApproxMSF(64, []float64{0.1, 0.25, 0.5}, 8, 5))
	for i := 0; i < b.N; i++ {
		experiments.E5ApproxMSF(32, []float64{0.25}, 4, uint64(i))
	}
}

func BenchmarkE6Bipartiteness(b *testing.B) {
	printOnce(b, experiments.E6Bipartiteness(64, 10, 6))
	for i := 0; i < b.N; i++ {
		experiments.E6Bipartiteness(32, 6, uint64(i))
	}
}

func BenchmarkE7InsertMatching(b *testing.B) {
	printOnce(b, experiments.E7InsertMatching(128, []float64{2, 4, 8}, 7))
	for i := 0; i < b.N; i++ {
		experiments.E7InsertMatching(48, []float64{2}, uint64(i))
	}
}

func BenchmarkE8DynamicMatching(b *testing.B) {
	printOnce(b, experiments.E8DynamicMatching(48, []float64{2, 4}, 8, 8))
	for i := 0; i < b.N; i++ {
		experiments.E8DynamicMatching(24, []float64{2}, 4, uint64(i))
	}
}

func BenchmarkE9BatchScaling(b *testing.B) {
	printOnce(b, experiments.E9BatchScaling(256, []float64{0.1, 0.25, 0.5, 1}, 5, 9))
	for i := 0; i < b.N; i++ {
		experiments.E9BatchScaling(64, []float64{0.5}, 3, uint64(i))
	}
}

func BenchmarkE10EulerTourAblation(b *testing.B) {
	printOnce(b, experiments.E10EulerTourAblation(512, []int{4, 16, 64}, 10))
	for i := 0; i < b.N; i++ {
		experiments.E10EulerTourAblation(128, []int{8}, uint64(i))
	}
}

func BenchmarkE11SketchCopies(b *testing.B) {
	printOnce(b, experiments.E11SketchCopiesAblation(64, []int{1, 2, 4, 24}, 6, []uint64{1, 2, 3, 4, 5, 6}))
	for i := 0; i < b.N; i++ {
		experiments.E11SketchCopiesAblation(32, []int{4}, 3, []uint64{uint64(i + 1)})
	}
}

func BenchmarkE12CommunicationPerRound(b *testing.B) {
	printOnce(b, experiments.E12CommunicationPerRound([]int{64, 128, 256}, 8, 12))
	for i := 0; i < b.N; i++ {
		experiments.E12CommunicationPerRound([]int{64}, 3, uint64(i))
	}
}

func BenchmarkE14ScenarioSweep(b *testing.B) {
	printOnce(b, experiments.E14ScenarioSweep(48, 6, nil, 14))
	for i := 0; i < b.N; i++ {
		experiments.E14ScenarioSweep(48, 3, []string{"powerlaw", "window"}, uint64(i))
	}
}

func BenchmarkE15QueryThroughput(b *testing.B) {
	printOnce(b, experiments.E15QueryThroughput([]int{64, 128, 256}, 8, 1024, 15))
	for i := 0; i < b.N; i++ {
		experiments.E15QueryThroughput([]int{64}, 4, 128, uint64(i))
	}
}

// BenchmarkBatchApplyThroughput times raw update throughput of the core
// algorithm (wall-clock of the simulator, not an MPC metric; useful for
// tracking implementation regressions).
func BenchmarkBatchApplyThroughput(b *testing.B) {
	dc, err := core.NewDynamicConnectivity(core.Config{N: 256, Phi: 0.6, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewChurn(workload.Config{N: 256, Seed: 12, InsertBias: 0.6})
	k := dc.MaxBatch()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		batch := gen.Next(k)
		if err := dc.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		updates += len(batch)
	}
	b.ReportMetric(float64(updates)/float64(b.N), "updates/op")
}

// benchmarkStep times raw synchronous rounds of the simulator substrate
// under a given execution engine: every machine scans its local store
// (deterministic local work, as an algorithm's shard scan would) and sends
// one word to a neighbor. This isolates the engine itself — the same
// StepFunc, message volume, and metering at every parallelism.
func benchmarkStep(b *testing.B, machines, parallelism int) {
	const storeWords = 512
	c := mpc.NewCluster(mpc.Config{
		Machines:    machines,
		LocalMemory: 1 << 20,
		Parallelism: parallelism,
	})
	c.LocalAll(func(m *mpc.Machine) {
		buf := make(mpc.U64s, storeWords)
		for i := range buf {
			buf[i] = uint64(m.ID + i)
		}
		m.Set("shard", buf)
	})
	// Per-machine sinks keep the scan from being optimized away without
	// sharing state across concurrent callbacks (StepFunc contract).
	sinks := make([]uint64, machines)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(func(m *mpc.Machine, inbox []mpc.Message) []mpc.Message {
			buf := m.Get("shard").(mpc.U64s)
			var acc uint64
			for pass := 0; pass < 4; pass++ {
				for _, v := range buf {
					acc = acc*31 + v
				}
			}
			sinks[m.ID] += acc
			return []mpc.Message{{To: (m.ID + 1) % machines, Payload: mpc.Word(acc)}}
		})
	}
	b.StopTimer()
	var sink uint64
	for _, s := range sinks {
		sink += s
	}
	_ = sink
}

// BenchmarkStepParallel compares the sequential executor against the
// worker-pool executor on identical rounds at several cluster sizes. The
// seq/pool pairs at each machine count are directly comparable; the pool
// uses runtime.NumCPU() workers.
func BenchmarkStepParallel(b *testing.B) {
	for _, machines := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("seq/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, 1)
		})
		b.Run(fmt.Sprintf("pool/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, -1)
		})
	}
}

// BenchmarkForestLink isolates the Euler-tour Link path.
func BenchmarkForestLink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := core.NewForest(core.Config{N: 256, Phi: 0.8, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		var edges []graph.WeightedEdge
		for v := 0; v < 64; v++ {
			edges = append(edges, graph.NewWeightedEdge(v, v+1, 1))
		}
		for j := 0; j < len(edges); j += 16 {
			if err := f.Link(edges[j : j+16]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
