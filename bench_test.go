package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/workload"
)

// The benchmarks regenerate the experiment tables (one bench per
// experiment; the paper has no measured tables of its own, so each theorem
// of the evaluation-grade claims is converted into a table — see README.md
// "Experiments"). Each bench prints its table once and then times the core
// operation it measures.

var printed = map[string]bool{}

func printOnce(b *testing.B, t *experiments.Table) {
	b.Helper()
	if !printed[t.Title] {
		printed[t.Title] = true
		b.Log("\n" + t.String())
	}
}

func BenchmarkE1ConnectivityRounds(b *testing.B) {
	printOnce(b, experiments.E1ConnectivityRounds([]int{64, 128, 256}, []float64{0.5, 0.7}, 6, 1))
	dc, err := core.NewDynamicConnectivity(core.Config{N: 128, Phi: 0.6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewChurn(workload.Config{N: 128, Seed: 2, InsertBias: 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dc.ApplyBatch(gen.Next(dc.MaxBatch())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ConnectivityMemory(b *testing.B) {
	printOnce(b, experiments.E2ConnectivityMemory(128, 0.6, []int{100, 300, 600, 1000}, 2))
	for i := 0; i < b.N; i++ {
		experiments.E2ConnectivityMemory(64, 0.6, []int{50, 150}, uint64(i))
	}
}

func BenchmarkE3QueryRoundsVsAGM(b *testing.B) {
	printOnce(b, experiments.E3QueryVsAGM([]int{64, 128, 256, 512}, 3))
	for i := 0; i < b.N; i++ {
		experiments.E3QueryVsAGM([]int{64}, uint64(i))
	}
}

func BenchmarkE4ExactMSF(b *testing.B) {
	printOnce(b, experiments.E4ExactMSF([]int{64, 128, 256}, 8, 4))
	for i := 0; i < b.N; i++ {
		experiments.E4ExactMSF([]int{48}, 4, uint64(i))
	}
}

func BenchmarkE5ApproxMSF(b *testing.B) {
	printOnce(b, experiments.E5ApproxMSF(64, []float64{0.1, 0.25, 0.5}, 8, 5))
	for i := 0; i < b.N; i++ {
		experiments.E5ApproxMSF(32, []float64{0.25}, 4, uint64(i))
	}
}

func BenchmarkE6Bipartiteness(b *testing.B) {
	printOnce(b, experiments.E6Bipartiteness(64, 10, 6))
	for i := 0; i < b.N; i++ {
		experiments.E6Bipartiteness(32, 6, uint64(i))
	}
}

func BenchmarkE7InsertMatching(b *testing.B) {
	printOnce(b, experiments.E7InsertMatching(128, []float64{2, 4, 8}, 7))
	for i := 0; i < b.N; i++ {
		experiments.E7InsertMatching(48, []float64{2}, uint64(i))
	}
}

func BenchmarkE8DynamicMatching(b *testing.B) {
	printOnce(b, experiments.E8DynamicMatching(48, []float64{2, 4}, 8, 8))
	for i := 0; i < b.N; i++ {
		experiments.E8DynamicMatching(24, []float64{2}, 4, uint64(i))
	}
}

func BenchmarkE9BatchScaling(b *testing.B) {
	printOnce(b, experiments.E9BatchScaling(256, []float64{0.1, 0.25, 0.5, 1}, 5, 9))
	for i := 0; i < b.N; i++ {
		experiments.E9BatchScaling(64, []float64{0.5}, 3, uint64(i))
	}
}

func BenchmarkE10EulerTourAblation(b *testing.B) {
	printOnce(b, experiments.E10EulerTourAblation(512, []int{4, 16, 64}, 10))
	for i := 0; i < b.N; i++ {
		experiments.E10EulerTourAblation(128, []int{8}, uint64(i))
	}
}

func BenchmarkE11SketchCopies(b *testing.B) {
	printOnce(b, experiments.E11SketchCopiesAblation(64, []int{1, 2, 4, 24}, 6, []uint64{1, 2, 3, 4, 5, 6}))
	for i := 0; i < b.N; i++ {
		experiments.E11SketchCopiesAblation(32, []int{4}, 3, []uint64{uint64(i + 1)})
	}
}

func BenchmarkE12CommunicationPerRound(b *testing.B) {
	printOnce(b, experiments.E12CommunicationPerRound([]int{64, 128, 256}, 8, 12))
	for i := 0; i < b.N; i++ {
		experiments.E12CommunicationPerRound([]int{64}, 3, uint64(i))
	}
}

func BenchmarkE14ScenarioSweep(b *testing.B) {
	printOnce(b, experiments.E14ScenarioSweep(48, 6, nil, 14))
	for i := 0; i < b.N; i++ {
		experiments.E14ScenarioSweep(48, 3, []string{"powerlaw", "window"}, uint64(i))
	}
}

func BenchmarkE15QueryThroughput(b *testing.B) {
	printOnce(b, experiments.E15QueryThroughput([]int{64, 128, 256}, 8, 1024, 15))
	for i := 0; i < b.N; i++ {
		experiments.E15QueryThroughput([]int{64}, 4, 128, uint64(i))
	}
}

// BenchmarkBatchApplyThroughput times raw update throughput of the core
// algorithm (wall-clock of the simulator, not an MPC metric; useful for
// tracking implementation regressions).
func BenchmarkBatchApplyThroughput(b *testing.B) {
	dc, err := core.NewDynamicConnectivity(core.Config{N: 256, Phi: 0.6, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewChurn(workload.Config{N: 256, Seed: 12, InsertBias: 0.6})
	k := dc.MaxBatch()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		batch := gen.Next(k)
		if err := dc.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		updates += len(batch)
	}
	b.ReportMetric(float64(updates)/float64(b.N), "updates/op")
}

// stepBenchWorkers is the worker count of the pool variants of
// BenchmarkStepParallel: fixed (not NumCPU) so the speedup-vs-seq metric is
// comparable across machines and gateable in CI.
const stepBenchWorkers = 8

// stepStoreWords returns the per-machine store size (and therefore the
// per-machine local work, which scans the store) of one BenchmarkStepParallel
// round. The uniform variant gives every machine 512 words. The skewed
// variant spreads the same total budget by a powerlaw (Zipf s=1) over a
// deterministically shuffled machine order — the head machine carries
// total/H(machines) ≈ 13% of all work at 1024 machines — modeling the hot
// machines of the powerlaw/bursty/community scenarios, where a static
// contiguous split serializes on the shard holding the head.
func stepStoreWords(machines int, skewed bool) []int {
	const uniform = 512
	ws := make([]int, machines)
	if !skewed {
		for i := range ws {
			ws[i] = uniform
		}
		return ws
	}
	h := 0.0
	for r := 0; r < machines; r++ {
		h += 1.0 / float64(r+1)
	}
	total := float64(machines * uniform)
	for i := range ws {
		// Odd multiplier mod a power-of-two machine count is a bijection:
		// a fixed, seedless shuffle of ranks over machine ids.
		r := (i * 2654435761) % machines
		w := int(total / (float64(r+1) * h))
		if w < 32 {
			w = 32
		}
		ws[i] = w
	}
	return ws
}

// newStepCluster builds the BenchmarkStepParallel instance: a cluster whose
// machines each hold a store sized by stepStoreWords.
func newStepCluster(machines, parallelism int, skewed bool) *mpc.Cluster {
	c := mpc.NewCluster(mpc.Config{
		Machines:    machines,
		LocalMemory: 1 << 20,
		Parallelism: parallelism,
	})
	ws := stepStoreWords(machines, skewed)
	c.LocalAll(func(m *mpc.Machine) {
		buf := make(mpc.U64s, ws[m.ID])
		for i := range buf {
			buf[i] = uint64(m.ID + i)
		}
		m.Set("shard", buf)
	})
	return c
}

// stepRound is the measured round: every machine scans its local store
// (deterministic local work, as an algorithm's shard scan would) and sends
// one word to a neighbor. Per-machine sinks keep the scan from being
// optimized away without sharing state across concurrent callbacks
// (StepFunc contract).
func stepRound(c *mpc.Cluster, machines int, sinks []uint64) {
	c.Step(func(m *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		buf := m.Get("shard").(mpc.U64s)
		var acc uint64
		for pass := 0; pass < 4; pass++ {
			for _, v := range buf {
				acc = acc*31 + v
			}
		}
		sinks[m.ID] += acc
		return []mpc.Message{{To: (m.ID + 1) % machines, Payload: mpc.Word(acc)}}
	})
}

// seqStepNs caches the sequential-executor per-round wall clock for each
// (machines, skewed) shape, measured once with a fixed iteration count; the
// pool variants divide by it to report the speedup-vs-seq derived metric.
var seqStepNs = map[string]float64{}

func seqStepBaselineNs(machines int, skewed bool) float64 {
	key := fmt.Sprintf("%d/%v", machines, skewed)
	if ns, ok := seqStepNs[key]; ok {
		return ns
	}
	c := newStepCluster(machines, 1, skewed)
	sinks := make([]uint64, machines)
	const warm, timed = 4, 24
	for i := 0; i < warm; i++ {
		stepRound(c, machines, sinks)
	}
	start := time.Now()
	for i := 0; i < timed; i++ {
		stepRound(c, machines, sinks)
	}
	ns := float64(time.Since(start).Nanoseconds()) / timed
	seqStepNs[key] = ns
	return ns
}

// benchmarkStep times raw synchronous rounds of the simulator substrate
// under a given execution engine. This isolates the engine itself — the
// same StepFunc, message volume, and metering at every parallelism. Pool
// variants additionally report speedup-vs-seq (sequential ns/round over
// pool ns/round, higher is better), the derived metric the benchdiff gate
// enforces so the pool silently regressing to parity fails CI.
func benchmarkStep(b *testing.B, machines, parallelism int, skewed bool) {
	c := newStepCluster(machines, parallelism, skewed)
	sinks := make([]uint64, machines)
	var seqNs float64
	if parallelism != 1 {
		seqNs = seqStepBaselineNs(machines, skewed)
	}
	// Warm past the engine's one-time buffer growth (outboxes, routing
	// buckets) so the timed loop measures the steady state.
	for i := 0; i < 4; i++ {
		stepRound(c, machines, sinks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		stepRound(c, machines, sinks)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if parallelism != 1 && b.N > 0 && elapsed > 0 {
		poolNs := float64(elapsed.Nanoseconds()) / float64(b.N)
		b.ReportMetric(seqNs/poolNs, "speedup-vs-seq")
	}
	var sink uint64
	for _, s := range sinks {
		sink += s
	}
	_ = sink
}

// BenchmarkStepParallel compares the sequential executor against the
// worker-pool executor (stepBenchWorkers workers) on identical rounds at
// several cluster sizes and two load shapes: uniform per-machine work and
// the powerlaw-skewed variant that measures the work-stealing scheduler.
// The seq/pool pairs at each machine count are directly comparable.
func BenchmarkStepParallel(b *testing.B) {
	for _, machines := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("seq/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, 1, false)
		})
		b.Run(fmt.Sprintf("pool/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, stepBenchWorkers, false)
		})
		b.Run(fmt.Sprintf("seq-skew/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, 1, true)
		})
		b.Run(fmt.Sprintf("pool-skew/%d", machines), func(b *testing.B) {
			benchmarkStep(b, machines, stepBenchWorkers, true)
		})
	}
}

// BenchmarkForestLink isolates the Euler-tour Link path.
func BenchmarkForestLink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := core.NewForest(core.Config{N: 256, Phi: 0.8, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		var edges []graph.WeightedEdge
		for v := 0; v < 64; v++ {
			edges = append(edges, graph.NewWeightedEdge(v, v+1, 1))
		}
		for j := 0; j < len(edges); j += 16 {
			if err := f.Link(edges[j : j+16]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
