// Command mpcstream runs one algorithm over a generated update stream on
// the MPC simulator and reports solution and resource statistics.
//
// Usage:
//
//	mpcstream -algo connectivity -n 256 -phi 0.6 -batches 20
//	mpcstream -algo msf -n 128 -maxweight 64
//	mpcstream -algo bipartite -n 128
//	mpcstream -algo matching -n 128 -alpha 4
//	mpcstream -algo connectivity -stream trace.txt
//	mpcstream -algo connectivity -n 4096 -parallelism 8
//	mpcstream -algo connectivity -n 1024 -queries 512
//	mpcstream -algo nowickionak -scenario bursty -n 256
//
// Algorithms: connectivity, msf (exact, insertion-only), approxmsf,
// bipartite, matching (insertion-only greedy), dynmatching (AKLY),
// nowickionak (with -scenario). With -stream, updates are replayed from a
// file in the streamio text format instead of being generated; with
// -trace, from a segmented binary trace (internal/trace format), streamed
// one segment at a time so a trace far larger than memory replays in
// O(segment). -stream, -trace, and -scenario are mutually exclusive. With
// -scenario, the named workload-registry stream is run through the
// differential harness: every batch is cross-checked against the
// brute-force oracle and the run fails loudly on divergence. -parallelism
// selects the simulator's execution engine (worker-pool rounds); results
// and reported statistics are identical at every setting. -queries turns
// the connectivity run into a read/write mix: after every update batch the
// given number of connectivity queries is answered through one batched
// ConnectedAll collective, oracle-verified, and reported as rounds/query.
//
// Ingestion (see internal/trace): -convert in.edges converts a SNAP-style
// text edge list ("u v", "u v t", or "u v w t" lines, timestamps
// non-decreasing) into the output(s) named by -trace (binary) and/or
// -stream (text), streaming both ends; -window W expires each edge W time
// units after insertion, emitting deletions. Self-loops and duplicate live
// edges are dropped and counted. The replay paths then consume either
// format interchangeably:
//
//	mpcstream -convert collab.edges -window 40 -trace collab.trace
//	mpcstream -algo connectivity -trace collab.trace
//	mpcstream -algo connectivity -trace collab.trace -trace-batches 50 -checkpoint c.snap
//	mpcstream -algo connectivity -trace collab.trace -resume c.snap
//
// A -trace replay records how many trace batches it applied in every
// checkpoint, so -resume seeks straight to the next segment boundary via
// the trace's footer index instead of re-reading the prefix; -trace-batches
// caps the replay to make such mid-trace checkpoints. -resume with -stream
// keeps its historical meaning: the text file holds further updates, all
// of which are replayed on top of the snapshot.
//
// Checkpoint & recovery (see internal/snapshot): -checkpoint writes a
// crash-safe snapshot of the final connectivity state (plus the mirror
// graph) so a later invocation can continue the run without replaying it;
// -resume restores such a snapshot before replaying a -stream trace of
// further updates, oracle-verified against the restored mirror. Checkpoints
// form a chain: when -resume and -checkpoint name the same path, the new
// checkpoint is an incremental delta carrying only the replayed updates and
// the state they dirtied, compacted into a fresh full base every
// -max-delta-chain deltas; stale temp files from an interrupted checkpoint
// are swept before loading. With -scenario, -crash-every k injects a seeded
// kill/restore cycle roughly every k batches into the differential harness
// run — every scenario doubles as a crash/recovery scenario, and the oracle
// checks must still pass after every restore — and -delta-every k cuts a
// chain checkpoint every k batches, so each restore replays a full base
// plus a multi-delta chain.
//
// Elasticity (see internal/snapshot doc): -resume-machines M re-shards the
// restored state onto a fleet of exactly M machines before replaying — the
// deterministic vertex→machine map makes the migration a pure state
// redistribution, rejected with a diagnostic when the shrunken per-machine
// memory budget cannot hold it. With -scenario, -fault-every k kills a
// seeded machine roughly every k batches; each loss is recovered by
// re-sharding the last checkpoint onto the surviving fleet and replaying
// the in-flight batches, with the oracle still checking every batch.
//
//	mpcstream -algo connectivity -n 256 -batches 50 -checkpoint state.snap
//	mpcstream -algo connectivity -resume state.snap -stream more.txt
//	mpcstream -algo connectivity -resume state.snap -stream more.txt -checkpoint state.snap
//	mpcstream -algo connectivity -resume state.snap -resume-machines 9 -stream more.txt
//	mpcstream -algo connectivity -scenario powerlaw -batches 200 -crash-every 50 -delta-every 10
//	mpcstream -algo connectivity -scenario powerlaw -batches 200 -fault-every 60
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the run (see
// README.md "Profiling").
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/msf"
	"repro/internal/oracle"
	"repro/internal/profiling"
	"repro/internal/snapshot"
	"repro/internal/streamio"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	algo := flag.String("algo", "connectivity", "algorithm to run")
	n := flag.Int("n", 256, "number of vertices")
	phi := flag.Float64("phi", 0.6, "local-memory exponent")
	batches := flag.Int("batches", 20, "number of update batches")
	seed := flag.Uint64("seed", 1, "workload and algorithm seed")
	alpha := flag.Float64("alpha", 4, "matching approximation parameter")
	eps := flag.Float64("eps", 0.25, "MSF approximation parameter")
	maxWeight := flag.Int64("maxweight", 64, "maximum edge weight")
	insertBias := flag.Float64("insertbias", 0.6, "probability of keeping an existing edge")
	streamFile := flag.String("stream", "", "replay updates from a streamio-format text file (with -convert: the text output path)")
	traceFile := flag.String("trace", "", "replay updates from a binary trace file (internal/trace format; with -convert: the binary output path)")
	convertFile := flag.String("convert", "", "convert this SNAP-style edge-list file into the -trace and/or -stream output(s) instead of running an algorithm")
	window := flag.Int64("window", 0, "with -convert: expire each edge this many time units after insertion, emitting deletions (0 = keep edges forever)")
	traceBatches := flag.Int("trace-batches", 0, "with -trace replay: apply at most this many trace batches (0 = all); combine with -checkpoint and a later -resume to continue mid-trace")
	queries := flag.Int("queries", 0,
		"read/write mix: issue this many batched connectivity queries after every update batch (-algo connectivity; answers are oracle-verified)")
	scenario := flag.String("scenario", "",
		fmt.Sprintf("run a registered workload scenario under the differential harness (have %v)", workload.Names()))
	parallelism := flag.Int("parallelism", runtime.NumCPU(),
		"execution-engine workers per cluster (0 or 1 = sequential, <0 = NumCPU); results are identical at every setting")
	checkpointFile := flag.String("checkpoint", "",
		"write a crash-safe snapshot of the final state to this file (-algo connectivity, generated or -stream mode)")
	resumeFile := flag.String("resume", "",
		"restore state from a -checkpoint snapshot before replaying further updates (requires -stream)")
	resumeMachines := flag.Int("resume-machines", 0,
		"with -resume: re-shard the restored state onto a fleet of exactly this many machines before replaying (0 = keep the snapshot's shape)")
	crashEvery := flag.Int("crash-every", 0,
		"with -scenario: inject a seeded kill+checkpoint+restore cycle roughly every k batches (0 disables)")
	faultEvery := flag.Int("fault-every", 0,
		"with -scenario: kill a seeded machine roughly every k batches; each loss recovers by re-sharding the last checkpoint onto the survivors and replaying the journal (0 disables)")
	deltaEvery := flag.Int("delta-every", 0,
		"with -scenario: checkpoint every k batches into an in-memory chain (full base, then deltas), so crash restores replay base+chain (0 disables)")
	maxDeltaChain := flag.Int("max-delta-chain", 8,
		"delta checkpoints allowed per full base before compaction (0 = full checkpoints only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate flags before constructing generators or clusters, so a bad
	// combination is a usage error on stderr, not a raw panic from deep
	// inside a constructor (e.g. workload.NewQueryMix on n < 2).
	if err := validateFlags(flagSet{
		n: *n, batches: *batches, queries: *queries, crashEvery: *crashEvery,
		faultEvery: *faultEvery, resumeMachines: *resumeMachines, deltaEvery: *deltaEvery,
		maxDeltaChain: *maxDeltaChain, traceBatches: *traceBatches, maxWeight: *maxWeight,
		window: *window, insertBias: *insertBias, algo: *algo, streamFile: *streamFile,
		traceFile: *traceFile, convertFile: *convertFile, scenario: *scenario,
		checkpointFile: *checkpointFile, resumeFile: *resumeFile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(2)
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(2)
	}
	switch {
	case *convertFile != "":
		err = runConvert(*convertFile, *traceFile, *streamFile, *window)
	case *traceFile != "":
		err = runTrace(*algo, *traceFile, *phi, *seed, *parallelism, *maxDeltaChain, *resumeMachines, *traceBatches, *resumeFile, *checkpointFile)
	case *streamFile != "":
		err = runStream(*algo, *streamFile, *phi, *seed, *parallelism, *maxDeltaChain, *resumeMachines, *resumeFile, *checkpointFile)
	case *scenario != "":
		err = runScenario(*algo, *scenario, harness.Options{
			N: *n, Batches: *batches, Seed: *seed, Phi: *phi, Parallelism: *parallelism,
			Alpha: *alpha, Eps: *eps, MaxWeight: *maxWeight, CrashEvery: *crashEvery,
			FaultEvery:      *faultEvery,
			CheckpointEvery: *deltaEvery, MaxDeltaChain: *maxDeltaChain,
		})
	default:
		err = run(*algo, *n, *phi, *batches, *seed, *alpha, *eps, *maxWeight, *insertBias, *parallelism, *queries, *maxDeltaChain, *checkpointFile)
	}
	// Profiles are written even for a failed run — a hang or slow failure
	// is exactly when a profile is wanted.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", perr)
		if err == nil {
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(1)
	}
}

// flagSet carries every parsed flag validateFlags cross-checks; a struct
// rather than a positional list, so adding a flag cannot silently swap two
// ints at a call site.
type flagSet struct {
	n, batches, queries, crashEvery, faultEvery int
	resumeMachines, deltaEvery, maxDeltaChain   int
	traceBatches                                int
	maxWeight, window                           int64
	insertBias                                  float64
	algo, streamFile, traceFile, convertFile    string
	scenario, checkpointFile, resumeFile        string
}

// validateFlags rejects invalid or incoherent flag combinations up front.
func validateFlags(f flagSet) error {
	if f.n < 2 {
		return fmt.Errorf("-n must be at least 2 (got %d)", f.n)
	}
	// The generator config check covers -maxweight and -insertbias: a bad
	// value is a usage error here, not a panic inside workload.NewChurn.
	if err := (workload.Config{N: f.n, MaxWeight: f.maxWeight, InsertBias: f.insertBias}).Validate(); err != nil {
		return err
	}
	if f.batches < 0 {
		return fmt.Errorf("-batches must be non-negative (got %d)", f.batches)
	}
	if f.queries < 0 {
		return fmt.Errorf("-queries must be non-negative (got %d)", f.queries)
	}
	if f.crashEvery < 0 {
		return fmt.Errorf("-crash-every must be non-negative (got %d)", f.crashEvery)
	}
	if f.window < 0 {
		return fmt.Errorf("-window must be non-negative (got %d)", f.window)
	}
	if f.traceBatches < 0 {
		return fmt.Errorf("-trace-batches must be non-negative (got %d)", f.traceBatches)
	}
	if f.convertFile != "" {
		// Conversion mode: -trace/-stream name the outputs.
		if f.traceFile == "" && f.streamFile == "" {
			return fmt.Errorf("-convert needs at least one output: -trace (binary) and/or -stream (text)")
		}
		if f.scenario != "" || f.resumeFile != "" || f.checkpointFile != "" || f.queries > 0 ||
			f.crashEvery > 0 || f.faultEvery > 0 || f.deltaEvery > 0 || f.traceBatches > 0 {
			return fmt.Errorf("-convert only combines with -trace/-stream outputs and -window")
		}
		return nil
	}
	if f.window > 0 {
		return fmt.Errorf("-window only applies to -convert")
	}
	// Replay/run modes: the three stream selectors are mutually exclusive.
	set := 0
	for _, s := range []string{f.streamFile, f.traceFile, f.scenario} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return fmt.Errorf("-stream, -trace, and -scenario are mutually exclusive (pick one input)")
	}
	if f.traceBatches > 0 && f.traceFile == "" {
		return fmt.Errorf("-trace-batches requires -trace")
	}
	if f.queries > 0 && set > 0 {
		// Fail loudly rather than silently running a write-only stream: the
		// read/write mix is only wired into the generated-stream mode.
		return fmt.Errorf("-queries is only supported in the generated-stream mode (not with -stream, -trace, or -scenario)")
	}
	if f.queries > 0 && f.algo != "connectivity" {
		return fmt.Errorf("-queries requires -algo connectivity, got %q", f.algo)
	}
	if f.crashEvery > 0 && f.scenario == "" {
		return fmt.Errorf("-crash-every requires -scenario")
	}
	if f.faultEvery < 0 {
		return fmt.Errorf("-fault-every must be non-negative (got %d)", f.faultEvery)
	}
	if f.faultEvery > 0 && f.scenario == "" {
		return fmt.Errorf("-fault-every requires -scenario")
	}
	if f.resumeMachines < 0 {
		return fmt.Errorf("-resume-machines must be non-negative (got %d)", f.resumeMachines)
	}
	if f.resumeMachines > 0 && f.resumeFile == "" {
		return fmt.Errorf("-resume-machines requires -resume")
	}
	if f.deltaEvery < 0 {
		return fmt.Errorf("-delta-every must be non-negative (got %d)", f.deltaEvery)
	}
	if f.maxDeltaChain < 0 {
		return fmt.Errorf("-max-delta-chain must be non-negative (got %d)", f.maxDeltaChain)
	}
	if f.deltaEvery > 0 && f.scenario == "" {
		return fmt.Errorf("-delta-every requires -scenario")
	}
	if f.resumeFile != "" && f.streamFile == "" && f.traceFile == "" {
		return fmt.Errorf("-resume requires -stream or -trace: a generated workload cannot continue a restored graph " +
			"(its generator state is not part of the snapshot)")
	}
	if f.checkpointFile != "" && (f.scenario != "" || f.algo != "connectivity") {
		return fmt.Errorf("-checkpoint is supported for -algo connectivity in the generated, -stream, and -trace modes")
	}
	return nil
}

// runScenario streams a registered scenario through the named algorithm
// under the differential harness, oracle-checking every batch.
func runScenario(algo, scenario string, opt harness.Options) error {
	rep, err := harness.Run(algo, scenario, opt)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func run(algo string, n int, phi float64, batches int, seed uint64, alpha, eps float64, maxWeight int64, insertBias float64, parallelism, queries, maxDeltaChain int, checkpointFile string) error {
	cfg := core.Config{N: n, Phi: phi, Seed: seed, Parallelism: parallelism}
	gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 1, MaxWeight: maxWeight, InsertBias: insertBias})
	switch algo {
	case "connectivity":
		dc, err := core.NewDynamicConnectivity(cfg)
		if err != nil {
			return err
		}
		mix := workload.NewQueryMix(gen, n, seed+2)
		queryRounds, answered, connected := 0, 0, 0
		for i := 0; i < batches; i++ {
			if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
				return err
			}
			if queries == 0 {
				continue
			}
			raw := mix.NextQueries(queries)
			pairs := make([]core.Pair, len(raw))
			for j, q := range raw {
				pairs[j] = core.Pair{U: q[0], V: q[1]}
			}
			before := dc.Cluster().Stats().Rounds
			ans := dc.ConnectedAll(pairs)
			queryRounds += dc.Cluster().Stats().Rounds - before
			want := mix.OracleAnswers(raw)
			for j := range ans {
				if ans[j] != want[j] {
					return fmt.Errorf("batch %d: query %v answered %v, oracle %v", i, raw[j], ans[j], want[j])
				}
				if ans[j] {
					connected++
				}
			}
			answered += len(ans)
		}
		fmt.Printf("components: %d (oracle %d)\n", dc.NumComponents(), oracle.NumComponents(gen.Mirror()))
		fmt.Printf("forest edges: %d\n", len(dc.SnapshotForest()))
		if answered > 0 {
			fmt.Printf("queries: %d batched, %d connected, %d query rounds (%.4f rounds/query, oracle-verified)\n",
				answered, connected, queryRounds, float64(queryRounds)/float64(answered))
		}
		report(dc.Cluster().Stats(), batches)
		if checkpointFile != "" {
			// A fresh chain is never linked to on-disk state, so this writes a
			// full base (and sweeps any stale deltas left at that path).
			st := &streamState{n: n, phi: phi, seed: seed, parallelism: parallelism, dc: dc, mirror: gen.Mirror()}
			if err := writeCheckpoint(snapshot.OpenChain(checkpointFile, maxDeltaChain), st); err != nil {
				return err
			}
		}
	case "msf":
		m, err := msf.NewExactMSF(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			b := gen.NextInsertOnly(m.Forest().Config().MaxBatch())
			var edges []graph.WeightedEdge
			for _, u := range b {
				edges = append(edges, graph.WeightedEdge{Edge: u.Edge, Weight: u.Weight})
			}
			if err := m.InsertBatch(edges); err != nil {
				return err
			}
		}
		_, want := oracle.MSF(gen.Mirror())
		fmt.Printf("msf weight: %d (kruskal %d, exchange waves %d)\n", m.Weight(), want, m.SwapWaves())
		report(m.Forest().Cluster().Stats(), batches)
	case "approxmsf":
		a, err := msf.NewApproxMSF(cfg, eps, maxWeight)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			if err := a.ApplyBatch(gen.Next(a.MaxBatch())); err != nil {
				return err
			}
		}
		_, want := oracle.MSF(gen.Mirror())
		fmt.Printf("approx msf weight: %d (kruskal %d, levels %d, eps %.2f)\n", a.Weight(), want, a.Levels(), eps)
	case "bipartite":
		bt, err := bipartite.New(cfg)
		if err != nil {
			return err
		}
		bgen := workload.NewBipartiteish(n, seed+1, batches/2)
		for i := 0; i < batches; i++ {
			if err := bt.ApplyBatch(bgen.Next(bt.MaxBatch())); err != nil {
				return err
			}
			fmt.Printf("step %2d: bipartite=%v (oracle %v)\n", i, bt.IsBipartite(), oracle.IsBipartite(bgen.Mirror()))
		}
		report(bt.Graph().Cluster().Stats(), batches)
	case "matching":
		gm, err := matching.NewGreedyInsertOnly(n, alpha, 0)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			b := gen.NextInsertOnly(n / 8)
			var edges []graph.Edge
			for _, u := range b {
				edges = append(edges, u.Edge)
			}
			if err := gm.InsertBatch(edges); err != nil {
				return err
			}
		}
		fmt.Printf("matching size: %d (cap %d, max matching %d)\n",
			gm.Size(), gm.Cap(), oracle.MaxMatchingSize(gen.Mirror()))
		report(gm.Cluster().Stats(), batches)
	case "dynmatching":
		d, err := matching.NewAKLYDynamic(n, alpha, seed)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			if err := d.ApplyBatch(gen.Next(n / 8)); err != nil {
				return err
			}
		}
		fmt.Printf("matching size: %d (max matching %d, instances %d, sampler words %d)\n",
			d.Size(), oracle.MaxMatchingSize(gen.Mirror()), d.Instances(), d.SparsifierWords())
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// Section tags of the CLI layer of a snapshot: run metadata and the mirror
// graph, written ahead of the connectivity state so a resuming process can
// size its cluster before restoring. Delta containers use their own pair:
// the meta echo is repeated (tiny, keeps every container self-validating)
// and the mirror section carries only the updates applied since the last
// acknowledged checkpoint.
const (
	tagCLIMeta        = 0x50
	tagCLIMirror      = 0x51
	tagCLIMetaDelta   = 0x52
	tagCLIMirrorDelta = 0x53
)

// streamState is the CLI's checkpoint unit: the run parameters, the mirror
// graph (so a resumed replay can still be oracle-verified), and the
// connectivity instance. It implements snapshot.DeltaState, so a checkpoint
// chain can alternate full bases with cheap deltas.
type streamState struct {
	n           int
	phi         float64
	seed        uint64
	parallelism int
	// vpm is the cluster's VerticesPerMachine override (0 = default shape).
	// It is part of the meta echo so a resume rebuilds the fleet at the
	// machine count the checkpoint was cut at — which, after a
	// -resume-machines re-shard, differs from the config default.
	vpm int
	// applied counts the input batches applied to the state since the start
	// of its stream. It rides the meta echo so a -trace -resume can seek the
	// trace's footer index straight to batch `applied` instead of replaying
	// the prefix. (Text -stream resumes replay a separate continuation file,
	// so they ignore it.)
	applied int
	dc      *core.DynamicConnectivity
	mirror  *graph.Graph

	// pending journals every update applied since the last acknowledged
	// checkpoint; delta checkpoints ship it instead of the whole mirror.
	pending graph.Batch
}

// Checkpoint implements snapshot.Checkpointer.
func (s *streamState) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagCLIMeta)
	e.Int(s.n)
	e.F64(s.phi)
	e.U64(s.seed)
	e.Int(s.vpm)
	e.Int(s.applied)
	e.Begin(tagCLIMirror)
	snapshot.EncodeGraph(e, s.mirror)
	s.dc.Checkpoint(e)
}

// Restore implements snapshot.Restorer: the cluster is rebuilt from the
// snapshot's run metadata (the current -parallelism flag still selects the
// execution engine — it is not state) and the mirror graph and connectivity
// state are reloaded.
func (s *streamState) Restore(d *snapshot.Decoder) error {
	d.Begin(tagCLIMeta)
	s.n, s.phi, s.seed = d.Int(), d.F64(), d.U64()
	s.vpm = d.Int()
	s.applied = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	// The meta section is the config source here (nothing to cross-check it
	// against yet), so sanity-validate it before sizing a graph or cluster
	// from it: a malformed value must be a diagnostic, not a make() panic.
	if s.n < 2 || s.n > 1<<31 {
		return fmt.Errorf("snapshot declares %d vertices (want 2..2^31)", s.n)
	}
	if s.phi <= 0 || s.phi > 1 {
		return fmt.Errorf("snapshot declares Phi=%v (want (0,1])", s.phi)
	}
	if s.vpm < 0 || s.vpm > s.n {
		return fmt.Errorf("snapshot declares VerticesPerMachine=%d (want 0..%d)", s.vpm, s.n)
	}
	if s.applied < 0 {
		return fmt.Errorf("snapshot declares %d applied batches (want >= 0)", s.applied)
	}
	d.Begin(tagCLIMirror)
	s.mirror = graph.New(s.n)
	if err := snapshot.DecodeGraphInto(d, s.mirror); err != nil {
		return err
	}
	var err error
	s.dc, err = core.NewDynamicConnectivity(s.config())
	if err != nil {
		return err
	}
	return s.dc.Restore(d)
}

// config is the cluster configuration the state's checkpoints describe.
func (s *streamState) config() core.Config {
	return core.Config{N: s.n, Phi: s.phi, Seed: s.seed, Parallelism: s.parallelism, VerticesPerMachine: s.vpm}
}

// reshard migrates the restored state onto a fleet of exactly machines
// machines: an in-memory checkpoint of the live instance is re-shard-restored
// into a fresh fleet at the target shape, which then replaces the instance.
func (s *streamState) reshard(machines int) error {
	tcfg, err := core.ResizeConfig(s.config(), machines)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, s.dc); err != nil {
		return err
	}
	fresh, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		return err
	}
	if err := snapshot.Reshard(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		return err
	}
	s.dc, s.vpm = fresh, tcfg.VerticesPerMachine
	return nil
}

// CheckpointDelta implements snapshot.DeltaCheckpointer: the mirror section
// carries only the journaled updates — replaying them onto the restored
// base mirror reproduces the full mirror exactly.
func (s *streamState) CheckpointDelta(e *snapshot.Encoder) {
	e.Begin(tagCLIMetaDelta)
	e.Int(s.n)
	e.F64(s.phi)
	e.U64(s.seed)
	e.Int(s.vpm)
	e.Int(s.applied)
	e.Begin(tagCLIMirrorDelta)
	snapshot.EncodeUpdates(e, s.pending)
	s.dc.CheckpointDelta(e)
}

// RestoreDelta implements snapshot.DeltaRestorer: it replays one delta on
// top of the previously restored state.
func (s *streamState) RestoreDelta(d *snapshot.Decoder) error {
	d.Begin(tagCLIMetaDelta)
	n, phi, seed := d.Int(), d.F64(), d.U64()
	vpm := d.Int()
	applied := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != s.n || phi != s.phi || seed != s.seed {
		return fmt.Errorf("delta declares (n=%d, phi=%v, seed=%d), base restored (n=%d, phi=%v, seed=%d)",
			n, phi, seed, s.n, s.phi, s.seed)
	}
	if vpm != s.vpm {
		return fmt.Errorf("delta written at VerticesPerMachine=%d cannot extend a base restored at %d", vpm, s.vpm)
	}
	if applied < s.applied {
		return fmt.Errorf("delta says %d batches applied but the chain so far says %d — links out of order", applied, s.applied)
	}
	s.applied = applied
	d.Begin(tagCLIMirrorDelta)
	if err := snapshot.DecodeUpdatesInto(d, s.mirror); err != nil {
		return err
	}
	return s.dc.RestoreDelta(d)
}

// AckCheckpoint implements snapshot.DeltaState: the chain calls it once the
// container is durable, making the written state the new delta baseline.
func (s *streamState) AckCheckpoint() {
	s.pending = nil
	s.dc.AckCheckpoint()
}

// writeCheckpoint saves the next checkpoint of the chain atomically (temp
// file, fsync, rename) — a delta when the chain was resumed from disk and
// has room, a full base otherwise — so an interrupted write never clobbers
// a previous good checkpoint with a truncated one.
func writeCheckpoint(chain *snapshot.Chain, st *streamState) error {
	kind, bytes, err := chain.Checkpoint(st)
	if err != nil {
		return err
	}
	fmt.Printf("%s checkpoint written to %s (%d bytes, chain length %d)\n", kind, chain.Path(), bytes, chain.Len())
	return nil
}

// resumeState restores a streamState from a checkpoint chain rooted at
// path: stale temp files from an interrupted checkpoint are swept, then the
// base snapshot and every delta linking to it are replayed in sequence.
func resumeState(path string, parallelism, maxDeltaChain int) (*streamState, *snapshot.Chain, error) {
	if swept, err := snapshot.SweepStaleTemps(path); err != nil {
		return nil, nil, err
	} else if len(swept) > 0 {
		fmt.Printf("swept %d stale checkpoint temp file(s)\n", len(swept))
	}
	st := &streamState{parallelism: parallelism}
	chain := snapshot.OpenChain(path, maxDeltaChain)
	ok, err := chain.Restore(st)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("no snapshot at %s", path)
	}
	return st, chain, nil
}

// resumeOrFresh restores a streamState from resumeFile (applying any
// -resume-machines re-shard and re-basing the chain) or builds a fresh one
// over n vertices. It is the shared front half of runStream and runTrace.
func resumeOrFresh(n int, phi float64, seed uint64, parallelism, maxDeltaChain, resumeMachines int, resumeFile string) (*streamState, *snapshot.Chain, error) {
	if resumeFile == "" {
		if n < 2 {
			return nil, nil, fmt.Errorf("stream references fewer than 2 vertices")
		}
		dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: phi, Seed: seed, Parallelism: parallelism})
		if err != nil {
			return nil, nil, err
		}
		return &streamState{n: n, phi: phi, seed: seed, parallelism: parallelism, dc: dc, mirror: graph.New(n)}, nil, nil
	}
	st, chain, err := resumeState(resumeFile, parallelism, maxDeltaChain)
	if err != nil {
		return nil, nil, fmt.Errorf("resume %s: %w", resumeFile, err)
	}
	fmt.Printf("resumed %d vertices, %d edges from %s (chain length %d)\n", st.n, st.mirror.M(), resumeFile, chain.Len())
	if resumeMachines > 0 {
		was := st.dc.Config().MachineCount()
		if err := st.reshard(resumeMachines); err != nil {
			return nil, nil, fmt.Errorf("re-shard onto %d machines: %w", resumeMachines, err)
		}
		// The restored chain describes the old shape: re-base it so a
		// -checkpoint onto the same path writes a fresh full base rather
		// than a delta extending old-shape containers.
		chain.Rebase()
		fmt.Printf("re-sharded %d -> %d machines (VerticesPerMachine=%d)\n", was, resumeMachines, st.vpm)
	}
	return st, chain, nil
}

// replay pulls batches from the validating source and applies them to the
// connectivity state, chunked to the cluster's MaxBatch, until io.EOF or
// (maxBatches > 0) that many source batches. Every applied update is
// journaled so a delta checkpoint ships just the replayed suffix, and
// st.applied advances per source batch so a trace checkpoint records the
// resume position.
func (s *streamState) replay(src *workload.Mirrored, maxBatches int) (int, error) {
	replayed := 0
	for maxBatches <= 0 || replayed < maxBatches {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return replayed, err
		}
		if len(b) == 0 {
			continue
		}
		for len(b) > 0 {
			k := s.dc.MaxBatch()
			if k > len(b) {
				k = len(b)
			}
			if err := s.dc.ApplyBatch(b[:k]); err != nil {
				return replayed, err
			}
			s.pending = append(s.pending, b[:k]...)
			b = b[k:]
		}
		replayed++
		s.applied++
	}
	return replayed, nil
}

// finishReplay verifies the replayed state against the mirror, prints the
// summary (identical across the text and trace paths, so CI can diff
// them), and writes the checkpoint if requested.
func (s *streamState) finishReplay(replayed int, mirror *graph.Graph, chain *snapshot.Chain, maxDeltaChain int, resumeFile, checkpointFile string) error {
	if err := harness.VerifyConnectivity(s.dc, mirror); err != nil {
		return fmt.Errorf("replay diverged from the oracle: %w", err)
	}
	fmt.Printf("replayed %d batches on %d vertices: %d components (oracle-verified)\n",
		replayed, s.n, s.dc.NumComponents())
	report(s.dc.Cluster().Stats(), replayed)
	if checkpointFile != "" {
		s.mirror = mirror
		if chain == nil || checkpointFile != resumeFile {
			// Writing somewhere other than the resumed chain: start a fresh
			// chain there, which forces a full base.
			chain = snapshot.OpenChain(checkpointFile, maxDeltaChain)
		}
		return writeCheckpoint(chain, s)
	}
	return nil
}

// runStream replays a text stream file through the connectivity algorithm,
// optionally resuming from and/or writing a checkpoint. When -resume and
// -checkpoint name the same path, the written checkpoint extends the
// restored chain as a cheap delta (carrying only the replayed updates and
// the state they dirtied) instead of rewriting the full snapshot. The file
// is streamed, never materialized: a first pass scans for the vertex-space
// size (skipped when a resumed snapshot already pins it), a second replays
// batch by batch, each validated against the mirror as it is pulled.
func runStream(algo, path string, phi float64, seed uint64, parallelism, maxDeltaChain, resumeMachines int, resumeFile, checkpointFile string) error {
	if algo != "connectivity" {
		return fmt.Errorf("-stream currently supports -algo connectivity, got %q", algo)
	}
	n := 0
	if resumeFile == "" {
		// Pass 1: fold the max vertex without holding more than one batch.
		file, err := os.Open(path)
		if err != nil {
			return err
		}
		r := streamio.NewReader(file)
		for {
			b, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				file.Close()
				return err
			}
			if m := b.MaxVertex(); m >= n {
				n = m + 1
			}
		}
		file.Close()
	}
	st, chain, err := resumeOrFresh(n, phi, seed, parallelism, maxDeltaChain, resumeMachines, resumeFile)
	if err != nil {
		return err
	}
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	shape := workload.Shape{N: st.n, Batches: -1, Updates: -1}
	src := workload.NewMirroredFrom(st.mirror, workload.NewFuncSource(shape, streamio.NewReader(file).Next))
	replayed, err := st.replay(src, 0)
	if err != nil {
		return err
	}
	return st.finishReplay(replayed, src.Mirror(), chain, maxDeltaChain, resumeFile, checkpointFile)
}

// runTrace replays a binary trace (internal/trace format) through the
// connectivity algorithm. Unlike the text path, the trace's footer already
// carries the vertex-space size (no scanning pass) and a seekable segment
// index: resuming a checkpoint cut mid-trace seeks straight to the first
// unapplied batch, decoding only the segments from there on.
func runTrace(algo, path string, phi float64, seed uint64, parallelism, maxDeltaChain, resumeMachines, traceBatches int, resumeFile, checkpointFile string) error {
	if algo != "connectivity" {
		return fmt.Errorf("-trace currently supports -algo connectivity, got %q", algo)
	}
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	tr, err := trace.NewReader(file)
	if err != nil {
		return err
	}
	shape := tr.Shape()
	st, chain, err := resumeOrFresh(shape.N, phi, seed, parallelism, maxDeltaChain, resumeMachines, resumeFile)
	if err != nil {
		return err
	}
	if shape.N > st.n {
		return fmt.Errorf("trace spans %d vertices but the resumed snapshot covers [0,%d)", shape.N, st.n)
	}
	if resumeFile != "" {
		if st.applied > shape.Batches {
			return fmt.Errorf("snapshot says %d batches already applied but the trace holds only %d — wrong trace for this checkpoint?", st.applied, shape.Batches)
		}
		if err := tr.SeekBatch(st.applied); err != nil {
			return err
		}
		fmt.Printf("continuing at trace batch %d of %d (segment index seek)\n", st.applied, shape.Batches)
	}
	src := workload.NewMirroredFrom(st.mirror, tr)
	replayed, err := st.replay(src, traceBatches)
	if err != nil {
		return err
	}
	return st.finishReplay(replayed, src.Mirror(), chain, maxDeltaChain, resumeFile, checkpointFile)
}

// multiSink fans converted batches out to every output format requested.
type multiSink []trace.Sink

func (m multiSink) WriteBatch(b graph.Batch) error {
	for _, s := range m {
		if err := s.WriteBatch(b); err != nil {
			return err
		}
	}
	return nil
}

// runConvert streams a SNAP-style edge list into the requested trace
// (binary) and/or stream (text) outputs. Input and outputs are all
// streamed; memory is bounded by the live-edge window plus one segment.
func runConvert(in, tracePath, streamPath string, window int64) error {
	inf, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inf.Close()
	var sinks multiSink
	var tw *trace.Writer
	var sw *streamio.Writer
	var outs []*os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		outs = append(outs, f)
		if tw, err = trace.NewWriter(f, trace.WriterOptions{}); err != nil {
			return err
		}
		sinks = append(sinks, tw)
	}
	if streamPath != "" {
		f, err := os.Create(streamPath)
		if err != nil {
			return err
		}
		outs = append(outs, f)
		sw = streamio.NewWriter(f)
		sinks = append(sinks, sw)
	}
	stats, err := trace.ConvertEdgeList(inf, sinks, trace.ConvertOptions{Window: window})
	if err != nil {
		return err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return err
		}
	}
	if sw != nil {
		if err := sw.Flush(); err != nil {
			return err
		}
	}
	for _, f := range outs {
		if err := f.Close(); err != nil {
			return err
		}
	}
	weighted := "unweighted"
	if stats.Weighted {
		weighted = "weighted"
	}
	fmt.Printf("converted %d lines: %d batches, %d updates on %d vertices (%s)\n",
		stats.Lines, stats.Batches, stats.Updates, stats.N, weighted)
	fmt.Printf("normalized: %d duplicates, %d self-loops skipped; %d window expirations emitted\n",
		stats.Duplicates, stats.SelfLoops, stats.Expired)
	return nil
}

func report(st mpc.Stats, batches int) {
	fmt.Printf("rounds: %d (%.1f/batch)  messages: %d  words sent: %d\n",
		st.Rounds, float64(st.Rounds)/float64(batches), st.Messages, st.WordsSent)
	fmt.Printf("peak machine words: %d  peak total words: %d  violations: %d\n",
		st.PeakMachineWords, st.PeakTotalWords, len(st.Violations))
}
