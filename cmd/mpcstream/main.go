// Command mpcstream runs one algorithm over a generated update stream on
// the MPC simulator and reports solution and resource statistics.
//
// Usage:
//
//	mpcstream -algo connectivity -n 256 -phi 0.6 -batches 20
//	mpcstream -algo msf -n 128 -maxweight 64
//	mpcstream -algo bipartite -n 128
//	mpcstream -algo matching -n 128 -alpha 4
//	mpcstream -algo connectivity -stream trace.txt
//	mpcstream -algo connectivity -n 4096 -parallelism 8
//	mpcstream -algo connectivity -n 1024 -queries 512
//	mpcstream -algo nowickionak -scenario bursty -n 256
//
// Algorithms: connectivity, msf (exact, insertion-only), approxmsf,
// bipartite, matching (insertion-only greedy), dynmatching (AKLY),
// nowickionak (with -scenario). With -stream, updates are replayed from a
// file in the streamio text format instead of being generated. With
// -scenario, the named workload-registry stream is run through the
// differential harness: every batch is cross-checked against the
// brute-force oracle and the run fails loudly on divergence. -parallelism
// selects the simulator's execution engine (worker-pool rounds); results
// and reported statistics are identical at every setting. -queries turns
// the connectivity run into a read/write mix: after every update batch the
// given number of connectivity queries is answered through one batched
// ConnectedAll collective, oracle-verified, and reported as rounds/query.
//
// Checkpoint & recovery (see internal/snapshot): -checkpoint writes a
// crash-safe snapshot of the final connectivity state (plus the mirror
// graph) so a later invocation can continue the run without replaying it;
// -resume restores such a snapshot before replaying a -stream trace of
// further updates, oracle-verified against the restored mirror. Checkpoints
// form a chain: when -resume and -checkpoint name the same path, the new
// checkpoint is an incremental delta carrying only the replayed updates and
// the state they dirtied, compacted into a fresh full base every
// -max-delta-chain deltas; stale temp files from an interrupted checkpoint
// are swept before loading. With -scenario, -crash-every k injects a seeded
// kill/restore cycle roughly every k batches into the differential harness
// run — every scenario doubles as a crash/recovery scenario, and the oracle
// checks must still pass after every restore — and -delta-every k cuts a
// chain checkpoint every k batches, so each restore replays a full base
// plus a multi-delta chain.
//
// Elasticity (see internal/snapshot doc): -resume-machines M re-shards the
// restored state onto a fleet of exactly M machines before replaying — the
// deterministic vertex→machine map makes the migration a pure state
// redistribution, rejected with a diagnostic when the shrunken per-machine
// memory budget cannot hold it. With -scenario, -fault-every k kills a
// seeded machine roughly every k batches; each loss is recovered by
// re-sharding the last checkpoint onto the surviving fleet and replaying
// the in-flight batches, with the oracle still checking every batch.
//
//	mpcstream -algo connectivity -n 256 -batches 50 -checkpoint state.snap
//	mpcstream -algo connectivity -resume state.snap -stream more.txt
//	mpcstream -algo connectivity -resume state.snap -stream more.txt -checkpoint state.snap
//	mpcstream -algo connectivity -resume state.snap -resume-machines 9 -stream more.txt
//	mpcstream -algo connectivity -scenario powerlaw -batches 200 -crash-every 50 -delta-every 10
//	mpcstream -algo connectivity -scenario powerlaw -batches 200 -fault-every 60
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the run (see
// README.md "Profiling").
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/msf"
	"repro/internal/oracle"
	"repro/internal/profiling"
	"repro/internal/snapshot"
	"repro/internal/streamio"
	"repro/internal/workload"
)

func main() {
	algo := flag.String("algo", "connectivity", "algorithm to run")
	n := flag.Int("n", 256, "number of vertices")
	phi := flag.Float64("phi", 0.6, "local-memory exponent")
	batches := flag.Int("batches", 20, "number of update batches")
	seed := flag.Uint64("seed", 1, "workload and algorithm seed")
	alpha := flag.Float64("alpha", 4, "matching approximation parameter")
	eps := flag.Float64("eps", 0.25, "MSF approximation parameter")
	maxWeight := flag.Int64("maxweight", 64, "maximum edge weight")
	insertBias := flag.Float64("insertbias", 0.6, "probability of keeping an existing edge")
	streamFile := flag.String("stream", "", "replay updates from a streamio-format file")
	queries := flag.Int("queries", 0,
		"read/write mix: issue this many batched connectivity queries after every update batch (-algo connectivity; answers are oracle-verified)")
	scenario := flag.String("scenario", "",
		fmt.Sprintf("run a registered workload scenario under the differential harness (have %v)", workload.Names()))
	parallelism := flag.Int("parallelism", runtime.NumCPU(),
		"execution-engine workers per cluster (0 or 1 = sequential, <0 = NumCPU); results are identical at every setting")
	checkpointFile := flag.String("checkpoint", "",
		"write a crash-safe snapshot of the final state to this file (-algo connectivity, generated or -stream mode)")
	resumeFile := flag.String("resume", "",
		"restore state from a -checkpoint snapshot before replaying further updates (requires -stream)")
	resumeMachines := flag.Int("resume-machines", 0,
		"with -resume: re-shard the restored state onto a fleet of exactly this many machines before replaying (0 = keep the snapshot's shape)")
	crashEvery := flag.Int("crash-every", 0,
		"with -scenario: inject a seeded kill+checkpoint+restore cycle roughly every k batches (0 disables)")
	faultEvery := flag.Int("fault-every", 0,
		"with -scenario: kill a seeded machine roughly every k batches; each loss recovers by re-sharding the last checkpoint onto the survivors and replaying the journal (0 disables)")
	deltaEvery := flag.Int("delta-every", 0,
		"with -scenario: checkpoint every k batches into an in-memory chain (full base, then deltas), so crash restores replay base+chain (0 disables)")
	maxDeltaChain := flag.Int("max-delta-chain", 8,
		"delta checkpoints allowed per full base before compaction (0 = full checkpoints only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate flags before constructing generators or clusters, so a bad
	// combination is a usage error on stderr, not a raw panic from deep
	// inside a constructor (e.g. workload.NewQueryMix on n < 2).
	if err := validateFlags(*n, *batches, *queries, *crashEvery, *faultEvery, *resumeMachines, *deltaEvery, *maxDeltaChain, *maxWeight, *insertBias, *algo, *streamFile, *scenario, *checkpointFile, *resumeFile); err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(2)
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(2)
	}
	switch {
	case *streamFile != "":
		err = runStream(*algo, *streamFile, *phi, *seed, *parallelism, *maxDeltaChain, *resumeMachines, *resumeFile, *checkpointFile)
	case *scenario != "":
		err = runScenario(*algo, *scenario, harness.Options{
			N: *n, Batches: *batches, Seed: *seed, Phi: *phi, Parallelism: *parallelism,
			Alpha: *alpha, Eps: *eps, MaxWeight: *maxWeight, CrashEvery: *crashEvery,
			FaultEvery:      *faultEvery,
			CheckpointEvery: *deltaEvery, MaxDeltaChain: *maxDeltaChain,
		})
	default:
		err = run(*algo, *n, *phi, *batches, *seed, *alpha, *eps, *maxWeight, *insertBias, *parallelism, *queries, *maxDeltaChain, *checkpointFile)
	}
	// Profiles are written even for a failed run — a hang or slow failure
	// is exactly when a profile is wanted.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", perr)
		if err == nil {
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcstream:", err)
		os.Exit(1)
	}
}

// validateFlags rejects invalid or incoherent flag combinations up front.
func validateFlags(n, batches, queries, crashEvery, faultEvery, resumeMachines, deltaEvery, maxDeltaChain int, maxWeight int64, insertBias float64, algo, streamFile, scenario, checkpointFile, resumeFile string) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2 (got %d)", n)
	}
	// The generator config check covers -maxweight and -insertbias: a bad
	// value is a usage error here, not a panic inside workload.NewChurn.
	if err := (workload.Config{N: n, MaxWeight: maxWeight, InsertBias: insertBias}).Validate(); err != nil {
		return err
	}
	if batches < 0 {
		return fmt.Errorf("-batches must be non-negative (got %d)", batches)
	}
	if queries < 0 {
		return fmt.Errorf("-queries must be non-negative (got %d)", queries)
	}
	if crashEvery < 0 {
		return fmt.Errorf("-crash-every must be non-negative (got %d)", crashEvery)
	}
	if queries > 0 && (streamFile != "" || scenario != "") {
		// Fail loudly rather than silently running a write-only stream: the
		// read/write mix is only wired into the generated-stream mode.
		return fmt.Errorf("-queries is only supported in the generated-stream mode (not with -stream or -scenario)")
	}
	if queries > 0 && algo != "connectivity" {
		return fmt.Errorf("-queries requires -algo connectivity, got %q", algo)
	}
	if crashEvery > 0 && scenario == "" {
		return fmt.Errorf("-crash-every requires -scenario")
	}
	if faultEvery < 0 {
		return fmt.Errorf("-fault-every must be non-negative (got %d)", faultEvery)
	}
	if faultEvery > 0 && scenario == "" {
		return fmt.Errorf("-fault-every requires -scenario")
	}
	if resumeMachines < 0 {
		return fmt.Errorf("-resume-machines must be non-negative (got %d)", resumeMachines)
	}
	if resumeMachines > 0 && resumeFile == "" {
		return fmt.Errorf("-resume-machines requires -resume")
	}
	if deltaEvery < 0 {
		return fmt.Errorf("-delta-every must be non-negative (got %d)", deltaEvery)
	}
	if maxDeltaChain < 0 {
		return fmt.Errorf("-max-delta-chain must be non-negative (got %d)", maxDeltaChain)
	}
	if deltaEvery > 0 && scenario == "" {
		return fmt.Errorf("-delta-every requires -scenario")
	}
	if resumeFile != "" && streamFile == "" {
		return fmt.Errorf("-resume requires -stream: a generated workload cannot continue a restored graph " +
			"(its generator state is not part of the snapshot)")
	}
	if checkpointFile != "" && (scenario != "" || algo != "connectivity") {
		return fmt.Errorf("-checkpoint is supported for -algo connectivity in the generated and -stream modes")
	}
	return nil
}

// runScenario streams a registered scenario through the named algorithm
// under the differential harness, oracle-checking every batch.
func runScenario(algo, scenario string, opt harness.Options) error {
	rep, err := harness.Run(algo, scenario, opt)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func run(algo string, n int, phi float64, batches int, seed uint64, alpha, eps float64, maxWeight int64, insertBias float64, parallelism, queries, maxDeltaChain int, checkpointFile string) error {
	cfg := core.Config{N: n, Phi: phi, Seed: seed, Parallelism: parallelism}
	gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 1, MaxWeight: maxWeight, InsertBias: insertBias})
	switch algo {
	case "connectivity":
		dc, err := core.NewDynamicConnectivity(cfg)
		if err != nil {
			return err
		}
		mix := workload.NewQueryMix(gen, n, seed+2)
		queryRounds, answered, connected := 0, 0, 0
		for i := 0; i < batches; i++ {
			if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
				return err
			}
			if queries == 0 {
				continue
			}
			raw := mix.NextQueries(queries)
			pairs := make([]core.Pair, len(raw))
			for j, q := range raw {
				pairs[j] = core.Pair{U: q[0], V: q[1]}
			}
			before := dc.Cluster().Stats().Rounds
			ans := dc.ConnectedAll(pairs)
			queryRounds += dc.Cluster().Stats().Rounds - before
			want := mix.OracleAnswers(raw)
			for j := range ans {
				if ans[j] != want[j] {
					return fmt.Errorf("batch %d: query %v answered %v, oracle %v", i, raw[j], ans[j], want[j])
				}
				if ans[j] {
					connected++
				}
			}
			answered += len(ans)
		}
		fmt.Printf("components: %d (oracle %d)\n", dc.NumComponents(), oracle.NumComponents(gen.Mirror()))
		fmt.Printf("forest edges: %d\n", len(dc.SnapshotForest()))
		if answered > 0 {
			fmt.Printf("queries: %d batched, %d connected, %d query rounds (%.4f rounds/query, oracle-verified)\n",
				answered, connected, queryRounds, float64(queryRounds)/float64(answered))
		}
		report(dc.Cluster().Stats(), batches)
		if checkpointFile != "" {
			// A fresh chain is never linked to on-disk state, so this writes a
			// full base (and sweeps any stale deltas left at that path).
			st := &streamState{n: n, phi: phi, seed: seed, parallelism: parallelism, dc: dc, mirror: gen.Mirror()}
			if err := writeCheckpoint(snapshot.OpenChain(checkpointFile, maxDeltaChain), st); err != nil {
				return err
			}
		}
	case "msf":
		m, err := msf.NewExactMSF(cfg)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			b := gen.NextInsertOnly(m.Forest().Config().MaxBatch())
			var edges []graph.WeightedEdge
			for _, u := range b {
				edges = append(edges, graph.WeightedEdge{Edge: u.Edge, Weight: u.Weight})
			}
			if err := m.InsertBatch(edges); err != nil {
				return err
			}
		}
		_, want := oracle.MSF(gen.Mirror())
		fmt.Printf("msf weight: %d (kruskal %d, exchange waves %d)\n", m.Weight(), want, m.SwapWaves())
		report(m.Forest().Cluster().Stats(), batches)
	case "approxmsf":
		a, err := msf.NewApproxMSF(cfg, eps, maxWeight)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			if err := a.ApplyBatch(gen.Next(a.MaxBatch())); err != nil {
				return err
			}
		}
		_, want := oracle.MSF(gen.Mirror())
		fmt.Printf("approx msf weight: %d (kruskal %d, levels %d, eps %.2f)\n", a.Weight(), want, a.Levels(), eps)
	case "bipartite":
		bt, err := bipartite.New(cfg)
		if err != nil {
			return err
		}
		bgen := workload.NewBipartiteish(n, seed+1, batches/2)
		for i := 0; i < batches; i++ {
			if err := bt.ApplyBatch(bgen.Next(bt.MaxBatch())); err != nil {
				return err
			}
			fmt.Printf("step %2d: bipartite=%v (oracle %v)\n", i, bt.IsBipartite(), oracle.IsBipartite(bgen.Mirror()))
		}
		report(bt.Graph().Cluster().Stats(), batches)
	case "matching":
		gm, err := matching.NewGreedyInsertOnly(n, alpha, 0)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			b := gen.NextInsertOnly(n / 8)
			var edges []graph.Edge
			for _, u := range b {
				edges = append(edges, u.Edge)
			}
			if err := gm.InsertBatch(edges); err != nil {
				return err
			}
		}
		fmt.Printf("matching size: %d (cap %d, max matching %d)\n",
			gm.Size(), gm.Cap(), oracle.MaxMatchingSize(gen.Mirror()))
		report(gm.Cluster().Stats(), batches)
	case "dynmatching":
		d, err := matching.NewAKLYDynamic(n, alpha, seed)
		if err != nil {
			return err
		}
		for i := 0; i < batches; i++ {
			if err := d.ApplyBatch(gen.Next(n / 8)); err != nil {
				return err
			}
		}
		fmt.Printf("matching size: %d (max matching %d, instances %d, sampler words %d)\n",
			d.Size(), oracle.MaxMatchingSize(gen.Mirror()), d.Instances(), d.SparsifierWords())
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// Section tags of the CLI layer of a snapshot: run metadata and the mirror
// graph, written ahead of the connectivity state so a resuming process can
// size its cluster before restoring. Delta containers use their own pair:
// the meta echo is repeated (tiny, keeps every container self-validating)
// and the mirror section carries only the updates applied since the last
// acknowledged checkpoint.
const (
	tagCLIMeta        = 0x50
	tagCLIMirror      = 0x51
	tagCLIMetaDelta   = 0x52
	tagCLIMirrorDelta = 0x53
)

// streamState is the CLI's checkpoint unit: the run parameters, the mirror
// graph (so a resumed replay can still be oracle-verified), and the
// connectivity instance. It implements snapshot.DeltaState, so a checkpoint
// chain can alternate full bases with cheap deltas.
type streamState struct {
	n           int
	phi         float64
	seed        uint64
	parallelism int
	// vpm is the cluster's VerticesPerMachine override (0 = default shape).
	// It is part of the meta echo so a resume rebuilds the fleet at the
	// machine count the checkpoint was cut at — which, after a
	// -resume-machines re-shard, differs from the config default.
	vpm    int
	dc     *core.DynamicConnectivity
	mirror *graph.Graph

	// pending journals every update applied since the last acknowledged
	// checkpoint; delta checkpoints ship it instead of the whole mirror.
	pending graph.Batch
}

// Checkpoint implements snapshot.Checkpointer.
func (s *streamState) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagCLIMeta)
	e.Int(s.n)
	e.F64(s.phi)
	e.U64(s.seed)
	e.Int(s.vpm)
	e.Begin(tagCLIMirror)
	snapshot.EncodeGraph(e, s.mirror)
	s.dc.Checkpoint(e)
}

// Restore implements snapshot.Restorer: the cluster is rebuilt from the
// snapshot's run metadata (the current -parallelism flag still selects the
// execution engine — it is not state) and the mirror graph and connectivity
// state are reloaded.
func (s *streamState) Restore(d *snapshot.Decoder) error {
	d.Begin(tagCLIMeta)
	s.n, s.phi, s.seed = d.Int(), d.F64(), d.U64()
	s.vpm = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	// The meta section is the config source here (nothing to cross-check it
	// against yet), so sanity-validate it before sizing a graph or cluster
	// from it: a malformed value must be a diagnostic, not a make() panic.
	if s.n < 2 || s.n > 1<<31 {
		return fmt.Errorf("snapshot declares %d vertices (want 2..2^31)", s.n)
	}
	if s.phi <= 0 || s.phi > 1 {
		return fmt.Errorf("snapshot declares Phi=%v (want (0,1])", s.phi)
	}
	if s.vpm < 0 || s.vpm > s.n {
		return fmt.Errorf("snapshot declares VerticesPerMachine=%d (want 0..%d)", s.vpm, s.n)
	}
	d.Begin(tagCLIMirror)
	s.mirror = graph.New(s.n)
	if err := snapshot.DecodeGraphInto(d, s.mirror); err != nil {
		return err
	}
	var err error
	s.dc, err = core.NewDynamicConnectivity(s.config())
	if err != nil {
		return err
	}
	return s.dc.Restore(d)
}

// config is the cluster configuration the state's checkpoints describe.
func (s *streamState) config() core.Config {
	return core.Config{N: s.n, Phi: s.phi, Seed: s.seed, Parallelism: s.parallelism, VerticesPerMachine: s.vpm}
}

// reshard migrates the restored state onto a fleet of exactly machines
// machines: an in-memory checkpoint of the live instance is re-shard-restored
// into a fresh fleet at the target shape, which then replaces the instance.
func (s *streamState) reshard(machines int) error {
	tcfg, err := core.ResizeConfig(s.config(), machines)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, s.dc); err != nil {
		return err
	}
	fresh, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		return err
	}
	if err := snapshot.Reshard(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		return err
	}
	s.dc, s.vpm = fresh, tcfg.VerticesPerMachine
	return nil
}

// CheckpointDelta implements snapshot.DeltaCheckpointer: the mirror section
// carries only the journaled updates — replaying them onto the restored
// base mirror reproduces the full mirror exactly.
func (s *streamState) CheckpointDelta(e *snapshot.Encoder) {
	e.Begin(tagCLIMetaDelta)
	e.Int(s.n)
	e.F64(s.phi)
	e.U64(s.seed)
	e.Int(s.vpm)
	e.Begin(tagCLIMirrorDelta)
	snapshot.EncodeUpdates(e, s.pending)
	s.dc.CheckpointDelta(e)
}

// RestoreDelta implements snapshot.DeltaRestorer: it replays one delta on
// top of the previously restored state.
func (s *streamState) RestoreDelta(d *snapshot.Decoder) error {
	d.Begin(tagCLIMetaDelta)
	n, phi, seed := d.Int(), d.F64(), d.U64()
	vpm := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != s.n || phi != s.phi || seed != s.seed {
		return fmt.Errorf("delta declares (n=%d, phi=%v, seed=%d), base restored (n=%d, phi=%v, seed=%d)",
			n, phi, seed, s.n, s.phi, s.seed)
	}
	if vpm != s.vpm {
		return fmt.Errorf("delta written at VerticesPerMachine=%d cannot extend a base restored at %d", vpm, s.vpm)
	}
	d.Begin(tagCLIMirrorDelta)
	if err := snapshot.DecodeUpdatesInto(d, s.mirror); err != nil {
		return err
	}
	return s.dc.RestoreDelta(d)
}

// AckCheckpoint implements snapshot.DeltaState: the chain calls it once the
// container is durable, making the written state the new delta baseline.
func (s *streamState) AckCheckpoint() {
	s.pending = nil
	s.dc.AckCheckpoint()
}

// writeCheckpoint saves the next checkpoint of the chain atomically (temp
// file, fsync, rename) — a delta when the chain was resumed from disk and
// has room, a full base otherwise — so an interrupted write never clobbers
// a previous good checkpoint with a truncated one.
func writeCheckpoint(chain *snapshot.Chain, st *streamState) error {
	kind, bytes, err := chain.Checkpoint(st)
	if err != nil {
		return err
	}
	fmt.Printf("%s checkpoint written to %s (%d bytes, chain length %d)\n", kind, chain.Path(), bytes, chain.Len())
	return nil
}

// resumeState restores a streamState from a checkpoint chain rooted at
// path: stale temp files from an interrupted checkpoint are swept, then the
// base snapshot and every delta linking to it are replayed in sequence.
func resumeState(path string, parallelism, maxDeltaChain int) (*streamState, *snapshot.Chain, error) {
	if swept, err := snapshot.SweepStaleTemps(path); err != nil {
		return nil, nil, err
	} else if len(swept) > 0 {
		fmt.Printf("swept %d stale checkpoint temp file(s)\n", len(swept))
	}
	st := &streamState{parallelism: parallelism}
	chain := snapshot.OpenChain(path, maxDeltaChain)
	ok, err := chain.Restore(st)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("no snapshot at %s", path)
	}
	return st, chain, nil
}

// runStream replays a trace file through the connectivity algorithm,
// optionally resuming from and/or writing a checkpoint. When -resume and
// -checkpoint name the same path, the written checkpoint extends the
// restored chain as a cheap delta (carrying only the replayed updates and
// the state they dirtied) instead of rewriting the full snapshot.
func runStream(algo, path string, phi float64, seed uint64, parallelism, maxDeltaChain, resumeMachines int, resumeFile, checkpointFile string) error {
	if algo != "connectivity" {
		return fmt.Errorf("-stream currently supports -algo connectivity, got %q", algo)
	}
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	batches, err := streamio.Read(file)
	if err != nil {
		return err
	}
	var st *streamState
	var chain *snapshot.Chain
	if resumeFile != "" {
		st, chain, err = resumeState(resumeFile, parallelism, maxDeltaChain)
		if err != nil {
			return fmt.Errorf("resume %s: %w", resumeFile, err)
		}
		if maxV := streamio.MaxVertex(batches); maxV >= st.n {
			return fmt.Errorf("stream references vertex %d but the resumed snapshot covers [0,%d)", maxV, st.n)
		}
		fmt.Printf("resumed %d vertices, %d edges from %s (chain length %d)\n", st.n, st.mirror.M(), resumeFile, chain.Len())
		if resumeMachines > 0 {
			was := st.dc.Config().MachineCount()
			if err := st.reshard(resumeMachines); err != nil {
				return fmt.Errorf("re-shard onto %d machines: %w", resumeMachines, err)
			}
			// The restored chain describes the old shape: re-base it so a
			// -checkpoint onto the same path writes a fresh full base rather
			// than a delta extending old-shape containers.
			chain.Rebase()
			fmt.Printf("re-sharded %d -> %d machines (VerticesPerMachine=%d)\n", was, resumeMachines, st.vpm)
		}
	} else {
		n := streamio.MaxVertex(batches) + 1
		if n < 2 {
			return fmt.Errorf("stream references fewer than 2 vertices")
		}
		dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: phi, Seed: seed, Parallelism: parallelism})
		if err != nil {
			return err
		}
		st = &streamState{n: n, phi: phi, seed: seed, parallelism: parallelism, dc: dc, mirror: graph.New(n)}
	}
	// Pre-validate so a corrupt trace yields an error, not Replay's panic.
	probe := graph.New(st.n)
	if err := probe.Apply(graphBatchOf(st.mirror)); err != nil {
		return fmt.Errorf("restored mirror is inconsistent: %w", err)
	}
	for i, b := range batches {
		if err := probe.Apply(b); err != nil {
			return fmt.Errorf("batch %d invalid against the replayed graph: %w", i, err)
		}
	}
	rp := workload.NewReplayFrom(st.mirror, batches)
	for !rp.Done() {
		b := rp.Next(st.dc.MaxBatch())
		if err := st.dc.ApplyBatch(b); err != nil {
			return err
		}
		// Journal the replayed updates so a delta checkpoint can ship just
		// them instead of the whole mirror.
		st.pending = append(st.pending, b...)
	}
	if err := harness.VerifyConnectivity(st.dc, rp.Mirror()); err != nil {
		return fmt.Errorf("replay diverged from the oracle: %w", err)
	}
	fmt.Printf("replayed %d batches on %d vertices: %d components (oracle-verified)\n",
		len(batches), st.n, st.dc.NumComponents())
	report(st.dc.Cluster().Stats(), len(batches))
	if checkpointFile != "" {
		st.mirror = rp.Mirror()
		if chain == nil || checkpointFile != resumeFile {
			// Writing somewhere other than the resumed chain: start a fresh
			// chain there, which forces a full base.
			chain = snapshot.OpenChain(checkpointFile, maxDeltaChain)
		}
		return writeCheckpoint(chain, st)
	}
	return nil
}

// graphBatchOf renders a graph's live edges as one insertion batch (used to
// prime the pre-validation probe with the restored mirror).
func graphBatchOf(g *graph.Graph) graph.Batch {
	var b graph.Batch
	for _, we := range g.Edges() {
		b = append(b, graph.InsW(we.U, we.V, we.Weight))
	}
	return b
}

func report(st mpc.Stats, batches int) {
	fmt.Printf("rounds: %d (%.1f/batch)  messages: %d  words sent: %d\n",
		st.Rounds, float64(st.Rounds)/float64(batches), st.Messages, st.WordsSent)
	fmt.Printf("peak machine words: %d  peak total words: %d  violations: %d\n",
		st.PeakMachineWords, st.PeakTotalWords, len(st.Violations))
}
