// Command mpcserve runs the long-lived graph service: a fleet of
// independent dynamic-connectivity instances behind an HTTP API, with
// bounded update queues (429 backpressure), zero-round warm queries out of
// the coordinator label cache, Prometheus metrics at /metrics, and graceful
// checkpoint-on-shutdown / restore-on-startup (see internal/server).
//
// Usage:
//
//	mpcserve -addr :8080 -instances 8 -n 256 -phi 0.6
//	mpcserve -instances 8 -checkpoint-dir /var/lib/mpcserve
//
// On SIGINT/SIGTERM the server stops accepting updates, drains every
// instance's queue, checkpoints each instance atomically into
// -checkpoint-dir (when set), and exits; a subsequent start with the same
// flags restores every instance bit-identically, warm caches included.
// Checkpoints form a chain: the first is a full base, later ones (including
// -checkpoint-every periodic background checkpoints) are cheap deltas that
// carry only the state dirtied since the previous checkpoint, compacted
// into a fresh base every -max-delta-chain deltas.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	instances := flag.Int("instances", 8, "number of independent graph instances")
	n := flag.Int("n", 256, "vertices per instance")
	phi := flag.Float64("phi", 0.6, "local-memory exponent")
	seed := flag.Uint64("seed", 1, "base seed (instance i uses a derived seed)")
	parallelism := flag.Int("parallelism", runtime.NumCPU(),
		"execution-engine workers per cluster (0 or 1 = sequential, <0 = NumCPU)")
	queue := flag.Int("queue", 16, "bounded update-queue depth per instance (full queue = 429)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"checkpoint every instance here on graceful shutdown and restore on startup (empty = stateless)")
	checkpointEvery := flag.Duration("checkpoint-every", 0,
		"also checkpoint every instance at this period while serving (0 = only on shutdown; requires -checkpoint-dir)")
	maxDeltaChain := flag.Int("max-delta-chain", 8,
		"delta checkpoints allowed per full base before compaction (0 = full checkpoints only)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "HTTP shutdown grace period")
	flag.Parse()

	if *checkpointEvery > 0 && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "mpcserve: -checkpoint-every requires -checkpoint-dir")
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Instances:       *instances,
		N:               *n,
		Phi:             *phi,
		Seed:            *seed,
		Parallelism:     *parallelism,
		QueueDepth:      *queue,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEvery,
		MaxDeltaChain:   *maxDeltaChain,
	})
	if err != nil {
		// server.Config.validate covers the flag checks (-instances >= 1,
		// -n >= 2, -phi in (0,1], -queue >= 1) with descriptive messages.
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fmt.Printf("mpcserve: serving %d instances of %d vertices on %s\n", *instances, *n, *addr)
	select {
	case err := <-errc:
		// Listener failed before any signal: report and still close the
		// fleet so a partial checkpoint never happens silently.
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		_ = srv.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("mpcserve: draining and checkpointing...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mpcserve: shutdown:", err)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve: checkpoint:", err)
		os.Exit(1)
	}
	if *checkpointDir != "" {
		fmt.Printf("mpcserve: checkpointed %d instances to %s\n", *instances, *checkpointDir)
	}
}
