// Command experiments regenerates every experiment table (E1–E16; see
// README.md "Experiments").
//
// Usage:
//
//	experiments [-quick] [-only E1,E3] [-parallelism N] [-scenario powerlaw,window]
//	experiments -only E16 -checkpoint state.snap
//	experiments -only E16 -resume state.snap
//
// -quick shrinks the instance sizes for a fast smoke run; -only restricts
// to a comma-separated list of experiment ids; -parallelism sets the
// execution-engine worker count for every experiment (0 or 1 sequential,
// negative = NumCPU). Tables are identical at every parallelism; only
// wall-clock changes. -scenario restricts the E14 differential sweep to a
// comma-separated subset of the workload scenario registry (default: all).
// -checkpoint and -resume wire the E16 crash-recovery experiment to a
// snapshot file on disk: -checkpoint writes E16's final state, -resume
// restores and re-verifies an existing snapshot (restart-without-replay;
// a corrupt or version-skewed file is reported as rejected).
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the run (see
// README.md "Profiling"); combine with -only to profile one experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances")
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	parallelism := flag.Int("parallelism", runtime.NumCPU(),
		"execution-engine workers per cluster (0 or 1 = sequential, <0 = NumCPU)")
	scenario := flag.String("scenario", "",
		fmt.Sprintf("comma-separated scenarios for the E14 sweep (default all; have %v)", workload.Names()))
	queries := flag.Int("queries", 0,
		"query batch size for the E15 query-throughput experiment (0 = 1024, or 256 with -quick)")
	checkpointFile := flag.String("checkpoint", "",
		"write the E16 crash-recovery experiment's final state snapshot to this file")
	resumeFile := flag.String("resume", "",
		"restore and re-verify an existing snapshot file in the E16 crash-recovery experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *queries < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -queries must be non-negative (got %d)\n", *queries)
		os.Exit(2)
	}
	experiments.Parallelism = *parallelism

	var scenarios []string
	if *scenario != "" {
		for _, s := range strings.Split(*scenario, ",") {
			name := strings.TrimSpace(s)
			if _, err := workload.Get(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			scenarios = append(scenarios, name)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for id := range want {
		switch id {
		case "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", id)
			os.Exit(2)
		}
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	run := func(id string, fn func() *experiments.Table) {
		if len(want) > 0 && !want[id] {
			return
		}
		fmt.Println(fn())
	}

	sizes := []int{64, 128, 256, 512}
	msfSizes := []int{64, 128, 256}
	batches := 8
	if *quick {
		sizes = []int{48, 96}
		msfSizes = []int{48}
		batches = 4
	}

	run("E1", func() *experiments.Table {
		return experiments.E1ConnectivityRounds(sizes[:len(sizes)-1], []float64{0.5, 0.7}, batches, 1)
	})
	run("E2", func() *experiments.Table {
		return experiments.E2ConnectivityMemory(sizes[1], 0.6, []int{100, 300, 600, 1000}, 2)
	})
	run("E3", func() *experiments.Table {
		return experiments.E3QueryVsAGM(sizes, 3)
	})
	run("E4", func() *experiments.Table {
		return experiments.E4ExactMSF(msfSizes, batches, 4)
	})
	run("E5", func() *experiments.Table {
		return experiments.E5ApproxMSF(msfSizes[0], []float64{0.1, 0.25, 0.5}, batches, 5)
	})
	run("E6", func() *experiments.Table {
		return experiments.E6Bipartiteness(msfSizes[0], 10, 6)
	})
	run("E7", func() *experiments.Table {
		return experiments.E7InsertMatching(2*msfSizes[0], []float64{2, 4, 8}, 7)
	})
	run("E8", func() *experiments.Table {
		return experiments.E8DynamicMatching(48, []float64{2, 4}, batches, 8)
	})
	run("E9", func() *experiments.Table {
		return experiments.E9BatchScaling(sizes[len(sizes)-2], []float64{0.1, 0.25, 0.5, 1}, 5, 9)
	})
	run("E10", func() *experiments.Table {
		return experiments.E10EulerTourAblation(2*sizes[len(sizes)-2], []int{4, 16, 64}, 10)
	})
	run("E11", func() *experiments.Table {
		seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
		if *quick {
			seeds = seeds[:3]
		}
		return experiments.E11SketchCopiesAblation(msfSizes[0], []int{1, 2, 4, 8, 0x0}[0:4], batches, seeds)
	})
	run("E12", func() *experiments.Table {
		return experiments.E12CommunicationPerRound(sizes[:len(sizes)-1], batches, 12)
	})
	run("E13", func() *experiments.Table {
		par := []int{1, 2, runtime.NumCPU()}
		n := 4 * sizes[len(sizes)-1]
		if *quick {
			par = []int{1, runtime.NumCPU()}
			n = 2 * sizes[len(sizes)-1]
		}
		return experiments.E13ParallelSpeedup(n, par, batches, 13)
	})
	run("E14", func() *experiments.Table {
		return experiments.E14ScenarioSweep(msfSizes[0], batches, scenarios, 14)
	})
	run("E15", func() *experiments.Table {
		q := *queries
		if q <= 0 {
			q = 1024
			if *quick {
				q = 256
			}
		}
		return experiments.E15QueryThroughput(sizes[:len(sizes)-1], batches, q, 15)
	})
	run("E16", func() *experiments.Table {
		return experiments.E16CrashRecovery(msfSizes, 2*batches, 4, 16, *checkpointFile, *resumeFile)
	})
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
