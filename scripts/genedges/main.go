// Command genedges emits a deterministic SNAP-style timestamped edge list
// for exercising the trace converter (internal/trace.ConvertEdgeList): a
// clustered collaboration-network shape with occasional duplicate and
// self-loop lines, so the converter's normalization diagnostics have
// something to count. The CI trace-replay soak generates its input with
// this tool, and internal/trace/testdata/collab32.edges is a checked-in
// run of it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/hash"
)

func main() {
	n := flag.Int("n", 32, "number of vertices")
	edges := flag.Int("edges", 200, "number of edge lines to emit (including duplicates/self-loops)")
	seed := flag.Uint64("seed", 1, "PRG seed")
	maxWeight := flag.Int64("weights", 0, "max edge weight; 0 emits unweighted 'u v t' lines, > 0 emits 'u v w t'")
	clusters := flag.Int("clusters", 4, "number of vertex clusters; most edges stay intra-cluster")
	dupPerMille := flag.Int("dup", 60, "per-line probability (per mille) of repeating an earlier line verbatim")
	selfPerMille := flag.Int("self", 20, "per-line probability (per mille) of a self-loop line")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	if *n < 4 || *edges < 1 || *clusters < 1 || *clusters > *n {
		fmt.Fprintln(os.Stderr, "genedges: need -n >= 4, -edges >= 1, 1 <= -clusters <= n")
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genedges:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	prg := hash.NewPRG(*seed)
	csize := (*n + *clusters - 1) / *clusters
	fmt.Fprintf(w, "# genedges -n %d -edges %d -seed %d -weights %d -clusters %d -dup %d -self %d\n",
		*n, *edges, *seed, *maxWeight, *clusters, *dupPerMille, *selfPerMille)
	fmt.Fprintf(w, "# fields: u v%s t (timestamps non-decreasing)\n", map[bool]string{true: " w"}[*maxWeight > 0])

	randIn := func(c int) int {
		lo := c * csize
		hi := lo + csize
		if hi > *n {
			hi = *n
		}
		return lo + int(prg.NextN(uint64(hi-lo)))
	}
	var t int64
	var prev []string
	for i := 0; i < *edges; i++ {
		t += int64(prg.NextN(3)) // non-decreasing, with repeated timestamps
		roll := int(prg.NextN(1000))
		var line string
		switch {
		case roll < *dupPerMille && len(prev) > 0:
			// Repeat an earlier line with the current timestamp; the edge is
			// usually still live, so the converter counts a duplicate.
			line = prev[prg.NextN(uint64(len(prev)))]
		case roll < *dupPerMille+*selfPerMille:
			u := int(prg.NextN(uint64(*n)))
			line = edgeLine(u, u, *maxWeight, prg)
		default:
			c := int(prg.NextN(uint64(*clusters)))
			u := randIn(c)
			v := u
			for v == u {
				if prg.NextN(10) < 8 { // mostly intra-cluster
					v = randIn(c)
				} else {
					v = int(prg.NextN(uint64(*n)))
				}
			}
			line = edgeLine(u, v, *maxWeight, prg)
			prev = append(prev, line)
		}
		fmt.Fprintf(w, "%s %d\n", line, t)
	}
}

// edgeLine renders "u v" or "u v w" (the timestamp is appended by the
// caller, so duplicate lines can be re-stamped with the current time).
func edgeLine(u, v int, maxWeight int64, prg *hash.PRG) string {
	if maxWeight > 0 {
		return fmt.Sprintf("%d %d %d", u, v, int64(prg.NextN(uint64(maxWeight)))+1)
	}
	return fmt.Sprintf("%d %d", u, v)
}
