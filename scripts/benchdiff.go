// Command benchdiff is the benchmark regression gate: it compares the
// output of `go test -bench -benchmem` against the checked-in baseline
// (BENCH_sketch.json at the repository root) and exits non-zero when any
// benchmark regresses beyond the configured ratios — by default >15% on
// ns/op, >15% on B/op or allocs/op, and >15% on the rounds/query custom
// metric the query-path benchmarks report from Stats.Rounds deltas; these
// are the thresholds the CI gate enforces for the sketch/mpc/query
// hot-path benchmarks. Results are keyed by package-qualified benchmark
// name (from the `pkg:` headers of the bench output), so same-named
// benchmarks in different packages never overwrite each other, and a
// duplicate qualified name in the input is rejected instead of silently
// keeping the last occurrence. A baseline of 0 B/op is a zero-allocation contract,
// and a baseline of 0 rounds/query is a zero-round contract (the warm
// label-cache regime): any regression from zero fails the gate.
//
// The speedup-vs-seq metric of the parallel-engine benchmarks is gated
// differently: it is machine-dependent (it measures how well the worker
// pool converts cores into wall clock), so instead of a baseline ratio it
// gets absolute floors via -min-speedup (substring=floor rules), enforced
// only when the bench output's GOMAXPROCS suffix is at least
// -min-speedup-procs — a single-core host reports ~1x by construction and
// must not fail the gate. A floor rule that matches no benchmark fails the
// run, so renaming a gated benchmark cannot silently disable the gate.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench.txt
//	go run ./scripts/benchdiff.go -baseline BENCH_sketch.json bench.txt
//
// Refresh the baseline after an intentional performance change with:
//
//	go run ./scripts/benchdiff.go -baseline BENCH_sketch.json -update bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded profile. RoundsPerQuery is the custom
// MPC-rounds metric the query benchmarks report; it is machine-independent
// (a structural property of the execution, like allocs/op). SpeedupVsSeq is
// the derived parallel-engine metric of the pool variants of
// BenchmarkStepParallel (sequential ns/round over pool ns/round, higher is
// better); it is machine-dependent, so it is gated by the -min-speedup
// absolute floor rather than a baseline ratio, and only on hosts with at
// least -min-speedup-procs processors (the GOMAXPROCS suffix of the bench
// line) — a single-core box cannot exhibit parallel speedup.
type Result struct {
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	RoundsPerQuery float64 `json:"rounds_per_query,omitempty"`
	SpeedupVsSeq   float64 `json:"speedup_vs_seq,omitempty"`

	// Procs is the GOMAXPROCS the measurement ran under (the -N suffix of
	// the benchmark line). It qualifies the speedup floor, and it is stored
	// in the baseline so every entry records the parallelism it was
	// measured at — a speedup number without its procs is uninterpretable,
	// which is how a ~0.94x single-core measurement once cohabited a
	// baseline with a 1.05x CI floor.
	Procs int `json:"procs"`
}

// Baseline is the on-disk schema of BENCH_sketch.json.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `go test -bench` output lines, e.g.
// BenchmarkSketchUpdate-8   123456   987.6 ns/op   0 B/op   0 allocs/op
// The -8 suffix is the GOMAXPROCS of the run, captured for the speedup gate.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+(.*)$`)

// pkgLine matches the `pkg: repro/internal/sketch` header go test prints
// before a package's benchmark lines.
var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)$`)

// parseBench extracts benchmark results from `go test -bench` output,
// keyed by package-qualified name ("repro/internal/sketch.BenchmarkFoo").
// Same-named benchmarks from different packages therefore never collide,
// and a duplicate qualified name — two runs of one package concatenated,
// or -count > 1 — is an error rather than a silent last-wins overwrite
// that would gate against the wrong measurement.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := m[1]
		if pkg != "" {
			key = pkg + "." + m[1]
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate benchmark %q in input (one measurement per benchmark: run with -count=1 and do not concatenate runs of the same package)", key)
		}
		var res Result
		// go test only appends the -N suffix when GOMAXPROCS != 1, so a
		// bare benchmark name means a single-processor run.
		res.Procs = 1
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				res.Procs = p
			}
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "rounds/query":
				res.RoundsPerQuery = v
			case "speedup-vs-seq":
				res.SpeedupVsSeq = v
			}
		}
		out[key] = res
	}
	return out, sc.Err()
}

// speedupFloor is one parsed -min-speedup rule: benchmarks whose qualified
// name contains Substr must report speedup-vs-seq of at least Min.
type speedupFloor struct {
	Substr string
	Min    float64
}

// parseSpeedupFloors parses the -min-speedup value: a comma-separated list
// of substring=floor rules, e.g. "/pool/=1.8,/pool-skew/=1.05".
func parseSpeedupFloors(spec string) ([]speedupFloor, error) {
	if spec == "" {
		return nil, nil
	}
	var floors []speedupFloor
	for _, rule := range strings.Split(spec, ",") {
		sub, val, ok := strings.Cut(rule, "=")
		if !ok || sub == "" {
			return nil, fmt.Errorf("bad -min-speedup rule %q (want substring=floor)", rule)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -min-speedup floor in %q", rule)
		}
		floors = append(floors, speedupFloor{Substr: sub, Min: f})
	}
	return floors, nil
}

// checkSpeedup enforces the absolute speedup floors on one result. The
// floors only apply on hosts with at least minProcs processors: parallel
// speedup is a property of the hardware as much as the code, and a starved
// host reporting ~1x is expected, not a regression.
func checkSpeedup(name string, got Result, floors []speedupFloor, minProcs int) error {
	if got.SpeedupVsSeq == 0 || got.Procs < minProcs {
		return nil
	}
	for _, fl := range floors {
		if !strings.Contains(name, fl.Substr) {
			continue
		}
		if got.SpeedupVsSeq < fl.Min {
			return fmt.Errorf("%s: speedup-vs-seq %.2f below floor %.2f (pool regressed toward sequential parity)",
				name, got.SpeedupVsSeq, fl.Min)
		}
	}
	return nil
}

// check compares one metric against its baseline under a max ratio; a zero
// baseline demands an exact zero (the zero-allocation contract).
func check(name, metric string, base, got, ratio float64) error {
	if ratio <= 0 {
		return nil // metric disabled
	}
	if base == 0 {
		if got != 0 {
			return fmt.Errorf("%s: %s regressed: baseline 0, got %g (zero-allocation contract)", name, metric, got)
		}
		return nil
	}
	if got > base*ratio {
		return fmt.Errorf("%s: %s regressed %.1f%%: baseline %g, got %g (max +%.0f%%)",
			name, metric, 100*(got/base-1), base, got, 100*(ratio-1))
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_sketch.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
	nsRatio := flag.Float64("ns-ratio", 1.15, "max allowed ns/op ratio vs baseline (0 disables; CI uses a looser value on shared runners)")
	memRatio := flag.Float64("mem-ratio", 1.15, "max allowed B/op and allocs/op ratio vs baseline")
	roundsRatio := flag.Float64("rounds-ratio", 1.15, "max allowed rounds/query ratio vs baseline (0 disables; a 0 baseline is a zero-round contract)")
	minSpeedup := flag.String("min-speedup", "",
		"comma-separated substring=floor rules for the speedup-vs-seq metric, e.g. '/pool/=1.8,/pool-skew/=1.05' (empty disables)")
	minSpeedupProcs := flag.Int("min-speedup-procs", 4,
		"enforce -min-speedup only when the bench ran with at least this GOMAXPROCS (single-core hosts cannot exhibit speedup)")
	note := flag.String("note", "", "note to store when updating the baseline")
	flag.Parse()

	floors, err := parseSpeedupFloors(*minSpeedup)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		// Refuse to bake in speedup measurements from a host that cannot
		// exhibit parallel speedup: the number would contradict the CI floor
		// the moment the baseline lands. The entry is kept (its ns/op and
		// B/op are fine) with the speedup dropped.
		for name, res := range got {
			if res.SpeedupVsSeq != 0 && res.Procs < *minSpeedupProcs {
				fmt.Printf("benchdiff: %s: dropping speedup-vs-seq %.2f measured at GOMAXPROCS %d (< -min-speedup-procs %d)\n",
					name, res.SpeedupVsSeq, res.Procs, *minSpeedupProcs)
				res.SpeedupVsSeq = 0
				got[name] = res
			}
		}
		b := Baseline{Note: *note, Benchmarks: got}
		if b.Note == "" {
			b.Note = "regenerate: go test -run '^$' -bench <set> -benchmem | go run ./scripts/benchdiff.go -update"
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	compared := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			fmt.Printf("benchdiff: %s missing from bench output (skipped)\n", name)
			continue
		}
		compared++
		for _, err := range []error{
			check(name, "ns/op", b.NsPerOp, g.NsPerOp, *nsRatio),
			check(name, "B/op", b.BytesPerOp, g.BytesPerOp, *memRatio),
			check(name, "allocs/op", b.AllocsPerOp, g.AllocsPerOp, *memRatio),
			check(name, "rounds/query", b.RoundsPerQuery, g.RoundsPerQuery, *roundsRatio),
			checkSpeedup(name, g, floors, *minSpeedupProcs),
		} {
			if err != nil {
				failures = append(failures, err.Error())
			}
		}
	}
	// A floor rule that matches nothing is a dead gate (a renamed benchmark
	// would silently stop being enforced) — fail loudly instead.
	for _, fl := range floors {
		matched := false
		for name, g := range got {
			if g.SpeedupVsSeq != 0 && strings.Contains(name, fl.Substr) {
				matched = true
				break
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf(
				"-min-speedup rule %s=%g matched no benchmark reporting speedup-vs-seq", fl.Substr, fl.Min))
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no baseline benchmarks present in the bench output"))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within budget (ns/op ratio %.2f, mem ratio %.2f)\n", compared, *nsRatio, *memRatio)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff: "+err.Error())
	os.Exit(2)
}
