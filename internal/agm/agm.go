// Package agm implements the Ahn–Guha–McGregor sketch-based streaming
// connectivity algorithm as an MPC baseline (Section 2.1 and 4.1 of the
// paper). It maintains only the vertex sketches — no explicit spanning
// forest — so each update batch costs O(1) rounds, but answering a
// spanning-forest query requires O(log n) Borůvka rounds of distributed
// sketch merging. The paper's contribution (package core) removes exactly
// this query cost; experiment E3 measures the two against each other.
package agm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/mpc"
	"repro/internal/sketch"
	"repro/internal/sketchcodec"
)

// Store slots.
const (
	slotShard = "agm"
	slotBcast = "b"
)

// shard is one machine's vertex range: the vertex sketches (one contiguous
// arena) and the transient query labels.
type shard struct {
	lo, hi int
	n      int
	arena  *sketch.Arena
	labels []int
}

// Words implements mpc.Sized.
func (s *shard) Words() int { return s.arena.Words() + len(s.labels) + 2 }

// Connectivity is the AGM baseline instance.
type Connectivity struct {
	n     int
	cl    *mpc.Cluster
	part  mpc.Partition
	coord int
	space *sketch.Space
}

// Config parameterizes the baseline; it mirrors core.Config.
type Config struct {
	N                  int
	Phi                float64
	SketchCopies       int
	Seed               uint64
	Strict             bool
	VerticesPerMachine int
	// Parallelism is passed through to the cluster's execution engine
	// (see mpc.Config.Parallelism).
	Parallelism int
}

// New creates the baseline for an empty graph on cfg.N vertices.
func New(cfg Config) (*Connectivity, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("agm: N = %d", cfg.N)
	}
	if cfg.Phi <= 0 || cfg.Phi > 1 {
		return nil, fmt.Errorf("agm: Phi = %v", cfg.Phi)
	}
	vpm := cfg.VerticesPerMachine
	if vpm == 0 {
		vpm = ceilPow(cfg.N, cfg.Phi)
	}
	t := cfg.SketchCopies
	if t == 0 {
		t = 2*ceilLog2(cfg.N) + 8
	}
	prg := hash.NewPRG(cfg.Seed)
	space := sketch.NewGraphSpace(cfg.N, t, prg)
	m := (cfg.N+vpm-1)/vpm + 1
	cl := mpc.NewCluster(mpc.Config{
		Machines:    m,
		LocalMemory: vpm * (64 + space.SketchWords()),
		Strict:      cfg.Strict,
		Parallelism: cfg.Parallelism,
	})
	c := &Connectivity{
		n:     cfg.N,
		cl:    cl,
		part:  mpc.Partition{N: cfg.N, Machines: m - 1},
		coord: m - 1,
		space: space,
	}
	cl.LocalAll(func(mm *mpc.Machine) {
		if mm.ID == c.coord {
			return
		}
		lo, hi := c.part.Range(mm.ID)
		sh := &shard{lo: lo, hi: hi, n: cfg.N, arena: space.NewArena(hi - lo)}
		mm.Set(slotShard, sh)
	})
	return c, nil
}

// Cluster exposes the cluster for metering.
func (c *Connectivity) Cluster() *mpc.Cluster { return c.cl }

// batchPayload is the broadcast update batch.
type batchPayload struct{ b graph.Batch }

func (p batchPayload) Words() int { return 3 * len(p.b) }

// ApplyBatch updates the sketches for a batch of insertions and deletions:
// one broadcast, O(1) rounds — this is all the AGM baseline does per phase.
func (c *Connectivity) ApplyBatch(b graph.Batch) error {
	c.cl.Broadcast(c.coord, slotBcast, batchPayload{b: b})
	c.cl.LocalAll(func(mm *mpc.Machine) {
		sh, ok := mm.Get(slotShard).(*shard)
		if !ok {
			return
		}
		for _, u := range mm.Get(slotBcast).(batchPayload).b {
			e := u.Edge.Canonical()
			for _, v := range []int{e.U, e.V} {
				if v >= sh.lo && v < sh.hi {
					sh.arena.VertexAt(v-sh.lo, sh.n).ApplyEdge(v, e, u.Op)
				}
			}
		}
	})
	return nil
}

// QueryComponents extracts the connected components with the O(log n)-round
// Borůvka of Section 4.1: in each round, supernode sketches are merged by
// label, each supernode samples an outgoing edge from its round-r sketch
// copy, endpoint labels are resolved, and supernodes hook onto minimum
// neighbor labels. It returns the vertex labels (minimum vertex id per
// component) and the number of Borůvka rounds executed.
func (c *Connectivity) QueryComponents() ([]int, int) {
	labels, rounds, _ := c.query(false)
	return labels, rounds
}

// QuerySpanningForest additionally returns the forest edges assembled from
// the hooking edges of every Borůvka level (still O(log n) rounds).
func (c *Connectivity) QuerySpanningForest() ([]int, int, []graph.Edge) {
	return c.query(true)
}

// query runs the Borůvka extraction, optionally collecting forest edges.
func (c *Connectivity) query(wantForest bool) ([]int, int, []graph.Edge) {
	// Initialize labels.
	c.cl.LocalAll(func(mm *mpc.Machine) {
		sh, ok := mm.Get(slotShard).(*shard)
		if !ok {
			return
		}
		sh.labels = make([]int, sh.hi-sh.lo)
		for v := sh.lo; v < sh.hi; v++ {
			sh.labels[v-sh.lo] = v
		}
	})
	rounds := 0
	var forest []graph.Edge
	for r := 0; r < c.space.Copies(); r++ {
		rounds++
		merged := c.mergeSupernodeSketches()
		// Each supernode samples one outgoing edge with its copy-r sketch.
		hooks := map[int]int{}           // label -> candidate neighbor label
		hookEdge := map[int]graph.Edge{} // label -> the sampled edge used
		var candidates []graph.Edge
		var labelsOfCand []int
		hadFail := false
		for _, lab := range sortedIntKeys(merged) {
			e, res := merged[lab].Query(r)
			switch res {
			case sketch.Found:
				candidates = append(candidates, graph.EdgeFromID(e, c.n))
				labelsOfCand = append(labelsOfCand, lab)
			case sketch.Fail:
				hadFail = true
			}
		}
		if len(candidates) == 0 {
			if hadFail {
				continue // retry with the next independent copy
			}
			break // every supernode is isolated: done
		}
		// Resolve endpoint labels distributively.
		var endpoints []int
		for _, e := range candidates {
			endpoints = append(endpoints, e.U, e.V)
		}
		lab := c.lookupLabels(endpoints)
		for i, e := range candidates {
			a, b := lab[e.U], lab[e.V]
			self := labelsOfCand[i]
			other := a
			if a == self {
				other = b
			}
			if other == self {
				continue
			}
			if cur, ok := hooks[self]; !ok || other < cur {
				hooks[self] = other
				hookEdge[self] = e
			}
		}
		if len(hooks) == 0 {
			continue
		}
		if wantForest {
			// Two supernodes can hook along the same edge, and hooks can
			// form cycles among labels; emit an edge only when it truly
			// merges two supernodes this round.
			parent := map[int]int{}
			var find func(int) int
			find = func(x int) int {
				if p, ok := parent[x]; ok && p != x {
					r := find(p)
					parent[x] = r
					return r
				}
				return x
			}
			for _, self := range sortedIntKeys(hooks) {
				ra, rb := find(self), find(hooks[self])
				if ra == rb {
					continue
				}
				parent[rb] = ra
				forest = append(forest, hookEdge[self])
			}
		}
		// Contract the hook forest locally at the coordinator (its size is
		// bounded by the number of active supernodes) and broadcast the
		// label remapping.
		remap := contractHooks(hooks)
		c.cl.Broadcast(c.coord, slotBcast, mpc.Value{V: remap, N: 2 * len(remap)})
		c.cl.LocalAll(func(mm *mpc.Machine) {
			sh, ok := mm.Get(slotShard).(*shard)
			if !ok {
				return
			}
			m := mm.Get(slotBcast).(mpc.Value).V.(map[int]int)
			for i, l := range sh.labels {
				if nl, ok := m[l]; ok {
					sh.labels[i] = nl
				}
			}
		})
	}
	// Read out the labels (driver-level readout of the collective output).
	out := make([]int, c.n)
	c.cl.LocalAll(func(mm *mpc.Machine) {
		sh, ok := mm.Get(slotShard).(*shard)
		if !ok {
			return
		}
		for i, l := range sh.labels {
			out[sh.lo+i] = l
		}
	})
	sort.Slice(forest, func(i, j int) bool {
		if forest[i].U != forest[j].U {
			return forest[i].U < forest[j].U
		}
		return forest[i].V < forest[j].V
	})
	return out, rounds, forest
}

// mergeSupernodeSketches sums vertex sketches by current label and gathers
// the per-label sums to the coordinator as [label, cells...] frames of the
// batched message codec. (The volume is bounded by the number of active
// supernodes; the experiments use graphs whose supernode count shrinks
// geometrically, the regime AGM is designed for.)
func (c *Connectivity) mergeSupernodeSketches() map[int]sketch.Sketch {
	return sketchcodec.AggregateByLabel(c.cl, c.coord, c.space,
		func(mm *mpc.Machine, add func(label int, sk sketch.Sketch)) {
			sh, ok := mm.Get(slotShard).(*shard)
			if !ok {
				return
			}
			for i, l := range sh.labels {
				add(l, sh.arena.At(i))
			}
		})
}

// lookupLabels resolves current labels for the given vertices.
func (c *Connectivity) lookupLabels(vertices []int) map[int]int {
	q := uniqueInts(vertices)
	c.cl.Broadcast(c.coord, slotBcast, mpc.Ints(q))
	res := c.cl.Aggregate(c.coord,
		func(mm *mpc.Machine) mpc.Sized {
			sh, ok := mm.Get(slotShard).(*shard)
			if !ok {
				return nil
			}
			out := map[int]int{}
			for _, v := range mm.Get(slotBcast).(mpc.Ints) {
				if v >= sh.lo && v < sh.hi {
					out[v] = sh.labels[v-sh.lo]
				}
			}
			if len(out) == 0 {
				return nil
			}
			return mpc.Value{V: out, N: 2 * len(out)}
		},
		func(a, b mpc.Sized) mpc.Sized {
			am := a.(mpc.Value).V.(map[int]int)
			for k, v := range b.(mpc.Value).V.(map[int]int) {
				am[k] = v
			}
			return mpc.Value{V: am, N: 2 * len(am)}
		},
	)
	if res == nil {
		return map[int]int{}
	}
	return res.(mpc.Value).V.(map[int]int)
}

// contractHooks turns the hook graph (label -> neighbor label) into a full
// remapping onto component-minimum labels.
func contractHooks(hooks map[int]int) map[int]int {
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		return x
	}
	for a, b := range hooks {
		ra, rb := find(a), find(b)
		if ra == rb {
			continue
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	remap := map[int]int{}
	for a := range hooks {
		remap[a] = find(a)
	}
	for _, b := range hooks {
		if _, ok := remap[b]; !ok {
			remap[b] = find(b)
		}
	}
	// Drop identity entries to keep the broadcast minimal.
	for k, v := range remap {
		if k == v {
			delete(remap, k)
		}
	}
	return remap
}

func uniqueInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

func ceilPow(n int, phi float64) int {
	v := int(math.Ceil(math.Pow(float64(n), phi)))
	if v < 2 {
		v = 2
	}
	return v
}
