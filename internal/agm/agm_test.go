package agm

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

func newBaseline(t *testing.T, n int, seed uint64) *Connectivity {
	t.Helper()
	c, err := New(Config{N: n, Phi: 0.7, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkLabels verifies the query labels partition vertices exactly like the
// oracle components (labels may differ; the partition must match).
func checkLabels(t *testing.T, got []int, g *graph.Graph) {
	t.Helper()
	want := oracle.Components(g)
	rep := map[int]int{}
	for v := range got {
		if r, ok := rep[got[v]]; ok {
			if want[v] != want[r] {
				t.Fatalf("vertices %d and %d share label %d but differ in oracle", v, r, got[v])
			}
		} else {
			rep[got[v]] = v
		}
	}
	seen := map[int]int{}
	for v := range want {
		if l, ok := seen[want[v]]; ok {
			if got[v] != l {
				t.Fatalf("vertices in oracle component %d have labels %d and %d", want[v], l, got[v])
			}
		} else {
			seen[want[v]] = got[v]
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 1, Phi: 0.5}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := New(Config{N: 8, Phi: 0}); err == nil {
		t.Error("Phi=0 accepted")
	}
}

func TestEmptyGraphQuery(t *testing.T) {
	c := newBaseline(t, 8, 1)
	labels, rounds := c.QueryComponents()
	for v, l := range labels {
		if l != v {
			t.Fatalf("label of %d = %d on empty graph", v, l)
		}
	}
	if rounds > 2 {
		t.Errorf("empty query took %d rounds", rounds)
	}
}

func TestPathQuery(t *testing.T) {
	const n = 16
	c := newBaseline(t, n, 2)
	g := graph.New(n)
	var b graph.Batch
	for i := 0; i+1 < n; i++ {
		b = append(b, graph.Ins(i, i+1))
		_ = g.Insert(i, i+1, 0)
	}
	if err := c.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	labels, _ := c.QueryComponents()
	checkLabels(t, labels, g)
}

func TestInsertDeleteQuery(t *testing.T) {
	const n = 16
	c := newBaseline(t, n, 3)
	g := graph.New(n)
	ins := graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(3, 4)}
	_ = g.Apply(ins)
	if err := c.ApplyBatch(ins); err != nil {
		t.Fatal(err)
	}
	del := graph.Batch{graph.Del(1, 2)}
	_ = g.Apply(del)
	if err := c.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	labels, _ := c.QueryComponents()
	checkLabels(t, labels, g)
}

func TestRandomizedQueriesAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	const n = 24
	for _, seed := range []uint64{7, 8, 9} {
		c := newBaseline(t, n, seed)
		g := graph.New(n)
		prg := hash.NewPRG(seed * 31)
		for step := 0; step < 6; step++ {
			var b graph.Batch
			for len(b) < 6 {
				u, v := int(prg.NextN(n)), int(prg.NextN(n))
				if u == v {
					continue
				}
				e := graph.NewEdge(u, v)
				if g.Has(e.U, e.V) {
					if prg.Next()&1 == 0 {
						_ = g.Delete(e.U, e.V)
						b = append(b, graph.Del(e.U, e.V))
					}
				} else {
					_ = g.Insert(e.U, e.V, 0)
					b = append(b, graph.Ins(e.U, e.V))
				}
			}
			if err := c.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			labels, _ := c.QueryComponents()
			checkLabels(t, labels, g)
		}
	}
}

func TestQueryRoundsGrowWithComponentDiameterOfMerging(t *testing.T) {
	// A long path forces many Borůvka rounds (each round at least halves
	// the number of supernodes, so rounds ~ log n), in contrast to the O(1)
	// query of the maintained-forest algorithm.
	const n = 64
	c := newBaseline(t, n, 11)
	var b graph.Batch
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		b = append(b, graph.Ins(i, i+1))
		_ = g.Insert(i, i+1, 0)
	}
	if err := c.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	labels, rounds := c.QueryComponents()
	checkLabels(t, labels, g)
	if rounds < 3 {
		t.Errorf("path query finished in %d Borůvka rounds; expected several", rounds)
	}
}

func TestContractHooks(t *testing.T) {
	remap := contractHooks(map[int]int{5: 3, 3: 1, 7: 5})
	for _, k := range []int{3, 5, 7} {
		if remap[k] != 1 {
			t.Errorf("remap[%d] = %d, want 1", k, remap[k])
		}
	}
	if _, ok := remap[1]; ok {
		t.Error("identity entry not dropped")
	}
}

func TestQuerySpanningForest(t *testing.T) {
	const n = 32
	c := newBaseline(t, n, 21)
	g := graph.New(n)
	prg := hash.NewPRG(22)
	var b graph.Batch
	for len(b) < 40 {
		u, v := int(prg.NextN(n)), int(prg.NextN(n))
		if u == v || g.Has(u, v) {
			continue
		}
		_ = g.Insert(u, v, 0)
		b = append(b, graph.Ins(u, v))
	}
	if err := c.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	labels, _, forest := c.QuerySpanningForest()
	checkLabels(t, labels, g)
	if !oracle.IsSpanningForest(g, forest) {
		t.Fatalf("AGM forest invalid: %v", forest)
	}
}

func TestQuerySpanningForestAfterDeletions(t *testing.T) {
	const n = 24
	c := newBaseline(t, n, 23)
	g := graph.New(n)
	ins := graph.Batch{}
	for i := 0; i < n; i++ {
		ins = append(ins, graph.Ins(i, (i+1)%n))
	}
	_ = g.Apply(ins)
	if err := c.ApplyBatch(ins); err != nil {
		t.Fatal(err)
	}
	del := graph.Batch{graph.Del(0, 1), graph.Del(10, 11)}
	_ = g.Apply(del)
	if err := c.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	labels, _, forest := c.QuerySpanningForest()
	checkLabels(t, labels, g)
	if !oracle.IsSpanningForest(g, forest) {
		t.Fatalf("AGM forest invalid after deletions: %v", forest)
	}
}
