package sketch_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// The sketch benchmarks are the regression surface locked in by
// BENCH_sketch.json (see scripts/benchdiff.go and the CI gate): ns/op
// guards the flat-cell hot path, B/op and allocs/op pin the
// zero-allocation contract of the arena representation.

func benchSpace(b *testing.B) (*sketch.Space, *sketch.Arena) {
	b.Helper()
	space := sketch.NewGraphSpace(256, 12, hash.NewPRG(42))
	return space, space.NewArena(64)
}

func BenchmarkSketchUpdate(b *testing.B) {
	_, arena := benchSpace(b)
	sk := arena.At(7)
	e := graph.NewEdge(3, 200)
	idx := e.ID(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(idx, +1)
		sk.Update(idx, -1)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	_, arena := benchSpace(b)
	dst, src := arena.At(0), arena.At(1)
	for v := 0; v < 32; v++ {
		src.Update(graph.NewEdge(v, v+1).ID(256), +1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Add(src)
	}
}

func BenchmarkSketchQuery(b *testing.B) {
	space, arena := benchSpace(b)
	sk := arena.At(2)
	for v := 0; v < 24; v++ {
		sk.Update(graph.NewEdge(v, v+100).ID(256), +1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < space.Copies(); c++ {
			sk.Query(c)
		}
	}
}

func BenchmarkSketchScratchMerge(b *testing.B) {
	// The pooled transient-merge pattern of the recovery paths: scratch,
	// copy, fold four sketches, query, release.
	space, arena := benchSpace(b)
	for v := 0; v < 4; v++ {
		arena.At(v).Update(graph.NewEdge(v, v+50).ID(256), +1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := space.Scratch()
		s.CopyFrom(arena.At(0))
		for v := 1; v < 4; v++ {
			s.Add(arena.At(v))
		}
		s.QueryAny(0)
		space.Release(s)
	}
}
