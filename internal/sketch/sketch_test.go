package sketch

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hash"
)

func newTestSpace(idSpace uint64, t int, seed uint64) *Space {
	return NewSpace(idSpace, t, hash.NewPRG(seed))
}

func TestEmptySketchQueriesEmpty(t *testing.T) {
	sp := newTestSpace(1024, 8, 1)
	sk := sp.NewSketch()
	for c := 0; c < sp.Copies(); c++ {
		if _, res := sk.Query(c); res != Empty {
			t.Errorf("copy %d: empty sketch returned %v", c, res)
		}
	}
}

func TestSingleElementRecovery(t *testing.T) {
	sp := newTestSpace(1024, 8, 2)
	for _, idx := range []uint64{0, 1, 17, 1023} {
		for _, delta := range []int{1, -1} {
			sk := sp.NewSketch()
			sk.Update(idx, delta)
			got, res := sk.QueryAny(0)
			if res != Found {
				t.Errorf("idx=%d delta=%d: result %v", idx, delta, res)
				continue
			}
			if got != idx {
				t.Errorf("idx=%d delta=%d: recovered %d", idx, delta, got)
			}
		}
	}
}

func TestInsertDeleteCancels(t *testing.T) {
	sp := newTestSpace(4096, 8, 3)
	sk := sp.NewSketch()
	prg := hash.NewPRG(77)
	var idxs []uint64
	for i := 0; i < 200; i++ {
		idx := prg.NextN(4096)
		idxs = append(idxs, idx)
		sk.Update(idx, 1)
		sk.Update(idx, -1) // immediately cancel to keep the vector in range
	}
	_ = idxs
	if _, res := sk.QueryAny(0); res != Empty {
		t.Errorf("fully cancelled sketch returned %v", res)
	}
}

func TestRecoveryFromDenseVector(t *testing.T) {
	// Insert many coordinates; the sampler must recover some member of the
	// support.
	sp := newTestSpace(1<<14, 16, 4)
	sk := sp.NewSketch()
	support := make(map[uint64]bool)
	prg := hash.NewPRG(5)
	for len(support) < 500 {
		idx := prg.NextN(1 << 14)
		if !support[idx] {
			support[idx] = true
			sk.Update(idx, 1)
		}
	}
	found := 0
	for c := 0; c < sp.Copies(); c++ {
		idx, res := sk.Query(c)
		if res == Found {
			found++
			if !support[idx] {
				t.Fatalf("copy %d recovered %d not in support", c, idx)
			}
		}
		if res == Empty {
			t.Fatalf("copy %d reported empty for dense vector", c)
		}
	}
	if found == 0 {
		t.Error("no copy recovered a coordinate from a 500-element support")
	}
}

func TestQuerySuccessRate(t *testing.T) {
	// Across many independent spaces, QueryAny must almost always succeed
	// on vectors of widely varying density.
	for _, density := range []int{1, 2, 10, 100, 1000} {
		fails := 0
		const trials = 60
		for trial := 0; trial < trials; trial++ {
			sp := newTestSpace(1<<13, 12, uint64(1000+trial))
			sk := sp.NewSketch()
			prg := hash.NewPRG(uint64(trial))
			seen := make(map[uint64]bool)
			for len(seen) < density {
				idx := prg.NextN(1 << 13)
				if !seen[idx] {
					seen[idx] = true
					sk.Update(idx, 1)
				}
			}
			if _, res := sk.QueryAny(0); res != Found {
				fails++
			}
		}
		if fails > trials/10 {
			t.Errorf("density %d: %d/%d QueryAny failures", density, fails, trials)
		}
	}
}

func TestLinearity(t *testing.T) {
	sp := newTestSpace(1<<12, 8, 6)
	a, b := sp.NewSketch(), sp.NewSketch()
	// a holds {5, 9}; b holds {9 with opposite sign, 100}. Sum = {5, 100}.
	a.Update(5, 1)
	a.Update(9, 1)
	b.Update(9, -1)
	b.Update(100, 1)
	a.Add(b)
	got := map[uint64]bool{}
	for c := 0; c < sp.Copies(); c++ {
		if idx, res := a.Query(c); res == Found {
			got[idx] = true
		}
	}
	for idx := range got {
		if idx != 5 && idx != 100 {
			t.Errorf("recovered %d, not in summed support {5,100}", idx)
		}
	}
	if len(got) == 0 {
		t.Error("no recovery from summed sketch")
	}
}

func TestSumDoesNotMutateArguments(t *testing.T) {
	sp := newTestSpace(256, 4, 7)
	a, b := sp.NewSketch(), sp.NewSketch()
	a.Update(3, 1)
	b.Update(4, 1)
	s := Sum(a, b)
	// a must still summarize {3} alone.
	idx, res := a.QueryAny(0)
	if res != Found || idx != 3 {
		t.Errorf("a changed after Sum: %d %v", idx, res)
	}
	gotSum := map[uint64]bool{}
	for c := 0; c < 4; c++ {
		if idx, res := s.Query(c); res == Found {
			gotSum[idx] = true
		}
	}
	for idx := range gotSum {
		if idx != 3 && idx != 4 {
			t.Errorf("sum recovered %d", idx)
		}
	}
}

func TestAddDifferentSpacesPanics(t *testing.T) {
	a := newTestSpace(256, 4, 8).NewSketch()
	b := newTestSpace(256, 4, 9).NewSketch()
	defer func() {
		if recover() == nil {
			t.Fatal("Add across spaces did not panic")
		}
	}()
	a.Add(b)
}

func TestUpdateValidation(t *testing.T) {
	sp := newTestSpace(16, 2, 10)
	sk := sp.NewSketch()
	for _, bad := range []func(){
		func() { sk.Update(0, 2) },
		func() { sk.Update(0, 0) },
		func() { sk.Update(16, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Update did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestQueryCopyValidation(t *testing.T) {
	sp := newTestSpace(16, 2, 11)
	sk := sp.NewSketch()
	defer func() {
		if recover() == nil {
			t.Fatal("Query with bad copy did not panic")
		}
	}()
	sk.Query(2)
}

func TestCloneIndependence(t *testing.T) {
	sp := newTestSpace(128, 4, 12)
	a := sp.NewSketch()
	a.Update(7, 1)
	c := a.Clone()
	c.Update(7, -1)
	if _, res := a.QueryAny(0); res != Found {
		t.Error("mutating clone affected original")
	}
	if _, res := c.QueryAny(0); res != Empty {
		t.Error("clone did not cancel")
	}
}

func TestSketchWords(t *testing.T) {
	sp := newTestSpace(1024, 4, 13)
	sk := sp.NewSketch()
	if sk.Words() != sp.SketchWords() {
		t.Errorf("Words() = %d, SketchWords() = %d", sk.Words(), sp.SketchWords())
	}
	if sk.Words() != 4*(sp.Levels()+1)*3 {
		t.Errorf("Words() = %d", sk.Words())
	}
}

func TestNewSpaceValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSpace(0, 4, hash.NewPRG(1)) },
		func() { NewSpace(16, 0, hash.NewPRG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewSpace did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestEdgeSign(t *testing.T) {
	e := graph.NewEdge(2, 7)
	if EdgeSign(7, e) != 1 {
		t.Error("larger endpoint should have sign +1")
	}
	if EdgeSign(2, e) != -1 {
		t.Error("smaller endpoint should have sign -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EdgeSign on non-endpoint did not panic")
		}
	}()
	EdgeSign(3, e)
}

func TestVertexSketchCutRecovery(t *testing.T) {
	// Build a path 0-1-2-3 and check that the summed sketch of A = {0,1}
	// recovers exactly the single cut edge {1,2}.
	const n = 16
	sp := NewGraphSpace(n, 12, hash.NewPRG(14))
	vs := make([]VertexSketch, n)
	for v := range vs {
		vs[v] = NewVertexSketch(sp, n)
	}
	edges := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3)}
	for _, e := range edges {
		vs[e.U].ApplyEdge(e.U, e, graph.Insert)
		vs[e.V].ApplyEdge(e.V, e, graph.Insert)
	}
	cut := vs[0].CloneVertex()
	cut.AddVertex(vs[1])
	e, res := cut.QueryEdge(0)
	if res == Fail {
		// try the other copies
		for c := 1; c < sp.Copies(); c++ {
			e, res = cut.QueryEdge(c)
			if res != Fail {
				break
			}
		}
	}
	if res != Found {
		t.Fatalf("cut query result %v", res)
	}
	if e != graph.NewEdge(1, 2) {
		t.Errorf("cut edge = %v, want {1,2}", e)
	}
}

func TestVertexSketchInternalEdgesCancel(t *testing.T) {
	// A = {0,1,2,3} holding a path 0-1-2-3 has an empty cut.
	const n = 8
	sp := NewGraphSpace(n, 8, hash.NewPRG(15))
	vs := make([]VertexSketch, n)
	for v := range vs {
		vs[v] = NewVertexSketch(sp, n)
	}
	for _, e := range []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3)} {
		vs[e.U].ApplyEdge(e.U, e, graph.Insert)
		vs[e.V].ApplyEdge(e.V, e, graph.Insert)
	}
	cut := Sum(vs[0].Sketch, vs[1].Sketch, vs[2].Sketch, vs[3].Sketch)
	if _, res := cut.QueryAny(0); res != Empty {
		t.Errorf("internal edges did not cancel: %v", res)
	}
}

func TestVertexSketchDeletion(t *testing.T) {
	const n = 8
	sp := NewGraphSpace(n, 8, hash.NewPRG(16))
	a := NewVertexSketch(sp, n)
	e := graph.NewEdge(0, 5)
	a.ApplyEdge(0, e, graph.Insert)
	a.ApplyEdge(0, e, graph.Delete)
	if _, res := a.QueryAny(0); res != Empty {
		t.Error("insert+delete did not cancel in vertex sketch")
	}
}

func TestNewVertexSketchSpaceMismatchPanics(t *testing.T) {
	sp := NewGraphSpace(8, 2, hash.NewPRG(17))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched space did not panic")
		}
	}()
	NewVertexSketch(sp, 9)
}

func TestQueryResultString(t *testing.T) {
	if Empty.String() != "empty" || Found.String() != "found" || Fail.String() != "fail" {
		t.Error("QueryResult.String wrong")
	}
}

// TestSumSpaceMismatch pins the Sum space check: every operand is checked
// against argument 0, and the panic names the index of the offending
// argument (a mismatch used to surface as a generic Add panic attributing
// the wrong operand).
func TestSumSpaceMismatch(t *testing.T) {
	spA := newTestSpace(256, 4, 21)
	spB := newTestSpace(256, 4, 22)
	mk := func(spaces ...*Space) []Sketch {
		out := make([]Sketch, len(spaces))
		for i, sp := range spaces {
			out[i] = sp.NewSketch()
		}
		return out
	}
	cases := []struct {
		name    string
		args    []Sketch
		wantArg string // "" means no panic expected
	}{
		{"all same", mk(spA, spA, spA), ""},
		{"second mismatched", mk(spA, spB, spA), "argument 1"},
		{"third mismatched", mk(spA, spA, spB), "argument 2"},
		{"fifth mismatched", mk(spA, spA, spA, spA, spB), "argument 4"},
		{"first two swapped spaces", mk(spB, spA), "argument 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if tc.wantArg == "" {
					if r != nil {
						t.Fatalf("unexpected panic: %v", r)
					}
					return
				}
				if r == nil {
					t.Fatalf("Sum over mismatched spaces did not panic")
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %T, want string", r)
				}
				if !strings.Contains(msg, tc.wantArg) || !strings.Contains(msg, "argument 0") {
					t.Fatalf("panic %q does not name %s against argument 0", msg, tc.wantArg)
				}
			}()
			Sum(tc.args...)
		})
	}
}

func TestSumEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sum() did not panic")
		}
	}()
	Sum()
}

func TestRecoveredIndexAlwaysInSupport(t *testing.T) {
	// Property: whatever Query returns as Found must be a member of the
	// true support, across random vectors.
	prg := hash.NewPRG(99)
	for trial := 0; trial < 40; trial++ {
		sp := newTestSpace(2048, 8, prg.Next())
		sk := sp.NewSketch()
		support := make(map[uint64]int)
		for i := 0; i < 64; i++ {
			idx := prg.NextN(2048)
			delta := 1
			if prg.Next()&1 == 0 && support[idx] == 1 {
				delta = -1
			} else if support[idx] != 0 {
				continue
			}
			support[idx] += delta
			if support[idx] == 0 {
				delete(support, idx)
			}
			sk.Update(idx, delta)
		}
		for c := 0; c < sp.Copies(); c++ {
			idx, res := sk.Query(c)
			switch res {
			case Found:
				if support[idx] == 0 {
					t.Fatalf("trial %d copy %d: recovered %d outside support", trial, c, idx)
				}
			case Empty:
				if len(support) != 0 {
					t.Fatalf("trial %d copy %d: empty but support has %d", trial, c, len(support))
				}
			}
		}
	}
}

func TestQuickLinearity(t *testing.T) {
	// Property: for random disjoint update sequences A and B, the cell-wise
	// sum of their sketches always behaves like the sketch of the combined
	// sequence: a Found result is in the combined support and Empty occurs
	// only when the combined vector is zero.
	f := func(seed uint64) bool {
		prg := hash.NewPRG(seed)
		sp := NewSpace(1<<10, 6, hash.NewPRG(seed^0xabcd))
		a, b, both := sp.NewSketch(), sp.NewSketch(), sp.NewSketch()
		support := map[uint64]int{}
		for i := 0; i < 40; i++ {
			idx := prg.NextN(1 << 10)
			delta := 1
			if support[idx] == 1 && prg.Next()&1 == 0 {
				delta = -1
			} else if support[idx] != 0 {
				continue
			}
			support[idx] += delta
			if support[idx] == 0 {
				delete(support, idx)
			}
			target := a
			if prg.Next()&1 == 0 {
				target = b
			}
			target.Update(idx, delta)
			both.Update(idx, delta)
		}
		sum := Sum(a, b)
		for c := 0; c < sp.Copies(); c++ {
			i1, r1 := sum.Query(c)
			i2, r2 := both.Query(c)
			// Same shared randomness and same underlying vector: identical
			// cells, hence identical outcomes.
			if r1 != r2 || (r1 == Found && i1 != i2) {
				return false
			}
			if r1 == Found && support[i1] == 0 {
				return false
			}
			if r1 == Empty && len(support) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
