// Package sketchtest preserves the original pointer-based sketch
// implementation as a differential-testing oracle. RefSpace/RefSketch are
// the pre-arena representation — one heap object per sketch, one struct per
// cell — kept bit-for-bit faithful to the code the flat arena
// representation replaced: the hash families are drawn from the PRG in the
// same order, the cell arithmetic is identical, and the level/recovery
// scans visit cells in the same order. A RefSpace and a sketch.Space built
// from equal-seeded PRGs therefore define the same sampler, and every
// Update/Add/Query sequence must produce identical QueryResults on both
// paths; the equivalence tests drive exactly that comparison across the
// workload scenario generators.
package sketchtest

import (
	"fmt"

	"repro/internal/hash"
	"repro/internal/sketch"
)

// cell is the reference one-sparse recovery structure: exact counter, index
// sum and a random linear fingerprint, all linear in the underlying vector.
type cell struct {
	count int64  // sum of coordinate values
	isum  uint64 // sum of value*index over F_p
	fp    uint64 // sum of value*h_fp(index) over F_p
}

func (c *cell) zero() bool { return c.count == 0 && c.isum == 0 && c.fp == 0 }

func (c *cell) update(idx, hfp uint64, delta int) {
	c.count += int64(delta)
	if delta > 0 {
		c.isum = addModP(c.isum, idx%hash.Prime)
		c.fp = addModP(c.fp, hfp)
	} else {
		c.isum = subModP(c.isum, idx%hash.Prime)
		c.fp = subModP(c.fp, hfp)
	}
}

func (c *cell) add(o cell) {
	c.count += o.count
	c.isum = addModP(c.isum, o.isum)
	c.fp = addModP(c.fp, o.fp)
}

func addModP(a, b uint64) uint64 {
	s := a + b
	if s >= hash.Prime {
		s -= hash.Prime
	}
	return s
}

func subModP(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + hash.Prime - b
}

func (c *cell) recover(fpHash *hash.Family, idSpace uint64) (idx uint64, ok bool) {
	switch c.count {
	case 1:
		idx = c.isum
	case -1:
		idx = subModP(0, c.isum)
	default:
		return 0, false
	}
	if idx >= idSpace {
		return 0, false
	}
	want := fpHash.Hash(idx)
	if c.count == -1 {
		want = subModP(0, want)
	}
	if c.fp != want {
		return 0, false
	}
	return idx, true
}

// RefSpace is the reference counterpart of sketch.Space.
type RefSpace struct {
	idSpace uint64
	t       int
	levels  int
	levelH  []*hash.Family
	fpH     []*hash.Family
}

// NewRefSpace mirrors sketch.NewSpace, drawing the hash families from prg
// in the identical order, so equal-seeded PRGs yield equivalent spaces.
func NewRefSpace(idSpace uint64, t int, prg *hash.PRG) *RefSpace {
	if idSpace == 0 {
		panic("sketchtest: empty id space")
	}
	if t < 1 {
		panic(fmt.Sprintf("sketchtest: t = %d", t))
	}
	levels := 1
	for v := uint64(1); v < idSpace; v *= 2 {
		levels++
		if levels > 64 {
			break
		}
	}
	s := &RefSpace{idSpace: idSpace, t: t, levels: levels}
	s.levelH = make([]*hash.Family, t)
	s.fpH = make([]*hash.Family, t)
	for i := 0; i < t; i++ {
		s.levelH[i] = hash.NewFourwise(prg)
		s.fpH[i] = hash.NewFourwise(prg)
	}
	return s
}

// Copies returns the number of independent sampler copies per sketch.
func (s *RefSpace) Copies() int { return s.t }

// NewSketch returns a reference sketch of the zero vector.
func (s *RefSpace) NewSketch() *RefSketch {
	return &RefSketch{space: s, cells: make([]cell, s.t*(s.levels+1))}
}

// RefSketch is the pointer-based reference sketch.
type RefSketch struct {
	space *RefSpace
	cells []cell
}

// Update applies X[idx] += delta; delta must be +1 or -1.
func (sk *RefSketch) Update(idx uint64, delta int) {
	if delta != 1 && delta != -1 {
		panic(fmt.Sprintf("sketchtest: delta %d", delta))
	}
	if idx >= sk.space.idSpace {
		panic(fmt.Sprintf("sketchtest: index %d out of space %d", idx, sk.space.idSpace))
	}
	L := sk.space.levels
	for c := 0; c < sk.space.t; c++ {
		lvl := sk.space.levelH[c].Level(idx, L)
		hfp := sk.space.fpH[c].Hash(idx)
		base := c * (L + 1)
		for l := 0; l <= lvl; l++ {
			sk.cells[base+l].update(idx, hfp, delta)
		}
	}
}

// Add merges other into sk cell-wise.
func (sk *RefSketch) Add(other *RefSketch) {
	if sk.space != other.space {
		panic("sketchtest: adding sketches from different spaces")
	}
	for i := range sk.cells {
		sk.cells[i].add(other.cells[i])
	}
}

// Clone returns a deep copy.
func (sk *RefSketch) Clone() *RefSketch {
	c := &RefSketch{space: sk.space, cells: make([]cell, len(sk.cells))}
	copy(c.cells, sk.cells)
	return c
}

// Query attempts to recover a nonzero coordinate using copy c, with the
// reference scan order (sparsest level down).
func (sk *RefSketch) Query(c int) (idx uint64, res sketch.QueryResult) {
	if c < 0 || c >= sk.space.t {
		panic(fmt.Sprintf("sketchtest: copy %d of %d", c, sk.space.t))
	}
	L := sk.space.levels
	base := c * (L + 1)
	if sk.cells[base].zero() {
		return 0, sketch.Empty
	}
	for l := L; l >= 0; l-- {
		if idx, ok := sk.cells[base+l].recover(sk.space.fpH[c], sk.space.idSpace); ok {
			return idx, sketch.Found
		}
	}
	return 0, sketch.Fail
}
