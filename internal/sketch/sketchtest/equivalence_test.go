package sketchtest_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/sketch"
	"repro/internal/sketch/sketchtest"
	"repro/internal/workload"
)

// pairedSketches is a vertex's sketch on both representations: the flat
// arena view under test and the pointer-based reference oracle.
type paired struct {
	space    *sketch.Space
	refSpace *sketchtest.RefSpace
	arena    *sketch.Arena
	refs     []*sketchtest.RefSketch
	n        int
}

// newPaired builds equal-seeded spaces (so both define the same sampler)
// and one sketch per vertex on each path.
func newPaired(n, copies int, seed uint64) *paired {
	p := &paired{
		space:    sketch.NewSpace(graph.IDSpace(n), copies, hash.NewPRG(seed)),
		refSpace: sketchtest.NewRefSpace(graph.IDSpace(n), copies, hash.NewPRG(seed)),
		n:        n,
	}
	p.arena = p.space.NewArena(n)
	p.refs = make([]*sketchtest.RefSketch, n)
	for v := range p.refs {
		p.refs[v] = p.refSpace.NewSketch()
	}
	return p
}

// apply mirrors one edge update into the incidence sketches of both
// endpoints on both paths.
func (p *paired) apply(u graph.Update) {
	e := u.Edge.Canonical()
	for _, v := range []int{e.U, e.V} {
		delta := sketch.EdgeSign(v, e)
		if u.Op == graph.Delete {
			delta = -delta
		}
		p.arena.At(v).Update(e.ID(p.n), delta)
		p.refs[v].Update(e.ID(p.n), delta)
	}
}

// compareAll queries every vertex sketch on every copy and fails on the
// first diverging QueryResult or recovered index.
func (p *paired) compareAll(t *testing.T, context string) {
	t.Helper()
	for v := 0; v < p.n; v++ {
		for c := 0; c < p.space.Copies(); c++ {
			gotIdx, gotRes := p.arena.At(v).Query(c)
			wantIdx, wantRes := p.refs[v].Query(c)
			if gotRes != wantRes || (gotRes == sketch.Found && gotIdx != wantIdx) {
				t.Fatalf("%s: vertex %d copy %d: arena (%d, %v) != reference (%d, %v)",
					context, v, c, gotIdx, gotRes, wantIdx, wantRes)
			}
		}
	}
}

// comparePrefixSums merges vertex sketches 0..k on both paths (Add on a
// growing accumulator, the replacement-search merge pattern) and compares
// every query outcome of the running sums.
func (p *paired) comparePrefixSums(t *testing.T, context string) {
	t.Helper()
	acc := p.space.Scratch()
	defer p.space.Release(acc)
	acc.CopyFrom(p.arena.At(0))
	refAcc := p.refs[0].Clone()
	for v := 1; v < p.n; v++ {
		acc.Add(p.arena.At(v))
		refAcc.Add(p.refs[v])
		for c := 0; c < p.space.Copies(); c++ {
			gotIdx, gotRes := acc.Query(c)
			wantIdx, wantRes := refAcc.Query(c)
			if gotRes != wantRes || (gotRes == sketch.Found && gotIdx != wantIdx) {
				t.Fatalf("%s: prefix sum 0..%d copy %d: arena (%d, %v) != reference (%d, %v)",
					context, v, c, gotIdx, gotRes, wantIdx, wantRes)
			}
		}
	}
}

// TestArenaMatchesReferenceAcrossScenarios drives the incidence sketches of
// every vertex through the update streams of every registered scenario
// generator and asserts that the flat arena path and the pointer-based
// reference path return identical QueryResults — per vertex after every
// batch, and along merged prefix sums (the Add path) at the end of the
// stream.
func TestArenaMatchesReferenceAcrossScenarios(t *testing.T) {
	const (
		n       = 24
		copies  = 5
		batches = 6
		k       = 12
	)
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			sc, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []uint64{3, 17} {
				p := newPaired(n, copies, seed^0xbeef)
				stream := workload.Record(sc.New(n, seed), batches, k)
				for bi, b := range stream {
					for _, u := range b {
						p.apply(u)
					}
					p.compareAll(t, sc.Name)
					_ = bi
				}
				p.comparePrefixSums(t, sc.Name)
			}
		})
	}
}

// TestRandomOpsEquivalence hammers both representations with the same
// randomized Update/Add/Query sequence over a small set of standalone
// sketches: whatever cell states the sequence produces (including vectors
// outside the ±1 regime after sums), the two paths must stay cell-for-cell
// equivalent, hence query-for-query identical.
func TestRandomOpsEquivalence(t *testing.T) {
	const (
		idSpace = 1 << 9
		copies  = 4
		sketchN = 4
		ops     = 3000
	)
	for _, seed := range []uint64{1, 2, 42} {
		space := sketch.NewSpace(idSpace, copies, hash.NewPRG(seed))
		refSpace := sketchtest.NewRefSpace(idSpace, copies, hash.NewPRG(seed))
		flat := make([]sketch.Sketch, sketchN)
		refs := make([]*sketchtest.RefSketch, sketchN)
		for i := range flat {
			flat[i] = space.NewSketch()
			refs[i] = refSpace.NewSketch()
		}
		prg := hash.NewPRG(seed * 7)
		for op := 0; op < ops; op++ {
			i := int(prg.NextN(sketchN))
			switch prg.NextN(4) {
			case 0, 1: // update
				idx := prg.NextN(idSpace)
				delta := 1
				if prg.Next()&1 == 0 {
					delta = -1
				}
				flat[i].Update(idx, delta)
				refs[i].Update(idx, delta)
			case 2: // add another sketch in
				j := int(prg.NextN(sketchN))
				if j == i {
					break
				}
				flat[i].Add(flat[j])
				refs[i].Add(refs[j])
			case 3: // sum into a pooled scratch and query it
				j := int(prg.NextN(sketchN))
				s := space.Scratch()
				s.CopyFrom(flat[i])
				s.Add(flat[j])
				r := refs[i].Clone()
				r.Add(refs[j])
				c := int(prg.NextN(copies))
				gotIdx, gotRes := s.Query(c)
				wantIdx, wantRes := r.Query(c)
				space.Release(s)
				if gotRes != wantRes || (gotRes == sketch.Found && gotIdx != wantIdx) {
					t.Fatalf("seed %d op %d: scratch sum query: arena (%d, %v) != reference (%d, %v)",
						seed, op, gotIdx, gotRes, wantIdx, wantRes)
				}
			}
			c := int(prg.NextN(copies))
			gotIdx, gotRes := flat[i].Query(c)
			wantIdx, wantRes := refs[i].Query(c)
			if gotRes != wantRes || (gotRes == sketch.Found && gotIdx != wantIdx) {
				t.Fatalf("seed %d op %d: sketch %d copy %d: arena (%d, %v) != reference (%d, %v)",
					seed, op, i, c, gotIdx, gotRes, wantIdx, wantRes)
			}
		}
	}
}
