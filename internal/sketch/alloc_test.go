package sketch_test

import (
	"testing"

	"repro/internal/hash"
	"repro/internal/sketch"
)

// The allocation-budget tests lock in the zero-allocation contract of the
// flat arena representation: the sketch hot path (Update, Add, Query, and
// the pooled scratch merge) must not allocate at steady state. They fail
// with the measured allocation count so a regression is immediately
// quantified.

func allocSpace() (*sketch.Space, *sketch.Arena) {
	space := sketch.NewSpace(1<<10, 6, hash.NewPRG(99))
	return space, space.NewArena(16)
}

func TestAllocsSketchUpdate(t *testing.T) {
	space, arena := allocSpace()
	sk := arena.At(3)
	idx := uint64(517)
	if n := testing.AllocsPerRun(200, func() {
		sk.Update(idx, +1)
		sk.Update(idx, -1)
	}); n != 0 {
		t.Fatalf("Sketch.Update allocates %.1f allocs/op on the steady state, want 0", n)
	}
	_ = space
}

func TestAllocsSketchAdd(t *testing.T) {
	space, arena := allocSpace()
	a, b := arena.At(0), arena.At(1)
	b.Update(12, +1)
	if n := testing.AllocsPerRun(200, func() {
		a.Add(b)
	}); n != 0 {
		t.Fatalf("Sketch.Add allocates %.1f allocs/op on the steady state, want 0", n)
	}
	_ = space
}

func TestAllocsSketchQuery(t *testing.T) {
	_, arena := allocSpace()
	sk := arena.At(5)
	sk.Update(7, +1)
	sk.Update(400, +1)
	if n := testing.AllocsPerRun(200, func() {
		for c := 0; c < 6; c++ {
			sk.Query(c)
		}
	}); n != 0 {
		t.Fatalf("Sketch.Query allocates %.1f allocs/op on the steady state, want 0", n)
	}
}

func TestAllocsScratchMerge(t *testing.T) {
	// The pooled scratch path used by the recovery-query merges: copy, sum,
	// query, release. Release boxes the slice header back into the pool, so
	// the budget here is the single pool put; everything else must be free.
	space, arena := allocSpace()
	a, b := arena.At(0), arena.At(1)
	a.Update(3, +1)
	b.Update(900, +1)
	if n := testing.AllocsPerRun(200, func() {
		s := space.Scratch()
		s.CopyFrom(a)
		s.Add(b)
		s.QueryAny(0)
		space.Release(s)
	}); n > 1 {
		t.Fatalf("scratch merge allocates %.1f allocs/op on the steady state, want <= 1 (the pool put)", n)
	}
}
