// Package sketch implements the linear ℓ0-sampling sketches of
// Cormode–Jowhari (Lemma 3.1 of the paper) and the AGM vertex-incidence
// sketches built from them (Section 3.1): compact, mergeable summaries of
// dynamically changing vectors over {-1, 0, +1}^N from which a uniformly
// random nonzero coordinate can be recovered.
//
// A Space fixes the shared randomness (hash functions) for a family of
// sketches; sketches from the same Space are linear: adding two sketches
// cell-wise yields a sketch of the sum of the underlying vectors. This is
// the property that makes the connectivity algorithm work — summing the
// vertex sketches of a set A cancels all edges internal to A and leaves
// exactly the edges of the cut E(A, V \ A) (Lemma 3.3).
//
// # Representation
//
// Sketch state is stored flat: every sketch is a run of SketchWords()
// machine words (t copies × (levels+1) cells × 3 words per cell), and a
// Sketch value is a cheap view — a Space pointer plus a word slice — not a
// heap object of its own. Views come from three places:
//
//   - an Arena, which backs all the vertex sketches of one machine shard
//     with a single contiguous allocation (see arena.go);
//   - Space.NewSketch, a standalone one-allocation sketch;
//   - Space.Scratch, a sync.Pool-backed buffer for the transient
//     merge-and-query work of the recovery paths, returned with
//     Space.Release.
//
// Update, Add, Query and the cell-recovery scan all operate on the word
// slices in place and perform no allocation, which is what keeps the
// simulator's sketch hot path allocation-free at steady state.
package sketch

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/hash"
)

// QueryResult classifies the outcome of an ℓ0-sampler query.
type QueryResult int

// Query outcomes.
const (
	// Empty means the sketched vector is zero (the ⊥ outcome of Lemma 3.1
	// for ℓ0(X) = 0).
	Empty QueryResult = iota
	// Found means a nonzero coordinate was recovered.
	Found
	// Fail means the sampler could not recover a coordinate this time; the
	// caller should retry with an independent copy.
	Fail
)

// String implements fmt.Stringer.
func (r QueryResult) String() string {
	switch r {
	case Empty:
		return "empty"
	case Found:
		return "found"
	default:
		return "fail"
	}
}

// One cell is a one-sparse recovery structure — exact counter, index sum and
// a random linear fingerprint, all linear in the underlying vector — stored
// as three consecutive machine words. The counter word holds an int64 bit
// pattern; isum and fp are elements of F_p.
const (
	cellWords = 3
	offCount  = 0
	offIsum   = 1
	offFp     = 2
)

func cellZero(w []uint64) bool { return w[offCount]|w[offIsum]|w[offFp] == 0 }

func cellUpdate(w []uint64, idx, hfp uint64, delta int) {
	w[offCount] = uint64(int64(w[offCount]) + int64(delta))
	if delta > 0 {
		w[offIsum] = addModP(w[offIsum], idx%hash.Prime)
		w[offFp] = addModP(w[offFp], hfp)
	} else {
		w[offIsum] = subModP(w[offIsum], idx%hash.Prime)
		w[offFp] = subModP(w[offFp], hfp)
	}
}

func addModP(a, b uint64) uint64 {
	s := a + b
	if s >= hash.Prime {
		s -= hash.Prime
	}
	return s
}

func subModP(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + hash.Prime - b
}

// cellRecover attempts one-sparse recovery on the cell at w. It succeeds
// only when the cell contains exactly one coordinate with value ±1 (the only
// values arising from simple-graph incidence vectors), verified against the
// fingerprint, so false positives occur with probability at most 1/Prime.
func cellRecover(w []uint64, fpHash *hash.Family, idSpace uint64) (idx uint64, ok bool) {
	switch int64(w[offCount]) {
	case 1:
		idx = w[offIsum]
	case -1:
		idx = subModP(0, w[offIsum])
	default:
		return 0, false
	}
	if idx >= idSpace {
		return 0, false
	}
	want := fpHash.Hash(idx)
	if int64(w[offCount]) == -1 {
		want = subModP(0, want)
	}
	if w[offFp] != want {
		return 0, false
	}
	return idx, true
}

// Space holds the shared randomness for a family of mergeable sketches: t
// independent copies, each with its own level hash and fingerprint hash.
// Every sketch that is ever added to another must come from the same Space.
type Space struct {
	idSpace uint64
	t       int
	levels  int
	stride  int // SketchWords(), cached
	levelH  []*hash.Family
	fpH     []*hash.Family
	scratch sync.Pool // *[]uint64 of stride words, see Scratch/Release
}

// NewSpace creates a space for vectors indexed by [0, idSpace) with t
// independent sampler copies per sketch, drawing randomness from prg.
func NewSpace(idSpace uint64, t int, prg *hash.PRG) *Space {
	if idSpace == 0 {
		panic("sketch: empty id space")
	}
	if t < 1 {
		panic(fmt.Sprintf("sketch: t = %d", t))
	}
	levels := 1
	for v := uint64(1); v < idSpace; v *= 2 {
		levels++
		if levels > 64 {
			break
		}
	}
	s := &Space{idSpace: idSpace, t: t, levels: levels}
	s.stride = t * (levels + 1) * cellWords
	s.levelH = make([]*hash.Family, t)
	s.fpH = make([]*hash.Family, t)
	for i := 0; i < t; i++ {
		s.levelH[i] = hash.NewFourwise(prg)
		s.fpH[i] = hash.NewFourwise(prg)
	}
	s.scratch.New = func() any {
		buf := make([]uint64, s.stride)
		return &buf
	}
	return s
}

// NewGraphSpace creates a space for the edge-incidence vectors of graphs on
// n vertices (index space n^2) with t copies.
func NewGraphSpace(n, t int, prg *hash.PRG) *Space {
	return NewSpace(graph.IDSpace(n), t, prg)
}

// Copies returns the number of independent sampler copies per sketch.
func (s *Space) Copies() int { return s.t }

// Levels returns the number of subsampling levels per copy.
func (s *Space) Levels() int { return s.levels }

// SketchWords returns the size in machine words of one sketch from this
// space; it is O(log^2 N) words: t copies of (levels+1) cells.
func (s *Space) SketchWords() int { return s.stride }

// Sketch is a linear ℓ0-sampling sketch of a vector in {-1,0,+1}^idSpace.
// It is a view: a Space pointer plus the SketchWords() backing words, which
// may live in an Arena, a standalone allocation, or a pooled scratch buffer.
// Copying a Sketch value aliases the same cells; use Clone for an
// independent copy. The zero value is not usable; see Valid.
type Sketch struct {
	space *Space
	cells []uint64
}

// NewSketch returns a standalone sketch of the zero vector (one allocation).
func (s *Space) NewSketch() Sketch {
	return Sketch{space: s, cells: make([]uint64, s.stride)}
}

// Scratch returns a zeroed sketch whose backing comes from the space's
// sync.Pool. It serves the transient merge-and-query work of the recovery
// paths (summing fragment or supernode sketches before Query) without
// allocating at steady state. The caller must hand the sketch back with
// Release once done and must not use it afterwards.
func (s *Space) Scratch() Sketch {
	buf := s.scratch.Get().(*[]uint64)
	clear(*buf)
	return Sketch{space: s, cells: *buf}
}

// Release returns a Scratch-obtained sketch to the pool. Releasing a sketch
// that is still referenced — or one backed by an Arena — corrupts whoever
// still holds the cells; only pass sketches obtained from Scratch whose last
// use has passed.
func (s *Space) Release(sk Sketch) {
	if sk.space != s {
		panic("sketch: Release of a sketch from a different space")
	}
	cells := sk.cells
	s.scratch.Put(&cells)
}

// Space returns the space the sketch belongs to.
func (sk Sketch) Space() *Space { return sk.space }

// Valid reports whether the view is usable (the zero Sketch is not).
func (sk Sketch) Valid() bool { return sk.space != nil }

// Words returns the sketch's size in machine words.
func (sk Sketch) Words() int { return len(sk.cells) }

// Cells exposes the raw backing words for codec use (encoding a sketch into
// a message frame). The slice must be treated as the sketch's private state:
// mutating it directly bypasses the cell invariants.
func (sk Sketch) Cells() []uint64 { return sk.cells }

// View wraps raw backing words (for example a decoded message frame) as a
// sketch of this space. The slice must be exactly SketchWords() long and
// must contain cell words previously produced by sketches of an identical
// space (same idSpace, copies, and PRG draws).
func (s *Space) View(cells []uint64) Sketch {
	if len(cells) != s.stride {
		panic(fmt.Sprintf("sketch: view of %d words, stride %d", len(cells), s.stride))
	}
	return Sketch{space: s, cells: cells}
}

// Update applies X[idx] += delta; delta must be +1 or -1.
func (sk Sketch) Update(idx uint64, delta int) {
	if delta != 1 && delta != -1 {
		panic(fmt.Sprintf("sketch: delta %d", delta))
	}
	if idx >= sk.space.idSpace {
		panic(fmt.Sprintf("sketch: index %d out of space %d", idx, sk.space.idSpace))
	}
	L := sk.space.levels
	for c := 0; c < sk.space.t; c++ {
		lvl := sk.space.levelH[c].Level(idx, L)
		hfp := sk.space.fpH[c].Hash(idx)
		base := c * (L + 1) * cellWords
		// Design: level l holds all items whose sampling level is >= l, so
		// level 0 always holds the full vector and level l subsamples with
		// probability 2^-l.
		for l := 0; l <= lvl; l++ {
			cellUpdate(sk.cells[base+l*cellWords:], idx, hfp, delta)
		}
	}
}

// Add merges other into sk cell-wise. Both sketches must come from the same
// Space; afterwards sk summarizes the sum of the two vectors.
func (sk Sketch) Add(other Sketch) {
	if sk.space != other.space {
		panic("sketch: adding sketches from different spaces")
	}
	a, b := sk.cells, other.cells
	for i := 0; i < len(a); i += cellWords {
		// Two's-complement wrap-around makes uint64 addition exactly the
		// int64 counter addition of the original cell representation.
		a[i+offCount] += b[i+offCount]
		a[i+offIsum] = addModP(a[i+offIsum], b[i+offIsum])
		a[i+offFp] = addModP(a[i+offFp], b[i+offFp])
	}
}

// CopyFrom overwrites sk's cells with other's. Both must share a Space.
func (sk Sketch) CopyFrom(other Sketch) {
	if sk.space != other.space {
		panic("sketch: copying a sketch from a different space")
	}
	copy(sk.cells, other.cells)
}

// Zero resets the sketch to the zero vector in place.
func (sk Sketch) Zero() { clear(sk.cells) }

// Clone returns an independent deep copy of the sketch (one allocation; for
// an allocation-free transient copy use Space.Scratch plus CopyFrom).
func (sk Sketch) Clone() Sketch {
	c := Sketch{space: sk.space, cells: make([]uint64, len(sk.cells))}
	copy(c.cells, sk.cells)
	return c
}

// Sum returns a fresh sketch equal to the cell-wise sum of the arguments,
// which must be non-empty and share a Space. Each operand's space is checked
// against the first operand's, and a mismatch names the offending argument
// index.
func Sum(sketches ...Sketch) Sketch {
	if len(sketches) == 0 {
		panic("sketch: Sum of nothing")
	}
	out := sketches[0].Clone()
	for i, s := range sketches[1:] {
		if s.space != out.space {
			panic(fmt.Sprintf("sketch: Sum argument %d is from a different space than argument 0", i+1))
		}
		out.Add(s)
	}
	return out
}

// Query attempts to recover a nonzero coordinate using copy c. Each copy is
// an independent sampler: it fails with at most constant probability, so
// querying different copies for the same vector boosts success. Copies
// consumed by one Borůvka-style round must not be reused in later rounds of
// the same extraction (the vector then depends on the copy's randomness).
func (sk Sketch) Query(c int) (idx uint64, res QueryResult) {
	if c < 0 || c >= sk.space.t {
		panic(fmt.Sprintf("sketch: copy %d of %d", c, sk.space.t))
	}
	L := sk.space.levels
	base := c * (L + 1) * cellWords
	if cellZero(sk.cells[base:]) {
		return 0, Empty
	}
	// Scan from the sparsest level down; the first one-sparse cell yields
	// the sample.
	for l := L; l >= 0; l-- {
		if idx, ok := cellRecover(sk.cells[base+l*cellWords:], sk.space.fpH[c], sk.space.idSpace); ok {
			return idx, Found
		}
	}
	return 0, Fail
}

// QueryAny tries all copies starting from startCopy and returns the first
// decisive outcome. It reports Fail only if every copy fails.
func (sk Sketch) QueryAny(startCopy int) (idx uint64, res QueryResult) {
	t := sk.space.t
	for off := 0; off < t; off++ {
		c := (startCopy + off) % t
		idx, r := sk.Query(c)
		if r != Fail {
			return idx, r
		}
	}
	return 0, Fail
}

// EdgeSign returns the sign with which edge e contributes to the incidence
// vector X_w of vertex w: +1 when w is the larger endpoint, -1 when it is
// the smaller (Section 3.1). It panics if w is not an endpoint of e.
func EdgeSign(w int, e graph.Edge) int {
	c := e.Canonical()
	switch w {
	case c.V:
		return 1
	case c.U:
		return -1
	default:
		panic(fmt.Sprintf("sketch: vertex %d not an endpoint of %v", w, e))
	}
}

// VertexSketch is an AGM sketch of the incidence vector X_v of one vertex:
// a Sketch view plus the vertex count needed to map edges to coordinates.
// Like Sketch it is a value; copying it aliases the same cells.
type VertexSketch struct {
	Sketch
	n int
}

// NewVertexSketch returns the sketch of an isolated vertex in a graph on n
// vertices. space must have been built over id space n^2.
func NewVertexSketch(space *Space, n int) VertexSketch {
	if space.idSpace != graph.IDSpace(n) {
		panic("sketch: space does not match vertex count")
	}
	return VertexSketch{Sketch: space.NewSketch(), n: n}
}

// VertexView wraps an existing sketch view (typically an Arena slot) as the
// vertex sketch of a graph on n vertices.
func VertexView(sk Sketch, n int) VertexSketch {
	if sk.space.idSpace != graph.IDSpace(n) {
		panic("sketch: space does not match vertex count")
	}
	return VertexSketch{Sketch: sk, n: n}
}

// ApplyEdge updates the sketch of vertex w for an insertion (op =
// graph.Insert) or deletion of edge e incident to w.
func (vs VertexSketch) ApplyEdge(w int, e graph.Edge, op graph.Op) {
	sign := EdgeSign(w, e)
	if op == graph.Delete {
		sign = -sign
	}
	vs.Update(e.ID(vs.n), sign)
}

// QueryEdge recovers an edge of the cut around the sketched vertex set using
// copy c. The sign of the recovered coordinate is immaterial: coordinate
// indices identify edges directly.
func (vs VertexSketch) QueryEdge(c int) (graph.Edge, QueryResult) {
	idx, res := vs.Query(c)
	if res != Found {
		return graph.Edge{}, res
	}
	return graph.EdgeFromID(idx, vs.n), Found
}

// CloneVertex returns a deep copy preserving the vertex-sketch wrapper.
func (vs VertexSketch) CloneVertex() VertexSketch {
	return VertexSketch{Sketch: vs.Sketch.Clone(), n: vs.n}
}

// AddVertex merges another vertex sketch into vs; the result summarizes
// X_A for the union of the underlying vertex sets.
func (vs VertexSketch) AddVertex(other VertexSketch) {
	vs.Add(other.Sketch)
}
