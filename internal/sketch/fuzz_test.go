package sketch

import (
	"testing"

	"repro/internal/hash"
)

// FuzzSketchRecovery fuzzes the ℓ0-sampler soundness invariants over
// arbitrary insert/delete histories: a Found query must recover an index
// that is genuinely in the sketched vector's support, a zero vector must
// read Empty on every copy, and cancelling the support via linearity must
// return the sketch to Empty. Each byte of ops toggles one coordinate (so
// the vector stays in {0,1}^64, the incidence-vector regime).
func FuzzSketchRecovery(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 1})
	f.Add(uint64(7), []byte{0, 0})
	f.Add(uint64(42), []byte{})
	f.Add(uint64(9), []byte{63, 63, 63, 7, 7, 12, 255, 128})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		const idSpace = 64
		space := NewSpace(idSpace, 4, hash.NewPRG(seed))
		sk := space.NewSketch()
		support := map[uint64]bool{}
		for _, b := range ops {
			idx := uint64(b) % idSpace
			if support[idx] {
				sk.Update(idx, -1)
				delete(support, idx)
			} else {
				sk.Update(idx, +1)
				support[idx] = true
			}
		}
		for c := 0; c < space.Copies(); c++ {
			idx, res := sk.Query(c)
			switch res {
			case Found:
				if !support[idx] {
					t.Fatalf("copy %d recovered %d, not in the support (l0=%d)", c, idx, len(support))
				}
			case Empty:
				if len(support) != 0 {
					t.Fatalf("copy %d reads Empty but l0 = %d", c, len(support))
				}
			}
		}
		// Linearity: subtracting the support must cancel the sketch exactly.
		inv := sk.Clone()
		for idx := range support {
			inv.Update(idx, -1)
		}
		for c := 0; c < space.Copies(); c++ {
			if _, res := inv.Query(c); res != Empty {
				t.Fatalf("cancelled sketch still reads %v on copy %d", res, c)
			}
		}
	})
}
