package sketch

import (
	"fmt"
	"math/bits"
)

// Arena owns the backing store for a fixed number of sketches of one Space
// in a single contiguous []uint64, laid out back to back with a stride of
// SketchWords() words. Machine shards allocate one arena per vertex range
// instead of one heap object per vertex sketch, so updating, merging, and
// encoding sketches touches one flat buffer: no per-sketch pointer chasing
// and no allocation on the update path.
type Arena struct {
	space  *Space
	buf    []uint64
	stride int

	// dirty is a bitmap over the arena's regions — one region per sketch
	// (stride words), which is exact because an update to a vertex sketch
	// touches every copy within its stride. MarkDirty sets bits; the
	// checkpoint layer walks and resets them. The bitmap is bookkeeping, not
	// sketch state: it is excluded from Words() so memory metering and
	// golden Stats are unchanged.
	dirty      []uint64
	dirtyCount int
}

// NewArena returns an arena backing count zero sketches.
func (s *Space) NewArena(count int) *Arena {
	if count < 0 {
		panic(fmt.Sprintf("sketch: arena of %d sketches", count))
	}
	return &Arena{
		space:  s,
		buf:    make([]uint64, count*s.stride),
		stride: s.stride,
		dirty:  make([]uint64, (count+63)/64),
	}
}

// Space returns the space whose sketches the arena backs.
func (a *Arena) Space() *Space { return a.space }

// Len returns the number of sketches the arena backs.
func (a *Arena) Len() int {
	if a.stride == 0 {
		return 0
	}
	return len(a.buf) / a.stride
}

// Words returns the arena's total footprint in machine words; it equals
// Len() * SketchWords(), the same accounting as Len() individual sketches.
func (a *Arena) Words() int { return len(a.buf) }

// At returns the view of sketch i. The view is full-sliced so appends
// through it cannot spill into the neighboring sketch.
func (a *Arena) At(i int) Sketch {
	off := i * a.stride
	return Sketch{space: a.space, cells: a.buf[off : off+a.stride : off+a.stride]}
}

// VertexAt returns sketch i wrapped as the vertex sketch of a graph on n
// vertices.
func (a *Arena) VertexAt(i, n int) VertexSketch {
	return VertexView(a.At(i), n)
}

// Raw exposes the arena's contiguous backing words for checkpoint codecs.
// Like Sketch.Cells, the slice is the arena's private state: treat it as
// read-only and do not retain it across arena mutations.
func (a *Arena) Raw() []uint64 { return a.buf }

// LoadRaw overwrites the arena's backing words from a checkpointed image.
// The image must come from an arena of the same shape (same Space
// parameters and sketch count); a length mismatch is rejected. Loading a
// full image resets dirty tracking — the arena now equals a checkpointed
// state exactly.
func (a *Arena) LoadRaw(words []uint64) error {
	if len(words) != len(a.buf) {
		return fmt.Errorf("sketch: arena image of %d words, want %d (shape mismatch)", len(words), len(a.buf))
	}
	copy(a.buf, words)
	a.ResetDirty()
	return nil
}

// MarkDirty records that region (sketch) i changed since the last
// ResetDirty. The update path calls it alongside every arena mutation; it
// is a two-word bit set, cheap enough for the hot path.
func (a *Arena) MarkDirty(i int) {
	w, b := i/64, uint64(1)<<(i%64)
	if a.dirty[w]&b == 0 {
		a.dirty[w] |= b
		a.dirtyCount++
	}
}

// DirtyCount returns the number of regions marked dirty since the last
// ResetDirty.
func (a *Arena) DirtyCount() int { return a.dirtyCount }

// ForEachDirtyRegion calls fn for every dirty region in ascending index
// order with the region's backing words (stride words, full-sliced). It
// does not reset the bitmap — the caller acknowledges separately once the
// encoded delta is durable.
func (a *Arena) ForEachDirtyRegion(fn func(i int, words []uint64)) {
	for w, b := range a.dirty {
		for b != 0 {
			i := w*64 + bits.TrailingZeros64(b)
			off := i * a.stride
			fn(i, a.buf[off:off+a.stride:off+a.stride])
			b &= b - 1
		}
	}
}

// ResetDirty clears the dirty bitmap: the arena's current contents are the
// new checkpointed baseline.
func (a *Arena) ResetDirty() {
	if a.dirtyCount == 0 {
		return
	}
	clear(a.dirty)
	a.dirtyCount = 0
}

// ApplyRegion overwrites region i from a delta image. The image must be
// exactly one stride; out-of-range regions and length mismatches are
// rejected before anything is written. Applying a region does not mark it
// dirty — restore rebuilds checkpointed state, it does not create new
// changes.
func (a *Arena) ApplyRegion(i int, words []uint64) error {
	if i < 0 || i >= a.Len() {
		return fmt.Errorf("sketch: arena delta region %d out of range [0,%d)", i, a.Len())
	}
	if len(words) != a.stride {
		return fmt.Errorf("sketch: arena delta region of %d words, want stride %d", len(words), a.stride)
	}
	copy(a.buf[i*a.stride:], words)
	return nil
}
