package sketch

import "fmt"

// Arena owns the backing store for a fixed number of sketches of one Space
// in a single contiguous []uint64, laid out back to back with a stride of
// SketchWords() words. Machine shards allocate one arena per vertex range
// instead of one heap object per vertex sketch, so updating, merging, and
// encoding sketches touches one flat buffer: no per-sketch pointer chasing
// and no allocation on the update path.
type Arena struct {
	space  *Space
	buf    []uint64
	stride int
}

// NewArena returns an arena backing count zero sketches.
func (s *Space) NewArena(count int) *Arena {
	if count < 0 {
		panic(fmt.Sprintf("sketch: arena of %d sketches", count))
	}
	return &Arena{space: s, buf: make([]uint64, count*s.stride), stride: s.stride}
}

// Space returns the space whose sketches the arena backs.
func (a *Arena) Space() *Space { return a.space }

// Len returns the number of sketches the arena backs.
func (a *Arena) Len() int {
	if a.stride == 0 {
		return 0
	}
	return len(a.buf) / a.stride
}

// Words returns the arena's total footprint in machine words; it equals
// Len() * SketchWords(), the same accounting as Len() individual sketches.
func (a *Arena) Words() int { return len(a.buf) }

// At returns the view of sketch i. The view is full-sliced so appends
// through it cannot spill into the neighboring sketch.
func (a *Arena) At(i int) Sketch {
	off := i * a.stride
	return Sketch{space: a.space, cells: a.buf[off : off+a.stride : off+a.stride]}
}

// VertexAt returns sketch i wrapped as the vertex sketch of a graph on n
// vertices.
func (a *Arena) VertexAt(i, n int) VertexSketch {
	return VertexView(a.At(i), n)
}

// Raw exposes the arena's contiguous backing words for checkpoint codecs.
// Like Sketch.Cells, the slice is the arena's private state: treat it as
// read-only and do not retain it across arena mutations.
func (a *Arena) Raw() []uint64 { return a.buf }

// LoadRaw overwrites the arena's backing words from a checkpointed image.
// The image must come from an arena of the same shape (same Space
// parameters and sketch count); a length mismatch is rejected.
func (a *Arena) LoadRaw(words []uint64) error {
	if len(words) != len(a.buf) {
		return fmt.Errorf("sketch: arena image of %d words, want %d (shape mismatch)", len(words), len(a.buf))
	}
	copy(a.buf, words)
	return nil
}
