package mpc

import (
	"fmt"
	"sort"
)

// Sized is implemented by any value whose size in machine words is known.
// All message payloads and all machine-store values must be Sized so the
// simulator can enforce communication caps and meter memory.
type Sized interface {
	Words() int
}

// U64s is a word slice payload; its size is its length.
type U64s []uint64

// Words implements Sized.
func (u U64s) Words() int { return len(u) }

// Ints is an int slice payload; its size is its length.
type Ints []int

// Words implements Sized.
func (i Ints) Words() int { return len(i) }

// Word is a single-word payload.
type Word uint64

// Words implements Sized.
func (Word) Words() int { return 1 }

// Value wraps an arbitrary value with an explicitly declared word size. Use
// it for structured payloads whose size the caller has computed.
type Value struct {
	V any
	N int
}

// Words implements Sized.
func (v Value) Words() int { return v.N }

// Message is a point-to-point message delivered at the start of the next
// round.
type Message struct {
	From, To int
	Payload  Sized
}

// Config parameterizes a Cluster.
type Config struct {
	// Machines is the number of machines; must be positive.
	Machines int
	// LocalMemory is the per-machine memory and per-round communication
	// budget s, in words; must be positive.
	LocalMemory int
	// Strict makes cap violations panic immediately instead of being
	// recorded in Stats.Violations. Tests use Strict to fail fast.
	Strict bool
	// Parallelism selects the execution engine that fans the per-machine
	// work of every round out over OS threads: 0 or 1 runs machines
	// sequentially on the calling goroutine, k > 1 uses a worker pool of k
	// goroutines, and a negative value uses runtime.NumCPU() workers.
	//
	// Rounds, message ordering, Stats, and violation reporting are
	// bit-identical at every setting; parallelism changes wall-clock time
	// only. See StepFunc for the concurrency contract callbacks must obey.
	Parallelism int
}

// Stats aggregates the execution metrics the experiments report.
type Stats struct {
	// Rounds is the number of synchronous communication rounds executed.
	Rounds int
	// Messages is the total number of messages routed.
	Messages int64
	// WordsSent is the total number of payload words moved.
	WordsSent int64
	// MaxRecvWords is the largest number of words received by a single
	// machine in a single round.
	MaxRecvWords int
	// MaxSendWords is the largest number of words sent by a single machine
	// in a single round.
	MaxSendWords int
	// PeakMachineWords is the largest local store of any machine at any
	// round boundary.
	PeakMachineWords int
	// PeakTotalWords is the largest total memory (sum over machines) at any
	// round boundary.
	PeakTotalWords int
	// Violations records cap violations when Strict is off.
	Violations []string
}

// Machine is one MPC machine. Its Store maps named slots to Sized state; the
// cluster sums the slots to meter memory. Algorithms typically keep one shard
// struct per machine under a well-known slot name.
type Machine struct {
	// ID is the machine index in [0, Machines).
	ID int
	// Store holds the machine's local state.
	Store map[string]Sized
}

// StateWords returns the machine's current local memory use in words.
func (m *Machine) StateWords() int {
	total := 0
	for _, v := range m.Store {
		total += v.Words()
	}
	return total
}

// Get returns the store slot named key, or nil if absent.
func (m *Machine) Get(key string) Sized { return m.Store[key] }

// Set assigns the store slot named key.
func (m *Machine) Set(key string, v Sized) { m.Store[key] = v }

// Delete removes the store slot named key.
func (m *Machine) Delete(key string) { delete(m.Store, key) }

// Cluster is a simulated MPC system.
//
// The per-round working buffers (outboxes, the spare inbox set, word
// counters, the routing-prep slots, the merge-shard buckets) and the
// executor dispatch closures are allocated once here and reused every
// round, so a steady-state Step performs no allocation of its own: whatever
// a round allocates comes from the algorithm's callback.
type Cluster struct {
	cfg      Config
	exec     Executor
	machines []*Machine
	inboxes  [][]Message
	stats    Stats

	// Reused round scratch. spare is the second half of the inbox double
	// buffer: every Step fills it, swaps it with inboxes, and truncates the
	// retired set for the next round.
	outs       [][]Message
	spare      [][]Message
	stateWords []int
	recvWords  []int

	// Routing prep, written by the parallel phase of Step (each slot i is
	// written only by the invocation for machine i, so the slots are
	// race-free under any executor). The encode work that the merge used to
	// do serially per message — destination validation, payload sizing, and
	// destination-shard classification — happens here, overlapped with the
	// round's compute.
	sendWords []int   // valid payload words sent by machine i
	msgCount  []int   // valid messages emitted by machine i
	msgWords  [][]int // per-message payload words, parallel to outs[i] (0 for invalid)
	invalid   [][]int // invalid destinations of machine i, in outbox order

	// Destination-sharded merge: the destination range [0, M) is split into
	// mergeShards contiguous ranges of mergePer machines each; routed[i][s]
	// holds the indices (into outs[i]) of machine i's messages destined for
	// shard s, bucketed during the parallel phase. routed is nil under the
	// sequential executor, where the single merge shard scans outboxes
	// directly.
	mergeShards int
	mergePer    int
	routed      [][][]int32

	// stepFn/localFn hold the current round's callback for the preallocated
	// dispatch closures below (building a fresh closure per round would
	// allocate).
	stepFn   StepFunc
	localFn  func(m *Machine)
	runStep  func(i int)
	runLocal func(i int)
	runMeter func(i int)
	runMerge func(s int)

	// agg is the reusable scratch of AggregateBatches and runAgg its
	// once-built per-round callback (see aggregate.go).
	agg    aggState
	runAgg StepFunc
}

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		panic(fmt.Sprintf("mpc: %d machines", cfg.Machines))
	}
	if cfg.LocalMemory <= 0 {
		panic(fmt.Sprintf("mpc: local memory %d", cfg.LocalMemory))
	}
	c := &Cluster{
		cfg:        cfg,
		exec:       NewExecutor(cfg.Parallelism),
		machines:   make([]*Machine, cfg.Machines),
		inboxes:    make([][]Message, cfg.Machines),
		outs:       make([][]Message, cfg.Machines),
		spare:      make([][]Message, cfg.Machines),
		stateWords: make([]int, cfg.Machines),
		recvWords:  make([]int, cfg.Machines),
		sendWords:  make([]int, cfg.Machines),
		msgCount:   make([]int, cfg.Machines),
		msgWords:   make([][]int, cfg.Machines),
		invalid:    make([][]int, cfg.Machines),
	}
	for i := range c.machines {
		c.machines[i] = &Machine{ID: i, Store: make(map[string]Sized)}
	}
	// The merge phase is destination-sharded under a parallel executor: a
	// couple of shards per worker gives the work-stealing scheduler room to
	// balance destination skew, while a single shard under the sequential
	// executor degenerates to the serial scan (no bucketing overhead).
	c.mergeShards = 1
	if w := c.exec.Parallelism(); w > 1 {
		c.mergeShards = 2 * w
		if c.mergeShards > cfg.Machines {
			c.mergeShards = cfg.Machines
		}
		c.routed = make([][][]int32, cfg.Machines)
		for i := range c.routed {
			c.routed[i] = make([][]int32, c.mergeShards)
		}
	}
	c.mergePer = (cfg.Machines + c.mergeShards - 1) / c.mergeShards
	c.runStep = func(i int) {
		out := c.stepFn(c.machines[i], c.inboxes[i])
		c.outs[i] = out
		c.stateWords[i] = c.machines[i].StateWords()
		c.prepRoute(i, out)
	}
	c.runLocal = func(i int) {
		c.localFn(c.machines[i])
		c.stateWords[i] = c.machines[i].StateWords()
	}
	c.runMeter = func(i int) {
		c.stateWords[i] = c.machines[i].StateWords()
	}
	c.runMerge = c.mergeShard
	c.agg.acc = make([]*MessageBatch, cfg.Machines)
	c.agg.outs = make([][]Message, cfg.Machines)
	for i := range c.agg.outs {
		c.agg.outs[i] = make([]Message, 0, 1)
	}
	c.runAgg = c.aggStep
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the number of machines.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// LocalMemory returns the per-machine memory budget s in words.
func (c *Cluster) LocalMemory() int { return c.cfg.LocalMemory }

// Parallelism returns the number of worker goroutines of the cluster's
// execution engine (1 for the sequential executor).
func (c *Cluster) Parallelism() int { return c.exec.Parallelism() }

// Machine returns machine i. It is exported for tests and for loading input
// shards before an execution begins; algorithms must not use it to bypass
// message passing mid-run.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }

// Stats returns a copy of the execution metrics so far.
func (c *Cluster) Stats() Stats { return c.stats }

// ResetStats zeroes the metrics (keeping machine state), so callers can meter
// a phase in isolation.
func (c *Cluster) ResetStats() { c.stats = Stats{} }

// RestoreStats overwrites the metrics wholesale, as part of restoring a
// checkpoint: together with reloaded machine stores this makes a resumed
// execution's Stats bit-identical to an uninterrupted one. The violations
// slice is copied so the caller's snapshot buffers are not aliased.
func (c *Cluster) RestoreStats(st Stats) {
	st.Violations = append([]string(nil), st.Violations...)
	c.stats = st
}

// violate records or raises a cap violation.
func (c *Cluster) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c.cfg.Strict {
		panic("mpc: " + msg)
	}
	c.stats.Violations = append(c.stats.Violations, msg)
}

// StepFunc is the per-machine computation of one round. It receives the
// machine and the messages delivered this round and returns the messages to
// send; returned messages are delivered at the start of the next round.
//
// Buffer lifetimes: the inbox slice is valid only for the duration of the
// callback (its backing array is recycled two rounds later), so callbacks
// must not retain it — payload values may be retained as usual. The
// returned slice is copied out during the round's merge phase, so callers
// may reuse a per-machine outbox buffer across rounds.
//
// Concurrency contract: the cluster may invoke the callback for different
// machines concurrently (Config.Parallelism), so the callback must touch
// only the state of the machine it was invoked for — its Store, its inbox,
// and (for coordinator-side collectives) slots of caller-owned slices or
// maps indexed by that machine's id or rank. Values received in messages or
// installed by Broadcast are shared, not copied, and must be treated as
// read-only. The same contract applies to LocalAt/LocalAll callbacks and to
// the callbacks of every collective built on Step.
type StepFunc func(m *Machine, inbox []Message) []Message

// prepRoute is the encode half of the routing pipeline, run inside the
// parallel phase by the invocation for machine i (overlapped with the other
// machines' compute): it validates destinations, sizes every payload once,
// and — under a parallel merge — buckets the outbox by destination shard.
// All writes go to slot i of caller-owned slices, honoring the executor
// contract.
func (c *Cluster) prepRoute(i int, out []Message) {
	M := c.cfg.Machines
	words := c.msgWords[i][:0]
	inv := c.invalid[i][:0]
	var buckets [][]int32
	if c.routed != nil {
		buckets = c.routed[i]
		for s := range buckets {
			buckets[s] = buckets[s][:0]
		}
	}
	sw, cnt := 0, 0
	for k := range out {
		to := out[k].To
		if to < 0 || to >= M {
			inv = append(inv, to)
			words = append(words, 0)
			continue
		}
		w := 0
		if p := out[k].Payload; p != nil {
			w = p.Words()
		}
		words = append(words, w)
		sw += w
		cnt++
		if buckets != nil {
			s := to / c.mergePer
			buckets[s] = append(buckets[s], int32(k))
		}
	}
	c.msgWords[i] = words
	c.invalid[i] = inv
	c.sendWords[i] = sw
	c.msgCount[i] = cnt
}

// mergeShard routes every message destined for shard s's contiguous
// destination range into the spare inbox set and accumulates the per-
// destination receive totals. Shards own disjoint destination ranges, so
// concurrent shard sweeps never write the same inbox or counter; within one
// destination, messages land in ascending sender id and, per sender, in
// outbox order — the same order the serial merge produces, which is what
// keeps inbox contents bit-identical at every parallelism level.
func (c *Cluster) mergeShard(s int) {
	lo := s * c.mergePer
	hi := lo + c.mergePer
	if hi > c.cfg.Machines {
		hi = c.cfg.Machines
	}
	next := c.spare
	// Truncate this shard's buffers here rather than trusting the previous
	// round's cleanup: if a Strict-mode violation panicked mid-round and
	// the caller recovered, the spare set still holds that round's merge,
	// which must not leak into this one.
	for dst := lo; dst < hi; dst++ {
		clear(next[dst])
		next[dst] = next[dst][:0]
		c.recvWords[dst] = 0
	}
	if c.routed == nil {
		// Single-shard serial merge: scan the outboxes directly, skipping
		// invalid destinations (prepRoute already recorded them).
		for i, out := range c.outs {
			words := c.msgWords[i]
			for k := range out {
				to := out[k].To
				if to < lo || to >= hi {
					continue
				}
				msg := out[k]
				msg.From = i
				next[to] = append(next[to], msg)
				c.recvWords[to] += words[k]
			}
		}
		return
	}
	for i, out := range c.outs {
		words := c.msgWords[i]
		for _, k := range c.routed[i][s] {
			msg := out[k]
			msg.From = i
			next[msg.To] = append(next[msg.To], msg)
			c.recvWords[msg.To] += words[k]
		}
	}
}

// Step executes one synchronous round on all machines.
//
// The round is a three-phase pipeline. The compute/encode phase fans fn out
// across machines through the executor; each invocation writes its outgoing
// messages and post-round store size into per-machine slots and then
// immediately prepares its own outbox for routing (prepRoute: destination
// validation, payload sizing, destination-shard bucketing), so the encode
// work overlaps the other machines' compute instead of serializing at the
// barrier. The route phase sweeps the prepared outboxes into the inbox
// double buffer by contiguous destination shard — also through the
// executor, since shards own disjoint destinations. The meter phase then
// folds the per-machine totals into Stats in ascending machine id on the
// calling goroutine: cap enforcement, violation recording, and memory
// sampling, batched per machine rather than per message.
//
// Because inbox order within every destination is ascending sender id (and
// outbox order per sender) no matter how either parallel phase was
// scheduled, and the meter fold always runs in machine order, inbox
// ordering, Stats, and violation reporting are bit-identical at every
// parallelism level. A Strict-mode cap violation panics during the meter
// fold, after routing: the round's deliveries are complete but unswapped,
// and the next Step's route phase truncates them, so a recovered panic
// cannot leak a partial round into the next one.
func (c *Cluster) Step(fn StepFunc) {
	c.stepFn = fn
	c.exec.Run(c.cfg.Machines, c.runStep)
	c.stepFn = nil
	c.exec.Run(c.mergeShards, c.runMerge)
	// Meter fold: batched cap enforcement in machine order. Sender-side
	// first (invalid destinations in outbox order, then the send cap, per
	// sender), then receiver-side — the exact order of the old per-message
	// serial merge, so violation strings line up bit-identically.
	for i := range c.outs {
		for _, to := range c.invalid[i] {
			c.violate("machine %d sent to invalid machine %d", i, to)
		}
		sw := c.sendWords[i]
		c.stats.Messages += int64(c.msgCount[i])
		c.stats.WordsSent += int64(sw)
		c.outs[i] = nil
		if sw > c.cfg.LocalMemory {
			c.violate("machine %d sent %d words in one round (cap %d)", i, sw, c.cfg.LocalMemory)
		}
		if sw > c.stats.MaxSendWords {
			c.stats.MaxSendWords = sw
		}
	}
	for i, w := range c.recvWords {
		if w > c.cfg.LocalMemory {
			c.violate("machine %d received %d words in one round (cap %d)", i, w, c.cfg.LocalMemory)
		}
		if w > c.stats.MaxRecvWords {
			c.stats.MaxRecvWords = w
		}
	}
	retired := c.inboxes
	c.inboxes = c.spare
	// Drop payload references from the retired inboxes eagerly (they are
	// truncated again, defensively, at the next route phase) and keep their
	// backing arrays as the next round's merge buffers.
	for i := range retired {
		clear(retired[i])
		retired[i] = retired[i][:0]
	}
	c.spare = retired
	c.stats.Rounds++
	c.reduceMemory(c.stateWords)
}

// meterMemory samples per-machine and total memory at the round boundary:
// the store walks run through the executor, the reduction into Stats runs in
// machine order on the calling goroutine.
func (c *Cluster) meterMemory() {
	c.exec.Run(c.cfg.Machines, c.runMeter)
	c.reduceMemory(c.stateWords)
}

// reduceMemory folds pre-computed per-machine store sizes into the memory
// peaks and cap violations, in machine order.
func (c *Cluster) reduceMemory(stateWords []int) {
	total := 0
	for i, w := range stateWords {
		total += w
		if w > c.stats.PeakMachineWords {
			c.stats.PeakMachineWords = w
		}
		if w > c.cfg.LocalMemory {
			c.violate("machine %d stores %d words (cap %d)", i, w, c.cfg.LocalMemory)
		}
	}
	if total > c.stats.PeakTotalWords {
		c.stats.PeakTotalWords = total
	}
}

// LocalAt runs fn on machine id without advancing the round: it models local
// computation between communication rounds, which is free in the MPC model.
// Memory is re-metered afterwards so state growth is still observed.
func (c *Cluster) LocalAt(id int, fn func(m *Machine)) {
	fn(c.machines[id])
	c.meterMemory()
}

// LocalAll runs fn on every machine without advancing the round. The
// callbacks run through the executor and must obey the StepFunc concurrency
// contract.
func (c *Cluster) LocalAll(fn func(m *Machine)) {
	c.localFn = fn
	c.exec.Run(c.cfg.Machines, c.runLocal)
	c.localFn = nil
	c.reduceMemory(c.stateWords)
}

// fanout returns the broadcast/aggregation tree fanout for payloads of w
// words: the number of children one machine can serve within its
// communication budget, at least 2.
func (c *Cluster) fanout(w int) int {
	if w <= 0 {
		w = 1
	}
	f := c.cfg.LocalMemory / w
	if f < 2 {
		f = 2
	}
	return f
}

// treeDepth returns ceil(log_f(m)) with a minimum of 1.
func treeDepth(m, f int) int {
	if m <= 1 {
		return 1
	}
	depth := 0
	reach := 1
	for reach < m {
		reach *= f
		depth++
	}
	return depth
}

// Broadcast delivers payload from machine `from` to every machine via a
// fanout tree, storing it on arrival under store slot `slot`. It costs
// ceil(log_f M) rounds where f = s / payload words. The payload value is
// shared (not copied); receivers must treat it as read-only.
func (c *Cluster) Broadcast(from int, slot string, payload Sized) {
	w := payload.Words()
	f := c.fanout(w)
	c.machines[from].Set(slot, payload)
	// covered[i] reports whether machine i holds the payload already. We
	// relabel machines so that the source is rank 0 of a contiguous tree.
	M := c.cfg.Machines
	rank := func(id int) int { return (id - from + M) % M }
	unrank := func(r int) int { return (r + from) % M }
	depth := treeDepth(M, f)
	frontier := 1 // ranks [0, frontier) hold the payload
	for d := 0; d < depth; d++ {
		fr := frontier
		c.Step(func(m *Machine, inbox []Message) []Message {
			for _, msg := range inbox {
				m.Set(slot, msg.Payload)
			}
			r := rank(m.ID)
			if r >= fr {
				return nil
			}
			var out []Message
			for ch := 1; ch <= f-1; ch++ {
				cr := r + ch*fr
				if cr >= M {
					break
				}
				out = append(out, Message{To: unrank(cr), Payload: payload})
			}
			return out
		})
		frontier *= f
		if frontier >= M {
			// All machines receive in the round that just executed only if
			// they were targeted; one more delivery round may still be
			// pending in inboxes. Deliver it.
			if d == depth-1 {
				break
			}
		}
	}
	// Flush any in-flight deliveries from the last round.
	c.flushDeliveries(slot)
}

// flushDeliveries runs a zero-send step if any inbox is non-empty so that
// pending payloads land in stores.
func (c *Cluster) flushDeliveries(slot string) {
	pending := false
	for _, in := range c.inboxes {
		if len(in) > 0 {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			m.Set(slot, msg.Payload)
		}
		return nil
	})
}

// Gather collects one payload from every machine onto machine `to` and
// returns them indexed by source machine. Payloads are funneled through an
// aggregation tree whose fanout is sized for the total volume, costing
// ceil(log_f M) rounds. The caller is responsible for the total volume
// fitting in the destination's memory; the cluster meters violations.
// Machines whose collect returns nil contribute nothing.
func (c *Cluster) Gather(to int, collect func(m *Machine) Sized) map[int]Sized {
	type item struct {
		src     int
		payload Sized
	}
	M := c.cfg.Machines
	// held[i] = items currently buffered at machine with rank i.
	rank := func(id int) int { return (id - to + M) % M }
	unrank := func(r int) int { return (r + to) % M }
	held := make([][]item, M)
	maxW := 1
	for _, m := range c.machines {
		if p := collect(m); p != nil {
			held[rank(m.ID)] = append(held[rank(m.ID)], item{src: m.ID, payload: p})
			if w := p.Words(); w > maxW {
				maxW = w
			}
		}
	}
	f := c.fanout(maxW * 2)
	depth := treeDepth(M, f)
	groupSize := 1
	for d := 0; d < depth; d++ {
		gs := groupSize
		c.Step(func(m *Machine, inbox []Message) []Message {
			r := rank(m.ID)
			for _, msg := range inbox {
				it := msg.Payload.(Value).V.(item)
				held[r] = append(held[r], it)
			}
			if r == 0 || r%(gs*f) == 0 || r%gs != 0 {
				return nil
			}
			parent := unrank(r - r%(gs*f))
			var out []Message
			for _, it := range held[r] {
				out = append(out, Message{To: parent, Payload: Value{V: it, N: it.payload.Words()}})
			}
			held[r] = nil
			return out
		})
		groupSize *= f
	}
	// Final delivery flush.
	c.Step(func(m *Machine, inbox []Message) []Message {
		r := rank(m.ID)
		for _, msg := range inbox {
			it := msg.Payload.(Value).V.(item)
			held[r] = append(held[r], it)
		}
		return nil
	})
	out := make(map[int]Sized, len(held[0]))
	for _, it := range held[0] {
		out[it.src] = it.payload
	}
	return out
}

// Aggregate tree-combines one Sized item per machine into a single item at
// machine `to` and returns it. combine must be associative; items are
// combined eagerly at internal tree nodes so per-round traffic stays at one
// item per edge of the tree. Machines may contribute nil to mean "no item".
func (c *Cluster) Aggregate(to int, collect func(m *Machine) Sized, combine func(a, b Sized) Sized) Sized {
	M := c.cfg.Machines
	rank := func(id int) int { return (id - to + M) % M }
	unrank := func(r int) int { return (r + to) % M }
	acc := make([]Sized, M)
	maxW := 1
	for _, m := range c.machines {
		p := collect(m)
		acc[rank(m.ID)] = p
		if p != nil && p.Words() > maxW {
			maxW = p.Words()
		}
	}
	f := c.fanout(maxW)
	depth := treeDepth(M, f)
	groupSize := 1
	for d := 0; d < depth; d++ {
		gs := groupSize
		c.Step(func(m *Machine, inbox []Message) []Message {
			r := rank(m.ID)
			for _, msg := range inbox {
				p := msg.Payload
				if acc[r] == nil {
					acc[r] = p
				} else {
					acc[r] = combine(acc[r], p)
				}
			}
			if r%gs != 0 || r%(gs*f) == 0 {
				return nil
			}
			if acc[r] == nil {
				return nil
			}
			parent := unrank(r - r%(gs*f))
			p := acc[r]
			acc[r] = nil
			return []Message{{To: parent, Payload: p}}
		})
		groupSize *= f
	}
	c.Step(func(m *Machine, inbox []Message) []Message {
		r := rank(m.ID)
		for _, msg := range inbox {
			if acc[r] == nil {
				acc[r] = msg.Payload
			} else {
				acc[r] = combine(acc[r], msg.Payload)
			}
		}
		return nil
	})
	return acc[0]
}

// Exchange performs a request/response lookup: produce emits request
// messages from each machine, serve answers each delivered request with an
// optional response, and receive consumes the responses. It costs exactly
// three rounds (send, serve, deliver) and is the building block for
// distributed lookups.
func (c *Cluster) Exchange(
	produce func(m *Machine) []Message,
	serve func(m *Machine, req Message) *Message,
	receive func(m *Machine, resp Message),
) {
	c.Step(func(m *Machine, inbox []Message) []Message {
		return produce(m)
	})
	c.Step(func(m *Machine, inbox []Message) []Message {
		var out []Message
		for _, req := range inbox {
			if resp := serve(m, req); resp != nil {
				out = append(out, *resp)
			}
		}
		return out
	})
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, resp := range inbox {
			receive(m, resp)
		}
		return nil
	})
}

// Scatter delivers messages produced at a single machine in one round. It is
// the inverse of Gather for small keyed payloads: the coordinator addresses
// each machine directly. Costs one round plus one delivery round.
func (c *Cluster) Scatter(from int, produce func(m *Machine) []Message, receive func(m *Machine, msg Message)) {
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != from {
			return nil
		}
		return produce(m)
	})
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			receive(m, msg)
		}
		return nil
	})
}

// Partition maps n items (vertices) onto machines in contiguous equal ranges,
// the "vertex-based partitioning" of Section 5.
type Partition struct {
	// N is the number of items.
	N int
	// Machines is the number of machines.
	Machines int
}

// Owner returns the machine owning item v.
func (p Partition) Owner(v int) int {
	if v < 0 || v >= p.N {
		panic(fmt.Sprintf("mpc: item %d out of range [0,%d)", v, p.N))
	}
	per := (p.N + p.Machines - 1) / p.Machines
	o := v / per
	if o >= p.Machines {
		o = p.Machines - 1
	}
	return o
}

// Range returns the half-open item range [lo, hi) owned by machine id.
func (p Partition) Range(id int) (lo, hi int) {
	per := (p.N + p.Machines - 1) / p.Machines
	lo = id * per
	hi = lo + per
	if hi > p.N {
		hi = p.N
	}
	if lo > p.N {
		lo = p.N
	}
	return lo, hi
}

// SortedMachineIDs returns 0..M-1; convenient for deterministic iteration in
// tests and examples.
func (c *Cluster) SortedMachineIDs() []int {
	ids := make([]int, c.cfg.Machines)
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	return ids
}
