package mpc

import (
	"reflect"
	"testing"
)

func collectFrames(b *MessageBatch) [][]uint64 {
	var out [][]uint64
	for f := range b.Frames {
		out = append(out, append([]uint64(nil), f...))
	}
	return out
}

func TestMessageBatchRoundTrip(t *testing.T) {
	b := NewMessageBatch(8)
	b.Append(1, 2, 3)
	b.Append() // empty frame is legal
	copy(b.Grow(2), []uint64{7, 9})
	want := [][]uint64{{1, 2, 3}, nil, {7, 9}}
	if got := collectFrames(b); !reflect.DeepEqual(got, want) {
		t.Fatalf("frames = %v, want %v", got, want)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Words() != 5 {
		t.Fatalf("Words = %d, want 5 (content only, prefixes excluded)", b.Words())
	}
}

func TestMessageBatchGrowInPlace(t *testing.T) {
	b := NewMessageBatch(64)
	f := b.Grow(4)
	for i := range f {
		f[i] = uint64(i + 10)
	}
	b.Append(99)
	got := collectFrames(b)
	want := [][]uint64{{10, 11, 12, 13}, {99}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frames = %v, want %v", got, want)
	}
	// Grow must hand out zeroed words even when reusing capacity.
	b.Reset()
	if f := b.Grow(4); f[0]|f[1]|f[2]|f[3] != 0 {
		t.Fatalf("Grow reused dirty words: %v", f)
	}
}

func TestMessageBatchResetReusesCapacity(t *testing.T) {
	b := NewMessageBatch(0)
	for i := 0; i < 16; i++ {
		b.Append(uint64(i), uint64(i))
	}
	b.Reset()
	if b.Len() != 0 || b.Words() != 0 {
		t.Fatalf("Reset left Len=%d Words=%d", b.Len(), b.Words())
	}
	if n := testing.AllocsPerRun(50, func() {
		b.Reset()
		for i := 0; i < 16; i++ {
			b.Append(uint64(i), uint64(i))
		}
		for f := range b.Frames {
			_ = f[0]
		}
	}); n != 0 {
		t.Fatalf("steady-state encode/decode allocates %.1f allocs/op, want 0", n)
	}
}

func TestMessageBatchCursorLockStep(t *testing.T) {
	a, b := NewMessageBatch(0), NewMessageBatch(0)
	a.Append(1)
	a.Append(3)
	b.Append(2)
	ca, cb := a.Cursor(), b.Cursor()
	fa, oka := ca.Next()
	fb, okb := cb.Next()
	if !oka || !okb || fa[0] != 1 || fb[0] != 2 {
		t.Fatalf("first frames (%v,%v) (%v,%v)", fa, oka, fb, okb)
	}
	fa, oka = ca.Next()
	_, okb = cb.Next()
	if !oka || fa[0] != 3 || okb {
		t.Fatalf("second frames diverged: (%v,%v) okb=%v", fa, oka, okb)
	}
	if _, oka = ca.Next(); oka {
		t.Fatal("cursor did not terminate")
	}
}

func TestMessageBatchPool(t *testing.T) {
	b := AcquireMessageBatch()
	b.Append(5)
	b.Release()
	c := AcquireMessageBatch()
	if c.Len() != 0 || c.Words() != 0 {
		t.Fatalf("acquired batch not reset: Len=%d Words=%d", c.Len(), c.Words())
	}
	c.Release()
}

func TestMessageBatchCorruptFramePanics(t *testing.T) {
	b := NewMessageBatch(0)
	b.Append(1, 2)
	b.buf[0] = 99 // lie about the frame length
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt frame did not panic")
		}
	}()
	for range b.Frames {
	}
}
