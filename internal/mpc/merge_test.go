package mpc

import (
	"fmt"
	"reflect"
	"testing"
)

// mix is a splitmix64-style bit mixer used to derive per-(round, machine)
// pseudo-random traffic that is deterministic regardless of scheduling.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// runSkewedTrafficProgram drives several rounds of seeded many-to-many
// traffic designed to stress the sharded merge: a hot destination (machine 0
// receives from everyone every round), ragged per-sender fan-out, payload
// sizes that trip send- and receive-cap violations, and occasional invalid
// destinations. It returns the final Stats and a machine-order digest of
// every delivery (sender, size, in order) and final store size.
func runSkewedTrafficProgram(parallelism, machines int) (Stats, string) {
	const rounds = 6
	c := NewCluster(Config{Machines: machines, LocalMemory: 96, Parallelism: parallelism})
	digests := make([]string, machines)
	for r := 0; r < rounds; r++ {
		round := r
		c.Step(func(m *Machine, inbox []Message) []Message {
			for _, msg := range inbox {
				digests[m.ID] += fmt.Sprintf("(r%d f%d w%d)", round, msg.From, msg.Payload.Words())
			}
			h := mix(uint64(round)*1e9 + uint64(m.ID))
			out := []Message{{To: 0, Payload: Word(h)}} // hot destination
			for k := 0; k < int(h%5); k++ {
				h = mix(h)
				sz := 1 + int(h%4)
				if h%31 == 0 {
					sz = 80 // oversized: trips send and receive caps
				}
				to := int(h % uint64(machines))
				if h%37 == 0 {
					to = machines + int(h%9) // invalid destination
				}
				out = append(out, Message{To: to, Payload: U64s(make([]uint64, sz))})
			}
			m.Set("acc", U64s(make([]uint64, 1+int(h%7))))
			return out
		})
	}
	digest := ""
	for i := 0; i < machines; i++ {
		digest += fmt.Sprintf("m%d: state=%d %s\n", i, c.Machine(i).StateWords(), digests[i])
	}
	return c.Stats(), digest
}

// TestShardedMergeDeterministic is the property test for the parallel merge:
// seeded skewed traffic with cap violations and invalid destinations yields
// bit-identical Stats (violation strings in order included) and bit-identical
// per-machine delivery sequences at every parallelism level, on machine
// counts chosen to exercise ragged shard boundaries (machines not divisible
// by the shard count) and the shards-clamped-to-machines case.
func TestShardedMergeDeterministic(t *testing.T) {
	for _, machines := range []int{7, 97, 128} {
		t.Run(fmt.Sprintf("M=%d", machines), func(t *testing.T) {
			baseStats, baseDigest := runSkewedTrafficProgram(1, machines)
			if len(baseStats.Violations) == 0 {
				t.Fatal("program was expected to record violations")
			}
			for _, p := range []int{2, 3, 8} {
				st, digest := runSkewedTrafficProgram(p, machines)
				if !reflect.DeepEqual(st, baseStats) {
					t.Errorf("parallelism %d: stats diverged\nseq: %+v\npar: %+v", p, baseStats, st)
				}
				if digest != baseDigest {
					t.Errorf("parallelism %d: delivery digest diverged from sequential", p)
				}
			}
		})
	}
}

// runStrictMidMergeProgram raises a Strict-mode violation in the metering
// fold of round 2 (after the parallel merge has already filled the spare
// inboxes), recovers it, and runs two more benign rounds. It returns the
// recovered panic message and the post-recovery delivery digest.
func runStrictMidMergeProgram(t *testing.T, parallelism int) (string, string) {
	t.Helper()
	const M = 41
	c := NewCluster(Config{Machines: M, LocalMemory: 16, Strict: true, Parallelism: parallelism})
	c.Step(func(m *Machine, inbox []Message) []Message {
		return []Message{{To: (m.ID + 3) % M, Payload: Word(uint64(m.ID))}}
	})
	var panicked any
	func() {
		defer func() { panicked = recover() }()
		c.Step(func(m *Machine, inbox []Message) []Message {
			if m.ID == 11 {
				// Over the send cap: merged into the spare inboxes, then the
				// fold's cap check panics mid-round.
				return []Message{{To: 12, Payload: U64s(make([]uint64, 20))}}
			}
			return []Message{{To: (m.ID + 1) % M, Payload: Word(2)}}
		})
	}()
	if panicked == nil {
		t.Fatal("strict over-cap send did not panic")
	}
	// Recovery: the partially merged round must be discarded, not delivered.
	digest := ""
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID%2 == 0 {
			return []Message{{To: (m.ID + 2) % M, Payload: Word(9)}}
		}
		return nil
	})
	got := make([]string, M)
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			got[m.ID] += fmt.Sprintf("(f%d w%d)", msg.From, msg.Payload.Words())
		}
		return nil
	})
	for i := 0; i < M; i++ {
		digest += fmt.Sprintf("m%d: %s\n", i, got[i])
	}
	return fmt.Sprint(panicked), digest
}

// TestStrictViolationMidMergeDeterministic asserts that a Strict-mode
// violation raised mid-round — after the parallel merge, during the metering
// fold — panics with the identical message at parallelism 1 and 8, and that
// recovery leaves the identical observable state: the abandoned round's
// messages never leak into later rounds under either executor.
func TestStrictViolationMidMergeDeterministic(t *testing.T) {
	baseMsg, baseDigest := runStrictMidMergeProgram(t, 1)
	for _, p := range []int{2, 8} {
		msg, digest := runStrictMidMergeProgram(t, p)
		if msg != baseMsg {
			t.Errorf("parallelism %d: panic message %q, want %q", p, msg, baseMsg)
		}
		if digest != baseDigest {
			t.Errorf("parallelism %d: post-recovery digest diverged\nseq:\n%s\npar:\n%s", p, baseDigest, digest)
		}
	}
}
