package mpc_test

import (
	"testing"

	"repro/internal/mpc"
)

// The mpc benchmarks are the regression surface locked in by
// BENCH_sketch.json: the batch codec's encode/decode throughput and the
// steady-state cost of a fully batched executor round (which must stay at
// zero allocations, see alloc_test.go).

func BenchmarkMessageBatchEncode(b *testing.B) {
	batch := mpc.NewMessageBatch(4 * 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for f := 0; f < 128; f++ {
			batch.Append(uint64(f), uint64(f+1), uint64(f&1))
		}
	}
}

func BenchmarkMessageBatchDecode(b *testing.B) {
	batch := mpc.NewMessageBatch(4 * 128)
	for f := 0; f < 128; f++ {
		batch.Append(uint64(f), uint64(f+1), uint64(f&1))
	}
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for fr := range batch.Frames {
			sink += fr[0] ^ fr[2]
		}
	}
	_ = sink
}

func BenchmarkStepBatchRound(b *testing.B) {
	// One synchronous round of the simulator with fully batched traffic —
	// the executor-layer cost underneath every algorithm round.
	cr := newChurnRounds(b, 1)
	for i := 0; i < 8; i++ {
		cr.step() // converge buffer capacities
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr.step()
	}
}
