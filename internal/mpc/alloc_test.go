package mpc_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/streamio"
)

// The executor-round allocation budget: one steady-state synchronous round
// of the simulator — machines decoding their inboxes and routing the
// churn32 golden trace's update batch as packed MessageBatch frames — must
// perform zero allocations. This pins down the whole routing path: the
// cluster's reused outbox/inbox double buffers, the preallocated dispatch
// closures, the worker pool's recycled barrier, and the batch codec's
// in-place encode/decode.

// churnRounds replays the churn32 golden trace shape through a cluster
// sized like the core connectivity instance for N=32 (four vertex machines
// plus a coordinator) and returns a closure executing one round.
type churnRounds struct {
	cl      *mpc.Cluster
	fn      mpc.StepFunc
	round   int
	batches []graph.Batch
}

func newChurnRounds(t testing.TB, parallelism int) *churnRounds {
	t.Helper()
	f, err := os.Open("../core/testdata/churn32.stream")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	batches, err := streamio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("empty churn32 trace")
	}
	const (
		n        = 32
		machines = 5 // ceil(32 / 32^0.6) vertex machines + coordinator
	)
	part := mpc.Partition{N: n, Machines: machines - 1}
	cl := mpc.NewCluster(mpc.Config{
		Machines:    machines,
		LocalMemory: 1 << 16,
		Strict:      true,
		Parallelism: parallelism,
	})
	cr := &churnRounds{cl: cl, batches: batches}
	// Per-sender reusable outboxes, and double-buffered per-(src,dst)
	// batches: the set filled this round is decoded by its receiver next
	// round, so senders alternate buffers by round parity.
	outs := make([][]mpc.Message, machines)
	var bufs [2][][]*mpc.MessageBatch
	for par := 0; par < 2; par++ {
		bufs[par] = make([][]*mpc.MessageBatch, machines)
		for i := range bufs[par] {
			bufs[par][i] = make([]*mpc.MessageBatch, machines)
			for j := range bufs[par][i] {
				bufs[par][i][j] = mpc.NewMessageBatch(0)
			}
		}
	}
	sinks := make([]uint64, machines)
	cr.fn = func(m *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		// Decode in place: accumulate the delivered frames.
		for _, msg := range inbox {
			for fr := range msg.Payload.(*mpc.MessageBatch).Frames {
				sinks[m.ID] += fr[0] ^ fr[1]<<1 ^ fr[2]
			}
		}
		if m.ID == machines-1 {
			return nil // coordinator
		}
		// Encode once: this round's churn32 updates whose smaller endpoint
		// this machine owns, framed [u, v, op] to the other endpoint's owner.
		mine := bufs[cr.round&1][m.ID]
		for _, b := range mine {
			b.Reset()
		}
		batch := cr.batches[cr.round%len(cr.batches)]
		for _, u := range batch {
			e := u.Edge.Canonical()
			if part.Owner(e.U) != m.ID {
				continue
			}
			mine[part.Owner(e.V)].Append(uint64(e.U), uint64(e.V), uint64(u.Op))
		}
		out := outs[m.ID][:0]
		for dst, b := range mine {
			if b.Len() > 0 {
				out = append(out, mpc.Message{To: dst, Payload: b})
			}
		}
		outs[m.ID] = out
		return out
	}
	return cr
}

func (cr *churnRounds) step() {
	cr.round++
	cr.cl.Step(cr.fn)
}

func TestAllocsExecutorRoundChurn32(t *testing.T) {
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", p), func(t *testing.T) {
			cr := newChurnRounds(t, p)
			// Warm up past buffer growth: one full pass over the trace.
			for i := 0; i < 2*len(cr.batches); i++ {
				cr.step()
			}
			if n := testing.AllocsPerRun(100, cr.step); n != 0 {
				t.Fatalf("one executor round on churn32 allocates %.1f allocs/op on the steady state, want 0", n)
			}
			if st := cr.cl.Stats(); len(st.Violations) != 0 {
				t.Fatalf("violations: %v", st.Violations[0])
			}
		})
	}
}
