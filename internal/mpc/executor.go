package mpc

import (
	"fmt"
	"runtime"
	"sync"
)

// Executor schedules the per-machine work of one synchronous round (or one
// local-computation pass). The cluster hands it an index-addressed job; the
// executor decides how to spread the indices over OS threads.
//
// The contract that makes any executor interchangeable with the sequential
// one is the simulator's concurrency contract (see StepFunc): the callback
// for machine i touches only machine i's state and the caller-provided
// result slot for index i. Under that contract every executor produces the
// same per-index results, and the cluster folds them into Stats in machine
// order, so rounds, message ordering, violations, and peaks are bit-identical
// at any parallelism level.
type Executor interface {
	// Run invokes fn(i) once for every i in [0, n), possibly concurrently.
	// It returns only after every invocation has completed. If any
	// invocation panics, Run re-panics on the calling goroutine with the
	// panic value of the lowest panicking index.
	Run(n int, fn func(i int))
	// Parallelism reports the number of worker goroutines (1 = sequential).
	Parallelism() int
}

// ResolveParallelism returns the worker count a Config.Parallelism value
// selects: 1 for 0 or 1 (sequential), p for p > 1, and runtime.NumCPU()
// for any negative value.
func ResolveParallelism(p int) int {
	switch {
	case p < 0:
		return runtime.NumCPU()
	case p <= 1:
		return 1
	default:
		return p
	}
}

// NewExecutor returns the executor selected by a Config.Parallelism value:
// the sequential executor when ResolveParallelism yields 1, otherwise a
// worker pool of that many goroutines.
func NewExecutor(parallelism int) Executor {
	if w := ResolveParallelism(parallelism); w > 1 {
		return NewWorkerPool(w)
	}
	return NewSequentialExecutor()
}

// sequentialExecutor runs every machine on the calling goroutine in index
// order — the original simulator loop.
type sequentialExecutor struct{}

// NewSequentialExecutor returns the executor that runs machines one after
// another on the calling goroutine.
func NewSequentialExecutor() Executor { return sequentialExecutor{} }

// Run implements Executor.
func (sequentialExecutor) Run(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Parallelism implements Executor.
func (sequentialExecutor) Parallelism() int { return 1 }

// poolTask is one contiguous shard of machine indices handed to a pool
// worker.
type poolTask struct {
	lo, hi int
	fn     func(i int)
	done   *poolBarrier
}

// poolBarrier is the per-Run rendezvous: workers report completion (and any
// recovered panic) here; the submitting goroutine waits on it.
type poolBarrier struct {
	wg sync.WaitGroup

	mu       sync.Mutex
	panicked bool
	panicIdx int
	panicVal any
}

// recordPanic keeps the panic of the lowest machine index so re-panicking is
// deterministic regardless of worker interleaving.
func (b *poolBarrier) recordPanic(idx int, val any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.panicked || idx < b.panicIdx {
		b.panicked = true
		b.panicIdx = idx
		b.panicVal = val
	}
}

// WorkerPool is the parallel executor: a fixed set of long-lived worker
// goroutines that each claim one contiguous shard of the machine range per
// round. Contiguous shards keep a worker on one run of machines (and their
// result slots), so routing buffers stay core-local until the round barrier.
//
// The pool's goroutines live as long as the pool is reachable; a runtime
// cleanup shuts them down when the owning cluster is garbage collected, so
// creating many clusters (as tests and experiments do) does not leak.
type WorkerPool struct {
	workers int
	tasks   chan poolTask
	// done is the reused per-Run barrier: Run is never invoked concurrently
	// on one pool (a cluster issues one round at a time), so recycling the
	// barrier keeps the round dispatch allocation-free.
	done poolBarrier
}

// NewWorkerPool returns a worker-pool executor with the given number of
// workers; workers <= 0 selects runtime.NumCPU(). A pool of one worker is
// degenerate, so it returns the sequential executor instead.
func NewWorkerPool(workers int) Executor {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return sequentialExecutor{}
	}
	p := &WorkerPool{
		workers: workers,
		// Buffered so Run never blocks handing out shards: at most
		// `workers` tasks are in flight per round.
		tasks: make(chan poolTask, workers),
	}
	for w := 0; w < workers; w++ {
		// Workers capture only the channel, never p, so an unreachable
		// pool is collectable; the cleanup then closes the channel and
		// the workers exit.
		go poolWorker(p.tasks)
	}
	runtime.AddCleanup(p, func(ch chan poolTask) { close(ch) }, p.tasks)
	return p
}

// poolWorker drains shards until the pool is shut down.
func poolWorker(tasks chan poolTask) {
	for t := range tasks {
		runShard(t)
	}
}

// runShard executes one contiguous shard, converting a panic in fn into a
// recorded panic on the barrier (a panicking shard abandons its remaining
// indices, as the sequential loop would).
func runShard(t poolTask) {
	i := t.lo
	defer func() {
		if r := recover(); r != nil {
			t.done.recordPanic(i, r)
		}
		t.done.wg.Done()
	}()
	for ; i < t.hi; i++ {
		t.fn(i)
	}
}

// Run implements Executor: it splits [0, n) into at most `workers`
// contiguous shards, dispatches them to the pool, and waits for the round
// barrier.
func (p *WorkerPool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	shards := p.workers
	if shards > n {
		shards = n
	}
	per := (n + shards - 1) / shards
	done := &p.done
	done.panicked = false
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		done.wg.Add(1)
		p.tasks <- poolTask{lo: lo, hi: hi, fn: fn, done: done}
	}
	done.wg.Wait()
	if done.panicked {
		panic(done.panicVal)
	}
}

// Parallelism implements Executor.
func (p *WorkerPool) Parallelism() int { return p.workers }

// String aids debugging output in benchmarks and experiments.
func (p *WorkerPool) String() string { return fmt.Sprintf("worker-pool(%d)", p.workers) }
