package mpc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor schedules the per-machine work of one synchronous round (or one
// local-computation pass, or one merge-shard sweep). The cluster hands it an
// index-addressed job; the executor decides how to spread the indices over
// OS threads.
//
// The contract that makes any executor interchangeable with the sequential
// one is the simulator's concurrency contract (see StepFunc): the callback
// for index i touches only index i's state and the caller-provided result
// slot for index i. Under that contract every executor produces the same
// per-index results, and the cluster folds them into Stats in machine
// order, so rounds, message ordering, violations, and peaks are bit-identical
// at any parallelism level.
type Executor interface {
	// Run invokes fn(i) once for every i in [0, n), possibly concurrently.
	// It returns only after every invocation has completed or been
	// abandoned.
	//
	// Panic contract: if any invocation panics, Run re-panics on the
	// calling goroutine with the panic value of the lowest panicking
	// index. This is deterministic under every executor: nothing below the
	// lowest panicking index panics, so that index is always reached and
	// its panic always recorded, regardless of scheduling. Indices after a
	// panicking index in the same scheduling unit (the whole range for the
	// sequential executor, one work-stealing chunk for the pool) are
	// abandoned; all other indices still run. Callers that recover such a
	// panic may retry the whole range — per-index results are only
	// published by completed invocations, and the cluster never merges a
	// round whose parallel phase panicked.
	Run(n int, fn func(i int))
	// Parallelism reports the number of worker goroutines (1 = sequential).
	Parallelism() int
}

// ResolveParallelism returns the worker count a Config.Parallelism value
// selects: 1 for 0 or 1 (sequential), p for p > 1, and runtime.NumCPU()
// for any negative value.
func ResolveParallelism(p int) int {
	switch {
	case p < 0:
		return runtime.NumCPU()
	case p <= 1:
		return 1
	default:
		return p
	}
}

// NewExecutor returns the executor selected by a Config.Parallelism value:
// the sequential executor when ResolveParallelism yields 1, otherwise a
// worker pool of that many goroutines.
func NewExecutor(parallelism int) Executor {
	if w := ResolveParallelism(parallelism); w > 1 {
		return NewWorkerPool(w)
	}
	return NewSequentialExecutor()
}

// sequentialExecutor runs every machine on the calling goroutine in index
// order — the original simulator loop.
type sequentialExecutor struct{}

// NewSequentialExecutor returns the executor that runs machines one after
// another on the calling goroutine.
func NewSequentialExecutor() Executor { return sequentialExecutor{} }

// Run implements Executor.
func (sequentialExecutor) Run(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Parallelism implements Executor.
func (sequentialExecutor) Parallelism() int { return 1 }

// chunksPerWorker is the oversubscription factor of the work-stealing
// scheduler: the index range is carved into about chunksPerWorker×workers
// contiguous chunks, so a worker stuck on a hot chunk (a machine with a
// skewed share of the round's work) strands at most one chunk while the
// others drain the rest of the range.
const chunksPerWorker = 8

// poolTask wakes one worker for one Run: every dispatched worker pulls
// chunks from the shared run state until the cursor is exhausted.
type poolTask struct {
	run *poolRun
}

// poolRun is the shared state of one Run call over the work-stealing pool:
// the job, the claim cursor, and the completion barrier. It lives on the
// pool and is reused by every Run (a cluster issues one round at a time),
// keeping dispatch allocation-free.
type poolRun struct {
	fn     func(i int)
	n      int
	chunk  int
	cursor atomic.Int64

	wg sync.WaitGroup

	mu       sync.Mutex
	panicked bool
	panicIdx int
	panicVal any
}

// recordPanic keeps the panic of the lowest panicking index so re-panicking
// is deterministic regardless of worker interleaving: every chunk is always
// claimed and runs up to its first panicking index, so the globally lowest
// panicking index always executes and is always recorded.
func (r *poolRun) recordPanic(idx int, val any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.panicked || idx < r.panicIdx {
		r.panicked = true
		r.panicIdx = idx
		r.panicVal = val
	}
}

// WorkerPool is the parallel executor: a fixed set of long-lived worker
// goroutines that claim contiguous index chunks from a shared atomic cursor
// (chunked work stealing). Chunks keep a worker on one cache-friendly run
// of machines and result slots, while the shared cursor lets idle workers
// absorb skewed per-machine load — a powerlaw-hot machine costs its one
// chunk, not a statically assigned 1/workers slice of the round.
//
// The pool's goroutines live as long as the pool is reachable; a runtime
// cleanup shuts them down when the owning cluster is garbage collected, so
// creating many clusters (as tests and experiments do) does not leak.
type WorkerPool struct {
	workers int
	tasks   chan poolTask
	// run is the reused per-Run state: Run is never invoked concurrently
	// on one pool (a cluster issues one round at a time), so recycling it
	// keeps the round dispatch allocation-free.
	run poolRun
}

// NewWorkerPool returns a worker-pool executor with the given number of
// workers; workers <= 0 selects runtime.NumCPU(). A pool of one worker is
// degenerate, so it returns the sequential executor instead.
func NewWorkerPool(workers int) Executor {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return sequentialExecutor{}
	}
	p := &WorkerPool{
		workers: workers,
		// Buffered so Run never blocks waking workers: at most `workers`
		// tasks are in flight per round.
		tasks: make(chan poolTask, workers),
	}
	for w := 0; w < workers; w++ {
		// Workers capture only the channel, never p, so an unreachable
		// pool is collectable; the cleanup then closes the channel and
		// the workers exit.
		go poolWorker(p.tasks)
	}
	runtime.AddCleanup(p, func(ch chan poolTask) { close(ch) }, p.tasks)
	return p
}

// poolWorker drains wake-ups until the pool is shut down; each wake-up
// steals chunks from its run until the range is exhausted.
func poolWorker(tasks chan poolTask) {
	for t := range tasks {
		runChunks(t.run)
		t.run.wg.Done()
	}
}

// runChunks claims chunks off the run's cursor until the range is drained.
// Every chunk is claimed and executed even after a panic elsewhere: that is
// what makes the re-panic value (the lowest panicking index) deterministic,
// and it matches the old static sharding, where every shard ran regardless
// of another shard's panic.
func runChunks(r *poolRun) {
	for {
		lo := int(r.cursor.Add(int64(r.chunk))) - r.chunk
		if lo >= r.n {
			return
		}
		hi := lo + r.chunk
		if hi > r.n {
			hi = r.n
		}
		runChunk(r, lo, hi)
	}
}

// runChunk executes one contiguous chunk, converting a panic in fn into a
// recorded panic on the run (a panicking chunk abandons its remaining
// indices, as the sequential loop abandons everything after a panic).
func runChunk(r *poolRun, lo, hi int) {
	i := lo
	defer func() {
		if rec := recover(); rec != nil {
			r.recordPanic(i, rec)
		}
	}()
	for ; i < hi; i++ {
		r.fn(i)
	}
}

// Run implements Executor: it carves [0, n) into contiguous chunks of
// deterministic size, wakes the workers to steal them off a shared cursor,
// and waits for the round barrier.
func (p *WorkerPool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	r := &p.run
	r.fn = fn
	r.n = n
	r.chunk = chunkSize(n, p.workers)
	r.cursor.Store(0)
	r.panicked = false
	wake := p.workers
	if chunks := (n + r.chunk - 1) / r.chunk; wake > chunks {
		wake = chunks
	}
	r.wg.Add(wake)
	for w := 0; w < wake; w++ {
		p.tasks <- poolTask{run: r}
	}
	r.wg.Wait()
	r.fn = nil
	if r.panicked {
		panic(r.panicVal)
	}
}

// chunkSize returns the work-stealing chunk size for n indices over the
// given worker count: about chunksPerWorker chunks per worker, never less
// than one index. It is a pure function of (n, workers), so the chunk
// boundaries — and therefore the panic-abandonment units — are the same on
// every Run of the same shape.
func chunkSize(n, workers int) int {
	c := n / (workers * chunksPerWorker)
	if c < 1 {
		c = 1
	}
	return c
}

// Parallelism implements Executor.
func (p *WorkerPool) Parallelism() int { return p.workers }

// String aids debugging output in benchmarks and experiments.
func (p *WorkerPool) String() string { return fmt.Sprintf("worker-pool(%d)", p.workers) }
