package mpc

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func newTestCluster(machines, mem int) *Cluster {
	return NewCluster(Config{Machines: machines, LocalMemory: mem, Strict: false})
}

func TestNewClusterValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Machines: 0, LocalMemory: 10},
		{Machines: 4, LocalMemory: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCluster(%+v) did not panic", cfg)
				}
			}()
			NewCluster(cfg)
		}()
	}
}

func TestStepDeliversMessages(t *testing.T) {
	c := newTestCluster(4, 100)
	// Round 1: machine 0 sends its ID to everyone else.
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		var out []Message
		for to := 1; to < 4; to++ {
			out = append(out, Message{To: to, Payload: Word(42)})
		}
		return out
	})
	// Round 2: others record what they received.
	got := make(map[int]uint64)
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			if msg.From != 0 {
				t.Errorf("machine %d got message from %d, want 0", m.ID, msg.From)
			}
			got[m.ID] = uint64(msg.Payload.(Word))
		}
		return nil
	})
	for to := 1; to < 4; to++ {
		if got[to] != 42 {
			t.Errorf("machine %d received %d, want 42", to, got[to])
		}
	}
	st := c.Stats()
	if st.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", st.Rounds)
	}
	if st.Messages != 3 {
		t.Errorf("Messages = %d, want 3", st.Messages)
	}
	if st.WordsSent != 3 {
		t.Errorf("WordsSent = %d, want 3", st.WordsSent)
	}
}

func TestStepEnforcesReceiveCap(t *testing.T) {
	c := newTestCluster(4, 2)
	// Machines 1..3 each send 1 word to machine 0: 3 > cap 2.
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID == 0 {
			return nil
		}
		return []Message{{To: 0, Payload: Word(1)}}
	})
	if len(c.Stats().Violations) == 0 {
		t.Error("receive-cap violation not recorded")
	}
}

func TestStepEnforcesSendCap(t *testing.T) {
	c := newTestCluster(4, 2)
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		return []Message{
			{To: 1, Payload: U64s{1, 2}},
			{To: 2, Payload: U64s{3}},
		}
	})
	if len(c.Stats().Violations) == 0 {
		t.Error("send-cap violation not recorded")
	}
}

func TestStrictPanics(t *testing.T) {
	c := NewCluster(Config{Machines: 2, LocalMemory: 1, Strict: true})
	defer func() {
		if recover() == nil {
			t.Fatal("strict cluster did not panic on violation")
		}
	}()
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		return []Message{{To: 1, Payload: U64s{1, 2, 3}}}
	})
}

func TestInvalidDestination(t *testing.T) {
	c := newTestCluster(2, 10)
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		return []Message{{To: 99, Payload: Word(1)}}
	})
	if len(c.Stats().Violations) == 0 {
		t.Error("invalid destination not recorded")
	}
}

func TestMemoryMetering(t *testing.T) {
	c := newTestCluster(3, 100)
	c.LocalAll(func(m *Machine) {
		m.Set("shard", U64s(make([]uint64, 10)))
	})
	st := c.Stats()
	if st.PeakMachineWords != 10 {
		t.Errorf("PeakMachineWords = %d, want 10", st.PeakMachineWords)
	}
	if st.PeakTotalWords != 30 {
		t.Errorf("PeakTotalWords = %d, want 30", st.PeakTotalWords)
	}
	// Exceed the per-machine cap via state growth.
	c.LocalAt(0, func(m *Machine) {
		m.Set("big", U64s(make([]uint64, 200)))
	})
	if len(c.Stats().Violations) == 0 {
		t.Error("state-cap violation not recorded")
	}
}

func TestMachineStore(t *testing.T) {
	m := &Machine{ID: 0, Store: make(map[string]Sized)}
	if m.Get("x") != nil {
		t.Error("Get on empty store non-nil")
	}
	m.Set("x", Word(1))
	if m.Get("x") == nil || m.StateWords() != 1 {
		t.Error("Set/Get/StateWords broken")
	}
	m.Delete("x")
	if m.Get("x") != nil {
		t.Error("Delete did not remove slot")
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	for _, M := range []int{1, 2, 3, 7, 16, 33} {
		for _, from := range []int{0, M / 2, M - 1} {
			c := newTestCluster(M, 64)
			c.Broadcast(from, "bc", U64s{7, 8, 9})
			for i := 0; i < M; i++ {
				got := c.Machine(i).Get("bc")
				if got == nil {
					t.Fatalf("M=%d from=%d: machine %d missing broadcast", M, from, i)
				}
				if u := got.(U64s); len(u) != 3 || u[0] != 7 {
					t.Fatalf("M=%d: machine %d got wrong payload %v", M, i, u)
				}
			}
			if v := c.Stats().Violations; len(v) != 0 {
				t.Fatalf("M=%d from=%d: violations %v", M, from, v)
			}
		}
	}
}

func TestBroadcastRoundsLogarithmic(t *testing.T) {
	// With payload of w words and memory s, fanout is s/w; 64 machines with
	// fanout 8 must finish within 3 rounds of sending plus one flush.
	c := newTestCluster(64, 8)
	c.Broadcast(0, "bc", Word(5))
	if r := c.Stats().Rounds; r > 4 {
		t.Errorf("broadcast of 1 word to 64 machines with s=8 took %d rounds", r)
	}
}

func TestGatherCollectsAll(t *testing.T) {
	for _, M := range []int{1, 2, 5, 16} {
		c := newTestCluster(M, 1000)
		got := c.Gather(0, func(m *Machine) Sized {
			return U64s{uint64(m.ID * 10)}
		})
		if len(got) != M {
			t.Fatalf("M=%d: gathered %d items", M, len(got))
		}
		for src, p := range got {
			if u := p.(U64s); u[0] != uint64(src*10) {
				t.Errorf("M=%d: item from %d = %v", M, src, u)
			}
		}
		if v := c.Stats().Violations; len(v) != 0 {
			t.Fatalf("M=%d: violations %v", M, v)
		}
	}
}

func TestGatherSkipsNil(t *testing.T) {
	c := newTestCluster(8, 1000)
	got := c.Gather(2, func(m *Machine) Sized {
		if m.ID%2 == 0 {
			return Word(uint64(m.ID))
		}
		return nil
	})
	if len(got) != 4 {
		t.Errorf("gathered %d items, want 4", len(got))
	}
	if _, ok := got[1]; ok {
		t.Error("gathered item from machine that returned nil")
	}
}

func TestAggregateSums(t *testing.T) {
	for _, M := range []int{1, 2, 7, 32} {
		c := newTestCluster(M, 100)
		res := c.Aggregate(0,
			func(m *Machine) Sized { return Word(uint64(m.ID)) },
			func(a, b Sized) Sized { return Word(uint64(a.(Word)) + uint64(b.(Word))) },
		)
		want := uint64(M * (M - 1) / 2)
		if uint64(res.(Word)) != want {
			t.Errorf("M=%d: aggregate = %d, want %d", M, res, want)
		}
		if v := c.Stats().Violations; len(v) != 0 {
			t.Fatalf("M=%d: violations %v", M, v)
		}
	}
}

func TestAggregateWithNilContributions(t *testing.T) {
	c := newTestCluster(9, 100)
	res := c.Aggregate(4,
		func(m *Machine) Sized {
			if m.ID == 3 {
				return Word(11)
			}
			return nil
		},
		func(a, b Sized) Sized { return Word(uint64(a.(Word)) + uint64(b.(Word))) },
	)
	if uint64(res.(Word)) != 11 {
		t.Errorf("aggregate = %v, want 11", res)
	}
}

func TestAggregateToNonZeroMachine(t *testing.T) {
	c := newTestCluster(6, 100)
	res := c.Aggregate(5,
		func(m *Machine) Sized { return Word(1) },
		func(a, b Sized) Sized { return Word(uint64(a.(Word)) + uint64(b.(Word))) },
	)
	if uint64(res.(Word)) != 6 {
		t.Errorf("aggregate = %v, want 6", res)
	}
}

func TestExchangeLookup(t *testing.T) {
	// Machines 1..3 ask machine 0 for the square of their ID.
	c := newTestCluster(4, 100)
	answers := make(map[int]uint64)
	c.Exchange(
		func(m *Machine) []Message {
			if m.ID == 0 {
				return nil
			}
			return []Message{{To: 0, Payload: Word(uint64(m.ID))}}
		},
		func(m *Machine, req Message) *Message {
			x := uint64(req.Payload.(Word))
			return &Message{To: req.From, Payload: Word(x * x)}
		},
		func(m *Machine, resp Message) {
			answers[m.ID] = uint64(resp.Payload.(Word))
		},
	)
	for id := 1; id < 4; id++ {
		if answers[id] != uint64(id*id) {
			t.Errorf("machine %d got %d, want %d", id, answers[id], id*id)
		}
	}
	if r := c.Stats().Rounds; r != 3 {
		t.Errorf("Exchange took %d rounds, want 3", r)
	}
}

func TestScatter(t *testing.T) {
	c := newTestCluster(5, 100)
	got := make(map[int]uint64)
	c.Scatter(0,
		func(m *Machine) []Message {
			var out []Message
			for to := 0; to < 5; to++ {
				out = append(out, Message{To: to, Payload: Word(uint64(to + 100))})
			}
			return out
		},
		func(m *Machine, msg Message) {
			got[m.ID] = uint64(msg.Payload.(Word))
		},
	)
	for i := 0; i < 5; i++ {
		if got[i] != uint64(i+100) {
			t.Errorf("machine %d got %d", i, got[i])
		}
	}
}

func TestResetStats(t *testing.T) {
	c := newTestCluster(2, 10)
	c.Step(func(m *Machine, inbox []Message) []Message { return nil })
	c.ResetStats()
	if c.Stats().Rounds != 0 {
		t.Error("ResetStats did not zero rounds")
	}
}

func TestPartitionOwnerAndRange(t *testing.T) {
	p := Partition{N: 10, Machines: 3}
	// per = 4: machine 0 owns [0,4), 1 owns [4,8), 2 owns [8,10).
	for v := 0; v < 10; v++ {
		o := p.Owner(v)
		lo, hi := p.Range(o)
		if v < lo || v >= hi {
			t.Errorf("vertex %d: owner %d range [%d,%d) does not contain it", v, o, lo, hi)
		}
	}
	// Ranges must tile [0, N).
	covered := 0
	for id := 0; id < 3; id++ {
		lo, hi := p.Range(id)
		covered += hi - lo
	}
	if covered != 10 {
		t.Errorf("ranges cover %d items, want 10", covered)
	}
}

func TestPartitionOwnerPanicsOutOfRange(t *testing.T) {
	p := Partition{N: 4, Machines: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("Owner(-1) did not panic")
		}
	}()
	p.Owner(-1)
}

func TestPartitionMoreMachinesThanItems(t *testing.T) {
	p := Partition{N: 2, Machines: 8}
	for v := 0; v < 2; v++ {
		o := p.Owner(v)
		if o < 0 || o >= 8 {
			t.Errorf("owner %d out of machine range", o)
		}
	}
	total := 0
	for id := 0; id < 8; id++ {
		lo, hi := p.Range(id)
		if hi < lo {
			t.Errorf("machine %d has inverted range [%d,%d)", id, lo, hi)
		}
		total += hi - lo
	}
	if total != 2 {
		t.Errorf("ranges cover %d, want 2", total)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ m, f, want int }{
		{1, 2, 1},
		{2, 2, 1},
		{4, 2, 2},
		{5, 2, 3},
		{64, 8, 2},
		{65, 8, 3},
	}
	for _, c := range cases {
		if got := treeDepth(c.m, c.f); got != c.want {
			t.Errorf("treeDepth(%d,%d) = %d, want %d", c.m, c.f, got, c.want)
		}
	}
}

func TestFanoutFloor(t *testing.T) {
	c := newTestCluster(2, 4)
	if f := c.fanout(100); f != 2 {
		t.Errorf("fanout(100) = %d, want floor 2", f)
	}
	if f := c.fanout(0); f != 4 {
		t.Errorf("fanout(0) = %d, want 4", f)
	}
}

func TestSizedImplementations(t *testing.T) {
	if (U64s{1, 2, 3}).Words() != 3 {
		t.Error("U64s.Words")
	}
	if (Ints{1, 2}).Words() != 2 {
		t.Error("Ints.Words")
	}
	if Word(9).Words() != 1 {
		t.Error("Word.Words")
	}
	if (Value{V: "x", N: 5}).Words() != 5 {
		t.Error("Value.Words")
	}
}

func TestSortedMachineIDs(t *testing.T) {
	c := newTestCluster(4, 10)
	ids := c.SortedMachineIDs()
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestBroadcastManyConfigsProperty(t *testing.T) {
	// Broadcast must reach all machines and respect caps for a sweep of
	// cluster shapes and payload sizes.
	for _, M := range []int{2, 4, 9, 25} {
		for _, w := range []int{1, 3, 8} {
			mem := 2 * w * 4
			c := newTestCluster(M, mem)
			payload := U64s(make([]uint64, w))
			for i := range payload {
				payload[i] = uint64(i)
			}
			c.Broadcast(M-1, "p", payload)
			for i := 0; i < M; i++ {
				if c.Machine(i).Get("p") == nil {
					t.Fatalf("M=%d w=%d: machine %d missed broadcast", M, w, i)
				}
			}
			if v := c.Stats().Violations; len(v) != 0 {
				t.Fatalf("M=%d w=%d: %v", M, w, v)
			}
		}
	}
}

func TestGatherLargeFanIn(t *testing.T) {
	// 27 machines each contribute 2 words (54 words total, within the
	// 64-word cap of the destination). All items must arrive without cap
	// violations.
	c := newTestCluster(27, 64)
	got := c.Gather(0, func(m *Machine) Sized { return U64s{uint64(m.ID), uint64(m.ID)} })
	if len(got) != 27 {
		t.Fatalf("gathered %d items, want 27", len(got))
	}
	if v := c.Stats().Violations; len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func ExampleCluster_Aggregate() {
	c := NewCluster(Config{Machines: 4, LocalMemory: 16})
	sum := c.Aggregate(0,
		func(m *Machine) Sized { return Word(uint64(m.ID + 1)) },
		func(a, b Sized) Sized { return Word(uint64(a.(Word)) + uint64(b.(Word))) },
	)
	fmt.Println(uint64(sum.(Word)))
	// Output: 10
}

func TestQuickPartitionInvariants(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw%16) + 1
		p := Partition{N: n, Machines: m}
		covered := 0
		prevHi := 0
		for id := 0; id < m; id++ {
			lo, hi := p.Range(id)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
			covered += hi - lo
			for v := lo; v < hi; v++ {
				if p.Owner(v) != id {
					return false
				}
			}
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcastOversizedPayloadViolates(t *testing.T) {
	// A payload larger than the local memory cannot be broadcast legally;
	// the violation must be metered, not hidden.
	c := newTestCluster(4, 8)
	c.Broadcast(0, "big", U64s(make([]uint64, 32)))
	if len(c.Stats().Violations) == 0 {
		t.Error("oversized broadcast recorded no violations")
	}
}

// TestStrictPanicRecoveryDoesNotReplayMessages guards the reused round
// buffers against a recovered Strict-mode violation: a panic mid-merge
// leaves a partial merge in the spare inbox set, and the next Step must
// discard it rather than deliver last round's messages again.
func TestStrictPanicRecoveryDoesNotReplayMessages(t *testing.T) {
	c := NewCluster(Config{Machines: 3, LocalMemory: 4, Strict: true})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("over-cap send did not panic in Strict mode")
			}
		}()
		c.Step(func(m *Machine, inbox []Message) []Message {
			// Machine 0 overflows its send cap; its message is merged into
			// the spare buffers before the cap check panics.
			if m.ID == 0 {
				return []Message{{To: 1, Payload: U64s(make([]uint64, 8))}}
			}
			return nil
		})
	}()
	var got [][]int
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID == 2 {
			return []Message{{To: 1, Payload: Word(7)}}
		}
		return nil
	})
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			got = append(got, []int{m.ID, msg.From, msg.Payload.Words()})
		}
		return nil
	})
	want := [][]int{{1, 2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery deliveries = %v, want %v (stale messages replayed)", got, want)
	}
}
