package mpc

import (
	"fmt"
	"sync"
)

// MessageBatch is the batched binary message codec of the simulator: many
// small word-encoded messages ("frames") packed into one contiguous
// length-prefixed []uint64 buffer. Algorithms that previously emitted one
// tiny struct payload per edge, proposal, or (vertex, fragment) pair to the
// same destination now encode each as a frame and send a single batch per
// (src, dst) machine pair per round — the packed-message discipline of the
// constant-round congested-clique MST algorithms (Jurdziński–Nowicki;
// Nowicki) — so the executor routes one buffer instead of N small
// allocations.
//
// Encoding is append-only (Append or Grow) and decoding is in place: Frames
// yields sub-slices of the buffer, so a receiver reads frames with zero
// copies and zero allocations. Buffers are reusable via Reset and poolable
// via AcquireMessageBatch/Release.
//
// Words (the mpc.Sized accounting) counts the frame contents only: the
// one-word length prefixes are routing bookkeeping — the boundary
// information the model already accounts for as message structure — not
// algorithm payload.
type MessageBatch struct {
	buf    []uint64 // frames, each [len, words...]
	frames int
	words  int // sum of frame lengths, excluding prefixes
}

// NewMessageBatch returns an empty batch with capacity for capWords buffer
// words (content plus one prefix word per expected frame).
func NewMessageBatch(capWords int) *MessageBatch {
	return &MessageBatch{buf: make([]uint64, 0, capWords)}
}

// batchPool recycles batch buffers across rounds; steady-state encoding
// allocates nothing once buffer capacities have converged.
var batchPool = sync.Pool{New: func() any { return new(MessageBatch) }}

// AcquireMessageBatch returns an empty batch from the package pool.
func AcquireMessageBatch() *MessageBatch {
	b := batchPool.Get().(*MessageBatch)
	b.Reset()
	return b
}

// Release hands the batch back to the pool. The caller must be the last
// holder: frames yielded from the batch alias its buffer and become invalid.
func (b *MessageBatch) Release() { batchPool.Put(b) }

// Reset empties the batch, keeping the buffer capacity for reuse.
func (b *MessageBatch) Reset() {
	b.buf = b.buf[:0]
	b.frames = 0
	b.words = 0
}

// Len returns the number of frames in the batch.
func (b *MessageBatch) Len() int { return b.frames }

// Words implements Sized: the total content words across frames.
func (b *MessageBatch) Words() int { return b.words }

// Append adds one frame holding the given words.
func (b *MessageBatch) Append(words ...uint64) {
	b.buf = append(b.buf, uint64(len(words)))
	b.buf = append(b.buf, words...)
	b.frames++
	b.words += len(words)
}

// Grow reserves a frame of n zeroed words in place and returns the slice to
// fill; the slice is valid until the next Append/Grow/Reset. Encode-once:
// callers write the frame directly into the batch buffer.
func (b *MessageBatch) Grow(n int) []uint64 {
	b.buf = append(b.buf, uint64(n))
	start := len(b.buf)
	if cap(b.buf)-start >= n {
		b.buf = b.buf[: start+n : cap(b.buf)]
		clear(b.buf[start:])
	} else {
		b.buf = append(b.buf, make([]uint64, n)...)
	}
	b.frames++
	b.words += n
	return b.buf[start : start+n : start+n]
}

// Frames iterates the frames in encoding order, yielding each frame's
// content words as a sub-slice of the batch buffer (decode in place; treat
// as read-only unless the receiver owns the batch). It is a range-over-func
// iterator: `for frame := range b.Frames { ... }`.
func (b *MessageBatch) Frames(yield func(frame []uint64) bool) {
	c := b.Cursor()
	for f, ok := c.Next(); ok; f, ok = c.Next() {
		if !yield(f) {
			return
		}
	}
}

// Raw exposes the batch's underlying length-prefixed frame buffer for
// codecs that persist batches verbatim (the snapshot container stores its
// sections as one frame each). The slice is valid until the next
// Append/Grow/Reset and must be treated as read-only.
func (b *MessageBatch) Raw() []uint64 { return b.buf }

// MessageBatchFromRaw wraps a length-prefixed frame buffer (as returned by
// Raw) as a batch, validating the frame structure first: unlike the
// routing hot path — where a corrupt frame is a programming error and
// panics — this entry point is for decoding external input (snapshot
// files), so a malformed prefix is returned as an error.
func MessageBatchFromRaw(buf []uint64) (*MessageBatch, error) {
	frames, words := 0, 0
	for off := 0; off < len(buf); {
		n := buf[off]
		if n > uint64(len(buf)-off-1) {
			return nil, fmt.Errorf("mpc: frame at word %d: length %d overruns buffer of %d words", off, n, len(buf))
		}
		frames++
		words += int(n)
		off += 1 + int(n)
	}
	return &MessageBatch{buf: buf, frames: frames, words: words}, nil
}

// BatchCursor walks a batch's frames one at a time; it supports lock-step
// iteration over several batches (as the sketch merge-join needs).
type BatchCursor struct {
	b   *MessageBatch
	off int
}

// Cursor returns a cursor positioned before the first frame.
func (b *MessageBatch) Cursor() BatchCursor { return BatchCursor{b: b} }

// Next returns the next frame (a sub-slice of the batch buffer) and whether
// one was available.
func (c *BatchCursor) Next() ([]uint64, bool) {
	buf := c.b.buf
	if c.off >= len(buf) {
		return nil, false
	}
	n := int(buf[c.off])
	start := c.off + 1
	if start+n > len(buf) {
		panic(fmt.Sprintf("mpc: corrupt batch frame at word %d: length %d overruns buffer %d", c.off, n, len(buf)))
	}
	c.off = start + n
	return buf[start : start+n : start+n], true
}
