package mpc

import (
	"sort"
	"testing"
)

// runSort distributes keys round-robin, sorts, and returns the
// concatenation in machine order plus the stats.
func runSort(t *testing.T, machines, mem int, keys []uint64) ([]uint64, Stats) {
	t.Helper()
	c := NewCluster(Config{Machines: machines, LocalMemory: mem})
	shards := make([][]uint64, machines)
	for i, k := range keys {
		shards[i%machines] = append(shards[i%machines], k)
	}
	var result [][]uint64 = make([][]uint64, machines)
	c.SortByKey(
		func(m *Machine) []uint64 { return shards[m.ID] },
		func(m *Machine, ks []uint64) { result[m.ID] = ks },
		1,
	)
	var out []uint64
	for _, ks := range result {
		out = append(out, ks...)
	}
	return out, c.Stats()
}

func TestSortByKeyGlobalOrder(t *testing.T) {
	keys := []uint64{}
	for i := 0; i < 200; i++ {
		keys = append(keys, uint64((i*7919)%1000))
	}
	got, st := runSort(t, 8, 400, keys)
	if len(got) != len(keys) {
		t.Fatalf("lost items: %d of %d", len(got), len(keys))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("concatenated machine outputs not globally sorted")
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d want %d", i, got[i], want[i])
		}
	}
	if st.Rounds != 4 {
		t.Errorf("sort took %d rounds, want 4", st.Rounds)
	}
}

func TestSortByKeyEmpty(t *testing.T) {
	got, _ := runSort(t, 4, 100, nil)
	if len(got) != 0 {
		t.Errorf("sorted nothing into %v", got)
	}
}

func TestSortByKeyDuplicates(t *testing.T) {
	keys := make([]uint64, 50)
	for i := range keys {
		keys[i] = uint64(i % 3)
	}
	got, _ := runSort(t, 4, 200, keys)
	counts := map[uint64]int{}
	for _, k := range got {
		counts[k]++
	}
	for v := uint64(0); v < 3; v++ {
		want := 0
		for i := 0; i < 50; i++ {
			if uint64(i%3) == v {
				want++
			}
		}
		if counts[v] != want {
			t.Errorf("key %d: count %d, want %d", v, counts[v], want)
		}
	}
}

func TestSortByKeySingleMachine(t *testing.T) {
	got, _ := runSort(t, 1, 100, []uint64{5, 1, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("got %v", got)
	}
}

func TestSortByKeyBalancedLoad(t *testing.T) {
	// With uniform keys the sampling splitters must spread the output; no
	// machine should receive more than ~4x the average.
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64((i * 2654435761) % (1 << 30))
	}
	c := NewCluster(Config{Machines: 8, LocalMemory: 1024})
	shards := make([][]uint64, 8)
	for i, k := range keys {
		shards[i%8] = append(shards[i%8], k)
	}
	sizes := make([]int, 8)
	c.SortByKey(
		func(m *Machine) []uint64 { return shards[m.ID] },
		func(m *Machine, ks []uint64) { sizes[m.ID] = len(ks) },
		1,
	)
	avg := len(keys) / 8
	for id, s := range sizes {
		if s > 4*avg {
			t.Errorf("machine %d received %d items (avg %d)", id, s, avg)
		}
	}
	if v := c.Stats().Violations; len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
