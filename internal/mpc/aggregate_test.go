package mpc_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mpc"
)

// sumCombine merges sorted [k, v] batches, adding values on equal keys.
func sumCombine(a, b *mpc.MessageBatch) *mpc.MessageBatch {
	return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) { dst[1] += src[1] })
}

// decodeKV flattens a [k, v] frame batch into a map and releases it.
func decodeKV(b *mpc.MessageBatch) map[uint64]uint64 {
	out := map[uint64]uint64{}
	if b == nil {
		return out
	}
	for f := range b.Frames {
		out[f[0]] = f[1]
	}
	b.Release()
	return out
}

// TestAggregateBatchesSum checks the tree fold against a directly computed sum at
// several cluster shapes and parallelism levels, with overlapping key sets
// per machine.
func TestAggregateBatchesSum(t *testing.T) {
	for _, machines := range []int{1, 2, 5, 9} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("m=%d/p=%d", machines, par), func(t *testing.T) {
				cl := mpc.NewCluster(mpc.Config{Machines: machines, LocalMemory: 1 << 12, Strict: true, Parallelism: par})
				want := map[uint64]uint64{}
				for id := 0; id < machines; id++ {
					for k := uint64(0); k < 6; k++ {
						if (uint64(id)+k)%2 == 0 {
							want[k] += uint64(id) + 10*k
						}
					}
				}
				got := decodeKV(cl.AggregateBatches(machines-1,
					func(m *mpc.Machine) *mpc.MessageBatch {
						b := mpc.AcquireMessageBatch()
						for k := uint64(0); k < 6; k++ {
							if (uint64(m.ID)+k)%2 == 0 {
								b.Append(k, uint64(m.ID)+10*k)
							}
						}
						return b
					}, sumCombine))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("aggregated %v, want %v", got, want)
				}
				if st := cl.Stats(); len(st.Violations) != 0 {
					t.Fatalf("violations: %v", st.Violations[0])
				}
			})
		}
	}
}

// TestAggregateBatchesEmpty covers the no-contribution and the
// single-contributor cases.
func TestAggregateBatchesEmpty(t *testing.T) {
	cl := mpc.NewCluster(mpc.Config{Machines: 4, LocalMemory: 1 << 12, Strict: true})
	if res := cl.AggregateBatches(0, func(m *mpc.Machine) *mpc.MessageBatch { return nil }, sumCombine); res != nil {
		t.Fatalf("empty aggregation returned %v frames", res.Len())
	}
	got := decodeKV(cl.AggregateBatches(0, func(m *mpc.Machine) *mpc.MessageBatch {
		if m.ID != 2 {
			return nil
		}
		b := mpc.AcquireMessageBatch()
		b.Append(7, 42)
		return b
	}, sumCombine))
	if !reflect.DeepEqual(got, map[uint64]uint64{7: 42}) {
		t.Fatalf("single contributor: got %v", got)
	}
}

// TestAggregateBatchesDeterministic pins the exact frame order of the final
// batch across parallelism levels: merge-joined frames must come back sorted
// by key regardless of how the tree was scheduled.
func TestAggregateBatchesDeterministic(t *testing.T) {
	run := func(par int) ([]uint64, mpc.Stats) {
		cl := mpc.NewCluster(mpc.Config{Machines: 7, LocalMemory: 1 << 12, Strict: true, Parallelism: par})
		res := cl.AggregateBatches(3, func(m *mpc.Machine) *mpc.MessageBatch {
			b := mpc.AcquireMessageBatch()
			b.Append(uint64(m.ID%3), uint64(m.ID))
			b.Append(uint64(10+m.ID), 1)
			return b
		}, sumCombine)
		var flat []uint64
		for f := range res.Frames {
			flat = append(flat, f...)
		}
		res.Release()
		return flat, cl.Stats()
	}
	seqFlat, seqStats := run(1)
	parFlat, parStats := run(4)
	if !reflect.DeepEqual(seqFlat, parFlat) {
		t.Errorf("frame stream diverged across parallelism:\nseq %v\npar %v", seqFlat, parFlat)
	}
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
	}
	for i := 2; i < len(seqFlat); i += 2 {
		if seqFlat[i] <= seqFlat[i-2] {
			t.Fatalf("final frames not strictly sorted by key: %v", seqFlat)
		}
	}
}

// TestMergeSortedBatchesNilCombine checks the keep-dst default and that
// wide frames pass through intact.
func TestMergeSortedBatchesNilCombine(t *testing.T) {
	a, b := mpc.AcquireMessageBatch(), mpc.AcquireMessageBatch()
	a.Append(1, 100, 101)
	a.Append(5, 500, 501)
	b.Append(1, 900, 901)
	b.Append(3, 300, 301)
	out := mpc.MergeSortedBatches(a, b, nil)
	var flat []uint64
	for f := range out.Frames {
		flat = append(flat, f...)
	}
	out.Release()
	want := []uint64{1, 100, 101, 3, 300, 301, 5, 500, 501}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("merge got %v, want %v", flat, want)
	}
}
