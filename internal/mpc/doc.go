// Package mpc implements an in-process simulator of the Massively Parallel
// Computation model with sublinear local memory, the substrate on which every
// algorithm in this repository runs.
//
// A Cluster is a fixed collection of machines that communicate only in
// synchronous rounds. In each round every machine may read its inbox, perform
// arbitrary local computation on its local store, and emit messages; the
// cluster routes the messages, enforces the per-machine communication cap
// (total words sent or received by one machine in one round must not exceed
// its local memory s), and meters rounds, messages, words moved, and peak
// memory. Algorithms are written against Step and against the collective
// operations built on top of it (Broadcast, Gather, Aggregate, Exchange), so
// their round counts are structural properties of the execution, not
// estimates.
//
// Memory is accounted in machine words: one vertex id, one tour index, or one
// sketch cell each count as one word, matching the convention of the paper's
// model (Section 1.2).
//
// # Round pipeline
//
// One Step runs in three phases:
//
//  1. Compute + encode/route. The executor fans the machines out over OS
//     threads; each invocation runs the machine's StepFunc and then, still
//     on the same worker, validates its outbox destinations, sizes the
//     payloads, and buckets the message indices by destination shard
//     (prepRoute). Encoding therefore overlaps the compute of other
//     machines instead of serializing behind the round barrier.
//  2. Sharded merge. The destination space is carved into contiguous
//     shards (about two per worker), and the executor runs one merge job
//     per shard: each job walks the senders in ascending machine order and
//     copies that sender's bucketed messages for its shard into the
//     destination inboxes. Shards write disjoint inbox ranges, so the
//     merges run concurrently without locks.
//  3. Meter fold. A single serial pass folds the per-machine counters into
//     Stats in machine order — per sender: invalid-destination violations
//     in outbox order, message/word totals, the send-cap check; then per
//     destination: the receive-cap check — and finally the fresh inboxes
//     are swapped in and the round counter advances.
//
// # Determinism
//
// Every metric and every delivery order the simulator reports is
// bit-identical at any parallelism level, including Config.Parallelism 1.
// The argument: phase 1 writes only slot i of cluster-owned arrays from
// invocation i (the StepFunc concurrency contract), so its outputs are
// independent of scheduling; phase 2 assembles each inbox from per-sender
// buckets in ascending sender order, and each sender's bucket preserves its
// outbox order, so each inbox equals what the serial scan (senders 0..M-1,
// outbox in order) would produce no matter how shards are scheduled; phase
// 3 is serial and runs in machine order, so violation strings, counters,
// and peaks are appended in the serial order too. A Strict-mode violation
// panics inside phase 3 — after deliveries are merged but before the inbox
// swap — and the next Step discards the partial merge, so a recovered
// Strict panic is also scheduling-independent (see the determinism tests in
// merge_test.go and executor_test.go).
//
// Executors are pluggable (Config.Parallelism selects the sequential loop
// or a work-stealing worker pool); the pool claims contiguous index chunks
// off a shared cursor, so a machine with a skewed share of the round's work
// costs its one chunk rather than a statically assigned slice of the range.
//
// The round machinery itself is allocation-free at steady state: the
// cluster owns its routing buffers (per-machine outboxes, shard buckets,
// double-buffered inboxes, word counters) and reuses them round over round,
// and MessageBatch provides a length-prefixed binary codec so algorithms
// route one packed buffer per (src, dst) machine pair instead of one small
// allocation per logical message. See codec.go and the allocation-budget
// tests.
package mpc
