package mpc

import "sort"

// SortByKey redistributes keyed items across machines so that afterwards
// machine 0 holds the smallest keys, machine 1 the next range, and so on,
// with every machine's items locally sorted. It is a sample sort in the
// style of Goodrich–Sitchinava–Zhang (the O(1)-round MPC sorting primitive
// the paper relies on for consolidating updates, Section 1.2):
//
//  1. every machine sends a sample of its keys to the coordinator,
//  2. the coordinator broadcasts M-1 splitters,
//  3. every machine routes each item to the splitter-chosen destination.
//
// items are provided and received through the callbacks so the caller
// controls representation; itemWords meters the per-item payload size.
// The coordinator-side buffers (local, received, splitters) are indexed by
// machine id or touched only by machine 0, satisfying the StepFunc
// concurrency contract under parallel executors.
// The caller must ensure the per-destination volume fits the cap (true for
// balanced inputs, which is what the sampling guarantees w.h.p.; the
// simulator meters violations otherwise).
func (c *Cluster) SortByKey(
	take func(m *Machine) []uint64,
	give func(m *Machine, keys []uint64),
	itemWords int,
) {
	M := c.cfg.Machines
	local := make([][]uint64, M)
	for i, m := range c.machines {
		local[i] = take(m)
	}
	// Round 1: sample. Each machine contributes up to sampleRate evenly
	// spaced keys.
	const samplePerMachine = 8
	var splitters []uint64
	c.Step(func(m *Machine, inbox []Message) []Message {
		keys := local[m.ID]
		if len(keys) == 0 {
			return nil
		}
		sorted := append([]uint64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		step := len(sorted) / samplePerMachine
		if step == 0 {
			step = 1
		}
		var sample []uint64
		for i := 0; i < len(sorted); i += step {
			sample = append(sample, sorted[i])
		}
		return []Message{{To: 0, Payload: U64s(sample)}}
	})
	// Round 2: the coordinator (machine 0 for sorting) picks splitters and
	// broadcasts them.
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		var all []uint64
		for _, msg := range inbox {
			all = append(all, msg.Payload.(U64s)...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		splitters = splitters[:0]
		for i := 1; i < M; i++ {
			idx := i * len(all) / M
			if idx >= len(all) {
				idx = len(all) - 1
			}
			if len(all) > 0 {
				splitters = append(splitters, all[idx])
			}
		}
		var out []Message
		for to := 0; to < M; to++ {
			out = append(out, Message{To: to, Payload: U64s(splitters)})
		}
		return out
	})
	// Round 3: route every item by splitter interval.
	received := make([][]uint64, M)
	c.Step(func(m *Machine, inbox []Message) []Message {
		var sp []uint64
		for _, msg := range inbox {
			sp = msg.Payload.(U64s)
		}
		dest := func(k uint64) int {
			return sort.Search(len(sp), func(i int) bool { return sp[i] > k })
		}
		byDest := make(map[int][]uint64)
		for _, k := range local[m.ID] {
			d := dest(k)
			byDest[d] = append(byDest[d], k)
		}
		var out []Message
		for d, ks := range byDest {
			out = append(out, Message{To: d, Payload: Value{V: ks, N: len(ks) * itemWords}})
		}
		return out
	})
	// Round 4: deliver, locally sort, hand back.
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			received[m.ID] = append(received[m.ID], msg.Payload.(Value).V.([]uint64)...)
		}
		sort.Slice(received[m.ID], func(i, j int) bool { return received[m.ID][i] < received[m.ID][j] })
		return nil
	})
	for i, m := range c.machines {
		give(m, received[i])
	}
}
