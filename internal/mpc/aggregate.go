package mpc

// Flat batched aggregation: the query-path counterpart of the MessageBatch
// codec. Algorithms that previously funneled map[int]int partials (boxed in
// Value payloads and merged with per-key map writes) through Aggregate now
// contribute one label-sorted MessageBatch per machine; internal tree nodes
// merge-join the sorted frames, and the coordinator decodes the final batch
// in place. This is the packed-aggregation discipline of the constant-round
// congested-clique MST line (Jurdziński–Nowicki; Nowicki): one buffer per
// tree edge per round, no per-key heap objects.
//
// The tree walk reuses cluster-owned state (the per-rank accumulator slots,
// the per-machine one-message outboxes, and a dispatch closure built once at
// NewCluster), so a steady-state AggregateBatches allocates nothing of its
// own beyond the pooled batch buffers its combine function acquires.

// BatchCombine merges two batches into one, returning the result. It runs at
// internal nodes of the aggregation tree and must be associative up to the
// key order of the frames; implementations normally acquire a pooled output
// batch and release both inputs (see MergeSortedBatches).
type BatchCombine func(a, b *MessageBatch) *MessageBatch

// aggState is the reusable scratch of AggregateBatches, owned by the
// cluster: acc holds one accumulator batch per machine rank, outs holds one
// single-message outbox per machine, and the remaining fields parameterize
// the dispatch closure for the current call.
type aggState struct {
	acc     []*MessageBatch
	outs    [][]Message
	to      int
	group   int // 0 marks the final delivery flush
	fanout  int
	combine BatchCombine
}

// absorb merges every delivered batch into the rank's accumulator, in inbox
// order (ascending sender id, deterministic at every parallelism).
func (c *Cluster) aggAbsorb(r int, inbox []Message) {
	for _, msg := range inbox {
		b := msg.Payload.(*MessageBatch)
		if c.agg.acc[r] == nil {
			c.agg.acc[r] = b
		} else {
			c.agg.acc[r] = c.agg.combine(c.agg.acc[r], b)
		}
	}
}

// aggStep is the per-round callback of AggregateBatches (one closure for
// every round of every call; see Cluster.runAgg).
func (c *Cluster) aggStep(m *Machine, inbox []Message) []Message {
	M := c.cfg.Machines
	r := (m.ID - c.agg.to + M) % M
	c.aggAbsorb(r, inbox)
	gs := c.agg.group
	if gs == 0 || r%gs != 0 || r%(gs*c.agg.fanout) == 0 || c.agg.acc[r] == nil {
		return nil
	}
	parent := (r - r%(gs*c.agg.fanout) + c.agg.to) % M
	p := c.agg.acc[r]
	c.agg.acc[r] = nil
	out := append(c.agg.outs[m.ID][:0], Message{To: parent, Payload: p})
	c.agg.outs[m.ID] = out
	return out
}

// AggregateBatches tree-combines one MessageBatch per machine onto machine
// `to` and returns the result (nil when no machine contributed). collect
// runs on every machine in ascending id on the calling goroutine and may
// return nil for "no contribution"; combine merges two batches at internal
// tree nodes and at the destination, always with the lower-ranked
// accumulator as its left operand. The fanout is sized for the largest
// contribution, costing ceil(log_f M) rounds plus one delivery flush —
// O(1/φ) rounds, exactly like Aggregate, but with packed frames instead of
// boxed values.
//
// Ownership: contributed batches are consumed (combined batches are
// typically released by combine); the returned batch belongs to the caller,
// which should Release it after decoding.
func (c *Cluster) AggregateBatches(to int, collect func(m *Machine) *MessageBatch, combine BatchCombine) *MessageBatch {
	M := c.cfg.Machines
	maxW := 1
	for _, m := range c.machines {
		b := collect(m)
		if b != nil && b.Words() == 0 {
			b.Release()
			b = nil
		}
		c.agg.acc[(m.ID-to+M)%M] = b
		if b != nil && b.Words() > maxW {
			maxW = b.Words()
		}
	}
	c.agg.to = to
	c.agg.fanout = c.fanout(maxW)
	c.agg.combine = combine
	depth := treeDepth(M, c.agg.fanout)
	c.agg.group = 1
	for d := 0; d < depth; d++ {
		c.Step(c.runAgg)
		c.agg.group *= c.agg.fanout
	}
	c.agg.group = 0 // delivery flush: absorb in-flight batches, send nothing
	c.Step(c.runAgg)
	c.agg.combine = nil
	res := c.agg.acc[0]
	c.agg.acc[0] = nil
	return res
}

// MergeSortedBatches merge-joins two batches whose frames are sorted
// ascending by their first word (the key) into a fresh pooled batch:
// distinct keys are copied through, equal keys are handed to combine, which
// merges the src frame into the dst frame already copied into the output.
// Both inputs are released; neither operand is mutated in place (the
// left-operand aliasing hazard of the retired map merge cannot arise once
// buffers are pooled). Pass a nil combine to keep the dst frame on key
// collisions.
func MergeSortedBatches(a, b *MessageBatch, combine func(dst, src []uint64)) *MessageBatch {
	out := AcquireMessageBatch()
	ca, cb := a.Cursor(), b.Cursor()
	fa, oka := ca.Next()
	fb, okb := cb.Next()
	for oka || okb {
		switch {
		case !okb || (oka && fa[0] < fb[0]):
			copy(out.Grow(len(fa)), fa)
			fa, oka = ca.Next()
		case !oka || fb[0] < fa[0]:
			copy(out.Grow(len(fb)), fb)
			fb, okb = cb.Next()
		default:
			f := out.Grow(len(fa))
			copy(f, fa)
			if combine != nil {
				combine(f, fb)
			}
			fa, oka = ca.Next()
			fb, okb = cb.Next()
		}
	}
	a.Release()
	b.Release()
	return out
}
