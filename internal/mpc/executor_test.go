package mpc

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"
)

func TestNewExecutorSelection(t *testing.T) {
	if p := NewExecutor(0).Parallelism(); p != 1 {
		t.Errorf("NewExecutor(0).Parallelism() = %d, want 1", p)
	}
	if p := NewExecutor(1).Parallelism(); p != 1 {
		t.Errorf("NewExecutor(1).Parallelism() = %d, want 1", p)
	}
	if p := NewExecutor(4).Parallelism(); p != 4 {
		t.Errorf("NewExecutor(4).Parallelism() = %d, want 4", p)
	}
	if p := NewExecutor(-1).Parallelism(); p != runtime.NumCPU() && runtime.NumCPU() > 1 {
		t.Errorf("NewExecutor(-1).Parallelism() = %d, want NumCPU %d", p, runtime.NumCPU())
	}
	// A pool of one worker degenerates to the sequential executor.
	if _, seq := NewWorkerPool(1).(sequentialExecutor); !seq {
		t.Error("NewWorkerPool(1) is not the sequential executor")
	}
}

func TestExecutorRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		ex := NewWorkerPool(workers)
		for _, n := range []int{0, 1, 2, 5, 16, 33, 100} {
			counts := make([]int, n)
			ex.Run(n, func(i int) { counts[i]++ })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestWorkerPoolPanicPropagation(t *testing.T) {
	ex := NewWorkerPool(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic")
		}
		// Indices 3 and 7 both panic in different chunks; the re-panic must
		// deterministically carry the lowest index's value.
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	ex.Run(8, func(i int) {
		if i == 3 || i == 7 {
			panic(fmt.Sprintf("boom-%d", i))
		}
	})
}

// TestExecutorPanicContract pins the panic contract both executors share:
// the re-panic value is the panic of the lowest panicking index (nothing
// below it panics, so it always runs), every index below the lowest
// panicking one is invoked exactly once, and no index is ever invoked
// twice — under the sequential loop and under chunked work stealing alike.
func TestExecutorPanicContract(t *testing.T) {
	const n, bomb = 100, 37
	for _, tc := range []struct {
		name string
		ex   Executor
	}{
		{"sequential", NewSequentialExecutor()},
		{"pool-4", NewWorkerPool(4)},
		{"pool-7", NewWorkerPool(7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]int, n)
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("Run did not re-panic")
					}
					if r != fmt.Sprintf("boom-%d", bomb) {
						t.Fatalf("recovered %v, want boom-%d", r, bomb)
					}
				}()
				tc.ex.Run(n, func(i int) {
					counts[i]++
					if i == bomb || i == bomb+40 {
						panic(fmt.Sprintf("boom-%d", i))
					}
				})
			}()
			for i := 0; i < bomb; i++ {
				if counts[i] != 1 {
					t.Fatalf("index %d below the panicking index ran %d times, want 1", i, counts[i])
				}
			}
			for i, c := range counts {
				if c > 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
			if counts[bomb] != 1 {
				t.Fatalf("panicking index ran %d times, want 1", counts[bomb])
			}
		})
	}
}

// runPanicRecoveryProgram drives the cluster-level panic contract: a benign
// messaging round, a round whose StepFunc panics at a fixed machine,
// recovery, and a continuation round that overwrites every per-machine slot
// the panicking round may have partially written. The observable cluster
// state — the panic value, Stats (the panicked round merges nothing), the
// redelivered inbox of the continuation round, and the final stores — must
// be bit-identical under both executors.
func runPanicRecoveryProgram(t *testing.T, parallelism int) (Stats, string) {
	t.Helper()
	const M, bomb = 33, 17
	c := NewCluster(Config{Machines: M, LocalMemory: 64, Parallelism: parallelism})
	// Round A: every machine sends two messages.
	c.Step(func(m *Machine, inbox []Message) []Message {
		return []Message{
			{To: (m.ID + 1) % M, Payload: Word(uint64(m.ID))},
			{To: (m.ID + 5) % M, Payload: U64s{uint64(m.ID), uint64(m.ID)}},
		}
	})
	statsBefore := c.Stats()
	// Round B: panics at machine `bomb` before any state is written there;
	// other machines may or may not have run (scheduling-dependent), so
	// everything they write must be overwritten by round C.
	var panicked any
	func() {
		defer func() { panicked = recover() }()
		c.Step(func(m *Machine, inbox []Message) []Message {
			if m.ID == bomb {
				panic(fmt.Sprintf("boom-%d", m.ID))
			}
			m.Set("scratch", Word(uint64(m.ID)))
			return []Message{{To: 0, Payload: Word(1)}}
		})
	}()
	if panicked != fmt.Sprintf("boom-%d", bomb) {
		t.Fatalf("recovered %v, want boom-%d", panicked, bomb)
	}
	if got := c.Stats(); !reflect.DeepEqual(got, statsBefore) {
		t.Fatalf("panicked round mutated Stats:\nbefore: %+v\nafter:  %+v", statsBefore, got)
	}
	// Round C: round A's messages must be redelivered (round B never merged
	// or consumed them), and every machine overwrites the scratch slot.
	delivered := make([][]int, M)
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			delivered[m.ID] = append(delivered[m.ID], msg.From)
		}
		m.Set("scratch", U64s{uint64(m.ID), uint64(len(inbox))})
		return nil
	})
	digest := ""
	for i := 0; i < M; i++ {
		digest += fmt.Sprintf("m%d: state=%d delivered=%v\n", i, c.Machine(i).StateWords(), delivered[i])
	}
	return c.Stats(), digest
}

// TestStepPanicRecoveryDeterministic asserts the identical observable
// cluster state after recovering a StepFunc panic at a fixed machine index,
// across the sequential executor and work-stealing pools of several widths.
func TestStepPanicRecoveryDeterministic(t *testing.T) {
	baseStats, baseDigest := runPanicRecoveryProgram(t, 1)
	for _, p := range []int{2, 4, 8} {
		st, digest := runPanicRecoveryProgram(t, p)
		if !reflect.DeepEqual(st, baseStats) {
			t.Errorf("parallelism %d: stats diverged\nseq: %+v\npar: %+v", p, baseStats, st)
		}
		if digest != baseDigest {
			t.Errorf("parallelism %d: digest diverged\nseq:\n%s\npar:\n%s", p, baseDigest, digest)
		}
	}
}

func TestStrictViolationPanicsUnderParallel(t *testing.T) {
	c := NewCluster(Config{Machines: 8, LocalMemory: 1, Strict: true, Parallelism: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("strict parallel cluster did not panic on violation")
		}
	}()
	c.Step(func(m *Machine, inbox []Message) []Message {
		if m.ID != 0 {
			return nil
		}
		return []Message{{To: 1, Payload: U64s{1, 2, 3}}}
	})
}

// runEngineProgram drives a deterministic multi-round program that exercises
// point-to-point sends of varying sizes, deliberate cap violations, invalid
// destinations, store growth, LocalAll, and the collectives. It returns the
// final stats and a machine-order digest of all state and delivery orders.
func runEngineProgram(parallelism int) (Stats, string) {
	const M = 33
	c := NewCluster(Config{Machines: M, LocalMemory: 64, Parallelism: parallelism})
	c.LocalAll(func(m *Machine) {
		m.Set("shard", U64s(make([]uint64, 1+m.ID%7)))
	})
	delivered := make([][]int, M) // per-machine sender sequence, round 2
	// Round 1: every machine sends to a spread of destinations, including an
	// invalid one from machine 5 and an oversend from machine 6.
	c.Step(func(m *Machine, inbox []Message) []Message {
		var out []Message
		for k := 1; k <= 3; k++ {
			out = append(out, Message{To: (m.ID + k*k) % M, Payload: U64s(make([]uint64, k))})
		}
		if m.ID == 5 {
			out = append(out, Message{To: M + 40, Payload: Word(1)})
		}
		if m.ID == 6 {
			out = append(out, Message{To: 7, Payload: U64s(make([]uint64, 100))})
		}
		return out
	})
	// Round 2: record exact delivery order, grow stores.
	c.Step(func(m *Machine, inbox []Message) []Message {
		for _, msg := range inbox {
			delivered[m.ID] = append(delivered[m.ID], msg.From)
		}
		m.Set("grown", U64s(make([]uint64, len(inbox))))
		return nil
	})
	// Collectives on top of the same engine.
	c.Broadcast(3, "bc", U64s{1, 2, 3})
	sum := c.Aggregate(0,
		func(m *Machine) Sized { return Word(uint64(m.ID)) },
		func(a, b Sized) Sized { return Word(uint64(a.(Word)) + uint64(b.(Word))) },
	)
	gathered := c.Gather(1, func(m *Machine) Sized {
		if m.ID%3 == 0 {
			return Word(uint64(m.ID * 11))
		}
		return nil
	})
	srcs := make([]int, 0, len(gathered))
	for src := range gathered {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	digest := fmt.Sprintf("sum=%d gathered=%v\n", uint64(sum.(Word)), srcs)
	for i := 0; i < M; i++ {
		digest += fmt.Sprintf("m%d: state=%d delivered=%v\n", i, c.Machine(i).StateWords(), delivered[i])
	}
	return c.Stats(), digest
}

// TestEngineDeterministicAcrossParallelism is the engine's core guarantee:
// the same program yields bit-identical Stats (including violation strings
// in order), identical per-machine delivery order, and identical state at
// parallelism 1, 4, and NumCPU.
func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	baseStats, baseDigest := runEngineProgram(1)
	if len(baseStats.Violations) == 0 {
		t.Fatal("program was expected to record violations")
	}
	for _, p := range []int{4, -1} {
		st, digest := runEngineProgram(p)
		if !reflect.DeepEqual(st, baseStats) {
			t.Errorf("parallelism %d: stats diverged\nseq: %+v\npar: %+v", p, baseStats, st)
		}
		if digest != baseDigest {
			t.Errorf("parallelism %d: state/delivery digest diverged\nseq:\n%s\npar:\n%s", p, baseDigest, digest)
		}
	}
}

func TestSortByKeyDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) (Stats, string) {
		const M = 9
		c := NewCluster(Config{Machines: M, LocalMemory: 256, Parallelism: parallelism})
		c.LocalAll(func(m *Machine) {
			keys := make(U64s, 0, 20)
			for k := 0; k < 20; k++ {
				keys = append(keys, uint64((m.ID*7919+k*104729)%1000))
			}
			m.Set("keys", keys)
		})
		var got string
		c.SortByKey(
			func(m *Machine) []uint64 { return m.Get("keys").(U64s) },
			func(m *Machine, keys []uint64) { m.Set("keys", U64s(keys)) },
			1,
		)
		for i := 0; i < M; i++ {
			got += fmt.Sprintf("%v\n", c.Machine(i).Get("keys"))
		}
		return c.Stats(), got
	}
	seqStats, seqOut := run(1)
	parStats, parOut := run(4)
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats diverged\nseq: %+v\npar: %+v", seqStats, parStats)
	}
	if seqOut != parOut {
		t.Errorf("sorted output diverged\nseq:\n%s\npar:\n%s", seqOut, parOut)
	}
}

func TestParallelismAccessor(t *testing.T) {
	if p := NewCluster(Config{Machines: 2, LocalMemory: 8}).Parallelism(); p != 1 {
		t.Errorf("default cluster parallelism = %d, want 1", p)
	}
	if p := NewCluster(Config{Machines: 2, LocalMemory: 8, Parallelism: 3}).Parallelism(); p != 3 {
		t.Errorf("parallel cluster parallelism = %d, want 3", p)
	}
}
