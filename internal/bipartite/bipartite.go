// Package bipartite maintains bipartiteness of a dynamically evolving graph
// in the streaming MPC model (Theorem 7.3). It runs the batch-dynamic
// connectivity algorithm on the input graph G and on its bipartite double
// cover G' (each vertex v becomes v1, v2; each edge {u, v} becomes
// {u1, v2} and {u2, v1}); G is bipartite iff G' has exactly twice as many
// connected components as G (Lemma 7.4, after [AGM12]).
package bipartite

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// Tester maintains the bipartiteness of an n-vertex dynamic graph.
type Tester struct {
	n      int
	g      *core.DynamicConnectivity // the input graph
	cover  *core.DynamicConnectivity // the double cover on 2n vertices
	halved int
}

// New creates a tester for an empty graph on cfg.N vertices.
func New(cfg core.Config) (*Tester, error) {
	g, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		return nil, err
	}
	coverCfg := cfg
	coverCfg.N = 2 * cfg.N
	coverCfg.Seed = cfg.Seed ^ 0xb1fa
	cover, err := core.NewDynamicConnectivity(coverCfg)
	if err != nil {
		return nil, err
	}
	return &Tester{n: cfg.N, g: g, cover: cover}, nil
}

// MaxBatch returns the largest accepted update batch.
func (t *Tester) MaxBatch() int {
	// Each update maps to two cover updates; both instances must accept.
	b := t.g.MaxBatch()
	if c := t.cover.MaxBatch() / 2; c < b {
		b = c
	}
	return b
}

// ApplyBatch forwards a batch of unweighted updates to both maintained
// graphs. In a real MPC the two instances run side by side; the simulator
// executes them sequentially.
func (t *Tester) ApplyBatch(b graph.Batch) error {
	if len(b) > t.MaxBatch() {
		return fmt.Errorf("bipartite: batch of %d exceeds MaxBatch %d", len(b), t.MaxBatch())
	}
	if err := t.g.ApplyBatch(b); err != nil {
		return fmt.Errorf("bipartite: input graph: %w", err)
	}
	cb := make(graph.Batch, 0, 2*len(b))
	for _, u := range b {
		// v1 = v, v2 = n + v.
		cb = append(cb,
			graph.Update{Op: u.Op, Edge: graph.NewEdge(u.Edge.U, t.n+u.Edge.V)},
			graph.Update{Op: u.Op, Edge: graph.NewEdge(t.n+u.Edge.U, u.Edge.V)},
		)
	}
	if err := t.cover.ApplyBatch(cb); err != nil {
		return fmt.Errorf("bipartite: double cover: %w", err)
	}
	return nil
}

// IsBipartite answers the maintained query: G is bipartite iff
// cc(G') == 2*cc(G). Both counts are O(1/φ)-round MPC queries, cached by
// their connectivity instances between updates, so repeated readouts
// between batches cost zero rounds.
func (t *Tester) IsBipartite() bool {
	return t.cover.NumComponents() == 2*t.g.NumComponents()
}

// Checkpoint serializes both maintained connectivity instances (input
// graph, then double cover) into a crash-safe snapshot; see package
// snapshot.
func (t *Tester) Checkpoint(e *snapshot.Encoder) {
	t.g.Checkpoint(e)
	t.cover.Checkpoint(e)
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed tester. On error the instance must be discarded.
func (t *Tester) Restore(d *snapshot.Decoder) error {
	if err := t.g.Restore(d); err != nil {
		return fmt.Errorf("bipartite: input graph: %w", err)
	}
	if err := t.cover.Restore(d); err != nil {
		return fmt.Errorf("bipartite: double cover: %w", err)
	}
	return nil
}

// Graph exposes the connectivity instance on G (for metering).
func (t *Tester) Graph() *core.DynamicConnectivity { return t.g }

// Cover exposes the connectivity instance on the double cover.
func (t *Tester) Cover() *core.DynamicConnectivity { return t.cover }
