package bipartite

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

func newTester(t *testing.T, n int, seed uint64) *Tester {
	t.Helper()
	tt, err := New(core.Config{N: n, Phi: 0.7, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestEmptyGraphIsBipartite(t *testing.T) {
	tt := newTester(t, 16, 1)
	if !tt.IsBipartite() {
		t.Error("empty graph declared non-bipartite")
	}
}

func TestOddCycleDetected(t *testing.T) {
	tt := newTester(t, 16, 2)
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if !tt.IsBipartite() {
		t.Error("path declared non-bipartite")
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if tt.IsBipartite() {
		t.Error("triangle declared bipartite")
	}
}

func TestEvenCycleStaysBipartite(t *testing.T) {
	tt := newTester(t, 16, 3)
	b := graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)}
	if err := tt.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(3, 0)}); err != nil {
		t.Fatal(err)
	}
	if !tt.IsBipartite() {
		t.Error("C4 declared non-bipartite")
	}
}

func TestDeletionRestoresBipartiteness(t *testing.T) {
	tt := newTester(t, 16, 4)
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if tt.IsBipartite() {
		t.Fatal("triangle declared bipartite")
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Del(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if !tt.IsBipartite() {
		t.Error("bipartiteness not restored after breaking the odd cycle")
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	const n = 16
	tt := newTester(t, n, 5)
	g := graph.New(n)
	prg := hash.NewPRG(55)
	for step := 0; step < 15; step++ {
		var b graph.Batch
		used := map[graph.Edge]bool{}
		size := 1 + int(prg.NextN(uint64(tt.MaxBatch())))
		for attempts := 0; len(b) < size && attempts < 80; attempts++ {
			u, v := int(prg.NextN(n)), int(prg.NextN(n))
			if u == v {
				continue
			}
			e := graph.NewEdge(u, v)
			if used[e] {
				continue
			}
			used[e] = true
			if g.Has(e.U, e.V) {
				_ = g.Delete(e.U, e.V)
				b = append(b, graph.Del(e.U, e.V))
			} else {
				_ = g.Insert(e.U, e.V, 0)
				b = append(b, graph.Ins(e.U, e.V))
			}
		}
		if len(b) == 0 {
			continue
		}
		if err := tt.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if got, want := tt.IsBipartite(), oracle.IsBipartite(g); got != want {
			t.Fatalf("step %d: IsBipartite = %v, oracle %v", step, got, want)
		}
	}
	if v := tt.Cover().Cluster().Stats().Violations; len(v) > 0 {
		t.Fatalf("violations: %v", v[0])
	}
}

func TestBatchCap(t *testing.T) {
	tt := newTester(t, 16, 6)
	big := make(graph.Batch, tt.MaxBatch()+1)
	for i := range big {
		big[i] = graph.Ins(0, i+1)
	}
	if err := tt.ApplyBatch(big); err == nil {
		t.Error("oversized batch accepted")
	}
}

func TestAccessors(t *testing.T) {
	tt := newTester(t, 16, 7)
	if tt.Graph() == nil || tt.Cover() == nil {
		t.Fatal("nil accessors")
	}
	if tt.Graph().Cluster() == tt.Cover().Cluster() {
		t.Error("graph and cover must run on distinct clusters")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(core.Config{N: 1, Phi: 0.5}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := New(core.Config{N: 16, Phi: 0}); err == nil {
		t.Error("Phi=0 accepted")
	}
}

func TestMultipleComponentsWithMixedParity(t *testing.T) {
	// Two separate components: one bipartite, one with an odd cycle; the
	// whole graph is non-bipartite.
	tt := newTester(t, 16, 8)
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(0, 1), graph.Ins(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(10, 11), graph.Ins(11, 12)}); err != nil {
		t.Fatal(err)
	}
	if err := tt.ApplyBatch(graph.Batch{graph.Ins(10, 12)}); err != nil {
		t.Fatal(err)
	}
	if tt.IsBipartite() {
		t.Error("graph with one odd-cycle component declared bipartite")
	}
	// Removing the odd cycle's closing edge restores global bipartiteness.
	if err := tt.ApplyBatch(graph.Batch{graph.Del(10, 12)}); err != nil {
		t.Fatal(err)
	}
	if !tt.IsBipartite() {
		t.Error("bipartiteness not restored")
	}
}
