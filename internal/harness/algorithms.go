package harness

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/msf"
	"repro/internal/nowickionak"
	"repro/internal/oracle"
	"repro/internal/snapshot"
)

// This file adapts every dynamic algorithm in the repository to the
// harness Instance interface and registers it. Each adapter's Check method
// is the brute-force differential oracle for that algorithm's maintained
// solution — the single source of truth the experiments and CLIs reuse.

// coreCfg builds the standard cluster configuration from the options.
func (o Options) coreCfg() core.Config {
	return core.Config{
		N:                  o.N,
		Phi:                o.Phi,
		Seed:               o.Seed,
		Parallelism:        o.Parallelism,
		VerticesPerMachine: o.VerticesPerMachine,
	}
}

// VerifyConnectivity cross-checks a dynamic-connectivity instance against
// the sequential oracle with batched readouts only: one SnapshotComponents
// readout for the full label comparison, one spanning-forest check, and one
// ConnectedAll collective over a deterministic pair sample (never a
// per-pair query loop), so a differential check costs O(1) collective
// operations per batch regardless of n.
func VerifyConnectivity(dc *core.DynamicConnectivity, g *graph.Graph) error {
	want := oracle.Components(g)
	got := dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("component of vertex %d diverged (%d vs oracle %d)", v, got[v], want[v])
		}
	}
	if !oracle.IsSpanningForest(g, dc.SnapshotForest()) {
		return fmt.Errorf("maintained forest is not a spanning forest of the mirror")
	}
	// Exercise the batched query engine itself: its answers must match the
	// oracle labels (this also covers the label cache, which the preceding
	// snapshot does not touch).
	n := g.N()
	pairs := make([]core.Pair, 0, 32)
	for i := 0; i < 16 && i+1 < n; i++ {
		pairs = append(pairs, core.Pair{U: i, V: i + 1}, core.Pair{U: i, V: n - 1 - i})
	}
	for i, conn := range dc.ConnectedAll(pairs) {
		p := pairs[i]
		if conn != (want[p.U] == want[p.V]) {
			return fmt.Errorf("ConnectedAll(%d, %d) = %v, oracle %v", p.U, p.V, conn, !conn)
		}
	}
	return nil
}

type connectivityInstance struct{ dc *core.DynamicConnectivity }

func (c connectivityInstance) MaxBatch() int                     { return c.dc.MaxBatch() }
func (c connectivityInstance) Apply(b graph.Batch) error         { return c.dc.ApplyBatch(b) }
func (c connectivityInstance) Check(g *graph.Graph) error        { return VerifyConnectivity(c.dc, g) }
func (c connectivityInstance) Rounds() int                       { return c.dc.Cluster().Stats().Rounds }
func (c connectivityInstance) Checkpoint(e *snapshot.Encoder)    { c.dc.Checkpoint(e) }
func (c connectivityInstance) Restore(d *snapshot.Decoder) error { return c.dc.Restore(d) }

// connectivity additionally supports delta checkpoints (snapshot.DeltaState),
// so harness chains alternate full and delta containers for it.
func (c connectivityInstance) CheckpointDelta(e *snapshot.Encoder)    { c.dc.CheckpointDelta(e) }
func (c connectivityInstance) RestoreDelta(d *snapshot.Decoder) error { return c.dc.RestoreDelta(d) }
func (c connectivityInstance) AckCheckpoint()                         { c.dc.AckCheckpoint() }

// ... and elastic re-sharding (harness.Elastic, Options.FaultEvery).
func (c connectivityInstance) Machines() int { return c.dc.Cluster().Machines() }
func (c connectivityInstance) ReshardRestore(d *snapshot.Decoder) error {
	return c.dc.ReshardRestore(d)
}

type bipartiteInstance struct{ t *bipartite.Tester }

func (b bipartiteInstance) MaxBatch() int                     { return b.t.MaxBatch() }
func (b bipartiteInstance) Apply(bt graph.Batch) error        { return b.t.ApplyBatch(bt) }
func (b bipartiteInstance) Checkpoint(e *snapshot.Encoder)    { b.t.Checkpoint(e) }
func (b bipartiteInstance) Restore(d *snapshot.Decoder) error { return b.t.Restore(d) }
func (b bipartiteInstance) Rounds() int {
	return b.t.Graph().Cluster().Stats().Rounds + b.t.Cover().Cluster().Stats().Rounds
}
func (b bipartiteInstance) Check(g *graph.Graph) error {
	got, want := b.t.IsBipartite(), oracle.IsBipartite(g)
	if got != want {
		return fmt.Errorf("bipartiteness %v, oracle %v", got, want)
	}
	return nil
}

type exactMSFInstance struct{ m *msf.ExactMSF }

func (e exactMSFInstance) MaxBatch() int                     { return e.m.Forest().Config().MaxBatch() }
func (e exactMSFInstance) Rounds() int                       { return e.m.Forest().Cluster().Stats().Rounds }
func (e exactMSFInstance) Checkpoint(enc *snapshot.Encoder)  { e.m.Checkpoint(enc) }
func (e exactMSFInstance) Restore(d *snapshot.Decoder) error { return e.m.Restore(d) }
func (e exactMSFInstance) Machines() int                     { return e.m.Forest().Cluster().Machines() }
func (e exactMSFInstance) ReshardRestore(d *snapshot.Decoder) error {
	return e.m.ReshardRestore(d)
}
func (e exactMSFInstance) Apply(b graph.Batch) error {
	edges := make([]graph.WeightedEdge, 0, len(b))
	for _, u := range b {
		if u.Op != graph.Insert {
			return fmt.Errorf("exact MSF fed a deletion %v", u)
		}
		edges = append(edges, graph.WeightedEdge{Edge: u.Edge, Weight: u.Weight})
	}
	return e.m.InsertBatch(edges)
}
func (e exactMSFInstance) Check(g *graph.Graph) error {
	_, want := oracle.MSF(g)
	if got := e.m.Weight(); got != want {
		return fmt.Errorf("MSF weight %d, Kruskal %d", got, want)
	}
	snapshot := e.m.Snapshot()
	forest := make([]graph.Edge, 0, len(snapshot))
	var total int64
	for _, we := range snapshot {
		forest = append(forest, we.Edge)
		total += we.Weight
	}
	if !oracle.IsSpanningForest(g, forest) {
		return fmt.Errorf("maintained MSF is not a spanning forest of the mirror")
	}
	if total != want {
		return fmt.Errorf("maintained forest weighs %d, Kruskal %d", total, want)
	}
	return nil
}

type approxMSFInstance struct {
	a   *msf.ApproxMSF
	eps float64
}

func (a approxMSFInstance) MaxBatch() int                     { return a.a.MaxBatch() }
func (a approxMSFInstance) Apply(b graph.Batch) error         { return a.a.ApplyBatch(b) }
func (a approxMSFInstance) Rounds() int                       { return -1 }
func (a approxMSFInstance) Checkpoint(e *snapshot.Encoder)    { a.a.Checkpoint(e) }
func (a approxMSFInstance) Restore(d *snapshot.Decoder) error { return a.a.Restore(d) }
func (a approxMSFInstance) Machines() int                     { return a.a.Machines() }
func (a approxMSFInstance) ReshardRestore(d *snapshot.Decoder) error {
	return a.a.ReshardRestore(d)
}
func (a approxMSFInstance) Check(g *graph.Graph) error {
	_, want := oracle.MSF(g)
	if want == 0 {
		// No spanning edges: both estimates must read exactly zero (a stale
		// positive weight after the last deletion is a real divergence).
		if est := a.a.Weight(); est != 0 {
			return fmt.Errorf("weight estimate %d on a forestless mirror", est)
		}
		if fw := a.a.ForestWeight(); fw != 0 {
			return fmt.Errorf("forest weight %d on a forestless mirror", fw)
		}
		return nil
	}
	bound := (1 + a.eps) * float64(want)
	if est := a.a.Weight(); float64(est) < float64(want) || float64(est) > bound {
		return fmt.Errorf("weight estimate %d outside [%d, %.1f]", est, want, bound)
	}
	if fw := a.a.ForestWeight(); float64(fw) < float64(want) || float64(fw) > bound {
		return fmt.Errorf("forest weight %d outside [%d, %.1f]", fw, want, bound)
	}
	return nil
}

type greedyMatchingInstance struct {
	gm *matching.GreedyInsertOnly
}

func (g greedyMatchingInstance) MaxBatch() int                     { return 8 }
func (g greedyMatchingInstance) Rounds() int                       { return g.gm.Cluster().Stats().Rounds }
func (g greedyMatchingInstance) Checkpoint(e *snapshot.Encoder)    { g.gm.Checkpoint(e) }
func (g greedyMatchingInstance) Restore(d *snapshot.Decoder) error { return g.gm.Restore(d) }
func (g greedyMatchingInstance) Machines() int                     { return g.gm.Cluster().Machines() }
func (g greedyMatchingInstance) ReshardRestore(d *snapshot.Decoder) error {
	return g.gm.ReshardRestore(d)
}
func (g greedyMatchingInstance) Apply(b graph.Batch) error {
	edges := make([]graph.Edge, 0, len(b))
	for _, u := range b {
		if u.Op != graph.Insert {
			return fmt.Errorf("greedy matching fed a deletion %v", u)
		}
		edges = append(edges, u.Edge)
	}
	return g.gm.InsertBatch(edges)
}
func (g greedyMatchingInstance) Check(mirror *graph.Graph) error {
	m := g.gm.Matching()
	if g.gm.Size() < g.gm.Cap() {
		// Below the α-cap the greedy matching must be maximal (hence a
		// 2-approximation); at the cap it legitimately stops growing.
		if !oracle.IsMaximalMatching(mirror, m) {
			return fmt.Errorf("matching of size %d not maximal below cap %d", g.gm.Size(), g.gm.Cap())
		}
		return nil
	}
	if !oracle.IsMatching(mirror, m) {
		return fmt.Errorf("output is not a matching of the mirror")
	}
	return nil
}

type aklyInstance struct {
	d     *matching.AKLYDynamic
	alpha float64
}

func (a aklyInstance) MaxBatch() int                     { return 8 }
func (a aklyInstance) Apply(b graph.Batch) error         { return a.d.ApplyBatch(b) }
func (a aklyInstance) Rounds() int                       { return -1 }
func (a aklyInstance) Checkpoint(e *snapshot.Encoder)    { a.d.Checkpoint(e) }
func (a aklyInstance) Restore(d *snapshot.Decoder) error { return a.d.Restore(d) }
func (a aklyInstance) Check(g *graph.Graph) error {
	m := a.d.Matching()
	if !oracle.IsMatching(g, m) {
		return fmt.Errorf("AKLY output is not a matching of the mirror")
	}
	if opt := oracle.MaxMatchingSize(g); a.d.Size() > opt {
		return fmt.Errorf("AKLY size %d exceeds maximum matching %d", a.d.Size(), opt)
	}
	return nil
}

// FinalCheck asserts the O(α) approximation with the implementation
// constant used by the package tests (4α); it is a w.h.p. bound, too noisy
// to demand after every batch but stable at the end of a seeded stream.
func (a aklyInstance) FinalCheck(g *graph.Graph) error {
	opt := oracle.MaxMatchingSize(g)
	if got := a.d.Size(); float64(got)*4*a.alpha < float64(opt) {
		return fmt.Errorf("AKLY size %d not within 4α of OPT %d (α=%.1f)", got, opt, a.alpha)
	}
	return nil
}

type nowickiOnakInstance struct{ m *nowickionak.Matcher }

func (n nowickiOnakInstance) MaxBatch() int                     { return 8 }
func (n nowickiOnakInstance) Apply(b graph.Batch) error         { return n.m.ApplyBatch(b) }
func (n nowickiOnakInstance) Rounds() int                       { return n.m.Cluster().Stats().Rounds }
func (n nowickiOnakInstance) Checkpoint(e *snapshot.Encoder)    { n.m.Checkpoint(e) }
func (n nowickiOnakInstance) Restore(d *snapshot.Decoder) error { return n.m.Restore(d) }
func (n nowickiOnakInstance) Check(g *graph.Graph) error {
	if !oracle.IsMaximalMatching(g, n.m.Matching()) {
		return fmt.Errorf("maintained matching is not maximal on the mirror")
	}
	return nil
}

func init() {
	registerAlgorithm(Algorithm{
		Name: "connectivity",
		New: func(opt Options) (Instance, error) {
			dc, err := core.NewDynamicConnectivity(opt.coreCfg())
			if err != nil {
				return nil, err
			}
			return connectivityInstance{dc}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name: "bipartite",
		New: func(opt Options) (Instance, error) {
			t, err := bipartite.New(opt.coreCfg())
			if err != nil {
				return nil, err
			}
			return bipartiteInstance{t}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name:         "msf",
		InsertOnly:   true,
		NeedsWeights: true,
		New: func(opt Options) (Instance, error) {
			m, err := msf.NewExactMSF(opt.coreCfg())
			if err != nil {
				return nil, err
			}
			return exactMSFInstance{m}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name:         "approxmsf",
		NeedsWeights: true,
		New: func(opt Options) (Instance, error) {
			a, err := msf.NewApproxMSF(opt.coreCfg(), opt.Eps, opt.MaxWeight)
			if err != nil {
				return nil, err
			}
			return approxMSFInstance{a, opt.Eps}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "matching",
		InsertOnly: true,
		New: func(opt Options) (Instance, error) {
			gm, err := matching.NewGreedyInsertOnly(opt.N, opt.Alpha, opt.VerticesPerMachine)
			if err != nil {
				return nil, err
			}
			return greedyMatchingInstance{gm}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name: "dynmatching",
		New: func(opt Options) (Instance, error) {
			d, err := matching.NewAKLYDynamic(opt.N, opt.Alpha, opt.Seed)
			if err != nil {
				return nil, err
			}
			return aklyInstance{d, opt.Alpha}, nil
		},
	})
	registerAlgorithm(Algorithm{
		Name: "nowickionak",
		New: func(opt Options) (Instance, error) {
			m, err := nowickionak.New(nowickionak.Config{N: opt.N})
			if err != nil {
				return nil, err
			}
			return nowickiOnakInstance{m}, nil
		},
	})
}
