// Package harness is the differential-testing engine: it runs any
// registered dynamic algorithm over any registered workload scenario and
// cross-checks every batch against the sequential brute-force oracles.
// Experiments, the CLIs (-scenario), and the test suites all share this
// one checker instead of hand-rolling per-experiment oracle comparisons.
//
// The harness pairs algorithms with scenarios through two compatibility
// axes carried by the registries: insertion-only algorithms (exact MSF,
// greedy matching) accept only insertion-only streams, and the MSF
// algorithms require weighted streams. Everything else runs everywhere.
// Cluster-backed algorithms honour Options.Parallelism, so the same
// differential run exercises both the sequential and the worker-pool
// execution engines.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/snapshot"
	"repro/internal/workload"

	// Register the embedded real-trace scenario (collab32) alongside the
	// synthetic generators, so every harness sweep covers the converter
	// ingestion path too.
	_ "repro/internal/trace"
)

// Options parameterizes one differential run. The zero value is usable:
// every field has a small-instance default.
type Options struct {
	// N is the number of vertices (default 48).
	N int
	// Batches is the number of generator batches to stream (default 10).
	Batches int
	// BatchSize caps the updates requested per batch; 0 uses the
	// algorithm's MaxBatch.
	BatchSize int
	// Seed drives both the algorithm (Seed) and the generator (Seed+1),
	// mirroring the experiments' convention.
	Seed uint64
	// Phi is the local-memory exponent of cluster-backed algorithms
	// (default 0.6).
	Phi float64
	// Parallelism selects the execution engine of cluster-backed
	// algorithms (see mpc.Config.Parallelism).
	Parallelism int
	// Alpha is the matching approximation parameter (default 4).
	Alpha float64
	// Eps is the approximate-MSF parameter (default 0.25).
	Eps float64
	// MaxWeight is the weight cap assumed by the approximate MSF; it must
	// cover the scenario's weight range (default 64, matching the
	// registered weighted scenarios).
	MaxWeight int64
	// CheckEvery runs the differential check after every k-th batch plus
	// once at the end (default 1: every batch). Negative disables all
	// checks — benchmark mode, measuring pure harness overhead.
	CheckEvery int
	// CrashEvery > 0 decorates the run with fault injection: at seeded
	// batch indices (one crash per CrashEvery batches on average, drawn
	// from workload.NewCrashSchedule) the instance is checkpointed, torn
	// down, rebuilt from scratch, and restored — so every scenario doubles
	// as a crash/recovery scenario. Requires the algorithm to implement
	// Checkpointable. Results, oracle checks, and (for deterministic
	// algorithms) Stats are identical to an uninterrupted run.
	//
	// Checkpoints ride an in-memory chain: the first is a full base, later
	// ones are deltas when the algorithm implements snapshot.DeltaState
	// (full otherwise), and the chain compacts back to a full base once it
	// holds MaxDeltaChain deltas. A crash restores from the whole chain.
	CrashEvery int
	// CrashSeed seeds the crash schedule (default Seed+3).
	CrashSeed uint64
	// CheckpointEvery > 0 additionally checkpoints after every k-th batch
	// without restoring — the periodic-durability cadence. It extends the
	// same chain the crash path restores from, so a run with both options
	// exercises multi-delta chain restores.
	CheckpointEvery int
	// MaxDeltaChain bounds the delta chain before compaction (default 8).
	MaxDeltaChain int
	// FaultEvery > 0 decorates the run with machine-loss injection: at
	// seeded batch indices (one fault per FaultEvery batches on average,
	// drawn from workload.NewMachineFaultSchedule) one MPC machine dies
	// while a batch is in flight. The poisoned batch is discarded, the
	// last checkpoint is restored re-sharded onto a fleet one machine
	// smaller (see snapshot.Reshard), and every batch applied since that
	// checkpoint — including the in-flight one — is replayed. Requires the
	// algorithm to implement Elastic. Results and oracle checks are
	// identical to an uninterrupted run at the surviving machine count.
	FaultEvery int
	// FaultSeed seeds the machine-fault schedule (default Seed+5).
	FaultSeed uint64
	// VerticesPerMachine pins the initial cluster shape of cluster-backed
	// algorithms (0 = derived from Phi, or each algorithm's default);
	// machine-fault recovery shrinks it as the fleet loses machines.
	VerticesPerMachine int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 48
	}
	if o.Batches == 0 {
		o.Batches = 10
	}
	if o.Phi == 0 {
		o.Phi = 0.6
	}
	if o.Alpha == 0 {
		o.Alpha = 4
	}
	if o.Eps == 0 {
		o.Eps = 0.25
	}
	if o.MaxWeight == 0 {
		o.MaxWeight = 64
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 1
	}
	if o.CrashSeed == 0 {
		o.CrashSeed = o.Seed + 3
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = o.Seed + 5
	}
	if o.MaxDeltaChain == 0 {
		o.MaxDeltaChain = 8
	}
	return o
}

// Instance is one live algorithm run under the harness.
type Instance interface {
	// MaxBatch returns the largest batch the instance accepts.
	MaxBatch() int
	// Apply feeds one batch.
	Apply(b graph.Batch) error
	// Check cross-checks the maintained solution against the brute-force
	// oracles on the mirror graph.
	Check(mirror *graph.Graph) error
	// Rounds reports the cumulative MPC rounds consumed, or -1 when the
	// algorithm is not cluster-backed.
	Rounds() int
}

// finalChecker is an optional Instance extension for invariants that only
// hold at the end of a stream (e.g. the AKLY approximation ratio, which is
// a with-high-probability bound too noisy to assert after every batch).
type finalChecker interface {
	FinalCheck(mirror *graph.Graph) error
}

// Checkpointable is the optional Instance extension for crash-safe
// checkpoint/restore: Checkpoint serializes the instance's full state into
// a snapshot encoder and Restore loads it into a freshly constructed
// instance of the same options. Every registered algorithm implements it,
// which is what lets Options.CrashEvery turn any scenario into a
// crash/recovery scenario.
type Checkpointable interface {
	snapshot.Checkpointer
	snapshot.Restorer
}

// Elastic is the optional Instance extension for machine-loss recovery
// (Options.FaultEvery): an elastic instance reports its cluster size and
// can load a full checkpoint written at a different machine count,
// redistributing the state onto its own fleet. The cluster-backed
// algorithms with per-vertex sharded state (connectivity, the MSF pair,
// greedy matching) implement it.
type Elastic interface {
	Checkpointable
	snapshot.ReshardRestorer
	// Machines returns the instance's MPC machine count (including the
	// coordinator).
	Machines() int
}

// Algorithm is a registry entry: a named dynamic algorithm plus the
// compatibility metadata pairing it with scenarios.
type Algorithm struct {
	// Name is the registry key (also the -algo CLI value).
	Name string
	// InsertOnly marks algorithms that only consume insertion streams.
	InsertOnly bool
	// NeedsWeights marks algorithms that require weighted streams.
	NeedsWeights bool
	// New builds a fresh instance.
	New func(opt Options) (Instance, error)
}

// algorithms is populated by init in algorithms.go and read-only afterwards.
var algorithms = map[string]Algorithm{}

// registerAlgorithm adds an entry; duplicate names are programming errors.
func registerAlgorithm(a Algorithm) {
	if a.Name == "" || a.New == nil {
		panic("harness: registerAlgorithm with empty name or nil constructor")
	}
	if _, dup := algorithms[a.Name]; dup {
		panic(fmt.Sprintf("harness: duplicate algorithm %q", a.Name))
	}
	algorithms[a.Name] = a
}

// GetAlgorithm returns the named algorithm or an error listing the valid
// names.
func GetAlgorithm(name string) (Algorithm, error) {
	a, ok := algorithms[name]
	if !ok {
		return Algorithm{}, fmt.Errorf("harness: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	return a, nil
}

// AlgorithmNames returns the registered algorithm names, sorted.
func AlgorithmNames() []string {
	out := make([]string, 0, len(algorithms))
	for name := range algorithms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Compatible reports whether the algorithm can consume the scenario's
// stream, with a descriptive error when it cannot.
func Compatible(a Algorithm, s workload.Scenario) error {
	if a.InsertOnly && !s.InsertOnly {
		return fmt.Errorf("harness: %s is insertion-only but scenario %s emits deletions", a.Name, s.Name)
	}
	if a.NeedsWeights && !s.Weighted {
		return fmt.Errorf("harness: %s needs weighted updates but scenario %s is unweighted", a.Name, s.Name)
	}
	return nil
}

// Report summarizes one differential run.
type Report struct {
	Algorithm, Scenario string
	// Batches and Updates count what the generator actually emitted
	// (stalled generators may emit fewer than requested).
	Batches, Updates int
	// Checks is the number of differential checks that passed.
	Checks int
	// FinalEdges is the mirror's edge count after the stream.
	FinalEdges int
	// Rounds is the cumulative MPC round count, or -1 if not cluster-backed.
	Rounds int
	// Crashes counts the injected kill/restore cycles (Options.CrashEvery).
	Crashes int
	// FullCheckpoints and DeltaCheckpoints count the checkpoint containers
	// written by kind (crash-instant and CheckpointEvery combined).
	FullCheckpoints, DeltaCheckpoints int
	// Faults counts the injected machine losses (Options.FaultEvery),
	// Reshards the snapshot-driven state migrations that recovered from
	// them, and ReplayedBatches the batches re-applied during recovery
	// (everything since the last checkpoint plus the in-flight batch).
	Faults, Reshards, ReplayedBatches int
}

// String renders the report in one line.
func (r *Report) String() string {
	rounds := "n/a"
	if r.Rounds >= 0 {
		rounds = fmt.Sprintf("%d", r.Rounds)
	}
	crashes := ""
	if r.Crashes > 0 {
		crashes = fmt.Sprintf(", %d crash/restore cycles", r.Crashes)
	}
	if r.Faults > 0 {
		crashes += fmt.Sprintf(", %d machine faults (%d reshards, %d batches replayed)",
			r.Faults, r.Reshards, r.ReplayedBatches)
	}
	return fmt.Sprintf("%s over %s: %d batches, %d updates, %d edges final, %d checks passed, %s rounds%s",
		r.Algorithm, r.Scenario, r.Batches, r.Updates, r.FinalEdges, r.Checks, rounds, crashes)
}

// Run streams the named scenario through the named algorithm, checking the
// maintained solution against the brute-force oracles after every
// Options.CheckEvery batches and at the end. The first divergence aborts
// the run with an error naming the batch.
func Run(algoName, scenarioName string, opt Options) (*Report, error) {
	algo, err := GetAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	sc, err := workload.Get(scenarioName)
	if err != nil {
		return nil, err
	}
	return RunScenario(algo, sc, opt)
}

// RunScenario is Run for already-resolved registry entries.
func RunScenario(algo Algorithm, sc workload.Scenario, opt Options) (*Report, error) {
	_, _, rep, err := runScenario(algo, sc, opt)
	return rep, err
}

// runScenario is the engine behind RunScenario; it additionally returns
// the final live instance and the final options (whose VerticesPerMachine
// reflects any fault-driven shrinks), which the fault-recovery tests use
// to compare a faulted run against an uninterrupted twin at the surviving
// fleet shape.
func runScenario(algo Algorithm, sc workload.Scenario, opt Options) (Instance, Options, *Report, error) {
	if err := Compatible(algo, sc); err != nil {
		return nil, opt, nil, err
	}
	opt = opt.withDefaults()
	inst, err := algo.New(opt)
	if err != nil {
		return nil, opt, nil, err
	}
	var crash *workload.CrashSchedule
	var fault *workload.MachineFaultSchedule
	var chain *memChain
	if opt.CrashEvery > 0 || opt.CheckpointEvery > 0 || opt.FaultEvery > 0 {
		if _, ok := inst.(Checkpointable); !ok {
			return nil, opt, nil, fmt.Errorf("harness: %s does not support checkpoint/restore (CrashEvery/CheckpointEvery/FaultEvery)", algo.Name)
		}
		chain = &memChain{maxDeltas: opt.MaxDeltaChain}
	}
	if opt.CrashEvery > 0 {
		crash = workload.NewCrashSchedule(opt.CrashSeed, opt.CrashEvery)
	}
	if opt.FaultEvery > 0 {
		if _, ok := inst.(Elastic); !ok {
			return nil, opt, nil, fmt.Errorf("harness: %s does not support elastic re-sharding (FaultEvery)", algo.Name)
		}
		fault = workload.NewMachineFaultSchedule(opt.FaultSeed, opt.FaultEvery)
	}
	gen := sc.New(opt.N, opt.Seed+1)
	size := inst.MaxBatch()
	if opt.BatchSize > 0 && opt.BatchSize < size {
		size = opt.BatchSize
	}
	src := workload.NewGeneratorSource(gen, opt.Batches, size)
	return driveSource(algo, sc.Name, inst, src, opt, size, crash, fault, chain)
}

// RunSource streams an external batch source (a replayed trace, a converted
// edge list, a recorded stream) through the named algorithm under the same
// differential checking as Run: the source's mirror is the oracle substrate,
// checks run every Options.CheckEvery source batches plus at the end, and
// crash/fault injection applies unchanged. Options.N defaults to the
// source's Shape().N and must cover it; Options.Batches is ignored — the
// source runs to io.EOF. Source batches larger than the algorithm's
// MaxBatch (or Options.BatchSize) are applied in chunks.
func RunSource(algoName, streamName string, src workload.MirrorSource, opt Options) (*Report, error) {
	algo, err := GetAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	shape := src.Shape()
	if opt.N == 0 {
		opt.N = shape.N
	}
	if shape.N > opt.N {
		return nil, fmt.Errorf("harness: source %s spans %d vertices but Options.N is %d", streamName, shape.N, opt.N)
	}
	if algo.NeedsWeights && !shape.Weighted {
		return nil, fmt.Errorf("harness: %s needs weighted updates but source %s is unweighted", algoName, streamName)
	}
	opt = opt.withDefaults()
	inst, err := algo.New(opt)
	if err != nil {
		return nil, err
	}
	var crash *workload.CrashSchedule
	var fault *workload.MachineFaultSchedule
	var chain *memChain
	if opt.CrashEvery > 0 || opt.CheckpointEvery > 0 || opt.FaultEvery > 0 {
		if _, ok := inst.(Checkpointable); !ok {
			return nil, fmt.Errorf("harness: %s does not support checkpoint/restore (CrashEvery/CheckpointEvery/FaultEvery)", algo.Name)
		}
		chain = &memChain{maxDeltas: opt.MaxDeltaChain}
	}
	if opt.CrashEvery > 0 {
		crash = workload.NewCrashSchedule(opt.CrashSeed, opt.CrashEvery)
	}
	if opt.FaultEvery > 0 {
		if _, ok := inst.(Elastic); !ok {
			return nil, fmt.Errorf("harness: %s does not support elastic re-sharding (FaultEvery)", algo.Name)
		}
		fault = workload.NewMachineFaultSchedule(opt.FaultSeed, opt.FaultEvery)
	}
	size := inst.MaxBatch()
	if opt.BatchSize > 0 && opt.BatchSize < size {
		size = opt.BatchSize
	}
	_, _, rep, err := driveSource(algo, streamName, inst, src, opt, size, crash, fault, chain)
	return rep, err
}

// driveSource is the shared engine of RunScenario and RunSource: it pulls
// batches from src until io.EOF, applies each (chunked to size), and runs
// the differential checks and fault decorations at source-batch indices.
// Empty batches advance the index without touching the instance, so a
// stalled generator iteration and a skipped batch stay aligned with the
// seeded crash/fault schedules.
func driveSource(algo Algorithm, scName string, inst Instance, src workload.MirrorSource, opt Options, size int, crash *workload.CrashSchedule, fault *workload.MachineFaultSchedule, chain *memChain) (Instance, Options, *Report, error) {
	// cur tracks the live cluster shape: machine-fault recovery shrinks
	// VerticesPerMachine, and every rebuild (crash or fault) must use the
	// current shape, not the original one. pending journals the batches
	// applied since the last checkpoint — the replay set of a fault.
	cur := opt
	var pending []graph.Batch
	var err error
	rep := &Report{Algorithm: algo.Name, Scenario: scName, Rounds: -1}
	for i := 0; ; i++ {
		b, serr := src.Next()
		if serr == io.EOF {
			break
		}
		if serr != nil {
			return nil, cur, nil, fmt.Errorf("harness: %s over %s: batch %d: %w", algo.Name, scName, i, serr)
		}
		if len(b) == 0 {
			continue // stalled (e.g. saturated insert-only stream)
		}
		if fault != nil {
			if _, dead := fault.Fault(inst.(Elastic).Machines()); dead {
				// The machine died while batch i was in flight: the
				// poisoned batch never lands on the old fleet. Recovery
				// re-shards the last checkpoint onto the survivors and
				// replays pending; batch i itself is replayed by the
				// Apply below, on the recovered instance.
				inst, cur, err = faultReshard(algo, cur, chain, pending, size, rep)
				if err != nil {
					return nil, cur, nil, fmt.Errorf("harness: %s over %s: machine fault at batch %d: %w", algo.Name, scName, i, err)
				}
				pending = pending[:0]
				rep.ReplayedBatches++ // the in-flight batch
			}
		}
		if err := applyChunked(inst, b, size); err != nil {
			return nil, cur, nil, fmt.Errorf("harness: %s over %s: batch %d: %w", algo.Name, scName, i, err)
		}
		if fault != nil {
			pending = append(pending, append(graph.Batch(nil), b...))
		}
		rep.Batches++
		rep.Updates += len(b)
		if opt.CheckEvery > 0 && (i+1)%opt.CheckEvery == 0 {
			if err := inst.Check(src.Mirror()); err != nil {
				return nil, cur, nil, fmt.Errorf("harness: %s over %s diverged at batch %d: %w", algo.Name, scName, i, err)
			}
			rep.Checks++
		}
		if opt.CheckpointEvery > 0 && (i+1)%opt.CheckpointEvery == 0 {
			if err := chain.checkpoint(inst, rep); err != nil {
				return nil, cur, nil, fmt.Errorf("harness: %s over %s: checkpoint at batch %d: %w", algo.Name, scName, i, err)
			}
			pending = pending[:0]
		}
		if crash != nil && crash.Crash() {
			inst, err = killRestore(algo, cur, inst, chain, rep)
			if err != nil {
				return nil, cur, nil, fmt.Errorf("harness: %s over %s: crash at batch %d: %w", algo.Name, scName, i, err)
			}
			rep.Crashes++
			pending = pending[:0]
		}
	}
	if opt.CheckEvery >= 0 {
		if err := inst.Check(src.Mirror()); err != nil {
			return nil, cur, nil, fmt.Errorf("harness: %s over %s diverged at end of stream: %w", algo.Name, scName, err)
		}
		rep.Checks++
		if fc, ok := inst.(finalChecker); ok {
			if err := fc.FinalCheck(src.Mirror()); err != nil {
				return nil, cur, nil, fmt.Errorf("harness: %s over %s failed the final check: %w", algo.Name, scName, err)
			}
			rep.Checks++
		}
	}
	rep.FinalEdges = src.Mirror().M()
	rep.Rounds = inst.Rounds()
	return inst, cur, rep, nil
}

// applyChunked feeds one source batch to the instance in pieces of at most
// size updates: external sources (traces) batch by their own cadence, which
// need not fit the algorithm's MaxBatch.
func applyChunked(inst Instance, b graph.Batch, size int) error {
	for len(b) > size {
		if err := inst.Apply(b[:size]); err != nil {
			return err
		}
		b = b[size:]
	}
	return inst.Apply(b)
}

// memChain is the harness's in-memory checkpoint chain: a full base
// container plus delta containers, the exact composition snapshot.Chain
// keeps on disk. Restores replay base + every delta, so crash recovery
// exercises multi-link chain restores, not just the latest snapshot.
type memChain struct {
	maxDeltas int
	base      bytes.Buffer
	baseID    uint64
	tipID     uint64
	deltas    []*bytes.Buffer
}

// checkpoint appends the next link: a delta when the instance supports it,
// a base exists, and the chain is under maxDeltas; a fresh full base
// otherwise (compaction folds the chain). Acknowledges on success so the
// next delta covers only subsequent changes.
func (c *memChain) checkpoint(inst Instance, rep *Report) error {
	ds, deltaCapable := inst.(snapshot.DeltaState)
	if !deltaCapable || c.base.Len() == 0 || len(c.deltas) >= c.maxDeltas {
		c.base.Reset()
		c.deltas = nil
		id, err := snapshot.SaveBase(&c.base, inst.(Checkpointable))
		if err != nil {
			return fmt.Errorf("checkpoint (full): %w", err)
		}
		c.baseID, c.tipID = id, id
		if deltaCapable {
			ds.AckCheckpoint()
		}
		rep.FullCheckpoints++
		return nil
	}
	var buf bytes.Buffer
	link := snapshot.ChainLink{Base: c.baseID, Prev: c.tipID, Seq: uint64(len(c.deltas) + 1)}
	id, err := snapshot.SaveDelta(&buf, link, ds)
	if err != nil {
		return fmt.Errorf("checkpoint (delta): %w", err)
	}
	c.deltas = append(c.deltas, &buf)
	c.tipID = id
	ds.AckCheckpoint()
	rep.DeltaCheckpoints++
	return nil
}

// reset drops the chain; the next checkpoint writes a fresh full base.
// Fault recovery uses it because the old links describe a cluster shape
// that no longer exists.
func (c *memChain) reset() {
	c.base.Reset()
	c.deltas = nil
	c.baseID, c.tipID = 0, 0
}

// restore loads base + chain into inst.
func (c *memChain) restore(inst Instance) error {
	if _, err := snapshot.LoadBase(bytes.NewReader(c.base.Bytes()), inst.(Checkpointable)); err != nil {
		return fmt.Errorf("restore (base): %w", err)
	}
	prev := c.baseID
	for i, d := range c.deltas {
		want := snapshot.ChainLink{Base: c.baseID, Prev: prev, Seq: uint64(i + 1)}
		id, err := snapshot.LoadDelta(bytes.NewReader(d.Bytes()), want, inst.(snapshot.DeltaRestorer))
		if err != nil {
			return fmt.Errorf("restore (delta %d): %w", i+1, err)
		}
		prev = id
	}
	return nil
}

// killRestore simulates a process crash: the live instance is checkpointed
// (extending the chain, so the crash-instant state is the tip), dropped,
// and a fresh instance built from the same options is restored from the
// whole chain. The generator (the outside world) survives; only the
// cluster state dies.
func killRestore(algo Algorithm, opt Options, inst Instance, chain *memChain, rep *Report) (Instance, error) {
	if err := chain.checkpoint(inst, rep); err != nil {
		return nil, err
	}
	fresh, err := algo.New(opt)
	if err != nil {
		return nil, fmt.Errorf("rebuild: %w", err)
	}
	if err := chain.restore(fresh); err != nil {
		return nil, err
	}
	return fresh, nil
}

// faultReshard recovers from the loss of one machine, the supervised path
// described in Options.FaultEvery. Unlike a crash, the dying fleet cannot
// be checkpointed — its last round is poisoned — so recovery starts from
// the last durable checkpoint: restore the whole chain into a staging
// instance at the failed fleet's shape, re-encode it as one full snapshot,
// reshard that onto a fleet one machine smaller, replay the journaled
// batches, and re-base the checkpoint chain at the new shape. Returns the
// recovered instance and the shrunken options.
func faultReshard(algo Algorithm, cur Options, chain *memChain, pending []graph.Batch, size int, rep *Report) (Instance, Options, error) {
	staging, err := algo.New(cur)
	if err != nil {
		return nil, cur, fmt.Errorf("staging rebuild: %w", err)
	}
	if chain.base.Len() > 0 {
		if err := chain.restore(staging); err != nil {
			return nil, cur, err
		}
	}
	var full bytes.Buffer
	if err := snapshot.Save(&full, staging.(Checkpointable)); err != nil {
		return nil, cur, fmt.Errorf("re-encode: %w", err)
	}
	machines := staging.(Elastic).Machines()
	if machines < 3 {
		return nil, cur, fmt.Errorf("fleet of %d machines cannot lose one and keep a coordinator", machines)
	}
	next := cur
	// ceil(N/(M-2)) vertices per machine packs the N vertices onto the
	// surviving M-1 machines (one of which stays a pure coordinator).
	next.VerticesPerMachine = (cur.N + machines - 3) / (machines - 2)
	fresh, err := algo.New(next)
	if err != nil {
		return nil, cur, fmt.Errorf("rebuild on %d machines: %w", machines-1, err)
	}
	if err := snapshot.Reshard(bytes.NewReader(full.Bytes()), fresh.(Elastic)); err != nil {
		return nil, cur, fmt.Errorf("reshard onto %d machines: %w", machines-1, err)
	}
	for j, b := range pending {
		if err := applyChunked(fresh, b, size); err != nil {
			return nil, cur, fmt.Errorf("replay batch %d of %d: %w", j+1, len(pending), err)
		}
	}
	rep.Faults++
	rep.Reshards++
	rep.ReplayedBatches += len(pending)
	chain.reset()
	if err := chain.checkpoint(fresh, rep); err != nil {
		return nil, cur, fmt.Errorf("re-base checkpoint: %w", err)
	}
	return fresh, next, nil
}
