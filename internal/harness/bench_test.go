package harness

import "testing"

// BenchmarkHarnessOverhead measures what the differential checks add on
// top of a plain run: the nochecks mode streams the scenario through the
// algorithm untouched (CheckEvery < 0), everybatch runs the brute-force
// oracles after each batch. The delta is the harness cost that E14 and the
// test suites pay.
func BenchmarkHarnessOverhead(b *testing.B) {
	modes := []struct {
		name       string
		checkEvery int
	}{
		{"nochecks", -1},
		{"everybatch", 1},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run("connectivity", "churn", Options{
					N: 96, Batches: 6, Seed: 1, CheckEvery: m.checkEvery,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
