package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// crashRun streams a scenario through dynamic connectivity, killing and
// restoring the cluster at the seeded crash points (crashEvery = 0 runs
// uninterrupted), and returns the final Stats, component labels, and the
// serialized golden stream it consumed.
func crashRun(t *testing.T, scenario string, n, batches, parallelism, crashEvery int, seed uint64) (mpc.Stats, []int, int) {
	t.Helper()
	sc, err := workload.Get(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{N: n, Phi: 0.6, Seed: seed, Parallelism: parallelism}
	dc, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := sc.New(n, seed+1)
	var sched *workload.CrashSchedule
	if crashEvery > 0 {
		sched = workload.NewCrashSchedule(seed+3, crashEvery)
	}
	crashes := 0
	for i := 0; i < batches; i++ {
		if err := dc.ApplyBatch(gen.Next(dc.MaxBatch())); err != nil {
			t.Fatal(err)
		}
		// Warm the query path so the checkpoint must carry a live cache.
		dc.Connected(0, n-1)
		if sched != nil && sched.Crash() {
			var buf bytes.Buffer
			if err := snapshot.Save(&buf, dc); err != nil {
				t.Fatal(err)
			}
			fresh, err := core.NewDynamicConnectivity(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := snapshot.Load(&buf, fresh); err != nil {
				t.Fatal(err)
			}
			dc = fresh
			crashes++
		}
	}
	if err := VerifyConnectivity(dc, gen.Mirror()); err != nil {
		t.Fatalf("%s (crashEvery %d): diverged from oracle: %v", scenario, crashEvery, err)
	}
	return dc.Cluster().Stats(), dc.SnapshotComponents(), crashes
}

// TestCrashRestoreBitIdentical is the tentpole acceptance criterion: a
// kill+restore-decorated run over the golden scenarios must produce Stats
// and component labels bit-identical to an uninterrupted run, at
// parallelism 1 and 8, with the oracle verifying both runs.
func TestCrashRestoreBitIdentical(t *testing.T) {
	for _, scenario := range []string{"powerlaw", "window"} {
		for _, par := range []int{1, 8} {
			baseStats, baseComp, _ := crashRun(t, scenario, 64, 16, par, 0, 99)
			crashStats, crashComp, crashes := crashRun(t, scenario, 64, 16, par, 4, 99)
			if crashes == 0 {
				t.Fatalf("%s par %d: crash schedule fired 0 times over 16 batches", scenario, par)
			}
			if !reflect.DeepEqual(baseStats, crashStats) {
				t.Errorf("%s par %d: Stats differ after %d crash/restore cycles:\n  base:  %+v\n  crash: %+v",
					scenario, par, crashes, baseStats, crashStats)
			}
			if !reflect.DeepEqual(baseComp, crashComp) {
				t.Errorf("%s par %d: component labels differ after crash/restore", scenario, par)
			}
		}
	}
}

// TestCrashScenarioEveryAlgorithm runs every registered algorithm over a
// compatible scenario with fault injection through the harness itself: the
// per-batch brute-force oracle checks must keep passing across restores,
// for every algorithm including the randomized ones whose outputs are not
// bit-reproducible.
func TestCrashScenarioEveryAlgorithm(t *testing.T) {
	scenarioFor := map[string]string{
		"connectivity": "churn",
		"bipartite":    "churn",
		"msf":          "grow-weighted",
		"approxmsf":    "churn-weighted",
		"matching":     "grow",
		"dynmatching":  "churn",
		"nowickionak":  "bursty",
	}
	for _, name := range AlgorithmNames() {
		scenario, ok := scenarioFor[name]
		if !ok {
			t.Fatalf("no crash scenario mapped for algorithm %q", name)
		}
		t.Run(name, func(t *testing.T) {
			rep, err := Run(name, scenario, Options{
				N: 48, Batches: 12, Seed: 7, CrashEvery: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashes == 0 {
				t.Fatalf("crash schedule fired 0 times: %s", rep)
			}
			if rep.Checks == 0 {
				t.Fatalf("no oracle checks ran: %s", rep)
			}
		})
	}
}

// TestCrashScenarioEveryScenario is the snapshot round-trip property test
// across the whole scenario registry: every stream family runs through a
// deterministic algorithm twice — uninterrupted, and with kill/restore
// cycles at seeded batch indices — and the two runs must produce equal
// reports (batches, updates, oracle checks passed, cumulative MPC rounds)
// with every per-batch brute-force check green. Each existing scenario
// doubles as a crash/recovery scenario.
func TestCrashScenarioEveryScenario(t *testing.T) {
	for _, scenario := range workload.Names() {
		sc, err := workload.Get(scenario)
		if err != nil {
			t.Fatal(err)
		}
		algo := "connectivity"
		if sc.InsertOnly && sc.Weighted {
			algo = "msf"
		} else if sc.InsertOnly {
			algo = "matching"
		}
		t.Run(scenario, func(t *testing.T) {
			opt := Options{N: 48, Batches: 10, Seed: 21}
			base, err := Run(algo, scenario, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.CrashEvery = 3
			crash, err := Run(algo, scenario, opt)
			if err != nil {
				t.Fatal(err)
			}
			if crash.Crashes == 0 {
				t.Fatalf("crash schedule fired 0 times: %s", crash)
			}
			crash.Crashes = 0
			crash.FullCheckpoints, crash.DeltaCheckpoints = 0, 0
			if !reflect.DeepEqual(base, crash) {
				t.Errorf("crash-injected run differs from uninterrupted:\n  base:  %+v\n  crash: %+v", base, crash)
			}
		})
	}
}

// TestCrashReportEqualsUninterrupted checks the harness-level contract for
// the deterministic algorithms: the full Report of a crash-injected run
// (minus the crash counter itself) matches the uninterrupted twin.
func TestCrashReportEqualsUninterrupted(t *testing.T) {
	for _, algo := range []string{"connectivity", "msf", "nowickionak", "bipartite"} {
		scenario := "churn"
		if algo == "msf" {
			scenario = "grow-weighted"
		}
		base, err := Run(algo, scenario, Options{N: 48, Batches: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		crash, err := Run(algo, scenario, Options{N: 48, Batches: 10, Seed: 5, CrashEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		if crash.Crashes == 0 {
			t.Fatalf("%s: crash schedule fired 0 times", algo)
		}
		crash.Crashes = 0
		crash.FullCheckpoints, crash.DeltaCheckpoints = 0, 0
		if !reflect.DeepEqual(base, crash) {
			t.Errorf("%s: crash-injected report differs:\n  base:  %+v\n  crash: %+v", algo, base, crash)
		}
	}
}

// TestCrashDeltaChainEqualsUninterrupted is the delta-mode twin: periodic
// delta checkpoints (CheckpointEvery) between seeded kill/restore cycles
// mean every crash restores from a base plus a multi-delta chain, and the
// run must still be report-identical to the uninterrupted twin. The tight
// MaxDeltaChain forces compaction mid-run, and the checkpoint-kind counters
// confirm both kinds were actually exercised.
func TestCrashDeltaChainEqualsUninterrupted(t *testing.T) {
	for _, scenario := range []string{"powerlaw", "window"} {
		for _, par := range []int{1, 8} {
			opt := Options{N: 64, Batches: 24, Seed: 31, Parallelism: par}
			base, err := Run("connectivity", scenario, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.CrashEvery = 6
			opt.CheckpointEvery = 2
			opt.MaxDeltaChain = 4
			crash, err := Run("connectivity", scenario, opt)
			if err != nil {
				t.Fatal(err)
			}
			if crash.Crashes == 0 {
				t.Fatalf("%s par %d: crash schedule fired 0 times", scenario, par)
			}
			if crash.FullCheckpoints == 0 || crash.DeltaCheckpoints == 0 {
				t.Fatalf("%s par %d: expected both checkpoint kinds, got full=%d delta=%d",
					scenario, par, crash.FullCheckpoints, crash.DeltaCheckpoints)
			}
			crash.Crashes = 0
			crash.FullCheckpoints, crash.DeltaCheckpoints = 0, 0
			if !reflect.DeepEqual(base, crash) {
				t.Errorf("%s par %d: delta-chain run differs from uninterrupted:\n  base:  %+v\n  crash: %+v",
					scenario, par, base, crash)
			}
		}
	}
}
