package harness

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// elasticAlgos are the algorithms whose state can migrate across machine
// counts (harness.Elastic); the fault-recovery guarantee is asserted for
// every one of them over every compatible scenario.
var elasticAlgos = []string{"connectivity", "msf", "approxmsf", "matching"}

// faultOptions is the shared shape for the twin comparison: a pinned
// initial cluster (7 machines) with a pinned batch size, so the faulted
// run and its uninterrupted twin consume bit-identical streams regardless
// of their (different) machine counts.
func faultOptions(par int) Options {
	return Options{
		N: 48, Batches: 12, BatchSize: 4, Seed: 1, Parallelism: par,
		VerticesPerMachine: 8,
		FaultEvery:         3,
	}
}

// fingerprint renders the machine-count-independent solution state of an
// elastic instance: component labels, forest edges and query answers for
// connectivity, the maintained forest and weight for the MSF pair, the
// match set for greedy matching. MPC Stats are deliberately excluded —
// a recovered run spends extra rounds on the replay.
func fingerprint(t *testing.T, inst Instance) string {
	t.Helper()
	switch v := inst.(type) {
	case connectivityInstance:
		n := v.dc.Config().N
		pairs := make([]core.Pair, 0, 2*n)
		for i := 0; i+1 < n; i++ {
			pairs = append(pairs, core.Pair{U: i, V: i + 1}, core.Pair{U: 0, V: i + 1})
		}
		forest := v.dc.SnapshotForest()
		sort.Slice(forest, func(i, j int) bool {
			return forest[i].ID(n) < forest[j].ID(n)
		})
		return fmt.Sprintf("comp=%v forest=%v conn=%v",
			v.dc.SnapshotComponents(), forest, v.dc.ConnectedAll(pairs))
	case exactMSFInstance:
		forest := v.m.Snapshot()
		sort.Slice(forest, func(i, j int) bool {
			return forest[i].ID(v.m.Forest().Config().N) < forest[j].ID(v.m.Forest().Config().N)
		})
		return fmt.Sprintf("weight=%d forest=%v", v.m.Weight(), forest)
	case approxMSFInstance:
		return fmt.Sprintf("weight=%d forestweight=%d", v.a.Weight(), v.a.ForestWeight())
	case greedyMatchingInstance:
		m := v.gm.Matching()
		sort.Slice(m, func(i, j int) bool { return m[i].ID(48) < m[j].ID(48) })
		return fmt.Sprintf("size=%d matching=%v", v.gm.Size(), m)
	}
	t.Fatalf("no fingerprint for instance type %T", inst)
	return ""
}

// TestFaultReshardTwinBitIdentical is the machine-loss acceptance
// criterion: for every elastic algorithm over every compatible scenario,
// a run that loses machines mid-stream (each loss recovered by re-sharding
// the last checkpoint onto the surviving fleet and replaying the journal)
// must end with a solution bit-identical to an uninterrupted twin run at
// the surviving machine count — at parallelism 1 and 8, with the
// brute-force oracle checking both runs batch by batch.
func TestFaultReshardTwinBitIdentical(t *testing.T) {
	for _, name := range elasticAlgos {
		algo, err := GetAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scenario := range workload.Names() {
			sc, err := workload.Get(scenario)
			if err != nil {
				t.Fatal(err)
			}
			if Compatible(algo, sc) != nil {
				continue
			}
			for _, par := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", name, scenario, par), func(t *testing.T) {
					opt := faultOptions(par)
					inst, cur, rep, err := runScenario(algo, sc, opt)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Faults == 0 {
						t.Fatalf("fault schedule fired 0 times over %d batches: %s", rep.Batches, rep)
					}
					if rep.Reshards != rep.Faults {
						t.Fatalf("%d faults but %d reshards: %s", rep.Faults, rep.Reshards, rep)
					}
					if rep.ReplayedBatches < rep.Faults {
						t.Fatalf("%d faults replayed only %d batches: %s", rep.Faults, rep.ReplayedBatches, rep)
					}
					if cur.VerticesPerMachine <= opt.VerticesPerMachine {
						t.Fatalf("fleet never shrank: VerticesPerMachine %d -> %d", opt.VerticesPerMachine, cur.VerticesPerMachine)
					}
					twinOpt := opt
					twinOpt.FaultEvery = 0
					twinOpt.VerticesPerMachine = cur.VerticesPerMachine
					twin, _, twinRep, err := runScenario(algo, sc, twinOpt)
					if err != nil {
						t.Fatal(err)
					}
					if twinRep.Batches != rep.Batches || twinRep.Updates != rep.Updates {
						t.Fatalf("streams diverged: faulted %d batches/%d updates, twin %d/%d",
							rep.Batches, rep.Updates, twinRep.Batches, twinRep.Updates)
					}
					got, want := fingerprint(t, inst), fingerprint(t, twin)
					if got != want {
						t.Errorf("solution differs from uninterrupted twin at %d vertices/machine:\n  faulted: %s\n  twin:    %s",
							cur.VerticesPerMachine, got, want)
					}
				})
			}
		}
	}
}

// TestFaultRequiresElastic pins the configuration error: algorithms
// without re-sharding support must reject FaultEvery up front.
func TestFaultRequiresElastic(t *testing.T) {
	_, err := Run("nowickionak", "bursty", Options{N: 32, Batches: 4, FaultEvery: 2})
	if err == nil {
		t.Fatal("FaultEvery accepted by an algorithm without elastic re-sharding")
	}
}

// TestFaultWithCrashAndCheckpoint runs all three failure decorations at
// once — periodic checkpoints, process crashes, machine faults — and
// demands the oracle checks keep passing while the chain is re-based
// across cluster shapes.
func TestFaultWithCrashAndCheckpoint(t *testing.T) {
	rep, err := Run("connectivity", "churn", Options{
		N: 48, Batches: 16, BatchSize: 4, Seed: 5,
		VerticesPerMachine: 8,
		FaultEvery:         8, CrashEvery: 5, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 || rep.Crashes == 0 {
		t.Fatalf("decorations did not all fire: %s", rep)
	}
	if rep.Checks == 0 {
		t.Fatalf("no oracle checks ran: %s", rep)
	}
}
