package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestDifferentialAllPairs is the heart of the package: every registered
// scenario is streamed through every compatible algorithm with per-batch
// brute-force oracle checks, on the worker-pool execution engine
// (parallelism 4, so the race detector sees the concurrent path). Every
// scenario must have at least one compatible algorithm, so the full
// generator registry is exercised.
func TestDifferentialAllPairs(t *testing.T) {
	for _, scName := range workload.Names() {
		sc, err := workload.Get(scName)
		if err != nil {
			t.Fatal(err)
		}
		compatible := 0
		for _, algoName := range AlgorithmNames() {
			algo, err := GetAlgorithm(algoName)
			if err != nil {
				t.Fatal(err)
			}
			if Compatible(algo, sc) != nil {
				continue
			}
			compatible++
			t.Run(scName+"/"+algoName, func(t *testing.T) {
				t.Parallel()
				rep, err := Run(algoName, scName, Options{N: 48, Batches: 8, Seed: 3, Parallelism: 4})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Updates == 0 {
					t.Error("scenario emitted no updates")
				}
				if rep.Checks == 0 {
					t.Error("no differential checks ran")
				}
			})
		}
		if compatible == 0 {
			t.Errorf("scenario %s has no compatible algorithm", scName)
		}
	}
}

// TestParallelismIdenticalReports replays every registered scenario through
// every compatible algorithm at parallelism 1, 2, and 8: the reports
// (updates, checks, rounds, final edges) must be bit-identical — the
// execution engine's core guarantee (sequential loop, work-stealing pool,
// and sharded parallel merge are interchangeable), made visible through the
// harness on the full generator registry.
func TestParallelismIdenticalReports(t *testing.T) {
	for _, scName := range workload.Names() {
		sc, err := workload.Get(scName)
		if err != nil {
			t.Fatal(err)
		}
		for _, algoName := range AlgorithmNames() {
			algo, err := GetAlgorithm(algoName)
			if err != nil {
				t.Fatal(err)
			}
			if Compatible(algo, sc) != nil {
				continue
			}
			t.Run(scName+"/"+algoName, func(t *testing.T) {
				t.Parallel()
				opt := Options{N: 48, Batches: 6, Seed: 5}
				opt.Parallelism = 1
				seq, err := Run(algoName, scName, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range []int{2, 8} {
					opt.Parallelism = p
					par, err := Run(algoName, scName, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seq, par) {
						t.Errorf("report at parallelism %d differs from sequential:\n  seq: %v\n  par: %v", p, seq, par)
					}
				}
			})
		}
	}
}

// TestCompatibilityGates checks the pairing rules and their error messages.
func TestCompatibilityGates(t *testing.T) {
	cases := []struct {
		algo, scenario, wantErr string
	}{
		{"msf", "churn-weighted", "insertion-only"},
		{"matching", "powerlaw", "insertion-only"},
		{"msf", "grow", "weighted"},
		{"approxmsf", "churn", "weighted"},
	}
	for _, c := range cases {
		if _, err := Run(c.algo, c.scenario, Options{}); err == nil {
			t.Errorf("%s over %s accepted", c.algo, c.scenario)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s over %s: error %q misses %q", c.algo, c.scenario, err, c.wantErr)
		}
	}
}

// TestUnknownNames checks the registry error paths.
func TestUnknownNames(t *testing.T) {
	if _, err := Run("no-such-algo", "churn", Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run("connectivity", "no-such-scenario", Options{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := GetAlgorithm("nope"); err == nil {
		t.Error("GetAlgorithm(nope) succeeded")
	}
}

// TestReportString covers the report rendering, including the n/a rounds
// case of non-cluster-backed algorithms.
func TestReportString(t *testing.T) {
	rep, err := Run("dynmatching", "star", Options{N: 32, Batches: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); !strings.Contains(s, "n/a rounds") {
		t.Errorf("dynmatching report %q should have n/a rounds", s)
	}
	rep, err = Run("connectivity", "churn", Options{N: 32, Batches: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); strings.Contains(s, "n/a") {
		t.Errorf("connectivity report %q should have real rounds", s)
	}
}

// TestCheckEveryNegativeSkipsChecks verifies benchmark mode: no oracle
// work at all.
func TestCheckEveryNegativeSkipsChecks(t *testing.T) {
	rep, err := Run("connectivity", "churn", Options{N: 32, Batches: 4, Seed: 2, CheckEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checks != 0 {
		t.Errorf("CheckEvery -1 still ran %d checks", rep.Checks)
	}
}
