package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/streamio"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files under testdata/")

// goldenScenarios are the scenario traces checked in under testdata/:
// regenerate with `go test ./internal/harness -run Golden -update` after an
// intentional generator change.
var goldenScenarios = []struct {
	scenario, file string
	n, batches, k  int
	seed           uint64
}{
	{"powerlaw", "testdata/powerlaw64.stream", 64, 16, 16, 99},
	{"window", "testdata/window64.stream", 64, 16, 16, 99},
}

// TestGoldenScenarioTraces pins the scenario generators: the recorded
// stream must match the checked-in .stream fixture byte for byte (guarding
// against silent sampling drift), and replaying the fixture through
// dynamic connectivity must agree with the oracle and produce bit-identical
// components and Stats at parallelism 1 and 8.
func TestGoldenScenarioTraces(t *testing.T) {
	for _, gs := range goldenScenarios {
		t.Run(gs.scenario, func(t *testing.T) {
			sc, err := workload.Get(gs.scenario)
			if err != nil {
				t.Fatal(err)
			}
			stream := workload.Record(sc.New(gs.n, gs.seed), gs.batches, gs.k)
			if len(stream) == 0 {
				t.Fatal("empty recording")
			}
			var buf bytes.Buffer
			if err := streamio.Write(&buf, stream); err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(gs.file), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gs.file, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			disk, err := os.ReadFile(gs.file)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(disk, buf.Bytes()) {
				t.Fatalf("%s drifted from the %s generator; regenerate with -update if intentional", gs.file, gs.scenario)
			}
			replay := func(parallelism int) (mpc.Stats, []int) {
				batches, err := streamio.Read(bytes.NewReader(disk))
				if err != nil {
					t.Fatal(err)
				}
				dc, err := core.NewDynamicConnectivity(core.Config{N: gs.n, Phi: 0.6, Seed: 1, Parallelism: parallelism})
				if err != nil {
					t.Fatal(err)
				}
				rp := workload.NewReplay(gs.n, batches)
				for !rp.Done() {
					if err := dc.ApplyBatch(rp.Next(dc.MaxBatch())); err != nil {
						t.Fatal(err)
					}
				}
				if err := VerifyConnectivity(dc, rp.Mirror()); err != nil {
					t.Fatalf("replay diverged from oracle: %v", err)
				}
				return dc.Cluster().Stats(), dc.SnapshotComponents()
			}
			seqStats, seqComp := replay(1)
			parStats, parComp := replay(8)
			if !reflect.DeepEqual(seqStats, parStats) {
				t.Errorf("Stats differ across parallelism:\n  seq: %+v\n  par: %+v", seqStats, parStats)
			}
			if !reflect.DeepEqual(seqComp, parComp) {
				t.Error("component labels differ across parallelism")
			}
		})
	}
}
