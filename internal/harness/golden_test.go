package harness

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/streamio"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files under testdata/")

// goldenScenarios are the scenario traces checked in under testdata/:
// regenerate with `go test ./internal/harness -run Golden -update` after an
// intentional generator change.
var goldenScenarios = []struct {
	scenario, file string
	n, batches, k  int
	seed           uint64
}{
	{"powerlaw", "testdata/powerlaw64.stream", 64, 16, 16, 99},
	{"window", "testdata/window64.stream", 64, 16, 16, 99},
}

// TestGoldenScenarioTraces pins the scenario generators: the recorded
// stream must match the checked-in .stream fixture byte for byte (guarding
// against silent sampling drift), and replaying the fixture through
// dynamic connectivity must agree with the oracle and produce bit-identical
// components and Stats at parallelism 1 and 8.
func TestGoldenScenarioTraces(t *testing.T) {
	for _, gs := range goldenScenarios {
		t.Run(gs.scenario, func(t *testing.T) {
			sc, err := workload.Get(gs.scenario)
			if err != nil {
				t.Fatal(err)
			}
			// Regenerate through the incremental writer: the generator is
			// drained straight into the text encoder, never materialized —
			// and the bytes must still match the goldens recorded by the old
			// materializing Record+Write composition.
			var buf bytes.Buffer
			src := workload.NewGeneratorSource(sc.New(gs.n, gs.seed), gs.batches, gs.k)
			written, err := streamio.WriteFrom(&buf, src)
			if err != nil {
				t.Fatal(err)
			}
			if written == 0 {
				t.Fatal("empty recording")
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(gs.file), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gs.file, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			disk, err := os.ReadFile(gs.file)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(disk, buf.Bytes()) {
				t.Fatalf("%s drifted from the %s generator; regenerate with -update if intentional", gs.file, gs.scenario)
			}
			replay := func(parallelism int) (mpc.Stats, []int) {
				dc, err := core.NewDynamicConnectivity(core.Config{N: gs.n, Phi: 0.6, Seed: 1, Parallelism: parallelism})
				if err != nil {
					t.Fatal(err)
				}
				shape := workload.Shape{N: gs.n, Batches: -1, Updates: -1}
				rp := workload.NewMirrored(workload.NewFuncSource(shape, streamio.NewReader(bytes.NewReader(disk)).Next))
				for {
					b, err := rp.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					for len(b) > 0 {
						k := dc.MaxBatch()
						if k > len(b) {
							k = len(b)
						}
						if err := dc.ApplyBatch(b[:k]); err != nil {
							t.Fatal(err)
						}
						b = b[k:]
					}
				}
				if err := VerifyConnectivity(dc, rp.Mirror()); err != nil {
					t.Fatalf("replay diverged from oracle: %v", err)
				}
				return dc.Cluster().Stats(), dc.SnapshotComponents()
			}
			seqStats, seqComp := replay(1)
			parStats, parComp := replay(8)
			if !reflect.DeepEqual(seqStats, parStats) {
				t.Errorf("Stats differ across parallelism:\n  seq: %+v\n  par: %+v", seqStats, parStats)
			}
			if !reflect.DeepEqual(seqComp, parComp) {
				t.Error("component labels differ across parallelism")
			}
		})
	}
}
