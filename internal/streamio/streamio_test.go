package streamio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/workload"
)

func TestReadBasic(t *testing.T) {
	in := `
# a comment
i 0 1
i 1 2 7
--
d 0 1
`
	batches, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d", len(batches))
	}
	if len(batches[0]) != 2 || batches[0][1].Weight != 7 {
		t.Errorf("batch 0 = %+v", batches[0])
	}
	if batches[1][0].Op != graph.Delete {
		t.Errorf("batch 1 op = %v", batches[1][0].Op)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"x 0 1",       // unknown op
		"i 0",         // too few fields
		"i 0 1 2 3",   // too many fields
		"i a 1",       // bad vertex
		"i 0 b",       // bad vertex
		"i 1 1",       // self loop
		"i 0 1 smoke", // bad weight
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	gen := workload.NewChurn(workload.Config{N: 20, Seed: 1, MaxWeight: 9})
	var batches []graph.Batch
	for i := 0; i < 5; i++ {
		batches = append(batches, gen.Next(4))
	}
	var buf bytes.Buffer
	if err := Write(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("round trip: %d batches, want %d", len(got), len(batches))
	}
	for i := range batches {
		if len(got[i]) != len(batches[i]) {
			t.Fatalf("batch %d: %d updates, want %d", i, len(got[i]), len(batches[i]))
		}
		for j := range batches[i] {
			if got[i][j] != batches[i][j] {
				t.Errorf("batch %d update %d: %+v != %+v", i, j, got[i][j], batches[i][j])
			}
		}
	}
}

func TestRoundTripRandomized(t *testing.T) {
	prg := hash.NewPRG(7)
	for trial := 0; trial < 20; trial++ {
		gen := workload.NewChurn(workload.Config{N: 12, Seed: prg.Next(), MaxWeight: int64(prg.NextN(5))})
		var batches []graph.Batch
		for i := 0; i < int(prg.NextN(4))+1; i++ {
			if b := gen.Next(int(prg.NextN(5)) + 1); len(b) > 0 {
				batches = append(batches, b)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, batches); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(batches) {
			t.Fatalf("trial %d: %d batches, want %d", trial, len(got), len(batches))
		}
	}
}

func TestMaxVertex(t *testing.T) {
	if MaxVertex(nil) != -1 {
		t.Error("empty stream max != -1")
	}
	b := []graph.Batch{{graph.Ins(3, 9)}, {graph.Del(1, 2)}}
	if MaxVertex(b) != 9 {
		t.Errorf("MaxVertex = %d", MaxVertex(b))
	}
}

func TestEmptyStream(t *testing.T) {
	batches, err := Read(strings.NewReader("\n# nothing\n--\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 0 {
		t.Errorf("batches = %v", batches)
	}
}
