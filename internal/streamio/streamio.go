// Package streamio reads and writes update streams in a plain text format,
// one update per line:
//
//	i <u> <v> [w]   insert edge {u,v} with optional weight w
//	d <u> <v> [w]   delete edge {u,v}
//	#               comment/blank lines are skipped
//	--              batch separator
//
// The format lets cmd/mpcstream replay externally produced traces and lets
// tests persist regression streams.
package streamio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Read parses a stream into batches.
func Read(r io.Reader) ([]graph.Batch, error) {
	var out []graph.Batch
	var cur graph.Batch
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "--" {
			if len(cur) > 0 {
				out = append(out, cur)
				cur = nil
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("streamio: line %d: want 'op u v [w]', got %q", lineNo, line)
		}
		var op graph.Op
		switch fields[0] {
		case "i":
			op = graph.Insert
		case "d":
			op = graph.Delete
		default:
			return nil, fmt.Errorf("streamio: line %d: unknown op %q", lineNo, fields[0])
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("streamio: line %d: bad vertex %q", lineNo, fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("streamio: line %d: bad vertex %q", lineNo, fields[2])
		}
		if u == v {
			return nil, fmt.Errorf("streamio: line %d: self loop", lineNo)
		}
		var w int64
		if len(fields) == 4 {
			w, err = strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("streamio: line %d: bad weight %q", lineNo, fields[3])
			}
		}
		cur = append(cur, graph.Update{Op: op, Edge: graph.NewEdge(u, v), Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("streamio: %w", err)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// Write serializes batches in the format Read accepts.
func Write(w io.Writer, batches []graph.Batch) error {
	bw := bufio.NewWriter(w)
	for i, b := range batches {
		if i > 0 {
			if _, err := fmt.Fprintln(bw, "--"); err != nil {
				return err
			}
		}
		for _, u := range b {
			op := "i"
			if u.Op == graph.Delete {
				op = "d"
			}
			var err error
			if u.Weight != 0 {
				_, err = fmt.Fprintf(bw, "%s %d %d %d\n", op, u.Edge.U, u.Edge.V, u.Weight)
			} else {
				_, err = fmt.Fprintf(bw, "%s %d %d\n", op, u.Edge.U, u.Edge.V)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MaxVertex returns the largest vertex id referenced by the batches, or -1
// for an empty stream.
func MaxVertex(batches []graph.Batch) int {
	max := -1
	for _, b := range batches {
		for _, u := range b {
			if u.Edge.V > max {
				max = u.Edge.V
			}
			if u.Edge.U > max {
				max = u.Edge.U
			}
		}
	}
	return max
}
