// Package streamio reads and writes update streams in a plain text format,
// one update per line:
//
//	i <u> <v> [w]   insert edge {u,v} with optional weight w
//	d <u> <v> [w]   delete edge {u,v}
//	#               comment/blank lines are skipped
//	--              batch separator
//
// The text format is the repository's debug/interchange format: it is
// greppable, diffable, and hand-editable, which is what the golden-trace
// fixtures and the CI soak scripts want. It is not the at-scale format —
// multi-gigabyte traces belong in the segmented binary container of
// internal/trace, which adds per-segment checksums and a seekable index.
// Both formats replay through the same workload.BatchSource pull interface.
//
// Reader and Writer are incremental: a Reader yields one batch per Next
// call and a Writer serializes one batch per WriteBatch call, so streaming
// a trace through either end costs O(batch) memory. Read and Write are the
// materializing wrappers kept for small fixtures.
package streamio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// maxLineBytes bounds one input line. The default bufio.Scanner limit is
// 64KB, which a long comment or machine-generated wide line can silently
// exceed mid-file; the Reader raises the ceiling and, when even this is
// exceeded, names the offending line instead of returning a bare
// bufio.ErrTooLong.
const maxLineBytes = 16 << 20

// Reader parses a stream one batch at a time.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &Reader{sc: sc}
}

// Next returns the next non-empty batch, or io.EOF when the stream is
// exhausted. Errors name the offending line.
func (r *Reader) Next() (graph.Batch, error) {
	var cur graph.Batch
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "--" {
			if len(cur) > 0 {
				return cur, nil
			}
			continue
		}
		up, err := parseUpdate(line, r.line)
		if err != nil {
			return nil, err
		}
		cur = append(cur, up)
	}
	if err := r.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("streamio: line %d: longer than %d bytes", r.line+1, maxLineBytes)
		}
		return nil, fmt.Errorf("streamio: line %d: %w", r.line+1, err)
	}
	if len(cur) > 0 {
		return cur, nil
	}
	return nil, io.EOF
}

// parseUpdate parses one "op u v [w]" line.
func parseUpdate(line string, lineNo int) (graph.Update, error) {
	var zero graph.Update
	fields := strings.Fields(line)
	if len(fields) < 3 || len(fields) > 4 {
		return zero, fmt.Errorf("streamio: line %d: want 'op u v [w]', got %q", lineNo, line)
	}
	var op graph.Op
	switch fields[0] {
	case "i":
		op = graph.Insert
	case "d":
		op = graph.Delete
	default:
		return zero, fmt.Errorf("streamio: line %d: unknown op %q", lineNo, fields[0])
	}
	u, err := strconv.Atoi(fields[1])
	if err != nil {
		return zero, fmt.Errorf("streamio: line %d: bad vertex %q", lineNo, fields[1])
	}
	v, err := strconv.Atoi(fields[2])
	if err != nil {
		return zero, fmt.Errorf("streamio: line %d: bad vertex %q", lineNo, fields[2])
	}
	if u == v {
		return zero, fmt.Errorf("streamio: line %d: self loop", lineNo)
	}
	var w int64
	if len(fields) == 4 {
		w, err = strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return zero, fmt.Errorf("streamio: line %d: bad weight %q", lineNo, fields[3])
		}
	}
	return graph.Update{Op: op, Edge: graph.NewEdge(u, v), Weight: w}, nil
}

// Read parses a whole stream into materialized batches. Prefer NewReader
// for anything larger than a test fixture.
func Read(r io.Reader) ([]graph.Batch, error) {
	rd := NewReader(r)
	var out []graph.Batch
	for {
		b, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}

// Writer serializes a stream one batch at a time, in the format Read
// accepts. Empty batches are skipped — the text format cannot represent
// them — so WriteBatch composes byte-identically with the materializing
// Write over the same non-empty batches.
type Writer struct {
	bw      *bufio.Writer
	batches int
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteBatch appends one batch (preceded by a separator when it is not the
// first). The batch is buffered; call Flush when done.
func (w *Writer) WriteBatch(b graph.Batch) error {
	if len(b) == 0 {
		return nil
	}
	if w.batches > 0 {
		if _, err := fmt.Fprintln(w.bw, "--"); err != nil {
			return err
		}
	}
	w.batches++
	for _, u := range b {
		op := "i"
		if u.Op == graph.Delete {
			op = "d"
		}
		var err error
		if u.Weight != 0 {
			_, err = fmt.Fprintf(w.bw, "%s %d %d %d\n", op, u.Edge.U, u.Edge.V, u.Weight)
		} else {
			_, err = fmt.Fprintf(w.bw, "%s %d %d\n", op, u.Edge.U, u.Edge.V)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Batches returns the number of non-empty batches written so far.
func (w *Writer) Batches() int { return w.batches }

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Write serializes materialized batches; the incremental equivalent is a
// WriteBatch loop.
func Write(w io.Writer, batches []graph.Batch) error {
	sw := NewWriter(w)
	for _, b := range batches {
		if err := sw.WriteBatch(b); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// Source is the pull side of a stream, structurally matching
// workload.BatchSource's Next method (streamio stays import-light, so the
// interface is redeclared here rather than imported).
type Source interface {
	Next() (graph.Batch, error)
}

// WriteFrom drains src into w incrementally and reports how many non-empty
// batches were written; the stream is never materialized.
func WriteFrom(w io.Writer, src Source) (int, error) {
	sw := NewWriter(w)
	for {
		b, err := src.Next()
		if err == io.EOF {
			return sw.Batches(), sw.Flush()
		}
		if err != nil {
			return sw.Batches(), err
		}
		if err := sw.WriteBatch(b); err != nil {
			return sw.Batches(), err
		}
	}
}

// MaxVertex returns the largest vertex id referenced by the batches, or -1
// for an empty stream.
func MaxVertex(batches []graph.Batch) int {
	max := -1
	for _, b := range batches {
		if m := b.MaxVertex(); m > max {
			max = m
		}
	}
	return max
}
