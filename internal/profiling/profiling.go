// Package profiling wires the -cpuprofile and -memprofile flags of the
// command binaries to runtime/pprof, so hot paths found by the benchmarks
// can be inspected on real workloads (`go tool pprof <binary> <profile>`).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling as requested: a CPU profile streamed to cpuPath
// and/or a heap profile written to memPath at stop time (either may be
// empty to skip that profile). It returns a stop function that finishes
// both profiles; stop is idempotent, and callers must invoke it on every
// exit path that should produce profiles — os.Exit skips defers.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// One collection first, so the profile shows live steady-state
			// heap rather than collectable garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
