package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop not idempotent: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start accepted an uncreatable CPU profile path")
	}
}
