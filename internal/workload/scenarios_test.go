package workload

import (
	"bytes"
	"io"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/streamio"
)

// drive pulls batches batches of the given size from a fresh instance of
// the scenario, validating every update against an independent reference
// graph, and returns the emitted stream.
func drive(t *testing.T, sc Scenario, n, batches, size int) []graph.Batch {
	t.Helper()
	gen := sc.New(n, 7)
	ref := graph.New(n)
	var out []graph.Batch
	for i := 0; i < batches; i++ {
		b := gen.Next(size)
		if len(b) > size {
			t.Fatalf("batch %d has %d > %d updates", i, len(b), size)
		}
		seen := map[graph.Edge]bool{}
		for _, u := range b {
			if seen[u.Edge] {
				t.Fatalf("batch %d touches %v twice", i, u.Edge)
			}
			seen[u.Edge] = true
			if sc.InsertOnly && u.Op == graph.Delete {
				t.Fatalf("insert-only scenario emitted %v", u)
			}
			if sc.Weighted && u.Op == graph.Insert && u.Weight < 1 {
				t.Fatalf("weighted scenario emitted weight %d", u.Weight)
			}
		}
		if err := ref.Apply(b); err != nil {
			t.Fatalf("batch %d invalid: %v", i, err)
		}
		out = append(out, b)
	}
	if got, want := edgeSet(gen.Mirror()), edgeSet(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("mirror diverged from reference: %v vs %v", got, want)
	}
	return out
}

func edgeSet(g *graph.Graph) []graph.WeightedEdge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

func countOps(batches []graph.Batch) (ins, del int) {
	for _, b := range batches {
		for _, u := range b {
			if u.Op == graph.Insert {
				ins++
			} else {
				del++
			}
		}
	}
	return ins, del
}

// TestScenariosValidAndDeterministic checks, for every registered scenario,
// the mirror-graph invariant (valid batches, each edge touched once per
// batch), the registry metadata (insert-only and weighted claims), seeded
// determinism, and — for dynamic scenarios — that deletions actually occur.
func TestScenariosValidAndDeterministic(t *testing.T) {
	const n, batches, size = 40, 14, 16
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			stream := drive(t, sc, n, batches, size)
			ins, del := countOps(stream)
			if ins == 0 {
				t.Error("scenario emitted no insertions")
			}
			if !sc.InsertOnly && del == 0 {
				t.Error("dynamic scenario emitted no deletions")
			}
			again := drive(t, sc, n, batches, size)
			if !reflect.DeepEqual(stream, again) {
				t.Error("same seed produced a different stream")
			}
		})
	}
}

// TestScenarioTopologyShapes spot-checks the degenerate generators: star
// edges all touch the center, path edges are consecutive, clique edges stay
// inside their block.
func TestScenarioTopologyShapes(t *testing.T) {
	const n = 48
	star := NewStar(n, 3)
	for i := 0; i < 8; i++ {
		for _, u := range star.Next(16) {
			if u.Edge.U != 0 {
				t.Fatalf("star edge %v misses the center", u.Edge)
			}
		}
	}
	path := NewPathChurn(n, 3)
	for i := 0; i < 8; i++ {
		for _, u := range path.Next(16) {
			if u.Edge.V != u.Edge.U+1 {
				t.Fatalf("path edge %v not consecutive", u.Edge)
			}
		}
	}
	cl := NewCliques(n, 8, 3)
	for i := 0; i < 8; i++ {
		for _, u := range cl.Next(16) {
			if u.Edge.U/8 != u.Edge.V/8 {
				t.Fatalf("clique edge %v crosses blocks", u.Edge)
			}
		}
	}
}

// TestPowerLawSkew verifies that preferential attachment actually skews the
// degree distribution: the maximum degree must clearly exceed the mean.
func TestPowerLawSkew(t *testing.T) {
	const n = 128
	gen := NewPowerLaw(n, 11, 0, 0) // insertions only, for a clean read
	for i := 0; i < 40; i++ {
		gen.Next(16)
	}
	g := gen.Mirror()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2 * float64(g.M()) / float64(n)
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

// TestSlidingWindowBound verifies the window cap and that expiry is FIFO.
func TestSlidingWindowBound(t *testing.T) {
	const n, window = 32, 20
	gen := NewSlidingWindow(n, window, 5, 0)
	var firstDeleted *graph.Edge
	var firstInserted *graph.Edge
	for i := 0; i < 30; i++ {
		b := gen.Next(8)
		for _, u := range b {
			if u.Op == graph.Insert && firstInserted == nil {
				e := u.Edge
				firstInserted = &e
			}
			if u.Op == graph.Delete && firstDeleted == nil {
				e := u.Edge
				firstDeleted = &e
			}
		}
		if m := gen.Mirror().M(); m > window {
			t.Fatalf("live edges %d exceed window %d", m, window)
		}
	}
	if firstDeleted == nil {
		t.Fatal("window never expired an edge")
	}
	if *firstDeleted != *firstInserted {
		t.Errorf("first expiry %v is not the oldest edge %v", *firstDeleted, *firstInserted)
	}
}

// TestCommunityMergeSplit verifies the phase machinery: bridges appear
// during merge phases and are torn down again during split phases.
func TestCommunityMergeSplit(t *testing.T) {
	const n = 64
	gen := NewCommunity(n, 4, 1, 9) // 4 communities, 1-batch phases
	crossEdges := func() int {
		cnt := 0
		for _, e := range gen.Mirror().Edges() {
			if gen.community(e.U) != gen.community(e.V) {
				cnt++
			}
		}
		return cnt
	}
	gen.Next(32) // merge phase
	afterMerge := crossEdges()
	if afterMerge == 0 {
		t.Fatal("merge phase inserted no bridges")
	}
	gen.Next(32) // split phase
	if got := crossEdges(); got >= afterMerge {
		t.Errorf("split phase left %d bridges (had %d)", got, afterMerge)
	}
}

// TestRecordReplayRoundTrip records a scenario, serializes it through the
// .stream format, replays it, and checks the replayed mirror matches.
func TestRecordReplayRoundTrip(t *testing.T) {
	const n = 40
	sc, err := Get("powerlaw")
	if err != nil {
		t.Fatal(err)
	}
	gen := sc.New(n, 21)
	stream := Record(gen, 10, 16)
	if len(stream) == 0 {
		t.Fatal("empty recording")
	}
	var buf bytes.Buffer
	if err := streamio.Write(&buf, stream); err != nil {
		t.Fatal(err)
	}
	parsed, err := streamio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewMirrored(NewSliceSource(n, parsed))
	replayed, err := Drain(rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(parsed) {
		t.Fatalf("replayed %d batches, parsed %d", len(replayed), len(parsed))
	}
	if got, want := edgeSet(rp.Mirror()), edgeSet(gen.Mirror()); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed mirror differs: %v vs %v", got, want)
	}
}

// TestMirroredRejectsInvalidStreams checks that Mirrored.Next surfaces
// descriptive errors (not panics) for streams that are inconsistent with
// their own history or reference vertices outside the declared space.
func TestMirroredRejectsInvalidStreams(t *testing.T) {
	cases := []struct {
		name    string
		batches []graph.Batch
	}{
		{"duplicate insert", []graph.Batch{{graph.Ins(0, 1)}, {graph.Ins(0, 1)}}},
		{"delete absent", []graph.Batch{{graph.Del(2, 3)}}},
		{"vertex out of range", []graph.Batch{{graph.Ins(0, 99)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Drain(NewMirrored(NewSliceSource(4, tc.batches))); err == nil {
				t.Fatal("invalid stream replayed without error")
			}
		})
	}
}

// TestGeneratorSourcePreservesIndices checks that the generator shim emits
// exactly the requested number of batches (empties included) before io.EOF,
// so consumers indexing batches (CheckEvery, crash schedules) stay aligned
// with the generator's own iteration count.
func TestGeneratorSourcePreservesIndices(t *testing.T) {
	sc, err := Get("churn")
	if err != nil {
		t.Fatal(err)
	}
	const batches = 7
	src := NewGeneratorSource(sc.New(16, 3), batches, 8)
	got := 0
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 8 {
			t.Fatalf("batch of %d exceeds size cap", len(b))
		}
		got++
	}
	if got != batches {
		t.Fatalf("source emitted %d batches, want %d", got, batches)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

// TestRegistryValidation covers the registry error paths.
func TestRegistryValidation(t *testing.T) {
	if _, err := Get("no-such-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
	for _, bad := range []Scenario{
		{},
		{Name: "x"},
		{Name: "churn", New: func(int, uint64) Generator { return nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", bad)
				}
			}()
			Register(bad)
		}()
	}
}
