package workload

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// Shape is a source's configuration echo: what a consumer can know about a
// stream before pulling it. Counts may be unknown (negative) for unbounded
// or not-yet-indexed sources; N is always known, because no consumer can
// size a cluster, mirror, or oracle without it.
type Shape struct {
	// N is the vertex-space size: every update's endpoints are in [0, N).
	N int
	// Batches is the total number of batches the source will emit, or -1
	// when unknown up front.
	Batches int
	// Updates is the total number of updates across all batches, or -1 when
	// unknown up front.
	Updates int
	// Weighted marks streams whose updates carry weights >= 1.
	Weighted bool
}

// BatchSource is the streaming ingestion interface every consumer pulls
// from: Next returns the next batch of updates and io.EOF when the stream
// is exhausted (a source may also emit empty batches mid-stream, e.g. a
// stalled generator iteration — consumers skip them). Sources are pull-based
// and single-pass, so a multi-gigabyte trace replays in O(batch) memory;
// anything that needs the whole stream at once must materialize it
// explicitly (see Drain).
type BatchSource interface {
	Next() (graph.Batch, error)
	Shape() Shape
}

// MirrorSource is a BatchSource that also maintains a reference graph
// reflecting every batch emitted so far — what the differential harness
// needs to oracle-check a stream. Generators provide it natively; any plain
// BatchSource gains one via NewMirrored.
type MirrorSource interface {
	BatchSource
	Mirror() *graph.Graph
}

// GeneratorSource adapts a Generator to the BatchSource interface: it
// drives gen for a fixed number of batches of at most size updates each,
// then reports io.EOF. Empty batches (a stalled generator) are passed
// through so batch indices stay aligned with the generator's own iteration
// count.
type GeneratorSource struct {
	gen       Generator
	size      int
	remaining int
}

// NewGeneratorSource returns the shim. Batches must be non-negative and
// size positive.
func NewGeneratorSource(gen Generator, batches, size int) *GeneratorSource {
	if batches < 0 || size <= 0 {
		panic(fmt.Sprintf("workload: NewGeneratorSource(batches=%d, size=%d)", batches, size))
	}
	return &GeneratorSource{gen: gen, size: size, remaining: batches}
}

// Next implements BatchSource.
func (s *GeneratorSource) Next() (graph.Batch, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	s.remaining--
	return s.gen.Next(s.size), nil
}

// Shape implements BatchSource. Updates is unknown until the generator has
// run.
func (s *GeneratorSource) Shape() Shape {
	return Shape{N: s.gen.Mirror().N(), Batches: s.remaining, Updates: -1}
}

// Mirror implements MirrorSource.
func (s *GeneratorSource) Mirror() *graph.Graph { return s.gen.Mirror() }

// SliceSource replays an already-materialized stream (e.g. one a test built
// in memory) as a BatchSource.
type SliceSource struct {
	n       int
	batches []graph.Batch
	next    int
}

// NewSliceSource returns a source over n vertices emitting the given
// batches in order.
func NewSliceSource(n int, batches []graph.Batch) *SliceSource {
	return &SliceSource{n: n, batches: batches}
}

// Next implements BatchSource.
func (s *SliceSource) Next() (graph.Batch, error) {
	if s.next >= len(s.batches) {
		return nil, io.EOF
	}
	b := s.batches[s.next]
	s.next++
	return b, nil
}

// Shape implements BatchSource.
func (s *SliceSource) Shape() Shape {
	updates := 0
	weighted := false
	for _, b := range s.batches {
		updates += len(b)
		for _, u := range b {
			if u.Weight != 0 {
				weighted = true
			}
		}
	}
	return Shape{N: s.n, Batches: len(s.batches), Updates: updates, Weighted: weighted}
}

// FuncSource adapts a pull function plus a fixed shape into a BatchSource
// (e.g. a streamio.Reader, which does not know its own vertex count).
type FuncSource struct {
	shape Shape
	next  func() (graph.Batch, error)
}

// NewFuncSource returns the adapter.
func NewFuncSource(shape Shape, next func() (graph.Batch, error)) *FuncSource {
	return &FuncSource{shape: shape, next: next}
}

// Next implements BatchSource.
func (s *FuncSource) Next() (graph.Batch, error) { return s.next() }

// Shape implements BatchSource.
func (s *FuncSource) Shape() Shape { return s.shape }

// Mirrored upgrades any BatchSource to a MirrorSource by re-validating
// every batch against its own reference graph: a corrupted or mismatched
// stream surfaces as a descriptive error from Next instead of feeding an
// algorithm an invalid update. It replaces the old materialized Replay
// type; the same recording can back several Mirrored replays.
type Mirrored struct {
	src BatchSource
	g   *graph.Graph
	// batch counts the batches already emitted, for error messages.
	batch int
}

// NewMirrored returns a validating replay of src over a fresh mirror sized
// by the source's shape.
func NewMirrored(src BatchSource) *Mirrored {
	return &Mirrored{src: src, g: graph.New(src.Shape().N)}
}

// NewMirroredFrom returns a validating replay whose mirror starts from g
// instead of an empty graph: the checkpoint-resume path of the CLIs, where
// a recorded stream continues a restored graph. The replay owns g
// afterwards.
func NewMirroredFrom(g *graph.Graph, src BatchSource) *Mirrored {
	return &Mirrored{src: src, g: g}
}

// Next implements BatchSource, validating the batch against the mirror.
func (m *Mirrored) Next() (graph.Batch, error) {
	b, err := m.src.Next()
	if err != nil {
		return nil, err
	}
	// Bounds-check before Apply: an out-of-range endpoint must be a
	// diagnostic, not an index panic inside the mirror.
	for _, u := range b {
		if u.Edge.U < 0 || u.Edge.V >= m.g.N() {
			return nil, fmt.Errorf("workload: replayed batch %d: edge %v outside the vertex space [0,%d)", m.batch, u.Edge, m.g.N())
		}
	}
	if err := m.g.Apply(b); err != nil {
		return nil, fmt.Errorf("workload: replayed batch %d invalid against the stream so far: %w", m.batch, err)
	}
	m.batch++
	return b, nil
}

// Shape implements BatchSource.
func (m *Mirrored) Shape() Shape { return m.src.Shape() }

// Mirror implements MirrorSource.
func (m *Mirrored) Mirror() *graph.Graph { return m.g }

// Drain materializes a source, dropping empty batches. It is the explicit
// opt-out of streaming for consumers that genuinely need the whole stream
// at once (tests, golden-trace comparisons); everything else should pull.
func Drain(src BatchSource) ([]graph.Batch, error) {
	var out []graph.Batch
	for {
		b, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(b) > 0 {
			out = append(out, b)
		}
	}
}
