package workload

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/hash"
)

// This file holds the scenario registry: the named stream families beyond
// uniform churn. Every generator maintains the mirror-graph invariant (a
// batch touches each edge at most once, inserts only absent edges, deletes
// only present ones), so any emitted stream is valid for any algorithm and
// serializes losslessly into the .stream golden format.

// batchState accumulates one batch while keeping the mirror invariant.
type batchState struct {
	g    *graph.Graph
	used map[graph.Edge]bool
	b    graph.Batch
}

func newBatchState(g *graph.Graph) *batchState {
	return &batchState{g: g, used: map[graph.Edge]bool{}}
}

// insert emits an insertion of e with weight w if e is absent and untouched
// this batch.
func (s *batchState) insert(e graph.Edge, w int64) bool {
	if s.used[e] || s.g.Has(e.U, e.V) {
		return false
	}
	s.used[e] = true
	_ = s.g.Insert(e.U, e.V, w)
	s.b = append(s.b, graph.InsW(e.U, e.V, w))
	return true
}

// delete emits a deletion of e (carrying its mirror weight) if e is present
// and untouched this batch.
func (s *batchState) delete(e graph.Edge) bool {
	if s.used[e] || !s.g.Has(e.U, e.V) {
		return false
	}
	s.used[e] = true
	w, _ := s.g.Weight(e.U, e.V)
	_ = s.g.Delete(e.U, e.V)
	s.b = append(s.b, graph.DelW(e.U, e.V, w))
	return true
}

// attempts returns the standard attempt budget for a batch of the given
// size, matching the Churn convention: enough to make stalls (saturated or
// empty graphs) graceful rather than livelocks.
func attempts(size int) int { return 50*size + 200 }

// drawWeight returns a uniform weight in [1, maxWeight], or 1 when the
// stream is unweighted (maxWeight <= 1).
func drawWeight(prg *hash.PRG, maxWeight int64) int64 {
	if maxWeight <= 1 {
		return 1
	}
	return int64(prg.NextN(uint64(maxWeight))) + 1
}

// coin returns true with probability p.
func coin(prg *hash.PRG, p float64) bool {
	return float64(prg.NextN(1000))/1000 < p
}

// sortedEdges returns the live edges in canonical order. Graph.Edges
// iterates map storage, so its order changes between runs; generators that
// sample from an edge pool must sort it to stay deterministic.
func sortedEdges(g *graph.Graph) []graph.WeightedEdge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// insertOnly adapts Churn's insertion-only mode to the Generator interface,
// for the insertion-only algorithms (exact MSF, greedy matching).
type insertOnly struct{ *Churn }

func (i insertOnly) Next(size int) graph.Batch { return i.NextInsertOnly(size) }

// PowerLaw is preferential-attachment churn: insertion endpoints are drawn
// from the degree distribution (each live edge contributes its endpoints to
// the sampling pool), producing the heavy-tailed degree sequences of social
// graphs — a few hub vertices carry most of the stream, the clustered
// regime of Lingas (arXiv:2405.16103). Deletions strike uniformly random
// live edges, so hubs also lose edges fastest in absolute terms.
type PowerLaw struct {
	n          int
	g          *graph.Graph
	prg        *hash.PRG
	deleteFrac float64
	maxWeight  int64
	// ends is the endpoint multiset of live edges, with stale entries left
	// behind by deletions and compacted lazily.
	ends  []int
	stale int
}

// NewPowerLaw returns a preferential-attachment churn generator.
// deleteFrac in [0,1) is the per-update probability of attempting a
// deletion; maxWeight > 1 makes the stream weighted.
func NewPowerLaw(n int, seed uint64, deleteFrac float64, maxWeight int64) *PowerLaw {
	validateN(n)
	return &PowerLaw{
		n:          n,
		g:          graph.New(n),
		prg:        hash.NewPRG(seed),
		deleteFrac: deleteFrac,
		maxWeight:  maxWeight,
	}
}

// Mirror returns the reference graph.
func (p *PowerLaw) Mirror() *graph.Graph { return p.g }

// attach draws one endpoint: preferentially an endpoint of a live edge
// (probability 3/4 once edges exist), else uniform. Stale pool entries are
// re-drawn uniformly, which only softens the preference slightly between
// compactions.
func (p *PowerLaw) attach() int {
	if len(p.ends) > 0 && !coin(p.prg, 0.25) {
		v := p.ends[p.prg.NextN(uint64(len(p.ends)))]
		if p.g.Degree(v) > 0 {
			return v
		}
	}
	return int(p.prg.NextN(uint64(p.n)))
}

// Next emits one batch.
func (p *PowerLaw) Next(size int) graph.Batch {
	st := newBatchState(p.g)
	live := sortedEdges(p.g) // deletion pool, snapshotted per batch
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		if p.deleteFrac > 0 && len(live) > 0 && coin(p.prg, p.deleteFrac) {
			e := live[p.prg.NextN(uint64(len(live)))].Edge
			if st.delete(e) {
				p.stale += 2
			}
			continue
		}
		u := int(p.prg.NextN(uint64(p.n)))
		v := p.attach()
		if u == v {
			continue
		}
		if st.insert(graph.NewEdge(u, v), drawWeight(p.prg, p.maxWeight)) {
			p.ends = append(p.ends, u, v)
		}
	}
	if p.stale > len(p.ends)/2 {
		p.compact()
	}
	return st.b
}

// compact rebuilds the endpoint pool from the live edges.
func (p *PowerLaw) compact() {
	p.ends = p.ends[:0]
	for _, e := range sortedEdges(p.g) {
		p.ends = append(p.ends, e.U, e.V)
	}
	p.stale = 0
}

// SlidingWindow models a timeline stream: fresh random edges arrive and
// every edge expires after the window fills — insert-then-expire in strict
// FIFO order. Deletions therefore always strike the *oldest* edges, which
// are disproportionately tree edges of the maintained forest, stressing
// replacement-edge search far harder than uniform churn.
type SlidingWindow struct {
	n, window int
	g         *graph.Graph
	prg       *hash.PRG
	maxWeight int64
	fifo      []graph.Edge // live edges in arrival order; fifo[0] is oldest
}

// NewSlidingWindow returns a sliding-window generator holding at most
// window live edges (window <= 0 defaults to 3n).
func NewSlidingWindow(n, window int, seed uint64, maxWeight int64) *SlidingWindow {
	validateN(n)
	if window <= 0 {
		window = 3 * n
	}
	return &SlidingWindow{
		n:         n,
		window:    window,
		g:         graph.New(n),
		prg:       hash.NewPRG(seed),
		maxWeight: maxWeight,
	}
}

// Mirror returns the reference graph.
func (w *SlidingWindow) Mirror() *graph.Graph { return w.g }

// Next emits one batch: expirations first whenever the window is full, then
// fresh insertions.
func (w *SlidingWindow) Next(size int) graph.Batch {
	st := newBatchState(w.g)
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		if len(w.fifo) >= w.window {
			e := w.fifo[0]
			if st.used[e] {
				// The window head was inserted this very batch (window
				// smaller than the batch); stop expiring until next batch.
				break
			}
			w.fifo = w.fifo[1:]
			st.delete(e)
			continue
		}
		u := int(w.prg.NextN(uint64(w.n)))
		v := int(w.prg.NextN(uint64(w.n)))
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if st.insert(e, drawWeight(w.prg, w.maxWeight)) {
			w.fifo = append(w.fifo, e)
		}
	}
	return st.b
}

// Community is a merge/split stream over k vertex blocks: intra-community
// edges churn continuously (dense, well-connected blocks), while
// inter-community bridges are inserted during merge phases and torn down
// again during split phases. Component counts swing between k and 1,
// exercising both directions of the component-structure regimes that drive
// deterministic MST round counts (Nowicki, arXiv:1912.04239).
type Community struct {
	n, k, csize int
	period      int // batches per phase
	step        int
	g           *graph.Graph
	prg         *hash.PRG
	bridges     []graph.Edge // inter-community edges currently present
}

// NewCommunity returns a merge/split generator with k communities (k <= 0
// defaults to 8, clamped so each community has at least 4 vertices) and the
// given phase period in batches (<= 0 defaults to 2).
func NewCommunity(n, k, period int, seed uint64) *Community {
	validateN(n)
	if k <= 0 {
		k = 8
	}
	for k > 1 && n/k < 4 {
		k--
	}
	if period <= 0 {
		period = 2
	}
	csize := (n + k - 1) / k
	return &Community{
		n: n, k: k, csize: csize, period: period,
		g:   graph.New(n),
		prg: hash.NewPRG(seed),
	}
}

// Mirror returns the reference graph.
func (c *Community) Mirror() *graph.Graph { return c.g }

// community returns the block index of v.
func (c *Community) community(v int) int { return v / c.csize }

// randIn draws a uniform vertex of block i.
func (c *Community) randIn(i int) int {
	lo := i * c.csize
	hi := lo + c.csize
	if hi > c.n {
		hi = c.n
	}
	return lo + int(c.prg.NextN(uint64(hi-lo)))
}

// Next emits one batch: half the budget churns intra-community edges, the
// other half merges (inserts bridges) or splits (deletes all bridges)
// depending on the phase.
func (c *Community) Next(size int) graph.Batch {
	st := newBatchState(c.g)
	merging := (c.step/c.period)%2 == 0
	c.step++
	phaseBudget := size / 2
	if merging {
		for a := 0; len(st.b) < phaseBudget && a < attempts(phaseBudget); a++ {
			i := int(c.prg.NextN(uint64(c.k)))
			j := int(c.prg.NextN(uint64(c.k)))
			if i == j {
				continue
			}
			u, v := c.randIn(i), c.randIn(j)
			if u == v {
				continue
			}
			e := graph.NewEdge(u, v)
			if st.insert(e, 1) {
				c.bridges = append(c.bridges, e)
			}
		}
	} else {
		// Tear down bridges oldest-first until the phase budget is spent.
		kept := c.bridges[:0]
		for i, e := range c.bridges {
			if len(st.b) >= phaseBudget {
				kept = append(kept, c.bridges[i:]...)
				break
			}
			st.delete(e) // false only if already gone (churned away)
		}
		c.bridges = append([]graph.Edge(nil), kept...)
	}
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		u := c.randIn(int(c.prg.NextN(uint64(c.k))))
		v := u/c.csize*c.csize + int(c.prg.NextN(uint64(c.csize)))
		if u == v || v >= c.n {
			continue
		}
		e := graph.NewEdge(u, v)
		if c.g.Has(e.U, e.V) {
			if coin(c.prg, 0.3) {
				st.delete(e)
			}
		} else {
			st.insert(e, 1)
		}
	}
	return st.b
}

// Bursty is the adversarial rematch stream: each odd batch picks a set of
// hub vertices and buries them in spoke insertions (the hubs get matched,
// the spokes crowd the matching); the following even batch deletes *every*
// edge incident to those hubs at once, freeing the hubs and their partners
// simultaneously and forcing the maximal-matching rematch loop (and the
// connectivity replacement search) to resolve a correlated burst rather
// than scattered single deletions.
type Bursty struct {
	n   int
	g   *graph.Graph
	prg *hash.PRG
	// pending holds hubs awaiting teardown, oldest burst first; a hub whose
	// edges do not fit one teardown batch stays pending, so no burst edge is
	// ever abandoned.
	pending []int
	phase   int
}

// NewBursty returns a burst generator.
func NewBursty(n int, seed uint64) *Bursty {
	validateN(n)
	return &Bursty{n: n, g: graph.New(n), prg: hash.NewPRG(seed)}
}

// Mirror returns the reference graph.
func (b *Bursty) Mirror() *graph.Graph { return b.g }

// Next emits one batch, alternating burst insertions and hub teardowns.
func (b *Bursty) Next(size int) graph.Batch {
	st := newBatchState(b.g)
	defer func() { b.phase++ }()
	if b.phase%2 == 0 {
		// Burst: choose fresh hubs and shower them with spokes.
		nhubs := size/8 + 1
		fresh := make([]int, 0, nhubs)
		for i := 0; i < nhubs; i++ {
			fresh = append(fresh, int(b.prg.NextN(uint64(b.n))))
		}
		b.pending = append(b.pending, fresh...)
		for a := 0; len(st.b) < size && a < attempts(size); a++ {
			hub := fresh[int(b.prg.NextN(uint64(len(fresh))))]
			v := int(b.prg.NextN(uint64(b.n)))
			if v == hub {
				continue
			}
			st.insert(graph.NewEdge(hub, v), 1)
		}
		return st.b
	}
	// Teardown: delete everything incident to the pending hubs, carrying
	// over whatever does not fit this batch.
	for len(b.pending) > 0 {
		hub := b.pending[0]
		var neighbors []int
		b.g.Neighbors(hub, func(v int, _ int64) bool {
			neighbors = append(neighbors, v)
			return true
		})
		sort.Ints(neighbors) // map order is not deterministic
		cleared := true
		for _, v := range neighbors {
			if len(st.b) >= size {
				cleared = false
				break
			}
			st.delete(graph.NewEdge(hub, v))
		}
		if !cleared {
			break
		}
		b.pending = b.pending[1:]
	}
	return st.b
}

// Star churns a degenerate star topology: every edge is a spoke of one
// center vertex. The center's sketch stack carries the whole graph and
// every matching decision funnels through one vertex — the maximally
// skewed degree distribution.
type Star struct {
	n      int
	center int
	g      *graph.Graph
	prg    *hash.PRG
}

// NewStar returns a star-churn generator centered on vertex 0.
func NewStar(n int, seed uint64) *Star {
	validateN(n)
	return &Star{n: n, g: graph.New(n), prg: hash.NewPRG(seed)}
}

// Mirror returns the reference graph.
func (s *Star) Mirror() *graph.Graph { return s.g }

// Next emits one batch: absent spokes are inserted, present spokes deleted
// with small probability, so the star fills quickly and then churns.
func (s *Star) Next(size int) graph.Batch {
	st := newBatchState(s.g)
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		v := int(s.prg.NextN(uint64(s.n)))
		if v == s.center {
			continue
		}
		e := graph.NewEdge(s.center, v)
		if s.g.Has(e.U, e.V) {
			if coin(s.prg, 0.4) {
				st.delete(e)
			}
		} else {
			st.insert(e, 1)
		}
	}
	return st.b
}

// PathChurn churns the edges of the fixed Hamiltonian path 0-1-…-(n-1):
// the diameter-n worst case for component merging, where every deletion
// genuinely splits a component (a path edge never has a replacement) and
// every insertion joins two long chains.
type PathChurn struct {
	n   int
	g   *graph.Graph
	prg *hash.PRG
}

// NewPathChurn returns a path-churn generator.
func NewPathChurn(n int, seed uint64) *PathChurn {
	validateN(n)
	return &PathChurn{n: n, g: graph.New(n), prg: hash.NewPRG(seed)}
}

// Mirror returns the reference graph.
func (p *PathChurn) Mirror() *graph.Graph { return p.g }

// Next emits one batch over the path edges only.
func (p *PathChurn) Next(size int) graph.Batch {
	if p.n < 2 {
		return nil // a single vertex has no path edges
	}
	st := newBatchState(p.g)
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		i := int(p.prg.NextN(uint64(p.n - 1)))
		e := graph.NewEdge(i, i+1)
		if p.g.Has(e.U, e.V) {
			if coin(p.prg, 0.35) {
				st.delete(e)
			}
		} else {
			st.insert(e, 1)
		}
	}
	return st.b
}

// Cliques churns edges strictly inside disjoint vertex blocks, producing a
// forest of dense cliques that never touch: many small components packed
// with non-tree edges, where sketch cancellation (internal edges must
// vanish from summed cut sketches) does maximal work and replacement edges
// always exist.
type Cliques struct {
	n, csize int
	g        *graph.Graph
	prg      *hash.PRG
}

// NewCliques returns a disjoint-cliques generator with blocks of csize
// vertices (csize <= 0 defaults to 8, clamped to n/2 for tiny n).
func NewCliques(n, csize int, seed uint64) *Cliques {
	validateN(n)
	if csize <= 0 {
		csize = 8
	}
	if csize > n/2 {
		csize = n / 2
	}
	if csize < 2 {
		csize = 2
	}
	return &Cliques{n: n, csize: csize, g: graph.New(n), prg: hash.NewPRG(seed)}
}

// Mirror returns the reference graph.
func (c *Cliques) Mirror() *graph.Graph { return c.g }

// Next emits one batch of intra-block churn.
func (c *Cliques) Next(size int) graph.Batch {
	blocks := c.n / c.csize
	if blocks == 0 {
		return nil // fewer vertices than one block; no edges possible
	}
	st := newBatchState(c.g)
	for a := 0; len(st.b) < size && a < attempts(size); a++ {
		blk := int(c.prg.NextN(uint64(blocks)))
		lo := blk * c.csize
		u := lo + int(c.prg.NextN(uint64(c.csize)))
		v := lo + int(c.prg.NextN(uint64(c.csize)))
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if c.g.Has(e.U, e.V) {
			if coin(c.prg, 0.3) {
				st.delete(e)
			}
		} else {
			st.insert(e, 1)
		}
	}
	return st.b
}

// init registers the built-in scenario catalogue (see the README table).
func init() {
	Register(Scenario{
		Name:     "churn",
		Stresses: "uniform mixed insert/delete baseline",
		New: func(n int, seed uint64) Generator {
			return NewChurn(Config{N: n, Seed: seed, InsertBias: 0.6})
		},
	})
	Register(Scenario{
		Name:     "churn-weighted",
		Stresses: "uniform churn with weights in [1,64] (MSF weight regimes)",
		Weighted: true,
		New: func(n int, seed uint64) Generator {
			return NewChurn(Config{N: n, Seed: seed, InsertBias: 0.6, MaxWeight: 64})
		},
	})
	Register(Scenario{
		Name:       "grow",
		Stresses:   "insertion-only growth (insert-only algorithms)",
		InsertOnly: true,
		New: func(n int, seed uint64) Generator {
			return insertOnly{NewChurn(Config{N: n, Seed: seed})}
		},
	})
	Register(Scenario{
		Name:       "grow-weighted",
		Stresses:   "insertion-only weighted growth (exact MSF)",
		InsertOnly: true,
		Weighted:   true,
		New: func(n int, seed uint64) Generator {
			return insertOnly{NewChurn(Config{N: n, Seed: seed, MaxWeight: 64})}
		},
	})
	Register(Scenario{
		Name:     "powerlaw",
		Stresses: "preferential attachment: heavy-tailed degrees, hub-centric updates",
		New: func(n int, seed uint64) Generator {
			return NewPowerLaw(n, seed, 0.25, 0)
		},
	})
	Register(Scenario{
		Name:     "powerlaw-weighted",
		Stresses: "preferential attachment with weights in [1,64]",
		Weighted: true,
		New: func(n int, seed uint64) Generator {
			return NewPowerLaw(n, seed, 0.25, 64)
		},
	})
	Register(Scenario{
		Name:     "window",
		Stresses: "sliding window: FIFO expiry always deletes the oldest (tree) edges",
		New: func(n int, seed uint64) Generator {
			return NewSlidingWindow(n, 0, seed, 0)
		},
	})
	Register(Scenario{
		Name:     "community",
		Stresses: "community merge/split: component count swings between k and 1",
		New: func(n int, seed uint64) Generator {
			return NewCommunity(n, 0, 0, seed)
		},
	})
	Register(Scenario{
		Name:     "bursty",
		Stresses: "adversarial rematch bursts: correlated hub teardowns",
		New: func(n int, seed uint64) Generator {
			return NewBursty(n, seed)
		},
	})
	Register(Scenario{
		Name:     "star",
		Stresses: "degenerate star: one vertex carries every edge",
		New: func(n int, seed uint64) Generator {
			return NewStar(n, seed)
		},
	})
	Register(Scenario{
		Name:     "path",
		Stresses: "degenerate path: diameter-n chains, no replacement edges",
		New: func(n int, seed uint64) Generator {
			return NewPathChurn(n, seed)
		},
	})
	Register(Scenario{
		Name:     "cliques",
		Stresses: "disjoint cliques: dense non-tree edges, maximal sketch cancellation",
		New: func(n int, seed uint64) Generator {
			return NewCliques(n, 0, seed)
		},
	})
}
