package workload_test

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestQueryMixDeterministic pins the query stream: same seed, same queries;
// and the update stream must be byte-identical to the unwrapped generator
// (reads never perturb writes).
func TestQueryMixDeterministic(t *testing.T) {
	const n, seed = 48, 7
	sc, err := workload.Get("churn")
	if err != nil {
		t.Fatal(err)
	}
	plain := sc.New(n, seed)
	mixA := workload.NewQueryMix(sc.New(n, seed), n, 99)
	mixB := workload.NewQueryMix(sc.New(n, seed), n, 99)
	for i := 0; i < 6; i++ {
		want := plain.Next(8)
		gotA, gotB := mixA.Next(8), mixB.Next(8)
		if !reflect.DeepEqual(want, gotA) {
			t.Fatalf("batch %d: wrapped update stream diverged from the plain generator", i)
		}
		if !reflect.DeepEqual(gotA, gotB) {
			t.Fatalf("batch %d: update streams diverged across same-seed mixes", i)
		}
		qA, qB := mixA.NextQueries(16), mixB.NextQueries(16)
		if len(qA) != 16 {
			t.Fatalf("batch %d: %d queries, want 16", i, len(qA))
		}
		if !reflect.DeepEqual(qA, qB) {
			t.Fatalf("batch %d: query streams diverged across same-seed mixes", i)
		}
		for _, p := range qA {
			if p[0] == p[1] || p[0] < 0 || p[1] < 0 || p[0] >= n || p[1] >= n {
				t.Fatalf("batch %d: invalid query pair %v", i, p)
			}
		}
	}
}

// TestQueryMixOracleAnswers sanity-checks the oracle answers: edge-sampled
// pairs must come back connected.
func TestQueryMixOracleAnswers(t *testing.T) {
	const n = 32
	sc, err := workload.Get("grow")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.NewQueryMix(sc.New(n, 3), n, 5)
	for i := 0; i < 4; i++ {
		mix.Next(8)
	}
	pairs := mix.NextQueries(32)
	ans := mix.OracleAnswers(pairs)
	if len(ans) != len(pairs) {
		t.Fatalf("%d answers for %d pairs", len(ans), len(pairs))
	}
	g := mix.Mirror()
	for i, p := range pairs {
		if g.Has(p[0], p[1]) && !ans[i] {
			t.Fatalf("pair %v is an edge of the mirror but answered disconnected", p)
		}
	}
}
