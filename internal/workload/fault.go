package workload

import (
	"fmt"

	"repro/internal/hash"
)

// MachineFaultSchedule is the machine-loss sibling of CrashSchedule: a
// seeded, deterministic choice of the batches during which one MPC machine
// "dies" mid-round, and of which machine it is. Like every generator in
// this package it is oblivious — fault points and victims are a fixed
// function of the seed, never of algorithm state — so a fault-decorated run
// of any scenario replays identically, and the differential harness can
// demand bit-identical results against an uninterrupted twin at the
// surviving machine count.
//
// A machine fault is recovered by re-sharding (see core.ReshardRestore):
// the poisoned round is discarded, the last checkpoint is restored onto the
// surviving fleet, and the in-flight batch is replayed.
type MachineFaultSchedule struct {
	prg   *hash.PRG
	every int
}

// NewMachineFaultSchedule returns a schedule killing a machine with
// probability 1/every per batch. every must be positive.
func NewMachineFaultSchedule(seed uint64, every int) *MachineFaultSchedule {
	if every < 1 {
		panic(fmt.Sprintf("workload: machine-fault schedule every %d batches", every))
	}
	return &MachineFaultSchedule{prg: hash.NewPRG(seed ^ 0xfa17), every: every}
}

// Fault draws the next batch's fault decision against a fleet of the given
// size: ok reports whether a machine dies during the batch, and victim is
// its id. The victim draw is consumed only when a fault fires, so the
// schedule's firing pattern is independent of the (shrinking) fleet size.
func (s *MachineFaultSchedule) Fault(machines int) (victim int, ok bool) {
	if s.prg.NextN(uint64(s.every)) != 0 {
		return 0, false
	}
	if machines < 1 {
		return 0, true
	}
	return int(s.prg.NextN(uint64(machines))), true
}
