package workload

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestChurnBatchesAreValid(t *testing.T) {
	c := NewChurn(Config{N: 20, Seed: 1})
	check := graph.New(20)
	for step := 0; step < 30; step++ {
		b := c.Next(5)
		if err := check.Apply(b); err != nil {
			t.Fatalf("step %d: invalid batch: %v", step, err)
		}
	}
	if check.M() != c.Mirror().M() {
		t.Errorf("mirror M %d, check M %d", c.Mirror().M(), check.M())
	}
}

func TestChurnWeighted(t *testing.T) {
	c := NewChurn(Config{N: 10, Seed: 2, MaxWeight: 7})
	b := c.NextInsertOnly(8)
	for _, u := range b {
		if u.Weight < 1 || u.Weight > 7 {
			t.Errorf("weight %d out of range", u.Weight)
		}
	}
}

func TestChurnInsertOnlyAndDeleteOnly(t *testing.T) {
	c := NewChurn(Config{N: 12, Seed: 3})
	ins := c.NextInsertOnly(6)
	for _, u := range ins {
		if u.Op != graph.Insert {
			t.Fatal("NextInsertOnly emitted a delete")
		}
	}
	del := c.NextDeleteOnly(3)
	for _, u := range del {
		if u.Op != graph.Delete {
			t.Fatal("NextDeleteOnly emitted an insert")
		}
	}
	if len(del) != 3 {
		t.Errorf("deleted %d, want 3", len(del))
	}
}

func TestChurnInsertBiasDensifies(t *testing.T) {
	dense := NewChurn(Config{N: 16, Seed: 4, InsertBias: 0.95})
	sparse := NewChurn(Config{N: 16, Seed: 4, InsertBias: 0.05})
	for step := 0; step < 40; step++ {
		dense.Next(4)
		sparse.Next(4)
	}
	if dense.Mirror().M() <= sparse.Mirror().M() {
		t.Errorf("dense M %d <= sparse M %d", dense.Mirror().M(), sparse.Mirror().M())
	}
}

func TestPathStream(t *testing.T) {
	batches := PathStream(10, 4)
	total := 0
	g := graph.New(10)
	for _, b := range batches {
		if len(b) > 4 {
			t.Errorf("batch size %d > 4", len(b))
		}
		total += len(b)
		if err := g.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if total != 9 {
		t.Errorf("total edges %d, want 9", total)
	}
}

func TestCycleTearDown(t *testing.T) {
	build, tear := CycleTearDown(12, 3)
	g := graph.New(12)
	for _, b := range build {
		if err := g.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if g.M() != 12 {
		t.Fatalf("cycle has %d edges", g.M())
	}
	for _, b := range tear {
		if err := g.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if g.M() >= 12 {
		t.Error("tear-down deleted nothing")
	}
}

func TestBipartiteishViolation(t *testing.T) {
	b := NewBipartiteish(16, 5, 2)
	sawSameParity := false
	for step := 0; step < 4; step++ {
		batch := b.Next(4)
		for _, u := range batch {
			if (u.Edge.U^u.Edge.V)&1 == 0 {
				if step != 2 {
					t.Errorf("same-parity edge at step %d", step)
				}
				sawSameParity = true
			}
		}
	}
	if !sawSameParity {
		t.Error("violation step emitted no same-parity edge")
	}
}

func TestNewChurnPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=1 did not panic")
		}
	}()
	NewChurn(Config{N: 1})
}

// TestConfigValidate pins the construction-time validation the CLIs and the
// server rely on: every malformed config yields a descriptive error, every
// usable one (including zero-value defaults) passes.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0},
		{N: 1},
		{N: -5},
		{N: 16, MaxWeight: -1},
		{N: 16, InsertBias: -0.1},
		{N: 16, InsertBias: 1.5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	good := []Config{
		{N: 2},
		{N: 16, MaxWeight: 64, InsertBias: 0.6},
		{N: 16, InsertBias: 1}, // boundary: keep every existing edge
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

// TestConstructorsRejectTinyN checks every scenario constructor fails fast
// with the shared diagnostic instead of a graph.New or prg.NextN panic.
func TestConstructorsRejectTinyN(t *testing.T) {
	ctors := map[string]func(){
		"churn":     func() { NewChurn(Config{N: 1}) },
		"powerlaw":  func() { NewPowerLaw(1, 1, 0.25, 0) },
		"window":    func() { NewSlidingWindow(1, 0, 1, 0) },
		"community": func() { NewCommunity(1, 0, 0, 1) },
		"bursty":    func() { NewBursty(1, 1) },
		"star":      func() { NewStar(1, 1) },
		"path":      func() { NewPathChurn(1, 1) },
		"cliques":   func() { NewCliques(1, 0, 1) },
		"bipartite": func() { NewBipartiteish(1, 1) },
		"querymix":  func() { NewQueryMix(NewStar(4, 1), 1, 1) },
	}
	for name, ctor := range ctors {
		t.Run(name, func(t *testing.T) {
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatal("n=1 did not panic with a diagnostic")
				}
				if !strings.Contains(msg, "at least 2 vertices") && !strings.Contains(msg, "n = 1") {
					t.Fatalf("panic message not descriptive: %q", msg)
				}
			}()
			ctor()
		})
	}
}
