// Package workload generates the oblivious-adversary update streams driven
// by the experiments. Every generator is seeded and fixes its choices
// independently of the algorithms' randomness, which is exactly the
// oblivious-adversary model the paper assumes; each maintains a mirror
// reference graph so the emitted batches are always valid (no duplicate
// insertions, deletions only of present edges).
package workload

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

// Churn emits batches mixing random insertions and deletions.
type Churn struct {
	n   int
	g   *graph.Graph
	prg *hash.PRG
	// InsertBias in [0,1]: probability that a touched existing edge is left
	// alone rather than deleted (higher = denser graphs).
	insertBias float64
	// MaxWeight > 0 makes the stream weighted with uniform weights in
	// [1, MaxWeight].
	maxWeight int64
}

// Config parameterizes a Churn generator.
type Config struct {
	N          int
	Seed       uint64
	InsertBias float64 // default 0.5
	MaxWeight  int64   // 0 = unweighted
}

// Validate reports whether the config can drive a generator, with a
// descriptive usage error otherwise. CLIs and servers call this before
// construction so a bad flag (n < 2, negative weight range, out-of-range
// bias) surfaces as an error message instead of a panic from deep inside a
// PRG or graph constructor.
func (cfg Config) Validate() error {
	if cfg.N < 2 {
		return fmt.Errorf("workload: generator needs at least 2 vertices, got n = %d", cfg.N)
	}
	if cfg.MaxWeight < 0 {
		return fmt.Errorf("workload: negative MaxWeight %d (use 0 for unweighted, > 0 for weights in [1, MaxWeight])", cfg.MaxWeight)
	}
	if cfg.InsertBias < 0 || cfg.InsertBias > 1 {
		return fmt.Errorf("workload: InsertBias %v outside [0, 1]", cfg.InsertBias)
	}
	return nil
}

// validateN is the construction-time guard shared by every generator: the
// scenario constructors take a bare vertex count, and a count below 2 would
// otherwise panic opaquely inside graph.New or prg.NextN.
func validateN(n int) {
	if n < 2 {
		panic(fmt.Sprintf("workload: generator needs at least 2 vertices, got n = %d", n))
	}
}

// NewChurn returns a generator over an initially empty graph. The config
// must be valid (see Config.Validate); construction panics on a bad one —
// callers handling user input validate first.
func NewChurn(cfg Config) *Churn {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	bias := cfg.InsertBias
	if bias == 0 {
		bias = 0.5
	}
	return &Churn{
		n:          cfg.N,
		g:          graph.New(cfg.N),
		prg:        hash.NewPRG(cfg.Seed),
		insertBias: bias,
		maxWeight:  cfg.MaxWeight,
	}
}

// Mirror returns the reference graph reflecting all emitted batches.
func (c *Churn) Mirror() *graph.Graph { return c.g }

// weight draws an edge weight (1 when unweighted).
func (c *Churn) weight() int64 {
	if c.maxWeight <= 1 {
		return 1
	}
	return int64(c.prg.NextN(uint64(c.maxWeight))) + 1
}

// Next emits a batch of exactly size valid updates (or fewer if the random
// walk stalls, e.g. on a complete graph with InsertBias 1).
func (c *Churn) Next(size int) graph.Batch {
	var b graph.Batch
	used := map[graph.Edge]bool{}
	for attempts := 0; len(b) < size && attempts < 50*size+200; attempts++ {
		u := int(c.prg.NextN(uint64(c.n)))
		v := int(c.prg.NextN(uint64(c.n)))
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if used[e] {
			continue
		}
		if c.g.Has(e.U, e.V) {
			if float64(c.prg.NextN(1000))/1000 < c.insertBias {
				continue
			}
			used[e] = true
			w, _ := c.g.Weight(e.U, e.V)
			_ = c.g.Delete(e.U, e.V)
			b = append(b, graph.DelW(e.U, e.V, w))
		} else {
			used[e] = true
			w := c.weight()
			_ = c.g.Insert(e.U, e.V, w)
			b = append(b, graph.InsW(e.U, e.V, w))
		}
	}
	return b
}

// NextInsertOnly emits a batch of insertions only.
func (c *Churn) NextInsertOnly(size int) graph.Batch {
	var b graph.Batch
	used := map[graph.Edge]bool{}
	for attempts := 0; len(b) < size && attempts < 50*size+200; attempts++ {
		u := int(c.prg.NextN(uint64(c.n)))
		v := int(c.prg.NextN(uint64(c.n)))
		if u == v {
			continue
		}
		e := graph.NewEdge(u, v)
		if used[e] || c.g.Has(e.U, e.V) {
			continue
		}
		used[e] = true
		w := c.weight()
		_ = c.g.Insert(e.U, e.V, w)
		b = append(b, graph.InsW(e.U, e.V, w))
	}
	return b
}

// NextDeleteOnly emits a batch deleting existing edges chosen at random.
func (c *Churn) NextDeleteOnly(size int) graph.Batch {
	edges := c.g.Edges()
	if len(edges) == 0 {
		return nil
	}
	var b graph.Batch
	used := map[int]bool{}
	for attempts := 0; len(b) < size && len(b) < len(edges) && attempts < 50*size+200; attempts++ {
		i := int(c.prg.NextN(uint64(len(edges))))
		if used[i] {
			continue
		}
		used[i] = true
		e := edges[i]
		_ = c.g.Delete(e.U, e.V)
		b = append(b, graph.DelW(e.U, e.V, e.Weight))
	}
	return b
}

// PathStream emits the edges of a Hamiltonian path in order, batched; it is
// the worst case for sketch-free component merging and for AGM query depth.
func PathStream(n, batch int) []graph.Batch {
	var out []graph.Batch
	var cur graph.Batch
	for i := 0; i+1 < n; i++ {
		cur = append(cur, graph.Ins(i, i+1))
		if len(cur) == batch {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// CycleTearDown returns an n-cycle insertion stream followed by batches
// that delete every other tree edge, forcing replacement-edge searches.
func CycleTearDown(n, batch int) (build []graph.Batch, tear []graph.Batch) {
	var cur graph.Batch
	for i := 0; i < n; i++ {
		cur = append(cur, graph.Ins(i, (i+1)%n))
		if len(cur) == batch {
			build = append(build, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		build = append(build, cur)
	}
	for i := 0; i+3 < n; i += 4 {
		cur = append(cur, graph.Del(i, i+1))
		if len(cur) == batch {
			tear = append(tear, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		tear = append(tear, cur)
	}
	return build, tear
}

// Bipartiteish emits a stream over a bipartite backbone (edges between even
// and odd vertices) with odd-cycle-closing violations injected at the given
// step indices.
type Bipartiteish struct {
	n       int
	g       *graph.Graph
	prg     *hash.PRG
	violate map[int]bool
	step    int
}

// NewBipartiteish returns the generator; violateAt lists the Next calls
// (0-based) that inject a same-parity edge.
func NewBipartiteish(n int, seed uint64, violateAt ...int) *Bipartiteish {
	validateN(n)
	v := map[int]bool{}
	for _, s := range violateAt {
		v[s] = true
	}
	return &Bipartiteish{n: n, g: graph.New(n), prg: hash.NewPRG(seed), violate: v}
}

// Mirror returns the reference graph.
func (b *Bipartiteish) Mirror() *graph.Graph { return b.g }

// Next emits one batch of the stream. A violation step ends its batch with
// a same-parity edge between two already-connected vertices, which closes a
// genuine odd cycle over the even/odd backbone.
func (b *Bipartiteish) Next(size int) graph.Batch {
	defer func() { b.step++ }()
	var out graph.Batch
	wantViolation := b.violate[b.step]
	budget := size
	if wantViolation {
		budget--
	}
	for attempts := 0; len(out) < budget && attempts < 50*size+200; attempts++ {
		u := int(b.prg.NextN(uint64(b.n)))
		v := int(b.prg.NextN(uint64(b.n)))
		if u == v || (u^v)&1 == 0 {
			continue
		}
		e := graph.NewEdge(u, v)
		if b.g.Has(e.U, e.V) {
			continue
		}
		_ = b.g.Insert(e.U, e.V, 0)
		out = append(out, graph.Ins(e.U, e.V))
	}
	if wantViolation {
		labels := oracle.Components(b.g)
		if e, ok := b.samePairConnected(labels); ok {
			_ = b.g.Insert(e.U, e.V, 0)
			out = append(out, graph.Ins(e.U, e.V))
		}
	}
	return out
}

// samePairConnected finds two connected vertices of equal parity with no
// edge between them.
func (b *Bipartiteish) samePairConnected(labels []int) (graph.Edge, bool) {
	for attempts := 0; attempts < 40*b.n; attempts++ {
		u := int(b.prg.NextN(uint64(b.n)))
		v := int(b.prg.NextN(uint64(b.n)))
		if u == v || (u^v)&1 != 0 || labels[u] != labels[v] || b.g.Has(u, v) {
			continue
		}
		return graph.NewEdge(u, v), true
	}
	return graph.Edge{}, false
}
