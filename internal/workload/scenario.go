package workload

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Generator is the common interface of every update-stream generator: Next
// emits the next batch of at most size valid updates (possibly fewer if the
// scenario stalls, e.g. a saturated insert-only stream), and Mirror exposes
// the reference graph reflecting every update emitted so far. Generators
// are seeded and deterministic, and their choices never depend on algorithm
// state — the oblivious-adversary model of the paper.
type Generator interface {
	Next(size int) graph.Batch
	Mirror() *graph.Graph
}

// Scenario is a registry entry: a named, seeded stream family plus the
// metadata the differential harness needs to pair it with algorithms.
type Scenario struct {
	// Name is the registry key (also the -scenario CLI value).
	Name string
	// Stresses summarizes what regime the stream exercises (shown in the
	// README catalogue and the E14 table).
	Stresses string
	// InsertOnly marks streams that never emit deletions; only these may
	// drive the insertion-only algorithms (exact MSF, greedy matching).
	InsertOnly bool
	// Weighted marks streams whose updates carry weights >= 1, required by
	// the MSF algorithms.
	Weighted bool
	// New builds a fresh generator on n vertices from the seed.
	New func(n int, seed uint64) Generator
}

// registry maps scenario names to their entries. It is populated by the
// Register calls in scenarios.go at init time and never mutated afterwards,
// so concurrent readers need no locking.
var registry = map[string]Scenario{}

// Register adds a scenario to the registry. It panics on duplicate or
// anonymous registrations (registration happens at init time; a bad entry
// is a programming error).
func Register(s Scenario) {
	if s.Name == "" || s.New == nil {
		panic("workload: Register with empty name or nil constructor")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario or an error listing the valid names.
func Get(name string) (Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Record drives gen for the given number of batches and returns the emitted
// stream, dropping empty batches (a stalled generator emits nothing rather
// than an invalid update). It is the materializing convenience over
// NewGeneratorSource for in-memory fixtures; golden-trace regeneration
// streams through streamio.WriteFrom instead and never buffers twice.
func Record(gen Generator, batches, size int) []graph.Batch {
	out, _ := Drain(NewGeneratorSource(gen, batches, size))
	return out
}
