package workload

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Generator is the common interface of every update-stream generator: Next
// emits the next batch of at most size valid updates (possibly fewer if the
// scenario stalls, e.g. a saturated insert-only stream), and Mirror exposes
// the reference graph reflecting every update emitted so far. Generators
// are seeded and deterministic, and their choices never depend on algorithm
// state — the oblivious-adversary model of the paper.
type Generator interface {
	Next(size int) graph.Batch
	Mirror() *graph.Graph
}

// Scenario is a registry entry: a named, seeded stream family plus the
// metadata the differential harness needs to pair it with algorithms.
type Scenario struct {
	// Name is the registry key (also the -scenario CLI value).
	Name string
	// Stresses summarizes what regime the stream exercises (shown in the
	// README catalogue and the E14 table).
	Stresses string
	// InsertOnly marks streams that never emit deletions; only these may
	// drive the insertion-only algorithms (exact MSF, greedy matching).
	InsertOnly bool
	// Weighted marks streams whose updates carry weights >= 1, required by
	// the MSF algorithms.
	Weighted bool
	// New builds a fresh generator on n vertices from the seed.
	New func(n int, seed uint64) Generator
}

// registry maps scenario names to their entries. It is populated by the
// Register calls in scenarios.go at init time and never mutated afterwards,
// so concurrent readers need no locking.
var registry = map[string]Scenario{}

// Register adds a scenario to the registry. It panics on duplicate or
// anonymous registrations (registration happens at init time; a bad entry
// is a programming error).
func Register(s Scenario) {
	if s.Name == "" || s.New == nil {
		panic("workload: Register with empty name or nil constructor")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario or an error listing the valid names.
func Get(name string) (Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Record drives gen for the given number of batches and returns the emitted
// stream, dropping empty batches (a stalled generator emits nothing rather
// than an invalid update). The result serializes with streamio.Write into
// the .stream golden format and replays with NewReplay.
func Record(gen Generator, batches, size int) []graph.Batch {
	var out []graph.Batch
	for i := 0; i < batches; i++ {
		if b := gen.Next(size); len(b) > 0 {
			out = append(out, b)
		}
	}
	return out
}

// Replay is a Generator that replays a recorded stream (e.g. one parsed
// from a .stream file), re-validating every batch against its own mirror,
// so a corrupted trace fails loudly instead of feeding an algorithm an
// invalid update.
type Replay struct {
	g       *graph.Graph
	batches []graph.Batch
	next    int
	// off is the number of updates of batches[next] already emitted (a
	// split batch is consumed in place without mutating the caller's
	// slice, so the same recording can back several replays).
	off int
}

// NewReplay returns a replay generator over n vertices. The recorded batch
// boundaries are preserved; Next's size argument only caps how much of the
// current recorded batch is emitted at once.
func NewReplay(n int, batches []graph.Batch) *Replay {
	return &Replay{g: graph.New(n), batches: batches}
}

// NewReplayFrom returns a replay generator whose mirror starts from g
// instead of an empty graph: the checkpoint-resume path of the CLIs, where
// a recorded stream continues a restored graph. The replay owns g
// afterwards.
func NewReplayFrom(g *graph.Graph, batches []graph.Batch) *Replay {
	return &Replay{g: g, batches: batches}
}

// Mirror returns the reference graph of the replayed prefix.
func (r *Replay) Mirror() *graph.Graph { return r.g }

// Done reports whether the recorded stream is exhausted.
func (r *Replay) Done() bool { return r.next >= len(r.batches) }

// Next emits the next recorded batch, split if it exceeds size. It panics
// if the recorded stream is not valid against the mirror.
func (r *Replay) Next(size int) graph.Batch {
	if r.Done() {
		return nil
	}
	b := r.batches[r.next][r.off:]
	if size < len(b) {
		// Split: emit a prefix and remember how far we got.
		r.off += size
		b = b[:size]
	} else {
		r.next++
		r.off = 0
	}
	if err := r.g.Apply(b); err != nil {
		panic(fmt.Sprintf("workload: replayed stream invalid: %v", err))
	}
	return b
}
