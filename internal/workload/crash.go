package workload

import (
	"fmt"

	"repro/internal/hash"
)

// CrashSchedule is the fault-injection decorator of the scenario engine: a
// seeded, deterministic choice of the batch indices at which a run's
// cluster is killed and restored from its latest checkpoint. Like every
// generator in this package it is oblivious — the crash points are a fixed
// function of the seed, never of algorithm state — so a crash-decorated
// run of any scenario replays identically, and the differential harness
// can demand bit-identical results against an uninterrupted twin.
//
// Crash is drawn once per batch, in order; on average one crash fires
// every `every` batches.
type CrashSchedule struct {
	prg   *hash.PRG
	every int
}

// NewCrashSchedule returns a schedule crashing with probability 1/every
// per batch. every must be positive.
func NewCrashSchedule(seed uint64, every int) *CrashSchedule {
	if every < 1 {
		panic(fmt.Sprintf("workload: crash schedule every %d batches", every))
	}
	return &CrashSchedule{prg: hash.NewPRG(seed ^ 0xc4a5), every: every}
}

// Crash draws the next batch's fault decision.
func (s *CrashSchedule) Crash() bool {
	return s.prg.NextN(uint64(s.every)) == 0
}
