package workload

import "testing"

// BenchmarkScenarioGen measures the generation cost of every registered
// scenario (batch size 64 on 256 vertices), so generator overhead is
// visible in the perf trajectory next to the algorithms it feeds.
func BenchmarkScenarioGen(b *testing.B) {
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			gen := sc.New(256, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen.Next(64)
			}
		})
	}
}
