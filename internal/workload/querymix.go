package workload

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

// QueryMix turns any update generator into a read/write-mix workload: the
// update stream passes through unchanged, and NextQueries draws seeded
// vertex-pair query batches between them. The query stream is its own PRG,
// independent of the update stream and of algorithm state (the oblivious-
// adversary model covers reads as well as writes), so adding or removing
// queries never perturbs the recorded update trace.
//
// Queries are biased toward "interesting" answers: half the pairs are
// drawn uniformly, half are drawn from the mirror's current edges (whose
// endpoints are trivially connected), giving the connected/disconnected
// split real workloads show instead of the almost-always-disconnected
// answers of uniform sampling on sparse graphs.
type QueryMix struct {
	gen  Generator
	n    int
	seed uint64
	prg  *hash.PRG
}

// NewQueryMix wraps gen (over n vertices) with a query stream drawn from
// seed.
func NewQueryMix(gen Generator, n int, seed uint64) *QueryMix {
	if n < 2 {
		panic(fmt.Sprintf("workload: QueryMix over n = %d", n))
	}
	return &QueryMix{gen: gen, n: n, seed: seed ^ 0x51c9, prg: hash.NewPRG(seed ^ 0x51c9)}
}

// Next forwards to the wrapped update generator.
func (q *QueryMix) Next(size int) graph.Batch { return q.gen.Next(size) }

// Mirror forwards to the wrapped update generator.
func (q *QueryMix) Mirror() *graph.Graph { return q.gen.Mirror() }

// NextQueries emits the next batch of k query pairs against the current
// mirror state.
func (q *QueryMix) NextQueries(k int) [][2]int {
	return q.drawQueries(q.prg, k)
}

// NextQueriesFrom draws a batch of k query pairs from an independent PRG
// derived from the mix's seed and the given salt, leaving the mix's own
// query stream untouched. Concurrent reader clients (the server soak, the
// core race tests) each pick a distinct salt and get their own
// deterministic stream against the current mirror; the caller must ensure
// the mirror is not concurrently mutated (reads under the instance read
// lock satisfy this).
func (q *QueryMix) NextQueriesFrom(salt uint64, k int) [][2]int {
	return q.drawQueries(hash.NewPRG(q.seed^(salt*0x9e3779b97f4a7c15+0x2545)), k)
}

// drawQueries samples k pairs from prg against the current mirror.
func (q *QueryMix) drawQueries(prg *hash.PRG, k int) [][2]int {
	out := make([][2]int, 0, k)
	// Edges() comes back in unspecified (map) order; sort so the sampled
	// query stream is deterministic for a given seed and update prefix.
	edges := q.Mirror().Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for len(out) < k {
		if len(edges) > 0 && prg.NextN(2) == 0 {
			e := edges[prg.NextN(uint64(len(edges)))]
			out = append(out, [2]int{e.U, e.V})
			continue
		}
		u := int(prg.NextN(uint64(q.n)))
		v := int(prg.NextN(uint64(q.n)))
		if u == v {
			continue
		}
		out = append(out, [2]int{u, v})
	}
	return out
}

// OracleAnswers answers a query batch against the mirror with the
// sequential oracle (one Components sweep for the whole batch), for
// differential checks of batched query engines.
func (q *QueryMix) OracleAnswers(pairs [][2]int) []bool {
	labels := oracle.Components(q.Mirror())
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = labels[p[0]] == labels[p[1]]
	}
	return out
}
