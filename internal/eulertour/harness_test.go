package eulertour

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
)

// host is a sequential stand-in for the distributed shards: it keeps every
// record in one map and answers the planner's stats queries by scanning, the
// same computation the machines perform locally in the MPC implementation.
type host struct {
	n      int
	recs   map[graph.Edge]*Record
	nextID TourID
}

func newHost(n int) *host {
	return &host{n: n, recs: make(map[graph.Edge]*Record), nextID: 1}
}

func (h *host) next() TourID {
	id := h.nextID
	h.nextID++
	return id
}

// compOf returns the component key (minimum vertex id) of v under the
// current record set.
func (h *host) components() ([]int, *oracle.UnionFind) {
	uf := oracle.NewUnionFind(h.n)
	for e := range h.recs {
		uf.Union(e.U, e.V)
	}
	minID := make(map[int]int)
	for v := 0; v < h.n; v++ {
		r := uf.Find(v)
		if cur, ok := minID[r]; !ok || v < cur {
			minID[r] = v
		}
	}
	labels := make([]int, h.n)
	for v := 0; v < h.n; v++ {
		labels[v] = minID[uf.Find(v)]
	}
	return labels, uf
}

func (h *host) stats(v int) VertexStats {
	st := VertexStats{Tour: NoTour}
	for _, r := range h.recs {
		if !r.E.Has(v) {
			continue
		}
		ps := r.PositionsOf(v)
		if st.Tour == NoTour {
			st.Tour = r.Tour
			st.F, st.L = ps[0], ps[1]
			continue
		}
		if r.Tour != st.Tour {
			panic(fmt.Sprintf("vertex %d on two tours", v))
		}
		if ps[0] < st.F {
			st.F = ps[0]
		}
		if ps[1] > st.L {
			st.L = ps[1]
		}
	}
	return st
}

func (h *host) minAbove(v int, cut Pos) Pos {
	best := Pos(0)
	for _, r := range h.recs {
		if !r.E.Has(v) {
			continue
		}
		for _, p := range r.PositionsOf(v) {
			if p > cut && (best == 0 || p < best) {
				best = p
			}
		}
	}
	return best
}

func (h *host) tourOf(comp int, labels []int) (TourID, int) {
	size := 0
	tour := NoTour
	for v := 0; v < h.n; v++ {
		if labels[v] == comp {
			size++
		}
	}
	for _, r := range h.recs {
		if labels[r.E.U] == comp {
			tour = r.Tour
			break
		}
	}
	return tour, size
}

// insertBatch runs the full join flow for a set of edges that connect
// distinct components (a forest over components).
func (h *host) insertBatch(edges []graph.Edge) error {
	labels, _ := h.components()
	compSet := make(map[int]bool)
	for _, e := range edges {
		compSet[labels[e.U]] = true
		compSet[labels[e.V]] = true
	}
	var comps []CompInfo
	for c := range compSet {
		tour, size := h.tourOf(c, labels)
		comps = append(comps, CompInfo{Key: c, Tour: tour, Size: size})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Key < comps[j].Key })
	pl, err := NewJoinPlanner(comps, edges, func(v int) int { return labels[v] })
	if err != nil {
		return err
	}
	stats := make(map[int]VertexStats)
	for _, v := range pl.Terminals() {
		stats[v] = h.stats(v)
	}
	if err := pl.SetStats(stats); err != nil {
		return err
	}
	minAb := make(map[int]Pos)
	for _, q := range pl.CutQueries() {
		minAb[q.Vertex] = h.minAbove(q.Vertex, q.Cut)
	}
	pl.SetMinAbove(minAb)
	res, err := pl.Plan(h.next)
	if err != nil {
		return err
	}
	set := NewRelabelSet(res.Relabels)
	for _, r := range h.recs {
		if err := set.ApplyToRecord(r); err != nil {
			return err
		}
	}
	for _, nr := range res.NewRecords {
		rec := nr
		if _, dup := h.recs[rec.E]; dup {
			return fmt.Errorf("duplicate record %v", rec.E)
		}
		h.recs[rec.E] = &rec
	}
	return nil
}

// deleteBatch runs the full split flow for a set of existing tree edges.
func (h *host) deleteBatch(edges []graph.Edge) error {
	tourLens := make(map[TourID]int)
	counts := make(map[TourID]int)
	for _, r := range h.recs {
		counts[r.Tour]++
	}
	var deleted []Record
	for _, e := range edges {
		r, ok := h.recs[e.Canonical()]
		if !ok {
			return fmt.Errorf("deleting unknown edge %v", e)
		}
		deleted = append(deleted, *r)
		tourLens[r.Tour] = 4 * counts[r.Tour]
	}
	res, err := PlanSplit(tourLens, deleted, h.next)
	if err != nil {
		return err
	}
	for _, e := range edges {
		delete(h.recs, e.Canonical())
	}
	set := NewRelabelSet(res.Relabels)
	for _, r := range h.recs {
		if err := set.ApplyToRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// checkTours reconstructs every tour from the records and validates it as a
// closed Euler tour of the corresponding tree.
func (h *host) checkTours(t *testing.T) {
	t.Helper()
	type dartInfo struct{ tail, head int }
	byTour := make(map[TourID][]*Record)
	for _, r := range h.recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record invariant: %v", err)
		}
		byTour[r.Tour] = append(byTour[r.Tour], r)
	}
	for tour, recs := range byTour {
		l := 4 * len(recs)
		occupied := make(map[Pos]int) // position -> vertex
		place := func(v int, p Pos) {
			if p < 1 || p > l {
				t.Fatalf("tour %d: position %d outside [1,%d]", tour, p, l)
			}
			if prev, ok := occupied[p]; ok {
				t.Fatalf("tour %d: position %d claimed by %d and %d", tour, p, prev, v)
			}
			occupied[p] = v
		}
		for _, r := range recs {
			for _, p := range r.UPos {
				place(r.E.U, p)
			}
			for _, p := range r.VPos {
				place(r.E.V, p)
			}
		}
		if len(occupied) != l {
			t.Fatalf("tour %d: %d positions occupied, want %d", tour, len(occupied), l)
		}
		// Validate darts and walk continuity.
		edgeDir := make(map[[2]int]int) // directed edge -> times traversed
		var darts []dartInfo
		for p := 1; p <= l; p += 2 {
			d := dartInfo{tail: occupied[p], head: occupied[p+1]}
			darts = append(darts, d)
			edgeDir[[2]int{d.tail, d.head}]++
		}
		for _, r := range recs {
			if edgeDir[[2]int{r.E.U, r.E.V}] != 1 || edgeDir[[2]int{r.E.V, r.E.U}] != 1 {
				t.Fatalf("tour %d: edge %v not traversed once per direction", tour, r.E)
			}
		}
		for i, d := range darts {
			next := darts[(i+1)%len(darts)]
			if d.head != next.tail {
				t.Fatalf("tour %d: walk discontinuity at dart %d: head %d, next tail %d", tour, i, d.head, next.tail)
			}
		}
		// Child interval of every record must be consistent with derived
		// global f/l of the child endpoint.
		for _, r := range recs {
			child := r.Child()
			st := h.stats(child)
			if r.ChildF() != st.F || r.ChildL() != st.L {
				t.Fatalf("tour %d: record %v child %d interval [%d,%d], global [%d,%d]",
					tour, r.E, child, r.ChildF(), r.ChildL(), st.F, st.L)
			}
		}
	}
	// Records must partition by true components: two vertices share a tour
	// iff connected.
	labels, _ := h.components()
	tourOfVertex := make(map[int]TourID)
	for _, r := range h.recs {
		for _, v := range []int{r.E.U, r.E.V} {
			if prev, ok := tourOfVertex[v]; ok && prev != r.Tour {
				t.Fatalf("vertex %d on tours %d and %d", v, prev, r.Tour)
			}
			tourOfVertex[v] = r.Tour
		}
	}
	compTour := make(map[int]TourID)
	for v, tour := range tourOfVertex {
		c := labels[v]
		if prev, ok := compTour[c]; ok && prev != tour {
			t.Fatalf("component %d spans tours %d and %d", c, prev, tour)
		}
		compTour[c] = tour
	}
	seenTour := make(map[TourID]int)
	for c, tour := range compTour {
		if prev, ok := seenTour[tour]; ok {
			t.Fatalf("tour %d shared by components %d and %d", tour, prev, c)
		}
		seenTour[tour] = c
	}
}

func (h *host) forestEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(h.recs))
	for e := range h.recs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
