package eulertour

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

func TestTourLen(t *testing.T) {
	for size, want := range map[int]int{1: 0, 2: 4, 3: 8, 5: 16} {
		if got := TourLen(size); got != want {
			t.Errorf("TourLen(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestRecordChildAndIntervals(t *testing.T) {
	// Tree 0-1 rooted at 0: darts (0,1) at (1,2), (1,0) at (3,4).
	r := Record{E: graph.NewEdge(0, 1), Tour: 1, UPos: [2]Pos{1, 4}, VPos: [2]Pos{2, 3}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Child() != 1 || r.Parent() != 0 {
		t.Errorf("Child/Parent = %d/%d", r.Child(), r.Parent())
	}
	if r.ChildF() != 2 || r.ChildL() != 3 {
		t.Errorf("child interval [%d,%d]", r.ChildF(), r.ChildL())
	}
	if got := r.PositionsOf(0); got != [2]Pos{1, 4} {
		t.Errorf("PositionsOf(0) = %v", got)
	}
}

func TestRecordValidateRejectsBadShapes(t *testing.T) {
	bad := []Record{
		{E: graph.NewEdge(0, 1), UPos: [2]Pos{1, 3}, VPos: [2]Pos{2, 5}}, // not two pairs
		{E: graph.NewEdge(0, 1), UPos: [2]Pos{1, 2}, VPos: [2]Pos{3, 4}}, // one vertex per dart violated
		{E: graph.NewEdge(0, 1), UPos: [2]Pos{1, 2}, VPos: [2]Pos{2, 3}}, // overlap
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestRelabelSetMap(t *testing.T) {
	set := NewRelabelSet([]Relabel{
		{OldTour: 1, Lo: 1, Hi: 4, NewTour: 9, Delta: 10},
		{OldTour: 1, Lo: 5, Hi: 8, NewTour: 8, Delta: -4},
	})
	if tr, p := set.Map(1, 3); tr != 9 || p != 13 {
		t.Errorf("Map(1,3) = %d,%d", tr, p)
	}
	if tr, p := set.Map(1, 6); tr != 8 || p != 2 {
		t.Errorf("Map(1,6) = %d,%d", tr, p)
	}
	if tr, p := set.Map(2, 3); tr != 2 || p != 3 {
		t.Errorf("untouched tour moved: %d,%d", tr, p)
	}
	if !set.Covers(1, 8) || set.Covers(1, 9) || set.Covers(3, 1) {
		t.Error("Covers wrong")
	}
	if !set.Touches(1) || set.Touches(3) {
		t.Error("Touches wrong")
	}
}

func TestApplyToRecordDetectsSplitAcrossTours(t *testing.T) {
	set := NewRelabelSet([]Relabel{
		{OldTour: 1, Lo: 1, Hi: 2, NewTour: 5, Delta: 0},
		{OldTour: 1, Lo: 3, Hi: 4, NewTour: 6, Delta: -2},
	})
	r := Record{E: graph.NewEdge(0, 1), Tour: 1, UPos: [2]Pos{1, 4}, VPos: [2]Pos{2, 3}}
	if err := set.ApplyToRecord(&r); err == nil {
		t.Fatal("record straddling tours accepted")
	}
}

func TestJoinTwoSingletons(t *testing.T) {
	h := newHost(4)
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(0, 1)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	if len(h.recs) != 1 {
		t.Fatalf("records = %d", len(h.recs))
	}
	r := h.recs[graph.NewEdge(0, 1)]
	if r.Child() != 1 { // group root is comp 0
		t.Errorf("child = %d, want 1", r.Child())
	}
}

func TestJoinChainOfSingletons(t *testing.T) {
	// One batch: 0-1, 1-2, 2-3, 3-4 merging five singletons into a path.
	h := newHost(5)
	batch := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3), graph.NewEdge(3, 4),
	}
	if err := h.insertBatch(batch); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
}

func TestJoinStarOfSingletons(t *testing.T) {
	h := newHost(6)
	batch := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(0, 2), graph.NewEdge(0, 3),
		graph.NewEdge(0, 4), graph.NewEdge(0, 5),
	}
	if err := h.insertBatch(batch); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
}

func TestJoinTwoPathsAtInternalVertices(t *testing.T) {
	h := newHost(8)
	// Build two paths in separate batches, then join them by an edge
	// between internal vertices, forcing a rotation.
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(4, 5), graph.NewEdge(5, 6), graph.NewEdge(6, 7)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(2, 6)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	if len(h.recs) != 7 {
		t.Fatalf("records = %d", len(h.recs))
	}
}

func TestJoinMultipleGroupsInOneBatch(t *testing.T) {
	h := newHost(8)
	// Two disjoint groups in one batch: {0,1,2} and {4,5}.
	batch := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(4, 5),
	}
	if err := h.insertBatch(batch); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	labels, _ := h.components()
	if labels[0] != labels[2] || labels[4] != labels[5] || labels[0] == labels[4] {
		t.Errorf("labels = %v", labels)
	}
}

func TestSplitSingleEdge(t *testing.T) {
	h := newHost(4)
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := h.deleteBatch([]graph.Edge{graph.NewEdge(1, 2)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	labels, _ := h.components()
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[1] == labels[2] {
		t.Errorf("labels after split = %v", labels)
	}
}

func TestSplitLeafEdgeMakesSingleton(t *testing.T) {
	h := newHost(3)
	if err := h.insertBatch([]graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := h.deleteBatch([]graph.Edge{graph.NewEdge(1, 2)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	if len(h.recs) != 1 {
		t.Fatalf("records = %d", len(h.recs))
	}
}

func TestSplitNestedBatch(t *testing.T) {
	// Path 0-1-2-3-4-5; delete {1,2} and {3,4} in one batch: three parts.
	h := newHost(6)
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.NewEdge(i, i+1))
	}
	if err := h.insertBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := h.deleteBatch([]graph.Edge{graph.NewEdge(1, 2), graph.NewEdge(3, 4)}); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	labels, _ := h.components()
	want := []int{0, 0, 2, 2, 4, 4}
	for v, w := range want {
		if labels[v] != w {
			t.Errorf("labels = %v, want %v", labels, want)
			break
		}
	}
}

func TestSplitWholeStar(t *testing.T) {
	h := newHost(5)
	star := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(0, 2), graph.NewEdge(0, 3), graph.NewEdge(0, 4),
	}
	if err := h.insertBatch(star); err != nil {
		t.Fatal(err)
	}
	if err := h.deleteBatch(star); err != nil {
		t.Fatal(err)
	}
	h.checkTours(t)
	if len(h.recs) != 0 {
		t.Fatalf("records = %d after deleting everything", len(h.recs))
	}
}

func TestPlanSplitValidation(t *testing.T) {
	if _, err := PlanSplit(map[TourID]int{}, []Record{
		{E: graph.NewEdge(0, 1), Tour: NoTour, UPos: [2]Pos{1, 4}, VPos: [2]Pos{2, 3}},
	}, func() TourID { return 1 }); err == nil {
		t.Error("record without tour accepted")
	}
	if _, err := PlanSplit(map[TourID]int{}, []Record{
		{E: graph.NewEdge(0, 1), Tour: 3, UPos: [2]Pos{1, 4}, VPos: [2]Pos{2, 3}},
	}, func() TourID { return 1 }); err == nil {
		t.Error("missing tour length accepted")
	}
}

func TestJoinPlannerValidation(t *testing.T) {
	compOf := func(v int) int { return v / 2 } // comps {0,1}=0, {2,3}=1
	// Edge within one component.
	if _, err := NewJoinPlanner(
		[]CompInfo{{Key: 0, Tour: 1, Size: 2}, {Key: 1, Tour: 2, Size: 2}},
		[]graph.Edge{graph.NewEdge(0, 1)}, compOf,
	); err == nil {
		t.Error("intra-component edge accepted")
	}
	// Unknown component.
	if _, err := NewJoinPlanner(
		[]CompInfo{{Key: 0, Tour: 1, Size: 2}},
		[]graph.Edge{graph.NewEdge(0, 2)}, compOf,
	); err == nil {
		t.Error("unknown component accepted")
	}
	// Parallel comp edges.
	if _, err := NewJoinPlanner(
		[]CompInfo{{Key: 0, Tour: 1, Size: 2}, {Key: 1, Tour: 2, Size: 2}},
		[]graph.Edge{graph.NewEdge(0, 2), graph.NewEdge(1, 3)}, compOf,
	); err == nil {
		t.Error("parallel component edges accepted")
	}
	// Size/tour mismatch.
	if _, err := NewJoinPlanner(
		[]CompInfo{{Key: 0, Tour: NoTour, Size: 2}, {Key: 1, Tour: 2, Size: 2}},
		[]graph.Edge{graph.NewEdge(0, 2)}, compOf,
	); err == nil {
		t.Error("size-2 comp without tour accepted")
	}
}

func TestOnPathAgainstOracle(t *testing.T) {
	// Build a random tree, then compare the OnPath predicate against the
	// oracle's BFS path for many vertex pairs.
	const n = 24
	prg := hash.NewPRG(31)
	h := newHost(n)
	for v := 1; v < n; v++ {
		u := int(prg.NextN(uint64(v)))
		if err := h.insertBatch([]graph.Edge{graph.NewEdge(u, v)}); err != nil {
			t.Fatal(err)
		}
	}
	h.checkTours(t)
	forest := h.forestEdges()
	for trial := 0; trial < 60; trial++ {
		u := int(prg.NextN(n))
		v := int(prg.NextN(n))
		if u == v {
			continue
		}
		want := map[graph.Edge]bool{}
		for _, e := range oracle.ForestPath(n, forest, u, v) {
			want[e.Canonical()] = true
		}
		su, sv := h.stats(u), h.stats(v)
		for _, r := range h.recs {
			got := OnPath(r.ChildF(), r.ChildL(), su.F, su.L, sv.F, sv.L)
			if got != want[r.E] {
				t.Fatalf("u=%d v=%d edge %v: OnPath=%v oracle=%v", u, v, r.E, got, want[r.E])
			}
		}
	}
}

func TestInSubtree(t *testing.T) {
	if !InSubtree(2, 9, 3, 5) {
		t.Error("contained interval rejected")
	}
	if InSubtree(2, 9, 1, 5) || InSubtree(2, 9, 3, 10) {
		t.Error("straddling interval accepted")
	}
}

// TestRandomizedJoinSplitChurn is the heavyweight property test: random
// batched joins and splits over many seeds, validating full Euler-tour
// invariants after every batch.
func TestRandomizedJoinSplitChurn(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(string(rune('a'+int(seed-1))), func(t *testing.T) {
			const n = 40
			prg := hash.NewPRG(seed)
			h := newHost(n)
			for step := 0; step < 30; step++ {
				if prg.Next()&1 == 0 || len(h.recs) == 0 {
					// Insert a batch of forest edges across distinct comps.
					labels, uf := h.components()
					batchUF := oracle.NewUnionFind(n)
					var batch []graph.Edge
					attempts := 0
					wantEdges := 1 + int(prg.NextN(6))
					for len(batch) < wantEdges && attempts < 200 {
						attempts++
						u := int(prg.NextN(n))
						v := int(prg.NextN(n))
						if u == v || labels[u] == labels[v] {
							continue
						}
						if uf.Find(u) == uf.Find(v) {
							continue
						}
						// The batch must stay a forest over comps: reject
						// edges whose comps were already linked this batch.
						if batchUF.Find(labels[u]) == batchUF.Find(labels[v]) {
							continue
						}
						batchUF.Union(labels[u], labels[v])
						uf.Union(u, v)
						batch = append(batch, graph.NewEdge(u, v))
					}
					if len(batch) == 0 {
						continue
					}
					if err := h.insertBatch(batch); err != nil {
						t.Fatalf("seed %d step %d insert %v: %v", seed, step, batch, err)
					}
				} else {
					// Delete a random batch of existing tree edges.
					edges := h.forestEdges()
					wantDel := 1 + int(prg.NextN(4))
					if wantDel > len(edges) {
						wantDel = len(edges)
					}
					picked := map[int]bool{}
					var batch []graph.Edge
					for len(batch) < wantDel {
						i := int(prg.NextN(uint64(len(edges))))
						if !picked[i] {
							picked[i] = true
							batch = append(batch, edges[i])
						}
					}
					if err := h.deleteBatch(batch); err != nil {
						t.Fatalf("seed %d step %d delete %v: %v", seed, step, batch, err)
					}
				}
				h.checkTours(t)
			}
		})
	}
}

// TestStatsConsistency checks that derived f/l stats describe a permutation
// consistent with occurrence counts: each vertex occurs 2*deg times.
func TestStatsConsistency(t *testing.T) {
	h := newHost(10)
	var edges []graph.Edge
	for v := 1; v < 10; v++ {
		edges = append(edges, graph.NewEdge(0, v)) // star
	}
	if err := h.insertBatch(edges); err != nil {
		t.Fatal(err)
	}
	deg := make(map[int]int)
	occ := make(map[int][]Pos)
	for _, r := range h.recs {
		deg[r.E.U]++
		deg[r.E.V]++
		for _, p := range r.UPos {
			occ[r.E.U] = append(occ[r.E.U], p)
		}
		for _, p := range r.VPos {
			occ[r.E.V] = append(occ[r.E.V], p)
		}
	}
	for v, positions := range occ {
		if len(positions) != 2*deg[v] {
			t.Errorf("vertex %d occurs %d times, want %d", v, len(positions), 2*deg[v])
		}
		sort.Ints(positions)
		st := h.stats(v)
		if st.F != positions[0] || st.L != positions[len(positions)-1] {
			t.Errorf("vertex %d stats [%d,%d], occurrences %v", v, st.F, st.L, positions)
		}
	}
}

func TestPlanSplitRejectsCrossingIntervals(t *testing.T) {
	// Two fabricated records whose outer intervals cross (impossible in a
	// real tour) must be rejected by the laminarity check rather than
	// producing a corrupt plan.
	a := Record{E: graph.NewEdge(0, 1), Tour: 5, UPos: [2]Pos{1, 8}, VPos: [2]Pos{2, 7}}
	b := Record{E: graph.NewEdge(2, 3), Tour: 5, UPos: [2]Pos{5, 12}, VPos: [2]Pos{6, 11}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := PlanSplit(map[TourID]int{5: 12}, []Record{a, b}, func() TourID { return 99 })
	if err == nil {
		t.Fatal("crossing intervals accepted")
	}
}

func TestPlanSplitRejectsOutOfRangePositions(t *testing.T) {
	a := Record{E: graph.NewEdge(0, 1), Tour: 5, UPos: [2]Pos{1, 4}, VPos: [2]Pos{2, 3}}
	if _, err := PlanSplit(map[TourID]int{5: 2}, []Record{a}, func() TourID { return 9 }); err == nil {
		t.Fatal("positions beyond tour length accepted")
	}
}
