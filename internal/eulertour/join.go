package eulertour

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CompInfo describes one component participating in a batch join: its key in
// the auxiliary graph H (the component id, i.e. the minimum vertex id of the
// component), its current tour (NoTour for singletons), and its vertex
// count.
type CompInfo struct {
	Key  int
	Tour TourID
	Size int
}

// CutQuery asks for the smallest occurrence of Vertex strictly greater than
// Cut, in the vertex's current tour (the stage-2 distributed query of the
// join).
type CutQuery struct {
	Vertex int
	Cut    Pos
}

// JoinResult is the compiled batch join: relabel descriptors to broadcast,
// fully-formed records for the newly inserted tree edges, and the new tours.
type JoinResult struct {
	Relabels   []Relabel
	NewRecords []Record
	Tours      []NewTour
}

// NewTour describes one tour created by the join.
type NewTour struct {
	Tour TourID
	Len  int
	// Comps lists the keys of the components merged into this tour.
	Comps []int
}

// attachment is one child component hanging off a host vertex.
type attachment struct {
	hostPos Pos // insertion point in the host comp's rooted coordinates
	hostV   int
	child   int // child comp key
	childV  int // attach terminal in the child comp
	e       graph.Edge
}

// JoinPlanner compiles a batch of forest-edge insertions (Section 6.1/6.2)
// into relabel descriptors. Usage is three-phased, mirroring the distributed
// queries the coordinator performs:
//
//	p, _ := NewJoinPlanner(comps, edges, compOf)
//	stats := query(p.Terminals())        // distributed f/l lookup, O(1) rounds
//	p.SetStats(stats)
//	more := query2(p.CutQueries())       // distributed min-above-cut lookup
//	p.SetMinAbove(more)
//	res, _ := p.Plan(nextTour)
//
// The planner is coordinator-local state: it runs on the driver goroutine
// between collective operations and is never captured by per-machine
// callbacks, so it needs no synchronization under a parallel execution
// engine (mpc.Config.Parallelism). Its outputs travel to the machines only
// through broadcasts.
type JoinPlanner struct {
	comps   map[int]CompInfo
	edges   []graph.Edge
	compOf  func(int) int
	parent  map[int]int         // child comp key -> parent comp key
	viaEdge map[int]graph.Edge  // child comp key -> the joining edge
	childs  map[int][]int       // comp key -> child comp keys
	roots   []int               // one root comp per connected group
	stats   map[int]VertexStats // stage 1
	cuts    map[int]Pos         // comp key -> rotation cut (0 = no rotation)
	minAb   map[int]Pos         // stage 2: vertex -> min occurrence above cut
	planned bool
}

// NewJoinPlanner validates the batch and computes the auxiliary-tree
// structure. comps are the participating components; edges are the new tree
// edges (each must connect two distinct participating components, and
// together they must form a forest over the components — the caller obtains
// them as the spanning forest F_H of the auxiliary graph H). compOf maps a
// vertex to its component key.
func NewJoinPlanner(comps []CompInfo, edges []graph.Edge, compOf func(int) int) (*JoinPlanner, error) {
	p := &JoinPlanner{
		comps:   make(map[int]CompInfo, len(comps)),
		edges:   edges,
		compOf:  compOf,
		parent:  make(map[int]int),
		viaEdge: make(map[int]graph.Edge),
		childs:  make(map[int][]int),
		cuts:    make(map[int]Pos),
	}
	for _, c := range comps {
		if c.Size < 1 {
			return nil, fmt.Errorf("eulertour: component %d has size %d", c.Key, c.Size)
		}
		if (c.Size == 1) != (c.Tour == NoTour) {
			return nil, fmt.Errorf("eulertour: component %d: size %d with tour %d", c.Key, c.Size, c.Tour)
		}
		if _, dup := p.comps[c.Key]; dup {
			return nil, fmt.Errorf("eulertour: duplicate component key %d", c.Key)
		}
		p.comps[c.Key] = c
	}
	// Build the comp-level forest with union-find to orient each group from
	// a deterministic root (the smallest comp key in the group).
	adj := make(map[int][]int)
	edgeOf := make(map[[2]int]graph.Edge)
	for _, e := range edges {
		a, b := compOf(e.U), compOf(e.V)
		if a == b {
			return nil, fmt.Errorf("eulertour: join edge %v within one component", e)
		}
		if _, ok := p.comps[a]; !ok {
			return nil, fmt.Errorf("eulertour: edge %v touches unknown component %d", e, a)
		}
		if _, ok := p.comps[b]; !ok {
			return nil, fmt.Errorf("eulertour: edge %v touches unknown component %d", e, b)
		}
		if _, dup := edgeOf[[2]int{min(a, b), max(a, b)}]; dup {
			return nil, fmt.Errorf("eulertour: parallel join edges between components %d and %d", a, b)
		}
		edgeOf[[2]int{min(a, b), max(a, b)}] = e
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// Root each connected group at its smallest comp key and orient.
	keys := make([]int, 0, len(p.comps))
	for k := range p.comps {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	seen := make(map[int]bool)
	for _, root := range keys {
		if seen[root] {
			continue
		}
		p.roots = append(p.roots, root)
		stack := []int{root}
		seen[root] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbrs := append([]int(nil), adj[cur]...)
			sort.Ints(nbrs)
			for _, nb := range nbrs {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				p.parent[nb] = cur
				p.viaEdge[nb] = edgeOf[[2]int{min(cur, nb), max(cur, nb)}]
				p.childs[cur] = append(p.childs[cur], nb)
				stack = append(stack, nb)
			}
		}
	}
	// A forest over comps must have exactly len(comps)-#groups edges.
	if len(edges) != len(p.comps)-len(p.roots) {
		return nil, fmt.Errorf("eulertour: %d join edges do not form a forest over %d components (%d groups)",
			len(edges), len(p.comps), len(p.roots))
	}
	return p, nil
}

// Terminals returns the vertices whose occurrence stats (F, L) must be
// queried before planning: every endpoint of every join edge.
func (p *JoinPlanner) Terminals() []int {
	set := make(map[int]bool)
	for _, e := range p.edges {
		set[e.U] = true
		set[e.V] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// attachTerminal returns, for a non-root comp, the vertex by which it hangs
// from its parent.
func (p *JoinPlanner) attachTerminal(comp int) int {
	e := p.viaEdge[comp]
	if p.compOf(e.U) == comp {
		return e.U
	}
	return e.V
}

// SetStats supplies the stage-1 occurrence stats for all Terminals.
func (p *JoinPlanner) SetStats(stats map[int]VertexStats) error {
	for _, v := range p.Terminals() {
		if _, ok := stats[v]; !ok {
			return fmt.Errorf("eulertour: missing stats for terminal %d", v)
		}
	}
	p.stats = stats
	// Compute each non-root comp's rotation cut: l(attach terminal), unless
	// the terminal is already the root (F == 1) or the comp is a singleton.
	for comp := range p.parent {
		info := p.comps[comp]
		if info.Size == 1 {
			continue
		}
		t := p.attachTerminal(comp)
		st := p.stats[t]
		if st.F == 1 {
			continue // already rooted at the attach terminal
		}
		p.cuts[comp] = st.L
	}
	return nil
}

// CutQueries returns the stage-2 queries: for every terminal that hosts an
// attachment inside a rotated component, the smallest occurrence above the
// component's rotation cut is needed to place the attachment in rotated
// coordinates.
func (p *JoinPlanner) CutQueries() []CutQuery {
	if p.stats == nil {
		panic("eulertour: CutQueries before SetStats")
	}
	var out []CutQuery
	seen := make(map[int]bool)
	for child, par := range p.parent {
		cut, rotated := p.cuts[par]
		if !rotated {
			continue
		}
		host := p.hostVertex(child)
		if host == p.attachTerminal(par) || seen[host] {
			continue // the rotation root maps to position 0; no query needed
		}
		seen[host] = true
		out = append(out, CutQuery{Vertex: host, Cut: cut})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	return out
}

// hostVertex returns the endpoint of child's joining edge that lies in the
// parent component.
func (p *JoinPlanner) hostVertex(child int) int {
	e := p.viaEdge[child]
	if p.compOf(e.U) == child {
		return e.V
	}
	return e.U
}

// SetMinAbove supplies the stage-2 results keyed by vertex.
func (p *JoinPlanner) SetMinAbove(minAbove map[int]Pos) {
	p.minAb = minAbove
}

// hostPos returns the insertion point of an attachment hosted at vertex v
// inside component comp, in comp's rooted (possibly rotated) coordinates.
// Position 0 means "before the first position" and is used when the host is
// the comp's root in the final orientation.
func (p *JoinPlanner) hostPos(comp, v int) (Pos, error) {
	info := p.comps[comp]
	if info.Size == 1 {
		return 0, nil
	}
	st, ok := p.stats[v]
	if !ok {
		return 0, fmt.Errorf("eulertour: no stats for host %d", v)
	}
	cut, rotated := p.cuts[comp]
	if !rotated {
		// Unrotated coordinates: the original root (F == 1) hosts at 0; any
		// other vertex hosts after its first occurrence, which is the head
		// of its entering dart.
		if st.F == 1 {
			return 0, nil
		}
		return st.F, nil
	}
	if v == p.attachTerminal(comp) {
		return 0, nil // the rotation makes v the root
	}
	ma, ok := p.minAb[v]
	if !ok {
		return 0, fmt.Errorf("eulertour: missing min-above-cut for host %d", v)
	}
	L := TourLen(info.Size)
	if ma > 0 {
		return ma - cut + 1, nil
	}
	return st.F + L - cut + 1, nil
}

// Plan compiles the join. nextTour must return fresh, never-reused tour ids.
func (p *JoinPlanner) Plan(nextTour func() TourID) (*JoinResult, error) {
	if p.planned {
		return nil, fmt.Errorf("eulertour: Plan called twice")
	}
	if p.stats == nil {
		return nil, fmt.Errorf("eulertour: Plan before SetStats")
	}
	p.planned = true
	res := &JoinResult{}
	for _, root := range p.roots {
		if len(p.childs[root]) == 0 {
			// A component no join edge touches: nothing to do.
			continue
		}
		if err := p.planGroup(root, nextTour, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// planGroup emits relabels, records and tour info for one connected group.
func (p *JoinPlanner) planGroup(root int, nextTour func() TourID, res *JoinResult) error {
	tour := nextTour()
	cursor := Pos(1)
	var compKeys []int
	totalSize := 0
	var emit func(comp int) error
	emit = func(comp int) error {
		compKeys = append(compKeys, comp)
		info := p.comps[comp]
		totalSize += info.Size
		L := TourLen(info.Size)
		// Collect attachments.
		var atts []attachment
		for _, child := range p.childs[comp] {
			hv := p.hostVertex(child)
			hp, err := p.hostPos(comp, hv)
			if err != nil {
				return err
			}
			atts = append(atts, attachment{
				hostPos: hp,
				hostV:   hv,
				child:   child,
				childV:  p.attachTerminal(child),
				e:       p.viaEdge[child],
			})
		}
		sort.Slice(atts, func(i, j int) bool {
			if atts[i].hostPos != atts[j].hostPos {
				return atts[i].hostPos < atts[j].hostPos
			}
			if atts[i].hostV != atts[j].hostV {
				return atts[i].hostV < atts[j].hostV
			}
			return atts[i].child < atts[j].child
		})
		cut := p.cuts[comp] // 0 when unrotated
		emitSegment := func(lo, hi Pos) {
			if lo > hi {
				return
			}
			delta := cursor - lo
			p.emitRelabels(res, info.Tour, L, cut, lo, hi, tour, delta)
			cursor += hi - lo + 1
		}
		prev := Pos(1)
		for _, a := range atts {
			if a.hostPos >= prev {
				emitSegment(prev, a.hostPos)
				prev = a.hostPos + 1
			}
			// Descending dart host -> child terminal.
			descTail := cursor
			cursor += 2
			if err := emit(a.child); err != nil {
				return err
			}
			// Returning dart child terminal -> host.
			retTail := cursor
			cursor += 2
			rec := Record{E: a.e.Canonical(), Tour: tour}
			hostPositions := sorted2(descTail, retTail+1)
			termPositions := sorted2(descTail+1, retTail)
			if rec.E.U == a.hostV {
				rec.UPos, rec.VPos = hostPositions, termPositions
			} else {
				rec.UPos, rec.VPos = termPositions, hostPositions
			}
			res.NewRecords = append(res.NewRecords, rec)
		}
		emitSegment(prev, L)
		return nil
	}
	if err := emit(root); err != nil {
		return err
	}
	wantLen := TourLen(totalSize)
	if int(cursor)-1 != wantLen {
		return fmt.Errorf("eulertour: join of group %d produced length %d, want %d", root, cursor-1, wantLen)
	}
	sort.Ints(compKeys)
	res.Tours = append(res.Tours, NewTour{Tour: tour, Len: wantLen, Comps: compKeys})
	return nil
}

// emitRelabels maps the segment [lo, hi] of a comp's rooted coordinates
// (with rotation cut `cut`; 0 = unrotated) back to old coordinates and
// appends the resulting descriptors: final position = rooted + delta.
func (p *JoinPlanner) emitRelabels(res *JoinResult, old TourID, l int, cut, lo, hi Pos, newTour TourID, delta int) {
	if old == NoTour {
		return
	}
	if cut == 0 {
		res.Relabels = append(res.Relabels, Relabel{OldTour: old, Lo: lo, Hi: hi, NewTour: newTour, Delta: delta})
		return
	}
	// Rotation: rooted = old - cut + 1 for old in [cut, L];
	//           rooted = old + L - cut + 1 for old in [1, cut-1].
	if lo2, hi2 := max(lo+cut-1, cut), min(hi+cut-1, l); lo2 <= hi2 {
		res.Relabels = append(res.Relabels, Relabel{
			OldTour: old, Lo: lo2, Hi: hi2, NewTour: newTour, Delta: delta + 1 - cut,
		})
	}
	shift := l - cut + 1
	if lo2, hi2 := max(lo-shift, 1), min(hi-shift, cut-1); lo2 <= hi2 {
		res.Relabels = append(res.Relabels, Relabel{
			OldTour: old, Lo: lo2, Hi: hi2, NewTour: newTour, Delta: delta + shift,
		})
	}
}
