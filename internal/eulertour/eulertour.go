// Package eulertour implements distributed Euler-tour forests, the data
// structure at the heart of the paper's connectivity algorithm (Sections 5
// and 6). Each tree of the maintained spanning forest is represented by an
// Euler tour: a closed walk traversing every tree edge once in each
// direction. The tour of a tree T rooted at r is a sequence of 2(|T|-1)
// darts; each dart occupies two consecutive positions (tail vertex, then
// head vertex), so the position space is 1..L with L = 4(|T|-1), matching
// the paper's convention that each vertex v occurs 2*deg_T(v) times.
//
// The distributed truth is a set of per-edge Records, each holding the four
// positions of its two darts. Everything else is derived:
//
//   - f(v) and l(v), the first and last occurrence of v, are min/max
//     aggregates over v's incident records;
//   - the child side of an edge is the endpoint whose two positions form the
//     inner interval, and that endpoint's positions on the record are its
//     global f and l;
//   - subtree membership and path membership (Lemma 7.2) are interval
//     predicates on (f, l) pairs.
//
// Batch operations (Section 6) are compiled by coordinator-side planners
// (see join.go and split.go) into O(k) Relabel descriptors plus O(k) new
// darts; machines apply descriptors locally to the records they hold, which
// is exactly the broadcast-and-remap mechanism of the paper.
package eulertour

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Pos is a 1-indexed position in a tour.
type Pos = int

// TourID identifies one Euler tour (one tree of the forest). IDs are
// assigned from a monotone counter and never reused. The zero value marks
// "no tour" (singleton components have no positions and no tour).
type TourID uint64

// NoTour is the TourID of singleton components.
const NoTour TourID = 0

// TourLen returns the tour length of a tree with size vertices.
func TourLen(size int) int {
	if size <= 1 {
		return 0
	}
	return 4 * (size - 1)
}

// Record is the distributed representation of one tree edge: the four tour
// positions of its two darts. UPos and VPos hold the positions at which the
// canonical endpoints U and V occur, each sorted ascending. The four
// positions always consist of two consecutive pairs (p, p+1) and (q, q+1)
// with p+1 < q, one dart descending into the child endpoint and one
// returning.
type Record struct {
	E    graph.Edge
	Tour TourID
	UPos [2]Pos
	VPos [2]Pos
}

// Words returns the record's size in machine words (edge endpoints, tour,
// four positions).
func (r *Record) Words() int { return 7 }

// Validate checks the record's structural invariants.
func (r *Record) Validate() error {
	all := []Pos{r.UPos[0], r.UPos[1], r.VPos[0], r.VPos[1]}
	sort.Ints(all)
	if all[0]+1 != all[1] || all[2]+1 != all[3] {
		return fmt.Errorf("eulertour: positions %v do not form two dart pairs", all)
	}
	if all[1] >= all[2] {
		return fmt.Errorf("eulertour: dart pairs %v overlap", all)
	}
	if r.UPos[0] > r.UPos[1] || r.VPos[0] > r.VPos[1] {
		return fmt.Errorf("eulertour: unsorted endpoint positions %v %v", r.UPos, r.VPos)
	}
	// Each dart pair must contain exactly one occurrence of each endpoint.
	inFirst := func(p Pos) bool { return p == all[0] || p == all[1] }
	u1 := 0
	if inFirst(r.UPos[0]) {
		u1++
	}
	if inFirst(r.UPos[1]) {
		u1++
	}
	if u1 != 1 {
		return fmt.Errorf("eulertour: endpoint U occurs %d times in first dart", u1)
	}
	return nil
}

// Child returns the child-side endpoint: the one whose occurrences form the
// inner interval. Its first position is the global f of that vertex and its
// last position is the global l (the entering dart's head is the child's
// first occurrence overall; the returning dart's tail is its last).
func (r *Record) Child() int {
	if r.UPos[0] > r.VPos[0] {
		return r.E.U
	}
	return r.E.V
}

// Parent returns the parent-side endpoint.
func (r *Record) Parent() int { return r.E.Other(r.Child()) }

// ChildF returns the child's first occurrence (its global f).
func (r *Record) ChildF() Pos { return max(r.UPos[0], r.VPos[0]) }

// ChildL returns the child's last occurrence (its global l).
func (r *Record) ChildL() Pos { return min(r.UPos[1], r.VPos[1]) }

// PositionsOf returns the two positions of endpoint w on this record.
func (r *Record) PositionsOf(w int) [2]Pos {
	switch w {
	case r.E.U:
		return r.UPos
	case r.E.V:
		return r.VPos
	default:
		panic(fmt.Sprintf("eulertour: vertex %d not on record %v", w, r.E))
	}
}

// Relabel is a position-remapping descriptor: every position p of tour
// OldTour with Lo <= p <= Hi moves to position p+Delta of tour NewTour.
// Batch operations broadcast O(k) of these and machines apply them locally.
type Relabel struct {
	OldTour TourID
	Lo, Hi  Pos
	NewTour TourID
	Delta   int
}

// Words returns the descriptor size in machine words.
func (r Relabel) Words() int { return 5 }

// RelabelSet indexes relabel descriptors for application. Machines build one
// from the broadcast batch and apply it to every local record position.
type RelabelSet struct {
	byTour map[TourID][]Relabel
}

// NewRelabelSet indexes the descriptors by tour, sorted by Lo.
func NewRelabelSet(rs []Relabel) *RelabelSet {
	s := &RelabelSet{byTour: make(map[TourID][]Relabel)}
	for _, r := range rs {
		s.byTour[r.OldTour] = append(s.byTour[r.OldTour], r)
	}
	for id := range s.byTour {
		list := s.byTour[id]
		sort.Slice(list, func(i, j int) bool { return list[i].Lo < list[j].Lo })
	}
	return s
}

// Map returns the new (tour, position) of position p in tour t. Positions
// not covered by any descriptor are unchanged; covered positions move.
func (s *RelabelSet) Map(t TourID, p Pos) (TourID, Pos) {
	list := s.byTour[t]
	i := sort.Search(len(list), func(i int) bool { return list[i].Hi >= p })
	if i < len(list) && list[i].Lo <= p {
		return list[i].NewTour, p + list[i].Delta
	}
	return t, p
}

// Covers reports whether position p of tour t is covered by a descriptor.
func (s *RelabelSet) Covers(t TourID, p Pos) bool {
	list := s.byTour[t]
	i := sort.Search(len(list), func(i int) bool { return list[i].Hi >= p })
	return i < len(list) && list[i].Lo <= p
}

// Touches reports whether any descriptor refers to tour t.
func (s *RelabelSet) Touches(t TourID) bool { return len(s.byTour[t]) > 0 }

// ApplyToRecord rewrites all four positions (and the tour id) of rec. All
// four positions of a surviving record always map into the same new tour;
// Apply validates this and reports a corrupted plan otherwise.
func (s *RelabelSet) ApplyToRecord(rec *Record) error {
	t0, u0 := s.Map(rec.Tour, rec.UPos[0])
	t1, u1 := s.Map(rec.Tour, rec.UPos[1])
	t2, v0 := s.Map(rec.Tour, rec.VPos[0])
	t3, v1 := s.Map(rec.Tour, rec.VPos[1])
	if t0 != t1 || t1 != t2 || t2 != t3 {
		return fmt.Errorf("eulertour: record %v split across tours by relabel", rec.E)
	}
	rec.Tour = t0
	rec.UPos = sorted2(u0, u1)
	rec.VPos = sorted2(v0, v1)
	return nil
}

func sorted2(a, b Pos) [2]Pos {
	if a > b {
		a, b = b, a
	}
	return [2]Pos{a, b}
}

// VertexStats are the on-demand aggregates of one vertex's occurrences used
// by the planners: its tour, first and last occurrence, and (for join
// rotation) the smallest occurrence strictly greater than a cut.
type VertexStats struct {
	Tour TourID
	// F and L are the global first/last occurrences (0 if the vertex is a
	// singleton with no incident tree edges).
	F, L Pos
	// MinAbove is the smallest occurrence > the queried cut, or 0 if none.
	// Only meaningful when a cut query was issued.
	MinAbove Pos
}

// InSubtree reports whether vertex w (with occurrences spanning [fw, lw])
// lies in the subtree rooted at the child vertex whose occurrence interval
// is [fc, lc].
func InSubtree(fc, lc, fw, lw Pos) bool { return fc <= fw && lw <= lc }

// OnPath reports whether a tree edge whose child side has occurrence
// interval [fc, lc] lies on the unique tree path between u (interval
// [fu, lu]) and v (interval [fv, lv]). The edge is on the path iff exactly
// one of u, v lies in the child's subtree (Lemma 7.2, restated as an XOR of
// interval containments).
func OnPath(fc, lc, fu, lu, fv, lv Pos) bool {
	return InSubtree(fc, lc, fu, lu) != InSubtree(fc, lc, fv, lv)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
