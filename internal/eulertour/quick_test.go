package eulertour

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hash"
)

// TestQuickRelabelSetDisjointCoverage: for randomly generated disjoint
// descriptor sets, Map must move exactly the covered positions and Covers
// must agree with interval membership.
func TestQuickRelabelSetDisjointCoverage(t *testing.T) {
	prg := hash.NewPRG(1)
	f := func(seed uint64) bool {
		local := hash.NewPRG(seed ^ prg.Next())
		// Build 1..6 disjoint intervals over [1, 200].
		var rs []Relabel
		pos := Pos(1)
		for i := 0; i < int(local.NextN(6))+1 && pos < 190; i++ {
			lo := pos + Pos(local.NextN(10))
			hi := lo + Pos(local.NextN(15))
			if hi > 200 {
				hi = 200
			}
			rs = append(rs, Relabel{
				OldTour: 1, Lo: lo, Hi: hi,
				NewTour: TourID(2 + local.NextN(3)),
				Delta:   int(local.NextN(40)) - 20,
			})
			pos = hi + 1 + Pos(local.NextN(5))
		}
		set := NewRelabelSet(rs)
		for p := Pos(1); p <= 200; p++ {
			inSome := false
			for _, r := range rs {
				if p >= r.Lo && p <= r.Hi {
					inSome = true
					tr, np := set.Map(1, p)
					if tr != r.NewTour || np != p+r.Delta {
						return false
					}
				}
			}
			if set.Covers(1, p) != inSome {
				return false
			}
			if !inSome {
				if tr, np := set.Map(1, p); tr != 1 || np != p {
					return false
				}
			}
			// Positions of other tours are never touched.
			if tr, np := set.Map(9, p); tr != 9 || np != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinSplitInverse: joining a random batch of edges and then
// cutting the same edges must restore the original component structure, for
// arbitrary seeds.
func TestQuickJoinSplitInverse(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 20
		prg := hash.NewPRG(seed)
		h := newHost(n)
		// Phase 1: build a random forest.
		for v := 1; v < n; v++ {
			if prg.Next()&1 == 0 {
				u := int(prg.NextN(uint64(v)))
				if err := h.insertBatch([]graph.Edge{graph.NewEdge(u, v)}); err != nil {
					return false
				}
			}
		}
		before, _ := h.components()
		// Phase 2: join a batch of cross-component edges.
		labels, uf := h.components()
		var batch []graph.Edge
		for attempts := 0; attempts < 50 && len(batch) < 4; attempts++ {
			u := int(prg.NextN(n))
			v := int(prg.NextN(n))
			if u == v || labels[u] == labels[v] || uf.Find(u) == uf.Find(v) {
				continue
			}
			uf.Union(u, v)
			batch = append(batch, graph.NewEdge(u, v))
		}
		if len(batch) == 0 {
			return true
		}
		if err := h.insertBatch(batch); err != nil {
			return false
		}
		// Phase 3: cut the same edges; components must match phase 1.
		if err := h.deleteBatch(batch); err != nil {
			return false
		}
		after, _ := h.components()
		for v := range before {
			if before[v] != after[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecordChildConsistency: for any valid record layout, the child's
// interval is strictly inside the parent's.
func TestQuickRecordChildConsistency(t *testing.T) {
	f := func(gapRaw, lenRaw uint8) bool {
		gap := Pos(gapRaw%50) + 1
		inner := Pos(lenRaw % 40)
		// Construct darts (p, p+1) and (q, q+1) with q = p+1+inner+1.
		p := gap
		q := p + 2 + inner
		r := Record{
			E: graph.NewEdge(0, 1), Tour: 1,
			UPos: [2]Pos{p, q + 1},
			VPos: [2]Pos{p + 1, q},
		}
		if err := r.Validate(); err != nil {
			return false
		}
		if r.Child() != 1 || r.Parent() != 0 {
			return false
		}
		return r.ChildF() == p+1 && r.ChildL() == q &&
			InSubtree(r.ChildF(), r.ChildL(), r.ChildF(), r.ChildL())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
