package eulertour

import (
	"fmt"
	"sort"
)

// Fragment describes one tree produced by a batch split.
type Fragment struct {
	// Tour is the fragment's tour id, or NoTour when the fragment is a
	// single vertex (no positions remain).
	Tour TourID
	// OldTour is the tour the fragment came from.
	OldTour TourID
	// Len is the fragment's tour length: 4*(size-1).
	Len int
	// Root is the fragment's root vertex when known: the child endpoint of
	// the deleted edge that carved it out, or -1 for the residual root
	// fragment of each old tour (whose root is the old tour's root, which
	// the planner does not know).
	Root int
}

// SplitResult is the compiled batch split: relabel descriptors covering all
// surviving positions, and the produced fragments. The positions of the
// deleted records themselves are covered by no descriptor; callers drop
// those records before applying the relabels.
type SplitResult struct {
	Relabels  []Relabel
	Fragments []Fragment
}

// PlanSplit compiles the deletion of a batch of tree edges (Section 6.3's
// inverse Euler-tour procedure). tourLens gives the current length of every
// tour that loses at least one edge; deleted holds copies of the records
// being removed. nextTour must return fresh tour ids.
//
// Each deleted record's child side roots a new fragment whose tour is the
// child's old occurrence interval with deeper deletions cut out and the
// remaining runs concatenated; the residual positions of the old tour form
// the root fragment. The descriptors are O(k) in number for k deletions.
func PlanSplit(tourLens map[TourID]int, deleted []Record, nextTour func() TourID) (*SplitResult, error) {
	byTour := make(map[TourID][]Record)
	for _, r := range deleted {
		if r.Tour == NoTour {
			return nil, fmt.Errorf("eulertour: deleted record %v has no tour", r.E)
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		byTour[r.Tour] = append(byTour[r.Tour], r)
	}
	res := &SplitResult{}
	// Deterministic tour order.
	tours := make([]TourID, 0, len(byTour))
	for t := range byTour {
		tours = append(tours, t)
	}
	sort.Slice(tours, func(i, j int) bool { return tours[i] < tours[j] })
	for _, t := range tours {
		l, ok := tourLens[t]
		if !ok {
			return nil, fmt.Errorf("eulertour: no length for tour %d", t)
		}
		if err := planSplitOne(t, l, byTour[t], nextTour, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// nestNode is one deleted edge in the laminar nesting tree of one old tour.
type nestNode struct {
	rec      Record
	outerLo  Pos // child's f - 1 (tail of the descending dart)
	outerHi  Pos // child's l + 1 (head of the returning dart)
	children []*nestNode
}

func planSplitOne(t TourID, l int, recs []Record, nextTour func() TourID, res *SplitResult) error {
	nodes := make([]*nestNode, len(recs))
	for i, r := range recs {
		nodes[i] = &nestNode{rec: r, outerLo: r.ChildF() - 1, outerHi: r.ChildL() + 1}
		if nodes[i].outerLo < 1 || nodes[i].outerHi > l {
			return fmt.Errorf("eulertour: record %v positions out of tour range [1,%d]", r.E, l)
		}
	}
	// Sort by outerLo ascending, outerHi descending: parents precede
	// children, siblings left to right.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].outerLo != nodes[j].outerLo {
			return nodes[i].outerLo < nodes[j].outerLo
		}
		return nodes[i].outerHi > nodes[j].outerHi
	})
	var top []*nestNode
	var stack []*nestNode
	for _, nd := range nodes {
		for len(stack) > 0 && stack[len(stack)-1].outerHi < nd.outerLo {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			top = append(top, nd)
		} else {
			parent := stack[len(stack)-1]
			if nd.outerHi > parent.outerHi {
				return fmt.Errorf("eulertour: deleted intervals [%d,%d] and [%d,%d] cross",
					parent.outerLo, parent.outerHi, nd.outerLo, nd.outerHi)
			}
			parent.children = append(parent.children, nd)
		}
		stack = append(stack, nd)
	}
	total := 0
	// emitFragment lays out the positions [lo, hi] of the old tour, minus
	// the outer intervals of the given children, as a fresh tour.
	var emitFragment func(lo, hi Pos, children []*nestNode, root int) error
	emitFragment = func(lo, hi Pos, children []*nestNode, root int) error {
		frag := Fragment{OldTour: t, Root: root}
		cursor := Pos(1)
		prev := lo
		var relabels []Relabel
		for _, ch := range children {
			if ch.outerLo-1 >= prev {
				relabels = append(relabels, Relabel{
					OldTour: t, Lo: prev, Hi: ch.outerLo - 1, Delta: cursor - prev,
				})
				cursor += ch.outerLo - 1 - prev + 1
			}
			prev = ch.outerHi + 1
			if err := emitFragment(ch.outerLo+2, ch.outerHi-2, ch.children, ch.rec.Child()); err != nil {
				return err
			}
		}
		if hi >= prev {
			relabels = append(relabels, Relabel{OldTour: t, Lo: prev, Hi: hi, Delta: cursor - prev})
			cursor += hi - prev + 1
		}
		frag.Len = int(cursor) - 1
		if frag.Len > 0 {
			frag.Tour = nextTour()
			for i := range relabels {
				relabels[i].NewTour = frag.Tour
			}
			res.Relabels = append(res.Relabels, relabels...)
		} else {
			frag.Tour = NoTour
		}
		total += frag.Len
		res.Fragments = append(res.Fragments, frag)
		return nil
	}
	if err := emitFragment(1, l, top, -1); err != nil {
		return err
	}
	if want := l - 4*len(recs); total != want {
		return fmt.Errorf("eulertour: split of tour %d kept %d positions, want %d", t, total, want)
	}
	return nil
}
