package hash

import "testing"

// FuzzPRGDeterminism fuzzes the reproducibility contract everything in the
// repository leans on: the same seed must yield the same stream through
// Next, NextN (always in range), Fork, and the hash families drawn from
// the stream. A violation here would silently break golden traces,
// scenario replay, and the parallelism-determinism guarantees.
func FuzzPRGDeterminism(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(4))
	f.Add(uint64(1), uint64(7), uint64(16))
	f.Add(uint64(0xdeadbeef), uint64(1)<<40, uint64(64))
	f.Add(^uint64(0), ^uint64(0), uint64(3))
	f.Fuzz(func(t *testing.T, seed, n, steps uint64) {
		steps = steps%256 + 1
		a, b := NewPRG(seed), NewPRG(seed)
		for i := uint64(0); i < steps; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("step %d: Next diverged (%d vs %d)", i, x, y)
			}
		}
		if n > 0 {
			a, b = NewPRG(seed), NewPRG(seed)
			for i := uint64(0); i < steps%8+1; i++ {
				x, y := a.NextN(n), b.NextN(n)
				if x != y {
					t.Fatalf("step %d: NextN diverged (%d vs %d)", i, x, y)
				}
				if x >= n {
					t.Fatalf("NextN(%d) = %d out of range", n, x)
				}
			}
		}
		if x, y := NewPRG(seed).Fork().Next(), NewPRG(seed).Fork().Next(); x != y {
			t.Fatalf("forked streams diverged (%d vs %d)", x, y)
		}
		f1 := NewFamily(4, NewPRG(seed))
		f2 := NewFamily(4, NewPRG(seed))
		if x, y := f1.Hash(n), f2.Hash(n); x != y {
			t.Fatalf("family hash diverged (%d vs %d)", x, y)
		}
		if h := f1.Hash(n); h >= Prime {
			t.Fatalf("Hash(%d) = %d >= Prime", n, h)
		}
		if n > 0 {
			if h := f1.HashRange(seed, n); h >= n {
				t.Fatalf("HashRange(%d, %d) = %d out of range", seed, n, h)
			}
		}
	})
}
