package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulModSmall(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{Prime - 1, 1, Prime - 1},
		{2, 3, 6},
		{Prime - 1, 2, Prime - 2}, // (p-1)*2 = 2p-2 ≡ p-2
	}
	for _, c := range cases {
		if got := mulMod(c.a, c.b); got != c.want {
			t.Errorf("mulMod(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulModAgainstBigArithmetic(t *testing.T) {
	prg := NewPRG(1)
	for i := 0; i < 2000; i++ {
		a := prg.NextN(Prime)
		b := prg.NextN(Prime)
		hi, lo := mul64(a, b)
		// Compute (hi*2^64 + lo) mod Prime by repeated Mersenne folding
		// using only uint64 arithmetic: 2^64 ≡ 2^3 (mod 2^61-1).
		want := foldMod(hi, lo)
		if got := mulMod(a, b); got != want {
			t.Fatalf("mulMod(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

// foldMod reduces hi*2^64 + lo modulo Prime using an independent method from
// the implementation under test.
func foldMod(hi, lo uint64) uint64 {
	// hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1), but hi*8 can
	// overflow only if hi >= 2^61 which cannot happen for products of
	// inputs < 2^61. Still, fold twice for safety.
	v := lo&Prime + lo>>61 + hi<<3&Prime + hi>>58
	for v >= Prime {
		v -= Prime
	}
	return v
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPRGDeterminism(t *testing.T) {
	a, b := NewPRG(42), NewPRG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed PRGs diverged")
		}
	}
	c := NewPRG(43)
	same := 0
	a = NewPRG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed PRGs agreed on %d of 100 outputs", same)
	}
}

func TestPRGNextNInRange(t *testing.T) {
	prg := NewPRG(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40, Prime} {
		for i := 0; i < 50; i++ {
			if v := prg.NextN(n); v >= n {
				t.Fatalf("NextN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestPRGNextNZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextN(0) did not panic")
		}
	}()
	NewPRG(1).NextN(0)
}

func TestPRGFork(t *testing.T) {
	parent := NewPRG(5)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Next() == f2.Next() {
		t.Error("sibling forks produced identical first output")
	}
}

func TestFamilyDeterminism(t *testing.T) {
	f := NewFourwise(NewPRG(9))
	for i := uint64(0); i < 100; i++ {
		if f.Hash(i) != f.Hash(i) {
			t.Fatal("Family.Hash is not a function")
		}
	}
}

func TestFamilyRange(t *testing.T) {
	f := NewPairwise(NewPRG(11))
	if err := quick.Check(func(x uint64) bool {
		return f.Hash(x) < Prime
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(x uint64) bool {
		return f.HashRange(x, 1000) < 1000
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFamilyPairwiseUniformity(t *testing.T) {
	// Chi-squared style sanity check: bucket 64k keys into 16 buckets and
	// require each bucket to be within 20% of the mean.
	f := NewPairwise(NewPRG(13))
	const keys, buckets = 1 << 16, 16
	counts := make([]int, buckets)
	for i := uint64(0); i < keys; i++ {
		counts[f.HashRange(i, buckets)]++
	}
	mean := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 0.2*mean {
			t.Errorf("bucket %d has %d keys, mean %.0f", b, c, mean)
		}
	}
}

func TestFamilyCollisionProbability(t *testing.T) {
	// For pairwise independent h into [m], P[h(x)=h(y)] ≈ 1/m. Estimate over
	// many family draws for one fixed pair.
	prg := NewPRG(17)
	const trials, m = 4000, 64
	coll := 0
	for i := 0; i < trials; i++ {
		f := NewPairwise(prg)
		if f.HashRange(1, m) == f.HashRange(2, m) {
			coll++
		}
	}
	got := float64(coll) / trials
	if got > 3.0/m {
		t.Errorf("collision rate %.4f, want about %.4f", got, 1.0/m)
	}
}

func TestLevelDistribution(t *testing.T) {
	// Level i should occur with probability about 2^-(i+1).
	f := NewFourwise(NewPRG(19))
	const keys = 1 << 16
	counts := make([]int, 20)
	for i := uint64(0); i < keys; i++ {
		counts[f.Level(i, 19)]++
	}
	for lvl := 0; lvl <= 6; lvl++ {
		want := float64(keys) / float64(uint64(2)<<uint(lvl))
		got := float64(counts[lvl])
		if got < 0.7*want || got > 1.3*want {
			t.Errorf("level %d count %.0f, want about %.0f", lvl, got, want)
		}
	}
}

func TestLevelCap(t *testing.T) {
	f := NewFourwise(NewPRG(23))
	for i := uint64(0); i < 1000; i++ {
		if l := f.Level(i, 3); l < 0 || l > 3 {
			t.Fatalf("Level out of cap: %d", l)
		}
	}
}

func TestNewFamilyPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0) did not panic")
		}
	}()
	NewFamily(0, NewPRG(1))
}

func TestFamilyWords(t *testing.T) {
	f := NewFamily(4, NewPRG(1))
	if f.Words() != 4 {
		t.Errorf("Words() = %d, want 4", f.Words())
	}
}
