// Package hash provides k-wise independent hash families and a small
// deterministic PRG. All randomized components in this repository draw their
// randomness through this package so that runs are reproducible and the
// update adversary is oblivious (its choices are fixed before the algorithm's
// seeds are drawn).
//
// The families evaluate degree-(k-1) polynomials over the prime field
// F_p with p = 2^61 - 1 (a Mersenne prime), which supports fast modular
// reduction without division.
package hash

import "fmt"

// Prime is the Mersenne prime 2^61 - 1 used as the field modulus for all
// polynomial hash families in this package.
const Prime uint64 = (1 << 61) - 1

// mulMod returns (a*b) mod Prime using 128-bit intermediate arithmetic and
// Mersenne reduction.
func mulMod(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// a, b < 2^61, so the product fits in 122 bits.
	// Split product as hi*2^64 + lo and reduce modulo 2^61-1 using
	// 2^61 ≡ 1 (mod p).
	res := (lo & Prime) + (lo>>61 | hi<<3)
	if res >= Prime {
		res -= Prime
	}
	return res
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// addMod returns (a+b) mod Prime for a, b < Prime.
func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= Prime {
		s -= Prime
	}
	return s
}

// PRG is a splitmix64 pseudo-random generator. It is deliberately minimal:
// the repository needs reproducible streams of 64-bit words, not
// cryptographic strength. The zero value is a valid generator seeded with 0.
type PRG struct {
	state uint64
}

// NewPRG returns a PRG seeded with seed.
func NewPRG(seed uint64) *PRG {
	return &PRG{state: seed}
}

// Next returns the next 64-bit word of the stream.
func (p *PRG) Next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NextN returns a uniform value in [0, n). n must be positive.
func (p *PRG) NextN(n uint64) uint64 {
	if n == 0 {
		panic("hash: NextN with n = 0")
	}
	// Rejection sampling to avoid modulo bias; the loop terminates quickly
	// because the acceptance probability is at least 1/2.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := p.Next()
		if v < limit {
			return v % n
		}
	}
}

// Fork returns a new PRG whose stream is a deterministic function of the
// parent stream, letting callers derive independent sub-streams.
func (p *PRG) Fork() *PRG {
	return NewPRG(p.Next())
}

// Family is a k-wise independent hash family member mapping uint64 keys to
// [0, Prime). It evaluates a random polynomial of degree k-1 over F_p.
type Family struct {
	coeffs []uint64 // coeffs[0] is the constant term; len(coeffs) == k
}

// NewFamily draws a member of a k-wise independent family using randomness
// from prg. k must be at least 1.
func NewFamily(k int, prg *PRG) *Family {
	if k < 1 {
		panic(fmt.Sprintf("hash: NewFamily with k = %d < 1", k))
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = prg.NextN(Prime)
	}
	// The leading coefficient must be nonzero for full independence.
	if k > 1 && coeffs[k-1] == 0 {
		coeffs[k-1] = 1
	}
	return &Family{coeffs: coeffs}
}

// NewPairwise draws a member of a pairwise (2-wise) independent family.
func NewPairwise(prg *PRG) *Family { return NewFamily(2, prg) }

// NewFourwise draws a member of a 4-wise independent family.
func NewFourwise(prg *PRG) *Family { return NewFamily(4, prg) }

// Hash evaluates the polynomial at x (reduced into the field first) and
// returns a value in [0, Prime).
func (f *Family) Hash(x uint64) uint64 {
	if x >= Prime {
		x %= Prime
	}
	var acc uint64
	for i := len(f.coeffs) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), f.coeffs[i])
	}
	return acc
}

// HashRange returns a hash value mapped into [0, n). The result is k-wise
// independent up to the negligible bias of reducing a near-uniform field
// element modulo n (Prime/n ≥ 2^40 for every n used in this repository).
func (f *Family) HashRange(x, n uint64) uint64 {
	if n == 0 {
		panic("hash: HashRange with n = 0")
	}
	return f.Hash(x) % n
}

// HashBit returns a pseudo-random bit for x.
func (f *Family) HashBit(x uint64) bool {
	return f.Hash(x)&1 == 1
}

// Level returns the geometric "sampling level" of x: the number of leading
// sampling coin flips that came up heads, capped at max. Level i occurs with
// probability 2^-(i+1) for i < max. This is the standard level function used
// by l0-samplers.
func (f *Family) Level(x uint64, max int) int {
	h := f.Hash(x)
	for i := 0; i < max; i++ {
		if h&(1<<uint(i)) != 0 {
			return i
		}
	}
	return max
}

// Words returns the memory footprint of the family in machine words, used by
// the MPC memory ledger.
func (f *Family) Words() int { return len(f.coeffs) }
