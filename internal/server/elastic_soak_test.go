package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

// TestServerElasticSoak is the elastic-soak CI driver: a 200-batch powerlaw
// stream at parallelism 8 with a live resize — up, down, up — every ~50
// batches, readers and healthz probes hammering throughout (so the quiesce
// windows run under the race detector), and the final state bit-identical
// to an uninterrupted in-process twin. Writers go through RetryClient, so
// backpressure and quiesce 503s are absorbed by the client contract rather
// than ad-hoc loops.
func TestServerElasticSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic soak skipped in -short mode")
	}
	const (
		n           = 64
		batches     = 200
		batchSize   = 2  // fits MaxBatch at every shape visited
		resizeEvery = 50 // resize after batches 50, 100, 150
		readerCount = 6
	)
	// Shapes the soak cycles through (all realizable at N=64): grow to 9
	// machines, shrink to 5, grow to 9 again.
	shapes := []int{9, 5, 9}
	cfg := Config{
		Instances: 1, N: n, Phi: 0.6, Seed: 11, Parallelism: 8, QueueDepth: 8,
		CheckpointDir: t.TempDir(),
	}
	sc, err := workload.Get("powerlaw")
	if err != nil {
		t.Fatal(err)
	}
	gen := sc.New(n, 12)
	stream := make([]graph.Batch, batches)
	for i := range stream {
		stream[i] = append(graph.Batch(nil), gen.Next(batchSize)...)
	}

	twin, err := core.NewDynamicConnectivity(core.Config{
		N: n, Phi: cfg.Phi, Seed: cfg.Seed, Parallelism: cfg.Parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if err := twin.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	srv, ts := newTestServer(t, cfg)
	rc := &RetryClient{
		Client:      ts.Client(),
		MaxAttempts: 200,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	var healthOK, healthBusy atomic.Uint64
	queryPairs := [][2]int{{0, 1}, {0, n - 1}, {3, 9}, {5, 17}, {20, 40}}
	readers.Add(readerCount)
	for r := 0; r < readerCount; r++ {
		go func(id int) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if id%2 == 0 {
					resp, err := http.Get(ts.URL + "/instances/0/healthz")
					if err != nil {
						continue
					}
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						healthOK.Add(1)
					case http.StatusServiceUnavailable:
						healthBusy.Add(1)
					default:
						t.Errorf("healthz returned %d", resp.StatusCode)
						return
					}
				} else {
					resp, err := postRetry(rc, ts.URL+"/instances/0/query", QueryRequest{Pairs: queryPairs})
					if err != nil {
						t.Errorf("reader %d: %v", id, err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("reader %d: query status %d", id, resp.StatusCode)
						return
					}
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(r)
	}

	resizes := 0
	for i, b := range stream {
		resp, err := postRetry(rc, ts.URL+"/instances/0/updates", wireRequest(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
		if (i+1)%resizeEvery == 0 && resizes < len(shapes) {
			waitDrained(t, srv.insts[0])
			target := shapes[resizes]
			resp, err := postRetry(rc, fmt.Sprintf("%s/instances/0/resize?machines=%d", ts.URL, target), nil)
			if err != nil {
				t.Fatal(err)
			}
			ack := decodeJSON[ResizeResponse](t, resp)
			if ack.Machines != target {
				t.Fatalf("resize %d: fleet has %d machines, want %d", resizes, ack.Machines, target)
			}
			resizes++
		}
	}
	waitDrained(t, srv.insts[0])
	close(done)
	readers.Wait()
	if t.Failed() {
		t.Fatal("client errors during the soak; skipping verification")
	}
	t.Logf("elastic soak: %d resizes, healthz %d ready / %d quiesced", resizes, healthOK.Load(), healthBusy.Load())
	if healthOK.Load() == 0 {
		t.Error("healthz never reported ready during the soak")
	}

	// Final state must match the uninterrupted twin bit-identically — warm
	// (second pass) included.
	want := twin.ConnectedAll(toCorePairs(queryPairs))
	for pass := 0; pass < 2; pass++ {
		resp := postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: queryPairs})
		q := decodeJSON[QueryResponse](t, resp)
		for j := range want {
			if q.Connected[j] != want[j] {
				t.Errorf("pass %d pair %v: server %v, twin %v", pass, queryPairs[j], q.Connected[j], want[j])
			}
		}
		if comps := twin.NumComponents(); q.Components != comps {
			t.Errorf("pass %d: %d components, twin has %d", pass, q.Components, comps)
		}
	}
	body := scrapeMetrics(t, ts)
	if got := sumMetric(t, body, "mpcserve_reshard_total"); got != uint64(resizes) {
		t.Errorf("mpcserve_reshard_total = %d, want %d", got, resizes)
	}
	if got := sumMetric(t, body, "mpcserve_cluster_machines"); got != uint64(shapes[len(shapes)-1]) {
		t.Errorf("mpcserve_cluster_machines = %d, want %d", got, shapes[len(shapes)-1])
	}
}

// postRetry sends one JSON POST through the RetryClient (nil body allowed).
func postRetry(rc *RetryClient, url string, body any) (*http.Response, error) {
	var rdr *bytes.Reader
	if body == nil {
		rdr = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequest("POST", url, rdr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return rc.Do(req)
}

// wireRequest renders a batch as the updates wire form.
func wireRequest(b graph.Batch) UpdateRequest {
	req := UpdateRequest{Updates: make([]WireUpdate, len(b))}
	for j, up := range b {
		req.Updates[j] = WireUpdate{Op: up.Op.String(), U: up.Edge.U, V: up.Edge.V, Weight: up.Weight}
	}
	return req
}
