package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

// newTwin builds an uninterrupted in-process instance with the server's
// instance-0 core configuration (the seed-derivation contract of Config).
func newTwin(t *testing.T, cfg Config) *core.DynamicConnectivity {
	t.Helper()
	dc, err := core.NewDynamicConnectivity(core.Config{
		N: cfg.N, Phi: cfg.Phi, Seed: cfg.Seed, Parallelism: cfg.Parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

// resizeURL is the live-resize endpoint for instance id.
func resizeURL(ts *httptest.Server, id, machines int) string {
	return fmt.Sprintf("%s/instances/%d/resize?machines=%d", ts.URL, id, machines)
}

func postResize(t *testing.T, ts *httptest.Server, id, machines int) *http.Response {
	t.Helper()
	resp, err := http.Post(resizeURL(ts, id, machines), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerResizeLifecycle is the live-resize acceptance path: grow the
// fleet, keep streaming, shrink it, and at every shape the answers must be
// bit-identical to an uninterrupted in-process twin; a restart from the
// checkpoint dir must come back at the resized shape.
func TestServerResizeLifecycle(t *testing.T) {
	const n = 32
	cfg := Config{Instances: 1, N: n, Phi: 0.6, Seed: 7, Parallelism: 1, QueueDepth: 4,
		CheckpointDir: t.TempDir()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	closed := false
	defer func() {
		if !closed {
			ts.Close()
			srv.Close()
		}
	}()

	// Twin: the same core config (server seed derivation), same stream.
	gen := workload.NewChurn(workload.Config{N: n, Seed: 99})
	twin := newTwin(t, cfg)
	queryPairs := [][2]int{{0, 1}, {0, n - 1}, {3, 9}, {5, 17}}

	// Batch size 2 fits MaxBatch at every shape the test visits (the
	// thinnest, 4 vertices/machine, allows 2).
	stream := func(batches int) {
		t.Helper()
		for i := 0; i < batches; i++ {
			b := gen.Next(2)
			if err := twin.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			req := UpdateRequest{Updates: make([]WireUpdate, len(b))}
			for j, up := range b {
				req.Updates[j] = WireUpdate{Op: up.Op.String(), U: up.Edge.U, V: up.Edge.V, Weight: up.Weight}
			}
			resp := postJSON(t, ts.URL+"/instances/0/updates", req)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("update status %d", resp.StatusCode)
			}
		}
		waitDrained(t, srv.insts[0])
	}
	verify := func(context string) {
		t.Helper()
		resp := postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: queryPairs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: query status %d", context, resp.StatusCode)
		}
		q := decodeJSON[QueryResponse](t, resp)
		want := twin.ConnectedAll(toCorePairs(queryPairs))
		for i := range want {
			if q.Connected[i] != want[i] {
				t.Errorf("%s: pair %v answered %v, twin says %v", context, queryPairs[i], q.Connected[i], want[i])
			}
		}
		if comps := twin.NumComponents(); q.Components != comps {
			t.Errorf("%s: %d components, twin has %d", context, q.Components, comps)
		}
	}

	stream(6)
	verify("before resize")

	// Grow 5 -> 9 machines (VerticesPerMachine 8 -> 4).
	resp := postResize(t, ts, 0, 9)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resize to 9: status %d", resp.StatusCode)
	}
	ack := decodeJSON[ResizeResponse](t, resp)
	if ack.Machines != 9 || ack.VerticesPerMachine != 4 {
		t.Fatalf("resize ack %+v, want 9 machines at 4 vertices/machine", ack)
	}
	verify("after grow")
	stream(6)
	verify("after grow + stream")

	// Shrink 9 -> 3 machines (VerticesPerMachine 16).
	resp = postResize(t, ts, 0, 3)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resize to 3: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	stream(6)
	verify("after shrink + stream")

	// /instances reports the new shape, and the reshard metrics moved.
	lresp, err := http.Get(ts.URL + "/instances")
	if err != nil {
		t.Fatal(err)
	}
	infos := decodeJSON[[]InstanceInfo](t, lresp)
	if infos[0].Machines != 3 {
		t.Errorf("/instances reports %d machines, want 3", infos[0].Machines)
	}
	body := scrapeMetrics(t, ts)
	if got := sumMetric(t, body, "mpcserve_reshard_total"); got != 2 {
		t.Errorf("mpcserve_reshard_total = %d, want 2", got)
	}
	if !strings.Contains(body, "mpcserve_reshard_seconds") {
		t.Error("mpcserve_reshard_seconds missing from scrape")
	}
	if got := sumMetric(t, body, "mpcserve_cluster_machines"); got != 3 {
		t.Errorf("mpcserve_cluster_machines = %d, want 3", got)
	}

	// Restart from the checkpoint dir: the fleet must come back at the
	// resized shape (the post-resize full checkpoint carries it) and answer
	// identically.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closed = true
	srv2, ts2 := newTestServer(t, cfg)
	if got := srv2.insts[0].machines(); got != 3 {
		t.Errorf("restarted instance has %d machines, want 3", got)
	}
	srv, ts = srv2, ts2
	verify("after restart")
}

// TestServerResizeErrors pins the failure modes: a shape no equal-range
// partition realizes is a 400 with the nearest realizable count, a shrink
// past the per-machine memory budget is a 409 that leaves the instance
// serving at its old shape.
func TestServerResizeErrors(t *testing.T) {
	const n = 32
	srv, ts := newTestServer(t, testConfig(t))

	resp := postResize(t, ts, 0, 1)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("resize to 1 machine: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postResize(t, ts, 0, 10)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("resize to unrealizable count: status %d, want 400", resp.StatusCode)
	}
	if body := readAll(t, resp); !strings.Contains(body, "nearest realizable") {
		t.Errorf("400 body %q lacks the nearest-realizable diagnostic", body)
	}
	resp, err := http.Post(ts.URL+"/instances/0/resize", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("resize without ?machines: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// For the 409 path the migrated state must overflow the thinnest shape's
	// per-machine budget. The fleet's default sketch redundancy leaves too
	// much slack at this scale, so swap in an instance with SketchCopies=1
	// (the same shape the core cap-rejection test pins) and warm its full
	// label cache — per-vertex coordinator state a one-vertex machine's
	// budget cannot absorb.
	const hn = 64
	heavy, err := newInstance(0, core.Config{N: hn, Phi: 0.6, SketchCopies: 1, Seed: 23, Parallelism: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv.insts[0].drain()
	srv.insts[0] = heavy
	var b graph.Batch
	for v := 1; v < hn; v++ {
		b = append(b, graph.Ins(0, v))
	}
	for len(b) > 0 {
		k := heavy.dc.Load().MaxBatch()
		if k > len(b) {
			k = len(b)
		}
		if err := heavy.offer(b[:k]); err != nil {
			t.Fatal(err)
		}
		b = b[k:]
		waitDrained(t, heavy)
	}
	warm := make([][2]int, 0, hn-1)
	for v := 1; v < hn; v++ {
		warm = append(warm, [2]int{0, v})
	}
	resp = postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: warm})
	resp.Body.Close()

	wasMachines := heavy.machines()
	resp = postResize(t, ts, 0, hn+1)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cap-violating shrink: status %d, want 409", resp.StatusCode)
	}
	if body := readAll(t, resp); !strings.Contains(body, "budget") {
		t.Errorf("409 body %q lacks the budget diagnostic", body)
	}
	if got := heavy.machines(); got != wasMachines {
		t.Errorf("rejected resize changed the fleet: %d -> %d machines", wasMachines, got)
	}
	// Still serving, at the old shape, with correct answers.
	resp = postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: [][2]int{{0, hn - 1}, {1, 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after rejected resize: status %d", resp.StatusCode)
	}
	q := decodeJSON[QueryResponse](t, resp)
	if !q.Connected[0] || !q.Connected[1] {
		t.Errorf("star graph answers wrong after rejected resize: %v", q.Connected)
	}
}

// TestInstanceHealthz pins per-instance liveness/readiness: 200 while
// serving, 503 while quiesced (checkpoint or resize in progress), 503 after
// an applier failure.
func TestInstanceHealthz(t *testing.T) {
	srv, ts := newTestServer(t, testConfig(t))
	get := func(id int) int {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/instances/%d/healthz", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(0); got != http.StatusOK {
		t.Errorf("ready instance: healthz %d, want 200", got)
	}
	srv.insts[0].quiesced.Store(true)
	if got := get(0); got != http.StatusServiceUnavailable {
		t.Errorf("quiesced instance: healthz %d, want 503", got)
	}
	srv.insts[0].quiesced.Store(false)
	if got := get(0); got != http.StatusOK {
		t.Errorf("resumed instance: healthz %d, want 200", got)
	}
	srv.insts[1].failure.Store(&applyFailure{err: fmt.Errorf("boom")})
	if got := get(1); got != http.StatusServiceUnavailable {
		t.Errorf("failed instance: healthz %d, want 503", got)
	}
	srv.insts[1].failure.Store(nil) // let Cleanup's checkpoint pass
}

// TestRetryAfterScalesWithDrainRate pins the 429 hint computation: no
// estimate yet falls back to 1s; with an EWMA the hint covers the queue at
// the observed drain rate, clamped to 30s.
func TestRetryAfterScalesWithDrainRate(t *testing.T) {
	srv, _ := newTestServer(t, testConfig(t))
	in := srv.insts[0]
	if got := in.retryAfterSeconds(); got != 1 {
		t.Errorf("no estimate: Retry-After %d, want 1", got)
	}
	in.drainEWMA.Store(int64(3 * time.Second))
	if got := in.retryAfterSeconds(); got != 3 {
		t.Errorf("3s/batch, empty queue: Retry-After %d, want 3", got)
	}
	in.drainEWMA.Store(int64(20 * time.Second))
	if got := in.retryAfterSeconds(); got != 20 {
		t.Errorf("20s/batch: Retry-After %d, want 20", got)
	}
	in.drainEWMA.Store(int64(time.Hour))
	if got := in.retryAfterSeconds(); got != 30 {
		t.Errorf("pathological drain rate: Retry-After %d, want the 30s clamp", got)
	}
	in.drainEWMA.Store(0)
}

// TestRetryClient pins the backoff client: 429/503 are retried honoring
// Retry-After, bodies are replayed, other statuses pass through, and
// attempts are bounded.
func TestRetryClient(t *testing.T) {
	var waits []time.Duration
	rc := &RetryClient{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	}

	attempts := 0
	var bodies []string
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		bodies = append(bodies, buf.String())
		switch attempts {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable) // no hint: backoff
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer h.Close()

	req, err := http.NewRequest("POST", h.URL, strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d, want 200", resp.StatusCode)
	}
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3", attempts)
	}
	for i, b := range bodies {
		if b != "payload" {
			t.Errorf("attempt %d saw body %q (not replayed)", i+1, b)
		}
	}
	// First wait honors the 2s hint clamped to MaxDelay; the second is the
	// first backoff step (the hinted retry must not consume a backoff
	// doubling).
	if len(waits) != 2 || waits[0] != 80*time.Millisecond || waits[1] != 10*time.Millisecond {
		t.Errorf("waits = %v, want [80ms 10ms]", waits)
	}

	// Bounded: a server that never relents gets MaxAttempts tries, and the
	// caller sees the last 429.
	attempts = 0
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer always.Close()
	req, _ = http.NewRequest("GET", always.URL, nil)
	resp, err = rc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || attempts != 4 {
		t.Errorf("exhausted retries: status %d after %d attempts, want 429 after 4", resp.StatusCode, attempts)
	}

	// A request with a non-replayable body is refused up front.
	req, _ = http.NewRequest("POST", always.URL, nil)
	req.Body = http.NoBody
	req.GetBody = nil
	if _, err := rc.Do(req); err == nil {
		t.Error("non-replayable body accepted")
	}
}

// scrapeMetrics fetches /metrics as a string.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return readAll(t, resp)
}
