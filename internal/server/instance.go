package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// Section tags of the server layer of an instance snapshot: run metadata
// (config echo + restore-cycle count) and the admission mirror, written
// ahead of the connectivity state. Delta containers use their own pair: the
// meta echo is repeated (cheap, and it keeps every container
// self-validating) while the mirror section carries only the update journal
// accumulated since the last acknowledged checkpoint.
const (
	tagServerMeta        = 0x60
	tagServerMirror      = 0x61
	tagServerMetaDelta   = 0x62
	tagServerMirrorDelta = 0x63
)

// latencyBuckets are the upper bounds, in seconds, of the batch-apply
// latency histogram (one overflow bucket is added for +Inf).
var latencyBuckets = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Admission errors the HTTP layer maps onto status codes.
var (
	errQueueFull = errors.New("update queue full")
	errDraining  = errors.New("instance is draining (server shutting down)")
)

// badBatchError marks a batch the admission validator refused; the HTTP
// layer reports it as 422 rather than 500.
type badBatchError struct{ err error }

func (e *badBatchError) Error() string { return e.err.Error() }
func (e *badBatchError) Unwrap() error { return e.err }

// instance is one independently served graph: a DynamicConnectivity under
// the single-writer/many-reader lock, a bounded update queue drained by one
// applier goroutine, and an admission mirror that keeps every queued batch
// valid by construction.
type instance struct {
	id  int
	cfg core.Config

	// adm serializes admission: the mirror check, the mirror apply, and the
	// enqueue happen atomically, so the queue always holds batches that are
	// valid in queue order and the len(queue) capacity check cannot race
	// (only the applier removes elements).
	adm       sync.Mutex
	accepting bool
	mirror    *graph.Graph
	queue     chan graph.Batch
	// mirrorDelta journals every admitted update since the last acknowledged
	// checkpoint (guarded by adm, like the mirror it shadows); delta
	// checkpoints ship it instead of the whole mirror edge set.
	mirrorDelta graph.Batch

	// chain is the on-disk checkpoint chain (nil when checkpointing is off).
	// Only the quiesced checkpoint path touches it.
	chain *snapshot.Chain

	// pending counts batches enqueued but not yet fully applied; the
	// quiesced checkpoint path waits on it (with admission locked) so the
	// mirror and the cluster state agree when the checkpoint is cut.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// mu is the instance's single-writer/many-reader contract lock: the
	// applier applies batches under Lock, handlers answer queries under
	// RLock (see the core query engine's concurrency contract). dc is an
	// atomic pointer because an elastic resize swaps in a fresh fleet
	// (holding both adm and mu) while lock-free paths — MaxBatch sizing in
	// admission, metric scrapes — read it concurrently.
	mu sync.RWMutex
	dc atomic.Pointer[core.DynamicConnectivity]

	// vpm is the live VerticesPerMachine override (0 = the config default
	// shape). It tracks dc across resizes and is persisted in every
	// checkpoint's meta echo so a restart rebuilds the fleet at the shape
	// the snapshot was cut at. cfg itself stays immutable — handlers read
	// cfg.N without locks.
	vpm atomic.Int64

	// quiesced is true while admission is deliberately paused (a quiesced
	// checkpoint or a resize); per-instance readiness reports 503 for its
	// duration so load balancers steer around the pause.
	quiesced atomic.Bool

	wg      sync.WaitGroup
	failure atomic.Pointer[applyFailure]

	// Metrics, all atomics so /metrics scrapes never take the locks.
	batchesApplied  atomic.Uint64
	updatesApplied  atomic.Uint64
	batchesRejected atomic.Uint64
	queryBatches    atomic.Uint64
	restoreCycles   atomic.Uint64
	rounds          atomic.Int64
	applyNanos      atomic.Int64
	applyCount      atomic.Uint64
	applyBuckets    [len(latencyBuckets) + 1]atomic.Uint64
	// drainEWMA tracks the smoothed per-batch apply time (nanoseconds); the
	// 429 path scales its Retry-After hint by it so clients back off in
	// proportion to how fast the queue actually drains.
	drainEWMA atomic.Int64
	// Elastic resize metrics.
	reshardCount atomic.Uint64
	reshardNanos atomic.Int64
	// Checkpoint metrics, split by container kind (full vs delta).
	ckptFullCount  atomic.Uint64
	ckptFullBytes  atomic.Uint64
	ckptFullNanos  atomic.Int64
	ckptDeltaCount atomic.Uint64
	ckptDeltaBytes atomic.Uint64
	ckptDeltaNanos atomic.Int64
}

// applyFailure records the first applier error; the instance refuses all
// traffic afterwards (its state may be mid-batch).
type applyFailure struct{ err error }

// newInstance builds an instance and starts its applier.
func newInstance(id int, cfg core.Config, queueDepth int) (*instance, error) {
	dc, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		return nil, fmt.Errorf("server: instance %d: %w", id, err)
	}
	in := &instance{
		id:        id,
		cfg:       cfg,
		accepting: true,
		mirror:    graph.New(cfg.N),
		queue:     make(chan graph.Batch, queueDepth),
	}
	in.dc.Store(dc)
	in.vpm.Store(int64(cfg.VerticesPerMachine))
	in.pendCond = sync.NewCond(&in.pendMu)
	in.wg.Add(1)
	go in.applier()
	return in, nil
}

// applier is the instance's single writer: it drains the queue and applies
// each batch under the exclusive lock. Admission already validated every
// queued batch against the mirror, so an apply error here means corrupted
// state — the instance is marked failed and refuses traffic, but the loop
// keeps draining so shutdown never hangs.
func (in *instance) applier() {
	defer in.wg.Done()
	for b := range in.queue {
		start := time.Now()
		in.mu.Lock()
		dc := in.dc.Load()
		err := dc.ApplyBatch(b)
		rounds := dc.Cluster().Stats().Rounds
		in.mu.Unlock()
		in.observeApply(time.Since(start))
		in.rounds.Store(int64(rounds))
		if err != nil {
			in.failure.CompareAndSwap(nil, &applyFailure{err: err})
		} else {
			in.batchesApplied.Add(1)
			in.updatesApplied.Add(uint64(len(b)))
		}
		in.pendMu.Lock()
		in.pending--
		in.pendMu.Unlock()
		in.pendCond.Broadcast()
	}
}

// observeApply records one batch-apply latency sample and folds it into the
// drain-rate estimate (an EWMA with a 1/8 step).
func (in *instance) observeApply(d time.Duration) {
	in.applyNanos.Add(int64(d))
	in.applyCount.Add(1)
	if ew := in.drainEWMA.Load(); ew == 0 {
		in.drainEWMA.Store(int64(d))
	} else {
		in.drainEWMA.Store((7*ew + int64(d)) / 8)
	}
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			in.applyBuckets[i].Add(1)
			return
		}
	}
	in.applyBuckets[len(latencyBuckets)].Add(1)
}

// retryAfterSeconds estimates, from the drain-rate EWMA and the current
// queue depth, how long a 429'd client should wait before the queue has
// room — clamped to [1, 30] seconds, and 1 before any batch has been
// applied (no estimate yet).
func (in *instance) retryAfterSeconds() int {
	ew := in.drainEWMA.Load()
	if ew <= 0 {
		return 1
	}
	wait := time.Duration(ew) * time.Duration(len(in.queue)+1)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// machines is the instance's current fleet size (changes on resize).
func (in *instance) machines() int {
	return in.dc.Load().Config().MachineCount()
}

// failed returns the instance's terminal error, if any.
func (in *instance) failed() error {
	if f := in.failure.Load(); f != nil {
		return fmt.Errorf("instance %d failed: %w", in.id, f.err)
	}
	return nil
}

// offer validates b against the admission mirror and enqueues it for the
// applier. It returns errQueueFull (backpressure: the caller retries),
// errDraining (shutdown), a *badBatchError (the batch is invalid against
// the current graph), or nil on a successful enqueue.
func (in *instance) offer(b graph.Batch) error {
	if err := in.failed(); err != nil {
		return err
	}
	in.adm.Lock()
	defer in.adm.Unlock()
	if !in.accepting {
		return errDraining
	}
	if len(in.queue) == cap(in.queue) {
		in.batchesRejected.Add(1)
		return errQueueFull
	}
	if err := validateBatch(in.mirror, b); err != nil {
		return &badBatchError{err}
	}
	if err := in.mirror.Apply(b); err != nil {
		// Unreachable after validateBatch; fail loudly rather than desync.
		return fmt.Errorf("admission mirror diverged: %w", err)
	}
	in.queue <- b
	in.mirrorDelta = append(in.mirrorDelta, b...)
	in.pendMu.Lock()
	in.pending++
	in.pendMu.Unlock()
	return nil
}

// waitIdle blocks until every enqueued batch has been applied. The caller
// must hold adm (so no new batch can be admitted while waiting); it must NOT
// hold mu, which the applier needs to make progress.
func (in *instance) waitIdle() {
	in.pendMu.Lock()
	for in.pending > 0 {
		in.pendCond.Wait()
	}
	in.pendMu.Unlock()
}

// validateBatch checks that b applies cleanly to g as one atomic batch:
// every vertex in range, no self-loops, each edge touched at most once (so
// sequential validity equals independent validity), inserts only of absent
// edges, deletes only of present ones.
func validateBatch(g *graph.Graph, b graph.Batch) error {
	touched := make(map[graph.Edge]bool, len(b))
	for i, up := range b {
		e := up.Edge.Canonical()
		if e.U == e.V {
			return fmt.Errorf("update %d: self-loop {%d,%d}", i, e.U, e.V)
		}
		if e.U < 0 || e.V >= g.N() {
			return fmt.Errorf("update %d: edge {%d,%d} outside vertex range [0,%d)", i, e.U, e.V, g.N())
		}
		if touched[e] {
			return fmt.Errorf("update %d: edge {%d,%d} touched twice in one batch", i, e.U, e.V)
		}
		touched[e] = true
		switch up.Op {
		case graph.Insert:
			if g.Has(e.U, e.V) {
				return fmt.Errorf("update %d: insert of present edge {%d,%d}", i, e.U, e.V)
			}
		case graph.Delete:
			if !g.Has(e.U, e.V) {
				return fmt.Errorf("update %d: delete of absent edge {%d,%d}", i, e.U, e.V)
			}
		default:
			return fmt.Errorf("update %d: unknown op %v", i, up.Op)
		}
	}
	return nil
}

// drain stops admission (new offers get errDraining) and waits until every
// queued batch has been applied. Idempotent.
func (in *instance) drain() {
	in.adm.Lock()
	if in.accepting {
		in.accepting = false
		close(in.queue)
	}
	in.adm.Unlock()
	in.wg.Wait()
}

// instancePath is the snapshot file of instance id under dir.
func instancePath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("instance-%03d.snap", id))
}

// Checkpoint implements snapshot.Checkpointer. The caller must have drained
// the instance (or otherwise hold it exclusively): Close checkpoints only
// after drain, so no applier or query traffic is in flight.
func (in *instance) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagServerMeta)
	e.Int(in.cfg.N)
	e.F64(in.cfg.Phi)
	e.U64(in.cfg.Seed)
	e.U64(in.restoreCycles.Load())
	e.Int(int(in.vpm.Load()))
	e.Begin(tagServerMirror)
	snapshot.EncodeGraph(e, in.mirror)
	in.dc.Load().Checkpoint(e)
}

// checkMeta validates a config echo against the instance's configuration.
func (in *instance) checkMeta(n int, phi float64, seed uint64) error {
	if n != in.cfg.N || phi != in.cfg.Phi || seed != in.cfg.Seed {
		return fmt.Errorf("server: snapshot holds (n=%d, phi=%v, seed=%d), instance %d is configured (n=%d, phi=%v, seed=%d)",
			n, phi, seed, in.id, in.cfg.N, in.cfg.Phi, in.cfg.Seed)
	}
	return nil
}

// Restore implements snapshot.Restorer: it loads a full snapshot into this
// freshly constructed instance, after validating the config echo, and bumps
// the restore-cycle counter (which persists across restarts via the meta
// section).
func (in *instance) Restore(d *snapshot.Decoder) error {
	d.Begin(tagServerMeta)
	n, phi, seed, cycles := d.Int(), d.F64(), d.U64(), d.U64()
	svpm := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if err := in.checkMeta(n, phi, seed); err != nil {
		return err
	}
	if int64(svpm) != in.vpm.Load() {
		// The snapshot was cut after a resize: rebuild the fleet at the
		// persisted shape before restoring into it, so a restarted server
		// resumes at the machine count the instance last ran at.
		cfg := in.cfg
		cfg.VerticesPerMachine = svpm
		dc, err := core.NewDynamicConnectivity(cfg)
		if err != nil {
			return fmt.Errorf("server: instance %d: rebuilding at snapshot shape (VerticesPerMachine=%d): %w", in.id, svpm, err)
		}
		in.dc.Store(dc)
		in.vpm.Store(int64(svpm))
	}
	d.Begin(tagServerMirror)
	if err := snapshot.DecodeGraphInto(d, in.mirror); err != nil {
		return err
	}
	if err := in.dc.Load().Restore(d); err != nil {
		return err
	}
	in.restoreCycles.Store(cycles + 1)
	return nil
}

// CheckpointDelta implements snapshot.DeltaCheckpointer: the meta echo is
// repeated in full (it is tiny and keeps each container self-validating),
// but the mirror section carries only the updates admitted since the last
// acknowledged checkpoint — replaying them onto the restored base mirror
// reproduces the full mirror exactly. Same quiescence contract as
// Checkpoint.
func (in *instance) CheckpointDelta(e *snapshot.Encoder) {
	e.Begin(tagServerMetaDelta)
	e.Int(in.cfg.N)
	e.F64(in.cfg.Phi)
	e.U64(in.cfg.Seed)
	e.U64(in.restoreCycles.Load())
	e.Int(int(in.vpm.Load()))
	e.Begin(tagServerMirrorDelta)
	snapshot.EncodeUpdates(e, in.mirrorDelta)
	in.dc.Load().CheckpointDelta(e)
}

// RestoreDelta implements snapshot.DeltaRestorer: it replays one delta on
// top of the previously restored state. The restore-cycle counter is carried
// in every delta, so the tip delta's count wins — deltas appended after a
// restart carry the post-restart count.
func (in *instance) RestoreDelta(d *snapshot.Decoder) error {
	d.Begin(tagServerMetaDelta)
	n, phi, seed, cycles := d.Int(), d.F64(), d.U64(), d.U64()
	svpm := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if err := in.checkMeta(n, phi, seed); err != nil {
		return err
	}
	if int64(svpm) != in.vpm.Load() {
		// Deltas never span a resize: every resize re-bases the chain with a
		// full checkpoint at the new shape, so a shape mismatch here means
		// the chain is corrupt.
		return fmt.Errorf("server: delta written at VerticesPerMachine=%d cannot extend a base restored at %d", svpm, in.vpm.Load())
	}
	d.Begin(tagServerMirrorDelta)
	if err := snapshot.DecodeUpdatesInto(d, in.mirror); err != nil {
		return err
	}
	if err := in.dc.Load().RestoreDelta(d); err != nil {
		return err
	}
	in.restoreCycles.Store(cycles + 1)
	return nil
}

// AckCheckpoint implements snapshot.DeltaState: the chain calls it once the
// container is durably on disk, making the written state the new delta
// baseline.
func (in *instance) AckCheckpoint() {
	in.mirrorDelta = nil
	in.dc.Load().AckCheckpoint()
}

// checkpointQuiesced cuts a checkpoint (full or delta, the chain decides)
// with the instance quiesced but still live: admission is held and the
// applier drained of in-flight batches, so the mirror, the journal, and the
// cluster state agree, but the instance resumes serving as soon as the
// checkpoint is cut. No-op when checkpointing is off (nil chain).
func (in *instance) checkpointQuiesced() error {
	if in.chain == nil {
		return nil
	}
	in.adm.Lock()
	defer in.adm.Unlock()
	in.quiesced.Store(true)
	defer in.quiesced.Store(false)
	in.waitIdle()
	if err := in.failed(); err != nil {
		return fmt.Errorf("skipping checkpoint: %w", err)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	start := time.Now()
	kind, bytes, err := in.chain.Checkpoint(in)
	nanos := int64(time.Since(start))
	if err != nil {
		in.failure.CompareAndSwap(nil, &applyFailure{err: fmt.Errorf("checkpoint: %w", err)})
		return fmt.Errorf("instance %d checkpoint: %w", in.id, err)
	}
	switch kind {
	case snapshot.KindDelta:
		in.ckptDeltaCount.Add(1)
		in.ckptDeltaBytes.Add(uint64(bytes))
		in.ckptDeltaNanos.Add(nanos)
	default:
		in.ckptFullCount.Add(1)
		in.ckptFullBytes.Add(uint64(bytes))
		in.ckptFullNanos.Add(nanos)
	}
	return nil
}

// resizeError wraps a resize failure with the HTTP status it maps onto: 400
// for a shape no equal-range partition realizes, 409 for a migration the
// target fleet's memory budget rejects.
type resizeError struct {
	status int
	err    error
}

func (e *resizeError) Error() string { return e.err.Error() }
func (e *resizeError) Unwrap() error { return e.err }

// resize migrates the instance's live state onto a fleet of exactly machines
// machines: admission pauses (readiness flips to 503), the queue drains, the
// quiesced state is checkpointed in memory, and a fresh fleet at the target
// shape restores it through the re-sharding path. A memory-cap rejection —
// shrinking the per-machine budget below what the migrated state needs —
// leaves the instance untouched, still serving at its old shape. On success
// the on-disk chain (if any) is re-based with a full checkpoint at the new
// shape, so a restart resumes there and no delta ever extends old-shape
// containers.
func (in *instance) resize(machines int) error {
	cfg := in.cfg
	cfg.VerticesPerMachine = int(in.vpm.Load())
	tcfg, err := core.ResizeConfig(cfg, machines)
	if err != nil {
		return &resizeError{http.StatusBadRequest, err}
	}
	in.adm.Lock()
	defer in.adm.Unlock()
	in.quiesced.Store(true)
	defer in.quiesced.Store(false)
	in.waitIdle()
	if err := in.failed(); err != nil {
		return err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	start := time.Now()
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, in.dc.Load()); err != nil {
		return fmt.Errorf("instance %d resize: checkpoint: %w", in.id, err)
	}
	fresh, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		return fmt.Errorf("instance %d resize: %w", in.id, err)
	}
	if err := snapshot.Reshard(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		return &resizeError{http.StatusConflict,
			fmt.Errorf("instance %d resize to %d machines: %w", in.id, machines, err)}
	}
	in.dc.Store(fresh)
	in.vpm.Store(int64(tcfg.VerticesPerMachine))
	in.reshardCount.Add(1)
	in.reshardNanos.Add(int64(time.Since(start)))
	if in.chain != nil {
		in.chain.Rebase()
		ckStart := time.Now()
		_, nbytes, err := in.chain.Checkpoint(in) // always full after Rebase
		if err != nil {
			in.failure.CompareAndSwap(nil, &applyFailure{err: fmt.Errorf("post-resize checkpoint: %w", err)})
			return fmt.Errorf("instance %d post-resize checkpoint: %w", in.id, err)
		}
		in.ckptFullCount.Add(1)
		in.ckptFullBytes.Add(uint64(nbytes))
		in.ckptFullNanos.Add(int64(time.Since(ckStart)))
	}
	return nil
}
