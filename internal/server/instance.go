package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// Section tags of the server layer of an instance snapshot: run metadata
// (config echo + restore-cycle count) and the admission mirror, written
// ahead of the connectivity state. Delta containers use their own pair: the
// meta echo is repeated (cheap, and it keeps every container
// self-validating) while the mirror section carries only the update journal
// accumulated since the last acknowledged checkpoint.
const (
	tagServerMeta        = 0x60
	tagServerMirror      = 0x61
	tagServerMetaDelta   = 0x62
	tagServerMirrorDelta = 0x63
)

// latencyBuckets are the upper bounds, in seconds, of the batch-apply
// latency histogram (one overflow bucket is added for +Inf).
var latencyBuckets = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Admission errors the HTTP layer maps onto status codes.
var (
	errQueueFull = errors.New("update queue full")
	errDraining  = errors.New("instance is draining (server shutting down)")
)

// badBatchError marks a batch the admission validator refused; the HTTP
// layer reports it as 422 rather than 500.
type badBatchError struct{ err error }

func (e *badBatchError) Error() string { return e.err.Error() }
func (e *badBatchError) Unwrap() error { return e.err }

// instance is one independently served graph: a DynamicConnectivity under
// the single-writer/many-reader lock, a bounded update queue drained by one
// applier goroutine, and an admission mirror that keeps every queued batch
// valid by construction.
type instance struct {
	id  int
	cfg core.Config

	// adm serializes admission: the mirror check, the mirror apply, and the
	// enqueue happen atomically, so the queue always holds batches that are
	// valid in queue order and the len(queue) capacity check cannot race
	// (only the applier removes elements).
	adm       sync.Mutex
	accepting bool
	mirror    *graph.Graph
	queue     chan graph.Batch
	// mirrorDelta journals every admitted update since the last acknowledged
	// checkpoint (guarded by adm, like the mirror it shadows); delta
	// checkpoints ship it instead of the whole mirror edge set.
	mirrorDelta graph.Batch

	// chain is the on-disk checkpoint chain (nil when checkpointing is off).
	// Only the quiesced checkpoint path touches it.
	chain *snapshot.Chain

	// pending counts batches enqueued but not yet fully applied; the
	// quiesced checkpoint path waits on it (with admission locked) so the
	// mirror and the cluster state agree when the checkpoint is cut.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// mu is the instance's single-writer/many-reader contract lock: the
	// applier applies batches under Lock, handlers answer queries under
	// RLock (see the core query engine's concurrency contract).
	mu sync.RWMutex
	dc *core.DynamicConnectivity

	wg      sync.WaitGroup
	failure atomic.Pointer[applyFailure]

	// Metrics, all atomics so /metrics scrapes never take the locks.
	batchesApplied  atomic.Uint64
	updatesApplied  atomic.Uint64
	batchesRejected atomic.Uint64
	queryBatches    atomic.Uint64
	restoreCycles   atomic.Uint64
	rounds          atomic.Int64
	applyNanos      atomic.Int64
	applyCount      atomic.Uint64
	applyBuckets    [len(latencyBuckets) + 1]atomic.Uint64
	// Checkpoint metrics, split by container kind (full vs delta).
	ckptFullCount  atomic.Uint64
	ckptFullBytes  atomic.Uint64
	ckptFullNanos  atomic.Int64
	ckptDeltaCount atomic.Uint64
	ckptDeltaBytes atomic.Uint64
	ckptDeltaNanos atomic.Int64
}

// applyFailure records the first applier error; the instance refuses all
// traffic afterwards (its state may be mid-batch).
type applyFailure struct{ err error }

// newInstance builds an instance and starts its applier.
func newInstance(id int, cfg core.Config, queueDepth int) (*instance, error) {
	dc, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		return nil, fmt.Errorf("server: instance %d: %w", id, err)
	}
	in := &instance{
		id:        id,
		cfg:       cfg,
		accepting: true,
		mirror:    graph.New(cfg.N),
		queue:     make(chan graph.Batch, queueDepth),
		dc:        dc,
	}
	in.pendCond = sync.NewCond(&in.pendMu)
	in.wg.Add(1)
	go in.applier()
	return in, nil
}

// applier is the instance's single writer: it drains the queue and applies
// each batch under the exclusive lock. Admission already validated every
// queued batch against the mirror, so an apply error here means corrupted
// state — the instance is marked failed and refuses traffic, but the loop
// keeps draining so shutdown never hangs.
func (in *instance) applier() {
	defer in.wg.Done()
	for b := range in.queue {
		start := time.Now()
		in.mu.Lock()
		err := in.dc.ApplyBatch(b)
		rounds := in.dc.Cluster().Stats().Rounds
		in.mu.Unlock()
		in.observeApply(time.Since(start))
		in.rounds.Store(int64(rounds))
		if err != nil {
			in.failure.CompareAndSwap(nil, &applyFailure{err: err})
		} else {
			in.batchesApplied.Add(1)
			in.updatesApplied.Add(uint64(len(b)))
		}
		in.pendMu.Lock()
		in.pending--
		in.pendMu.Unlock()
		in.pendCond.Broadcast()
	}
}

// observeApply records one batch-apply latency sample.
func (in *instance) observeApply(d time.Duration) {
	in.applyNanos.Add(int64(d))
	in.applyCount.Add(1)
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			in.applyBuckets[i].Add(1)
			return
		}
	}
	in.applyBuckets[len(latencyBuckets)].Add(1)
}

// failed returns the instance's terminal error, if any.
func (in *instance) failed() error {
	if f := in.failure.Load(); f != nil {
		return fmt.Errorf("instance %d failed: %w", in.id, f.err)
	}
	return nil
}

// offer validates b against the admission mirror and enqueues it for the
// applier. It returns errQueueFull (backpressure: the caller retries),
// errDraining (shutdown), a *badBatchError (the batch is invalid against
// the current graph), or nil on a successful enqueue.
func (in *instance) offer(b graph.Batch) error {
	if err := in.failed(); err != nil {
		return err
	}
	in.adm.Lock()
	defer in.adm.Unlock()
	if !in.accepting {
		return errDraining
	}
	if len(in.queue) == cap(in.queue) {
		in.batchesRejected.Add(1)
		return errQueueFull
	}
	if err := validateBatch(in.mirror, b); err != nil {
		return &badBatchError{err}
	}
	if err := in.mirror.Apply(b); err != nil {
		// Unreachable after validateBatch; fail loudly rather than desync.
		return fmt.Errorf("admission mirror diverged: %w", err)
	}
	in.queue <- b
	in.mirrorDelta = append(in.mirrorDelta, b...)
	in.pendMu.Lock()
	in.pending++
	in.pendMu.Unlock()
	return nil
}

// waitIdle blocks until every enqueued batch has been applied. The caller
// must hold adm (so no new batch can be admitted while waiting); it must NOT
// hold mu, which the applier needs to make progress.
func (in *instance) waitIdle() {
	in.pendMu.Lock()
	for in.pending > 0 {
		in.pendCond.Wait()
	}
	in.pendMu.Unlock()
}

// validateBatch checks that b applies cleanly to g as one atomic batch:
// every vertex in range, no self-loops, each edge touched at most once (so
// sequential validity equals independent validity), inserts only of absent
// edges, deletes only of present ones.
func validateBatch(g *graph.Graph, b graph.Batch) error {
	touched := make(map[graph.Edge]bool, len(b))
	for i, up := range b {
		e := up.Edge.Canonical()
		if e.U == e.V {
			return fmt.Errorf("update %d: self-loop {%d,%d}", i, e.U, e.V)
		}
		if e.U < 0 || e.V >= g.N() {
			return fmt.Errorf("update %d: edge {%d,%d} outside vertex range [0,%d)", i, e.U, e.V, g.N())
		}
		if touched[e] {
			return fmt.Errorf("update %d: edge {%d,%d} touched twice in one batch", i, e.U, e.V)
		}
		touched[e] = true
		switch up.Op {
		case graph.Insert:
			if g.Has(e.U, e.V) {
				return fmt.Errorf("update %d: insert of present edge {%d,%d}", i, e.U, e.V)
			}
		case graph.Delete:
			if !g.Has(e.U, e.V) {
				return fmt.Errorf("update %d: delete of absent edge {%d,%d}", i, e.U, e.V)
			}
		default:
			return fmt.Errorf("update %d: unknown op %v", i, up.Op)
		}
	}
	return nil
}

// drain stops admission (new offers get errDraining) and waits until every
// queued batch has been applied. Idempotent.
func (in *instance) drain() {
	in.adm.Lock()
	if in.accepting {
		in.accepting = false
		close(in.queue)
	}
	in.adm.Unlock()
	in.wg.Wait()
}

// instancePath is the snapshot file of instance id under dir.
func instancePath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("instance-%03d.snap", id))
}

// Checkpoint implements snapshot.Checkpointer. The caller must have drained
// the instance (or otherwise hold it exclusively): Close checkpoints only
// after drain, so no applier or query traffic is in flight.
func (in *instance) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagServerMeta)
	e.Int(in.cfg.N)
	e.F64(in.cfg.Phi)
	e.U64(in.cfg.Seed)
	e.U64(in.restoreCycles.Load())
	e.Begin(tagServerMirror)
	snapshot.EncodeGraph(e, in.mirror)
	in.dc.Checkpoint(e)
}

// checkMeta validates a config echo against the instance's configuration.
func (in *instance) checkMeta(n int, phi float64, seed uint64) error {
	if n != in.cfg.N || phi != in.cfg.Phi || seed != in.cfg.Seed {
		return fmt.Errorf("server: snapshot holds (n=%d, phi=%v, seed=%d), instance %d is configured (n=%d, phi=%v, seed=%d)",
			n, phi, seed, in.id, in.cfg.N, in.cfg.Phi, in.cfg.Seed)
	}
	return nil
}

// Restore implements snapshot.Restorer: it loads a full snapshot into this
// freshly constructed instance, after validating the config echo, and bumps
// the restore-cycle counter (which persists across restarts via the meta
// section).
func (in *instance) Restore(d *snapshot.Decoder) error {
	d.Begin(tagServerMeta)
	n, phi, seed, cycles := d.Int(), d.F64(), d.U64(), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := in.checkMeta(n, phi, seed); err != nil {
		return err
	}
	d.Begin(tagServerMirror)
	if err := snapshot.DecodeGraphInto(d, in.mirror); err != nil {
		return err
	}
	if err := in.dc.Restore(d); err != nil {
		return err
	}
	in.restoreCycles.Store(cycles + 1)
	return nil
}

// CheckpointDelta implements snapshot.DeltaCheckpointer: the meta echo is
// repeated in full (it is tiny and keeps each container self-validating),
// but the mirror section carries only the updates admitted since the last
// acknowledged checkpoint — replaying them onto the restored base mirror
// reproduces the full mirror exactly. Same quiescence contract as
// Checkpoint.
func (in *instance) CheckpointDelta(e *snapshot.Encoder) {
	e.Begin(tagServerMetaDelta)
	e.Int(in.cfg.N)
	e.F64(in.cfg.Phi)
	e.U64(in.cfg.Seed)
	e.U64(in.restoreCycles.Load())
	e.Begin(tagServerMirrorDelta)
	snapshot.EncodeUpdates(e, in.mirrorDelta)
	in.dc.CheckpointDelta(e)
}

// RestoreDelta implements snapshot.DeltaRestorer: it replays one delta on
// top of the previously restored state. The restore-cycle counter is carried
// in every delta, so the tip delta's count wins — deltas appended after a
// restart carry the post-restart count.
func (in *instance) RestoreDelta(d *snapshot.Decoder) error {
	d.Begin(tagServerMetaDelta)
	n, phi, seed, cycles := d.Int(), d.F64(), d.U64(), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := in.checkMeta(n, phi, seed); err != nil {
		return err
	}
	d.Begin(tagServerMirrorDelta)
	if err := snapshot.DecodeUpdatesInto(d, in.mirror); err != nil {
		return err
	}
	if err := in.dc.RestoreDelta(d); err != nil {
		return err
	}
	in.restoreCycles.Store(cycles + 1)
	return nil
}

// AckCheckpoint implements snapshot.DeltaState: the chain calls it once the
// container is durably on disk, making the written state the new delta
// baseline.
func (in *instance) AckCheckpoint() {
	in.mirrorDelta = nil
	in.dc.AckCheckpoint()
}

// checkpointQuiesced cuts a checkpoint (full or delta, the chain decides)
// with the instance quiesced but still live: admission is held and the
// applier drained of in-flight batches, so the mirror, the journal, and the
// cluster state agree, but the instance resumes serving as soon as the
// checkpoint is cut. No-op when checkpointing is off (nil chain).
func (in *instance) checkpointQuiesced() error {
	if in.chain == nil {
		return nil
	}
	in.adm.Lock()
	defer in.adm.Unlock()
	in.waitIdle()
	if err := in.failed(); err != nil {
		return fmt.Errorf("skipping checkpoint: %w", err)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	start := time.Now()
	kind, bytes, err := in.chain.Checkpoint(in)
	nanos := int64(time.Since(start))
	if err != nil {
		in.failure.CompareAndSwap(nil, &applyFailure{err: fmt.Errorf("checkpoint: %w", err)})
		return fmt.Errorf("instance %d checkpoint: %w", in.id, err)
	}
	switch kind {
	case snapshot.KindDelta:
		in.ckptDeltaCount.Add(1)
		in.ckptDeltaBytes.Add(uint64(bytes))
		in.ckptDeltaNanos.Add(nanos)
	default:
		in.ckptFullCount.Add(1)
		in.ckptFullBytes.Add(uint64(bytes))
		in.ckptFullNanos.Add(nanos)
	}
	return nil
}
