package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// RetryClient wraps an http.Client with bounded retries on backpressure
// responses: 429 (update queue full) and 503 (instance quiesced for a
// checkpoint or resize) are retried, honoring the server's Retry-After
// header when present and falling back to capped exponential backoff
// otherwise. Any other response — success or failure — is returned to the
// caller on the first attempt.
//
// Requests with a body must be replayable: Do rebuilds the body between
// attempts via req.GetBody, which http.NewRequest sets automatically for
// *bytes.Buffer, *bytes.Reader, and *strings.Reader bodies.
type RetryClient struct {
	// Client is the underlying HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// MaxAttempts bounds the total attempts, including the first (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); each retry without
	// a Retry-After hint doubles it.
	BaseDelay time.Duration
	// MaxDelay caps every wait, hinted or not (default 2s) — a soak driver
	// should keep pressing rather than idle out a long server estimate.
	MaxDelay time.Duration
	// Sleep is a test hook for the waits (time.Sleep when nil).
	Sleep func(time.Duration)
}

func (c *RetryClient) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *RetryClient) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 50 * time.Millisecond
}

func (c *RetryClient) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 2 * time.Second
}

// retryable reports whether a status is a transient backpressure signal.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// Do sends req, retrying backpressure responses as described on RetryClient.
// It returns the last response (the caller owns its body) or the first
// transport error.
func (c *RetryClient) Do(req *http.Request) (*http.Response, error) {
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	if req.Body != nil && req.GetBody == nil {
		return nil, fmt.Errorf("server: RetryClient needs a replayable body (req.GetBody is nil)")
	}
	backoff := c.baseDelay()
	for attempt := 1; ; attempt++ {
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if !retryable(resp.StatusCode) || attempt == c.attempts() {
			return resp, nil
		}
		wait := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		} else {
			backoff *= 2
		}
		if wait > c.maxDelay() {
			wait = c.maxDelay()
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("server: RetryClient rebuilding request body: %w", err)
			}
			req.Body = body
		}
		sleep(wait)
	}
}
