package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// maxBodyBytes bounds request bodies: a batch never legitimately needs more
// (MaxBatch updates at a few dozen JSON bytes each).
const maxBodyBytes = 8 << 20

// Config parameterizes a Server.
type Config struct {
	// Instances is the number of independent graph instances served.
	Instances int
	// N, Phi, Seed, Parallelism configure each instance's core cluster;
	// instance i is seeded with Seed + i*0x9e3779b9 so instances are
	// independent but the fleet is reproducible from one seed.
	N           int
	Phi         float64
	Seed        uint64
	Parallelism int
	// QueueDepth bounds each instance's update queue (default 16); a full
	// queue refuses updates with 429 instead of buffering without bound.
	QueueDepth int
	// CheckpointDir, when set, is where Close checkpoints every instance
	// (instance-NNN.snap plus delta files) and where New looks for
	// checkpoint chains to restore.
	CheckpointDir string
	// CheckpointEvery, when positive (and CheckpointDir is set), starts a
	// background loop that checkpoints every instance at that period.
	// Periodic checkpoints quiesce each instance briefly but do not stop
	// the server; they are deltas whenever a base already exists.
	CheckpointEvery time.Duration
	// MaxDeltaChain bounds how many delta checkpoints may extend a full
	// base before the next checkpoint compacts the chain into a fresh base.
	// Zero or negative disables deltas: every checkpoint is a full
	// snapshot. (The mpcserve CLI defaults it to 8.)
	MaxDeltaChain int
}

// validate reports a descriptive usage error for an unusable config.
func (c Config) validate() error {
	if c.Instances < 1 {
		return fmt.Errorf("server: Instances = %d (want >= 1)", c.Instances)
	}
	if c.N < 2 {
		return fmt.Errorf("server: N = %d (want >= 2)", c.N)
	}
	if c.Phi <= 0 || c.Phi > 1 {
		return fmt.Errorf("server: Phi = %v (want (0, 1])", c.Phi)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("server: QueueDepth = %d (want >= 1)", c.QueueDepth)
	}
	return nil
}

// Server owns a fleet of graph instances and serves the HTTP API described
// in the package documentation. It implements http.Handler.
type Server struct {
	cfg    Config
	insts  []*instance
	mux    *http.ServeMux
	closed atomic.Bool

	// Background checkpoint loop (run only when CheckpointEvery > 0).
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// New builds the fleet. When cfg.CheckpointDir holds a checkpoint chain for
// an instance — a full base snapshot plus any delta files — that instance is
// restored from it (config-echo and chain-identity validated), so a
// gracefully stopped server resumes bit-identically; instances without a
// base start empty. Stale temp files from a checkpoint interrupted mid-write
// are swept before loading.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Instances; i++ {
		icfg := core.Config{
			N:           cfg.N,
			Phi:         cfg.Phi,
			Seed:        cfg.Seed + uint64(i)*0x9e3779b9,
			Parallelism: cfg.Parallelism,
		}
		in, err := newInstance(i, icfg, cfg.QueueDepth)
		if err != nil {
			s.stopInstances()
			return nil, err
		}
		s.insts = append(s.insts, in)
		if cfg.CheckpointDir != "" {
			path := instancePath(cfg.CheckpointDir, i)
			if _, err := snapshot.SweepStaleTemps(path); err != nil {
				s.stopInstances()
				return nil, fmt.Errorf("server: sweeping stale temps for instance %d: %w", i, err)
			}
			in.chain = snapshot.OpenChain(path, cfg.MaxDeltaChain)
			if _, err := in.chain.Restore(in); err != nil {
				s.stopInstances()
				return nil, fmt.Errorf("server: restore instance %d from %s: %w", i, path, err)
			}
		}
	}
	s.routes()
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s, nil
}

// checkpointLoop checkpoints the whole fleet at the configured period until
// Close stops it. Per-instance errors mark that instance failed (its health
// flips in /instances and /metrics) but do not stop the loop or the server —
// the other instances keep checkpointing.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			for _, in := range s.insts {
				in.checkpointQuiesced()
			}
		}
	}
}

// stopInstances drains whatever instances were already started (used on
// construction failure so no applier goroutine leaks).
func (s *Server) stopInstances() {
	for _, in := range s.insts {
		in.drain()
	}
}

// Close gracefully shuts the fleet down: the background checkpoint loop (if
// any) stops, admission stops (updates get 503), every queue drains, and —
// when CheckpointDir is set — every instance is checkpointed through its
// chain (a delta when a base exists and the chain has room, a full base
// otherwise). One instance failing to checkpoint does not abort the rest:
// every instance gets its checkpoint attempt, and Close returns all
// failures joined. Idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	var wg sync.WaitGroup
	for _, in := range s.insts {
		wg.Add(1)
		go func(in *instance) {
			defer wg.Done()
			in.drain()
		}(in)
	}
	wg.Wait()
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	errs := make([]error, len(s.insts))
	for i, in := range s.insts {
		errs[i] = in.checkpointQuiesced()
	}
	return errors.Join(errs...)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /instances", s.handleList)
	s.mux.HandleFunc("POST /instances/{id}/updates", s.handleUpdates)
	s.mux.HandleFunc("POST /instances/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /instances/{id}/components", s.handleComponents)
	s.mux.HandleFunc("POST /instances/{id}/resize", s.handleResize)
	s.mux.HandleFunc("GET /instances/{id}/healthz", s.handleInstanceHealth)
}

// --- wire types ----------------------------------------------------------

// WireUpdate is one edge update of an UpdateRequest.
type WireUpdate struct {
	Op     string `json:"op"` // "insert" or "delete"
	U      int    `json:"u"`
	V      int    `json:"v"`
	Weight int64  `json:"weight,omitempty"`
}

// UpdateRequest is the body of POST /instances/{id}/updates.
type UpdateRequest struct {
	Updates []WireUpdate `json:"updates"`
}

// UpdateResponse acknowledges an enqueued batch. QueueDepth is the number
// of batches (including this one) not yet applied — the read-your-write lag.
type UpdateResponse struct {
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`
}

// QueryRequest is the body of POST /instances/{id}/query.
type QueryRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// QueryResponse carries the batched connectivity answers, aligned with the
// request pairs, plus the current component count.
type QueryResponse struct {
	Connected  []bool `json:"connected"`
	Components int    `json:"components"`
}

// ComponentsResponse is the body of GET /instances/{id}/components.
type ComponentsResponse struct {
	Labels []int `json:"labels"`
}

// InstanceInfo is one entry of GET /instances.
type InstanceInfo struct {
	ID         int     `json:"id"`
	N          int     `json:"n"`
	Phi        float64 `json:"phi"`
	Machines   int     `json:"machines"`
	MaxBatch   int     `json:"max_batch"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	Healthy    bool    `json:"healthy"`
}

// ResizeResponse acknowledges a completed POST /instances/{id}/resize.
type ResizeResponse struct {
	Machines           int `json:"machines"`
	VerticesPerMachine int `json:"vertices_per_machine"`
}

// --- handlers ------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.closed.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	out := make([]InstanceInfo, 0, len(s.insts))
	for _, in := range s.insts {
		dc := in.dc.Load()
		out = append(out, InstanceInfo{
			ID:         in.id,
			N:          in.cfg.N,
			Phi:        in.cfg.Phi,
			Machines:   dc.Config().MachineCount(),
			MaxBatch:   dc.MaxBatch(),
			QueueDepth: len(in.queue),
			QueueCap:   cap(in.queue),
			Healthy:    in.failed() == nil,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// instanceOf resolves the {id} path value, writing the error response
// itself when the id is missing, malformed, or out of range.
func (s *Server) instanceOf(w http.ResponseWriter, r *http.Request) (*instance, bool) {
	if s.closed.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return nil, false
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= len(s.insts) {
		http.Error(w, fmt.Sprintf("unknown instance %q (have 0..%d)", r.PathValue("id"), len(s.insts)-1), http.StatusNotFound)
		return nil, false
	}
	return s.insts[id], true
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad update request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Updates) == 0 {
		http.Error(w, "empty update batch", http.StatusBadRequest)
		return
	}
	if max := in.dc.Load().MaxBatch(); len(req.Updates) > max {
		http.Error(w, fmt.Sprintf("batch of %d exceeds the instance's MaxBatch %d", len(req.Updates), max),
			http.StatusRequestEntityTooLarge)
		return
	}
	b := make(graph.Batch, 0, len(req.Updates))
	for i, u := range req.Updates {
		// Range/self-loop checks before graph.NewEdge, which panics on a
		// self-loop rather than returning an error.
		if u.U == u.V || u.U < 0 || u.V < 0 || u.U >= in.cfg.N || u.V >= in.cfg.N {
			http.Error(w, fmt.Sprintf("update %d: invalid edge {%d,%d} over %d vertices", i, u.U, u.V, in.cfg.N),
				http.StatusUnprocessableEntity)
			return
		}
		switch u.Op {
		case "insert":
			b = append(b, graph.InsW(u.U, u.V, u.Weight))
		case "delete":
			b = append(b, graph.DelW(u.U, u.V, u.Weight))
		default:
			http.Error(w, fmt.Sprintf("update %d: unknown op %q (want insert or delete)", i, u.Op), http.StatusUnprocessableEntity)
			return
		}
	}
	err := in.offer(b)
	var bad *badBatchError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, UpdateResponse{Queued: len(b), QueueDepth: len(in.queue)})
	case errors.Is(err, errQueueFull):
		// The hint scales with the observed drain rate: a queue this deep
		// takes about EWMA x depth to make room, so clients back off harder
		// on slow instances instead of hammering a fixed one-second cadence.
		w.Header().Set("Retry-After", strconv.Itoa(in.retryAfterSeconds()))
		http.Error(w, "update queue full, retry later", http.StatusTooManyRequests)
	case errors.Is(err, errDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &bad):
		http.Error(w, "invalid batch: "+bad.Error(), http.StatusUnprocessableEntity)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	if err := in.failed(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		http.Error(w, "bad query request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) == 0 {
		http.Error(w, "empty query batch", http.StatusBadRequest)
		return
	}
	pairs := make([]core.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[1] < 0 || p[0] >= in.cfg.N || p[1] >= in.cfg.N {
			http.Error(w, fmt.Sprintf("pair %d: vertex outside [0,%d)", i, in.cfg.N), http.StatusUnprocessableEntity)
			return
		}
		pairs[i] = core.Pair{U: p[0], V: p[1]}
	}
	in.mu.RLock()
	dc := in.dc.Load()
	ans := dc.ConnectedAll(pairs)
	comps := dc.NumComponents()
	in.mu.RUnlock()
	in.queryBatches.Add(1)
	writeJSON(w, http.StatusOK, QueryResponse{Connected: ans, Components: comps})
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	if err := in.failed(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	raw := r.URL.Query().Get("vertices")
	if raw == "" {
		http.Error(w, "missing ?vertices=a,b,c", http.StatusBadRequest)
		return
	}
	parts := strings.Split(raw, ",")
	vertices := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v >= in.cfg.N {
			http.Error(w, fmt.Sprintf("bad vertex %q (want 0..%d)", p, in.cfg.N-1), http.StatusUnprocessableEntity)
			return
		}
		vertices = append(vertices, v)
	}
	in.mu.RLock()
	labels := in.dc.Load().ComponentsOf(vertices)
	in.mu.RUnlock()
	in.queryBatches.Add(1)
	writeJSON(w, http.StatusOK, ComponentsResponse{Labels: labels})
}

// handleResize serves POST /instances/{id}/resize?machines=M: the elastic
// resize described on instance.resize. 400 when no cluster shape realizes
// the requested count, 409 when the migrated state does not fit the target
// fleet's per-machine memory budget (the instance keeps serving at its old
// shape), 200 with the new shape on success.
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	machines, err := strconv.Atoi(r.URL.Query().Get("machines"))
	if err != nil {
		http.Error(w, "missing or malformed ?machines=M (want an integer)", http.StatusBadRequest)
		return
	}
	if err := in.resize(machines); err != nil {
		var re *resizeError
		if errors.As(err, &re) {
			http.Error(w, re.Error(), re.status)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, ResizeResponse{
		Machines:           in.machines(),
		VerticesPerMachine: in.dc.Load().Config().VerticesPerMachine,
	})
}

// handleInstanceHealth serves GET /instances/{id}/healthz: per-instance
// liveness and readiness. 503 after an applier failure (dead) and while the
// instance is quiesced for a checkpoint or resize (alive but not ready);
// 200 otherwise.
func (s *Server) handleInstanceHealth(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instanceOf(w, r)
	if !ok {
		return
	}
	if err := in.failed(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if in.quiesced.Load() {
		http.Error(w, "quiesced (checkpoint or resize in progress)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
