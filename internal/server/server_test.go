package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// testConfig is a small fleet that keeps unit tests fast.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{Instances: 2, N: 32, Phi: 0.6, Seed: 7, Parallelism: 1, QueueDepth: 4}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitDrained blocks until the instance's queue is empty and applied.
func waitDrained(t *testing.T, in *instance) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(in.queue) > 0 || in.batchesApplied.Load()+in.batchesRejected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	// One more round trip through the applier: queue empty does not mean the
	// in-flight batch finished; a write-lock acquisition does.
	in.mu.Lock()
	in.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
}

func TestServerUpdateQueryFlow(t *testing.T) {
	srv, ts := newTestServer(t, testConfig(t))
	resp := postJSON(t, ts.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{
		{Op: "insert", U: 0, V: 1},
		{Op: "insert", U: 1, V: 2},
		{Op: "insert", U: 4, V: 5},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	ack := decodeJSON[UpdateResponse](t, resp)
	if ack.Queued != 3 {
		t.Fatalf("queued %d updates, want 3", ack.Queued)
	}
	waitDrained(t, srv.insts[0])

	resp = postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: [][2]int{{0, 2}, {0, 4}, {4, 5}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	q := decodeJSON[QueryResponse](t, resp)
	want := []bool{true, false, true}
	for i := range want {
		if q.Connected[i] != want[i] {
			t.Errorf("pair %d: got %v, want %v", i, q.Connected[i], want[i])
		}
	}
	if q.Components != 32-3 {
		t.Errorf("components = %d, want %d", q.Components, 32-3)
	}

	// The other instance is independent: nothing is connected there.
	resp = postJSON(t, ts.URL+"/instances/1/query", QueryRequest{Pairs: [][2]int{{0, 1}}})
	if got := decodeJSON[QueryResponse](t, resp); got.Connected[0] {
		t.Error("instance 1 saw instance 0's edges")
	}

	// Components endpoint agrees with the pair queries.
	cresp, err := http.Get(ts.URL + "/instances/0/components?vertices=0,1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	labels := decodeJSON[ComponentsResponse](t, cresp).Labels
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[0] == labels[3] {
		t.Errorf("labels = %v: want 0,1,2 together and 3 apart", labels)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, testConfig(t))
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown instance", "/instances/99/query", QueryRequest{Pairs: [][2]int{{0, 1}}}, http.StatusNotFound},
		{"garbage id", "/instances/x/query", QueryRequest{Pairs: [][2]int{{0, 1}}}, http.StatusNotFound},
		{"empty batch", "/instances/0/updates", UpdateRequest{}, http.StatusBadRequest},
		{"self loop", "/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 3, V: 3}}}, http.StatusUnprocessableEntity},
		{"out of range", "/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 0, V: 99}}}, http.StatusUnprocessableEntity},
		{"bad op", "/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "upsert", U: 0, V: 1}}}, http.StatusUnprocessableEntity},
		{"delete absent", "/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "delete", U: 8, V: 9}}}, http.StatusUnprocessableEntity},
		{"duplicate edge", "/instances/0/updates", UpdateRequest{Updates: []WireUpdate{
			{Op: "insert", U: 0, V: 1}, {Op: "insert", U: 1, V: 0}}}, http.StatusUnprocessableEntity},
		{"empty query", "/instances/0/query", QueryRequest{}, http.StatusBadRequest},
		{"query out of range", "/instances/0/query", QueryRequest{Pairs: [][2]int{{0, 32}}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.url, tc.body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	// An oversize batch is refused up front with 413.
	big := UpdateRequest{}
	for i := 0; i <= srv.insts[0].dc.Load().MaxBatch(); i++ {
		big.Updates = append(big.Updates, WireUpdate{Op: "insert", U: 0, V: 1})
	}
	resp := postJSON(t, ts.URL+"/instances/0/updates", big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch: status %d, want 413", resp.StatusCode)
	}
}

// TestServerBackpressure pins the 429 contract: with the applier stalled
// (we hold the instance read lock, which blocks its write-lock acquisition)
// the bounded queue fills and the next batch is refused, with the refusal
// visible in the rejected counter and Retry-After set.
func TestServerBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	srv, ts := newTestServer(t, cfg)
	in := srv.insts[0]

	in.mu.RLock()
	stalled := true
	defer func() {
		if stalled {
			in.mu.RUnlock()
		}
	}()

	statuses := make([]int, 0, 4)
	for i := 0; i < cfg.QueueDepth+2; i++ {
		resp := postJSON(t, ts.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{
			{Op: "insert", U: 2 * i, V: 2*i + 1},
		}})
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
	// The applier may pull one batch out of the queue and stall holding it,
	// so up to QueueDepth+1 batches are admitted; the rest must be 429.
	rejected := 0
	for _, s := range statuses {
		switch s {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d (want 202 or 429)", s)
		}
	}
	if rejected == 0 {
		t.Fatalf("no batch was refused: statuses %v", statuses)
	}
	if got := in.batchesRejected.Load(); got != uint64(rejected) {
		t.Errorf("rejected counter = %d, want %d", got, rejected)
	}

	// Unstall: everything admitted must still apply.
	in.mu.RUnlock()
	stalled = false
	waitDrained(t, in)
	if got := int(in.batchesApplied.Load()); got != len(statuses)-rejected {
		t.Errorf("applied %d batches, want %d", got, len(statuses)-rejected)
	}
}

// TestServerCheckpointRestore pins the graceful-restart lifecycle: shut
// down with a checkpoint dir, start a new fleet from it, and the restored
// instances answer bit-identically — warm, and with intact admission
// mirrors (a delete of a restored edge is accepted, a duplicate insert is
// not).
func TestServerCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	for id := 0; id < cfg.Instances; id++ {
		resp := postJSON(t, fmt.Sprintf("%s/instances/%d/updates", ts1.URL, id), UpdateRequest{Updates: []WireUpdate{
			{Op: "insert", U: 0, V: 1, Weight: 3},
			{Op: "insert", U: 2, V: 3},
			{Op: "insert", U: 1, V: 2},
		}})
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("instance %d: status %d", id, resp.StatusCode)
		}
	}
	for _, in := range srv1.insts {
		waitDrained(t, in)
	}
	pairs := [][2]int{{0, 3}, {0, 4}, {2, 1}}
	resp := postJSON(t, ts1.URL+"/instances/0/query", QueryRequest{Pairs: pairs})
	before := decodeJSON[QueryResponse](t, resp)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, cfg)
	for _, in := range srv2.insts {
		if got := in.restoreCycles.Load(); got != 1 {
			t.Errorf("instance %d: restore cycles = %d, want 1", in.id, got)
		}
		if got := in.mirror.M(); got != 3 {
			t.Errorf("instance %d: restored mirror has %d edges, want 3", in.id, got)
		}
	}
	resp = postJSON(t, ts2.URL+"/instances/0/query", QueryRequest{Pairs: pairs})
	after := decodeJSON[QueryResponse](t, resp)
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Errorf("restored answers %v, want %v", after, before)
	}
	// The label cache was restored warm: the query above must not have run
	// a collective.
	if hits, misses := srv2.insts[0].dc.Load().QueryCacheStats(); hits == 0 || misses != 0 {
		t.Errorf("restored query was not warm: hits=%d misses=%d", hits, misses)
	}
	// Admission mirror survived: duplicate insert refused, delete accepted.
	resp = postJSON(t, ts2.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 0, V: 1}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("duplicate insert after restore: status %d, want 422", resp.StatusCode)
	}
	resp = postJSON(t, ts2.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "delete", U: 0, V: 1}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("delete of restored edge: status %d, want 202", resp.StatusCode)
	}
}

// TestMetricsEndpoint asserts the advertised metric names are present and
// the series the acceptance criteria care about are nonzero after traffic.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, testConfig(t))
	resp := postJSON(t, ts.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 0, V: 1}}})
	resp.Body.Close()
	waitDrained(t, srv.insts[0])
	for i := 0; i < 3; i++ {
		resp = postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: [][2]int{{0, 1}}})
		resp.Body.Close()
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body := readAll(t, mresp)
	for _, name := range []string{
		"mpcserve_rounds_total",
		"mpcserve_query_cache_hits_total",
		"mpcserve_query_cache_misses_total",
		"mpcserve_update_batches_applied_total",
		"mpcserve_updates_applied_total",
		"mpcserve_update_batches_rejected_total",
		"mpcserve_query_batches_total",
		"mpcserve_queue_depth",
		"mpcserve_restore_cycles_total",
		"mpcserve_instance_healthy",
		"mpcserve_batch_apply_seconds_bucket",
		"mpcserve_batch_apply_seconds_sum",
		"mpcserve_batch_apply_seconds_count",
		"mpcserve_checkpoint_total",
		"mpcserve_checkpoint_bytes_total",
		"mpcserve_checkpoint_seconds_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
	// Cold query then two warm ones: both series nonzero, and one batch
	// produced a latency sample.
	for _, want := range []string{
		`mpcserve_query_cache_hits_total{instance="0"} 2`,
		`mpcserve_query_cache_misses_total{instance="0"} 1`,
		`mpcserve_batch_apply_seconds_count{instance="0"} 1`,
		`mpcserve_instance_healthy{instance="0"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Instances: 0, N: 16, Phi: 0.6},
		{Instances: 1, N: 1, Phi: 0.6},
		{Instances: 1, N: 16, Phi: 0},
		{Instances: 1, N: 16, Phi: 1.5},
		{Instances: 1, N: 16, Phi: 0.6, QueueDepth: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestValidateBatch(t *testing.T) {
	g := graph.New(8)
	if err := g.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	ok := graph.Batch{graph.Ins(2, 3), graph.Del(0, 1)}
	if err := validateBatch(g, ok); err != nil {
		t.Errorf("valid batch refused: %v", err)
	}
	for name, b := range map[string]graph.Batch{
		"dup insert":    {graph.Ins(0, 1)},
		"absent delete": {graph.Del(4, 5)},
		"touch twice":   {graph.Ins(2, 3), graph.Del(2, 3)},
		"out of range":  {{Op: graph.Insert, Edge: graph.Edge{U: 0, V: 99}}},
		"negative":      {{Op: graph.Insert, Edge: graph.Edge{U: -1, V: 2}}},
	} {
		if err := validateBatch(g, b); err == nil {
			t.Errorf("%s: batch accepted", name)
		}
	}
	// validateBatch never mutates the graph.
	if g.M() != 1 {
		t.Errorf("validation mutated the graph: M = %d", g.M())
	}
}

// TestServerDeltaCheckpointChain is the server-side chain contract: a
// second graceful shutdown writes a delta (the base already exists), and a
// fleet restored from base+delta answers bit-identically to the fleet that
// wrote it — warm cache and intact admission mirror included.
func TestServerDeltaCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir
	cfg.MaxDeltaChain = 4

	// Generation 1: full base on shutdown.
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	resp := postJSON(t, ts1.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{
		{Op: "insert", U: 0, V: 1},
		{Op: "insert", U: 2, V: 3},
	}})
	resp.Body.Close()
	waitDrained(t, srv1.insts[0])
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv1.insts[0].ckptFullCount.Load(); got != 1 {
		t.Fatalf("generation 1 wrote %d full checkpoints, want 1", got)
	}

	// Generation 2: restores the base, applies more updates, and its
	// shutdown checkpoint must be a delta extending that base.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	resp = postJSON(t, ts2.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{
		{Op: "insert", U: 1, V: 2},
		{Op: "delete", U: 2, V: 3},
	}})
	resp.Body.Close()
	waitDrained(t, srv2.insts[0])
	pairs := [][2]int{{0, 2}, {2, 3}, {0, 3}}
	resp = postJSON(t, ts2.URL+"/instances/0/query", QueryRequest{Pairs: pairs})
	before := decodeJSON[QueryResponse](t, resp)
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if full, delta := srv2.insts[0].ckptFullCount.Load(), srv2.insts[0].ckptDeltaCount.Load(); full != 0 || delta != 1 {
		t.Fatalf("generation 2 wrote full=%d delta=%d checkpoints, want 0 full, 1 delta", full, delta)
	}
	if _, err := os.Stat(instancePath(dir, 0) + ".delta-001"); err != nil {
		t.Fatalf("delta file missing after generation 2 shutdown: %v", err)
	}

	// Generation 3: restored from base+delta, answers must match and the
	// cache must be warm (no collective ran for the repeated query).
	srv3, ts3 := newTestServer(t, cfg)
	for _, in := range srv3.insts {
		if got := in.restoreCycles.Load(); got != 2 {
			t.Errorf("instance %d: restore cycles = %d, want 2", in.id, got)
		}
	}
	resp = postJSON(t, ts3.URL+"/instances/0/query", QueryRequest{Pairs: pairs})
	after := decodeJSON[QueryResponse](t, resp)
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Errorf("restored answers %v, want %v", after, before)
	}
	if hits, misses := srv3.insts[0].dc.Load().QueryCacheStats(); hits == 0 || misses != 0 {
		t.Errorf("restore from base+delta was not warm: hits=%d misses=%d", hits, misses)
	}
	// Admission mirror replayed the delta journal: the deleted edge can be
	// re-inserted, the still-present one cannot.
	resp = postJSON(t, ts3.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 1, V: 2}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("duplicate insert after delta restore: status %d, want 422", resp.StatusCode)
	}
	resp = postJSON(t, ts3.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 2, V: 3}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("re-insert of delta-deleted edge: status %d, want 202", resp.StatusCode)
	}
}

// TestServerCloseCheckpointsEveryInstance pins the shutdown contract: one
// failed instance must not abort the fleet checkpoint — the healthy
// instances still get their snapshots, and Close reports the failure.
func TestServerCloseCheckpointsEveryInstance(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	resp := postJSON(t, ts.URL+"/instances/1/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 0, V: 1}}})
	resp.Body.Close()
	waitDrained(t, srv.insts[1])
	// Instance 0 (the first one Close visits) is failed: its checkpoint is
	// skipped with an error, but instance 1 must still be checkpointed.
	srv.insts[0].failure.Store(&applyFailure{err: errors.New("induced failure")})
	ts.Close()
	err = srv.Close()
	if err == nil || !strings.Contains(err.Error(), "induced failure") {
		t.Fatalf("Close error = %v, want the induced instance-0 failure reported", err)
	}
	if _, statErr := os.Stat(instancePath(dir, 1)); statErr != nil {
		t.Errorf("instance 1 was not checkpointed after instance 0 failed: %v", statErr)
	}
	if _, statErr := os.Stat(instancePath(dir, 0)); statErr == nil {
		t.Errorf("failed instance 0 wrote a checkpoint; its state is not trustworthy")
	}
}

// TestServerPeriodicCheckpoint exercises the background checkpoint loop: a
// live (non-shutdown) server cuts a full base then deltas on its own, while
// continuing to serve.
func TestServerPeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 20 * time.Millisecond
	cfg.MaxDeltaChain = 4
	srv, ts := newTestServer(t, cfg)
	resp := postJSON(t, ts.URL+"/instances/0/updates", UpdateRequest{Updates: []WireUpdate{{Op: "insert", U: 0, V: 1}}})
	resp.Body.Close()
	waitDrained(t, srv.insts[0])
	deadline := time.Now().Add(10 * time.Second)
	for srv.insts[0].ckptFullCount.Load() == 0 || srv.insts[0].ckptDeltaCount.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop wrote full=%d delta=%d checkpoints; want both kinds",
				srv.insts[0].ckptFullCount.Load(), srv.insts[0].ckptDeltaCount.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server still serves while checkpointing in the background.
	resp = postJSON(t, ts.URL+"/instances/0/query", QueryRequest{Pairs: [][2]int{{0, 1}}})
	if got := decodeJSON[QueryResponse](t, resp); !got.Connected[0] {
		t.Error("query answered wrong during background checkpointing")
	}
}
