package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleMetrics renders the fleet's metrics in Prometheus text exposition
// format. Every value is an atomic read, so scrapes never contend with the
// update or query paths.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	counter := func(name, help string, of func(in *instance) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, in := range s.insts {
			fmt.Fprintf(&b, "%s{instance=\"%d\"} %d\n", name, in.id, of(in))
		}
	}
	gauge := func(name, help string, of func(in *instance) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, in := range s.insts {
			fmt.Fprintf(&b, "%s{instance=\"%d\"} %s\n", name, in.id, formatFloat(of(in)))
		}
	}

	counter("mpcserve_rounds_total", "Cumulative MPC rounds executed by the instance (observed on the update path).",
		func(in *instance) uint64 { return uint64(in.rounds.Load()) })
	counter("mpcserve_query_cache_hits_total", "Query batches answered entirely from the warm label cache (zero rounds).",
		func(in *instance) uint64 { hits, _ := in.dc.Load().QueryCacheStats(); return hits })
	counter("mpcserve_query_cache_misses_total", "Query batches that ran a cache-fill collective.",
		func(in *instance) uint64 { _, misses := in.dc.Load().QueryCacheStats(); return misses })
	counter("mpcserve_update_batches_applied_total", "Update batches applied by the instance's applier.",
		func(in *instance) uint64 { return in.batchesApplied.Load() })
	counter("mpcserve_updates_applied_total", "Individual edge updates applied.",
		func(in *instance) uint64 { return in.updatesApplied.Load() })
	counter("mpcserve_update_batches_rejected_total", "Update batches refused with 429 because the queue was full.",
		func(in *instance) uint64 { return in.batchesRejected.Load() })
	counter("mpcserve_query_batches_total", "Query batches answered (connectivity and component lookups).",
		func(in *instance) uint64 { return in.queryBatches.Load() })
	counter("mpcserve_restore_cycles_total", "Checkpoint/restore cycles this instance has survived.",
		func(in *instance) uint64 { return in.restoreCycles.Load() })
	counter("mpcserve_reshard_total", "Elastic resizes completed (state migrated onto a new machine count).",
		func(in *instance) uint64 { return in.reshardCount.Load() })
	const reshardSec = "mpcserve_reshard_seconds"
	fmt.Fprintf(&b, "# HELP %s Wall-clock seconds spent quiesced in elastic resizes (checkpoint + re-shard + chain re-base).\n# TYPE %s counter\n", reshardSec, reshardSec)
	for _, in := range s.insts {
		fmt.Fprintf(&b, "%s{instance=\"%d\"} %s\n", reshardSec, in.id,
			formatFloat(time.Duration(in.reshardNanos.Load()).Seconds()))
	}
	// Checkpoint counters carry a kind label ("full" or "delta") so the cost
	// split of the delta strategy is visible directly from a scrape.
	kinded := func(name, help string, of func(in *instance, kind string) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, in := range s.insts {
			for _, kind := range []string{"full", "delta"} {
				fmt.Fprintf(&b, "%s{instance=\"%d\",kind=%q} %d\n", name, in.id, kind, of(in, kind))
			}
		}
	}
	kinded("mpcserve_checkpoint_total", "Checkpoints written, by container kind.",
		func(in *instance, kind string) uint64 {
			if kind == "delta" {
				return in.ckptDeltaCount.Load()
			}
			return in.ckptFullCount.Load()
		})
	kinded("mpcserve_checkpoint_bytes_total", "Checkpoint container bytes written, by kind.",
		func(in *instance, kind string) uint64 {
			if kind == "delta" {
				return in.ckptDeltaBytes.Load()
			}
			return in.ckptFullBytes.Load()
		})
	const ckptSec = "mpcserve_checkpoint_seconds_total"
	fmt.Fprintf(&b, "# HELP %s Wall-clock seconds spent writing checkpoints, by kind.\n# TYPE %s counter\n", ckptSec, ckptSec)
	for _, in := range s.insts {
		fmt.Fprintf(&b, "%s{instance=\"%d\",kind=\"full\"} %s\n", ckptSec, in.id,
			formatFloat(time.Duration(in.ckptFullNanos.Load()).Seconds()))
		fmt.Fprintf(&b, "%s{instance=\"%d\",kind=\"delta\"} %s\n", ckptSec, in.id,
			formatFloat(time.Duration(in.ckptDeltaNanos.Load()).Seconds()))
	}
	gauge("mpcserve_queue_depth", "Update batches waiting in the bounded queue.",
		func(in *instance) float64 { return float64(len(in.queue)) })
	gauge("mpcserve_cluster_machines", "Machines in the instance's MPC fleet (changes on resize).",
		func(in *instance) float64 { return float64(in.machines()) })
	gauge("mpcserve_instance_ready", "1 while the instance admits updates, 0 while quiesced or failed.",
		func(in *instance) float64 {
			if in.failed() != nil || in.quiesced.Load() {
				return 0
			}
			return 1
		})
	gauge("mpcserve_instance_healthy", "1 while the instance serves traffic, 0 after an applier failure.",
		func(in *instance) float64 {
			if in.failed() != nil {
				return 0
			}
			return 1
		})

	const hist = "mpcserve_batch_apply_seconds"
	fmt.Fprintf(&b, "# HELP %s Wall-clock latency of one applied update batch.\n# TYPE %s histogram\n", hist, hist)
	for _, in := range s.insts {
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += in.applyBuckets[i].Load()
			fmt.Fprintf(&b, "%s_bucket{instance=\"%d\",le=\"%s\"} %d\n", hist, in.id, formatFloat(ub), cum)
		}
		cum += in.applyBuckets[len(latencyBuckets)].Load()
		fmt.Fprintf(&b, "%s_bucket{instance=\"%d\",le=\"+Inf\"} %d\n", hist, in.id, cum)
		fmt.Fprintf(&b, "%s_sum{instance=\"%d\"} %s\n", hist, in.id,
			formatFloat(time.Duration(in.applyNanos.Load()).Seconds()))
		fmt.Fprintf(&b, "%s_count{instance=\"%d\"} %d\n", hist, in.id, in.applyCount.Load())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// the magnitudes used here, no trailing zeros).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
