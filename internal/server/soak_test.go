package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

// Soak dimensions. 8 writers + 504 readers = 512 concurrent clients over
// 8 instances, per the service acceptance bar.
const (
	soakInstances = 8
	soakReaders   = 504
	soakN         = 64
	soakBatches   = 24 // per instance; the restart happens after half
	soakBatchSize = 4
	soakQueryLen  = 8
)

// TestServerSoak drives the full service lifecycle under load: 512
// concurrent mixed read/write clients (workload.QueryMix streams) against 8
// instances, one graceful restart mid-soak (drain + checkpoint + restore),
// and a final bit-identical comparison of warm query answers against an
// uninterrupted in-process twin. Run under -race in CI.
func TestServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := Config{
		Instances:     soakInstances,
		N:             soakN,
		Phi:           0.6,
		Seed:          42,
		Parallelism:   1,
		QueueDepth:    8,
		CheckpointDir: t.TempDir(),
	}

	// Pre-record every writer's update stream. After this loop each mix's
	// mirror is static, so concurrent readers can draw query batches from it
	// race-free via NextQueriesFrom.
	mixes := make([]*workload.QueryMix, soakInstances)
	streams := make([][]graph.Batch, soakInstances)
	for i := range mixes {
		mixes[i] = workload.NewQueryMix(
			workload.NewChurn(workload.Config{N: soakN, Seed: cfg.Seed + uint64(i)}),
			soakN, cfg.Seed+uint64(i))
		for b := 0; b < soakBatches; b++ {
			streams[i] = append(streams[i], mixes[i].Next(soakBatchSize))
		}
	}

	// The uninterrupted twin: same per-instance core config (the server's
	// seed derivation), fed the identical recorded batches with no restart.
	twins := make([]*core.DynamicConnectivity, soakInstances)
	for i := range twins {
		dc, err := core.NewDynamicConnectivity(core.Config{
			N: soakN, Phi: cfg.Phi, Seed: cfg.Seed + uint64(i)*0x9e3779b9, Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range streams[i] {
			if err := dc.ApplyBatch(b); err != nil {
				t.Fatalf("twin %d: %v", i, err)
			}
		}
		twins[i] = dc
	}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	var baseURL atomic.Value
	baseURL.Store(ts1.URL)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        soakReaders + soakInstances,
		MaxIdleConnsPerHost: soakReaders + soakInstances,
	}}

	// post sends one JSON request through the RetryClient (which absorbs
	// short 429/503 bursts, honoring Retry-After); the outer writer/reader
	// loops still retry the transport errors of the restart window and any
	// backpressure outlasting the client's attempt budget.
	rc := &RetryClient{Client: client, MaxAttempts: 16,
		BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond}
	post := func(path string, body, out any) (status int, err error) {
		data, _ := json.Marshal(body)
		req, err := http.NewRequest("POST", baseURL.Load().(string)+path, bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rc.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
		}
		var sink bytes.Buffer
		_, _ = sink.ReadFrom(resp.Body)
		return resp.StatusCode, nil
	}
	retryable := func(status int, err error) bool {
		return err != nil || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
	}

	done := make(chan struct{})
	resume := make(chan struct{})
	var firstHalf, writers, readers sync.WaitGroup

	// Writers: one per instance, sending the recorded stream in order.
	// Between the halves they park at the restart barrier; retries are safe
	// because no writer traffic is in flight while the fleet restarts.
	wireBatch := func(b graph.Batch) UpdateRequest {
		req := UpdateRequest{Updates: make([]WireUpdate, len(b))}
		for j, up := range b {
			req.Updates[j] = WireUpdate{Op: up.Op.String(), U: up.Edge.U, V: up.Edge.V, Weight: up.Weight}
		}
		return req
	}
	sendStream := func(t *testing.T, id int, batches []graph.Batch) {
		path := fmt.Sprintf("/instances/%d/updates", id)
		for _, b := range batches {
			for {
				status, err := post(path, wireBatch(b), nil)
				if status == http.StatusAccepted {
					break
				}
				if !retryable(status, err) {
					t.Errorf("writer %d: status %d, err %v", id, status, err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	firstHalf.Add(soakInstances)
	writers.Add(soakInstances)
	for i := 0; i < soakInstances; i++ {
		go func(id int) {
			defer writers.Done()
			sendStream(t, id, streams[id][:soakBatches/2])
			firstHalf.Done()
			<-resume
			sendStream(t, id, streams[id][soakBatches/2:])
		}(i)
	}

	// Readers: mixed query clients, each with its own salted deterministic
	// stream, hammering through the restart (retrying transport errors).
	readers.Add(soakReaders)
	var queriesServed atomic.Uint64
	for c := 0; c < soakReaders; c++ {
		go func(salt uint64) {
			defer readers.Done()
			id := int(salt) % soakInstances
			path := fmt.Sprintf("/instances/%d/query", id)
			for iter := uint64(0); ; iter++ {
				select {
				case <-done:
					return
				default:
				}
				pairs := mixes[id].NextQueriesFrom(salt<<16|iter, soakQueryLen)
				var resp QueryResponse
				status, err := post(path, QueryRequest{Pairs: pairs}, &resp)
				if retryable(status, err) {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if status != http.StatusOK {
					t.Errorf("reader %d: status %d", salt, status)
					return
				}
				if len(resp.Connected) != len(pairs) {
					t.Errorf("reader %d: %d answers for %d pairs", salt, len(resp.Connected), len(pairs))
					return
				}
				queriesServed.Add(1)
			}
		}(uint64(c))
	}

	// Graceful restart at the halfway mark, with readers still hammering.
	firstHalf.Wait()
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	for _, in := range srv2.insts {
		if got := in.restoreCycles.Load(); got != 1 {
			t.Errorf("instance %d: restore cycles = %d, want 1", in.id, got)
		}
	}
	baseURL.Store(ts2.URL)
	close(resume)

	writers.Wait()
	for _, in := range srv2.insts {
		waitDrained(t, in)
	}
	close(done)
	readers.Wait()
	if t.Failed() {
		t.Fatal("client errors during the soak; skipping verification")
	}
	t.Logf("soak: %d query batches served by %d readers", queriesServed.Load(), soakReaders)

	// Warm answers must be bit-identical to the uninterrupted twin. Query
	// twice: the first fill may run a collective, the second must be warm,
	// and both must agree with the twin exactly.
	for i := 0; i < soakInstances; i++ {
		pairs := mixes[i].NextQueriesFrom(0xdead, 32)
		want := twins[i].ConnectedAll(toCorePairs(pairs))
		wantComps := twins[i].NumComponents()
		for pass := 0; pass < 2; pass++ {
			var resp QueryResponse
			status, err := post(fmt.Sprintf("/instances/%d/query", i), QueryRequest{Pairs: pairs}, &resp)
			if err != nil || status != http.StatusOK {
				t.Fatalf("verify instance %d: status %d, err %v", i, status, err)
			}
			for j := range want {
				if resp.Connected[j] != want[j] {
					t.Errorf("instance %d pass %d pair %v: server %v, twin %v", i, pass, pairs[j], resp.Connected[j], want[j])
				}
			}
			if resp.Components != wantComps {
				t.Errorf("instance %d pass %d: %d components, twin has %d", i, pass, resp.Components, wantComps)
			}
		}
	}

	// Every instance must report ready on its per-instance healthz once the
	// soak has drained — liveness and readiness, scraped like CI does.
	for i := 0; i < soakInstances; i++ {
		hresp, err := client.Get(baseURL.Load().(string) + fmt.Sprintf("/instances/%d/healthz", i))
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Errorf("instance %d healthz = %d after the soak, want 200", i, hresp.StatusCode)
		}
	}

	// The metrics the acceptance bar names must be live: nonzero cache hits
	// (warm queries happened) and nonzero apply-latency samples.
	mresp, err := client.Get(baseURL.Load().(string) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, mresp)
	mresp.Body.Close()
	if hits := sumMetric(t, body, "mpcserve_query_cache_hits_total"); hits == 0 {
		t.Error("mpcserve_query_cache_hits_total is zero after the soak")
	}
	if n := sumMetric(t, body, "mpcserve_batch_apply_seconds_count"); n == 0 {
		t.Error("mpcserve_batch_apply_seconds_count is zero after the soak")
	}
	if n := sumMetric(t, body, "mpcserve_restore_cycles_total"); n != soakInstances {
		t.Errorf("mpcserve_restore_cycles_total sums to %d, want %d", n, soakInstances)
	}
}

func toCorePairs(pairs [][2]int) []core.Pair {
	out := make([]core.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = core.Pair{U: p[0], V: p[1]}
	}
	return out
}

// sumMetric adds up a metric's value across every instance label in a
// Prometheus text exposition body.
func sumMetric(t *testing.T, body, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} (\d+)$`)
	var sum uint64
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatalf("metric %s: bad value %q", name, m[1])
		}
		sum += v
	}
	return sum
}
