// Package server turns the batched-MPC connectivity simulator into a
// long-running HTTP service: one process owns many independent graph
// instances and serves concurrent mutation and query traffic against all of
// them, with bounded queues in front of the update path, zero-round warm
// reads out of the coordinator label cache, Prometheus metrics, and
// checkpoint-on-shutdown / restore-on-startup via internal/snapshot.
//
// # Instances and concurrency
//
// Each instance is an independent core.DynamicConnectivity over its own MPC
// cluster, identified by an integer id in [0, Instances). The instance
// enforces the core query engine's single-writer/many-reader contract (see
// internal/core/query.go) with a per-instance RWMutex: exactly one applier
// goroutine drains the instance's update queue and applies batches under
// the write lock, while any number of request handlers answer query batches
// under the read lock. Warm queries touch only the label cache and run
// fully in parallel; cache misses serialize their one collective among
// themselves but never overlap an update.
//
// # Endpoints
//
//	GET  /healthz                     liveness (200 "ok")
//	GET  /instances                   instance inventory with queue/config info
//	POST /instances/{id}/updates      enqueue one update batch (async)
//	POST /instances/{id}/query        answer a batch of connectivity queries
//	GET  /instances/{id}/components?vertices=a,b,c   component labels
//	GET  /metrics                     Prometheus text-format metrics
//
// Updates are JSON batches {"updates": [{"op": "insert"|"delete", "u": 0,
// "v": 1, "weight": 3}, ...]}; a batch is validated against the instance's
// mirror graph at admission (vertex range, no self-loops, each edge touched
// at most once, inserts of absent edges, deletes of present ones) and then
// applied asynchronously, in admission order, by the applier. A successful
// enqueue returns 202 Accepted — read-your-write is NOT guaranteed until
// the queue drains; the queue_depth field of the response and the
// mpcserve_queue_depth gauge expose the lag. Queries are JSON pair batches
// {"pairs": [[u,v], ...]} answered via the batched QueryBatch path
// (ConnectedAll): zero rounds when the label cache is warm, one O(1/φ)-round
// collective otherwise.
//
// # Backpressure
//
// The update queue is bounded (Config.QueueDepth). When it is full the
// server refuses the batch with 429 Too Many Requests and a Retry-After
// header instead of buffering without bound; the client owns the retry.
// Invalid batches are 422, batches exceeding the instance's MaxBatch are
// 413, and updates sent during shutdown are 503.
//
// # Checkpointing
//
// Close drains every queue (new updates get 503), then — when
// Config.CheckpointDir is set — checkpoints every instance into
// instance-NNN.snap files via snapshot.WriteFileAtomic (temp file, fsync,
// rename), so a crash during shutdown never truncates a previous good
// checkpoint. New restores any instance whose snapshot file exists, after
// config-echo validation, and the restored label cache keeps warm queries
// warm: answers after a graceful restart are bit-identical to a process
// that never restarted.
//
// # Metrics
//
// All metrics carry an instance="N" label:
//
//	mpcserve_rounds_total                  counter; MPC rounds executed (update path)
//	mpcserve_query_cache_hits_total        counter; query batches answered warm (zero rounds)
//	mpcserve_query_cache_misses_total      counter; query batches that ran a cache-fill collective
//	mpcserve_update_batches_applied_total  counter
//	mpcserve_updates_applied_total         counter; individual edge updates
//	mpcserve_update_batches_rejected_total counter; 429 backpressure refusals
//	mpcserve_query_batches_total           counter
//	mpcserve_queue_depth                   gauge; batches waiting in the update queue
//	mpcserve_restore_cycles_total          counter; checkpoint/restore cycles survived
//	mpcserve_instance_healthy              gauge; 0 after an applier failure
//	mpcserve_batch_apply_seconds           histogram; wall time per applied batch
package server
