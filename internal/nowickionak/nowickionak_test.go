package nowickionak

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/hash"
	"repro/internal/oracle"
)

func newMatcher(t *testing.T, n int) *Matcher {
	t.Helper()
	m, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkMaximal asserts the matcher's matching is a valid maximal matching
// of g.
func checkMaximal(t *testing.T, m *Matcher, g *graph.Graph) {
	t.Helper()
	match := m.Matching()
	if !oracle.IsMatching(g, match) {
		t.Fatalf("output %v is not a matching of the graph", match)
	}
	covered := map[int]bool{}
	for _, e := range match {
		covered[e.U] = true
		covered[e.V] = true
	}
	for _, e := range g.Edges() {
		if !covered[e.U] && !covered[e.V] {
			t.Fatalf("edge %v violates maximality (matching %v)", e.Edge, match)
		}
	}
	if m.Size() != len(match) {
		t.Fatalf("Size() = %d, matching has %d edges", m.Size(), len(match))
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestInsertOnlyGreedy(t *testing.T) {
	m := newMatcher(t, 16)
	g := graph.New(16)
	b := graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)}
	_ = g.Apply(b)
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
}

func TestDeleteUnmatchedEdge(t *testing.T) {
	m := newMatcher(t, 16)
	g := graph.New(16)
	b := graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)}
	_ = g.Apply(b)
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	// Whichever edge is unmatched, deleting it must not disturb the
	// matching; deleting the matched one must re-match via the other.
	match := m.Matching()
	var unmatched graph.Edge
	if len(match) != 1 {
		t.Fatalf("matching = %v", match)
	}
	if match[0] == graph.NewEdge(0, 1) {
		unmatched = graph.NewEdge(1, 2)
	} else {
		unmatched = graph.NewEdge(0, 1)
	}
	del := graph.Batch{graph.Del(unmatched.U, unmatched.V)}
	_ = g.Apply(del)
	if err := m.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
	if m.Size() != 1 {
		t.Errorf("Size = %d after deleting unmatched edge", m.Size())
	}
}

func TestDeleteMatchedEdgeRematches(t *testing.T) {
	m := newMatcher(t, 16)
	g := graph.New(16)
	// Path 0-1-2-3: any maximal matching here; then delete the matched
	// middle and verify re-matching.
	b := graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)}
	_ = g.Apply(b)
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	match := m.Matching()
	del := graph.Batch{graph.Del(match[0].U, match[0].V)}
	_ = g.Apply(del)
	if err := m.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
}

func TestAdjacentFreedVertices(t *testing.T) {
	// Freed vertices adjacent to each other must pair up (the
	// pending-pending race).
	m := newMatcher(t, 16)
	g := graph.New(16)
	b := graph.Batch{graph.Ins(0, 1), graph.Ins(2, 3), graph.Ins(1, 2)}
	_ = g.Apply(b)
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	// Matching is {0,1}, {2,3}; delete both in one batch: 1 and 2 freed
	// and adjacent.
	del := graph.Batch{graph.Del(0, 1), graph.Del(2, 3)}
	_ = g.Apply(del)
	if err := m.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1 ({1,2})", m.Size())
	}
}

func TestStarGraphChurn(t *testing.T) {
	m := newMatcher(t, 16)
	g := graph.New(16)
	var b graph.Batch
	for leaf := 1; leaf < 8; leaf++ {
		b = append(b, graph.Ins(0, leaf))
	}
	_ = g.Apply(b)
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
	if m.Size() != 1 {
		t.Fatalf("star matching size = %d", m.Size())
	}
	// Delete the matched spoke; the center must re-match to another leaf.
	matched := m.Matching()[0]
	del := graph.Batch{graph.Del(matched.U, matched.V)}
	_ = g.Apply(del)
	if err := m.ApplyBatch(del); err != nil {
		t.Fatal(err)
	}
	checkMaximal(t, m, g)
	if m.Size() != 1 {
		t.Errorf("star matching size after churn = %d", m.Size())
	}
}

func TestRandomizedChurnMaximality(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for _, seed := range []uint64{3, 4, 5, 6} {
		seed := seed
		t.Run("", func(t *testing.T) {
			const n = 32
			m := newMatcher(t, n)
			g := graph.New(n)
			prg := hash.NewPRG(seed * 41)
			for step := 0; step < 30; step++ {
				var b graph.Batch
				used := map[graph.Edge]bool{}
				size := 1 + int(prg.NextN(8))
				for attempts := 0; len(b) < size && attempts < 100; attempts++ {
					u, v := int(prg.NextN(n)), int(prg.NextN(n))
					if u == v {
						continue
					}
					e := graph.NewEdge(u, v)
					if used[e] {
						continue
					}
					used[e] = true
					if g.Has(e.U, e.V) {
						_ = g.Delete(e.U, e.V)
						b = append(b, graph.Del(e.U, e.V))
					} else {
						_ = g.Insert(e.U, e.V, 0)
						b = append(b, graph.Ins(e.U, e.V))
					}
				}
				if err := m.ApplyBatch(b); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				checkMaximal(t, m, g)
			}
			if v := m.Cluster().Stats().Violations; len(v) > 0 {
				t.Fatalf("violations: %v", v[0])
			}
		})
	}
}

func TestTwoApproximation(t *testing.T) {
	// Maximal matching is at least half the maximum matching.
	const n = 20
	m := newMatcher(t, n)
	g := graph.New(n)
	prg := hash.NewPRG(77)
	var b graph.Batch
	for total := 0; total < 30; {
		u, v := int(prg.NextN(n)), int(prg.NextN(n))
		if u == v || g.Has(u, v) {
			continue
		}
		_ = g.Insert(u, v, 0)
		b = append(b, graph.Ins(u, v))
		total++
		if len(b) == 10 {
			if err := m.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			b = nil
		}
	}
	if err := m.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	opt := oracle.MaxMatchingSize(g)
	if 2*m.Size() < opt {
		t.Errorf("maximal matching %d below half of maximum %d", m.Size(), opt)
	}
}

// TestDegenerateTopologies cross-checks the matcher against the oracle on
// each degenerate edge set (the regimes PR 1's randomized audit never
// exercised): maximality (hence 2-approximation) must hold after the
// build-up, after deleting every other edge (a correlated burst of freed
// vertices), and after reinserting the deleted half.
func TestDegenerateTopologies(t *testing.T) {
	const n, batch = 36, 8
	for _, name := range graphtest.TopologyNames {
		t.Run(name, func(t *testing.T) {
			edges := graphtest.Topology(name, n)
			m := newMatcher(t, n)
			g := graph.New(n)
			apply := func(b graph.Batch) {
				t.Helper()
				if err := g.Apply(b); err != nil {
					t.Fatal(err)
				}
				if err := m.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
				checkMaximal(t, m, g)
			}
			for i := 0; i < len(edges); i += batch {
				var b graph.Batch
				for _, e := range edges[i:min(i+batch, len(edges))] {
					b = append(b, graph.Ins(e.U, e.V))
				}
				apply(b)
			}
			opt := oracle.MaxMatchingSize(g)
			if m.Size() > opt || 2*m.Size() < opt {
				t.Fatalf("size %d outside [opt/2, opt] for opt %d", m.Size(), opt)
			}
			var dropped []graph.Edge
			for i := 0; i < len(edges); i += 2 {
				dropped = append(dropped, edges[i])
			}
			for i := 0; i < len(dropped); i += batch {
				var b graph.Batch
				for _, e := range dropped[i:min(i+batch, len(dropped))] {
					b = append(b, graph.Del(e.U, e.V))
				}
				apply(b)
			}
			for i := 0; i < len(dropped); i += batch {
				var b graph.Batch
				for _, e := range dropped[i:min(i+batch, len(dropped))] {
					b = append(b, graph.Ins(e.U, e.V))
				}
				apply(b)
			}
			opt = oracle.MaxMatchingSize(g)
			if m.Size() > opt || 2*m.Size() < opt {
				t.Fatalf("post-churn size %d outside [opt/2, opt] for opt %d", m.Size(), opt)
			}
		})
	}
}
