package nowickionak

// Checkpoint/restore of the maximal-matching state (see package snapshot).
// A checkpoint captures the adjacency multiset and match pointer of every
// shard, the conflict-retry counter, the cached size readout, and the
// cluster metrics; the cluster shape is rederived by the constructor and
// validated on restore.

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// Section tags of the nowickionak layer.
const (
	tagMatcher      = 0x40
	tagMatcherShard = 0x41
)

// Checkpoint serializes the matcher state. Adjacency maps are emitted in
// sorted neighbor order so a checkpoint is a deterministic function of the
// logical state.
func (m *Matcher) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagMatcher)
	e.Int(m.n)
	e.Int(m.cl.Machines())
	e.Int(m.retryRounds)
	e.Int(m.size)
	e.Bool(m.sizeOK)
	snapshot.EncodeClusterStats(e, m.cl.Stats())
	for i := 0; i < m.cl.Machines(); i++ {
		mm := m.cl.Machine(i)
		sh := getShard(mm)
		e.Begin(tagMatcherShard)
		e.Int(i)
		e.Bool(sh != nil)
		if sh == nil {
			continue
		}
		e.Int(sh.lo)
		e.Int(sh.hi)
		e.Ints(sh.match)
		for _, adj := range sh.adj {
			ns := make([]int, 0, len(adj))
			for o := range adj {
				ns = append(ns, o)
			}
			sort.Ints(ns)
			e.Int(len(ns))
			for _, o := range ns {
				e.Int(o)
				e.Int(adj[o])
			}
		}
	}
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed matcher. On error the instance must be discarded.
func (m *Matcher) Restore(d *snapshot.Decoder) error {
	d.Begin(tagMatcher)
	n := d.Int()
	mach := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != m.n {
		return fmt.Errorf("nowickionak: snapshot of N=%d restored into N=%d", n, m.n)
	}
	if mach != m.cl.Machines() {
		return fmt.Errorf("nowickionak: snapshot of %d machines restored into %d", mach, m.cl.Machines())
	}
	m.retryRounds = d.Int()
	m.size = d.Int()
	m.sizeOK = d.Bool()
	st := snapshot.DecodeClusterStats(d)
	if err := d.Err(); err != nil {
		return err
	}
	m.cl.RestoreStats(st)
	for i := 0; i < m.cl.Machines(); i++ {
		if err := m.restoreShard(d, i); err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreShard loads machine i's adjacency and match state.
func (m *Matcher) restoreShard(d *snapshot.Decoder, i int) error {
	mm := m.cl.Machine(i)
	sh := getShard(mm)
	d.Begin(tagMatcherShard)
	id := d.Int()
	hasShard := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if id != i {
		return fmt.Errorf("nowickionak: shard section for machine %d where %d was expected", id, i)
	}
	if hasShard != (sh != nil) {
		return fmt.Errorf("nowickionak: snapshot/instance disagree on machine %d holding a shard", i)
	}
	if sh == nil {
		return nil
	}
	lo, hi := d.Int(), d.Int()
	match := d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	if lo != sh.lo || hi != sh.hi {
		return fmt.Errorf("nowickionak: snapshot shard %d covers [%d,%d), instance covers [%d,%d)", i, lo, hi, sh.lo, sh.hi)
	}
	if len(match) != hi-lo {
		return fmt.Errorf("nowickionak: snapshot shard %d has %d match entries, want %d", i, len(match), hi-lo)
	}
	for _, p := range match {
		if p < -1 || p >= m.n {
			return fmt.Errorf("nowickionak: snapshot shard %d holds invalid match partner %d", i, p)
		}
	}
	copy(sh.match, match)
	sh.words = 0
	for v := range sh.adj {
		cnt := d.Count(2)
		adj := make(map[int]int, cnt)
		for j := 0; j < cnt && d.Err() == nil; j++ {
			o := d.Int()
			mult := d.Int()
			if o < 0 || o >= m.n || mult <= 0 {
				return fmt.Errorf("nowickionak: snapshot shard %d vertex %d holds invalid adjacency (%d, ×%d)",
					i, sh.lo+v, o, mult)
			}
			adj[o] = mult
		}
		sh.adj[v] = adj
		sh.words += 2 * len(adj)
	}
	return d.Err()
}
