// Package nowickionak implements a batch-dynamic maximal matching in the
// MPC model, the black-box substrate of the paper's dynamic matching
// results (Proposition 8.4, after Nowicki and Onak, SODA 2021). It
// maintains a maximal matching — hence a 2-approximate maximum matching —
// of a dynamically evolving graph under batches of edge insertions and
// deletions, using total memory proportional to the graph size and a
// constant number of collective rounds per batch plus a conflict-retry loop
// for re-matching vertices freed by deletions.
//
// The original algorithm's round bound is O(log 1/κ) for batches of size
// s^{1-κ}; this implementation uses a propose/accept/confirm protocol whose
// iteration count is the number of conflict rounds (measured and reported
// by the experiments, and small in practice). Maximality of the result is
// exact and is what Theorem 8.2/8.6 consume.
package nowickionak

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// Store slots.
const (
	slotShard = "no"
	slotBcast = "b"
	slotSize  = "sc" // coordinator size-cache meter (sizeMeter)
)

// sizeMeter folds the coordinator's cached matching-size readout into the
// MPC memory ledger (one word while the cache is valid), mirroring the
// label-cache metering of package core.
type sizeMeter struct{ m *Matcher }

// Words implements mpc.Sized.
func (s sizeMeter) Words() int {
	if s.m.sizeOK {
		return 1
	}
	return 0
}

// shard is one machine's vertex range: adjacency lists (every edge stored
// with both endpoints, with multiplicity — the sparsifiers of Section 8 can
// contribute the same edge through several samplers) and match pointers.
type shard struct {
	lo, hi int
	adj    []map[int]int // neighbor -> multiplicity
	match  []int         // partner vertex or -1
	words  int
}

// Words implements mpc.Sized.
func (s *shard) Words() int { return s.words + 2*(s.hi-s.lo) + 2 }

func (s *shard) owns(v int) bool { return v >= s.lo && v < s.hi }

// Matcher maintains the maximal matching.
type Matcher struct {
	n     int
	cl    *mpc.Cluster
	part  mpc.Partition
	coord int
	// retryRounds counts conflict-retry iterations across all batches.
	retryRounds int
	// size caches the matching size between updates (valid iff sizeOK), so
	// repeated Size readouts cost zero rounds.
	size   int
	sizeOK bool
}

// Config parameterizes a Matcher.
type Config struct {
	// N is the number of vertices.
	N int
	// VerticesPerMachine sizes the cluster (default 64).
	VerticesPerMachine int
	// MemoryPerMachine is the per-machine word budget (default
	// VerticesPerMachine * 128, leaving room for adjacency shards).
	MemoryPerMachine int
	Strict           bool
}

// New creates a matcher for an empty graph.
func New(cfg Config) (*Matcher, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("nowickionak: N = %d", cfg.N)
	}
	vpm := cfg.VerticesPerMachine
	if vpm == 0 {
		vpm = 64
	}
	mem := cfg.MemoryPerMachine
	if mem == 0 {
		mem = vpm * 128
	}
	mach := (cfg.N+vpm-1)/vpm + 1
	cl := mpc.NewCluster(mpc.Config{Machines: mach, LocalMemory: mem, Strict: cfg.Strict})
	m := &Matcher{
		n:     cfg.N,
		cl:    cl,
		part:  mpc.Partition{N: cfg.N, Machines: mach - 1},
		coord: mach - 1,
	}
	cl.LocalAll(func(mm *mpc.Machine) {
		if mm.ID == m.coord {
			return
		}
		lo, hi := m.part.Range(mm.ID)
		sh := &shard{lo: lo, hi: hi}
		sh.adj = make([]map[int]int, hi-lo)
		sh.match = make([]int, hi-lo)
		for i := range sh.adj {
			sh.adj[i] = map[int]int{}
			sh.match[i] = -1
		}
		mm.Set(slotShard, sh)
	})
	cl.Machine(m.coord).Set(slotSize, sizeMeter{m})
	return m, nil
}

// Cluster exposes the cluster for metering.
func (m *Matcher) Cluster() *mpc.Cluster { return m.cl }

// RetryRounds reports the cumulative conflict-retry iterations.
func (m *Matcher) RetryRounds() int { return m.retryRounds }

func getShard(mm *mpc.Machine) *shard {
	s, _ := mm.Get(slotShard).(*shard)
	return s
}

// batchPayload broadcasts the update batch.
type batchPayload struct{ b graph.Batch }

func (p batchPayload) Words() int { return 3 * len(p.b) }

// ApplyBatch applies a batch of updates and restores maximality.
func (m *Matcher) ApplyBatch(b graph.Batch) error {
	if len(b) == 0 {
		return nil
	}
	m.sizeOK = false
	// Phase 1: broadcast the batch; shards update adjacency multiplicities
	// and report (via a gather) which deleted edges vanished entirely.
	m.cl.Broadcast(m.coord, slotBcast, batchPayload{b: b})
	m.cl.LocalAll(func(mm *mpc.Machine) {
		sh := getShard(mm)
		if sh == nil {
			return
		}
		for _, u := range mm.Get(slotBcast).(batchPayload).b {
			e := u.Edge.Canonical()
			for _, v := range []int{e.U, e.V} {
				if !sh.owns(v) {
					continue
				}
				o := e.Other(v)
				if u.Op == graph.Insert {
					if sh.adj[v-sh.lo][o] == 0 {
						sh.words += 2
					}
					sh.adj[v-sh.lo][o]++
				} else if sh.adj[v-sh.lo][o] > 0 {
					sh.adj[v-sh.lo][o]--
					if sh.adj[v-sh.lo][o] == 0 {
						delete(sh.adj[v-sh.lo], o)
						sh.words -= 2
					}
				}
			}
		}
	})
	vanished := m.vanishedEdges(b)
	status := m.matchStatus(batchEndpoints(b))
	// Phase 2 (coordinator-local): unmatch deleted matched edges; greedily
	// match inserted edges among free endpoints.
	free := map[int]bool{}
	var unmatch []graph.Edge
	for _, u := range b {
		if u.Op != graph.Delete {
			continue
		}
		e := u.Edge.Canonical()
		if status[e.U] == e.V && vanished[e] {
			unmatch = append(unmatch, e)
			status[e.U], status[e.V] = -1, -1
			free[e.U], free[e.V] = true, true
		}
	}
	var newMatches []graph.Edge
	for _, u := range b {
		if u.Op != graph.Insert {
			continue
		}
		e := u.Edge.Canonical()
		if status[e.U] == -1 && status[e.V] == -1 {
			newMatches = append(newMatches, e)
			status[e.U], status[e.V] = e.V, e.U
			delete(free, e.U)
			delete(free, e.V)
		}
	}
	m.applyMatchChanges(unmatch, newMatches)
	// Phase 3: re-match freed vertices against the existing graph.
	freed := make([]int, 0, len(free))
	for v := range free {
		freed = append(freed, v)
	}
	sort.Ints(freed)
	return m.rematch(freed)
}

// vanishedEdges gathers, from the owners of the smaller endpoints, which
// deleted batch edges now have multiplicity zero.
func (m *Matcher) vanishedEdges(b graph.Batch) map[graph.Edge]bool {
	gathered := m.cl.Gather(m.coord, func(mm *mpc.Machine) mpc.Sized {
		// Last consumer of the batch broadcast: drop the transient payload so
		// no machine retains it past the operation (checkpoint cleanliness).
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		sh := getShard(mm)
		if sh == nil {
			return nil
		}
		var gone []graph.Edge
		for _, u := range payload.(batchPayload).b {
			if u.Op != graph.Delete {
				continue
			}
			e := u.Edge.Canonical()
			if sh.owns(e.U) && sh.adj[e.U-sh.lo][e.V] == 0 {
				gone = append(gone, e)
			}
		}
		if len(gone) == 0 {
			return nil
		}
		return mpc.Value{V: gone, N: 2 * len(gone)}
	})
	out := map[graph.Edge]bool{}
	for _, p := range gathered {
		for _, e := range p.(mpc.Value).V.([]graph.Edge) {
			out[e] = true
		}
	}
	return out
}

func batchEndpoints(b graph.Batch) []int {
	var out []int
	for _, u := range b {
		out = append(out, u.Edge.U, u.Edge.V)
	}
	return out
}

// matchStatus resolves the current partner (-1 if free) of each vertex.
func (m *Matcher) matchStatus(vertices []int) map[int]int {
	q := uniqueInts(vertices)
	m.cl.Broadcast(m.coord, slotBcast, mpc.Ints(q))
	res := m.cl.Aggregate(m.coord,
		func(mm *mpc.Machine) mpc.Sized {
			payload := mm.Get(slotBcast)
			mm.Delete(slotBcast)
			sh := getShard(mm)
			if sh == nil {
				return nil
			}
			out := map[int]int{}
			for _, v := range payload.(mpc.Ints) {
				if sh.owns(v) {
					out[v] = sh.match[v-sh.lo]
				}
			}
			if len(out) == 0 {
				return nil
			}
			return mpc.Value{V: out, N: 2 * len(out)}
		},
		func(a, b mpc.Sized) mpc.Sized {
			am := a.(mpc.Value).V.(map[int]int)
			for k, v := range b.(mpc.Value).V.(map[int]int) {
				am[k] = v
			}
			return mpc.Value{V: am, N: 2 * len(am)}
		},
	)
	out := map[int]int{}
	if res != nil {
		out = res.(mpc.Value).V.(map[int]int)
	}
	return out
}

// matchChange broadcasts matching mutations.
type matchChange struct {
	unmatch []graph.Edge
	match   []graph.Edge
}

func (c matchChange) Words() int { return 2 * (len(c.unmatch) + len(c.match)) }

func (m *Matcher) applyMatchChanges(unmatch, match []graph.Edge) {
	if len(unmatch) == 0 && len(match) == 0 {
		return
	}
	m.cl.Broadcast(m.coord, slotBcast, matchChange{unmatch: unmatch, match: match})
	m.cl.LocalAll(func(mm *mpc.Machine) {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		sh := getShard(mm)
		if sh == nil {
			return
		}
		c := payload.(matchChange)
		for _, e := range c.unmatch {
			for _, v := range []int{e.U, e.V} {
				if sh.owns(v) {
					sh.match[v-sh.lo] = -1
				}
			}
		}
		for _, e := range c.match {
			if sh.owns(e.U) {
				sh.match[e.U-sh.lo] = e.V
			}
			if sh.owns(e.V) {
				sh.match[e.V-sh.lo] = e.U
			}
		}
	})
}

// rematch restores maximality for the freed vertices with a
// propose/accept/confirm protocol. In each round every still-free pending
// vertex proposes to all neighbors; free targets accept the minimum
// proposer (pending targets defer to smaller ids) and send busy-but-free
// rejections to the rest; proposers confirm their minimum accepter. The
// globally minimum pending vertex with a free neighbor always matches, so
// the loop terminates; pending vertices retry only while some neighbor is
// observably free.
func (m *Matcher) rematch(freed []int) error {
	pending := freed
	for iter := 0; len(pending) > 0; iter++ {
		if iter > 2*len(freed)+8 {
			return fmt.Errorf("nowickionak: rematch did not converge (%d pending)", len(pending))
		}
		m.retryRounds++
		sawFree := m.rematchRound(pending)
		status := m.matchStatus(pending)
		var next []int
		for _, v := range pending {
			if status[v] == -1 && sawFree[v] {
				next = append(next, v)
			}
		}
		pending = next
	}
	return nil
}

// Propose/accept/reject/confirm traffic travels as three-word frames
// [from, to, kind] of the batched message codec: one packed buffer per
// (src, dst) machine pair per protocol step instead of one small payload
// per proposal.
const (
	kindPropose  = 0
	kindAccept   = 1
	kindBusyFree = 2 // busy-but-free rejection
	kindConfirm  = 3
)

// appendProposal adds one [from, to, kind] frame to dst's batch, acquiring
// the batch on first use.
func appendProposal(byOwner map[int]*mpc.MessageBatch, dst, from, to, kind int) {
	b := byOwner[dst]
	if b == nil {
		b = mpc.AcquireMessageBatch()
		byOwner[dst] = b
	}
	b.Append(uint64(from), uint64(to), uint64(kind))
}

// batchMessages flattens the per-owner batches into outgoing messages.
func batchMessages(byOwner map[int]*mpc.MessageBatch) []mpc.Message {
	if len(byOwner) == 0 {
		return nil
	}
	out := make([]mpc.Message, 0, len(byOwner))
	for owner, b := range byOwner {
		out = append(out, mpc.Message{To: owner, Payload: b})
	}
	return out
}

// rematchRound runs one protocol round and returns, per pending vertex,
// whether it observed a free neighbor (and hence should retry if unmatched).
func (m *Matcher) rematchRound(pending []int) []bool {
	pendSet := map[int]bool{}
	for _, v := range pending {
		pendSet[v] = true
	}
	m.cl.Broadcast(m.coord, slotBcast, mpc.Ints(pending))
	// abstain[v] is set when pending target v accepts a smaller proposer
	// and must therefore not confirm its own proposals this round. Both
	// marker sets are vertex-indexed slices, not maps: each slot is written
	// only by the machine owning that vertex, which keeps the closures
	// below inside the mpc.StepFunc concurrency contract.
	abstain := make([]bool, m.n)
	sawFree := make([]bool, m.n)
	// Step A: owners of pending vertices propose to every neighbor.
	m.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		sh := getShard(mm)
		if sh == nil {
			return nil
		}
		byOwner := map[int]*mpc.MessageBatch{}
		for _, v := range payload.(mpc.Ints) {
			if !sh.owns(v) || sh.match[v-sh.lo] != -1 {
				continue
			}
			for o := range sh.adj[v-sh.lo] {
				appendProposal(byOwner, m.part.Owner(o), v, o, kindPropose)
			}
		}
		return batchMessages(byOwner)
	})
	// Step B: free targets accept the minimum admissible proposer and send
	// busy-but-free rejections to the others.
	m.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		sh := getShard(mm)
		if sh == nil {
			return nil
		}
		props := map[int][]int{} // free target -> proposers
		for _, msg := range inbox {
			b := msg.Payload.(*mpc.MessageBatch)
			for p := range b.Frames {
				from, to := int(p[0]), int(p[1])
				if !sh.owns(to) || sh.match[to-sh.lo] != -1 {
					continue
				}
				props[to] = append(props[to], from)
			}
			b.Release()
		}
		byOwner := map[int]*mpc.MessageBatch{}
		for to, froms := range props {
			best := -1
			for _, f := range froms {
				if pendSet[to] && f >= to {
					continue // pending targets defer to smaller proposers
				}
				if best == -1 || f < best {
					best = f
				}
			}
			for _, f := range froms {
				kind := kindBusyFree
				if f == best {
					kind = kindAccept
				}
				appendProposal(byOwner, m.part.Owner(f), to, f, kind)
			}
			if best != -1 && pendSet[to] {
				abstain[to] = true
				sawFree[to] = true
			}
		}
		return batchMessages(byOwner)
	})
	// Step C: proposers confirm their minimum accepter (unless abstaining).
	m.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		sh := getShard(mm)
		if sh == nil {
			return nil
		}
		bestAccept := map[int]int{}
		for _, msg := range inbox {
			b := msg.Payload.(*mpc.MessageBatch)
			for p := range b.Frames {
				from, v, kind := int(p[0]), int(p[1]), int(p[2]) // v: the original proposer
				if !sh.owns(v) {
					continue
				}
				sawFree[v] = true // accept or busy-but-free: a free neighbor exists
				if kind != kindAccept || sh.match[v-sh.lo] != -1 || abstain[v] {
					continue
				}
				if cur, ok := bestAccept[v]; !ok || from < cur {
					bestAccept[v] = from
				}
			}
			b.Release()
		}
		byOwner := map[int]*mpc.MessageBatch{}
		for v, u := range bestAccept {
			sh.match[v-sh.lo] = u
			appendProposal(byOwner, m.part.Owner(u), v, u, kindConfirm)
		}
		return batchMessages(byOwner)
	})
	// Step D: accepters finalize.
	m.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		sh := getShard(mm)
		if sh == nil {
			return nil
		}
		for _, msg := range inbox {
			b := msg.Payload.(*mpc.MessageBatch)
			for p := range b.Frames {
				from, to, kind := int(p[0]), int(p[1]), int(p[2])
				if kind == kindConfirm && sh.owns(to) && sh.match[to-sh.lo] == -1 {
					sh.match[to-sh.lo] = from
				}
			}
			b.Release()
		}
		return nil
	})
	return sawFree
}

// Matching reads out the current matching (driver-level readout).
// Per-machine buckets keep the readout within the mpc.StepFunc concurrency
// contract (a shared append would race under a parallel executor).
func (m *Matcher) Matching() []graph.Edge {
	buckets := make([][]graph.Edge, m.cl.Machines())
	m.cl.LocalAll(func(mm *mpc.Machine) {
		sh := getShard(mm)
		if sh == nil {
			return
		}
		for i, p := range sh.match {
			v := sh.lo + i
			if p > v {
				buckets[mm.ID] = append(buckets[mm.ID], graph.Edge{U: v, V: p})
			}
		}
	})
	var out []graph.Edge
	for _, b := range buckets {
		out = append(out, b...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Size returns the current matching size via an O(1)-round aggregate,
// cached between updates (a repeated readout costs zero rounds).
func (m *Matcher) Size() int {
	if m.sizeOK {
		return m.size
	}
	res := m.cl.Aggregate(m.coord,
		func(mm *mpc.Machine) mpc.Sized {
			sh := getShard(mm)
			if sh == nil {
				return nil
			}
			n := 0
			for i, p := range sh.match {
				if p > sh.lo+i {
					n++
				}
			}
			return mpc.Word(uint64(n))
		},
		func(a, b mpc.Sized) mpc.Sized { return mpc.Word(uint64(a.(mpc.Word)) + uint64(b.(mpc.Word))) },
	)
	m.size = 0
	if res != nil {
		m.size = int(uint64(res.(mpc.Word)))
	}
	m.sizeOK = true
	return m.size
}

func uniqueInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}
