// Package sketchcodec moves sketches over the MPC simulator in batched
// binary form. It is the glue between the flat sketch representation
// (sketch.Arena / sketch.Sketch views, which expose their cells as raw
// words) and the mpc.MessageBatch codec: per-label sketch partials are
// encoded as [label, cells...] frames, merged frame-wise at the internal
// nodes of the aggregation tree, and decoded in place at the coordinator as
// views into the final batch buffer — no per-sketch heap objects, no
// interface-wrapped maps, and no allocation beyond the pooled batch
// buffers.
package sketchcodec

import (
	"sort"

	"repro/internal/mpc"
	"repro/internal/sketch"
)

// AggregateByLabel tree-combines per-label sketch sums to machine `to` and
// returns them decoded, keyed by label. collect runs on every machine and
// feeds each (label, sketch) contribution to add; contributions to the same
// label are summed (cell-wise, exactly commutative, so the fold order never
// shows in the result). Labels must be non-negative.
//
// The per-machine accumulation uses the space's scratch pool and the
// in-flight payloads use pooled message batches, so the steady-state sketch
// merge path of the recovery queries allocates only map headers. The
// returned sketches are views into the final batch buffer; they stay valid
// as long as the caller holds them (the final buffer is intentionally not
// returned to the pool).
func AggregateByLabel(
	cl *mpc.Cluster,
	to int,
	space *sketch.Space,
	collect func(mm *mpc.Machine, add func(label int, sk sketch.Sketch)),
) map[int]sketch.Sketch {
	stride := space.SketchWords()
	res := cl.Aggregate(to,
		func(mm *mpc.Machine) mpc.Sized {
			var labels []int
			acc := map[int]sketch.Sketch{}
			collect(mm, func(label int, sk sketch.Sketch) {
				if cur, ok := acc[label]; ok {
					cur.Add(sk)
					return
				}
				s := space.Scratch()
				s.CopyFrom(sk)
				acc[label] = s
				labels = append(labels, label)
			})
			if len(labels) == 0 {
				return nil
			}
			sort.Ints(labels)
			b := mpc.AcquireMessageBatch()
			for _, l := range labels {
				f := b.Grow(1 + stride)
				f[0] = uint64(l)
				copy(f[1:], acc[l].Cells())
				space.Release(acc[l])
			}
			return b
		},
		func(a, b mpc.Sized) mpc.Sized {
			ab, bb := a.(*mpc.MessageBatch), b.(*mpc.MessageBatch)
			out := mergeSorted(space, ab, bb)
			ab.Release()
			bb.Release()
			return out
		},
	)
	if res == nil {
		return map[int]sketch.Sketch{}
	}
	final := res.(*mpc.MessageBatch)
	out := make(map[int]sketch.Sketch, final.Len())
	for f := range final.Frames {
		out[int(f[0])] = space.View(f[1:])
	}
	return out
}

// mergeSorted merge-joins two label-sorted sketch batches into a fresh
// pooled batch: distinct labels are copied through, equal labels are summed
// cell-wise in the output frame.
func mergeSorted(space *sketch.Space, a, b *mpc.MessageBatch) *mpc.MessageBatch {
	out := mpc.AcquireMessageBatch()
	ca, cb := a.Cursor(), b.Cursor()
	fa, oka := ca.Next()
	fb, okb := cb.Next()
	for oka || okb {
		switch {
		case !okb || (oka && fa[0] < fb[0]):
			copy(out.Grow(len(fa)), fa)
			fa, oka = ca.Next()
		case !oka || fb[0] < fa[0]:
			copy(out.Grow(len(fb)), fb)
			fb, okb = cb.Next()
		default:
			f := out.Grow(len(fa))
			copy(f, fa)
			space.View(f[1:]).Add(space.View(fb[1:]))
			fa, oka = ca.Next()
			fb, okb = cb.Next()
		}
	}
	return out
}
