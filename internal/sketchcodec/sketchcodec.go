// Package sketchcodec moves sketches over the MPC simulator in batched
// binary form. It is the glue between the flat sketch representation
// (sketch.Arena / sketch.Sketch views, which expose their cells as raw
// words) and the mpc.MessageBatch codec: per-label sketch partials are
// encoded as [label, cells...] frames, merged frame-wise at the internal
// nodes of the aggregation tree, and decoded in place at the coordinator as
// views into the final batch buffer — no per-sketch heap objects, no
// interface-wrapped maps, and no allocation beyond the pooled batch
// buffers.
package sketchcodec

import (
	"sort"

	"repro/internal/mpc"
	"repro/internal/sketch"
)

// AggregateByLabel tree-combines per-label sketch sums to machine `to` and
// returns them decoded, keyed by label. collect runs on every machine and
// feeds each (label, sketch) contribution to add; contributions to the same
// label are summed (cell-wise, exactly commutative, so the fold order never
// shows in the result). Labels must be non-negative.
//
// The per-machine accumulation uses the space's scratch pool and the
// in-flight payloads use pooled message batches, so the steady-state sketch
// merge path of the recovery queries allocates only map headers. The
// returned sketches are views into the final batch buffer; they stay valid
// as long as the caller holds them (the final buffer is intentionally not
// returned to the pool).
func AggregateByLabel(
	cl *mpc.Cluster,
	to int,
	space *sketch.Space,
	collect func(mm *mpc.Machine, add func(label int, sk sketch.Sketch)),
) map[int]sketch.Sketch {
	stride := space.SketchWords()
	final := cl.AggregateBatches(to,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			var labels []int
			acc := map[int]sketch.Sketch{}
			collect(mm, func(label int, sk sketch.Sketch) {
				if cur, ok := acc[label]; ok {
					cur.Add(sk)
					return
				}
				s := space.Scratch()
				s.CopyFrom(sk)
				acc[label] = s
				labels = append(labels, label)
			})
			if len(labels) == 0 {
				return nil
			}
			sort.Ints(labels)
			b := mpc.AcquireMessageBatch()
			for _, l := range labels {
				f := b.Grow(1 + stride)
				f[0] = uint64(l)
				copy(f[1:], acc[l].Cells())
				space.Release(acc[l])
			}
			return b
		},
		func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
			return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) {
				space.View(dst[1:]).Add(space.View(src[1:]))
			})
		},
	)
	if final == nil {
		return map[int]sketch.Sketch{}
	}
	// Deliberate deviation from the AggregateBatches ownership contract: the
	// final batch is NOT released, because the returned sketches are views
	// aliasing its buffer (releasing it would let the pool recycle the words
	// under the caller's sketches). The buffer is surrendered to the GC when
	// the caller drops the map — one escaped buffer per replacement search,
	// traded for zero copying of the merged sketch cells.
	out := make(map[int]sketch.Sketch, final.Len())
	for f := range final.Frames {
		out[int(f[0])] = space.View(f[1:])
	}
	return out
}
