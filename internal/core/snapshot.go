package core

// Crash-safe checkpoint/restore of the connectivity stack (see package
// snapshot for the container format). A checkpoint captures everything a
// fresh instance cannot rederive: the per-machine vertex and edge shards,
// the sketch arenas, the coordinator-local tour-id counter and label cache
// (epoch-preserving, so a restored run's warm queries stay warm), and the
// cluster execution metrics. Shared randomness (edge hash, sketch spaces)
// is reconstructed deterministically from the configuration seed, so it is
// validated, not serialized.
//
// Restore must be called on a freshly constructed instance of the same
// configuration; mismatches are rejected with a descriptive error. On any
// error the instance is left in an undefined state and must be discarded —
// the container-level checks (magic, version, CRC) have already rejected
// corrupt files before restore begins.

import (
	"fmt"
	"sort"

	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// Section tags of the core layer.
const (
	tagForest           = 0x10
	tagForestShard      = 0x11
	tagSketchShard      = 0x12
	tagForestDelta      = 0x13
	tagForestShardDelta = 0x14
	tagSketchShardDelta = 0x15
)

// checkpointConfig writes the configuration echo shared by full and delta
// sections: the state-shaping parameters a restoring instance must match.
func (f *Forest) checkpointConfig(e *snapshot.Encoder) {
	e.Int(f.cfg.N)
	e.F64(f.cfg.Phi)
	e.Int(f.cfg.SketchCopies)
	e.U64(f.cfg.Seed)
	e.Int(f.cfg.VerticesPerMachine)
	e.Bool(f.weighted)
	e.Int(f.cl.Machines())
}

// restoreConfig reads and validates the configuration echo.
func (f *Forest) restoreConfig(d *snapshot.Decoder) error {
	n := d.Int()
	phi := d.F64()
	copies := d.Int()
	seed := d.U64()
	vpm := d.Int()
	weighted := d.Bool()
	mach := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	switch {
	case n != f.cfg.N:
		return fmt.Errorf("core: snapshot of N=%d restored into N=%d", n, f.cfg.N)
	case phi != f.cfg.Phi:
		return fmt.Errorf("core: snapshot of Phi=%v restored into Phi=%v", phi, f.cfg.Phi)
	case copies != f.cfg.SketchCopies:
		return fmt.Errorf("core: snapshot of SketchCopies=%d restored into SketchCopies=%d", copies, f.cfg.SketchCopies)
	case seed != f.cfg.Seed:
		return fmt.Errorf("core: snapshot of Seed=%d restored into Seed=%d", seed, f.cfg.Seed)
	case vpm != f.cfg.VerticesPerMachine:
		return fmt.Errorf("core: snapshot of VerticesPerMachine=%d restored into VerticesPerMachine=%d", vpm, f.cfg.VerticesPerMachine)
	case weighted != f.weighted:
		return fmt.Errorf("core: snapshot weighted=%v restored into weighted=%v", weighted, f.weighted)
	case mach != f.cl.Machines():
		return fmt.Errorf("core: snapshot of %d machines restored into %d", mach, f.cl.Machines())
	}
	return nil
}

// Checkpoint serializes the forest: configuration echo, tour-id counter,
// label cache, cluster stats, and one section per machine shard. It does
// not reset the delta journals — call AckCheckpoint once the container is
// durably written.
func (f *Forest) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagForest)
	f.checkpointConfig(e)
	e.U64(f.nextID)
	lc := &f.cache
	e.U64(uint64(lc.epoch))
	e.Int(lc.valid)
	e.Int(lc.numComps)
	e.Bool(lc.numCompsOK)
	e.Ints(lc.labels)
	e.Int(len(lc.stamp))
	for _, s := range lc.stamp {
		e.U64(uint64(s))
	}
	snapshot.EncodeClusterStats(e, f.cl.Stats())
	for i := 0; i < f.cl.Machines(); i++ {
		f.checkpointShard(e, i)
	}
}

// checkpointShard writes machine i's vertex and edge shard. Map contents
// are emitted in sorted key order so a checkpoint is a deterministic
// function of the logical state.
func (f *Forest) checkpointShard(e *snapshot.Encoder, i int) {
	mm := f.cl.Machine(i)
	e.Begin(tagForestShard)
	e.Int(i)
	vs := vShard(mm)
	e.Bool(vs != nil)
	if vs != nil {
		e.Int(vs.lo)
		e.Int(vs.hi)
		e.Ints(vs.comp)
		verts := make([]int, 0, len(vs.frag))
		for v := range vs.frag {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		e.Int(len(verts))
		for _, v := range verts {
			e.Int(v)
			e.U64(vs.frag[v])
		}
	}
	es := eShard(mm)
	recs := make([]*treeEdge, 0, len(es.recs))
	for _, te := range es.recs {
		recs = append(recs, te)
	}
	n := f.cfg.N
	sort.Slice(recs, func(a, b int) bool { return recs[a].rec.E.ID(n) < recs[b].rec.E.ID(n) })
	e.Int(len(recs))
	for _, te := range recs {
		e.Int(te.rec.E.U)
		e.Int(te.rec.E.V)
		e.U64(uint64(te.rec.Tour))
		e.Int(te.rec.UPos[0])
		e.Int(te.rec.UPos[1])
		e.Int(te.rec.VPos[0])
		e.Int(te.rec.VPos[1])
		e.I64(te.weight)
	}
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed forest, after validating that the snapshot's configuration
// matches (Parallelism and Strict are execution-engine choices, not state,
// and may differ between the checkpointing and the restoring process).
func (f *Forest) Restore(d *snapshot.Decoder) error {
	d.Begin(tagForest)
	if err := f.restoreConfig(d); err != nil {
		return err
	}
	f.nextID = d.U64()
	lc := &f.cache
	lc.epoch = uint32(d.U64())
	lc.valid = d.Int()
	lc.numComps = d.Int()
	lc.numCompsOK = d.Bool()
	labels := d.Ints()
	if d.Err() == nil && len(labels) != f.cfg.N {
		return fmt.Errorf("core: snapshot label cache of %d entries, want %d", len(labels), f.cfg.N)
	}
	copy(lc.labels, labels)
	ns := d.Int()
	if d.Err() == nil && ns != f.cfg.N {
		return fmt.Errorf("core: snapshot stamp array of %d entries, want %d", ns, f.cfg.N)
	}
	for i := 0; i < ns && d.Err() == nil; i++ {
		lc.stamp[i] = uint32(d.U64())
	}
	st := snapshot.DecodeClusterStats(d)
	if err := d.Err(); err != nil {
		return err
	}
	f.cl.RestoreStats(st)
	for i := 0; i < f.cl.Machines(); i++ {
		if err := f.restoreShard(d, i); err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreShard loads machine i's vertex and edge shard.
func (f *Forest) restoreShard(d *snapshot.Decoder, i int) error {
	mm := f.cl.Machine(i)
	d.Begin(tagForestShard)
	id := d.Int()
	hasV := d.Bool()
	vs := vShard(mm)
	if err := d.Err(); err != nil {
		return err
	}
	if id != i {
		return fmt.Errorf("core: shard section for machine %d where %d was expected", id, i)
	}
	if hasV != (vs != nil) {
		return fmt.Errorf("core: snapshot/instance disagree on machine %d holding a vertex shard", i)
	}
	if vs != nil {
		lo, hi := d.Int(), d.Int()
		comp := d.Ints()
		if err := d.Err(); err != nil {
			return err
		}
		if lo != vs.lo || hi != vs.hi {
			return fmt.Errorf("core: snapshot shard %d covers [%d,%d), instance covers [%d,%d)", i, lo, hi, vs.lo, vs.hi)
		}
		if len(comp) != hi-lo {
			return fmt.Errorf("core: snapshot shard %d has %d component entries, want %d", i, len(comp), hi-lo)
		}
		copy(vs.comp, comp)
		nf := d.Count(2)
		vs.frag = make(map[int]uint64, nf)
		for j := 0; j < nf && d.Err() == nil; j++ {
			v := d.Int()
			k := d.U64()
			if v < vs.lo || v >= vs.hi {
				return fmt.Errorf("core: snapshot shard %d holds fragment entry for foreign vertex %d", i, v)
			}
			vs.frag[v] = k
		}
	}
	es := eShard(mm)
	nr := d.Count(8)
	es.recs = make(map[graph.Edge]*treeEdge, nr)
	for j := 0; j < nr && d.Err() == nil; j++ {
		u, v := d.Int(), d.Int()
		tour := eulertour.TourID(d.U64())
		u0, u1 := d.Int(), d.Int()
		v0, v1 := d.Int(), d.Int()
		w := d.I64()
		if u < 0 || v < 0 || u >= v || v >= f.cfg.N {
			return fmt.Errorf("core: snapshot shard %d holds invalid tree edge {%d,%d}", i, u, v)
		}
		te := &treeEdge{
			rec: eulertour.Record{
				E:    graph.Edge{U: u, V: v},
				Tour: tour,
				UPos: [2]eulertour.Pos{u0, u1},
				VPos: [2]eulertour.Pos{v0, v1},
			},
			weight: w,
		}
		es.recs[te.rec.E] = te
	}
	if d.Err() == nil {
		// The restored state is the new delta baseline.
		if vs != nil {
			vs.resetJournal()
		}
		es.resetJournal()
	}
	return d.Err()
}

// CheckpointDelta serializes only what changed since the last acknowledged
// checkpoint: the coordinator driver state wholesale (tour counter, the
// current epoch's label-cache entries, cluster stats — all small and
// epoch-scoped, so diffing buys nothing) plus per-shard journals (changed
// component entries, the fragment map when touched, changed or deleted tree
// edges). Like Checkpoint it does not reset the journals; AckCheckpoint
// does, once the container is durable.
func (f *Forest) CheckpointDelta(e *snapshot.Encoder) {
	e.Begin(tagForestDelta)
	f.checkpointConfig(e)
	e.U64(f.nextID)
	lc := &f.cache
	e.U64(uint64(lc.epoch))
	e.Int(lc.numComps)
	e.Bool(lc.numCompsOK)
	e.Int(lc.valid)
	for v, s := range lc.stamp {
		if s == lc.epoch {
			e.Int(v)
			e.Int(lc.labels[v])
		}
	}
	snapshot.EncodeClusterStats(e, f.cl.Stats())
	for i := 0; i < f.cl.Machines(); i++ {
		f.checkpointShardDelta(e, i)
	}
}

// checkpointShardDelta writes machine i's journaled changes, in sorted
// order so a delta is a deterministic function of the logical change set.
func (f *Forest) checkpointShardDelta(e *snapshot.Encoder, i int) {
	mm := f.cl.Machine(i)
	e.Begin(tagForestShardDelta)
	e.Int(i)
	vs := vShard(mm)
	e.Bool(vs != nil)
	if vs != nil {
		e.Int(vs.compDirtyCount)
		vs.forEachDirtyComp(func(idx, c int) {
			e.Int(idx)
			e.Int(c)
		})
		e.Bool(vs.fragDirty)
		if vs.fragDirty {
			// The fragment map is transient and rebuilt wholesale by Cut;
			// ship it whole (it is empty or tiny between batches).
			verts := make([]int, 0, len(vs.frag))
			for v := range vs.frag {
				verts = append(verts, v)
			}
			sort.Ints(verts)
			e.Int(len(verts))
			for _, v := range verts {
				e.Int(v)
				e.U64(vs.frag[v])
			}
		}
	}
	es := eShard(mm)
	edges := make([]graph.Edge, 0, len(es.dirty))
	for ed := range es.dirty {
		edges = append(edges, ed)
	}
	n := f.cfg.N
	sort.Slice(edges, func(a, b int) bool { return edges[a].ID(n) < edges[b].ID(n) })
	e.Int(len(edges))
	for _, ed := range edges {
		te, present := es.recs[ed]
		e.Int(ed.U)
		e.Int(ed.V)
		e.Bool(present)
		if present {
			e.U64(uint64(te.rec.Tour))
			e.Int(te.rec.UPos[0])
			e.Int(te.rec.UPos[1])
			e.Int(te.rec.VPos[0])
			e.Int(te.rec.VPos[1])
			e.I64(te.weight)
		}
	}
}

// RestoreDelta applies a delta written by CheckpointDelta on top of already
// restored state (the base snapshot plus any earlier deltas of the chain).
// Upserts and tombstones are idempotent, so replaying a delta that overlaps
// an already-applied one (a retried checkpoint after a failed write) is
// harmless. Label-cache entries are restored by clearing every stamp and
// re-stamping the delta's current-epoch entries — observationally identical
// to the full restore's stamp image, because stale stamps behave exactly
// like cleared ones (the epoch is never 0).
func (f *Forest) RestoreDelta(d *snapshot.Decoder) error {
	d.Begin(tagForestDelta)
	if err := f.restoreConfig(d); err != nil {
		return err
	}
	f.nextID = d.U64()
	lc := &f.cache
	lc.epoch = uint32(d.U64())
	lc.numComps = d.Int()
	lc.numCompsOK = d.Bool()
	nv := d.Count(2)
	if err := d.Err(); err != nil {
		return err
	}
	clear(lc.stamp)
	for j := 0; j < nv && d.Err() == nil; j++ {
		v := d.Int()
		label := d.Int()
		if d.Err() != nil {
			break
		}
		if v < 0 || v >= f.cfg.N {
			return fmt.Errorf("core: delta label-cache entry for vertex %d out of range [0,%d)", v, f.cfg.N)
		}
		lc.labels[v] = label
		lc.stamp[v] = lc.epoch
	}
	lc.valid = nv
	st := snapshot.DecodeClusterStats(d)
	if err := d.Err(); err != nil {
		return err
	}
	f.cl.RestoreStats(st)
	for i := 0; i < f.cl.Machines(); i++ {
		if err := f.restoreShardDelta(d, i); err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreShardDelta applies machine i's journaled changes.
func (f *Forest) restoreShardDelta(d *snapshot.Decoder, i int) error {
	mm := f.cl.Machine(i)
	d.Begin(tagForestShardDelta)
	id := d.Int()
	hasV := d.Bool()
	vs := vShard(mm)
	if err := d.Err(); err != nil {
		return err
	}
	if id != i {
		return fmt.Errorf("core: delta shard section for machine %d where %d was expected", id, i)
	}
	if hasV != (vs != nil) {
		return fmt.Errorf("core: delta/instance disagree on machine %d holding a vertex shard", i)
	}
	if vs != nil {
		nc := d.Count(2)
		for j := 0; j < nc && d.Err() == nil; j++ {
			idx := d.Int()
			c := d.Int()
			if d.Err() != nil {
				break
			}
			if idx < 0 || idx >= vs.hi-vs.lo {
				return fmt.Errorf("core: delta shard %d component index %d out of range [0,%d)", i, idx, vs.hi-vs.lo)
			}
			vs.comp[idx] = c
		}
		if d.Bool() {
			nf := d.Count(2)
			frag := make(map[int]uint64, nf)
			for j := 0; j < nf && d.Err() == nil; j++ {
				v := d.Int()
				k := d.U64()
				if d.Err() != nil {
					break
				}
				if v < vs.lo || v >= vs.hi {
					return fmt.Errorf("core: delta shard %d holds fragment entry for foreign vertex %d", i, v)
				}
				frag[v] = k
			}
			if d.Err() == nil {
				vs.frag = frag
			}
		}
	}
	es := eShard(mm)
	ne := d.Count(3)
	for j := 0; j < ne && d.Err() == nil; j++ {
		u, v := d.Int(), d.Int()
		present := d.Bool()
		if d.Err() != nil {
			break
		}
		if u < 0 || v < 0 || u >= v || v >= f.cfg.N {
			return fmt.Errorf("core: delta shard %d holds invalid tree edge {%d,%d}", i, u, v)
		}
		ed := graph.Edge{U: u, V: v}
		if !present {
			delete(es.recs, ed)
			continue
		}
		tour := eulertour.TourID(d.U64())
		u0, u1 := d.Int(), d.Int()
		v0, v1 := d.Int(), d.Int()
		w := d.I64()
		if d.Err() != nil {
			break
		}
		es.recs[ed] = &treeEdge{
			rec: eulertour.Record{
				E:    ed,
				Tour: tour,
				UPos: [2]eulertour.Pos{u0, u1},
				VPos: [2]eulertour.Pos{v0, v1},
			},
			weight: w,
		}
	}
	if d.Err() == nil {
		if vs != nil {
			vs.resetJournal()
		}
		es.resetJournal()
	}
	return d.Err()
}

// AckCheckpoint marks the current forest state as durably captured: the
// per-shard delta journals reset, so the next CheckpointDelta emits only
// changes made after this call.
func (f *Forest) AckCheckpoint() {
	for i := 0; i < f.cl.Machines(); i++ {
		mm := f.cl.Machine(i)
		if vs := vShard(mm); vs != nil {
			vs.resetJournal()
		}
		eShard(mm).resetJournal()
	}
}

// Checkpoint serializes the full dynamic-connectivity state: the forest
// plus every machine's sketch arena (one contiguous word image per shard).
func (dc *DynamicConnectivity) Checkpoint(e *snapshot.Encoder) {
	dc.f.Checkpoint(e)
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		e.Begin(tagSketchShard)
		e.Int(i)
		e.Bool(ok)
		if ok {
			e.U64s(sh.arena.Raw())
		}
	}
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed instance. The sketch spaces are rebuilt from the seed by the
// constructor; only the arena cell words are reloaded.
func (dc *DynamicConnectivity) Restore(d *snapshot.Decoder) error {
	if err := dc.f.Restore(d); err != nil {
		return err
	}
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		d.Begin(tagSketchShard)
		id := d.Int()
		hasS := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if id != i {
			return fmt.Errorf("core: sketch section for machine %d where %d was expected", id, i)
		}
		if hasS != ok {
			return fmt.Errorf("core: snapshot/instance disagree on machine %d holding sketches", i)
		}
		if ok {
			words := d.U64s()
			if err := d.Err(); err != nil {
				return err
			}
			if err := sh.arena.LoadRaw(words); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

// CheckpointDelta serializes the forest delta plus only the sketch-arena
// regions dirtied since the last acknowledged checkpoint — the piece that
// makes delta checkpoints scale with churn instead of graph size, since the
// arenas dominate the full image. Call AckCheckpoint once durable.
func (dc *DynamicConnectivity) CheckpointDelta(e *snapshot.Encoder) {
	dc.f.CheckpointDelta(e)
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		e.Begin(tagSketchShardDelta)
		e.Int(i)
		e.Bool(ok)
		if ok {
			e.Int(sh.arena.DirtyCount())
			sh.arena.ForEachDirtyRegion(func(r int, words []uint64) {
				e.Int(r)
				e.U64s(words)
			})
		}
	}
}

// RestoreDelta applies a delta written by CheckpointDelta: the forest delta,
// then each shipped arena region (idempotent region overwrites, like the
// forest's upserts).
func (dc *DynamicConnectivity) RestoreDelta(d *snapshot.Decoder) error {
	if err := dc.f.RestoreDelta(d); err != nil {
		return err
	}
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		d.Begin(tagSketchShardDelta)
		id := d.Int()
		hasS := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if id != i {
			return fmt.Errorf("core: delta sketch section for machine %d where %d was expected", id, i)
		}
		if hasS != ok {
			return fmt.Errorf("core: delta/instance disagree on machine %d holding sketches", i)
		}
		if !ok {
			continue
		}
		nr := d.Count(2)
		for j := 0; j < nr && d.Err() == nil; j++ {
			r := d.Int()
			words := d.U64s()
			if d.Err() != nil {
				break
			}
			if err := sh.arena.ApplyRegion(r, words); err != nil {
				return err
			}
		}
		if err := d.Err(); err != nil {
			return err
		}
	}
	return d.Err()
}

// AckCheckpoint resets the forest journals and every arena's dirty bitmap:
// the current state is the new delta baseline.
func (dc *DynamicConnectivity) AckCheckpoint() {
	dc.f.AckCheckpoint()
	for i := 0; i < dc.f.cl.Machines(); i++ {
		if sh, ok := dc.f.cl.Machine(i).Get(slotSketch).(*sketchShard); ok {
			sh.arena.ResetDirty()
		}
	}
}
