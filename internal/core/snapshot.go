package core

// Crash-safe checkpoint/restore of the connectivity stack (see package
// snapshot for the container format). A checkpoint captures everything a
// fresh instance cannot rederive: the per-machine vertex and edge shards,
// the sketch arenas, the coordinator-local tour-id counter and label cache
// (epoch-preserving, so a restored run's warm queries stay warm), and the
// cluster execution metrics. Shared randomness (edge hash, sketch spaces)
// is reconstructed deterministically from the configuration seed, so it is
// validated, not serialized.
//
// Restore must be called on a freshly constructed instance of the same
// configuration; mismatches are rejected with a descriptive error. On any
// error the instance is left in an undefined state and must be discarded —
// the container-level checks (magic, version, CRC) have already rejected
// corrupt files before restore begins.

import (
	"fmt"
	"sort"

	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// Section tags of the core layer.
const (
	tagForest      = 0x10
	tagForestShard = 0x11
	tagSketchShard = 0x12
)

// Checkpoint serializes the forest: configuration echo, tour-id counter,
// label cache, cluster stats, and one section per machine shard.
func (f *Forest) Checkpoint(e *snapshot.Encoder) {
	e.Begin(tagForest)
	e.Int(f.cfg.N)
	e.F64(f.cfg.Phi)
	e.Int(f.cfg.SketchCopies)
	e.U64(f.cfg.Seed)
	e.Int(f.cfg.VerticesPerMachine)
	e.Bool(f.weighted)
	e.Int(f.cl.Machines())
	e.U64(f.nextID)
	lc := &f.cache
	e.U64(uint64(lc.epoch))
	e.Int(lc.valid)
	e.Int(lc.numComps)
	e.Bool(lc.numCompsOK)
	e.Ints(lc.labels)
	e.Int(len(lc.stamp))
	for _, s := range lc.stamp {
		e.U64(uint64(s))
	}
	snapshot.EncodeClusterStats(e, f.cl.Stats())
	for i := 0; i < f.cl.Machines(); i++ {
		f.checkpointShard(e, i)
	}
}

// checkpointShard writes machine i's vertex and edge shard. Map contents
// are emitted in sorted key order so a checkpoint is a deterministic
// function of the logical state.
func (f *Forest) checkpointShard(e *snapshot.Encoder, i int) {
	mm := f.cl.Machine(i)
	e.Begin(tagForestShard)
	e.Int(i)
	vs := vShard(mm)
	e.Bool(vs != nil)
	if vs != nil {
		e.Int(vs.lo)
		e.Int(vs.hi)
		e.Ints(vs.comp)
		verts := make([]int, 0, len(vs.frag))
		for v := range vs.frag {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		e.Int(len(verts))
		for _, v := range verts {
			e.Int(v)
			e.U64(vs.frag[v])
		}
	}
	es := eShard(mm)
	recs := make([]*treeEdge, 0, len(es.recs))
	for _, te := range es.recs {
		recs = append(recs, te)
	}
	n := f.cfg.N
	sort.Slice(recs, func(a, b int) bool { return recs[a].rec.E.ID(n) < recs[b].rec.E.ID(n) })
	e.Int(len(recs))
	for _, te := range recs {
		e.Int(te.rec.E.U)
		e.Int(te.rec.E.V)
		e.U64(uint64(te.rec.Tour))
		e.Int(te.rec.UPos[0])
		e.Int(te.rec.UPos[1])
		e.Int(te.rec.VPos[0])
		e.Int(te.rec.VPos[1])
		e.I64(te.weight)
	}
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed forest, after validating that the snapshot's configuration
// matches (Parallelism and Strict are execution-engine choices, not state,
// and may differ between the checkpointing and the restoring process).
func (f *Forest) Restore(d *snapshot.Decoder) error {
	d.Begin(tagForest)
	n := d.Int()
	phi := d.F64()
	copies := d.Int()
	seed := d.U64()
	vpm := d.Int()
	weighted := d.Bool()
	mach := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	switch {
	case n != f.cfg.N:
		return fmt.Errorf("core: snapshot of N=%d restored into N=%d", n, f.cfg.N)
	case phi != f.cfg.Phi:
		return fmt.Errorf("core: snapshot of Phi=%v restored into Phi=%v", phi, f.cfg.Phi)
	case copies != f.cfg.SketchCopies:
		return fmt.Errorf("core: snapshot of SketchCopies=%d restored into SketchCopies=%d", copies, f.cfg.SketchCopies)
	case seed != f.cfg.Seed:
		return fmt.Errorf("core: snapshot of Seed=%d restored into Seed=%d", seed, f.cfg.Seed)
	case vpm != f.cfg.VerticesPerMachine:
		return fmt.Errorf("core: snapshot of VerticesPerMachine=%d restored into VerticesPerMachine=%d", vpm, f.cfg.VerticesPerMachine)
	case weighted != f.weighted:
		return fmt.Errorf("core: snapshot weighted=%v restored into weighted=%v", weighted, f.weighted)
	case mach != f.cl.Machines():
		return fmt.Errorf("core: snapshot of %d machines restored into %d", mach, f.cl.Machines())
	}
	f.nextID = d.U64()
	lc := &f.cache
	lc.epoch = uint32(d.U64())
	lc.valid = d.Int()
	lc.numComps = d.Int()
	lc.numCompsOK = d.Bool()
	labels := d.Ints()
	if d.Err() == nil && len(labels) != f.cfg.N {
		return fmt.Errorf("core: snapshot label cache of %d entries, want %d", len(labels), f.cfg.N)
	}
	copy(lc.labels, labels)
	ns := d.Int()
	if d.Err() == nil && ns != f.cfg.N {
		return fmt.Errorf("core: snapshot stamp array of %d entries, want %d", ns, f.cfg.N)
	}
	for i := 0; i < ns && d.Err() == nil; i++ {
		lc.stamp[i] = uint32(d.U64())
	}
	st := snapshot.DecodeClusterStats(d)
	if err := d.Err(); err != nil {
		return err
	}
	f.cl.RestoreStats(st)
	for i := 0; i < f.cl.Machines(); i++ {
		if err := f.restoreShard(d, i); err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreShard loads machine i's vertex and edge shard.
func (f *Forest) restoreShard(d *snapshot.Decoder, i int) error {
	mm := f.cl.Machine(i)
	d.Begin(tagForestShard)
	id := d.Int()
	hasV := d.Bool()
	vs := vShard(mm)
	if err := d.Err(); err != nil {
		return err
	}
	if id != i {
		return fmt.Errorf("core: shard section for machine %d where %d was expected", id, i)
	}
	if hasV != (vs != nil) {
		return fmt.Errorf("core: snapshot/instance disagree on machine %d holding a vertex shard", i)
	}
	if vs != nil {
		lo, hi := d.Int(), d.Int()
		comp := d.Ints()
		if err := d.Err(); err != nil {
			return err
		}
		if lo != vs.lo || hi != vs.hi {
			return fmt.Errorf("core: snapshot shard %d covers [%d,%d), instance covers [%d,%d)", i, lo, hi, vs.lo, vs.hi)
		}
		if len(comp) != hi-lo {
			return fmt.Errorf("core: snapshot shard %d has %d component entries, want %d", i, len(comp), hi-lo)
		}
		copy(vs.comp, comp)
		nf := d.Count(2)
		vs.frag = make(map[int]uint64, nf)
		for j := 0; j < nf && d.Err() == nil; j++ {
			v := d.Int()
			k := d.U64()
			if v < vs.lo || v >= vs.hi {
				return fmt.Errorf("core: snapshot shard %d holds fragment entry for foreign vertex %d", i, v)
			}
			vs.frag[v] = k
		}
	}
	es := eShard(mm)
	nr := d.Count(8)
	es.recs = make(map[graph.Edge]*treeEdge, nr)
	for j := 0; j < nr && d.Err() == nil; j++ {
		u, v := d.Int(), d.Int()
		tour := eulertour.TourID(d.U64())
		u0, u1 := d.Int(), d.Int()
		v0, v1 := d.Int(), d.Int()
		w := d.I64()
		if u < 0 || v < 0 || u >= v || v >= f.cfg.N {
			return fmt.Errorf("core: snapshot shard %d holds invalid tree edge {%d,%d}", i, u, v)
		}
		te := &treeEdge{
			rec: eulertour.Record{
				E:    graph.Edge{U: u, V: v},
				Tour: tour,
				UPos: [2]eulertour.Pos{u0, u1},
				VPos: [2]eulertour.Pos{v0, v1},
			},
			weight: w,
		}
		es.recs[te.rec.E] = te
	}
	return d.Err()
}

// Checkpoint serializes the full dynamic-connectivity state: the forest
// plus every machine's sketch arena (one contiguous word image per shard).
func (dc *DynamicConnectivity) Checkpoint(e *snapshot.Encoder) {
	dc.f.Checkpoint(e)
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		e.Begin(tagSketchShard)
		e.Int(i)
		e.Bool(ok)
		if ok {
			e.U64s(sh.arena.Raw())
		}
	}
}

// Restore loads a checkpoint written by Checkpoint into this freshly
// constructed instance. The sketch spaces are rebuilt from the seed by the
// constructor; only the arena cell words are reloaded.
func (dc *DynamicConnectivity) Restore(d *snapshot.Decoder) error {
	if err := dc.f.Restore(d); err != nil {
		return err
	}
	for i := 0; i < dc.f.cl.Machines(); i++ {
		mm := dc.f.cl.Machine(i)
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		d.Begin(tagSketchShard)
		id := d.Int()
		hasS := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if id != i {
			return fmt.Errorf("core: sketch section for machine %d where %d was expected", id, i)
		}
		if hasS != ok {
			return fmt.Errorf("core: snapshot/instance disagree on machine %d holding sketches", i)
		}
		if ok {
			words := d.U64s()
			if err := d.Err(); err != nil {
				return err
			}
			if err := sh.arena.LoadRaw(words); err != nil {
				return err
			}
		}
	}
	return d.Err()
}
