package core

// The batched query engine. PR 3 made the update path allocation-free; this
// file is the query-path counterpart: N point queries become one broadcast
// plus one flat-frame aggregation (O(1/φ) rounds total instead of N
// collectives), and the coordinator label cache answers repeated queries
// between updates with zero MPC rounds. The Into variants write into
// caller-provided buffers, so a warm steady-state query performs zero
// allocations (see the AllocsPerRun gates in query_test.go).
//
// Every query entry point validates its vertices up front: a vertex
// outside [0, N) — e.g. a stale QueryMix trace replayed against a smaller
// instance — fails with a diagnostic "core: query vertex out of range"
// panic instead of an index error deep inside the label cache.

// Pair is one connectivity query: "are U and V in the same component?".
type Pair struct{ U, V int }

// ComponentsOf resolves the component label of every listed vertex,
// aligned with the input. Cache misses cost one broadcast + one flat
// aggregation for the whole batch; fully cached batches cost zero rounds.
func (f *Forest) ComponentsOf(vertices []int) []int {
	return f.ComponentsOfInto(nil, vertices)
}

// ComponentsOfInto is ComponentsOf appending into dst[:0] (allocation-free
// when dst has capacity).
func (f *Forest) ComponentsOfInto(dst []int, vertices []int) []int {
	f.resolveLabels(vertices)
	dst = dst[:0]
	for _, v := range vertices {
		dst = append(dst, f.cache.labels[v])
	}
	return dst
}

// ConnectedAll answers a batch of connectivity queries, aligned with the
// input: one collective for the batch's cache misses, zero rounds when
// warm.
func (f *Forest) ConnectedAll(pairs []Pair) []bool {
	return f.ConnectedAllInto(nil, pairs)
}

// ConnectedAllInto is ConnectedAll appending into dst[:0] (allocation-free
// when dst has capacity).
func (f *Forest) ConnectedAllInto(dst []bool, pairs []Pair) []bool {
	f.resolvePairs(pairs)
	dst = dst[:0]
	for _, p := range pairs {
		dst = append(dst, f.cache.labels[p.U] == f.cache.labels[p.V])
	}
	return dst
}

// Connected answers one connectivity query (a batch of one: O(1/φ) rounds
// on a cache miss, zero rounds when both endpoints are cached).
func (f *Forest) Connected(u, v int) bool {
	f.resolvePairs2(u, v)
	return f.cache.labels[u] == f.cache.labels[v]
}

// resolvePairs is resolveLabels over pair endpoints without materializing
// an endpoint slice: it stamps misses directly into the cache's miss list.
func (f *Forest) resolvePairs(pairs []Pair) {
	lc := &f.cache
	miss := lc.miss[:0]
	for _, p := range pairs {
		f.checkQueryVertex(p.U)
		f.checkQueryVertex(p.V)
		if lc.stamp[p.U] != lc.epoch {
			lc.stamp[p.U] = lc.epoch
			lc.valid++
			miss = append(miss, p.U)
		}
		if lc.stamp[p.V] != lc.epoch {
			lc.stamp[p.V] = lc.epoch
			lc.valid++
			miss = append(miss, p.V)
		}
	}
	lc.miss = miss
	f.resolveMisses()
}

// resolvePairs2 is resolvePairs for a single pair.
func (f *Forest) resolvePairs2(u, v int) {
	f.checkQueryVertex(u)
	f.checkQueryVertex(v)
	lc := &f.cache
	miss := lc.miss[:0]
	if lc.stamp[u] != lc.epoch {
		lc.stamp[u] = lc.epoch
		lc.valid++
		miss = append(miss, u)
	}
	if lc.stamp[v] != lc.epoch {
		lc.stamp[v] = lc.epoch
		lc.valid++
		miss = append(miss, v)
	}
	lc.miss = miss
	f.resolveMisses()
}

// --- DynamicConnectivity surface -----------------------------------------

// ConnectedAll answers a batch of connectivity queries in one O(1/φ)-round
// collective (zero rounds when the label cache is warm), aligned with the
// input.
func (dc *DynamicConnectivity) ConnectedAll(pairs []Pair) []bool {
	return dc.f.ConnectedAll(pairs)
}

// ConnectedAllInto is ConnectedAll appending into dst[:0]; the steady-state
// warm path performs zero allocations.
func (dc *DynamicConnectivity) ConnectedAllInto(dst []bool, pairs []Pair) []bool {
	return dc.f.ConnectedAllInto(dst, pairs)
}

// ComponentsOf resolves the component labels of the listed vertices,
// aligned with the input, in one O(1/φ)-round collective (zero rounds when
// warm).
func (dc *DynamicConnectivity) ComponentsOf(vertices []int) []int {
	return dc.f.ComponentsOf(vertices)
}

// ComponentsOfInto is ComponentsOf appending into dst[:0]; the steady-state
// warm path performs zero allocations.
func (dc *DynamicConnectivity) ComponentsOfInto(dst []int, vertices []int) []int {
	return dc.f.ComponentsOfInto(dst, vertices)
}

// InvalidateQueryCache drops the coordinator label cache, forcing the next
// query batch to run its collective. Updates invalidate automatically; this
// exists for measurement (E15 and the query benchmarks ablate the cache).
func (dc *DynamicConnectivity) InvalidateQueryCache() { dc.f.InvalidateCache() }
