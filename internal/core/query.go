package core

// The batched query engine. PR 3 made the update path allocation-free; this
// file is the query-path counterpart: N point queries become one broadcast
// plus one flat-frame aggregation (O(1/φ) rounds total instead of N
// collectives), and the coordinator label cache answers repeated queries
// between updates with zero MPC rounds. The Into variants write into
// caller-provided buffers, so a warm steady-state query performs zero
// allocations (see the AllocsPerRun gates in query_test.go).
//
// # Concurrency contract (single writer, many readers)
//
// The query entry points — Connected, ConnectedAll(Into), ComponentsOf(Into),
// NumComponents — may be called from any number of goroutines concurrently
// with each other and with InvalidateQueryCache. A fully cached (warm) query
// holds only the cache read lock and touches no cluster state, so warm
// readers proceed in parallel; a cache miss takes the cache write lock and
// runs its collective exclusively, which serializes concurrent misses onto
// the single-threaded MPC cluster. What the lock does NOT cover is the
// mutating surface: ApplyBatch, Link, Cut, Checkpoint and Restore drive the
// same cluster through many collectives and must never overlap any query.
// Callers that interleave updates with concurrent queries (internal/server)
// enforce this with a per-instance RWMutex: updates under the write lock,
// query batches under the read lock. query_race_test.go pins the contract
// under the race detector.
//
// Every query entry point validates its vertices up front: a vertex
// outside [0, N) — e.g. a stale QueryMix trace replayed against a smaller
// instance — fails with a diagnostic "core: query vertex out of range"
// panic instead of an index error deep inside the label cache.

// Pair is one connectivity query: "are U and V in the same component?".
type Pair struct{ U, V int }

// ComponentsOf resolves the component label of every listed vertex,
// aligned with the input. Cache misses cost one broadcast + one flat
// aggregation for the whole batch; fully cached batches cost zero rounds.
func (f *Forest) ComponentsOf(vertices []int) []int {
	return f.ComponentsOfInto(nil, vertices)
}

// ComponentsOfInto is ComponentsOf appending into dst[:0] (allocation-free
// when dst has capacity). Safe for concurrent readers; see the package
// concurrency contract above.
func (f *Forest) ComponentsOfInto(dst []int, vertices []int) []int {
	for _, v := range vertices {
		f.checkQueryVertex(v)
	}
	lc := &f.cache
	lc.mu.RLock()
	warm := true
	for _, v := range vertices {
		if lc.stamp[v] != lc.epoch {
			warm = false
			break
		}
	}
	if warm {
		dst = dst[:0]
		for _, v := range vertices {
			dst = append(dst, lc.labels[v])
		}
		lc.mu.RUnlock()
		lc.hits.Add(1)
		return dst
	}
	lc.mu.RUnlock()
	lc.mu.Lock()
	f.resolveLabelsLocked(vertices)
	dst = dst[:0]
	for _, v := range vertices {
		dst = append(dst, lc.labels[v])
	}
	lc.mu.Unlock()
	lc.misses.Add(1)
	return dst
}

// ConnectedAll answers a batch of connectivity queries, aligned with the
// input: one collective for the batch's cache misses, zero rounds when
// warm.
func (f *Forest) ConnectedAll(pairs []Pair) []bool {
	return f.ConnectedAllInto(nil, pairs)
}

// ConnectedAllInto is ConnectedAll appending into dst[:0] (allocation-free
// when dst has capacity). Safe for concurrent readers; see the package
// concurrency contract above.
func (f *Forest) ConnectedAllInto(dst []bool, pairs []Pair) []bool {
	for _, p := range pairs {
		f.checkQueryVertex(p.U)
		f.checkQueryVertex(p.V)
	}
	lc := &f.cache
	lc.mu.RLock()
	warm := true
	for _, p := range pairs {
		if lc.stamp[p.U] != lc.epoch || lc.stamp[p.V] != lc.epoch {
			warm = false
			break
		}
	}
	if warm {
		dst = dst[:0]
		for _, p := range pairs {
			dst = append(dst, lc.labels[p.U] == lc.labels[p.V])
		}
		lc.mu.RUnlock()
		lc.hits.Add(1)
		return dst
	}
	lc.mu.RUnlock()
	lc.mu.Lock()
	f.resolvePairsLocked(pairs)
	dst = dst[:0]
	for _, p := range pairs {
		dst = append(dst, lc.labels[p.U] == lc.labels[p.V])
	}
	lc.mu.Unlock()
	lc.misses.Add(1)
	return dst
}

// Connected answers one connectivity query (a batch of one: O(1/φ) rounds
// on a cache miss, zero rounds when both endpoints are cached).
func (f *Forest) Connected(u, v int) bool {
	f.checkQueryVertex(u)
	f.checkQueryVertex(v)
	lc := &f.cache
	lc.mu.RLock()
	if lc.stamp[u] == lc.epoch && lc.stamp[v] == lc.epoch {
		same := lc.labels[u] == lc.labels[v]
		lc.mu.RUnlock()
		lc.hits.Add(1)
		return same
	}
	lc.mu.RUnlock()
	lc.mu.Lock()
	miss := lc.miss[:0]
	if lc.stamp[u] != lc.epoch {
		lc.stamp[u] = lc.epoch
		lc.valid++
		miss = append(miss, u)
	}
	if lc.stamp[v] != lc.epoch {
		lc.stamp[v] = lc.epoch
		lc.valid++
		miss = append(miss, v)
	}
	lc.miss = miss
	f.resolveMissesLocked()
	same := lc.labels[u] == lc.labels[v]
	lc.mu.Unlock()
	lc.misses.Add(1)
	return same
}

// resolvePairsLocked is resolveLabelsLocked over pair endpoints without
// materializing an endpoint slice: it stamps misses directly into the
// cache's miss list. The caller must hold the cache write lock.
func (f *Forest) resolvePairsLocked(pairs []Pair) {
	lc := &f.cache
	miss := lc.miss[:0]
	for _, p := range pairs {
		if lc.stamp[p.U] != lc.epoch {
			lc.stamp[p.U] = lc.epoch
			lc.valid++
			miss = append(miss, p.U)
		}
		if lc.stamp[p.V] != lc.epoch {
			lc.stamp[p.V] = lc.epoch
			lc.valid++
			miss = append(miss, p.V)
		}
	}
	lc.miss = miss
	f.resolveMissesLocked()
}

// --- DynamicConnectivity surface -----------------------------------------

// ConnectedAll answers a batch of connectivity queries in one O(1/φ)-round
// collective (zero rounds when the label cache is warm), aligned with the
// input.
func (dc *DynamicConnectivity) ConnectedAll(pairs []Pair) []bool {
	return dc.f.ConnectedAll(pairs)
}

// ConnectedAllInto is ConnectedAll appending into dst[:0]; the steady-state
// warm path performs zero allocations. Safe for concurrent readers (see the
// concurrency contract at the top of this file).
func (dc *DynamicConnectivity) ConnectedAllInto(dst []bool, pairs []Pair) []bool {
	return dc.f.ConnectedAllInto(dst, pairs)
}

// ComponentsOf resolves the component labels of the listed vertices,
// aligned with the input, in one O(1/φ)-round collective (zero rounds when
// warm).
func (dc *DynamicConnectivity) ComponentsOf(vertices []int) []int {
	return dc.f.ComponentsOf(vertices)
}

// ComponentsOfInto is ComponentsOf appending into dst[:0]; the steady-state
// warm path performs zero allocations. Safe for concurrent readers (see the
// concurrency contract at the top of this file).
func (dc *DynamicConnectivity) ComponentsOfInto(dst []int, vertices []int) []int {
	return dc.f.ComponentsOfInto(dst, vertices)
}

// InvalidateQueryCache drops the coordinator label cache, forcing the next
// query batch to run its collective. Updates invalidate automatically; this
// exists for measurement (E15 and the query benchmarks ablate the cache).
// Safe to race with concurrent readers (but not with updates).
func (dc *DynamicConnectivity) InvalidateQueryCache() { dc.f.InvalidateCache() }

// QueryCacheStats reports how many query batches were answered entirely
// from the label cache (zero rounds) and how many ran a cache-fill
// collective. Safe to call concurrently with queries; the serving layer
// exports the pair as its cache-hit-rate metric.
func (dc *DynamicConnectivity) QueryCacheStats() (hits, misses uint64) {
	return dc.f.QueryCacheStats()
}
