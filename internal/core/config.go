// Package core implements the paper's primary contribution: maintaining
// connectivity and a spanning forest of a dynamically evolving graph on an
// MPC with strongly sublinear local memory and Õ(n) total memory, processing
// batches of Õ(n^φ) edge insertions and deletions in O(1/φ) rounds
// (Theorem 1.1 / Theorem 6.7).
//
// The package has two layers:
//
//   - Forest is the distributed Euler-tour spanning-forest engine: it owns
//     the MPC cluster, the vertex shards (component ids) and the edge shards
//     (tree-edge records with dart positions), and executes batched Link,
//     Cut, component lookups, occurrence-stats queries and Identify-Path.
//     It contains no randomness and no sketches; the exact-MSF algorithm of
//     Section 7.1 runs directly on it.
//
//   - DynamicConnectivity adds the AGM vertex sketches (one stack of
//     O(log n) ℓ0-samplers per vertex, sharded with the vertices) and the
//     replacement-edge search of Section 6.3, yielding the full dynamic
//     connectivity algorithm.
package core

import (
	"fmt"
	"math"
)

// Config parameterizes a Forest or DynamicConnectivity instance.
type Config struct {
	// N is the number of vertices (fixed for the lifetime of the instance,
	// per Section 1.2).
	N int
	// Phi is the local-memory exponent: each machine holds about N^Phi
	// vertices' worth of state. Must be in (0, 1].
	Phi float64
	// SketchCopies overrides the number t of independent sketch copies per
	// vertex (0 = 2*ceil(log2 N) + 8, enough for the Borůvka replacement
	// search to succeed with high probability).
	SketchCopies int
	// Seed drives all algorithm randomness (sketch hash functions).
	Seed uint64
	// Strict makes the underlying cluster panic on any memory or
	// communication cap violation.
	Strict bool
	// VerticesPerMachine overrides the derived ceil(N^Phi) when positive;
	// tests use it to force specific cluster shapes.
	VerticesPerMachine int
	// Parallelism is passed through to the MPC cluster's execution engine
	// (see mpc.Config.Parallelism): 0 or 1 simulates rounds sequentially,
	// k > 1 fans each round out over k worker goroutines, negative uses
	// runtime.NumCPU(). Results and Stats are identical at every setting.
	Parallelism int
}

// normalize validates and fills derived fields.
func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("core: N = %d", c.N)
	}
	if c.Phi <= 0 || c.Phi > 1 {
		return fmt.Errorf("core: Phi = %v", c.Phi)
	}
	return nil
}

// verticesPerMachine returns ceil(N^Phi), the machine capacity in vertex
// bundles. A vertex bundle is one vertex's full state: its component id plus
// (for DynamicConnectivity) its sketch stack; expressing s in bundles keeps
// the n^φ scaling visible while absorbing the polylog bundle size, mirroring
// the paper's Õ(·) accounting.
func (c Config) verticesPerMachine() int {
	if c.VerticesPerMachine > 0 {
		return c.VerticesPerMachine
	}
	v := int(math.Ceil(math.Pow(float64(c.N), c.Phi)))
	if v < 2 {
		v = 2
	}
	return v
}

// machines returns the number of MPC machines: enough for every vertex
// bundle plus slack for edge records and coordinator working sets.
func (c Config) machines() int {
	vpm := c.verticesPerMachine()
	m := (c.N + vpm - 1) / vpm
	// One extra machine of slack keeps the coordinator's transient working
	// set (batch edges, fragment sketches) from competing with a full
	// vertex shard.
	return m + 1
}

// defaultSketchCopies returns t = 2*ceil(log2 N) + 8.
func (c Config) defaultSketchCopies() int {
	if c.SketchCopies > 0 {
		return c.SketchCopies
	}
	return 2*ceilLog2(c.N) + 8
}

// MaxBatch returns the largest update batch the instance accepts: half a
// machine's vertex-bundle capacity, so that one batch's working set
// (edges, terminals, fragment sketches) fits on the coordinator. This is
// the Õ(n^φ) batch bound of Theorem 1.1.
func (c Config) MaxBatch() int {
	b := c.verticesPerMachine() / 2
	if b < 1 {
		b = 1
	}
	return b
}

func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
