package core

import (
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/streamio"
)

// TestGoldenChurnTrace replays a checked-in churn trace (generated once
// from workload seed 424242) through the connectivity algorithm and checks
// the final solution and the resource envelope. It guards against silent
// behavioral drift anywhere in the pipeline: streamio parsing, batch
// splitting, and the full insert/delete machinery.
func TestGoldenChurnTrace(t *testing.T) {
	f, err := os.Open("testdata/churn32.stream")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	batches, err := streamio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("empty golden trace")
	}
	n := streamio.MaxVertex(batches) + 1
	dc, err := NewDynamicConnectivity(Config{N: n, Phi: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	for i, b := range batches {
		if err := g.Apply(b); err != nil {
			t.Fatalf("golden batch %d no longer valid: %v", i, err)
		}
		for j := 0; j < len(b); j += dc.MaxBatch() {
			end := min(j+dc.MaxBatch(), len(b))
			if err := dc.ApplyBatch(b[j:end]); err != nil {
				t.Fatalf("batch %d[%d:%d]: %v", i, j, end, err)
			}
		}
	}
	want := oracle.Components(g)
	got := dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: component %d, oracle %d", v, got[v], want[v])
		}
	}
	if !oracle.IsSpanningForest(g, dc.SnapshotForest()) {
		t.Fatal("forest invalid after golden replay")
	}
	st := dc.Cluster().Stats()
	if len(st.Violations) != 0 {
		t.Fatalf("violations: %v", st.Violations[0])
	}
	// Loose resource envelope: catches order-of-magnitude regressions in
	// round or memory accounting without being brittle to small changes.
	if perBatch := float64(st.Rounds) / float64(len(batches)); perBatch > 120 {
		t.Errorf("rounds per golden batch = %.1f, expected well under 120", perBatch)
	}
}
