package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/streamio"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files under testdata/")

const goldenTrace = "testdata/churn32.stream"

// regenerateGoldenTrace rewrites the checked-in trace from the fixed-seed
// churn generator. The generator is deterministic, so the file only changes
// when the workload package's sampling does.
func regenerateGoldenTrace(t *testing.T) {
	t.Helper()
	gen := workload.NewChurn(workload.Config{N: 32, Seed: 424242, InsertBias: 0.6})
	batches := make([]graph.Batch, 0, 24)
	for i := 0; i < 24; i++ {
		batches = append(batches, gen.Next(8))
	}
	if err := os.MkdirAll(filepath.Dir(goldenTrace), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := streamio.Write(f, batches); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenChurnTrace replays a checked-in churn trace (generated from
// workload seed 424242; regenerate with `go test -run Golden -update`)
// through the connectivity algorithm and checks the final solution and the
// resource envelope. It guards against silent behavioral drift anywhere in
// the pipeline: streamio parsing, batch splitting, and the full
// insert/delete machinery.
func TestGoldenChurnTrace(t *testing.T) {
	if *updateGolden {
		regenerateGoldenTrace(t)
	}
	f, err := os.Open(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	batches, err := streamio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("empty golden trace")
	}
	n := streamio.MaxVertex(batches) + 1
	dc, err := NewDynamicConnectivity(Config{N: n, Phi: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	for i, b := range batches {
		if err := g.Apply(b); err != nil {
			t.Fatalf("golden batch %d no longer valid: %v", i, err)
		}
		for j := 0; j < len(b); j += dc.MaxBatch() {
			end := min(j+dc.MaxBatch(), len(b))
			if err := dc.ApplyBatch(b[j:end]); err != nil {
				t.Fatalf("batch %d[%d:%d]: %v", i, j, end, err)
			}
		}
	}
	want := oracle.Components(g)
	got := dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: component %d, oracle %d", v, got[v], want[v])
		}
	}
	if !oracle.IsSpanningForest(g, dc.SnapshotForest()) {
		t.Fatal("forest invalid after golden replay")
	}
	st := dc.Cluster().Stats()
	if len(st.Violations) != 0 {
		t.Fatalf("violations: %v", st.Violations[0])
	}
	// Loose resource envelope: catches order-of-magnitude regressions in
	// round or memory accounting without being brittle to small changes.
	if perBatch := float64(st.Rounds) / float64(len(batches)); perBatch > 120 {
		t.Errorf("rounds per golden batch = %.1f, expected well under 120", perBatch)
	}
}
