package core
