package core_test

import (
	"testing"

	"repro/internal/core"
)

// The query-path benchmarks locked in by BENCH_sketch.json: three regimes
// of the batched query engine, each reporting rounds/query from Stats
// deltas (gated by scripts/benchdiff.go alongside ns/op and B/op).
//
//   - BenchmarkConnectedBatch: the steady-state read-mostly regime — 1024
//     queries per op against a warm label cache. Zero rounds, zero allocs.
//   - BenchmarkConnectedLoop: the pre-cache per-query regime the engine
//     replaces — every query pays its own collective.
//   - BenchmarkComponentsOf: the cold batched regime — one invalidation and
//     one collective per op resolving 256 labels.
//   - BenchmarkQueryCacheHit: a warm single-pair point query.

// benchQueryInstance builds a warmed-up instance plus a query working set.
func benchQueryInstance(b *testing.B, n, queries int) (*core.DynamicConnectivity, []core.Pair) {
	b.Helper()
	dc, mix := newQueryRun(b, n, 1, 29)
	for i := 0; i < 6; i++ {
		if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
			b.Fatal(err)
		}
	}
	return dc, toPairs(mix.NextQueries(queries))
}

// reportRoundsPerQuery attaches the MPC-rounds-per-query metric.
func reportRoundsPerQuery(b *testing.B, dc *core.DynamicConnectivity, startRounds, queriesPerOp int) {
	b.Helper()
	delta := dc.Cluster().Stats().Rounds - startRounds
	b.ReportMetric(float64(delta)/float64(b.N*queriesPerOp), "rounds/query")
}

func BenchmarkConnectedBatch(b *testing.B) {
	const queries = 1024
	dc, pairs := benchQueryInstance(b, 256, queries)
	dst := make([]bool, 0, queries)
	dst = dc.ConnectedAllInto(dst, pairs) // warm the cache
	start := dc.Cluster().Stats().Rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dc.ConnectedAllInto(dst, pairs)
	}
	b.StopTimer()
	reportRoundsPerQuery(b, dc, start, queries)
}

func BenchmarkConnectedLoop(b *testing.B) {
	const queries = 1024
	dc, pairs := benchQueryInstance(b, 256, queries)
	start := dc.Cluster().Stats().Rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			dc.InvalidateQueryCache()
			dc.Connected(p.U, p.V)
		}
	}
	b.StopTimer()
	reportRoundsPerQuery(b, dc, start, queries)
}

func BenchmarkComponentsOf(b *testing.B) {
	const queries = 256
	dc, _ := benchQueryInstance(b, 256, 0)
	vertices := make([]int, queries)
	for v := range vertices {
		vertices[v] = v
	}
	dst := make([]int, 0, queries)
	start := dc.Cluster().Stats().Rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.InvalidateQueryCache()
		dst = dc.ComponentsOfInto(dst, vertices)
	}
	b.StopTimer()
	reportRoundsPerQuery(b, dc, start, queries)
}

func BenchmarkQueryCacheHit(b *testing.B) {
	dc, pairs := benchQueryInstance(b, 256, 2)
	dc.Connected(pairs[0].U, pairs[0].V) // warm
	dc.Connected(pairs[1].U, pairs[1].V)
	start := dc.Cluster().Stats().Rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Connected(pairs[i%2].U, pairs[i%2].V)
	}
	b.StopTimer()
	reportRoundsPerQuery(b, dc, start, 1)
}

// BenchmarkQueryMix is the end-to-end read/write-mix regime: one update
// batch plus 256 batched queries per op (the workload the E15 experiment
// sweeps).
func BenchmarkQueryMix(b *testing.B) {
	dc, mix := newQueryRun(b, 256, 1, 31)
	dst := make([]bool, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := mix.Next(dc.MaxBatch())
		if len(batch) > 0 {
			if err := dc.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		dst = dc.ConnectedAllInto(dst, toPairs(mix.NextQueries(256)))
	}
}
