package core

// Elastic re-sharding: restoring a checkpoint onto a cluster with a
// different machine count. The insight that makes this a deterministic
// state migration rather than a consensus problem is that every piece of
// checkpointed state is either machine-count-independent logical state
// (component ids, tree-edge records, per-vertex sketch words, the
// coordinator's tour counter and label cache, cluster stats) or pure
// placement, and placement is a deterministic function of (vertex, machine
// count): vertices live in contiguous mpc.Partition ranges and edge records
// on hash.Hash(edgeID) % machines. Re-sharding therefore decodes the
// snapshot into a placement-neutral image, re-validates the per-machine
// s-words budget of the target shape, and installs the image under the
// target placement maps — a resharded instance is indistinguishable from a
// fresh instance at the target machine count that was fed the same update
// stream (labels, forest, sketches, and query answers are bit-identical;
// only the carried-over execution Stats reflect the source fleet's history).
//
// The memory-cap re-validation runs before any target state is touched: a
// shrink of the per-machine s-words budget that cannot hold the migrated
// state is rejected with a diagnostic, never silently installed in
// violation of the model.

import (
	"fmt"

	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/snapshot"
)

// MachineCount returns the number of MPC machines an instance of this
// configuration runs on (vertex machines plus the coordinator).
func (c Config) MachineCount() int { return c.machines() }

// ResizeConfig returns a copy of cfg reshaped to run on exactly machines
// MPC machines: VerticesPerMachine becomes ceil(N / (machines-1)), the
// smallest per-machine vertex budget that covers every vertex on machines-1
// vertex machines plus the coordinator. Not every count is realizable under
// the contiguous equal-range partition (e.g. growing past N+1 machines
// leaves empty shards); unrealizable counts are rejected with a diagnostic
// naming the nearest realizable fleet.
func ResizeConfig(cfg Config, machines int) (Config, error) {
	if machines < 2 {
		return Config{}, fmt.Errorf("core: resize to %d machines: need at least one vertex machine plus the coordinator", machines)
	}
	out := cfg
	out.VerticesPerMachine = (cfg.N + machines - 2) / (machines - 1)
	if got := out.machines(); got != machines {
		return Config{}, fmt.Errorf("core: no cluster shape with exactly %d machines for N=%d: nearest realizable is %d machines (VerticesPerMachine=%d)",
			machines, cfg.N, got, out.VerticesPerMachine)
	}
	return out, nil
}

// forestImage is the placement-neutral decode of a forest checkpoint: all
// logical state, none of the source fleet's sharding.
type forestImage struct {
	srcVpm  int
	srcMach int
	srcPart mpc.Partition

	nextID     uint64
	epoch      uint32
	valid      int
	numComps   int
	numCompsOK bool
	labels     []int
	stamp      []uint32
	stats      mpc.Stats

	comp []int          // component id per vertex, len N
	frag map[int]uint64 // transient fragment keys, keyed by vertex
	recs []treeEdge     // every tree-edge record, owner-agnostic
}

// decodeForestImage reads a tagForest section group written at any machine
// count, validating the state-shaping configuration (N, Phi, SketchCopies,
// Seed, weightedness) against cfg but accepting any source
// VerticesPerMachine / machine count — that is the whole point.
func decodeForestImage(d *snapshot.Decoder, cfg Config, weighted bool) (*forestImage, error) {
	d.Begin(tagForest)
	n := d.Int()
	phi := d.F64()
	copies := d.Int()
	seed := d.U64()
	srcVpm := d.Int()
	srcWeighted := d.Bool()
	srcMach := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	switch {
	case n != cfg.N:
		return nil, fmt.Errorf("core: reshard of snapshot with N=%d into N=%d", n, cfg.N)
	case phi != cfg.Phi:
		return nil, fmt.Errorf("core: reshard of snapshot with Phi=%v into Phi=%v", phi, cfg.Phi)
	case copies != cfg.SketchCopies:
		return nil, fmt.Errorf("core: reshard of snapshot with SketchCopies=%d into SketchCopies=%d", copies, cfg.SketchCopies)
	case seed != cfg.Seed:
		return nil, fmt.Errorf("core: reshard of snapshot with Seed=%d into Seed=%d", seed, cfg.Seed)
	case srcWeighted != weighted:
		return nil, fmt.Errorf("core: reshard of snapshot with weighted=%v into weighted=%v", srcWeighted, weighted)
	case srcMach < 2:
		return nil, fmt.Errorf("core: snapshot claims %d machines (corrupt)", srcMach)
	}
	img := &forestImage{
		srcVpm:  srcVpm,
		srcMach: srcMach,
		srcPart: mpc.Partition{N: n, Machines: srcMach - 1},
		comp:    make([]int, n),
		frag:    map[int]uint64{},
	}
	img.nextID = d.U64()
	img.epoch = uint32(d.U64())
	img.valid = d.Int()
	img.numComps = d.Int()
	img.numCompsOK = d.Bool()
	img.labels = d.Ints()
	if d.Err() == nil && len(img.labels) != n {
		return nil, fmt.Errorf("core: snapshot label cache of %d entries, want %d", len(img.labels), n)
	}
	ns := d.Int()
	if d.Err() == nil && ns != n {
		return nil, fmt.Errorf("core: snapshot stamp array of %d entries, want %d", ns, n)
	}
	img.stamp = make([]uint32, n)
	for i := 0; i < ns && d.Err() == nil; i++ {
		img.stamp[i] = uint32(d.U64())
	}
	img.stats = snapshot.DecodeClusterStats(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	seen := make(map[graph.Edge]bool)
	for i := 0; i < srcMach; i++ {
		if err := decodeForestShard(d, img, i, seen); err != nil {
			return nil, err
		}
	}
	return img, d.Err()
}

// decodeForestShard folds source machine i's tagForestShard section into the
// image, validating it against the source partition's layout.
func decodeForestShard(d *snapshot.Decoder, img *forestImage, i int, seen map[graph.Edge]bool) error {
	d.Begin(tagForestShard)
	id := d.Int()
	hasV := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if id != i {
		return fmt.Errorf("core: shard section for machine %d where %d was expected", id, i)
	}
	if hasV != (i != img.srcMach-1) {
		return fmt.Errorf("core: snapshot machine %d of %d disagrees with the coordinator-last layout", i, img.srcMach)
	}
	n := img.srcPart.N
	if hasV {
		lo, hi := d.Int(), d.Int()
		comp := d.Ints()
		if err := d.Err(); err != nil {
			return err
		}
		wantLo, wantHi := img.srcPart.Range(i)
		if lo != wantLo || hi != wantHi {
			return fmt.Errorf("core: snapshot shard %d covers [%d,%d), source layout says [%d,%d)", i, lo, hi, wantLo, wantHi)
		}
		if len(comp) != hi-lo {
			return fmt.Errorf("core: snapshot shard %d has %d component entries, want %d", i, len(comp), hi-lo)
		}
		copy(img.comp[lo:hi], comp)
		nf := d.Count(2)
		for j := 0; j < nf && d.Err() == nil; j++ {
			v := d.Int()
			k := d.U64()
			if v < lo || v >= hi {
				return fmt.Errorf("core: snapshot shard %d holds fragment entry for foreign vertex %d", i, v)
			}
			img.frag[v] = k
		}
	}
	nr := d.Count(8)
	for j := 0; j < nr && d.Err() == nil; j++ {
		u, v := d.Int(), d.Int()
		tour := d.U64()
		u0, u1 := d.Int(), d.Int()
		v0, v1 := d.Int(), d.Int()
		w := d.I64()
		if d.Err() != nil {
			break
		}
		if u < 0 || v < 0 || u >= v || v >= n {
			return fmt.Errorf("core: snapshot shard %d holds invalid tree edge {%d,%d}", i, u, v)
		}
		e := graph.Edge{U: u, V: v}
		if seen[e] {
			return fmt.Errorf("core: snapshot holds tree edge {%d,%d} on two shards", u, v)
		}
		seen[e] = true
		img.recs = append(img.recs, newTreeEdge(e, tour, u0, u1, v0, v1, w))
	}
	return d.Err()
}

// validateImageCaps tallies, per target machine, the words the migrated
// state will occupy and rejects the reshard if any machine would exceed its
// s-words budget (the cluster's LocalMemory). sketchStride is the
// per-vertex sketch footprint (0 for a bare forest). Runs before any state
// is touched, so a rejected reshard leaves the target instance untouched.
func (f *Forest) validateImageCaps(img *forestImage, sketchStride int) ([][]treeEdge, error) {
	m := f.cl.Machines()
	budget := f.cl.LocalMemory()
	recsByOwner := make([][]treeEdge, m)
	for _, te := range img.recs {
		o := f.edgeOwner(te.rec.E)
		recsByOwner[o] = append(recsByOwner[o], te)
	}
	fragByOwner := make([]int, m)
	for v := range img.frag {
		fragByOwner[f.part.Owner(v)]++
	}
	for i := 0; i < m; i++ {
		words := 8*len(recsByOwner[i]) + 1 // edge shard
		if i == f.coord {
			words += 2 * img.valid // label-cache meter
			if img.numCompsOK {
				words++
			}
		} else {
			lo, hi := f.part.Range(i)
			words += (hi - lo) + 2*fragByOwner[i] + 2 // vertex shard
			if sketchStride > 0 {
				words += (hi-lo)*sketchStride + 1 // sketch arena
			}
		}
		if words > budget {
			return nil, fmt.Errorf("core: reshard onto %d machines (VerticesPerMachine=%d) rejected: machine %d needs %d words but the per-machine s-words budget is %d — the shrunken budget cannot hold the migrated state",
				m, f.cfg.verticesPerMachine(), i, words, budget)
		}
	}
	return recsByOwner, nil
}

// installImage overwrites the freshly constructed forest with the image
// under the target placement maps. Infallible: every validation already ran.
func (f *Forest) installImage(img *forestImage, recsByOwner [][]treeEdge) {
	f.nextID = img.nextID
	lc := &f.cache
	lc.epoch = img.epoch
	lc.valid = img.valid
	lc.numComps = img.numComps
	lc.numCompsOK = img.numCompsOK
	copy(lc.labels, img.labels)
	copy(lc.stamp, img.stamp)
	f.cl.RestoreStats(img.stats)
	f.cl.LocalAll(func(mm *mpc.Machine) {
		if vs := vShard(mm); vs != nil {
			copy(vs.comp, img.comp[vs.lo:vs.hi])
			vs.frag = map[int]uint64{}
			for v, k := range img.frag {
				if v >= vs.lo && v < vs.hi {
					vs.frag[v] = k
				}
			}
			vs.resetJournal()
		}
		es := eShard(mm)
		es.recs = make(map[graph.Edge]*treeEdge, len(recsByOwner[mm.ID]))
		for _, te := range recsByOwner[mm.ID] {
			cp := te
			es.recs[cp.rec.E] = &cp
		}
		es.resetJournal()
	})
}

// ReshardRestore loads a full forest checkpoint written at any machine
// count into this freshly constructed forest, redistributing vertex and
// edge state under the target shape's placement maps. The per-machine
// memory cap is re-validated first; on any error the forest is untouched
// and may be discarded or reused.
func (f *Forest) ReshardRestore(d *snapshot.Decoder) error {
	img, err := decodeForestImage(d, f.cfg, f.weighted)
	if err != nil {
		return err
	}
	recsByOwner, err := f.validateImageCaps(img, 0)
	if err != nil {
		return err
	}
	f.installImage(img, recsByOwner)
	return nil
}

// decodeSketchImage reads the per-machine tagSketchShard sections written at
// the image's source shape into one flat N*stride word image.
func decodeSketchImage(d *snapshot.Decoder, img *forestImage, stride int) ([]uint64, error) {
	flat := make([]uint64, img.srcPart.N*stride)
	for i := 0; i < img.srcMach; i++ {
		d.Begin(tagSketchShard)
		id := d.Int()
		hasS := d.Bool()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if id != i {
			return nil, fmt.Errorf("core: sketch section for machine %d where %d was expected", id, i)
		}
		if hasS != (i != img.srcMach-1) {
			return nil, fmt.Errorf("core: snapshot sketch layout disagrees with the coordinator-last layout at machine %d", i)
		}
		if !hasS {
			continue
		}
		words := d.U64s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		lo, hi := img.srcPart.Range(i)
		if len(words) != (hi-lo)*stride {
			return nil, fmt.Errorf("core: snapshot sketch shard %d holds %d words, want %d (shape mismatch)", i, len(words), (hi-lo)*stride)
		}
		copy(flat[lo*stride:hi*stride], words)
	}
	return flat, nil
}

// ReshardRestore loads a full dynamic-connectivity checkpoint written at
// any machine count into this freshly constructed instance: the forest
// image plus every vertex's sketch block, re-sliced onto the target
// machines' arenas. The per-machine memory cap (vertex bundle, sketch
// arena, edge records, coordinator caches) is re-validated against the
// target budget before any state is touched; a shrink that cannot hold the
// migrated state is rejected with a diagnostic.
func (dc *DynamicConnectivity) ReshardRestore(d *snapshot.Decoder) error {
	f := dc.f
	img, err := decodeForestImage(d, f.cfg, false)
	if err != nil {
		return err
	}
	stride := dc.space.SketchWords()
	flat, err := decodeSketchImage(d, img, stride)
	if err != nil {
		return err
	}
	recsByOwner, err := f.validateImageCaps(img, stride)
	if err != nil {
		return err
	}
	f.installImage(img, recsByOwner)
	errs := make([]error, f.cl.Machines())
	f.cl.LocalAll(func(mm *mpc.Machine) {
		sh, ok := mm.Get(slotSketch).(*sketchShard)
		if !ok {
			return
		}
		vs := vShard(mm)
		errs[mm.ID] = sh.arena.LoadRaw(flat[vs.lo*stride : vs.hi*stride])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// newTreeEdge builds a treeEdge from decoded words.
func newTreeEdge(e graph.Edge, tour uint64, u0, u1, v0, v1 int, w int64) treeEdge {
	return treeEdge{
		rec: eulertour.Record{
			E:    e,
			Tour: eulertour.TourID(tour),
			UPos: [2]eulertour.Pos{u0, u1},
			VPos: [2]eulertour.Pos{v0, v1},
		},
		weight: w,
	}
}
