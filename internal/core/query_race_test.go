package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// TestConcurrentQueryReaders pins the single-writer/many-reader contract of
// the query API (see the comment at the top of query.go) under the race
// detector, using exactly the discipline internal/server relies on: one
// writer goroutine applies update batches under a per-instance write lock
// while many reader goroutines answer query batches — warm and cold, plus
// explicit InvalidateQueryCache calls racing them — under the read lock.
// Every answer is checked against the oracle labels of the graph state the
// reader's lock snapshot guarantees, so a torn cache fill shows up as a
// wrong answer even when the race detector stays quiet.
func TestConcurrentQueryReaders(t *testing.T) {
	const (
		n       = 64
		readers = 16
		batches = 40
	)
	dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.6, Seed: 7, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.Get("churn")
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.NewQueryMix(sc.New(n, 8), n, 9)

	// mu is the instance lock of the contract: ApplyBatch exclusively,
	// queries shared. labels is the oracle answer key for the current graph,
	// refreshed by the writer while it holds the lock exclusively.
	var mu sync.RWMutex
	labels := oracle.Components(mix.Mirror())

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Per-reader reusable buffers: the warm path must stay safe even
			// when every reader brings its own Into destination.
			ans := make([]bool, 0, 32)
			comps := make([]int, 0, n)
			vertices := make([]int, n)
			for v := range vertices {
				vertices[v] = v
			}
			for i := 0; ; i++ {
				// Check done after the first pass, not before it: every reader
				// always runs at least one full iteration, so the final
				// hits/misses assertion holds even on a single-proc host where
				// the writer can finish before any reader is first scheduled.
				if i > 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				mu.RLock()
				pairs := toPairs(mix.NextQueriesFrom(uint64(r*1000+i), 16))
				if r%4 == 0 && i%5 == 0 {
					// Invalidations are documented safe to race with readers.
					dc.InvalidateQueryCache()
				}
				ans = dc.ConnectedAllInto(ans, pairs)
				for j, p := range pairs {
					if want := labels[p.U] == labels[p.V]; ans[j] != want {
						mu.RUnlock()
						t.Errorf("reader %d: pair %v answered %v, oracle %v", r, p, ans[j], want)
						return
					}
				}
				// Core labels equal the oracle's min-id labels exactly (see
				// TestBatchedQueriesMatchLoopAndOracle), so compare verbatim.
				comps = dc.ComponentsOfInto(comps, vertices)
				for v := range comps {
					if comps[v] != labels[v] {
						mu.RUnlock()
						t.Errorf("reader %d: vertex %d labelled %d, oracle %d", r, v, comps[v], labels[v])
						return
					}
				}
				_ = dc.Connected(pairs[0].U, pairs[0].V)
				_ = dc.NumComponents()
				mu.RUnlock()
			}
		}(r)
	}

	// The single writer: applies batches under the exclusive lock, which is
	// what makes applyRelabels (and the epoch bump inside it) safe against
	// the readers above.
	for phase := 0; phase < batches; phase++ {
		mu.Lock()
		if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
			mu.Unlock()
			t.Fatal(err)
		}
		labels = oracle.Components(mix.Mirror())
		mu.Unlock()
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	hits, misses := dc.QueryCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache stats hits=%d misses=%d; the test should exercise both paths", hits, misses)
	}
}
