package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/mpc"
)

// Machine store slot names.
const (
	slotVertex = "v"  // vertexShard
	slotEdge   = "e"  // edgeShard
	slotBcast  = "b"  // transient broadcast payloads
	slotQCache = "qc" // coordinator query-cache meter (cacheMeter)
)

// vertexShard is the per-machine vertex state: the component id of every
// owned vertex and, transiently after a Cut, the fragment key of affected
// vertices.
type vertexShard struct {
	lo, hi int
	comp   []int
	frag   map[int]uint64
	// sketchWords is the footprint of the connectivity sketches stored by
	// the owning DynamicConnectivity (0 for a bare Forest); it is included
	// here so the shard's Words reflect the whole vertex bundle.
	sketchWords int

	// Delta-checkpoint journals. compDirty is a bitmap over comp (indices
	// relative to lo) of entries changed since the last acknowledged
	// checkpoint; fragDirty marks that the transient frag map changed at all
	// (it is small and rebuilt wholesale by Cut, so the delta re-ships it
	// whole rather than diffing). Journals are checkpoint bookkeeping, not
	// machine state: they are excluded from Words so memory metering and
	// golden Stats are unchanged by delta tracking.
	compDirty      []uint64
	compDirtyCount int
	fragDirty      bool
}

// Words implements mpc.Sized.
func (s *vertexShard) Words() int {
	return len(s.comp) + 2*len(s.frag) + s.sketchWords + 2
}

func (s *vertexShard) owns(v int) bool { return v >= s.lo && v < s.hi }

func (s *vertexShard) compOf(v int) int { return s.comp[v-s.lo] }

func (s *vertexShard) setComp(v, c int) {
	i := v - s.lo
	if s.comp[i] != c {
		s.comp[i] = c
		s.markComp(i)
	}
}

// markComp journals a change to comp[i] (shard-relative index).
func (s *vertexShard) markComp(i int) {
	w, b := i/64, uint64(1)<<(i%64)
	if s.compDirty[w]&b == 0 {
		s.compDirty[w] |= b
		s.compDirtyCount++
	}
}

// forEachDirtyComp visits the journaled comp entries in ascending index
// order without resetting the journal.
func (s *vertexShard) forEachDirtyComp(fn func(i, c int)) {
	for w, b := range s.compDirty {
		for b != 0 {
			i := w*64 + bits.TrailingZeros64(b)
			fn(i, s.comp[i])
			b &= b - 1
		}
	}
}

// resetJournal clears the shard's delta journals: the current state is the
// new checkpointed baseline.
func (s *vertexShard) resetJournal() {
	if s.compDirtyCount > 0 {
		clear(s.compDirty)
		s.compDirtyCount = 0
	}
	s.fragDirty = false
}

// treeEdge is one tree-edge record plus its weight (weights are carried only
// by weighted forests; zero otherwise).
type treeEdge struct {
	rec    eulertour.Record
	weight int64
}

// edgeShard holds the tree-edge records hash-assigned to one machine.
type edgeShard struct {
	recs map[graph.Edge]*treeEdge
	// dirty journals edges whose record changed (upsert or delete) since the
	// last acknowledged checkpoint; the delta ships each as an upsert or a
	// tombstone. Checkpoint bookkeeping, excluded from Words (see
	// vertexShard). In a process that never checkpoints the journal grows
	// with churn until a Restore or AckCheckpoint clears it — the
	// checkpointing deployments this exists for ack regularly.
	dirty map[graph.Edge]bool
}

// Words implements mpc.Sized.
func (s *edgeShard) Words() int { return 8*len(s.recs) + 1 }

// markEdge journals a change to edge e's record.
func (s *edgeShard) markEdge(e graph.Edge) {
	if s.dirty == nil {
		s.dirty = map[graph.Edge]bool{}
	}
	s.dirty[e] = true
}

// resetJournal clears the edge journal.
func (s *edgeShard) resetJournal() {
	if len(s.dirty) > 0 {
		clear(s.dirty)
	}
}

// fragment keys combine tours and singleton vertices in one key space.
const fragVertexBit = uint64(1) << 62

func fragKeyOfTour(t eulertour.TourID) uint64 { return uint64(t) }

func fragKeyOfVertex(v int) uint64 { return fragVertexBit | uint64(v) }

// u64Payload is a reusable word-slice broadcast payload. Unlike mpc.U64s it
// is addressed through a pointer, so re-broadcasting the same payload object
// round after round never re-boxes the slice header (zero allocations on the
// steady-state query path).
type u64Payload struct{ xs []uint64 }

// Words implements mpc.Sized.
func (p *u64Payload) Words() int { return len(p.xs) }

// labelCache is the coordinator-side component-label cache. labels[v] is
// valid iff stamp[v] == epoch; every label-mutating collective bumps the
// epoch (an O(1) invalidation of the whole cache). Queries resolve their
// cache misses with one broadcast + one flat-frame aggregation and answer
// everything else coordinator-locally with zero MPC rounds — the repeated-
// query regime between updates. Like nextID, the cache is coordinator-local
// driver state, not machine-store state.
//
// mu implements the single-writer/many-reader contract of the query API
// (see query.go): warm lookups hold the read lock, so any number of reader
// goroutines answer cached queries concurrently; a cache miss (which runs
// an MPC collective and fills labels/stamp) and every invalidation take the
// write lock. Mutating operations (ApplyBatch, Link, Cut, Restore) remain
// exclusive with all queries — the lock protects the cache, not the
// cluster.
type labelCache struct {
	mu     sync.RWMutex
	labels []int
	stamp  []uint32
	epoch  uint32
	miss   []int      // reusable sorted miss list of the current resolve
	query  u64Payload // reusable broadcast payload holding the miss list
	// valid counts the entries stamped in the current epoch, i.e. the
	// resident cache size metered by cacheMeter.
	valid int
	// numComps caches NumComponents per epoch (valid iff numCompsOK).
	numComps   int
	numCompsOK bool
	// hits counts query batches answered entirely from the cache (zero
	// rounds); misses counts batches that ran the cache-fill collective.
	// Atomic so concurrent warm readers can count without taking mu for
	// writing; consumed by Forest.QueryCacheStats (the serving layer's
	// cache-hit-rate metric).
	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheMeter folds the coordinator's query caches into the MPC memory
// ledger: the epoch-valid label-cache entries (label plus stamp, two words
// each) and the cached NumComponents readout. Without it the cache lives
// outside meterMemory, Stats.PeakTotalWords under-reports, and Strict mode
// cannot catch a cache outgrowing the s-words model. Registered under
// slotQCache on the coordinator machine; Words is read at round
// boundaries only, while the coordinator driver is quiescent, so it needs
// no synchronization.
type cacheMeter struct{ f *Forest }

// Words implements mpc.Sized.
func (c cacheMeter) Words() int {
	lc := &c.f.cache
	w := 2 * lc.valid
	if lc.numCompsOK {
		w++
	}
	return w
}

// Forest is the distributed Euler-tour spanning-forest engine (Sections 5
// and 6 without the sketches). All public operations are executed on the
// MPC cluster in O(1) collective operations, each costing O(1/φ) rounds.
type Forest struct {
	cfg      Config
	cl       *mpc.Cluster
	part     mpc.Partition
	coord    int
	weighted bool
	edgeHash *hash.Family
	nextID   uint64 // coordinator-local tour-id counter
	cache    labelCache
	// collectLabels is the per-machine collect callback of the label
	// resolve, built once so the steady-state query path allocates nothing.
	collectLabels func(mm *mpc.Machine) *mpc.MessageBatch
}

// NewForest creates an unweighted forest engine on n = cfg.N vertices, all
// initially singletons.
func NewForest(cfg Config) (*Forest, error) { return newForest(cfg, false, 0) }

// NewWeightedForest creates a forest engine whose tree edges carry weights,
// as needed by the exact-MSF algorithm of Section 7.1.
func NewWeightedForest(cfg Config) (*Forest, error) { return newForest(cfg, true, 0) }

// newForest builds the cluster and shards; sketchWords reserves per-vertex
// budget for a DynamicConnectivity's sketches.
func newForest(cfg Config, weighted bool, sketchWords int) (*Forest, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	vpm := cfg.verticesPerMachine()
	m := cfg.machines()
	// A vertex bundle: component id, amortized share of edge records and
	// transient fragment entries, plus sketches.
	bundle := 64 + sketchWords
	cl := mpc.NewCluster(mpc.Config{
		Machines:    m,
		LocalMemory: vpm * bundle,
		Strict:      cfg.Strict,
		Parallelism: cfg.Parallelism,
	})
	f := &Forest{
		cfg:      cfg,
		cl:       cl,
		part:     mpc.Partition{N: cfg.N, Machines: m - 1},
		coord:    m - 1,
		weighted: weighted,
		edgeHash: hash.NewPairwise(hash.NewPRG(cfg.Seed ^ 0x9d5f)),
		nextID:   1,
		cache: labelCache{
			labels: make([]int, cfg.N),
			stamp:  make([]uint32, cfg.N),
			epoch:  1,
		},
	}
	f.collectLabels = func(mm *mpc.Machine) *mpc.MessageBatch {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		vs := vShard(mm)
		if vs == nil {
			return nil
		}
		q := payload.(*u64Payload).xs
		i := sort.Search(len(q), func(i int) bool { return int(q[i]) >= vs.lo })
		b := mpc.AcquireMessageBatch()
		for ; i < len(q) && int(q[i]) < vs.hi; i++ {
			b.Append(q[i], uint64(vs.compOf(int(q[i]))))
		}
		return b
	}
	cl.LocalAll(func(mm *mpc.Machine) {
		if mm.ID != f.coord {
			lo, hi := f.part.Range(mm.ID)
			vs := &vertexShard{
				lo: lo, hi: hi,
				comp:      make([]int, hi-lo),
				frag:      map[int]uint64{},
				compDirty: make([]uint64, (hi-lo+63)/64),
			}
			for v := lo; v < hi; v++ {
				vs.comp[v-lo] = v
			}
			mm.Set(slotVertex, vs)
		} else {
			mm.Set(slotQCache, cacheMeter{f})
		}
		mm.Set(slotEdge, &edgeShard{recs: map[graph.Edge]*treeEdge{}})
	})
	return f, nil
}

// MeterCoordinator registers a Sized under a named slot on the coordinator
// machine, folding a driver-level cache (e.g. the exact-MSF weight readout)
// into the cluster's memory ledger alongside the forest's own cacheMeter.
func (f *Forest) MeterCoordinator(slot string, s mpc.Sized) {
	f.cl.Machine(f.coord).Set(slot, s)
}

// Cluster exposes the underlying cluster for metering.
func (f *Forest) Cluster() *mpc.Cluster { return f.cl }

// Config returns the instance configuration.
func (f *Forest) Config() Config { return f.cfg }

// nextTour returns a fresh tour id (coordinator-local state).
func (f *Forest) nextTour() eulertour.TourID {
	id := f.nextID
	f.nextID++
	return eulertour.TourID(id)
}

// vShard returns machine mm's vertex shard, or nil for the coordinator.
func vShard(mm *mpc.Machine) *vertexShard {
	s, _ := mm.Get(slotVertex).(*vertexShard)
	return s
}

func eShard(mm *mpc.Machine) *edgeShard {
	return mm.Get(slotEdge).(*edgeShard)
}

// edgeOwner returns the machine storing (or destined to store) edge e.
func (f *Forest) edgeOwner(e graph.Edge) int {
	return int(f.edgeHash.Hash(e.ID(f.cfg.N)) % uint64(f.cl.Machines()))
}

// broadcast sends a payload from the coordinator to every machine under the
// transient slot.
func (f *Forest) broadcast(payload mpc.Sized) {
	f.cl.Broadcast(f.coord, slotBcast, payload)
}

// The frame combiners of the flat aggregations below. All are merge-joins
// over key-sorted [k, ...] frames into a fresh pooled batch (no operand is
// mutated in place, so pooled buffers cannot alias), and all are
// commutative per key, so the deterministic sender-order fold of the tree
// yields the same frames at every parallelism.
var (
	// mergeKeepFirst keeps the first-arriving frame per key (keys owned by
	// exactly one machine never collide; the combine never fires).
	mergeKeepFirst = func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
		return mpc.MergeSortedBatches(a, b, nil)
	}
	// mergeSum adds the value word of colliding [k, v] frames.
	mergeSum = func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
		return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) { dst[1] += src[1] })
	}
	// mergeMin keeps the smaller value word of colliding [k, v] frames.
	mergeMin = func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
		return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) {
			if src[1] < dst[1] {
				dst[1] = src[1]
			}
		})
	}
)

// invalidateCache bumps the label-cache epoch, dropping every cached
// component label and the cached component count in O(1). Called by every
// label-mutating collective (applyRelabels, broadcastFragComps). It takes
// the cache write lock, so an invalidation is safe to race with concurrent
// warm readers (they see either the old epoch's answers or a miss).
func (f *Forest) invalidateCache() {
	lc := &f.cache
	lc.mu.Lock()
	lc.epoch++
	if lc.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		clear(lc.stamp)
		lc.epoch = 1
	}
	lc.valid = 0
	lc.numCompsOK = false
	lc.mu.Unlock()
}

// InvalidateCache publicly drops the coordinator label cache so the next
// query runs its collective. Updates invalidate automatically; this exists
// for measurement (E15 and the query benchmarks ablate the cache with it).
// Like the query entry points it may race concurrent readers, but not
// mutating operations.
func (f *Forest) InvalidateCache() { f.invalidateCache() }

// QueryCacheStats reports how many query batches were answered entirely
// from the label cache (zero MPC rounds) and how many ran the cache-fill
// collective since construction. Safe to call concurrently with queries.
func (f *Forest) QueryCacheStats() (hits, misses uint64) {
	return f.cache.hits.Load(), f.cache.misses.Load()
}

// checkQueryVertex rejects out-of-range query vertices up front with a
// diagnostic instead of letting the label cache index out of bounds (e.g.
// a stale QueryMix trace replayed against a smaller N).
func (f *Forest) checkQueryVertex(v int) {
	if v < 0 || v >= f.cfg.N {
		panic(fmt.Sprintf("core: query vertex %d out of range [0,%d)", v, f.cfg.N))
	}
}

// resolveLabelsLocked ensures the label cache covers every listed vertex.
// Cache misses are deduplicated via the epoch stamps, sorted, broadcast
// once, and answered by one flat [vertex, comp] aggregation (O(1/φ)
// rounds); a fully cached query performs no MPC operation at all. The
// steady-state warm path allocates nothing. The caller must hold the cache
// write lock (the collective both fills the cache and drives the cluster).
func (f *Forest) resolveLabelsLocked(vertices []int) {
	lc := &f.cache
	miss := lc.miss[:0]
	for _, v := range vertices {
		f.checkQueryVertex(v)
		if lc.stamp[v] != lc.epoch {
			lc.stamp[v] = lc.epoch
			lc.valid++
			miss = append(miss, v)
		}
	}
	lc.miss = miss
	f.resolveMissesLocked()
}

// resolveMissesLocked runs the cache-fill collective for the miss list
// staged in the cache (one broadcast of the sorted misses, one
// [vertex, comp] aggregation, decode into the cache). No-op when the list
// is empty. The caller must hold the cache write lock.
func (f *Forest) resolveMissesLocked() {
	lc := &f.cache
	if len(lc.miss) == 0 {
		return
	}
	sort.Ints(lc.miss)
	q := lc.query.xs[:0]
	for _, v := range lc.miss {
		q = append(q, uint64(v))
	}
	lc.query.xs = q
	f.broadcast(&lc.query)
	if res := f.cl.AggregateBatches(f.coord, f.collectLabels, mergeKeepFirst); res != nil {
		for fr := range res.Frames {
			lc.labels[fr[0]] = int(fr[1])
		}
		res.Release()
	}
}

// Components resolves the component ids of the given vertices: one
// broadcast and one flat-frame aggregation for the cache misses (O(1/φ)
// rounds), coordinator-local for everything already cached.
func (f *Forest) Components(vertices []int) map[int]int {
	lc := &f.cache
	lc.mu.Lock()
	f.resolveLabelsLocked(vertices)
	out := make(map[int]int, len(vertices))
	for _, v := range vertices {
		out[v] = lc.labels[v]
	}
	lc.mu.Unlock()
	return out
}

// compSizes counts the vertices of each listed component with one flat
// [component, count] aggregation.
func (f *Forest) compSizes(keys []int) map[int]int {
	q := uniqueInts(keys)
	f.broadcast(mpc.Ints(q))
	res := f.cl.AggregateBatches(f.coord,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			payload := mm.Get(slotBcast)
			mm.Delete(slotBcast)
			vs := vShard(mm)
			if vs == nil {
				return nil
			}
			want := payload.(mpc.Ints)
			counts := make([]uint64, len(want))
			for i := range vs.comp {
				if j := sort.SearchInts(want, vs.comp[i]); j < len(want) && want[j] == vs.comp[i] {
					counts[j]++
				}
			}
			b := mpc.AcquireMessageBatch()
			for j, c := range counts {
				if c > 0 {
					b.Append(uint64(want[j]), c)
				}
			}
			return b
		}, mergeSum)
	out := make(map[int]int, len(q))
	if res != nil {
		for fr := range res.Frames {
			out[int(fr[0])] = int(fr[1])
		}
		res.Release()
	}
	return out
}

// collectNumComps emits one [0, heads] frame per vertex machine: with the
// minimum-id convention, a vertex heads a component iff comp[v] == v.
func collectNumComps(mm *mpc.Machine) *mpc.MessageBatch {
	vs := vShard(mm)
	if vs == nil {
		return nil
	}
	n := uint64(0)
	for i := range vs.comp {
		if vs.comp[i] == vs.lo+i {
			n++
		}
	}
	b := mpc.AcquireMessageBatch()
	b.Append(0, n)
	return b
}

// NumComponents counts the components of the maintained graph with one flat
// summing aggregation; the count is cached until the next update, so
// repeated readouts between updates (the bipartiteness test, the approx-MSF
// weight formula) cost zero rounds.
func (f *Forest) NumComponents() int {
	lc := &f.cache
	lc.mu.RLock()
	if lc.numCompsOK {
		n := lc.numComps
		lc.mu.RUnlock()
		return n
	}
	lc.mu.RUnlock()
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.numCompsOK { // raced with another reader's readout
		return lc.numComps
	}
	n := 0
	if res := f.cl.AggregateBatches(f.coord, collectNumComps, mergeSum); res != nil {
		for fr := range res.Frames {
			n = int(fr[1])
		}
		res.Release()
	}
	lc.numComps = n
	lc.numCompsOK = true
	return n
}

// statsQuery is the broadcast form of a batched f/l query.
type statsQuery struct{ vertices []int }

func (q statsQuery) Words() int { return len(q.vertices) }

// mergeStats combines colliding [v, tour, f, l] frames: same tour, min f,
// max l.
var mergeStats = func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
	return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) {
		if src[2] < dst[2] {
			dst[2] = src[2]
		}
		if src[3] > dst[3] {
			dst[3] = src[3]
		}
	})
}

// Stats resolves occurrence statistics (tour, f, l) for the given vertices
// by scanning the edge shards and min/max-merging flat [v, tour, f, l]
// frames along the aggregation tree (O(1/φ) rounds). Singleton vertices
// come back with Tour == NoTour.
func (f *Forest) Stats(vertices []int) map[int]eulertour.VertexStats {
	q := uniqueInts(vertices)
	f.broadcast(statsQuery{vertices: q})
	merged := f.cl.AggregateBatches(f.coord,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			payload := mm.Get(slotBcast)
			mm.Delete(slotBcast)
			es := eShard(mm)
			query := payload.(statsQuery).vertices
			// Accumulate per query slot (query is sorted, so the emitted
			// frames are key-sorted for free).
			tours := make([]eulertour.TourID, len(query))
			first := make([]eulertour.Pos, len(query))
			last := make([]eulertour.Pos, len(query))
			seen := make([]bool, len(query))
			for _, te := range es.recs {
				for _, v := range [2]int{te.rec.E.U, te.rec.E.V} {
					j := sort.SearchInts(query, v)
					if j == len(query) || query[j] != v {
						continue
					}
					ps := te.rec.PositionsOf(v)
					if !seen[j] {
						seen[j] = true
						tours[j], first[j], last[j] = te.rec.Tour, ps[0], ps[1]
						continue
					}
					if ps[0] < first[j] {
						first[j] = ps[0]
					}
					if ps[1] > last[j] {
						last[j] = ps[1]
					}
				}
			}
			b := mpc.AcquireMessageBatch()
			for j, ok := range seen {
				if ok {
					b.Append(uint64(query[j]), uint64(tours[j]), uint64(first[j]), uint64(last[j]))
				}
			}
			return b
		}, mergeStats)
	out := make(map[int]eulertour.VertexStats, len(q))
	if merged != nil {
		for fr := range merged.Frames {
			out[int(fr[0])] = eulertour.VertexStats{
				Tour: eulertour.TourID(fr[1]),
				F:    eulertour.Pos(fr[2]),
				L:    eulertour.Pos(fr[3]),
			}
		}
		merged.Release()
	}
	for _, v := range q {
		if _, ok := out[v]; !ok {
			out[v] = eulertour.VertexStats{Tour: eulertour.NoTour}
		}
	}
	return out
}

// cutQueryPayload is the broadcast form of the stage-2 join query.
type cutQueryPayload struct{ qs []eulertour.CutQuery }

func (q cutQueryPayload) Words() int { return 2 * len(q.qs) }

// minAbove resolves, for each query, the smallest occurrence of the vertex
// strictly above the cut (0 when none). Queries are broadcast sorted by
// vertex so each machine's [vertex, pos] partials come out key-sorted; the
// tree min-merges them (frames are emitted only when an occurrence was
// found, so every value word is positive).
func (f *Forest) minAbove(qs []eulertour.CutQuery) map[int]eulertour.Pos {
	if len(qs) == 0 {
		return map[int]eulertour.Pos{}
	}
	sorted := make([]eulertour.CutQuery, len(qs))
	copy(sorted, qs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Vertex < sorted[j].Vertex })
	f.broadcast(cutQueryPayload{qs: sorted})
	res := f.cl.AggregateBatches(f.coord,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			payload := mm.Get(slotBcast)
			mm.Delete(slotBcast)
			es := eShard(mm)
			queries := payload.(cutQueryPayload).qs
			best := make([]eulertour.Pos, len(queries))
			for _, te := range es.recs {
				for j, q := range queries {
					if !te.rec.E.Has(q.Vertex) {
						continue
					}
					for _, p := range te.rec.PositionsOf(q.Vertex) {
						if p > q.Cut && (best[j] == 0 || p < best[j]) {
							best[j] = p
						}
					}
				}
			}
			b := mpc.AcquireMessageBatch()
			// Queries sharing a vertex fold into one frame (min), keeping
			// the batch strictly key-sorted for the merge-join.
			for j := 0; j < len(queries); {
				p := best[j]
				k := j + 1
				for ; k < len(queries) && queries[k].Vertex == queries[j].Vertex; k++ {
					if best[k] != 0 && (p == 0 || best[k] < p) {
						p = best[k]
					}
				}
				if p != 0 {
					b.Append(uint64(queries[j].Vertex), uint64(p))
				}
				j = k
			}
			return b
		}, mergeMin)
	out := make(map[int]eulertour.Pos, len(qs))
	for _, q := range qs {
		out[q.Vertex] = 0 // "no occurrence above the cut" is a valid answer
	}
	if res != nil {
		for fr := range res.Frames {
			out[int(fr[0])] = eulertour.Pos(fr[1])
		}
		res.Release()
	}
	return out
}

// relabelPayload broadcasts a batch of relabel descriptors plus the edges to
// drop and the component re-labeling.
type relabelPayload struct {
	relabels []eulertour.Relabel
	compMap  map[int]int // old comp id -> new comp id (joins)
}

func (p relabelPayload) Words() int { return 5*len(p.relabels) + 2*len(p.compMap) }

// recordsPayload carries new tree-edge records to their shard owners.
type recordsPayload struct {
	records []treeEdge
}

func (p recordsPayload) Words() int { return 8 * len(p.records) }

// Link inserts a batch of tree edges. Every edge must connect two distinct
// current components, and the batch must contain at most one edge per
// component pair and no cycles over components (i.e. it must be a spanning
// forest of the auxiliary graph H, as produced by the connectivity
// algorithm or by MSF's per-pair minimum filter). Weights are stored only by
// weighted forests.
func (f *Forest) Link(edges []graph.WeightedEdge) error {
	if len(edges) == 0 {
		return nil
	}
	if len(edges) > f.cfg.MaxBatch() {
		return fmt.Errorf("core: batch of %d exceeds MaxBatch %d", len(edges), f.cfg.MaxBatch())
	}
	f.clearFrags()
	var endpoints []int
	plainEdges := make([]graph.Edge, len(edges))
	weightOf := map[graph.Edge]int64{}
	for i, e := range edges {
		plainEdges[i] = e.Edge.Canonical()
		weightOf[plainEdges[i]] = e.Weight
		endpoints = append(endpoints, e.U, e.V)
	}
	labels := f.Components(endpoints)
	compSet := map[int]bool{}
	for _, v := range endpoints {
		compSet[labels[v]] = true
	}
	keys := make([]int, 0, len(compSet))
	for k := range compSet {
		keys = append(keys, k)
	}
	sizes := f.compSizes(keys)

	planner, err := f.preparePlanner(plainEdges, labels, sizes)
	if err != nil {
		return err
	}
	res, err := planner.Plan(f.nextTour)
	if err != nil {
		return err
	}
	// Component relabeling: every merged group takes the minimum member key.
	compMap := map[int]int{}
	for _, nt := range res.Tours {
		newComp := nt.Comps[0]
		for _, c := range nt.Comps[1:] {
			if c < newComp {
				newComp = c
			}
		}
		for _, c := range nt.Comps {
			compMap[c] = newComp
		}
	}
	f.applyRelabels(res.Relabels, compMap, nil)
	// Route the new records to their shard owners.
	newRecs := res.NewRecords
	f.cl.Scatter(f.coord,
		func(mm *mpc.Machine) []mpc.Message {
			byOwner := map[int][]treeEdge{}
			for _, r := range newRecs {
				byOwner[f.edgeOwner(r.E)] = append(byOwner[f.edgeOwner(r.E)], treeEdge{rec: r, weight: weightOf[r.E]})
			}
			var out []mpc.Message
			for owner, rs := range byOwner {
				out = append(out, mpc.Message{To: owner, Payload: recordsPayload{records: rs}})
			}
			return out
		},
		func(mm *mpc.Machine, msg mpc.Message) {
			es := eShard(mm)
			for _, te := range msg.Payload.(recordsPayload).records {
				cp := te
				es.recs[te.rec.E] = &cp
				es.markEdge(te.rec.E)
			}
		},
	)
	return nil
}

// preparePlanner runs the planner's staged distributed queries.
func (f *Forest) preparePlanner(edges []graph.Edge, labels map[int]int, sizes map[int]int) (*eulertour.JoinPlanner, error) {
	var terminals []int
	for _, e := range edges {
		terminals = append(terminals, e.U, e.V)
	}
	stats := f.Stats(terminals)
	var comps []eulertour.CompInfo
	seen := map[int]bool{}
	for _, v := range terminals {
		c := labels[v]
		if seen[c] {
			continue
		}
		seen[c] = true
		info := eulertour.CompInfo{Key: c, Size: sizes[c], Tour: eulertour.NoTour}
		if info.Size > 1 {
			// Any terminal of the component knows its tour.
			for _, w := range terminals {
				if labels[w] == c && stats[w].Tour != eulertour.NoTour {
					info.Tour = stats[w].Tour
					break
				}
			}
			if info.Tour == eulertour.NoTour {
				return nil, fmt.Errorf("core: component %d of size %d has no tour", c, info.Size)
			}
		}
		comps = append(comps, info)
	}
	planner, err := eulertour.NewJoinPlanner(comps, edges, func(v int) int { return labels[v] })
	if err != nil {
		return nil, err
	}
	if err := planner.SetStats(stats); err != nil {
		return nil, err
	}
	planner.SetMinAbove(f.minAbove(planner.CutQueries()))
	return planner, nil
}

// applyRelabels broadcasts relabel descriptors plus a component map and
// applies both on every machine; dropEdges lists records to delete first.
func (f *Forest) applyRelabels(relabels []eulertour.Relabel, compMap map[int]int, dropEdges []graph.Edge) {
	f.invalidateCache()
	payload := relabelPayload{relabels: relabels, compMap: compMap}
	f.broadcast(payload)
	drop := map[graph.Edge]bool{}
	for _, e := range dropEdges {
		drop[e.Canonical()] = true
	}
	f.cl.LocalAll(func(mm *mpc.Machine) {
		p := mm.Get(slotBcast).(relabelPayload)
		mm.Delete(slotBcast)
		set := eulertour.NewRelabelSet(p.relabels)
		es := eShard(mm)
		for e, te := range es.recs {
			if drop[e] {
				delete(es.recs, e)
				es.markEdge(e)
				continue
			}
			old := te.rec
			if err := set.ApplyToRecord(&te.rec); err != nil {
				panic(fmt.Sprintf("core: %v", err))
			}
			if te.rec != old {
				es.markEdge(e)
			}
		}
		if vs := vShard(mm); vs != nil && len(p.compMap) > 0 {
			for i, c := range vs.comp {
				if nc, ok := p.compMap[c]; ok && nc != c {
					vs.comp[i] = nc
					vs.markComp(i)
				}
			}
		}
	})
}

// clearFrags drops the transient fragment maps left by the previous Cut.
func (f *Forest) clearFrags() {
	f.cl.LocalAll(func(mm *mpc.Machine) {
		if vs := vShard(mm); vs != nil && len(vs.frag) > 0 {
			vs.frag = map[int]uint64{}
			vs.fragDirty = true
		}
	})
}

// CutReport describes the outcome of a batch Cut.
type CutReport struct {
	// TreeRecords are the pre-split records of the deleted edges that were
	// tree edges (with their weights for weighted forests).
	TreeRecords []eulertour.Record
	// TreeWeights holds the weight of each tree record, aligned with
	// TreeRecords.
	TreeWeights []int64
	// NonTree lists the deleted edges that were not in the forest.
	NonTree []graph.Edge
	// AffectedComps are the component ids (before the cut) of the split
	// components.
	AffectedComps []int
	// FragmentComps are the component ids (after the cut) of the resulting
	// fragments, including singletons.
	FragmentComps []int
}

// edgeListPayload broadcasts a set of edges.
type edgeListPayload struct{ edges []graph.Edge }

func (p edgeListPayload) Words() int { return 2 * len(p.edges) }

// Cut deletes a batch of edges from the forest. Edges not currently in the
// forest are reported as NonTree and otherwise ignored (the caller updates
// any side structures such as sketches). Tree edges are removed, the
// affected Euler tours are split into fragments in O(1) collective
// operations, and component ids are re-assigned per fragment. The transient
// vertex->fragment mapping remains available to the caller (via
// aggregateFragments) until the next Link or Cut.
func (f *Forest) Cut(edges []graph.Edge) (*CutReport, error) {
	if len(edges) == 0 {
		return &CutReport{}, nil
	}
	if len(edges) > f.cfg.MaxBatch() {
		return nil, fmt.Errorf("core: batch of %d exceeds MaxBatch %d", len(edges), f.cfg.MaxBatch())
	}
	f.clearFrags()
	canon := make([]graph.Edge, len(edges))
	for i, e := range edges {
		canon[i] = e.Canonical()
	}
	// Locate (and implicitly claim) the tree records among the deletions.
	// The query travels sorted by edge id so each shard's found records come
	// out as key-sorted [eid, tour, up0, up1, vp0, vp1, weight] frames; an
	// edge lives on exactly one shard, so the merge-join never combines.
	n := f.cfg.N
	byID := make([]graph.Edge, len(canon))
	copy(byID, canon)
	sort.Slice(byID, func(i, j int) bool { return byID[i].ID(n) < byID[j].ID(n) })
	f.broadcast(edgeListPayload{edges: byID})
	gathered := f.cl.AggregateBatches(f.coord, func(mm *mpc.Machine) *mpc.MessageBatch {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		es := eShard(mm)
		b := mpc.AcquireMessageBatch()
		for _, e := range payload.(edgeListPayload).edges {
			if te, ok := es.recs[e]; ok {
				fr := b.Grow(7)
				fr[0] = e.ID(n)
				fr[1] = uint64(te.rec.Tour)
				fr[2], fr[3] = uint64(te.rec.UPos[0]), uint64(te.rec.UPos[1])
				fr[4], fr[5] = uint64(te.rec.VPos[0]), uint64(te.rec.VPos[1])
				fr[6] = uint64(te.weight)
			}
		}
		return b
	}, mergeKeepFirst)
	report := &CutReport{}
	deletedByEdge := map[graph.Edge]treeEdge{}
	if gathered != nil {
		for fr := range gathered.Frames {
			e := graph.EdgeFromID(fr[0], n)
			deletedByEdge[e] = treeEdge{
				rec: eulertour.Record{
					E:    e,
					Tour: eulertour.TourID(fr[1]),
					UPos: [2]eulertour.Pos{eulertour.Pos(fr[2]), eulertour.Pos(fr[3])},
					VPos: [2]eulertour.Pos{eulertour.Pos(fr[4]), eulertour.Pos(fr[5])},
				},
				weight: int64(fr[6]),
			}
		}
		gathered.Release()
	}
	var deletedRecs []eulertour.Record
	for _, e := range canon {
		if te, ok := deletedByEdge[e]; ok {
			report.TreeRecords = append(report.TreeRecords, te.rec)
			report.TreeWeights = append(report.TreeWeights, te.weight)
			deletedRecs = append(deletedRecs, te.rec)
		} else {
			report.NonTree = append(report.NonTree, e)
		}
	}
	if len(deletedRecs) == 0 {
		return report, nil
	}
	// Affected components: the components of the deleted tree edges.
	var endpoints []int
	for _, r := range deletedRecs {
		endpoints = append(endpoints, r.E.U, r.E.V)
	}
	labels := f.Components(endpoints)
	affected := map[int]bool{}
	for _, v := range endpoints {
		affected[labels[v]] = true
	}
	report.AffectedComps = sortedKeys(affected)
	// Tour lengths: remaining records per tour, plus the deleted ones.
	delPerTour := map[eulertour.TourID]int{}
	for _, r := range deletedRecs {
		delPerTour[r.Tour]++
	}
	tourList := make([]int, 0, len(delPerTour))
	for t := range delPerTour {
		tourList = append(tourList, int(t))
	}
	sort.Ints(tourList)
	f.broadcast(mpc.Ints(tourList))
	res := f.cl.AggregateBatches(f.coord, func(mm *mpc.Machine) *mpc.MessageBatch {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		es := eShard(mm)
		want := payload.(mpc.Ints)
		counts := make([]uint64, len(want))
		for _, te := range es.recs {
			if j := sort.SearchInts(want, int(te.rec.Tour)); j < len(want) && want[j] == int(te.rec.Tour) {
				counts[j]++
			}
		}
		b := mpc.AcquireMessageBatch()
		for j, c := range counts {
			if c > 0 {
				b.Append(uint64(want[j]), c)
			}
		}
		return b
	}, mergeSum)
	tourLens := map[eulertour.TourID]int{}
	if res != nil {
		for fr := range res.Frames {
			// The records are still present at count time, so the count is
			// the full pre-split edge count of the tour.
			tourLens[eulertour.TourID(fr[0])] = 4 * int(fr[1])
		}
		res.Release()
	}
	for t := range delPerTour {
		if _, ok := tourLens[t]; !ok {
			tourLens[t] = 0
		}
	}
	plan, err := eulertour.PlanSplit(tourLens, deletedRecs, f.nextTour)
	if err != nil {
		return nil, err
	}
	// Broadcast relabels; drop deleted records; apply to survivors; then
	// push fragment membership from edge shards to vertex shards.
	f.applyRelabels(plan.Relabels, nil, canon)
	splitTours := map[eulertour.TourID]bool{}
	for t := range delPerTour {
		splitTours[t] = true
	}
	newTours := map[eulertour.TourID]bool{}
	for _, fr := range plan.Fragments {
		if fr.Tour != eulertour.NoTour {
			newTours[fr.Tour] = true
		}
	}
	f.pushFragments(newTours, affected)
	// Assign fragment component ids: min vertex id per fragment.
	fragMin := f.aggregateFragmentMins()
	compByFrag := map[uint64]int{}
	for k, minV := range fragMin {
		compByFrag[k] = minV
	}
	fragComps := map[int]bool{}
	for _, c := range compByFrag {
		fragComps[c] = true
	}
	report.FragmentComps = sortedKeys(fragComps)
	f.broadcastFragComps(compByFrag)
	return report, nil
}

// pushFragments has edge shards announce, for every record now on a fresh
// tour, the fragment of its endpoints; vertex shards record the mapping and
// mark message-less affected vertices as singletons. The (vertex, fragment)
// pairs travel as two-word frames of the batched message codec: one packed
// buffer per (edge shard, vertex owner) pair.
func (f *Forest) pushFragments(newTours map[eulertour.TourID]bool, affectedComps map[int]bool) {
	// Step 1: edge shards emit deduplicated (vertex, frag) pairs.
	f.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		es := eShard(mm)
		byOwner := map[int]map[uint64]uint64{}
		for _, te := range es.recs {
			if !newTours[te.rec.Tour] {
				continue
			}
			key := fragKeyOfTour(te.rec.Tour)
			for _, v := range []int{te.rec.E.U, te.rec.E.V} {
				owner := f.part.Owner(v)
				if byOwner[owner] == nil {
					byOwner[owner] = map[uint64]uint64{}
				}
				byOwner[owner][uint64(v)] = key
			}
		}
		var out []mpc.Message
		for owner, pairs := range byOwner {
			b := mpc.AcquireMessageBatch()
			for v, k := range pairs {
				b.Append(v, k)
			}
			out = append(out, mpc.Message{To: owner, Payload: b})
		}
		return out
	})
	// Step 2: vertex shards absorb the mapping and recycle the buffers.
	f.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		vs := vShard(mm)
		if vs == nil {
			return nil
		}
		for _, msg := range inbox {
			b := msg.Payload.(*mpc.MessageBatch)
			for pr := range b.Frames {
				vs.frag[int(pr[0])] = pr[1]
				vs.fragDirty = true
			}
			b.Release()
		}
		// Affected vertices with no fragment message are singletons now.
		for i := range vs.comp {
			v := vs.lo + i
			if affectedComps[vs.comp[i]] {
				if _, ok := vs.frag[v]; !ok {
					vs.frag[v] = fragKeyOfVertex(v)
					vs.fragDirty = true
				}
			}
		}
		return nil
	})
}

// aggregateFragmentMins computes min vertex id per fragment key with one
// flat min-merging [fragment, vertex] aggregation.
func (f *Forest) aggregateFragmentMins() map[uint64]int {
	res := f.cl.AggregateBatches(f.coord,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			vs := vShard(mm)
			if vs == nil || len(vs.frag) == 0 {
				return nil
			}
			keys := make([]uint64, 0, len(vs.frag))
			minBy := make(map[uint64]int, len(vs.frag))
			for v, k := range vs.frag {
				if cur, ok := minBy[k]; !ok || v < cur {
					if !ok {
						keys = append(keys, k)
					}
					minBy[k] = v
				}
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			b := mpc.AcquireMessageBatch()
			for _, k := range keys {
				b.Append(k, uint64(minBy[k]))
			}
			return b
		}, mergeMin)
	out := map[uint64]int{}
	if res != nil {
		for fr := range res.Frames {
			out[fr[0]] = int(fr[1])
		}
		res.Release()
	}
	return out
}

// broadcastFragComps assigns comp[v] = compByFrag[frag[v]] on all shards.
func (f *Forest) broadcastFragComps(compByFrag map[uint64]int) {
	f.invalidateCache()
	f.broadcast(mpc.Value{V: compByFrag, N: 2 * len(compByFrag)})
	f.cl.LocalAll(func(mm *mpc.Machine) {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		vs := vShard(mm)
		if vs == nil {
			return
		}
		m := payload.(mpc.Value).V.(map[uint64]int)
		for v, k := range vs.frag {
			if c, ok := m[k]; ok {
				vs.setComp(v, c)
			}
		}
	})
}

// pathQuery carries a batch of Identify-Path requests: vertex pairs with
// their occurrence intervals.
type pathQuery struct {
	pairs []pathPair
}

type pathPair struct {
	idx            int
	tour           eulertour.TourID
	fu, lu, fv, lv eulertour.Pos
}

func (q pathQuery) Words() int { return 6 * len(q.pairs) }

// HeaviestOnPaths executes a batch of Identify-Path operations (Section 7.1,
// Lemma 7.2): for each pair (u, v) in the same tree, it returns the
// maximum-weight edge on the unique tree path between them. Pairs in
// different trees or equal pairs yield no entry. Costs O(1) collective
// operations.
func (f *Forest) HeaviestOnPaths(pairs [][2]int) (map[int]graph.WeightedEdge, error) {
	if len(pairs) == 0 {
		return map[int]graph.WeightedEdge{}, nil
	}
	if len(pairs) > f.cfg.MaxBatch() {
		return nil, fmt.Errorf("core: batch of %d exceeds MaxBatch %d", len(pairs), f.cfg.MaxBatch())
	}
	var vertices []int
	for _, p := range pairs {
		vertices = append(vertices, p[0], p[1])
	}
	stats := f.Stats(vertices)
	q := pathQuery{}
	for i, p := range pairs {
		su, sv := stats[p[0]], stats[p[1]]
		if su.Tour == eulertour.NoTour || su.Tour != sv.Tour {
			continue
		}
		q.pairs = append(q.pairs, pathPair{
			idx: i, tour: su.Tour, fu: su.F, lu: su.L, fv: sv.F, lv: sv.L,
		})
	}
	f.broadcast(q)
	res := f.cl.AggregateBatches(f.coord,
		func(mm *mpc.Machine) *mpc.MessageBatch {
			payload := mm.Get(slotBcast)
			mm.Delete(slotBcast)
			es := eShard(mm)
			query := payload.(pathQuery)
			best := make([]graph.WeightedEdge, len(query.pairs))
			found := make([]bool, len(query.pairs))
			for _, te := range es.recs {
				for j, pr := range query.pairs {
					if te.rec.Tour != pr.tour {
						continue
					}
					if !eulertour.OnPath(te.rec.ChildF(), te.rec.ChildL(), pr.fu, pr.lu, pr.fv, pr.lv) {
						continue
					}
					cand := graph.WeightedEdge{Edge: te.rec.E, Weight: te.weight}
					if !found[j] || heavier(cand, best[j]) {
						found[j], best[j] = true, cand
					}
				}
			}
			// query.pairs is built in ascending idx order, so the frames
			// [idx, weight, u, v] are key-sorted for the merge-join.
			b := mpc.AcquireMessageBatch()
			for j, ok := range found {
				if ok {
					b.Append(uint64(query.pairs[j].idx), uint64(best[j].Weight), uint64(best[j].U), uint64(best[j].V))
				}
			}
			return b
		}, mergeHeavier)
	out := map[int]graph.WeightedEdge{}
	if res != nil {
		for fr := range res.Frames {
			out[int(fr[0])] = graph.WeightedEdge{
				Edge:   graph.Edge{U: int(fr[2]), V: int(fr[3])},
				Weight: int64(fr[1]),
			}
		}
		res.Release()
	}
	return out, nil
}

// mergeHeavier keeps the heavier candidate of colliding [idx, weight, u, v]
// frames, with the same canonical tie-break as heavier.
var mergeHeavier = func(a, b *mpc.MessageBatch) *mpc.MessageBatch {
	return mpc.MergeSortedBatches(a, b, func(dst, src []uint64) {
		d := graph.WeightedEdge{Edge: graph.Edge{U: int(dst[2]), V: int(dst[3])}, Weight: int64(dst[1])}
		s := graph.WeightedEdge{Edge: graph.Edge{U: int(src[2]), V: int(src[3])}, Weight: int64(src[1])}
		if heavier(s, d) {
			copy(dst[1:], src[1:])
		}
	})
}

// heavier orders weighted edges by weight, breaking ties canonically so the
// maintained MSF is deterministic.
func heavier(a, b graph.WeightedEdge) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.U != b.U {
		return a.U > b.U
	}
	return a.V > b.V
}

// SnapshotComponents reads out every vertex's component id. This is a
// driver-level readout of the collectively stored output (the solution is
// already materialized across machines, Section 1.2), not an MPC operation.
func (f *Forest) SnapshotComponents() []int {
	out := make([]int, f.cfg.N)
	f.cl.LocalAll(func(mm *mpc.Machine) {
		vs := vShard(mm)
		if vs == nil {
			return
		}
		for i, c := range vs.comp {
			out[vs.lo+i] = c
		}
	})
	return out
}

// SnapshotForest reads out the maintained forest edges (driver-level
// readout of the collectively stored solution). Each machine drains its
// shard into its own bucket — appending to one shared slice would race
// under a parallel executor — and the buckets are concatenated afterwards.
func (f *Forest) SnapshotForest() []graph.WeightedEdge {
	buckets := make([][]graph.WeightedEdge, f.cl.Machines())
	f.cl.LocalAll(func(mm *mpc.Machine) {
		es := eShard(mm)
		for e, te := range es.recs {
			buckets[mm.ID] = append(buckets[mm.ID], graph.WeightedEdge{Edge: e, Weight: te.weight})
		}
	})
	var out []graph.WeightedEdge
	for _, b := range buckets {
		out = append(out, b...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// uniqueInts returns the sorted distinct values.
func uniqueInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ReportForest materializes the solution in the model's output convention
// (Section 1.2): the forest edges are globally sorted by edge id (the O(1)-
// round distributed sample sort) and then compacted onto a prefix of the
// machines, each holding up to its output capacity. It returns the
// per-machine edge counts of the output layout.
func (f *Forest) ReportForest() []int {
	n := f.cfg.N
	const slotOut = "out"
	f.cl.SortByKey(
		func(mm *mpc.Machine) []uint64 {
			es := eShard(mm)
			keys := make([]uint64, 0, len(es.recs))
			for e := range es.recs {
				keys = append(keys, e.ID(n))
			}
			return keys
		},
		func(mm *mpc.Machine, keys []uint64) {
			if len(keys) == 0 {
				mm.Delete(slotOut)
				return
			}
			mm.Set(slotOut, mpc.U64s(keys))
		},
		2,
	)
	// Compact onto a machine prefix: aggregate counts, broadcast prefix
	// offsets, route each item to floor(globalRank / capacity).
	capacity := f.cl.LocalMemory() / 4
	if capacity < 1 {
		capacity = 1
	}
	countsRes := f.cl.AggregateBatches(f.coord, func(mm *mpc.Machine) *mpc.MessageBatch {
		v, ok := mm.Get(slotOut).(mpc.U64s)
		if !ok {
			return nil
		}
		b := mpc.AcquireMessageBatch()
		b.Append(uint64(mm.ID), uint64(len(v)))
		return b
	}, mergeKeepFirst)
	offsets := map[int]int{}
	run := 0
	if countsRes != nil {
		for fr := range countsRes.Frames {
			offsets[int(fr[0])] = run
			run += int(fr[1])
		}
		countsRes.Release()
	}
	f.broadcast(mpc.Value{V: offsets, N: 2 * len(offsets)})
	f.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		keys, ok := mm.Get(slotOut).(mpc.U64s)
		if !ok {
			return nil
		}
		mm.Delete(slotOut)
		off := payload.(mpc.Value).V.(map[int]int)[mm.ID]
		byDest := map[int][]uint64{}
		for i, k := range keys {
			byDest[(off+i)/capacity] = append(byDest[(off+i)/capacity], k)
		}
		var out []mpc.Message
		for dst, ks := range byDest {
			out = append(out, mpc.Message{To: dst, Payload: mpc.U64s(ks)})
		}
		return out
	})
	final := make([]int, f.cl.Machines())
	f.cl.Step(func(mm *mpc.Machine, inbox []mpc.Message) []mpc.Message {
		var keys []uint64
		for _, msg := range inbox {
			keys = append(keys, msg.Payload.(mpc.U64s)...)
		}
		if len(keys) > 0 {
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			mm.Set(slotOut, mpc.U64s(keys))
			final[mm.ID] = len(keys)
			// The output stays resident only for the duration of the report;
			// drop it so steady-state memory is unaffected.
			mm.Delete(slotOut)
		}
		return nil
	})
	return final
}

// ConnectedMany answers a batch of connectivity queries in at most one
// O(1/φ)-round collective (the query regime of Dhulipala et al. that the
// maintained component ids make trivial); queries covered by the label
// cache cost zero rounds. See query.go for the allocation-free variants.
func (f *Forest) ConnectedMany(pairs [][2]int) []bool {
	vertices := make([]int, 0, 2*len(pairs))
	for _, p := range pairs {
		vertices = append(vertices, p[0], p[1])
	}
	lc := &f.cache
	lc.mu.Lock()
	f.resolveLabelsLocked(vertices)
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = lc.labels[p[0]] == lc.labels[p[1]]
	}
	lc.mu.Unlock()
	return out
}
