package core_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// collectBatches pre-generates a fixed batch stream so that source, twin,
// and resharded instances all consume bit-identical updates regardless of
// their (different) MaxBatch values.
func collectBatches(t *testing.T, scenario string, n, batches, size int, seed uint64) []graph.Batch {
	t.Helper()
	sc, err := workload.Get(scenario)
	if err != nil {
		t.Fatal(err)
	}
	gen := sc.New(n, seed)
	out := make([]graph.Batch, 0, batches)
	for i := 0; i < batches; i++ {
		out = append(out, gen.Next(size))
	}
	return out
}

// TestResizeConfig pins the shape math of the elastic resize: the
// 4096-vertex fleet used by the emulated-thousand-machine acceptance run
// has exactly 1025 machines at 4 vertices/machine, halves to 513 at 8, and
// doubles to 2049 at 2; counts no equal-range partition realizes are
// descriptive errors.
func TestResizeConfig(t *testing.T) {
	cfg := core.Config{N: 4096, Phi: 0.6, Seed: 9, VerticesPerMachine: 4}
	if got := cfg.MachineCount(); got != 1025 {
		t.Fatalf("MachineCount at 4 vertices/machine = %d, want 1025", got)
	}
	for _, tc := range []struct {
		machines int
		vpm      int
	}{{513, 8}, {2049, 2}, {1025, 4}, {2, 4096}} {
		out, err := core.ResizeConfig(cfg, tc.machines)
		if err != nil {
			t.Fatalf("ResizeConfig(%d): %v", tc.machines, err)
		}
		if out.VerticesPerMachine != tc.vpm || out.MachineCount() != tc.machines {
			t.Fatalf("ResizeConfig(%d) = vpm %d (%d machines), want vpm %d",
				tc.machines, out.VerticesPerMachine, out.MachineCount(), tc.vpm)
		}
	}
	if _, err := core.ResizeConfig(cfg, 1); err == nil {
		t.Fatal("ResizeConfig(1) accepted a coordinator-only fleet")
	}
	if _, err := core.ResizeConfig(cfg, 5000); err == nil || !strings.Contains(err.Error(), "nearest realizable") {
		t.Fatalf("ResizeConfig(5000) = %v, want nearest-realizable diagnostic", err)
	}
}

// reshardTwin checkpoints a powerlaw run at srcVpm, re-shards it onto the
// cluster shape with wantMachines machines, and demands the result be
// bit-identical — labels, forest, query answers, carried-over Stats, and
// the entire subsequent evolution — to a fresh instance at the target
// shape fed the same stream.
func reshardTwin(t *testing.T, n, srcVpm, wantMachines, par int) {
	const (
		copies  = 4
		seed    = 17
		prefix  = 30
		suffix  = 6
		bsize   = 1 // MaxBatch of the thinnest shape (2 vertices/machine)
		queryAt = 5 // warm the label cache every queryAt batches
	)
	batches := collectBatches(t, "powerlaw", n, prefix+suffix, bsize, seed+1)
	pairs := make([]core.Pair, 0, 64)
	for i := 0; i < 32; i++ {
		pairs = append(pairs, core.Pair{U: i, V: n - 1 - i}, core.Pair{U: i, V: i + 1})
	}
	cfg := core.Config{N: n, Phi: 0.6, SketchCopies: copies, Seed: seed, Parallelism: par, VerticesPerMachine: srcVpm}
	tcfg, err := core.ResizeConfig(cfg, wantMachines)
	if err != nil {
		t.Fatal(err)
	}
	run := func(c core.Config, k int) *core.DynamicConnectivity {
		dc, err := core.NewDynamicConnectivity(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := dc.ApplyBatch(batches[i]); err != nil {
				t.Fatal(err)
			}
			if (i+1)%queryAt == 0 {
				dc.ConnectedAll(pairs)
			}
		}
		return dc
	}
	src := run(cfg, prefix)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	resharded, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Reshard(bytes.NewReader(buf.Bytes()), resharded); err != nil {
		t.Fatalf("reshard %d -> %d machines: %v", cfg.MachineCount(), wantMachines, err)
	}
	twin := run(tcfg, prefix)
	// The execution history (rounds, messages, words moved) carries over
	// verbatim; the memory peaks legitimately re-meter under the target
	// fleet's shape, so they are excluded.
	ss, rs := src.Cluster().Stats(), resharded.Cluster().Stats()
	ss.PeakMachineWords, rs.PeakMachineWords = 0, 0
	ss.PeakTotalWords, rs.PeakTotalWords = 0, 0
	if !reflect.DeepEqual(ss, rs) {
		t.Errorf("%d machines: carried-over Stats differ from the source fleet's:\n  src:       %+v\n  resharded: %+v",
			wantMachines, ss, rs)
	}
	if !reflect.DeepEqual(twin.SnapshotComponents(), resharded.SnapshotComponents()) {
		t.Fatalf("%d machines: component labels differ from fresh twin", wantMachines)
	}
	if !reflect.DeepEqual(twin.SnapshotForest(), resharded.SnapshotForest()) {
		t.Fatalf("%d machines: forest differs from fresh twin", wantMachines)
	}
	if !reflect.DeepEqual(twin.ConnectedAll(pairs), resharded.ConnectedAll(pairs)) {
		t.Fatalf("%d machines: query answers differ from fresh twin", wantMachines)
	}
	// The migrated instance must keep evolving in lockstep with the twin.
	for i := prefix; i < prefix+suffix; i++ {
		if err := twin.ApplyBatch(batches[i]); err != nil {
			t.Fatal(err)
		}
		if err := resharded.ApplyBatch(batches[i]); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(twin.ConnectedAll(pairs), resharded.ConnectedAll(pairs)) {
			t.Fatalf("%d machines: answers diverged %d batches after the reshard", wantMachines, i-prefix+1)
		}
	}
	if !reflect.DeepEqual(twin.SnapshotComponents(), resharded.SnapshotComponents()) {
		t.Fatalf("%d machines: post-reshard evolution diverged from fresh twin", wantMachines)
	}
}

// TestReshardThousandMachinesShrinkGrow is the acceptance run: a powerlaw
// stream on a 1025-machine fleet (N=4096, 4 vertices/machine) is
// checkpointed and restored onto 513 and onto 2049 machines, each
// bit-identical to a fresh run at the target fleet — at parallelism 1
// and 8.
func TestReshardThousandMachinesShrinkGrow(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-machine emulation is a long test")
	}
	for _, par := range []int{1, 8} {
		for _, m := range []int{513, 2049} {
			reshardTwin(t, 4096, 4, m, par)
		}
	}
}

// TestReshardSmallTwin is the fast always-on version of the acceptance
// property (64 vertices, 9 -> 5 and 9 -> 17 machines).
func TestReshardSmallTwin(t *testing.T) {
	for _, m := range []int{5, 17} {
		reshardTwin(t, 64, 8, m, 1)
	}
}

// TestReshardCapRejection pins the memory-cap re-validation: shrinking the
// per-machine budget (VerticesPerMachine=1) below what the migrated state
// needs — here a coordinator label cache warmed over all 64 vertices — is
// rejected with a diagnostic before any target state is touched.
func TestReshardCapRejection(t *testing.T) {
	cfg := core.Config{N: 64, Phi: 0.6, SketchCopies: 1, Seed: 23}
	src, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range collectBatches(t, "powerlaw", 64, 8, src.MaxBatch(), 24) {
		if err := src.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	pairs := make([]core.Pair, 0, 64)
	for v := 1; v < 64; v++ {
		pairs = append(pairs, core.Pair{U: 0, V: v})
	}
	src.ConnectedAll(pairs) // warm the full label cache into the checkpoint
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	tcfg := cfg
	tcfg.VerticesPerMachine = 1
	target, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	err = snapshot.Reshard(bytes.NewReader(buf.Bytes()), target)
	if err == nil {
		t.Fatal("shrink past the per-machine budget was accepted")
	}
	if !strings.Contains(err.Error(), "rejected") || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("cap violation error %q lacks the diagnostic", err)
	}
	// The failed reshard must leave the target untouched: still the fresh
	// all-singletons state.
	fresh, err := core.NewDynamicConnectivity(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.SnapshotComponents(), target.SnapshotComponents()) {
		t.Fatal("rejected reshard modified the target's components")
	}
	if got := target.SnapshotForest(); len(got) != 0 {
		t.Fatalf("rejected reshard left %d forest edges on the target", len(got))
	}
}

// FuzzReshardRestore feeds arbitrary bytes (and an arbitrary target shape)
// to the re-sharding decoder: it must never panic, and must either reject
// the input or restore a consistent instance — the reject-or-restore
// contract. The checked-in corpus includes a valid grow migration and a
// shrink past the memory cap.
func FuzzReshardRestore(f *testing.F) {
	const n = 64
	cfg := core.Config{N: n, Phi: 0.6, SketchCopies: 1, Seed: 23, VerticesPerMachine: 16}
	src, err := core.NewDynamicConnectivity(cfg)
	if err != nil {
		f.Fatal(err)
	}
	sc, err := workload.Get("powerlaw")
	if err != nil {
		f.Fatal(err)
	}
	gen := sc.New(n, 24)
	for i := 0; i < 8; i++ {
		if err := src.ApplyBatch(gen.Next(src.MaxBatch())); err != nil {
			f.Fatal(err)
		}
	}
	pairs := make([]core.Pair, 0, n-1)
	for v := 1; v < n; v++ {
		pairs = append(pairs, core.Pair{U: 0, V: v})
	}
	src.ConnectedAll(pairs)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, src); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, uint8(4))  // grow: 5 -> 17 machines
	f.Add(valid, uint8(32)) // shrink: 5 -> 3 machines
	f.Add(valid, uint8(1))  // shrink past the memory cap: rejected
	f.Add(valid[:len(valid)/2], uint8(16))
	if len(valid) > 40 {
		bad := append([]byte(nil), valid...)
		bad[40] ^= 0xff
		f.Add(bad, uint8(16))
	}
	f.Fuzz(func(t *testing.T, data []byte, vpmByte uint8) {
		tcfg := cfg
		tcfg.VerticesPerMachine = 1 + int(vpmByte)%n
		target, err := core.NewDynamicConnectivity(tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := snapshot.Reshard(bytes.NewReader(data), target); err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Restored: the instance must be internally consistent enough to
		// serve collective queries and re-checkpoint.
		if got := len(target.SnapshotComponents()); got != n {
			t.Fatalf("restored instance reports %d components entries, want %d", got, n)
		}
		var out bytes.Buffer
		if err := snapshot.Save(&out, target); err != nil {
			t.Fatalf("restored instance cannot re-checkpoint: %v", err)
		}
	})
}
