package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// runSeededChurn replays a fixed churn workload through the full dynamic
// connectivity machinery at the given cluster parallelism and returns the
// final stats and outputs.
func runSeededChurn(t *testing.T, parallelism int) (mpc.Stats, []int, []graph.Edge, *graph.Graph) {
	t.Helper()
	dc, err := NewDynamicConnectivity(Config{N: 96, Phi: 0.6, Seed: 7, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(workload.Config{N: 96, Seed: 8, InsertBias: 0.6})
	for i := 0; i < 10; i++ {
		if err := dc.ApplyBatch(gen.Next(dc.MaxBatch())); err != nil {
			t.Fatal(err)
		}
	}
	return dc.Cluster().Stats(), dc.SnapshotComponents(), dc.SnapshotForest(), gen.Mirror()
}

// TestParallelismDeterminism is the engine guarantee at the algorithm layer:
// the same seed produces bit-identical Stats (rounds, messages, words,
// peaks, violations) and identical solutions at parallelism 1, 4, and
// NumCPU.
func TestParallelismDeterminism(t *testing.T) {
	baseStats, baseComps, baseForest, mirror := runSeededChurn(t, 1)
	want := oracle.Components(mirror)
	for v := range want {
		if baseComps[v] != want[v] {
			t.Fatalf("sequential run diverged from oracle at vertex %d", v)
		}
	}
	for _, p := range []int{4, runtime.NumCPU()} {
		st, comps, forest, _ := runSeededChurn(t, p)
		if !reflect.DeepEqual(st, baseStats) {
			t.Errorf("parallelism %d: stats diverged\nseq: %+v\npar: %+v", p, baseStats, st)
		}
		if !reflect.DeepEqual(comps, baseComps) {
			t.Errorf("parallelism %d: components diverged", p)
		}
		if !reflect.DeepEqual(forest, baseForest) {
			t.Errorf("parallelism %d: forest diverged", p)
		}
	}
}

// TestParallelForestOps exercises the weighted-forest operations (Link, Cut,
// HeaviestOnPaths, ReportForest) under a parallel engine against the
// sequential baseline.
func TestParallelForestOps(t *testing.T) {
	run := func(parallelism int) (mpc.Stats, []graph.WeightedEdge, map[int]graph.WeightedEdge, []int) {
		f, err := NewWeightedForest(Config{N: 64, Phi: 0.7, Seed: 3, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		var batch []graph.WeightedEdge
		for v := 0; v < 48; v++ {
			batch = append(batch, graph.NewWeightedEdge(v, v+1, int64(v%9+1)))
			if len(batch) == 8 {
				if err := f.Link(batch); err != nil {
					t.Fatal(err)
				}
				batch = nil
			}
		}
		if _, err := f.Cut([]graph.Edge{{U: 10, V: 11}, {U: 30, V: 31}}); err != nil {
			t.Fatal(err)
		}
		heavy, err := f.HeaviestOnPaths([][2]int{{0, 10}, {12, 30}, {32, 48}})
		if err != nil {
			t.Fatal(err)
		}
		layout := f.ReportForest()
		return f.Cluster().Stats(), f.SnapshotForest(), heavy, layout
	}
	seqStats, seqForest, seqHeavy, seqLayout := run(1)
	parStats, parForest, parHeavy, parLayout := run(4)
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats diverged\nseq: %+v\npar: %+v", seqStats, parStats)
	}
	if !reflect.DeepEqual(seqForest, parForest) {
		t.Error("forest snapshots diverged")
	}
	if !reflect.DeepEqual(seqHeavy, parHeavy) {
		t.Error("HeaviestOnPaths results diverged")
	}
	if !reflect.DeepEqual(seqLayout, parLayout) {
		t.Error("ReportForest layout diverged")
	}
}
