package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/mpc"
	"repro/internal/sketch"
	"repro/internal/sketchcodec"
)

// Extra machine-store slots used by DynamicConnectivity.
const (
	slotSketch = "s" // sketchShard, on vertex machines
	slotWork   = "w" // coordinator workspace during replacement search
)

// sketchShard holds the AGM vertex sketches of one machine's vertex range,
// backed by one contiguous sketch arena (one allocation per shard, not one
// per vertex).
type sketchShard struct {
	lo    int
	n     int
	arena *sketch.Arena
}

// Words implements mpc.Sized.
func (s *sketchShard) Words() int { return s.arena.Words() + 1 }

func (s *sketchShard) of(v int) sketch.VertexSketch { return s.arena.VertexAt(v-s.lo, s.n) }

// workspace is the coordinator's transient state during the replacement
// search: the merged sketch of every supernode (views into the aggregated
// batch buffer).
type workspace struct {
	sketches map[int]sketch.Sketch
	perSk    int
}

// Words implements mpc.Sized.
func (w *workspace) Words() int { return len(w.sketches) * w.perSk }

// DynamicConnectivity maintains connectivity and a spanning forest of an
// evolving graph under batches of edge insertions and deletions
// (Theorem 1.1 / Theorem 6.7): O(1/φ)-round updates on an MPC with
// O(n^φ)-vertex local memory and Õ(n) total memory.
//
// One deviation from the paper is made explicit: constructing the
// replacement forest F_H (Lemma 6.5) requires resolving the fragment of the
// second endpoint of every sketched replacement edge, which this
// implementation performs with one O(1)-round distributed lookup per
// Borůvka level, adding O(log k) rounds to a deletion batch of k tree
// edges. See README.md ("Deviations") for the discussion.
//
// All per-machine callbacks below obey the mpc.StepFunc concurrency
// contract (machine-local mutation only; broadcast payloads are read-only),
// so the algorithm runs unchanged at any Config.Parallelism.
type DynamicConnectivity struct {
	f     *Forest
	space *sketch.Space
}

// NewDynamicConnectivity builds the distributed state for an initially
// empty graph on cfg.N vertices.
func NewDynamicConnectivity(cfg Config) (*DynamicConnectivity, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	prg := hash.NewPRG(cfg.Seed)
	space := sketch.NewGraphSpace(cfg.N, cfg.defaultSketchCopies(), prg)
	f, err := newForest(cfg, false, space.SketchWords()+8)
	if err != nil {
		return nil, err
	}
	dc := &DynamicConnectivity{f: f, space: space}
	f.cl.LocalAll(func(mm *mpc.Machine) {
		vs := vShard(mm)
		if vs == nil {
			return
		}
		sh := &sketchShard{lo: vs.lo, n: cfg.N, arena: space.NewArena(vs.hi - vs.lo)}
		mm.Set(slotSketch, sh)
	})
	return dc, nil
}

// Forest exposes the underlying forest engine (read-only use: queries,
// snapshots, cluster metering).
func (dc *DynamicConnectivity) Forest() *Forest { return dc.f }

// Cluster exposes the MPC cluster for metering.
func (dc *DynamicConnectivity) Cluster() *mpc.Cluster { return dc.f.cl }

// Config returns the instance's configuration.
func (dc *DynamicConnectivity) Config() Config { return dc.f.cfg }

// MaxBatch returns the largest accepted update batch.
func (dc *DynamicConnectivity) MaxBatch() int { return dc.f.cfg.MaxBatch() }

// sketchUpdate is the broadcast payload applying a batch of edge updates to
// the vertex sketches.
type sketchUpdate struct {
	edges []graph.Edge
	op    graph.Op
}

func (u sketchUpdate) Words() int { return 2*len(u.edges) + 1 }

// updateSketches applies the batch to the sketches of all endpoint vertices
// with one broadcast (Section 6.1: "updating the sketches").
func (dc *DynamicConnectivity) updateSketches(edges []graph.Edge, op graph.Op) {
	dc.f.broadcast(sketchUpdate{edges: edges, op: op})
	dc.f.cl.LocalAll(func(mm *mpc.Machine) {
		payload := mm.Get(slotBcast)
		mm.Delete(slotBcast)
		vs := vShard(mm)
		if vs == nil {
			return
		}
		sh := mm.Get(slotSketch).(*sketchShard)
		u := payload.(sketchUpdate)
		for _, e := range u.edges {
			for _, v := range []int{e.U, e.V} {
				if vs.owns(v) {
					sh.of(v).ApplyEdge(v, e, u.op)
					sh.arena.MarkDirty(v - sh.lo)
				}
			}
		}
	})
}

// ApplyBatch processes one phase's updates: insertions first, then
// deletions (Section 1.2 allows treating them as two consecutive
// sub-batches). The batch must be valid against the current graph: no
// duplicate insertions, deletions only of present edges, no self loops.
func (dc *DynamicConnectivity) ApplyBatch(b graph.Batch) error {
	if len(b) > dc.MaxBatch() {
		return fmt.Errorf("core: batch of %d exceeds MaxBatch %d", len(b), dc.MaxBatch())
	}
	var ins, del []graph.Edge
	for _, u := range b {
		switch u.Op {
		case graph.Insert:
			ins = append(ins, u.Edge.Canonical())
		case graph.Delete:
			del = append(del, u.Edge.Canonical())
		default:
			return fmt.Errorf("core: unknown op %v", u.Op)
		}
	}
	if err := dc.insert(ins); err != nil {
		return err
	}
	return dc.delete(del)
}

// insert processes a batch of insertions (Section 6.1).
func (dc *DynamicConnectivity) insert(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	dc.updateSketches(edges, graph.Insert)
	var endpoints []int
	for _, e := range edges {
		endpoints = append(endpoints, e.U, e.V)
	}
	labels := dc.f.Components(endpoints)
	// F_H: greedily keep the edges that merge two still-distinct components
	// (a spanning forest of the auxiliary graph H). The rest are non-tree
	// edges and require nothing beyond the sketch update.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		return x
	}
	var forest []graph.WeightedEdge
	for _, e := range edges {
		ra, rb := find(labels[e.U]), find(labels[e.V])
		if ra == rb {
			continue
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		forest = append(forest, graph.WeightedEdge{Edge: e})
	}
	return dc.f.Link(forest)
}

// delete processes a batch of deletions (Section 6.3).
func (dc *DynamicConnectivity) delete(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	dc.updateSketches(edges, graph.Delete)
	report, err := dc.f.Cut(edges)
	if err != nil {
		return err
	}
	if len(report.TreeRecords) == 0 {
		return nil
	}
	replacements, err := dc.findReplacements()
	if err != nil {
		return err
	}
	// Insert the replacement forest; chunked to respect the batch cap (a
	// subset of a forest over components is still a forest over components).
	chunk := dc.f.cfg.MaxBatch()
	for len(replacements) > 0 {
		cut := len(replacements)
		if cut > chunk {
			cut = chunk
		}
		batch := make([]graph.WeightedEdge, cut)
		for i, e := range replacements[:cut] {
			batch[i] = graph.WeightedEdge{Edge: e}
		}
		if err := dc.f.Link(batch); err != nil {
			return err
		}
		replacements = replacements[cut:]
	}
	return nil
}

// aggregateFragmentSketches merges the vertex sketches of every fragment
// produced by the preceding Cut (keyed by the fragment's fresh component
// id) and delivers them to the coordinator: Lemma 6.5's sketch-merging step,
// O(1/φ) rounds through the aggregation tree. Sketches travel as
// [label, cells...] frames of the batched message codec and come back as
// views into the final batch buffer.
func (dc *DynamicConnectivity) aggregateFragmentSketches() map[int]sketch.Sketch {
	return sketchcodec.AggregateByLabel(dc.f.cl, dc.f.coord, dc.space,
		func(mm *mpc.Machine, add func(label int, sk sketch.Sketch)) {
			vs := vShard(mm)
			if vs == nil || len(vs.frag) == 0 {
				return
			}
			sh := mm.Get(slotSketch).(*sketchShard)
			for v := range vs.frag {
				add(vs.compOf(v), sh.of(v).Sketch)
			}
		})
}

// findReplacements runs the AGM-style Borůvka over the fragments at the
// coordinator, resolving candidate endpoints with one distributed component
// lookup per level, and returns the replacement forest edges.
func (dc *DynamicConnectivity) findReplacements() ([]graph.Edge, error) {
	merged := dc.aggregateFragmentSketches()
	if len(merged) <= 1 {
		return nil, nil
	}
	// Register the workspace on the coordinator so its memory is metered.
	ws := &workspace{sketches: merged, perSk: dc.space.SketchWords()}
	dc.f.cl.LocalAt(dc.f.coord, func(mm *mpc.Machine) { mm.Set(slotWork, ws) })
	defer dc.f.cl.LocalAt(dc.f.coord, func(mm *mpc.Machine) { mm.Delete(slotWork) })

	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		return x
	}
	active := map[int]bool{}
	for c := range merged {
		active[c] = true
	}
	var replacements []graph.Edge
	for copyIdx := 0; copyIdx < dc.space.Copies() && len(active) > 1; copyIdx++ {
		reps := make([]int, 0, len(active))
		for c := range active {
			reps = append(reps, c)
		}
		sort.Ints(reps)
		var candidates []graph.Edge
		hadFail := false
		for _, rep := range reps {
			e, res := ws.sketches[rep].Query(copyIdx)
			switch res {
			case sketch.Empty:
				delete(active, rep) // no edges leave this supernode: done
			case sketch.Fail:
				hadFail = true
			case sketch.Found:
				candidates = append(candidates, graph.EdgeFromID(e, dc.f.cfg.N))
			}
		}
		if len(candidates) == 0 {
			if !hadFail {
				break
			}
			continue
		}
		// Resolve candidate endpoints to current components (the documented
		// O(1)-round lookup per level).
		var endpoints []int
		for _, e := range candidates {
			endpoints = append(endpoints, e.U, e.V)
		}
		labels := dc.f.Components(endpoints)
		for _, e := range candidates {
			ra, rb := find(labels[e.U]), find(labels[e.V])
			if ra == rb {
				continue
			}
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
			skB, okB := ws.sketches[rb]
			if skA, okA := ws.sketches[ra]; okA && okB {
				skA.Add(skB)
			}
			delete(ws.sketches, rb)
			delete(active, rb)
			if !active[ra] {
				// The union may revive a supernode previously thought done;
				// a merged supernode keeps querying while edges remain.
				active[ra] = true
			}
			replacements = append(replacements, e)
		}
	}
	return replacements, nil
}

// Connected reports whether u and v are currently in the same component:
// an O(1/φ)-round MPC query on a label-cache miss, zero rounds between
// updates once both endpoints are cached. Batches of queries should use
// ConnectedAll, which resolves all misses in one collective.
func (dc *DynamicConnectivity) Connected(u, v int) bool { return dc.f.Connected(u, v) }

// NumComponents counts the current components (cached between updates, so
// repeated readouts cost zero rounds).
func (dc *DynamicConnectivity) NumComponents() int { return dc.f.NumComponents() }

// SnapshotComponents reads out all component labels (driver-level readout).
func (dc *DynamicConnectivity) SnapshotComponents() []int { return dc.f.SnapshotComponents() }

// SnapshotForest reads out the maintained spanning forest (driver-level
// readout).
func (dc *DynamicConnectivity) SnapshotForest() []graph.Edge {
	wes := dc.f.SnapshotForest()
	out := make([]graph.Edge, len(wes))
	for i, we := range wes {
		out[i] = we.Edge
	}
	return out
}

// SpaceWords reports the per-vertex sketch footprint, used by experiments to
// report memory in comparable units.
func (dc *DynamicConnectivity) SpaceWords() int { return dc.space.SketchWords() }

// Bootstrap loads an initial graph into a freshly created instance by
// replaying it as insertion batches. The paper notes a pre-computation
// phase can instead solve the initial instance with a static O(log n)-round
// algorithm (Section 1.1); this convenience method favours simplicity and
// reports the rounds it spent so experiments can separate preprocessing
// from steady-state cost.
func (dc *DynamicConnectivity) Bootstrap(edges []graph.Edge) (rounds int, err error) {
	before := dc.f.cl.Stats().Rounds
	k := dc.MaxBatch()
	for i := 0; i < len(edges); i += k {
		end := i + k
		if end > len(edges) {
			end = len(edges)
		}
		if err := dc.insert(edges[i:end]); err != nil {
			return dc.f.cl.Stats().Rounds - before, err
		}
	}
	return dc.f.cl.Stats().Rounds - before, nil
}
