package core_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// warmInstance builds a connectivity instance and streams some churn into
// it (with a few queries, so the label cache is warm at checkpoint time).
func warmInstance(t testing.TB, n, parallelism, batches int, seed uint64) (*core.DynamicConnectivity, *workload.QueryMix) {
	t.Helper()
	dc, mix := newQueryRun(t, n, parallelism, seed)
	for i := 0; i < batches; i++ {
		if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
			t.Fatal(err)
		}
		dc.ConnectedAllInto(nil, toPairs(mix.NextQueries(16)))
	}
	return dc, mix
}

// TestSnapshotRoundTripContinue is the core round-trip property: checkpoint
// -> restore into a fresh instance -> continue the stream must be
// bit-identical (components, forest, Stats, query answers) to never having
// checkpointed — at parallelism 1 and 8, and with the restore crossing
// parallelism levels (engine choice is not state).
func TestSnapshotRoundTripContinue(t *testing.T) {
	for _, par := range []int{1, 8} {
		dc, mix := warmInstance(t, 64, par, 6, 11)
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, dc); err != nil {
			t.Fatal(err)
		}
		restored, err := core.NewDynamicConnectivity(core.Config{N: 64, Phi: 0.6, Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if err := snapshot.Load(bytes.NewReader(buf.Bytes()), restored); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dc.Cluster().Stats(), restored.Cluster().Stats()) {
			t.Fatalf("par %d: restored Stats differ:\n  live:     %+v\n  restored: %+v",
				par, dc.Cluster().Stats(), restored.Cluster().Stats())
		}
		if !reflect.DeepEqual(dc.SnapshotComponents(), restored.SnapshotComponents()) {
			t.Fatalf("par %d: restored components differ", par)
		}
		if !reflect.DeepEqual(dc.SnapshotForest(), restored.SnapshotForest()) {
			t.Fatalf("par %d: restored forest differs", par)
		}
		// Continue both with identical batches; they must stay in lockstep
		// (the restored cache must still be warm: same rounds, same answers).
		for i := 0; i < 4; i++ {
			b := mix.Next(dc.MaxBatch())
			if err := dc.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			if err := restored.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			pairs := toPairs(mix.NextQueries(32))
			if !reflect.DeepEqual(dc.ConnectedAll(pairs), restored.ConnectedAll(pairs)) {
				t.Fatalf("par %d: post-restore answers diverged at batch %d", par, i)
			}
		}
		if !reflect.DeepEqual(dc.Cluster().Stats(), restored.Cluster().Stats()) {
			t.Fatalf("par %d: post-restore Stats diverged:\n  live:     %+v\n  restored: %+v",
				par, dc.Cluster().Stats(), restored.Cluster().Stats())
		}
	}
}

// TestSnapshotConfigMismatch pins the fail-loudly contract: restoring into
// an instance of a different shape is a descriptive error, not corruption.
func TestSnapshotConfigMismatch(t *testing.T) {
	dc, _ := warmInstance(t, 64, 1, 3, 5)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, dc); err != nil {
		t.Fatal(err)
	}
	smaller, err := core.NewDynamicConnectivity(core.Config{N: 48, Phi: 0.6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Load(bytes.NewReader(buf.Bytes()), smaller); err == nil ||
		!strings.Contains(err.Error(), "N=64") {
		t.Fatalf("N mismatch not rejected: %v", err)
	}
	otherSeed, err := core.NewDynamicConnectivity(core.Config{N: 64, Phi: 0.6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Load(bytes.NewReader(buf.Bytes()), otherSeed); err == nil ||
		!strings.Contains(err.Error(), "Seed") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
}

// TestSnapshotCorruptionRejected flips bytes across a real connectivity
// snapshot: every corruption must be rejected by the container layer
// before any state is touched.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dc, _ := warmInstance(t, 48, 1, 3, 7)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, dc); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, at := range []int{0, 8, 16, 24, len(data) / 2, len(data) - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[at] ^= 0x20
		fresh, err := core.NewDynamicConnectivity(core.Config{N: 48, Phi: 0.6, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := snapshot.Load(bytes.NewReader(corrupt), fresh); err == nil {
			t.Errorf("corruption at byte %d applied without error", at)
		}
	}
}

// TestQueryVertexOutOfRange pins the query-API bounds check: an
// out-of-range vertex fails with the documented diagnostic instead of an
// index error deep inside the label cache.
func TestQueryVertexOutOfRange(t *testing.T) {
	dc, _ := warmInstance(t, 48, 1, 2, 9)
	for name, fn := range map[string]func(){
		"Connected":        func() { dc.Connected(3, 48) },
		"ConnectedAll":     func() { dc.ConnectedAll([]core.Pair{{U: 0, V: 99}}) },
		"ComponentsOf":     func() { dc.ComponentsOf([]int{-1}) },
		"ComponentsOfInto": func() { dc.ComponentsOfInto(nil, []int{48}) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: out-of-range vertex not rejected", name)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "core: query vertex") {
					t.Errorf("%s: panic %v lacks the diagnostic message", name, r)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkCheckpoint measures serializing a warmed connectivity instance
// into an in-memory snapshot (the per-crash cost of the fault-injection
// scenarios and the soak-run checkpoint cadence).
func BenchmarkCheckpoint(b *testing.B) {
	dc, _ := warmInstance(b, 128, 1, 8, 13)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := snapshot.Save(&buf, dc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkRestore measures decoding and applying a snapshot into an
// already-constructed instance (restore is an overwrite, so one target
// instance is reused across iterations).
func BenchmarkRestore(b *testing.B) {
	dc, _ := warmInstance(b, 128, 1, 8, 13)
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, dc); err != nil {
		b.Fatal(err)
	}
	target, err := core.NewDynamicConnectivity(core.Config{N: 128, Phi: 0.6, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snapshot.Load(bytes.NewReader(data), target); err != nil {
			b.Fatal(err)
		}
	}
}
