package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// newQueryRun builds a connectivity instance plus a read/write-mix workload
// over it.
func newQueryRun(t testing.TB, n, parallelism int, seed uint64) (*core.DynamicConnectivity, *workload.QueryMix) {
	t.Helper()
	dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.6, Seed: seed, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.Get("churn")
	if err != nil {
		t.Fatal(err)
	}
	return dc, workload.NewQueryMix(sc.New(n, seed+1), n, seed+2)
}

// toPairs converts workload query pairs to the core query type.
func toPairs(qs [][2]int) []core.Pair {
	out := make([]core.Pair, len(qs))
	for i, q := range qs {
		out[i] = core.Pair{U: q[0], V: q[1]}
	}
	return out
}

// TestBatchedQueriesMatchLoopAndOracle is the batched-query property test:
// across every scenario generator in the registry, at parallelism 1 and 8,
// the answers of ConnectedAll / ComponentsOf must be bit-identical to a
// per-query loop and to the brute-force oracle, before and after updates
// (the query -> update -> query cache-invalidation edge).
func TestBatchedQueriesMatchLoopAndOracle(t *testing.T) {
	const n = 48
	for _, scName := range workload.Names() {
		for _, parallelism := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/p%d", scName, parallelism), func(t *testing.T) {
				sc, err := workload.Get(scName)
				if err != nil {
					t.Fatal(err)
				}
				dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.6, Seed: 3, Parallelism: parallelism})
				if err != nil {
					t.Fatal(err)
				}
				mix := workload.NewQueryMix(sc.New(n, 4), n, 5)
				vertices := make([]int, n)
				for v := range vertices {
					vertices[v] = v
				}
				for batch := 0; batch < 6; batch++ {
					b := mix.Next(dc.MaxBatch())
					if len(b) > 0 {
						if err := dc.ApplyBatch(b); err != nil {
							t.Fatal(err)
						}
					}
					pairs := toPairs(mix.NextQueries(24))
					// Batched vs per-query loop vs oracle. The second batched
					// call runs fully warm and must agree bit for bit.
					batched := dc.ConnectedAll(pairs)
					warm := dc.ConnectedAll(pairs)
					oracleLabels := oracle.Components(mix.Mirror())
					for i, p := range pairs {
						loop := dc.Connected(p.U, p.V)
						want := oracleLabels[p.U] == oracleLabels[p.V]
						if batched[i] != want || loop != want || warm[i] != want {
							t.Fatalf("batch %d pair %v: batched=%v warm=%v loop=%v oracle=%v",
								batch, p, batched[i], warm[i], loop, want)
						}
					}
					labels := dc.ComponentsOf(vertices)
					if !reflect.DeepEqual(labels, oracleLabels) {
						t.Fatalf("batch %d: ComponentsOf diverged from oracle\n got %v\nwant %v", batch, labels, oracleLabels)
					}
				}
			})
		}
	}
}

// TestQueryCacheInvalidationEdge pins the query -> update -> query edge with
// a hand-built stream: a stale cache must never survive an update that
// changes connectivity.
func TestQueryCacheInvalidationEdge(t *testing.T) {
	dc, err := core.NewDynamicConnectivity(core.Config{N: 32, Phi: 0.6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(op string, u, v int) {
		t.Helper()
		upd := graph.Ins(u, v)
		if op == "d" {
			upd = graph.Del(u, v)
		}
		if err := dc.ApplyBatch(graph.Batch{upd}); err != nil {
			t.Fatal(err)
		}
	}
	pair := []core.Pair{{U: 0, V: 2}}
	if got := dc.ConnectedAll(pair); got[0] {
		t.Fatal("0 and 2 connected in the empty graph")
	}
	apply("i", 0, 1)
	apply("i", 1, 2)
	if got := dc.ConnectedAll(pair); !got[0] {
		t.Fatal("0 and 2 disconnected after linking 0-1-2 (stale cache?)")
	}
	apply("d", 1, 2)
	if got := dc.ConnectedAll(pair); got[0] {
		t.Fatal("0 and 2 still connected after cutting 1-2 (stale cache?)")
	}
	apply("i", 0, 2)
	if got := dc.ConnectedAll(pair); !got[0] {
		t.Fatal("0 and 2 disconnected after re-inserting 0-2 (stale cache?)")
	}
}

// TestBatchedQueryRounds1024 is the acceptance gate of the batched query
// engine: at 1024 queries, one batched collective must cost at least 10x
// fewer MPC rounds than the per-query loop, the warm (cached) repeat must
// cost zero rounds, and the whole run's Stats must be bit-identical at
// parallelism 1 and 8.
func TestBatchedQueryRounds1024(t *testing.T) {
	const n, queries = 256, 1024
	run := func(parallelism int) (loop, batched, warm int, st mpc.Stats) {
		dc, mix := newQueryRun(t, n, parallelism, 17)
		for i := 0; i < 6; i++ {
			if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
				t.Fatal(err)
			}
		}
		pairs := toPairs(mix.NextQueries(queries))
		rounds := func() int { return dc.Cluster().Stats().Rounds }
		// Per-query loop: each query pays its own collective (the pre-cache
		// regime: invalidate so no batch effect leaks in).
		before := rounds()
		for _, p := range pairs {
			dc.InvalidateQueryCache()
			dc.Connected(p.U, p.V)
		}
		loop = rounds() - before
		// One batched collective, cold.
		dc.InvalidateQueryCache()
		before = rounds()
		dc.ConnectedAll(pairs)
		batched = rounds() - before
		// Warm repeat: zero rounds.
		before = rounds()
		dc.ConnectedAll(pairs)
		warm = rounds() - before
		return loop, batched, warm, dc.Cluster().Stats()
	}
	loop, batched, warm, seqStats := run(1)
	if batched == 0 || loop < 10*batched {
		t.Errorf("per-query loop = %d rounds, batched = %d rounds; want >= 10x fewer", loop, batched)
	}
	if warm != 0 {
		t.Errorf("warm batched query cost %d rounds, want 0", warm)
	}
	_, _, _, parStats := run(8)
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats diverged across parallelism:\nseq %+v\npar %+v", seqStats, parStats)
	}
	t.Logf("rounds for %d queries: loop=%d batched=%d warm=%d", queries, loop, batched, warm)
}

// TestQueryAllocsWarm is the zero-allocation contract of the warm query
// path: fully cached ConnectedAllInto and ComponentsOfInto perform zero
// allocations.
func TestQueryAllocsWarm(t *testing.T) {
	dc, mix := newQueryRun(t, 96, 1, 23)
	for i := 0; i < 4; i++ {
		if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
			t.Fatal(err)
		}
	}
	pairs := toPairs(mix.NextQueries(256))
	vertices := make([]int, 96)
	for v := range vertices {
		vertices[v] = v
	}
	ans := make([]bool, 0, len(pairs))
	labels := make([]int, 0, len(vertices))
	dc.ConnectedAllInto(ans, pairs) // warm the cache
	if n := testing.AllocsPerRun(100, func() {
		ans = dc.ConnectedAllInto(ans, pairs)
	}); n != 0 {
		t.Errorf("warm ConnectedAllInto allocates %.1f allocs/op, want 0", n)
	}
	dc.ComponentsOfInto(labels, vertices)
	if n := testing.AllocsPerRun(100, func() {
		labels = dc.ComponentsOfInto(labels, vertices)
	}); n != 0 {
		t.Errorf("warm ComponentsOfInto allocates %.1f allocs/op, want 0", n)
	}
}
