package core

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
	"repro/internal/oracle"
)

// mirror pairs a DynamicConnectivity with a sequential reference graph and
// cross-checks every derived solution.
type mirror struct {
	t  *testing.T
	dc *DynamicConnectivity
	g  *graph.Graph
}

func newMirror(t *testing.T, n int, phi float64, seed uint64) *mirror {
	t.Helper()
	dc, err := NewDynamicConnectivity(Config{N: n, Phi: phi, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return &mirror{t: t, dc: dc, g: graph.New(n)}
}

func (m *mirror) apply(b graph.Batch) {
	m.t.Helper()
	if err := m.g.Apply(b); err != nil {
		m.t.Fatalf("invalid batch against mirror: %v", err)
	}
	if err := m.dc.ApplyBatch(b); err != nil {
		m.t.Fatalf("ApplyBatch: %v", err)
	}
}

func (m *mirror) check() {
	m.t.Helper()
	want := oracle.Components(m.g)
	got := m.dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			m.t.Fatalf("component of %d = %d, oracle %d (all: got %v want %v)", v, got[v], want[v], got, want)
		}
	}
	forest := m.dc.SnapshotForest()
	if !oracle.IsSpanningForest(m.g, forest) {
		m.t.Fatalf("maintained forest %v is not a spanning forest", forest)
	}
	if v := m.dc.Cluster().Stats().Violations; len(v) > 0 {
		m.t.Fatalf("cluster violations: %v", v[:min(3, len(v))])
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{N: 1, Phi: 0.5},
		{N: 10, Phi: 0},
		{N: 10, Phi: 1.5},
	} {
		if _, err := NewDynamicConnectivity(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMaxBatchEnforced(t *testing.T) {
	m := newMirror(t, 32, 0.5, 1)
	big := make(graph.Batch, m.dc.MaxBatch()+1)
	for i := range big {
		big[i] = graph.Ins(0, i+1)
	}
	if err := m.dc.ApplyBatch(big); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestInsertSingleEdge(t *testing.T) {
	m := newMirror(t, 16, 0.5, 2)
	m.apply(graph.Batch{graph.Ins(3, 7)})
	m.check()
	if !m.dc.Connected(3, 7) || m.dc.Connected(3, 8) {
		t.Error("Connected wrong after single insert")
	}
}

func TestInsertBatchMergesChains(t *testing.T) {
	m := newMirror(t, 16, 0.6, 3)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)})
	m.check()
	m.apply(graph.Batch{graph.Ins(4, 5), graph.Ins(5, 6)})
	m.check()
	m.apply(graph.Batch{graph.Ins(3, 4)}) // merge the two chains
	m.check()
	// Vertices 0..6 form one component; 8..15 plus vertex 7 are singletons.
	if got := m.dc.NumComponents(); got != 10 {
		t.Errorf("NumComponents = %d, want 10", got)
	}
}

func TestInsertRedundantEdges(t *testing.T) {
	m := newMirror(t, 12, 0.6, 4)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)})
	m.check()
	// Batch containing both a merging edge and a cycle edge.
	m.apply(graph.Batch{graph.Ins(0, 2), graph.Ins(2, 3)})
	m.check()
}

func TestDeleteNonTreeEdge(t *testing.T) {
	m := newMirror(t, 12, 0.6, 5)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)})
	m.apply(graph.Batch{graph.Ins(0, 2)}) // cycle edge: non-tree
	m.check()
	m.apply(graph.Batch{graph.Del(0, 2)})
	m.check()
	if !m.dc.Connected(0, 2) {
		t.Error("deleting non-tree edge disconnected the cycle")
	}
}

func TestDeleteTreeEdgeWithReplacement(t *testing.T) {
	m := newMirror(t, 12, 0.6, 6)
	// Triangle: deleting any edge must keep connectivity via the third.
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)})
	m.apply(graph.Batch{graph.Ins(0, 2)})
	m.check()
	m.apply(graph.Batch{graph.Del(0, 1)})
	m.check()
	if !m.dc.Connected(0, 1) {
		t.Error("triangle lost connectivity after one deletion")
	}
}

func TestDeleteTreeEdgeWithoutReplacement(t *testing.T) {
	m := newMirror(t, 12, 0.6, 7)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2)})
	m.check()
	m.apply(graph.Batch{graph.Del(1, 2)})
	m.check()
	if m.dc.Connected(1, 2) {
		t.Error("split component still reported connected")
	}
}

func TestDeleteBatchMultipleSplits(t *testing.T) {
	m := newMirror(t, 16, 0.6, 8)
	var b graph.Batch
	for i := 0; i+1 < 8; i++ {
		b = append(b, graph.Ins(i, i+1))
	}
	// Path inserted across batches respecting MaxBatch.
	for i := 0; i < len(b); i += m.dc.MaxBatch() {
		m.apply(b[i:min(i+m.dc.MaxBatch(), len(b))])
	}
	m.check()
	m.apply(graph.Batch{graph.Del(1, 2), graph.Del(4, 5)})
	m.check()
}

func TestMixedBatch(t *testing.T) {
	m := newMirror(t, 16, 0.6, 9)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)})
	m.check()
	// One batch with an insertion and a deletion.
	m.apply(graph.Batch{graph.Ins(3, 4), graph.Del(1, 2)})
	m.check()
}

func TestCycleReplacementChain(t *testing.T) {
	// Build a long cycle, then delete several tree edges in one batch; the
	// remaining cycle edges must be found as replacements via sketches.
	const n = 12
	m := newMirror(t, n, 0.7, 10)
	var edges []graph.Update
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Ins(i, (i+1)%n))
	}
	for i := 0; i < len(edges); i += m.dc.MaxBatch() {
		end := min(i+m.dc.MaxBatch(), len(edges))
		m.apply(graph.Batch(edges[i:end]))
	}
	m.check()
	// The graph is a single cycle: delete 3 edges; connectivity must
	// degrade to exactly 3 components... no: deleting 3 edges from a cycle
	// leaves 3 paths, i.e. the graph splits into 3 components only if the
	// deleted edges are non-adjacent. Check against the oracle either way.
	m.apply(graph.Batch{graph.Del(0, 1), graph.Del(4, 5), graph.Del(8, 9)})
	m.check()
}

func TestDenseGraphDeletionStorm(t *testing.T) {
	// Near-clique on 10 vertices; delete many edges; sketches must find
	// replacements among the dense remainder.
	const n = 10
	m := newMirror(t, n, 0.7, 11)
	var all []graph.Update
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			all = append(all, graph.Ins(u, v))
		}
	}
	for i := 0; i < len(all); i += m.dc.MaxBatch() {
		end := min(i+m.dc.MaxBatch(), len(all))
		m.apply(graph.Batch(all[i:end]))
	}
	m.check()
	// Delete a batch of spanning-forest edges.
	forest := m.dc.SnapshotForest()
	var dels graph.Batch
	for i := 0; i < min(3, len(forest)); i++ {
		dels = append(dels, graph.Del(forest[i].U, forest[i].V))
	}
	m.apply(dels)
	m.check()
	if m.dc.NumComponents() != 1 {
		t.Errorf("dense graph disconnected: %d components", m.dc.NumComponents())
	}
}

func TestRandomizedChurnAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for _, tc := range []struct {
		n    int
		phi  float64
		seed uint64
	}{
		{24, 0.5, 21}, {24, 0.7, 22}, {48, 0.6, 23}, {48, 0.8, 24}, {64, 0.7, 25},
	} {
		tc := tc
		t.Run("", func(t *testing.T) {
			m := newMirror(t, tc.n, tc.phi, tc.seed)
			prg := hash.NewPRG(tc.seed * 977)
			maxB := m.dc.MaxBatch()
			for step := 0; step < 25; step++ {
				var b graph.Batch
				used := map[graph.Edge]bool{}
				size := 1 + int(prg.NextN(uint64(maxB)))
				for len(b) < size {
					u := int(prg.NextN(uint64(tc.n)))
					v := int(prg.NextN(uint64(tc.n)))
					if u == v {
						continue
					}
					e := graph.NewEdge(u, v)
					if used[e] {
						continue
					}
					if m.g.Has(e.U, e.V) {
						// Bias towards keeping some edges: delete half the time.
						if prg.Next()&1 == 0 {
							used[e] = true
							b = append(b, graph.Del(e.U, e.V))
						}
					} else {
						used[e] = true
						b = append(b, graph.Ins(e.U, e.V))
					}
				}
				m.apply(b)
				m.check()
			}
		})
	}
}

func TestRoundsPerBatchBounded(t *testing.T) {
	// The defining property: rounds per batch must not grow with the number
	// of batches already processed or with the graph size m.
	m := newMirror(t, 64, 0.7, 31)
	prg := hash.NewPRG(99)
	var roundsPerBatch []int
	for step := 0; step < 20; step++ {
		var b graph.Batch
		used := map[graph.Edge]bool{}
		for len(b) < m.dc.MaxBatch() {
			u, v := int(prg.NextN(64)), int(prg.NextN(64))
			if u == v {
				continue
			}
			e := graph.NewEdge(u, v)
			if used[e] || m.g.Has(e.U, e.V) {
				continue
			}
			used[e] = true
			b = append(b, graph.Ins(u, v))
		}
		before := m.dc.Cluster().Stats().Rounds
		m.apply(b)
		roundsPerBatch = append(roundsPerBatch, m.dc.Cluster().Stats().Rounds-before)
	}
	first, last := roundsPerBatch[1], roundsPerBatch[len(roundsPerBatch)-1]
	if last > 3*first+20 {
		t.Errorf("rounds per batch grew from %d to %d: %v", first, last, roundsPerBatch)
	}
}

func TestSnapshotForestSorted(t *testing.T) {
	m := newMirror(t, 16, 0.6, 41)
	m.apply(graph.Batch{graph.Ins(5, 3), graph.Ins(1, 9)})
	f := m.dc.SnapshotForest()
	if !sort.SliceIsSorted(f, func(i, j int) bool {
		if f[i].U != f[j].U {
			return f[i].U < f[j].U
		}
		return f[i].V < f[j].V
	}) {
		t.Error("SnapshotForest not sorted")
	}
}

func TestForestLinkValidation(t *testing.T) {
	f, err := NewForest(Config{N: 8, Phi: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Link([]graph.WeightedEdge{graph.NewWeightedEdge(0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	// Edge within one component must be rejected by the planner.
	if err := f.Link([]graph.WeightedEdge{graph.NewWeightedEdge(0, 1, 2)}); err == nil {
		t.Error("intra-component Link accepted")
	}
}

func TestForestCutNonTreeOnly(t *testing.T) {
	f, err := NewForest(Config{N: 8, Phi: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Link([]graph.WeightedEdge{graph.NewWeightedEdge(0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Cut([]graph.Edge{graph.NewEdge(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TreeRecords) != 0 || len(rep.NonTree) != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestHeaviestOnPaths(t *testing.T) {
	f, err := NewWeightedForest(Config{N: 8, Phi: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Path 0-1-2-3 with weights 5, 9, 2.
	if err := f.Link([]graph.WeightedEdge{
		graph.NewWeightedEdge(0, 1, 5),
		graph.NewWeightedEdge(1, 2, 9),
		graph.NewWeightedEdge(2, 3, 2),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := f.HeaviestOnPaths([][2]int{{0, 3}, {2, 3}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := got[0]; !ok || e.Weight != 9 {
		t.Errorf("heaviest on 0-3 = %+v", got[0])
	}
	if e, ok := got[1]; !ok || e.Weight != 2 {
		t.Errorf("heaviest on 2-3 = %+v", got[1])
	}
	if _, ok := got[2]; ok {
		t.Error("cross-component path returned an edge")
	}
}

func TestNumComponentsFresh(t *testing.T) {
	f, err := NewForest(Config{N: 10, Phi: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumComponents() != 10 {
		t.Errorf("fresh forest has %d components", f.NumComponents())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBootstrap(t *testing.T) {
	const n = 32
	dc, err := NewDynamicConnectivity(Config{N: n, Phi: 0.6, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	prg := hash.NewPRG(52)
	var edges []graph.Edge
	for len(edges) < 40 {
		u, v := int(prg.NextN(n)), int(prg.NextN(n))
		if u == v || g.Has(u, v) {
			continue
		}
		_ = g.Insert(u, v, 0)
		edges = append(edges, graph.NewEdge(u, v))
	}
	rounds, err := dc.Bootstrap(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Error("bootstrap reported no rounds")
	}
	want := oracle.Components(g)
	got := dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("component of %d = %d, oracle %d", v, got[v], want[v])
		}
	}
	// The bootstrapped instance must keep working for dynamic batches.
	b := graph.Batch{graph.Del(edges[0].U, edges[0].V)}
	_ = g.Apply(b)
	if err := dc.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if !oracle.IsSpanningForest(g, dc.SnapshotForest()) {
		t.Fatal("forest invalid after post-bootstrap deletion")
	}
}

func TestStrictModeChurn(t *testing.T) {
	// Strict mode panics on any cap violation; a full churn run must
	// complete silently.
	dc, err := NewDynamicConnectivity(Config{N: 48, Phi: 0.6, Seed: 61, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(48)
	prg := hash.NewPRG(62)
	for step := 0; step < 15; step++ {
		var b graph.Batch
		used := map[graph.Edge]bool{}
		for len(b) < dc.MaxBatch() {
			u, v := int(prg.NextN(48)), int(prg.NextN(48))
			if u == v {
				continue
			}
			e := graph.NewEdge(u, v)
			if used[e] {
				continue
			}
			used[e] = true
			if g.Has(e.U, e.V) {
				_ = g.Delete(e.U, e.V)
				b = append(b, graph.Del(e.U, e.V))
			} else {
				_ = g.Insert(e.U, e.V, 0)
				b = append(b, graph.Ins(e.U, e.V))
			}
		}
		if err := dc.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	want := oracle.Components(g)
	got := dc.SnapshotComponents()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("component of %d diverged under strict mode", v)
		}
	}
}

func TestSoakLargeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A longer, larger run: n=128 over 60 batches with full oracle checks
	// every 10 batches.
	m := newMirror(t, 128, 0.6, 71)
	prg := hash.NewPRG(72)
	for step := 0; step < 60; step++ {
		var b graph.Batch
		used := map[graph.Edge]bool{}
		for len(b) < m.dc.MaxBatch() {
			u, v := int(prg.NextN(128)), int(prg.NextN(128))
			if u == v {
				continue
			}
			e := graph.NewEdge(u, v)
			if used[e] {
				continue
			}
			used[e] = true
			if m.g.Has(e.U, e.V) {
				if prg.Next()&1 == 0 {
					b = append(b, graph.Del(e.U, e.V))
				}
			} else {
				b = append(b, graph.Ins(e.U, e.V))
			}
		}
		m.apply(b)
		if step%10 == 9 {
			m.check()
		}
	}
	m.check()
}

func TestForestComponentsMatchesSnapshot(t *testing.T) {
	// The metered Components query and the driver-level snapshot must agree
	// for arbitrary vertex subsets.
	m := newMirror(t, 24, 0.6, 81)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(2, 3), graph.Ins(1, 2)})
	snap := m.dc.SnapshotComponents()
	queried := m.dc.Forest().Components([]int{0, 1, 2, 3, 4, 23})
	for v, c := range queried {
		if snap[v] != c {
			t.Errorf("vertex %d: query %d, snapshot %d", v, c, snap[v])
		}
	}
}

func TestCutThenLinkReusesFragState(t *testing.T) {
	// A Cut leaves transient fragment state; an immediately following Link
	// must clear and not corrupt it.
	m := newMirror(t, 16, 0.6, 91)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(2, 3)})
	m.apply(graph.Batch{graph.Del(1, 2)})
	m.check()
	m.apply(graph.Batch{graph.Ins(1, 2)})
	m.check()
	m.apply(graph.Batch{graph.Del(0, 1), graph.Ins(0, 2)})
	m.check()
}

func TestReportForest(t *testing.T) {
	m := newMirror(t, 32, 0.6, 95)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(1, 2), graph.Ins(10, 11)})
	counts := m.dc.Forest().ReportForest()
	total := 0
	firstEmpty := -1
	for id, c := range counts {
		total += c
		if c == 0 && firstEmpty == -1 {
			firstEmpty = id
		}
		if c > 0 && firstEmpty != -1 && id > firstEmpty {
			t.Errorf("output not on a prefix of machines: counts %v", counts)
			break
		}
	}
	if total != 3 {
		t.Errorf("reported %d edges, want 3", total)
	}
	// The structure must stay intact for further updates.
	m.apply(graph.Batch{graph.Del(1, 2)})
	m.check()
}

func TestConnectedMany(t *testing.T) {
	m := newMirror(t, 16, 0.6, 96)
	m.apply(graph.Batch{graph.Ins(0, 1), graph.Ins(2, 3)})
	got := m.dc.Forest().ConnectedMany([][2]int{{0, 1}, {0, 2}, {2, 3}, {4, 4}})
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestFailureInjectionStarvedSketches(t *testing.T) {
	// Failure injection: with a single sketch copy, the replacement search
	// must visibly break on a replacement-heavy workload for at least one
	// of these seeds (E11 shows it breaks on nearly all).
	divergedSomewhere := false
	for _, seed := range []uint64{1, 2, 3} {
		dc, err := NewDynamicConnectivity(Config{N: 24, Phi: 0.7, Seed: seed, SketchCopies: 1})
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(24)
		apply := func(b graph.Batch) {
			if err := g.Apply(b); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(b); i += dc.MaxBatch() {
				if err := dc.ApplyBatch(b[i:min(i+dc.MaxBatch(), len(b))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		var build graph.Batch
		for i := 0; i < 24; i++ {
			build = append(build, graph.Ins(i, (i+1)%24), graph.Ins(i, (i+2)%24))
		}
		apply(build)
		prg := hash.NewPRG(seed * 7)
		for round := 0; round < 6; round++ {
			forest := dc.SnapshotForest()
			var del graph.Batch
			used := map[int]bool{}
			for len(del) < dc.MaxBatch() && len(del) < len(forest) {
				i := int(prg.NextN(uint64(len(forest))))
				if used[i] {
					continue
				}
				used[i] = true
				e := forest[i]
				if g.Has(e.U, e.V) {
					del = append(del, graph.Del(e.U, e.V))
				}
			}
			apply(del)
		}
		want := oracle.Components(g)
		got := dc.SnapshotComponents()
		for v := range want {
			if got[v] != want[v] {
				divergedSomewhere = true
				break
			}
		}
	}
	if !divergedSomewhere {
		t.Error("starved sketches never diverged; the failure-injection workload is too weak")
	}
}
