package core_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// deltaChain is the in-memory test double of snapshot.Chain: a base
// container plus delta containers with their identities.
type deltaChain struct {
	base   bytes.Buffer
	baseID uint64
	tipID  uint64
	deltas []*bytes.Buffer
}

func (c *deltaChain) saveBase(t testing.TB, dc *core.DynamicConnectivity) {
	t.Helper()
	id, err := snapshot.SaveBase(&c.base, dc)
	if err != nil {
		t.Fatal(err)
	}
	c.baseID = id
	c.tipID = id
	dc.AckCheckpoint()
}

func (c *deltaChain) saveDelta(t testing.TB, dc *core.DynamicConnectivity) {
	t.Helper()
	var buf bytes.Buffer
	link := snapshot.ChainLink{Base: c.baseID, Prev: c.tipID, Seq: uint64(len(c.deltas) + 1)}
	id, err := snapshot.SaveDelta(&buf, link, dc)
	if err != nil {
		t.Fatal(err)
	}
	c.deltas = append(c.deltas, &buf)
	c.tipID = id
	dc.AckCheckpoint()
}

func (c *deltaChain) restore(t testing.TB, dc *core.DynamicConnectivity) {
	t.Helper()
	id, err := snapshot.LoadBase(bytes.NewReader(c.base.Bytes()), dc)
	if err != nil {
		t.Fatal(err)
	}
	prev := id
	for i, buf := range c.deltas {
		want := snapshot.ChainLink{Base: c.baseID, Prev: prev, Seq: uint64(i + 1)}
		next, err := snapshot.LoadDelta(bytes.NewReader(buf.Bytes()), want, dc)
		if err != nil {
			t.Fatalf("delta %d: %v", i+1, err)
		}
		prev = next
	}
}

// TestDeltaChainRestoreBitIdentical is the delta acceptance property:
// restoring base + delta chain into a fresh instance must be bit-identical —
// Stats, components, forest, and warm query answers — to restoring one full
// snapshot of the same final state, and both must equal the live instance,
// at parallelism 1 and 8. The stream includes deletions, so the chain
// carries tombstones, fragment rebuilds, and relabels, not just upserts.
func TestDeltaChainRestoreBitIdentical(t *testing.T) {
	for _, par := range []int{1, 8} {
		dc, mix := warmInstance(t, 64, par, 4, 17)
		var chain deltaChain
		chain.saveBase(t, dc)
		// Three deltas, each covering two batches of churn plus queries (so
		// the label cache is warm and epoch-scoped entries ride the delta).
		for k := 0; k < 3; k++ {
			for i := 0; i < 2; i++ {
				if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
					t.Fatal(err)
				}
				dc.ConnectedAllInto(nil, toPairs(mix.NextQueries(16)))
			}
			chain.saveDelta(t, dc)
		}
		var full bytes.Buffer
		if err := snapshot.Save(&full, dc); err != nil {
			t.Fatal(err)
		}

		fresh := func() *core.DynamicConnectivity {
			r, err := core.NewDynamicConnectivity(core.Config{N: 64, Phi: 0.6, Seed: 17, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		fromChain := fresh()
		chain.restore(t, fromChain)
		fromFull := fresh()
		if err := snapshot.Load(bytes.NewReader(full.Bytes()), fromFull); err != nil {
			t.Fatal(err)
		}

		for name, r := range map[string]*core.DynamicConnectivity{"chain": fromChain, "full": fromFull} {
			if !reflect.DeepEqual(dc.Cluster().Stats(), r.Cluster().Stats()) {
				t.Fatalf("par %d: %s-restored Stats differ:\n  live:     %+v\n  restored: %+v",
					par, name, dc.Cluster().Stats(), r.Cluster().Stats())
			}
			if !reflect.DeepEqual(dc.SnapshotComponents(), r.SnapshotComponents()) {
				t.Fatalf("par %d: %s-restored components differ", par, name)
			}
			if !reflect.DeepEqual(dc.SnapshotForest(), r.SnapshotForest()) {
				t.Fatalf("par %d: %s-restored forest differs", par, name)
			}
		}

		// Continue live and chain-restored in lockstep: answers and Stats must
		// stay identical (in particular the restored cache is still warm).
		for i := 0; i < 3; i++ {
			b := mix.Next(dc.MaxBatch())
			if err := dc.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			if err := fromChain.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			pairs := toPairs(mix.NextQueries(32))
			if !reflect.DeepEqual(dc.ConnectedAll(pairs), fromChain.ConnectedAll(pairs)) {
				t.Fatalf("par %d: post-restore answers diverged at batch %d", par, i)
			}
		}
		if !reflect.DeepEqual(dc.Cluster().Stats(), fromChain.Cluster().Stats()) {
			t.Fatalf("par %d: post-restore Stats diverged:\n  live:     %+v\n  restored: %+v",
				par, dc.Cluster().Stats(), fromChain.Cluster().Stats())
		}
	}
}

// TestDeltaRejectsOrphanAndOutOfOrder pins the chain-identity validation:
// a delta naming the wrong base (orphaned) or the wrong position (out of
// order) is rejected before any state section is decoded.
func TestDeltaRejectsOrphanAndOutOfOrder(t *testing.T) {
	dc, mix := warmInstance(t, 64, 1, 3, 19)
	var chain deltaChain
	chain.saveBase(t, dc)
	if err := dc.ApplyBatch(mix.Next(dc.MaxBatch())); err != nil {
		t.Fatal(err)
	}
	chain.saveDelta(t, dc)
	delta := chain.deltas[0].Bytes()

	fresh, err := core.NewDynamicConnectivity(core.Config{N: 64, Phi: 0.6, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.LoadBase(bytes.NewReader(chain.base.Bytes()), fresh); err != nil {
		t.Fatal(err)
	}
	wrongBase := snapshot.ChainLink{Base: chain.baseID + 1, Prev: chain.baseID + 1, Seq: 1}
	if _, err := snapshot.LoadDelta(bytes.NewReader(delta), wrongBase, fresh); err == nil ||
		!strings.Contains(err.Error(), "orphaned delta") {
		t.Fatalf("orphaned delta not rejected: %v", err)
	}
	wrongSeq := snapshot.ChainLink{Base: chain.baseID, Prev: chain.baseID, Seq: 2}
	if _, err := snapshot.LoadDelta(bytes.NewReader(delta), wrongSeq, fresh); err == nil ||
		!strings.Contains(err.Error(), "out-of-order delta") {
		t.Fatalf("out-of-order delta not rejected: %v", err)
	}
	// A full container where a delta is expected is caught by the magic word.
	if _, err := snapshot.LoadDelta(bytes.NewReader(chain.base.Bytes()), wrongSeq, fresh); err == nil ||
		!strings.Contains(err.Error(), "full snapshot container") {
		t.Fatalf("full container not rejected as delta: %v", err)
	}
	// The rejections above touched no state: the correct delta still applies.
	want := snapshot.ChainLink{Base: chain.baseID, Prev: chain.baseID, Seq: 1}
	if _, err := snapshot.LoadDelta(bytes.NewReader(delta), want, fresh); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dc.SnapshotComponents(), fresh.SnapshotComponents()) {
		t.Fatal("chain restore after rejected attempts diverged")
	}
}

// bigInstance builds the acceptance-scale instance: 1<<16 vertices with 2
// sketch copies (the default t = 2 log n + 8 would put the arenas at ~2 GB;
// two copies keep the full image ~100 MB while preserving the cost shape),
// warmed with insert-only churn so the replacement search never needs the
// full copy stack.
func bigInstance(tb testing.TB) (*core.DynamicConnectivity, *workload.Churn) {
	tb.Helper()
	const n = 1 << 16
	dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.6, SketchCopies: 2, Seed: 21})
	if err != nil {
		tb.Fatal(err)
	}
	churn := workload.NewChurn(workload.Config{N: n, Seed: 21})
	for i := 0; i < 4; i++ {
		if err := dc.ApplyBatch(churn.NextInsertOnly(64)); err != nil {
			tb.Fatal(err)
		}
	}
	return dc, churn
}

// TestDeltaCheckpointCheaper is the acceptance bound: on a 1<<16-vertex
// graph, a delta checkpoint after one 64-update batch must be at least 5×
// cheaper than a full checkpoint in both bytes and wall time (it is ~500×
// in bytes: the delta ships only the touched arena regions), and the chain
// restore must reproduce the full state.
func TestDeltaCheckpointCheaper(t *testing.T) {
	dc, churn := bigInstance(t)
	var chain deltaChain
	chain.saveBase(t, dc)
	if err := dc.ApplyBatch(churn.NextInsertOnly(64)); err != nil {
		t.Fatal(err)
	}

	time1 := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var fullBuf bytes.Buffer
	fullNs := time1(func() {
		fullBuf.Reset()
		if err := snapshot.Save(&fullBuf, dc); err != nil {
			t.Fatal(err)
		}
	})
	var deltaBuf bytes.Buffer
	link := snapshot.ChainLink{Base: chain.baseID, Prev: chain.tipID, Seq: 1}
	deltaNs := time1(func() {
		deltaBuf.Reset()
		if _, err := snapshot.SaveDelta(&deltaBuf, link, dc); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("full: %d bytes in %v; delta: %d bytes in %v (ratios %.1f× bytes, %.1f× ns)",
		fullBuf.Len(), fullNs, deltaBuf.Len(), deltaNs,
		float64(fullBuf.Len())/float64(deltaBuf.Len()), float64(fullNs)/float64(deltaNs))
	if deltaBuf.Len()*5 > fullBuf.Len() {
		t.Fatalf("delta is %d bytes, full %d: less than 5× cheaper", deltaBuf.Len(), fullBuf.Len())
	}
	if deltaNs*5 > fullNs {
		t.Fatalf("delta took %v, full %v: less than 5× cheaper", deltaNs, fullNs)
	}

	// The cheap delta still carries everything: base + delta equals the live
	// state.
	chain.deltas = append(chain.deltas, &deltaBuf)
	dc.AckCheckpoint()
	fresh, err := core.NewDynamicConnectivity(core.Config{N: 1 << 16, Phi: 0.6, SketchCopies: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	chain.restore(t, fresh)
	if !reflect.DeepEqual(dc.Cluster().Stats(), fresh.Cluster().Stats()) {
		t.Fatal("chain-restored Stats differ at acceptance scale")
	}
	if !reflect.DeepEqual(dc.SnapshotComponents(), fresh.SnapshotComponents()) {
		t.Fatal("chain-restored components differ at acceptance scale")
	}
	if !reflect.DeepEqual(dc.SnapshotForest(), fresh.SnapshotForest()) {
		t.Fatal("chain-restored forest differs at acceptance scale")
	}
}

// BenchmarkCheckpointFull64K is the full-checkpoint comparator for the
// delta benchmarks below: same instance, same preceding 64-update batch,
// full container (cost scales with graph size).
func BenchmarkCheckpointFull64K(b *testing.B) {
	dc, churn := bigInstance(b)
	if err := dc.ApplyBatch(churn.NextInsertOnly(64)); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := snapshot.Save(&buf, dc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkCheckpointDelta measures a delta checkpoint of the 1<<16-vertex
// instance after a 64-update batch (cost scales with churn, not graph
// size). The checkpoint is not acknowledged, so every iteration encodes the
// same dirty set.
func BenchmarkCheckpointDelta(b *testing.B) {
	dc, churn := bigInstance(b)
	var base bytes.Buffer
	baseID, err := snapshot.SaveBase(&base, dc)
	if err != nil {
		b.Fatal(err)
	}
	dc.AckCheckpoint()
	if err := dc.ApplyBatch(churn.NextInsertOnly(64)); err != nil {
		b.Fatal(err)
	}
	link := snapshot.ChainLink{Base: baseID, Prev: baseID, Seq: 1}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := snapshot.SaveDelta(&buf, link, dc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkRestoreChain measures applying a 4-delta chain on top of an
// already-restored base (the incremental part of a chain restore; deltas
// are idempotent, so reapplying the chain each iteration is well-defined).
func BenchmarkRestoreChain(b *testing.B) {
	dc, churn := bigInstance(b)
	var chain deltaChain
	chain.saveBase(b, dc)
	for k := 0; k < 4; k++ {
		if err := dc.ApplyBatch(churn.NextInsertOnly(64)); err != nil {
			b.Fatal(err)
		}
		chain.saveDelta(b, dc)
	}
	target, err := core.NewDynamicConnectivity(core.Config{N: 1 << 16, Phi: 0.6, SketchCopies: 2, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := snapshot.LoadBase(bytes.NewReader(chain.base.Bytes()), target); err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, d := range chain.deltas {
		total += int64(d.Len())
	}
	b.ReportAllocs()
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := chain.baseID
		for j, d := range chain.deltas {
			want := snapshot.ChainLink{Base: chain.baseID, Prev: prev, Seq: uint64(j + 1)}
			next, err := snapshot.LoadDelta(bytes.NewReader(d.Bytes()), want, target)
			if err != nil {
				b.Fatal(err)
			}
			prev = next
		}
	}
}
