package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/mpc"
)

// Magic identifies a snapshot file: "MPCSNAP1" read as a big-endian word.
const Magic uint64 = 0x4d5043534e415031

// Version is the current snapshot format version. See the package comment
// for the version policy.
const Version uint64 = 1

// headerWords is the container overhead: magic, version, payload length,
// and the trailing CRC word.
const headerWords = 4

// castagnoli is the CRC-32C table shared by Encoder and Decoder.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpointer is implemented by any state that can serialize itself into
// an encoder. Checkpoint must not mutate observable state: checkpointing a
// live run and continuing it must behave exactly like never checkpointing.
type Checkpointer interface {
	Checkpoint(e *Encoder)
}

// Restorer is the inverse: it reads the sections its Checkpoint wrote and
// overwrites the instance's state. The instance must have been constructed
// with the same configuration that produced the snapshot; Restore validates
// this and returns a descriptive error on mismatch.
type Restorer interface {
	Restore(d *Decoder) error
}

// Save checkpoints the given states, in order, into one snapshot written to
// w.
func Save(w io.Writer, states ...Checkpointer) error {
	e := NewEncoder()
	for _, s := range states {
		s.Checkpoint(e)
	}
	_, err := e.WriteTo(w)
	return err
}

// Load reads one snapshot from r and restores the given states in order
// (which must match the Save order). It verifies the container (magic,
// version, CRC) before any state is touched and that every section was
// consumed afterwards.
func Load(r io.Reader, states ...Restorer) error {
	d, err := NewDecoder(r)
	if err != nil {
		return err
	}
	for _, s := range states {
		if err := s.Restore(d); err != nil {
			return err
		}
	}
	return d.Finish()
}

// Encoder builds a snapshot payload section by section. All appends are
// infallible; errors surface only at WriteTo.
type Encoder struct {
	batch *mpc.MessageBatch
	cur   []uint64
	open  bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{batch: mpc.NewMessageBatch(256)}
}

// Begin closes the current section (if any) and opens a new one under the
// given tag. Every value appended afterwards belongs to this section until
// the next Begin or WriteTo.
func (e *Encoder) Begin(tag uint64) {
	e.flush()
	e.cur = append(e.cur[:0], tag)
	e.open = true
}

func (e *Encoder) flush() {
	if e.open {
		e.batch.Append(e.cur...)
		e.open = false
	}
}

// U64 appends one word to the current section.
func (e *Encoder) U64(x uint64) {
	if !e.open {
		panic("snapshot: append outside a section (call Begin first)")
	}
	e.cur = append(e.cur, x)
}

// Int appends a signed integer (two's-complement widened).
func (e *Encoder) Int(x int) { e.U64(uint64(int64(x))) }

// I64 appends a signed 64-bit integer.
func (e *Encoder) I64(x int64) { e.U64(uint64(x)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(x float64) { e.U64(math.Float64bits(x)) }

// Bool appends a boolean as one word.
func (e *Encoder) Bool(b bool) {
	if b {
		e.U64(1)
	} else {
		e.U64(0)
	}
}

// U64s appends a length-prefixed word slice.
func (e *Encoder) U64s(xs []uint64) {
	e.Int(len(xs))
	if !e.open {
		return
	}
	e.cur = append(e.cur, xs...)
}

// Ints appends a length-prefixed signed slice.
func (e *Encoder) Ints(xs []int) {
	e.Int(len(xs))
	for _, x := range xs {
		e.Int(x)
	}
}

// String appends a length-prefixed UTF-8 string packed into words.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	var w uint64
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * (i % 8))
		if i%8 == 7 || i == len(s)-1 {
			e.U64(w)
			w = 0
		}
	}
}

// WriteTo serializes the snapshot container — header, payload frames,
// CRC — to w and returns the bytes written.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	n, _, err := e.writeTo(w, Magic)
	return n, err
}

// writeTo serializes the container under the given magic word and returns
// the bytes written plus the container's identity: the trailing CRC word,
// which is a deterministic function of the full container bytes and is what
// delta chains use to name their base and predecessor (see delta.go).
func (e *Encoder) writeTo(w io.Writer, magic uint64) (int64, uint64, error) {
	e.flush()
	payload := e.batch.Raw()
	buf := make([]byte, 8*(headerWords+len(payload)))
	binary.LittleEndian.PutUint64(buf[0:], magic)
	binary.LittleEndian.PutUint64(buf[8:], Version)
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(payload)))
	for i, x := range payload {
		binary.LittleEndian.PutUint64(buf[24+8*i:], x)
	}
	crc := crc32.Checksum(buf[:len(buf)-8], castagnoli)
	binary.LittleEndian.PutUint64(buf[len(buf)-8:], uint64(crc))
	n, err := w.Write(buf)
	return int64(n), uint64(crc), err
}

// WriteContainer serializes the encoder's sections as a container branded
// with the given magic word, under the same discipline as WriteTo (version
// word, declared payload length, trailing CRC-32C), and returns the bytes
// written plus the container identity (the CRC word). Other packages reuse
// the snapshot container format for their own files — the segmented trace
// format of internal/trace brands its segments and footer this way — so
// every on-disk word stream in the repository shares one header/checksum
// discipline and one corruption-rejection path.
func (e *Encoder) WriteContainer(w io.Writer, magic uint64) (int64, uint64, error) {
	return e.writeTo(w, magic)
}

// NewContainerDecoder is NewDecoder parameterized over the expected magic
// word: it verifies magic, version, declared length, CRC, and frame
// structure before handing out a section, returning the container identity
// alongside. kind names the expected flavor in diagnostics.
func NewContainerDecoder(r io.Reader, magic uint64, kind string) (*Decoder, uint64, error) {
	return newDecoder(r, magic, kind)
}

// Decoder reads a verified snapshot payload section by section. Accessors
// are sticky: the first structural error (tag mismatch, section underflow)
// latches, later reads return zero values, and Err/Finish report it.
type Decoder struct {
	frames [][]uint64
	next   int
	tag    uint64
	cur    []uint64
	off    int
	err    error
}

// NewDecoder reads the full snapshot from r and verifies the container:
// magic, format version, declared payload length, CRC, and frame structure.
// Any violation is returned as a diagnostic error before a single section
// is handed out.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d, _, err := newDecoder(r, Magic, "snapshot")
	return d, err
}

// newDecoder is NewDecoder parameterized over the expected magic word; it
// also returns the container identity (the verified trailing CRC word), the
// same value writeTo reported when the container was produced.
func newDecoder(r io.Reader, magic uint64, kind string) (*Decoder, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	if len(data)%8 != 0 {
		return nil, 0, fmt.Errorf("snapshot: truncated file: %d bytes is not a whole number of words", len(data))
	}
	words := make([]uint64, len(data)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if len(words) < headerWords {
		return nil, 0, fmt.Errorf("snapshot: truncated header: %d words, want at least %d", len(words), headerWords)
	}
	if words[0] != magic {
		// A well-formed container of the other flavor gets a pointed
		// diagnostic: mixing up base and delta files is an operator error
		// distinct from corruption.
		switch words[0] {
		case Magic:
			return nil, 0, fmt.Errorf("snapshot: full snapshot container where a %s was expected", kind)
		case DeltaMagic:
			return nil, 0, fmt.Errorf("snapshot: delta container where a %s was expected", kind)
		}
		return nil, 0, fmt.Errorf("snapshot: bad magic word %#x: not a %s file", words[0], kind)
	}
	if words[1] != Version {
		return nil, 0, fmt.Errorf("snapshot: format version %d, want %d: regenerate the checkpoint", words[1], Version)
	}
	if words[2] != uint64(len(words)-headerWords) {
		return nil, 0, fmt.Errorf("snapshot: truncated payload: header declares %d words, file carries %d",
			words[2], len(words)-headerWords)
	}
	crc := crc32.Checksum(data[:len(data)-8], castagnoli)
	if uint64(crc) != words[len(words)-1] {
		return nil, 0, fmt.Errorf("snapshot: checksum mismatch (stored %#x, computed %#x): snapshot corrupted",
			words[len(words)-1], crc)
	}
	b, err := mpc.MessageBatchFromRaw(words[3 : len(words)-1])
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: corrupt section framing: %w", err)
	}
	d := &Decoder{}
	for f := range b.Frames {
		if len(f) == 0 {
			return nil, 0, fmt.Errorf("snapshot: section %d has no tag word", len(d.frames))
		}
		d.frames = append(d.frames, f)
	}
	return d, uint64(crc), nil
}

// fail latches the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// Err returns the first structural error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Next advances to the next section and returns its tag; ok is false when
// no sections remain (or an error has latched). The previous section must
// have been fully consumed.
func (d *Decoder) Next() (tag uint64, ok bool) {
	if d.err != nil {
		return 0, false
	}
	if d.cur != nil && d.off != len(d.cur) {
		d.fail("section %#x has %d unread words (layout skew)", d.tag, len(d.cur)-d.off)
		return 0, false
	}
	if d.next >= len(d.frames) {
		return 0, false
	}
	f := d.frames[d.next]
	d.next++
	d.tag = f[0]
	d.cur = f[1:]
	d.off = 0
	return d.tag, true
}

// Begin advances to the next section and checks its tag.
func (d *Decoder) Begin(tag uint64) {
	got, ok := d.Next()
	if !ok {
		d.fail("missing section %#x", tag)
		return
	}
	if got != tag {
		d.fail("found section %#x where %#x was expected (layout skew)", got, tag)
	}
}

// U64 reads one word of the current section.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.cur) {
		d.fail("section %#x truncated at word %d", d.tag, d.off)
		return 0
	}
	x := d.cur[d.off]
	d.off++
	return x
}

// Int reads a signed integer.
func (d *Decoder) Int() int { return int(int64(d.U64())) }

// I64 reads a signed 64-bit integer.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean and rejects non-canonical encodings.
func (d *Decoder) Bool() bool {
	switch d.U64() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("section %#x: non-boolean word at %d", d.tag, d.off-1)
		return false
	}
}

// Count reads a count prefix for a sequence whose items each occupy at
// least minWordsPerItem words, and bounds it against the words remaining in
// the current section before the caller sizes any allocation from it. A
// corrupted prefix (negative, or claiming more items than the section could
// possibly hold) latches a diagnostic and returns 0, so restore loops that
// pre-size maps/slices with make(..., n) never hand an absurd capacity to
// the allocator.
func (d *Decoder) Count(minWordsPerItem int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if minWordsPerItem < 1 {
		minWordsPerItem = 1
	}
	if rem := len(d.cur) - d.off; n < 0 || n > rem/minWordsPerItem {
		d.fail("section %#x: count of %d items (>= %d words each) overruns section (%d words left)",
			d.tag, n, minWordsPerItem, rem)
		return 0
	}
	return n
}

// U64s reads a length-prefixed word slice. The returned slice aliases the
// decoder's buffer and is valid for the decoder's lifetime; copy it into
// long-lived state.
func (d *Decoder) U64s() []uint64 {
	n := d.Int()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.cur)-d.off {
		d.fail("section %#x: slice of %d words overruns section (%d left)", d.tag, n, len(d.cur)-d.off)
		return nil
	}
	xs := d.cur[d.off : d.off+n : d.off+n]
	d.off += n
	return xs
}

// Ints reads a length-prefixed signed slice (freshly allocated).
func (d *Decoder) Ints() []int {
	ws := d.U64s()
	if ws == nil {
		return nil
	}
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = int(int64(w))
	}
	return out
}

// String reads a length-prefixed packed string.
func (d *Decoder) String() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	// Compare against 8*remaining rather than (n+7)/8 against remaining:
	// the latter overflows for absurd claimed lengths and would panic in
	// make instead of latching a diagnostic. remaining is bounded by the
	// file size, so the multiplication cannot overflow.
	if n < 0 || n > 8*(len(d.cur)-d.off) {
		d.fail("section %#x: string of %d bytes overruns section", d.tag, n)
		return ""
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			d.off++
		}
		out[i] = byte(d.cur[d.off-1] >> (8 * (i % 8)))
	}
	return string(out)
}

// Finish verifies that the whole snapshot was consumed: no latched error,
// no unread words in the last section, no trailing sections.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.cur != nil && d.off != len(d.cur) {
		return fmt.Errorf("snapshot: section %#x has %d unread words (layout skew)", d.tag, len(d.cur)-d.off)
	}
	if d.next != len(d.frames) {
		return fmt.Errorf("snapshot: %d trailing sections (layout skew)", len(d.frames)-d.next)
	}
	return nil
}

// EncodeClusterStats appends the cluster execution metrics to the current
// section; pair with DecodeClusterStats. Restoring these alongside the
// machine stores is what makes a resumed run's Stats bit-identical to an
// uninterrupted one.
func EncodeClusterStats(e *Encoder, st mpc.Stats) {
	e.Int(st.Rounds)
	e.I64(st.Messages)
	e.I64(st.WordsSent)
	e.Int(st.MaxRecvWords)
	e.Int(st.MaxSendWords)
	e.Int(st.PeakMachineWords)
	e.Int(st.PeakTotalWords)
	e.Int(len(st.Violations))
	for _, v := range st.Violations {
		e.String(v)
	}
}

// DecodeClusterStats reads the metrics written by EncodeClusterStats.
func DecodeClusterStats(d *Decoder) mpc.Stats {
	st := mpc.Stats{
		Rounds:           d.Int(),
		Messages:         d.I64(),
		WordsSent:        d.I64(),
		MaxRecvWords:     d.Int(),
		MaxSendWords:     d.Int(),
		PeakMachineWords: d.Int(),
		PeakTotalWords:   d.Int(),
	}
	n := d.Count(1)
	for i := 0; i < n && d.Err() == nil; i++ {
		st.Violations = append(st.Violations, d.String())
	}
	return st
}
