package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// counterState is a DeltaState double: an integer with a journal of the
// increments applied since the last acknowledged checkpoint, so a delta
// carries exactly the unacked churn.
type counterState struct {
	tag     uint64
	value   int
	journal int
}

func (c *counterState) bump(n int) { c.value += n; c.journal += n }

func (c *counterState) Checkpoint(e *Encoder) {
	e.Begin(c.tag)
	e.Int(c.value)
}

func (c *counterState) Restore(d *Decoder) error {
	d.Begin(c.tag)
	c.value = d.Int()
	c.journal = 0
	return d.Err()
}

func (c *counterState) CheckpointDelta(e *Encoder) {
	e.Begin(c.tag)
	e.Int(c.journal)
}

func (c *counterState) RestoreDelta(d *Decoder) error {
	d.Begin(c.tag)
	c.value += d.Int()
	c.journal = 0
	return d.Err()
}

func (c *counterState) AckCheckpoint() { c.journal = 0 }

// atStage arms the crash failpoint to panic (simulating the process dying)
// at the named atomic-write stage, and returns a disarm func.
func atStage(stage string) func() {
	crashPoint = func(s string) {
		if s == stage {
			panic("crash injected at " + s)
		}
	}
	return func() { crashPoint = nil }
}

// mustPanic runs f and asserts the armed failpoint fired.
func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("armed crash failpoint did not fire")
		}
	}()
	f()
}

// TestWriteFileAtomicCrashPoints is the crash-atomicity property: a process
// dying at any stage of the atomic write leaves either the old snapshot
// complete or the new one complete — LoadFile succeeds either way and never
// sees a torn file. A death before the rename orphans the temp file, which
// SweepStaleTemps then removes.
func TestWriteFileAtomicCrashPoints(t *testing.T) {
	for _, tc := range []struct {
		stage     string
		wantValue int  // which complete snapshot survives
		wantTemp  bool // is a temp orphan left behind?
	}{
		{"temp-written", 111, true}, // old file intact, new bytes stranded in the temp
		{"renamed", 222, false},     // rename happened: new file is it, temp consumed
	} {
		t.Run(tc.stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.snap")
			if err := WriteFileAtomic(path, &fakeState{tag: 3, value: 111}); err != nil {
				t.Fatal(err)
			}
			disarm := atStage(tc.stage)
			mustPanic(t, func() {
				_ = WriteFileAtomic(path, &fakeState{tag: 3, value: 222})
			})
			disarm()

			got := &fakeState{tag: 3}
			if err := LoadFile(path, got); err != nil {
				t.Fatalf("snapshot torn after crash at %s: %v", tc.stage, err)
			}
			if got.value != tc.wantValue {
				t.Errorf("crash at %s: loaded %d, want %d", tc.stage, got.value, tc.wantValue)
			}
			swept, err := SweepStaleTemps(path)
			if err != nil {
				t.Fatal(err)
			}
			if (len(swept) > 0) != tc.wantTemp {
				t.Errorf("crash at %s: swept %v, want orphan=%v", tc.stage, swept, tc.wantTemp)
			}
			// The swept directory is clean and writable again.
			if err := WriteFileAtomic(path, &fakeState{tag: 3, value: 333}); err != nil {
				t.Fatal(err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Errorf("directory holds %d entries after sweep+rewrite, want 1", len(entries))
			}
		})
	}
}

// TestSweepStaleTempsScope pins what the sweep may and may not remove: temp
// files of the snapshot and of its delta files go, the live snapshot, its
// deltas, and unrelated files stay.
func TestSweepStaleTempsScope(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	keep := []string{"state.snap", "state.snap.delta-001", "other.snap", "other.snap.tmp1"}
	remove := []string{"state.snap.tmp123", "state.snap.delta-002.tmp9"}
	for _, name := range append(append([]string{}, keep...), remove...) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	swept, err := SweepStaleTemps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(remove) {
		t.Errorf("swept %v, want exactly %v", swept, remove)
	}
	for _, name := range keep {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("sweep removed %s, which it must not touch", name)
		}
	}
	for _, name := range remove {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("sweep left %s behind", name)
		}
	}
	// Missing directory: nothing to sweep, not an error.
	if swept, err := SweepStaleTemps(filepath.Join(dir, "missing", "x.snap")); err != nil || swept != nil {
		t.Errorf("sweep of missing dir = (%v, %v), want (nil, nil)", swept, err)
	}
}

// TestChainCheckpointRestore walks a chain through full base, deltas,
// compaction, and a fresh-process restore at every step: the restored value
// must always equal the live one.
func TestChainCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	live := &counterState{tag: 3}
	chain := OpenChain(path, 2)

	checkRestore := func(step string, wantLen int) {
		t.Helper()
		got := &counterState{tag: 3}
		rc := OpenChain(path, 2)
		ok, err := rc.Restore(got)
		if err != nil || !ok {
			t.Fatalf("%s: restore = (%v, %v)", step, ok, err)
		}
		if got.value != live.value {
			t.Errorf("%s: restored %d, live %d", step, got.value, live.value)
		}
		if rc.Len() != wantLen {
			t.Errorf("%s: chain length %d, want %d", step, rc.Len(), wantLen)
		}
	}

	live.bump(10)
	if kind, _, err := chain.Checkpoint(live); err != nil || kind != KindFull {
		t.Fatalf("first checkpoint = (%s, %v), want full", kind, err)
	}
	checkRestore("after base", 0)

	live.bump(5)
	if kind, _, err := chain.Checkpoint(live); err != nil || kind != KindDelta {
		t.Fatalf("second checkpoint = (%s, %v), want delta", kind, err)
	}
	checkRestore("after delta 1", 1)

	live.bump(7)
	if kind, _, err := chain.Checkpoint(live); err != nil || kind != KindDelta {
		t.Fatalf("third checkpoint = (%s, %v), want delta", kind, err)
	}
	checkRestore("after delta 2", 2)

	// Chain is at maxDeltas: the next checkpoint compacts into a fresh base
	// and removes the stale delta files.
	live.bump(1)
	if kind, _, err := chain.Checkpoint(live); err != nil || kind != KindFull {
		t.Fatalf("compaction checkpoint = (%s, %v), want full", kind, err)
	}
	checkRestore("after compaction", 0)
	for _, stale := range []string{path + ".delta-001", path + ".delta-002"} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("compaction left %s behind", stale)
		}
	}

	// An unacked journal folds into the next delta: a failed ack never loses
	// churn (simulated here by bumping twice between checkpoints).
	live.bump(2)
	live.bump(3)
	if kind, _, err := chain.Checkpoint(live); err != nil || kind != KindDelta {
		t.Fatalf("post-compaction checkpoint = (%s, %v), want delta", kind, err)
	}
	checkRestore("after post-compaction delta", 1)
}

// TestChainCrashMidCompaction injects a death between compaction's base
// rewrite and its delta cleanup: the leftover delta files name the old base
// identity, and the next restore must sweep them as orphans rather than
// replay them onto the new base.
func TestChainCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	live := &counterState{tag: 3}
	chain := OpenChain(path, 2)
	live.bump(10)
	if _, _, err := chain.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	live.bump(5)
	if _, _, err := chain.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	live.bump(7)
	if _, _, err := chain.Checkpoint(live); err != nil {
		t.Fatal(err)
	}

	// A new process compacts but dies right after the base rename, before
	// removing the now-stale deltas.
	proc2 := OpenChain(path, 2)
	st2 := &counterState{tag: 3}
	if ok, err := proc2.Restore(st2); err != nil || !ok {
		t.Fatalf("proc2 restore = (%v, %v)", ok, err)
	}
	st2.bump(100)
	disarm := atStage("renamed")
	mustPanic(t, func() {
		proc2.Checkpoint(st2) // compaction due: seq == maxDeltas
	})
	disarm()
	for _, stale := range []string{path + ".delta-001", path + ".delta-002"} {
		if _, err := os.Stat(stale); err != nil {
			t.Fatalf("expected stale delta %s to survive the crash: %v", stale, err)
		}
	}

	// Restore in a third process: new base, orphaned deltas swept.
	proc3 := OpenChain(path, 2)
	st3 := &counterState{tag: 3}
	ok, err := proc3.Restore(st3)
	if err != nil || !ok {
		t.Fatalf("proc3 restore = (%v, %v)", ok, err)
	}
	if st3.value != st2.value {
		t.Errorf("restored %d, want the compacted base's %d", st3.value, st2.value)
	}
	if proc3.OrphansRemoved() != 2 {
		t.Errorf("swept %d orphans, want 2", proc3.OrphansRemoved())
	}
	for _, stale := range []string{path + ".delta-001", path + ".delta-002"} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("orphan %s not swept", stale)
		}
	}
	// The chain extends cleanly from here.
	st3.bump(1)
	if kind, _, err := proc3.Checkpoint(st3); err != nil || kind != KindDelta {
		t.Fatalf("post-sweep checkpoint = (%s, %v), want delta", kind, err)
	}
}

// TestChainCrashMidDeltaWrite injects a death before a delta's rename: the
// chain on disk is untouched (old-complete), the stranded temp is swept on
// the next start, and the restarted process — which cannot know whether its
// last delta landed — writes a full base next, not a delta.
func TestChainCrashMidDeltaWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	live := &counterState{tag: 3}
	chain := OpenChain(path, 2)
	live.bump(10)
	if _, _, err := chain.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	live.bump(5)
	disarm := atStage("temp-written")
	mustPanic(t, func() {
		chain.Checkpoint(live)
	})
	disarm()
	if _, err := os.Stat(path + ".delta-001"); !os.IsNotExist(err) {
		t.Fatal("delta file exists even though the crash hit before rename")
	}

	// Restart: sweep finds the stranded delta temp, restore sees just the
	// base (old-complete state), and the journal still holds the unacked
	// churn so nothing is lost.
	swept, err := SweepStaleTemps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 || !strings.Contains(swept[0], ".delta-001.tmp") {
		t.Errorf("swept %v, want the stranded delta temp", swept)
	}
	proc2 := OpenChain(path, 2)
	st2 := &counterState{tag: 3}
	if ok, err := proc2.Restore(st2); err != nil || !ok {
		t.Fatalf("restore = (%v, %v)", ok, err)
	}
	if st2.value != 10 {
		t.Errorf("restored %d, want the base's 10 (the torn delta must not apply)", st2.value)
	}
}
