package snapshot

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/mpc"
)

// roundTrip encodes a representative mix of values and returns the bytes.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Begin(7)
	e.U64(42)
	e.Int(-17)
	e.I64(-1 << 40)
	e.F64(0.625)
	e.Bool(true)
	e.Bool(false)
	e.U64s([]uint64{1, 2, 3})
	e.Ints([]int{-1, 0, 1})
	e.String("hello, snapshot")
	e.Begin(9)
	e.String("") // empty string edge case
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(7)
	if got := d.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.Int(); got != -17 {
		t.Errorf("Int = %d", got)
	}
	if got := d.I64(); got != -1<<40 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 0.625 {
		t.Errorf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip broken")
	}
	if got := d.U64s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("U64s = %v", got)
	}
	if got := d.Ints(); len(got) != 3 || got[0] != -1 {
		t.Errorf("Ints = %v", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	d.Begin(9)
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	data := encodeSample(t)
	data[0] ^= 0xff
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestDecoderRejectsVersionSkew(t *testing.T) {
	data := encodeSample(t)
	binary.LittleEndian.PutUint64(data[8:], Version+1)
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew accepted: %v", err)
	}
}

func TestDecoderRejectsTruncation(t *testing.T) {
	data := encodeSample(t)
	for _, cut := range []int{len(data) - 8, len(data) - 3, 24, 8, 0} {
		if _, err := NewDecoder(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestDecoderRejectsBitFlips(t *testing.T) {
	data := encodeSample(t)
	// Flip one bit in every byte position in turn: the CRC (or, for header
	// bytes, the structural checks) must reject every single one.
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 1 << uint(i%8)
		if _, err := NewDecoder(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestDecoderSectionSkew(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(8) // wrong tag
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "section") {
		t.Fatalf("tag mismatch not detected: %v", d.Err())
	}
}

func TestDecoderUnderflowSticky(t *testing.T) {
	e := NewEncoder()
	e.Begin(1)
	e.U64(5)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(1)
	_ = d.U64()
	_ = d.U64() // underflow
	if d.Err() == nil {
		t.Fatal("underflow not detected")
	}
	if got := d.U64(); got != 0 {
		t.Errorf("read after latched error = %d, want 0", got)
	}
	if err := d.Finish(); err == nil {
		t.Error("Finish ignored the latched error")
	}
}

// TestStringHugeLengthRejected pins the overflow-safe bounds check: a
// section whose string length word claims a near-MaxInt64 byte count must
// latch a diagnostic error, not panic inside make.
func TestStringHugeLengthRejected(t *testing.T) {
	e := NewEncoder()
	e.Begin(1)
	e.U64(uint64(1<<63 - 3)) // read back as the String length prefix
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(1)
	if got := d.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "overruns") {
		t.Fatalf("huge string length not rejected: %v", d.Err())
	}
}

func TestFinishRejectsUnreadSections(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing sections not detected: %v", err)
	}
}

func TestClusterStatsRoundTrip(t *testing.T) {
	want := mpc.Stats{
		Rounds:           12,
		Messages:         345,
		WordsSent:        6789,
		MaxRecvWords:     10,
		MaxSendWords:     11,
		PeakMachineWords: 12,
		PeakTotalWords:   13,
		Violations:       []string{"machine 3 sent 99 words in one round (cap 10)"},
	}
	e := NewEncoder()
	e.Begin(2)
	EncodeClusterStats(e, want)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(2)
	got := DecodeClusterStats(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages ||
		got.WordsSent != want.WordsSent || got.PeakTotalWords != want.PeakTotalWords ||
		len(got.Violations) != 1 || got.Violations[0] != want.Violations[0] {
		t.Errorf("stats round trip: got %+v, want %+v", got, want)
	}
}

func TestSaveLoadComposition(t *testing.T) {
	var buf bytes.Buffer
	a := &fakeState{tag: 3, value: 111}
	b := &fakeState{tag: 4, value: 222}
	if err := Save(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	ra := &fakeState{tag: 3}
	rb := &fakeState{tag: 4}
	if err := Load(&buf, ra, rb); err != nil {
		t.Fatal(err)
	}
	if ra.value != 111 || rb.value != 222 {
		t.Errorf("composed load got (%d, %d)", ra.value, rb.value)
	}
}

type fakeState struct {
	tag   uint64
	value int
}

func (f *fakeState) Checkpoint(e *Encoder) {
	e.Begin(f.tag)
	e.Int(f.value)
}

func (f *fakeState) Restore(d *Decoder) error {
	d.Begin(f.tag)
	f.value = d.Int()
	return d.Err()
}
