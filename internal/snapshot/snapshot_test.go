package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// roundTrip encodes a representative mix of values and returns the bytes.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Begin(7)
	e.U64(42)
	e.Int(-17)
	e.I64(-1 << 40)
	e.F64(0.625)
	e.Bool(true)
	e.Bool(false)
	e.U64s([]uint64{1, 2, 3})
	e.Ints([]int{-1, 0, 1})
	e.String("hello, snapshot")
	e.Begin(9)
	e.String("") // empty string edge case
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(7)
	if got := d.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.Int(); got != -17 {
		t.Errorf("Int = %d", got)
	}
	if got := d.I64(); got != -1<<40 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 0.625 {
		t.Errorf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip broken")
	}
	if got := d.U64s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("U64s = %v", got)
	}
	if got := d.Ints(); len(got) != 3 || got[0] != -1 {
		t.Errorf("Ints = %v", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	d.Begin(9)
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	data := encodeSample(t)
	data[0] ^= 0xff
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestDecoderRejectsVersionSkew(t *testing.T) {
	data := encodeSample(t)
	binary.LittleEndian.PutUint64(data[8:], Version+1)
	if _, err := NewDecoder(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew accepted: %v", err)
	}
}

func TestDecoderRejectsTruncation(t *testing.T) {
	data := encodeSample(t)
	for _, cut := range []int{len(data) - 8, len(data) - 3, 24, 8, 0} {
		if _, err := NewDecoder(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestDecoderRejectsBitFlips(t *testing.T) {
	data := encodeSample(t)
	// Flip one bit in every byte position in turn: the CRC (or, for header
	// bytes, the structural checks) must reject every single one.
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 1 << uint(i%8)
		if _, err := NewDecoder(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestDecoderSectionSkew(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(8) // wrong tag
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "section") {
		t.Fatalf("tag mismatch not detected: %v", d.Err())
	}
}

func TestDecoderUnderflowSticky(t *testing.T) {
	e := NewEncoder()
	e.Begin(1)
	e.U64(5)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(1)
	_ = d.U64()
	_ = d.U64() // underflow
	if d.Err() == nil {
		t.Fatal("underflow not detected")
	}
	if got := d.U64(); got != 0 {
		t.Errorf("read after latched error = %d, want 0", got)
	}
	if err := d.Finish(); err == nil {
		t.Error("Finish ignored the latched error")
	}
}

// TestStringHugeLengthRejected pins the overflow-safe bounds check: a
// section whose string length word claims a near-MaxInt64 byte count must
// latch a diagnostic error, not panic inside make.
func TestStringHugeLengthRejected(t *testing.T) {
	e := NewEncoder()
	e.Begin(1)
	e.U64(uint64(1<<63 - 3)) // read back as the String length prefix
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(1)
	if got := d.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "overruns") {
		t.Fatalf("huge string length not rejected: %v", d.Err())
	}
}

func TestFinishRejectsUnreadSections(t *testing.T) {
	data := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing sections not detected: %v", err)
	}
}

func TestClusterStatsRoundTrip(t *testing.T) {
	want := mpc.Stats{
		Rounds:           12,
		Messages:         345,
		WordsSent:        6789,
		MaxRecvWords:     10,
		MaxSendWords:     11,
		PeakMachineWords: 12,
		PeakTotalWords:   13,
		Violations:       []string{"machine 3 sent 99 words in one round (cap 10)"},
	}
	e := NewEncoder()
	e.Begin(2)
	EncodeClusterStats(e, want)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(2)
	got := DecodeClusterStats(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages ||
		got.WordsSent != want.WordsSent || got.PeakTotalWords != want.PeakTotalWords ||
		len(got.Violations) != 1 || got.Violations[0] != want.Violations[0] {
		t.Errorf("stats round trip: got %+v, want %+v", got, want)
	}
}

func TestSaveLoadComposition(t *testing.T) {
	var buf bytes.Buffer
	a := &fakeState{tag: 3, value: 111}
	b := &fakeState{tag: 4, value: 222}
	if err := Save(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	ra := &fakeState{tag: 3}
	rb := &fakeState{tag: 4}
	if err := Load(&buf, ra, rb); err != nil {
		t.Fatal(err)
	}
	if ra.value != 111 || rb.value != 222 {
		t.Errorf("composed load got (%d, %d)", ra.value, rb.value)
	}
}

// TestCountBounds pins the bounded count prefix: counts the remaining
// section can hold pass through, absurd or negative counts latch a
// diagnostic and return 0 so no allocation is ever sized from them.
func TestCountBounds(t *testing.T) {
	cases := []struct {
		name  string
		count uint64
		items int // words appended after the prefix
		per   int
		want  int
		ok    bool
	}{
		{"exact", 3, 6, 2, 3, true},
		{"loose", 2, 6, 2, 2, true},
		{"zero", 0, 0, 4, 0, true},
		{"one-over", 4, 6, 2, 0, false},
		{"huge", 1 << 40, 2, 2, 0, false},
		{"negative", ^uint64(0), 2, 2, 0, false},
		{"near-maxint", 1<<63 - 1, 2, 1, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEncoder()
			e.Begin(1)
			e.U64(tc.count)
			for i := 0; i < tc.items; i++ {
				e.U64(uint64(i))
			}
			var buf bytes.Buffer
			if _, err := e.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			d, err := NewDecoder(&buf)
			if err != nil {
				t.Fatal(err)
			}
			d.Begin(1)
			got := d.Count(tc.per)
			if got != tc.want {
				t.Errorf("Count(%d) = %d, want %d", tc.per, got, tc.want)
			}
			if tc.ok && d.Err() != nil {
				t.Errorf("in-bounds count rejected: %v", d.Err())
			}
			if !tc.ok && (d.Err() == nil || !strings.Contains(d.Err().Error(), "overruns")) {
				t.Errorf("out-of-bounds count not rejected: %v", d.Err())
			}
		})
	}
}

// TestWriteFileAtomic checks the crash-safe write path end to end: the
// snapshot lands complete and loadable, overwrites are atomic replacements
// of the previous file, and no temporary files are left behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.snap"
	for round, value := range []int{111, 222} {
		if err := WriteFileAtomic(path, &fakeState{tag: 3, value: value}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := &fakeState{tag: 3}
		if err := LoadFile(path, got); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.value != value {
			t.Errorf("round %d: loaded %d, want %d", round, got.value, value)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.snap" {
		t.Errorf("directory holds %v, want just state.snap (no stray temp files)", entries)
	}
	// A write into a nonexistent directory must fail up front and must not
	// create anything.
	if err := WriteFileAtomic(dir+"/missing/state.snap", &fakeState{tag: 3}); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

// TestGraphRoundTrip pins EncodeGraph/DecodeGraphInto: canonical bytes
// regardless of insertion order, and exact edge/weight recovery.
func TestGraphRoundTrip(t *testing.T) {
	a, b := graph.New(8), graph.New(8)
	edges := [][3]int64{{0, 1, 5}, {2, 3, -7}, {1, 4, 9}, {0, 7, 1}}
	for _, e := range edges {
		if err := a.Insert(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(edges) - 1; i >= 0; i-- {
		e := edges[i]
		if err := b.Insert(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	enc := func(g *graph.Graph) []byte {
		e := NewEncoder()
		e.Begin(6)
		EncodeGraph(e, g)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	da, db := enc(a), enc(b)
	if !bytes.Equal(da, db) {
		t.Error("same graph, different insertion order: bytes differ")
	}
	d, err := NewDecoder(bytes.NewReader(da))
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(6)
	got := graph.New(8)
	if err := DecodeGraphInto(d, got); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.M() != a.M() {
		t.Fatalf("decoded %d edges, want %d", got.M(), a.M())
	}
	for _, e := range edges {
		w, ok := got.Weight(int(e[0]), int(e[1]))
		if !ok || w != e[2] {
			t.Errorf("edge {%d,%d}: weight %d/%v, want %d", e[0], e[1], w, ok, e[2])
		}
	}
}

type fakeState struct {
	tag   uint64
	value int
}

func (f *fakeState) Checkpoint(e *Encoder) {
	e.Begin(f.tag)
	e.Int(f.value)
}

func (f *fakeState) Restore(d *Decoder) error {
	d.Begin(f.tag)
	f.value = d.Int()
	return d.Err()
}
