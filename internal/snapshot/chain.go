package snapshot

import (
	"fmt"
	"io"
	"os"
)

// Chain manages a checkpoint chain on disk: one full base snapshot at path
// plus a bounded run of delta files path.delta-001, path.delta-002, …, each
// naming (via its ChainLink header) the exact base and predecessor it
// extends. Checkpoint decides full-vs-delta and handles compaction; Restore
// replays base + chain and tolerates the leftovers a crash mid-compaction
// can leave behind. A Chain is a single-writer object — the process that
// owns the snapshot directory.
type Chain struct {
	path      string
	maxDeltas int

	// linked reports whether this process materialized the on-disk tip —
	// either by restoring the chain or by writing its last container. Deltas
	// are written only while linked: any doubt (fresh chain, failed write)
	// forces the next checkpoint to be a full base.
	linked bool
	baseID uint64 // identity of the on-disk base snapshot
	tipID  uint64 // identity of the last container in the chain (base if seq==0)
	seq    int    // number of deltas currently in the chain

	// orphansRemoved counts stale delta files Restore deleted (leftovers of
	// a crash between base rewrite and delta cleanup during compaction).
	orphansRemoved int
}

// Checkpoint kinds reported by Chain.Checkpoint.
const (
	KindFull  = "full"
	KindDelta = "delta"
)

// OpenChain returns a chain manager rooted at path. maxDeltas bounds the
// chain length: once that many deltas extend the base, the next Checkpoint
// folds everything into a fresh full base (compaction). maxDeltas <= 0
// disables deltas entirely — every Checkpoint is full.
func OpenChain(path string, maxDeltas int) *Chain {
	return &Chain{path: path, maxDeltas: maxDeltas}
}

// Path returns the base snapshot path the chain is rooted at.
func (c *Chain) Path() string { return c.path }

// Rebase severs the chain's link to its on-disk history: the next
// Checkpoint writes a fresh full base and sweeps any stale delta files.
// Call it when the live state stops matching the history the chain
// describes — e.g. after an elastic resize migrates the state onto a new
// cluster shape — so no delta is ever appended to old-shape containers.
func (c *Chain) Rebase() { c.linked = false }

// Len returns the number of deltas currently extending the base.
func (c *Chain) Len() int { return c.seq }

// OrphansRemoved reports how many stale delta files the last Restore swept.
func (c *Chain) OrphansRemoved() int { return c.orphansRemoved }

func (c *Chain) deltaPath(seq int) string {
	return fmt.Sprintf("%s.delta-%03d", c.path, seq)
}

// Checkpoint writes the next checkpoint in the chain: a delta extending the
// current tip when one exists and the chain is still under maxDeltas, a
// fresh full base otherwise (first checkpoint, compaction due, or the
// previous write failed). The write is atomic either way; on success every
// state's AckCheckpoint runs, so dirty tracking resets only once the bytes
// are durable. Compaction is crash-safe by ordering: the new base replaces
// the old atomically first, and only then are the now-stale delta files
// removed — a crash in between leaves deltas whose Base identity no longer
// matches, which Restore detects and sweeps.
//
// It reports which kind was written ("full" or "delta") and the container
// size in bytes.
func (c *Chain) Checkpoint(states ...DeltaState) (kind string, bytes int64, err error) {
	if c.linked && c.maxDeltas > 0 && c.seq < c.maxDeltas {
		return c.checkpointDelta(states)
	}
	return c.checkpointFull(states)
}

func (c *Chain) checkpointFull(states []DeltaState) (string, int64, error) {
	staleDeltas := c.seq
	if !c.linked {
		// We did not materialize the on-disk chain; there may be delta files
		// from a previous incarnation beyond what we know about. Scan.
		staleDeltas = c.countDeltaFiles()
	}
	var n countingSaver
	id, err := writeFileAtomic(c.path, func(w io.Writer) (uint64, error) {
		n.reset(w)
		return SaveBase(&n, states2checkpointers(states)...)
	})
	if err != nil {
		c.linked = false
		return KindFull, 0, err
	}
	// The new base is durable; stale deltas reference the old base identity
	// and must go. Removal failures are not fatal to the checkpoint — the
	// leftovers carry a mismatching Base and Restore ignores them — but we
	// try here so the directory stays tidy.
	for s := 1; s <= staleDeltas; s++ {
		os.Remove(c.deltaPath(s))
	}
	c.linked = true
	c.baseID = id
	c.tipID = id
	c.seq = 0
	for _, s := range states {
		s.AckCheckpoint()
	}
	return KindFull, n.n, nil
}

func (c *Chain) checkpointDelta(states []DeltaState) (string, int64, error) {
	link := ChainLink{Base: c.baseID, Prev: c.tipID, Seq: uint64(c.seq + 1)}
	var n countingSaver
	id, err := writeFileAtomic(c.deltaPath(c.seq+1), func(w io.Writer) (uint64, error) {
		n.reset(w)
		return SaveDelta(&n, link, states2deltaCheckpointers(states)...)
	})
	if err != nil {
		c.linked = false
		return KindDelta, 0, err
	}
	c.seq++
	c.tipID = id
	for _, s := range states {
		s.AckCheckpoint()
	}
	return KindDelta, n.n, nil
}

// countDeltaFiles returns the highest contiguous delta sequence present on
// disk starting at 1.
func (c *Chain) countDeltaFiles() int {
	n := 0
	for {
		if _, err := os.Stat(c.deltaPath(n + 1)); err != nil {
			return n
		}
		n++
	}
}

// Restore loads the base snapshot and replays every delta that links to it,
// in sequence, leaving the chain ready to extend with further deltas. It
// returns (false, nil) when no base exists (fresh start). Chain-identity
// validation runs per delta before any of that delta's state is touched:
// a delta naming a different base is an orphan from a crash mid-compaction
// and is removed (counted in OrphansRemoved) along with everything after
// it; a corrupt or torn container is a hard error, because the chain it
// belongs to cannot be trusted.
func (c *Chain) Restore(states ...DeltaState) (bool, error) {
	c.linked = false
	c.orphansRemoved = 0
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	baseID, err := LoadBase(f, states2restorers(states)...)
	f.Close()
	if err != nil {
		return false, fmt.Errorf("restoring base %s: %w", c.path, err)
	}
	c.baseID = baseID
	c.tipID = baseID
	c.seq = 0
	for {
		next := c.deltaPath(c.seq + 1)
		df, err := os.Open(next)
		if os.IsNotExist(err) {
			break
		}
		if err != nil {
			return false, err
		}
		want := ChainLink{Base: c.baseID, Prev: c.tipID, Seq: uint64(c.seq + 1)}
		// Peek the header first: an orphaned delta (stale Base from a crash
		// between compaction's base rewrite and its delta cleanup) is swept,
		// not an error. Anything else wrong — corruption, truncation, a
		// sequence break — is.
		link, _, err := PeekDelta(df)
		if err != nil {
			df.Close()
			return false, fmt.Errorf("restoring delta %s: %w", next, err)
		}
		if link.Base != c.baseID {
			df.Close()
			c.removeOrphansFrom(c.seq + 1)
			break
		}
		if _, err := df.Seek(0, io.SeekStart); err != nil {
			df.Close()
			return false, err
		}
		id, err := LoadDelta(df, want, states2deltaRestorers(states)...)
		df.Close()
		if err != nil {
			return false, fmt.Errorf("restoring delta %s: %w", next, err)
		}
		c.seq++
		c.tipID = id
	}
	c.linked = true
	return true, nil
}

// removeOrphansFrom deletes delta files from sequence seq upward until a
// gap, counting the removals.
func (c *Chain) removeOrphansFrom(seq int) {
	for s := seq; ; s++ {
		if err := os.Remove(c.deltaPath(s)); err != nil {
			return
		}
		c.orphansRemoved++
	}
}

// countingSaver counts bytes written through it so Checkpoint can report
// container sizes without re-statting files.
type countingSaver struct {
	w io.Writer
	n int64
}

func (cs *countingSaver) reset(w io.Writer) { cs.w, cs.n = w, 0 }

func (cs *countingSaver) Write(p []byte) (int, error) {
	n, err := cs.w.Write(p)
	cs.n += int64(n)
	return n, err
}

func states2checkpointers(states []DeltaState) []Checkpointer {
	out := make([]Checkpointer, len(states))
	for i, s := range states {
		out[i] = s
	}
	return out
}

func states2deltaCheckpointers(states []DeltaState) []DeltaCheckpointer {
	out := make([]DeltaCheckpointer, len(states))
	for i, s := range states {
		out[i] = s
	}
	return out
}

func states2restorers(states []DeltaState) []Restorer {
	out := make([]Restorer, len(states))
	for i, s := range states {
		out[i] = s
	}
	return out
}

func states2deltaRestorers(states []DeltaState) []DeltaRestorer {
	out := make([]DeltaRestorer, len(states))
	for i, s := range states {
		out[i] = s
	}
	return out
}
