package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/graph"
)

// FuzzSnapshotDecode hammers the snapshot container decoder with arbitrary
// bytes: it must never panic, and any input that passes the container
// checks must decode cleanly section by section (every frame fully
// walkable). The checked-in corpus seeds a valid snapshot plus truncated,
// bit-flipped, and version-skewed variants of it.
func FuzzSnapshotDecode(f *testing.F) {
	// A small valid snapshot as the seed everything else mutates from.
	e := NewEncoder()
	e.Begin(1)
	e.Int(42)
	e.U64s([]uint64{7, 8, 9})
	e.String("seed")
	e.Begin(2)
	e.Bool(true)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // truncated mid-CRC
	f.Add(valid[:16])           // truncated header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	skewed := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(skewed[8:], Version+7)
	f.Add(skewed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Delta containers: the full-snapshot decoder must reject the delta
	// magic up front (with the flavor-aware diagnostic), and truncated or
	// chain-reordered variants must never panic it either.
	var dbuf bytes.Buffer
	if _, err := SaveDelta(&dbuf, ChainLink{Base: 1, Prev: 1, Seq: 1}, &counterState{tag: 1, journal: 7}); err != nil {
		f.Fatal(err)
	}
	delta := dbuf.Bytes()
	f.Add(delta)
	f.Add(delta[:len(delta)-9]) // truncated delta
	reordered := append([]byte(nil), delta...)
	binary.LittleEndian.PutUint64(reordered[48:], 99) // ChainLink.Seq scrambled
	f.Add(reordered)
	// A structurally valid container whose section claims an absurd item
	// count: the bounded accessors must latch a diagnostic, never hand the
	// claimed count to an allocator (testdata carries this shape too, as
	// huge-count).
	he := NewEncoder()
	he.Begin(3)
	he.Int(1 << 40)
	var hbuf bytes.Buffer
	if _, err := he.WriteTo(&hbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(hbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected: the expected outcome for corrupt input
		}
		// Accepted containers must be fully walkable without panics: read
		// every section's words through the typed accessors.
		for {
			_, ok := d.Next()
			if !ok {
				break
			}
			for d.Err() == nil {
				if len(d.cur)-d.off == 0 {
					break
				}
				_ = d.U64()
			}
			if d.Err() != nil {
				break
			}
		}
		_ = d.Finish()
		// Second pass through the length-prefixed accessors: whatever the
		// section words hold, U64s/String/Ints may error but never panic.
		d2, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, ok := d2.Next(); !ok {
				break
			}
			_ = d2.U64s()
			_ = d2.String()
			_ = d2.Ints()
			if d2.Err() != nil {
				break
			}
		}
		// Third pass through the bounded count prefix: whatever the first
		// word claims, Count must return something the remaining section can
		// actually hold, so sizing an allocation from it is always safe.
		d3, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, ok := d3.Next(); !ok {
				break
			}
			n := d3.Count(2)
			if rem := len(d3.cur) - d3.off; d3.Err() == nil && n > rem/2 {
				t.Fatalf("Count(2) = %d with only %d words left", n, rem)
			}
			for i := 0; i < n && d3.Err() == nil; i++ {
				_ = d3.U64()
				_ = d3.U64()
			}
			if d3.Err() != nil {
				break
			}
		}
	})
}

// FuzzDeltaDecode hammers the delta-container path with arbitrary bytes:
// PeekDelta and LoadDelta must never panic, and every input LoadDelta
// accepts must carry the exact chain identity the caller demanded — corrupt,
// truncated, reordered, orphaned, and full-magic inputs all fail before any
// state is touched. The corpus seeds each rejection class explicitly.
func FuzzDeltaDecode(f *testing.F) {
	want := ChainLink{Base: 11, Prev: 22, Seq: 3}
	mk := func(link ChainLink) []byte {
		var buf bytes.Buffer
		if _, err := SaveDelta(&buf, link, &counterState{tag: 1, journal: 7}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := mk(want)
	f.Add(valid)
	f.Add(mk(ChainLink{Base: 99, Prev: 22, Seq: 3})) // orphan: wrong base
	f.Add(mk(ChainLink{Base: 11, Prev: 22, Seq: 9})) // out of order: wrong seq
	f.Add(mk(ChainLink{Base: 11, Prev: 77, Seq: 3})) // out of order: wrong prev
	f.Add(valid[:len(valid)-9])                      // truncated mid-CRC
	f.Add(valid[:24])                                // truncated header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x08
	f.Add(flipped)
	// A full snapshot container where a delta is expected.
	var full bytes.Buffer
	if err := Save(&full, &fakeState{tag: 1, value: 7}); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if link, _, err := PeekDelta(bytes.NewReader(data)); err == nil && link.Base == 0 && link.Seq == 0 && link.Prev == 0 {
			// A peeked link is arbitrary fuzz data; just exercise the path.
			_ = link
		}
		st := &counterState{tag: 1, value: -1}
		if _, err := LoadDelta(bytes.NewReader(data), want, st); err != nil {
			// Rejected inputs must not have touched the state.
			if st.value != -1 {
				t.Fatalf("rejected delta mutated state to %d", st.value)
			}
			return
		}
		// Accepted: the container must carry exactly the demanded identity.
		link, _, err := PeekDelta(bytes.NewReader(data))
		if err != nil || link != want {
			t.Fatalf("LoadDelta accepted link %+v (peek err %v), want %+v", link, err, want)
		}
	})
}

// FuzzGraphDecode exercises DecodeGraphInto against arbitrary section
// contents: a corrupted count or edge triple must fail with a diagnostic
// error, never panic or allocate from an unvalidated count.
func FuzzGraphDecode(f *testing.F) {
	mk := func(words []uint64) []byte {
		e := NewEncoder()
		e.Begin(9)
		for _, w := range words {
			e.U64(w)
		}
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(mk([]uint64{1, 0, 1, 5}))          // one valid edge {0,1} w=5
	f.Add(mk([]uint64{uint64(1) << 50}))     // huge count, empty body
	f.Add(mk([]uint64{2, 0, 1, 5, 0, 1, 5})) // duplicate edge
	f.Add(mk([]uint64{1, ^uint64(0), 3, 1})) // negative endpoint
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, ok := d.Next(); !ok {
			return
		}
		g := graph.New(8)
		_ = DecodeGraphInto(d, g)
	})
}

// FuzzSnapshotRoundTrip drives the encoder with fuzz-chosen values and
// asserts decode returns them exactly.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(5), int64(-3), "x", true)
	f.Add(uint64(0), int64(1<<62), "", false)
	f.Fuzz(func(t *testing.T, a uint64, b int64, s string, c bool) {
		e := NewEncoder()
		e.Begin(11)
		e.U64(a)
		e.I64(b)
		e.String(s)
		e.Bool(c)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(&buf)
		if err != nil {
			t.Fatalf("valid snapshot rejected: %v", err)
		}
		d.Begin(11)
		if got := d.U64(); got != a {
			t.Errorf("U64 = %d, want %d", got, a)
		}
		if got := d.I64(); got != b {
			t.Errorf("I64 = %d, want %d", got, b)
		}
		if got := d.String(); got != s {
			t.Errorf("String = %q, want %q", got, s)
		}
		if got := d.Bool(); got != c {
			t.Errorf("Bool = %v, want %v", got, c)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
