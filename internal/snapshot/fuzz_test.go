package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSnapshotDecode hammers the snapshot container decoder with arbitrary
// bytes: it must never panic, and any input that passes the container
// checks must decode cleanly section by section (every frame fully
// walkable). The checked-in corpus seeds a valid snapshot plus truncated,
// bit-flipped, and version-skewed variants of it.
func FuzzSnapshotDecode(f *testing.F) {
	// A small valid snapshot as the seed everything else mutates from.
	e := NewEncoder()
	e.Begin(1)
	e.Int(42)
	e.U64s([]uint64{7, 8, 9})
	e.String("seed")
	e.Begin(2)
	e.Bool(true)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // truncated mid-CRC
	f.Add(valid[:16])           // truncated header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	skewed := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(skewed[8:], Version+7)
	f.Add(skewed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected: the expected outcome for corrupt input
		}
		// Accepted containers must be fully walkable without panics: read
		// every section's words through the typed accessors.
		for {
			_, ok := d.Next()
			if !ok {
				break
			}
			for d.Err() == nil {
				if len(d.cur)-d.off == 0 {
					break
				}
				_ = d.U64()
			}
			if d.Err() != nil {
				break
			}
		}
		_ = d.Finish()
		// Second pass through the length-prefixed accessors: whatever the
		// section words hold, U64s/String/Ints may error but never panic.
		d2, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, ok := d2.Next(); !ok {
				break
			}
			_ = d2.U64s()
			_ = d2.String()
			_ = d2.Ints()
			if d2.Err() != nil {
				break
			}
		}
	})
}

// FuzzSnapshotRoundTrip drives the encoder with fuzz-chosen values and
// asserts decode returns them exactly.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(5), int64(-3), "x", true)
	f.Add(uint64(0), int64(1<<62), "", false)
	f.Fuzz(func(t *testing.T, a uint64, b int64, s string, c bool) {
		e := NewEncoder()
		e.Begin(11)
		e.U64(a)
		e.I64(b)
		e.String(s)
		e.Bool(c)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(&buf)
		if err != nil {
			t.Fatalf("valid snapshot rejected: %v", err)
		}
		d.Begin(11)
		if got := d.U64(); got != a {
			t.Errorf("U64 = %d, want %d", got, a)
		}
		if got := d.I64(); got != b {
			t.Errorf("I64 = %d, want %d", got, b)
		}
		if got := d.String(); got != s {
			t.Errorf("String = %q, want %q", got, s)
		}
		if got := d.Bool(); got != c {
			t.Errorf("Bool = %v, want %v", got, c)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
