// Package snapshot implements the crash-safe checkpoint/restore codec of
// the repository: a versioned, length-prefixed binary format into which
// every algorithm serializes its full distributed state — cluster metrics,
// machine shards, sketch arenas, coordinator caches — so that a killed
// simulator process can be restored bit-identically and continue a stream
// without replaying it.
//
// # Format
//
// A snapshot is a flat []uint64 word stream serialized little-endian:
//
//	word 0   magic ("MPCSNAP1")
//	word 1   format version (Version)
//	word 2   payload length in words
//	...      payload: mpc.MessageBatch frames, one per section
//	last     CRC-32C (Castagnoli) of all preceding bytes, widened to a word
//
// The payload reuses the mpc.MessageBatch frame encoding (the simulator's
// batched message codec): each section is one length-prefixed frame whose
// first content word is the section tag chosen by the subsystem that wrote
// it. The container layer therefore rejects structurally corrupt input the
// same way the round codec would, and the CRC plus the version word make
// truncated, bit-flipped, or version-skewed snapshots fail loudly with a
// diagnostic error instead of being applied.
//
// # Delta containers
//
// A delta container is the incremental sibling of the full snapshot: same
// word stream, same version word, same trailing CRC, but DeltaMagic
// ("MPCDELT1") in word 0 and a mandatory first section (tagChain) carrying
// the chain identity:
//
//	word 0   DeltaMagic ("MPCDELT1")
//	word 1   format version (Version)
//	word 2   payload length in words
//	...      section tagChain: ChainLink{Base, Prev, Seq}
//	...      delta sections (dirty regions / journals, per subsystem)
//	last     CRC-32C of all preceding bytes
//
// ChainLink pins where in a chain the delta belongs: Base is the CRC word
// of the full base snapshot, Prev the CRC word of the immediately
// preceding container (the base for Seq 1), and Seq the 1-based position.
// LoadDelta validates magic, version, CRC, and the full ChainLink against
// the caller's expectation before any state is touched: a Base mismatch is
// an orphaned delta (a leftover from before a compaction — sweepable, not
// applicable), a Seq or Prev mismatch is an out-of-order delta (a hard
// error). Chain (chain.go) builds the operational layer on top: full base
// at <path>, deltas at <path>.delta-NNN, periodic compaction into a fresh
// base (written atomically first, stale deltas removed after, so a crash
// between the two leaves only orphans), and Restore-time orphan sweeping.
//
// Subsystems opt in by implementing DeltaState: CheckpointDelta writes
// only the regions dirtied since the last acknowledged checkpoint,
// RestoreDelta applies them in chain order on top of a restored base, and
// AckCheckpoint clears the dirty journals — called only after the
// container is durably on disk, so a failed or crashed write folds its
// churn into the next delta instead of losing it.
//
// # Re-sharding
//
// The same container doubles as the migration format for elastic resizing:
// Reshard restores a full snapshot onto instances built at a different
// machine count, through the ReshardRestorer interface. The snapshot's
// logical content — edges, forest fragments, label caches, sketch seeds —
// is machine-count-independent; only its grouping into per-machine
// sections reflects the source shape, so a re-sharding restore regroups
// records by the target's deterministic vertex→machine map instead of
// copying shards positionally. Three rules keep it safe:
//
//   - The target's per-machine memory budget is re-validated against the
//     incoming state before anything is applied. A shrink whose image
//     would overflow a machine's local memory is rejected with a
//     diagnostic naming the overloaded machine, and the instance is left
//     untouched — the model's memory cap is never silently violated.
//   - Only full snapshots can be re-sharded; a delta alone does not carry
//     the full state to migrate. Re-sharding a delta chain goes through a
//     staging instance at the source shape: restore the chain, checkpoint
//     it fully in memory, Reshard that.
//   - After a resize, the on-disk history describes the old shape. Chain
//     callers invoke Rebase so the next Checkpoint writes a fresh full
//     base (and sweeps stale old-shape deltas) rather than appending a
//     delta that could never be applied to the migrated state.
//
// Because the logical state is preserved exactly, a re-sharded instance
// answers every query bit-identically to an instance that ran at the
// target shape all along — the property the elastic harness and soak
// tests assert.
//
// # Version policy
//
// Version is bumped on any incompatible change to the container or to any
// subsystem's section layout. Snapshots are short-lived operational
// artifacts (a crash/restore cycle, a paused soak run), not an archive
// format: a version-skewed snapshot is rejected, never migrated. Within one
// version, every subsystem additionally validates its own section contents
// against the restoring instance's configuration (vertex count, seed,
// shard shapes) and fails with a descriptive error on mismatch.
//
// # Usage
//
// Writers implement Checkpointer against the Encoder (Begin a section, then
// append words); readers implement Restorer against the Decoder, whose
// accessors are sticky: the first structural error latches and every later
// read returns a zero value, so restore code reads linearly and checks
// Err/Finish once. A Restore that returns an error leaves the target
// instance in an undefined state — discard it and build a fresh one; the
// container-level checks (magic, version, CRC) run before any state is
// touched, so corrupt files are rejected up front.
package snapshot
