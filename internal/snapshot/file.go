package snapshot

import (
	"io"
	"os"
	"path/filepath"
	"strings"
)

// crashPoint is the crash-atomicity failpoint hook: tests set it to a
// function that panics (simulating the process dying) at a named stage of
// the atomic write. Stages, in order: "temp-written" (temp file synced and
// closed, rename not yet issued), "renamed" (rename done, directory not yet
// synced). nil in production.
var crashPoint func(stage string)

func hitCrashPoint(stage string) {
	if crashPoint != nil {
		crashPoint(stage)
	}
}

// WriteFileAtomic checkpoints states into path with crash-safe semantics:
// the snapshot is written to a temporary file in the same directory, fsynced,
// and renamed over path, with the directory fsynced afterwards so the rename
// itself is durable. A crash at any point leaves either the previous file
// intact or the new one complete — never a truncated snapshot that Load
// would reject after the old one is already gone. Every error, including the
// ones Close reports at the end of a buffered write, is returned.
//
// A crash between creating the temp file and the rename orphans the temp
// (that is the point: the previous snapshot survives); SweepStaleTemps
// removes such orphans and is run by the restore paths before loading.
func WriteFileAtomic(path string, states ...Checkpointer) error {
	_, err := writeFileAtomic(path, func(w io.Writer) (uint64, error) {
		return 0, Save(w, states...)
	})
	return err
}

// writeFileAtomic is the shared atomic-write core: save writes one
// container to the temp file and returns its identity, which is passed
// through on success along with the byte size written.
func writeFileAtomic(path string, save func(w io.Writer) (uint64, error)) (uint64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	discard := func(err error) (uint64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	id, err := save(f)
	if err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	hitCrashPoint("temp-written")
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	hitCrashPoint("renamed")
	return id, syncDir(dir)
}

// syncDir makes a just-completed rename in dir durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// LoadFile restores states from the snapshot file at path (the read-side
// convenience partner of WriteFileAtomic).
func LoadFile(path string, states ...Restorer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, states...)
}

// SweepStaleTemps removes the temp files a died-mid-write process left next
// to the snapshot at path: same directory, named after the snapshot (the
// exact pattern WriteFileAtomic and the chain writers use, including the
// delta files' temps), never the live snapshot or its deltas themselves.
// Call it only before any writer is live — the startup restore and resume
// paths do, which is the only time an orphan can be told from an in-flight
// write. Returns the removed file names; a missing directory is not an
// error (nothing to sweep).
func SweepStaleTemps(path string) ([]string, error) {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var removed []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, base) || !strings.Contains(name, ".tmp") {
			continue
		}
		full := filepath.Join(dir, name)
		if err := os.Remove(full); err != nil {
			return removed, err
		}
		removed = append(removed, name)
	}
	return removed, nil
}
