package snapshot

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic checkpoints states into path with crash-safe semantics:
// the snapshot is written to a temporary file in the same directory, fsynced,
// and renamed over path, with the directory fsynced afterwards so the rename
// itself is durable. A crash at any point leaves either the previous file
// intact or the new one complete — never a truncated snapshot that Load
// would reject after the old one is already gone. Every error, including the
// ones Close reports at the end of a buffered write, is returned.
func WriteFileAtomic(path string, states ...Checkpointer) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Save(f, states...); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir makes a just-completed rename in dir durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// LoadFile restores states from the snapshot file at path (the read-side
// convenience partner of WriteFileAtomic).
func LoadFile(path string, states ...Restorer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, states...)
}
