package snapshot

import "io"

// ReshardRestorer is implemented by state that can load a full snapshot
// written at a different machine count, redistributing per-machine state
// onto its own (freshly constructed) cluster shape. Implementations must
// re-validate the target's per-machine memory budget and reject — leaving
// the instance untouched — rather than silently violating the model; see
// the package comment's re-sharding notes.
type ReshardRestorer interface {
	ReshardRestore(d *Decoder) error
}

// Reshard reads one full snapshot from r and restores the given states in
// order (which must match the Save order), allowing the snapshot's machine
// count to differ from the instances'. The container is verified (magic,
// version, CRC) before any state is touched, exactly like Load; delta
// containers are rejected — re-sharding a delta chain goes through a
// staging instance at the source shape (restore the chain, checkpoint it
// fully in memory, Reshard that), because a delta alone does not carry the
// full state to migrate.
func Reshard(r io.Reader, states ...ReshardRestorer) error {
	d, err := NewDecoder(r)
	if err != nil {
		return err
	}
	for _, s := range states {
		if err := s.ReshardRestore(d); err != nil {
			return err
		}
	}
	return d.Finish()
}
