package snapshot

import (
	"fmt"
	"io"
)

// DeltaMagic identifies a delta container: "MPCDELT1" read as a big-endian
// word. A delta carries only the state dirtied since a previous checkpoint,
// under the same version/CRC discipline as the full container, plus a chain
// header naming the exact snapshot it extends.
const DeltaMagic uint64 = 0x4d504344454c5431

// tagChain is the reserved first section of every delta container: the
// chain-identity header (base id, predecessor id, sequence number). It is
// validated before any state section is handed to a restorer.
const tagChain = 0x0D

// ChainLink identifies one delta's position in a checkpoint chain. Snapshot
// identities are container CRC words (see Encoder.writeTo): a deterministic
// fingerprint of the full container bytes, so a delta names precisely which
// byte-exact base and predecessor it extends.
type ChainLink struct {
	// Base is the identity of the full base snapshot the chain grows from.
	Base uint64
	// Prev is the identity of the immediate predecessor container: the base
	// itself for the first delta (Seq 1), the previous delta afterwards.
	Prev uint64
	// Seq is the 1-based position of this delta in the chain.
	Seq uint64
}

// DeltaCheckpointer is implemented by state that can serialize just its
// changes since the last acknowledged checkpoint. Like Checkpoint, it must
// not mutate observable state.
type DeltaCheckpointer interface {
	CheckpointDelta(e *Encoder)
}

// DeltaRestorer applies a delta's sections on top of already-restored state
// (the base, or the base plus earlier deltas of the chain).
type DeltaRestorer interface {
	RestoreDelta(d *Decoder) error
}

// DeltaState is the full contract of incrementally checkpointable state:
// full checkpoint/restore, delta checkpoint/restore, and an acknowledgement
// hook. Checkpoint and CheckpointDelta never reset the state's dirty
// tracking themselves — the caller invokes AckCheckpoint only after the
// container has been durably written, so a failed write simply folds the
// same changes into the next attempt instead of losing them.
type DeltaState interface {
	Checkpointer
	Restorer
	DeltaCheckpointer
	DeltaRestorer
	// AckCheckpoint marks the current state as captured: dirty tracking
	// resets, and the next CheckpointDelta emits only changes made after
	// this call.
	AckCheckpoint()
}

// SaveBase writes a full snapshot of the given states (exactly like Save)
// and returns its identity for use as ChainLink.Base. It does not call
// AckCheckpoint — the caller acknowledges after the write is durable.
func SaveBase(w io.Writer, states ...Checkpointer) (uint64, error) {
	e := NewEncoder()
	for _, s := range states {
		s.Checkpoint(e)
	}
	_, id, err := e.writeTo(w, Magic)
	return id, err
}

// SaveDelta writes one delta container: the chain header first, then each
// state's delta sections in order. It returns the delta's identity (the
// next link's Prev). Like SaveBase it does not acknowledge the checkpoint.
func SaveDelta(w io.Writer, link ChainLink, states ...DeltaCheckpointer) (uint64, error) {
	e := NewEncoder()
	e.Begin(tagChain)
	e.U64(link.Base)
	e.U64(link.Prev)
	e.U64(link.Seq)
	for _, s := range states {
		s.CheckpointDelta(e)
	}
	_, id, err := e.writeTo(w, DeltaMagic)
	return id, err
}

// LoadBase restores states from a full snapshot (exactly like Load) and
// returns the container identity, the value deltas of the chain must name
// as their Base.
func LoadBase(r io.Reader, states ...Restorer) (uint64, error) {
	d, id, err := newDecoder(r, Magic, "snapshot")
	if err != nil {
		return 0, err
	}
	for _, s := range states {
		if err := s.Restore(d); err != nil {
			return 0, err
		}
	}
	return id, d.Finish()
}

// PeekDelta verifies one delta container and returns its chain header and
// identity without touching any state — the chain manager uses it to decide
// which on-disk deltas still link to the current base before applying any.
func PeekDelta(r io.Reader) (ChainLink, uint64, error) {
	d, id, err := newDecoder(r, DeltaMagic, "delta snapshot")
	if err != nil {
		return ChainLink{}, 0, err
	}
	link, err := readChainHeader(d)
	return link, id, err
}

// readChainHeader consumes the mandatory tagChain section.
func readChainHeader(d *Decoder) (ChainLink, error) {
	d.Begin(tagChain)
	link := ChainLink{Base: d.U64(), Prev: d.U64(), Seq: d.U64()}
	if err := d.Err(); err != nil {
		return ChainLink{}, err
	}
	return link, nil
}

// LoadDelta verifies one delta container against the expected chain
// position and applies it to the given states. The container checks (magic,
// version, CRC) and the chain-identity checks all run before any state is
// touched: a delta built on a different base is rejected as orphaned, and a
// delta at the wrong position or off a different predecessor as
// out-of-order. It returns the delta's identity (the next link's Prev).
func LoadDelta(r io.Reader, want ChainLink, states ...DeltaRestorer) (uint64, error) {
	d, id, err := newDecoder(r, DeltaMagic, "delta snapshot")
	if err != nil {
		return 0, err
	}
	link, err := readChainHeader(d)
	if err != nil {
		return 0, err
	}
	if link.Base != want.Base {
		return 0, fmt.Errorf("snapshot: orphaned delta: built on base %#x, restoring chain of base %#x", link.Base, want.Base)
	}
	if link.Seq != want.Seq || link.Prev != want.Prev {
		return 0, fmt.Errorf("snapshot: out-of-order delta: link (seq %d, prev %#x) where (seq %d, prev %#x) was expected",
			link.Seq, link.Prev, want.Seq, want.Prev)
	}
	for _, s := range states {
		if err := s.RestoreDelta(d); err != nil {
			return 0, err
		}
	}
	return id, d.Finish()
}
