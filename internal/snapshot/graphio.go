package snapshot

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// EncodeGraph appends g's live edge set to the current section as a
// count-prefixed list of (u, v, weight) triples in canonical sorted order,
// so two identical graphs always serialize to identical bytes regardless of
// insertion history. Pair with DecodeGraphInto.
func EncodeGraph(e *Encoder, g *graph.Graph) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	e.Int(len(edges))
	for _, we := range edges {
		e.Int(we.U)
		e.Int(we.V)
		e.I64(we.Weight)
	}
}

// DecodeGraphInto reads an edge list written by EncodeGraph and inserts it
// into g, which must be freshly constructed over the right vertex count.
// The count prefix is bounded against the section before anything is
// allocated, and each edge is validated by the graph itself (range, parallel
// edges), so corrupt input fails with a diagnostic.
func DecodeGraphInto(d *Decoder, g *graph.Graph) error {
	cnt := d.Count(3)
	for i := 0; i < cnt && d.Err() == nil; i++ {
		u, v := d.Int(), d.Int()
		w := d.I64()
		if d.Err() != nil {
			break
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return fmt.Errorf("snapshot graph edge {%d,%d}: vertex out of range [0,%d)", u, v, g.N())
		}
		if err := g.Insert(u, v, w); err != nil {
			return fmt.Errorf("snapshot graph edge {%d,%d}: %w", u, v, err)
		}
	}
	return d.Err()
}

// EncodeUpdates appends an update journal to the current section as a
// count-prefixed list of (op, u, v, weight) tuples in application order.
// Unlike EncodeGraph this preserves history, not just the final edge set —
// it is the delta counterpart: a mirror graph restored from a base plus a
// replayed journal equals the mirror at checkpoint time. Pair with
// DecodeUpdatesInto.
func EncodeUpdates(e *Encoder, b graph.Batch) {
	e.Int(len(b))
	for _, up := range b {
		e.U64(uint64(up.Op))
		e.Int(up.Edge.U)
		e.Int(up.Edge.V)
		e.I64(up.Weight)
	}
}

// DecodeUpdatesInto reads a journal written by EncodeUpdates and applies it
// to g in order. The count prefix is bounded against the section, ops and
// vertex ranges are validated here, and each update is validated by the
// graph itself (insert-present, delete-absent), so a corrupt or mismatched
// journal fails with a diagnostic instead of corrupting the mirror.
func DecodeUpdatesInto(d *Decoder, g *graph.Graph) error {
	cnt := d.Count(4)
	for i := 0; i < cnt && d.Err() == nil; i++ {
		op := d.U64()
		u, v := d.Int(), d.Int()
		w := d.I64()
		if d.Err() != nil {
			break
		}
		if op != uint64(graph.Insert) && op != uint64(graph.Delete) {
			return fmt.Errorf("snapshot update journal: bad op %d", op)
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return fmt.Errorf("snapshot update journal edge {%d,%d}: vertex out of range [0,%d)", u, v, g.N())
		}
		var err error
		if op == uint64(graph.Insert) {
			err = g.Insert(u, v, w)
		} else {
			err = g.Delete(u, v)
		}
		if err != nil {
			return fmt.Errorf("snapshot update journal edge {%d,%d}: %w", u, v, err)
		}
	}
	return d.Err()
}
