package snapshot

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// EncodeGraph appends g's live edge set to the current section as a
// count-prefixed list of (u, v, weight) triples in canonical sorted order,
// so two identical graphs always serialize to identical bytes regardless of
// insertion history. Pair with DecodeGraphInto.
func EncodeGraph(e *Encoder, g *graph.Graph) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	e.Int(len(edges))
	for _, we := range edges {
		e.Int(we.U)
		e.Int(we.V)
		e.I64(we.Weight)
	}
}

// DecodeGraphInto reads an edge list written by EncodeGraph and inserts it
// into g, which must be freshly constructed over the right vertex count.
// The count prefix is bounded against the section before anything is
// allocated, and each edge is validated by the graph itself (range, parallel
// edges), so corrupt input fails with a diagnostic.
func DecodeGraphInto(d *Decoder, g *graph.Graph) error {
	cnt := d.Count(3)
	for i := 0; i < cnt && d.Err() == nil; i++ {
		u, v := d.Int(), d.Int()
		w := d.I64()
		if d.Err() != nil {
			break
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return fmt.Errorf("snapshot graph edge {%d,%d}: vertex out of range [0,%d)", u, v, g.N())
		}
		if err := g.Insert(u, v, w); err != nil {
			return fmt.Errorf("snapshot graph edge {%d,%d}: %w", u, v, err)
		}
	}
	return d.Err()
}
