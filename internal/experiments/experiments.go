// Package experiments implements the measurement harness: one function per
// experiment E1–E16, each exercising the corresponding theorem's algorithm
// (or, for E13/E14/E16, the simulator substrate, the scenario registry, and
// the crash-recovery subsystem) on a seeded oblivious workload and
// returning the table rows the experiment reports. The root bench_test.go and cmd/experiments both drive these
// functions; see README.md "Experiments" for the table catalogue.
package experiments

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"reflect"
	"strings"
	"time"

	"repro/internal/agm"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/hash"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/msf"
	"repro/internal/oracle"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Parallelism is the execution-engine parallelism every experiment's MPC
// instances run with (see mpc.Config.Parallelism; 0 = sequential loop).
// cmd/experiments sets it from -parallelism. The engine guarantees each
// table is identical at every setting; only wall-clock time changes.
var Parallelism int

// cfg builds the standard core configuration of the experiments, carrying
// the package parallelism.
func cfg(n int, phi float64, seed uint64) core.Config {
	return core.Config{N: n, Phi: phi, Seed: seed, Parallelism: Parallelism}
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Remarks []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, rem := range t.Remarks {
		fmt.Fprintf(&sb, "# %s\n", rem)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// roundsOf measures the rounds consumed by fn on the given cluster-stats
// readout functions.
func batchRounds(stats func() int, fn func()) int {
	before := stats()
	fn()
	return stats() - before
}

// E1ConnectivityRounds measures rounds per batch for mixed churn at several
// n and φ: Theorem 1.1 predicts a constant (in n and in the number of
// batches) for insertions, plus the documented O(log batch) term for
// deletions.
func E1ConnectivityRounds(sizes []int, phis []float64, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E1: connectivity rounds per batch (Theorem 1.1)",
		Header: []string{"n", "phi", "batch", "ins rounds/batch", "mix rounds/batch", "violations"},
	}
	for _, n := range sizes {
		for _, phi := range phis {
			dc, err := core.NewDynamicConnectivity(cfg(n, phi, seed))
			if err != nil {
				panic(err)
			}
			gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 1, InsertBias: 0.6})
			k := dc.MaxBatch()
			stats := func() int { return dc.Cluster().Stats().Rounds }
			insTotal := 0
			for i := 0; i < batches; i++ {
				b := gen.NextInsertOnly(k)
				insTotal += batchRounds(stats, func() { must(dc.ApplyBatch(b)) })
			}
			mixTotal := 0
			for i := 0; i < batches; i++ {
				b := gen.Next(k)
				mixTotal += batchRounds(stats, func() { must(dc.ApplyBatch(b)) })
			}
			checkAgainstOracle(dc, gen.Mirror())
			t.Rows = append(t.Rows, []string{
				d(n), f2(phi), d(k),
				f2(float64(insTotal) / float64(batches)),
				f2(float64(mixTotal) / float64(batches)),
				d(len(dc.Cluster().Stats().Violations)),
			})
		}
	}
	t.Remarks = append(t.Remarks,
		"claim: rounds/batch constant in n and stream length for fixed phi; smaller phi => more rounds (O(1/phi))",
		"deletion batches add the documented O(log k) endpoint-resolution term")
	return t
}

// E2ConnectivityMemory measures peak total memory as the stream densifies:
// Theorem 1.1 predicts Õ(n), flat in m.
func E2ConnectivityMemory(n int, phi float64, checkpoints []int, seed uint64) *Table {
	t := &Table{
		Title:  "E2: connectivity total memory vs stream density (Theorem 1.1)",
		Header: []string{"n", "m", "peak total words", "words / (n log^3 n)"},
	}
	dc, err := core.NewDynamicConnectivity(cfg(n, phi, seed))
	if err != nil {
		panic(err)
	}
	gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 1})
	k := dc.MaxBatch()
	logn := math.Log2(float64(n))
	norm := float64(n) * logn * logn * logn
	next := 0
	for gen.Mirror().M() < checkpoints[len(checkpoints)-1] {
		must(dc.ApplyBatch(gen.NextInsertOnly(k)))
		for next < len(checkpoints) && gen.Mirror().M() >= checkpoints[next] {
			peak := dc.Cluster().Stats().PeakTotalWords
			t.Rows = append(t.Rows, []string{
				d(n), d(gen.Mirror().M()), d(peak), f2(float64(peak) / norm),
			})
			next++
		}
	}
	t.Remarks = append(t.Remarks, "claim: peak memory flat in m (depends only on n), unlike the O(n+m) of prior work")
	return t
}

// E3QueryVsAGM contrasts the O(1)-round spanning-forest query of the
// maintained-forest algorithm with AGM's O(log n)-round extraction.
func E3QueryVsAGM(sizes []int, seed uint64) *Table {
	t := &Table{
		Title:  "E3: query cost, maintained forest vs AGM baseline (Section 2.1)",
		Header: []string{"n", "ours update rds/batch", "ours query rds", "agm update rds/batch", "agm query boruvka rds", "agm query mpc rds"},
	}
	for _, n := range sizes {
		phi := 0.6
		dc, err := core.NewDynamicConnectivity(cfg(n, phi, seed))
		if err != nil {
			panic(err)
		}
		base, err := agm.New(agm.Config{N: n, Phi: phi, Seed: seed, Parallelism: Parallelism})
		if err != nil {
			panic(err)
		}
		batches := workload.PathStream(n, dc.MaxBatch())
		oursUpd, agmUpd := 0, 0
		for _, b := range batches {
			oursUpd += batchRounds(func() int { return dc.Cluster().Stats().Rounds }, func() { must(dc.ApplyBatch(b)) })
			agmUpd += batchRounds(func() int { return base.Cluster().Stats().Rounds }, func() { must(base.ApplyBatch(b)) })
		}
		// Ours: the forest is maintained; a query is a readout (constant
		// rounds — here literally zero extra communication).
		oursQuery := batchRounds(func() int { return dc.Cluster().Stats().Rounds }, func() { dc.SnapshotForest() })
		var boruvka int
		agmQuery := batchRounds(func() int { return base.Cluster().Stats().Rounds }, func() {
			_, boruvka = base.QueryComponents()
		})
		t.Rows = append(t.Rows, []string{
			d(n),
			f2(float64(oursUpd) / float64(len(batches))),
			d(oursQuery),
			f2(float64(agmUpd) / float64(len(batches))),
			d(boruvka),
			d(agmQuery),
		})
	}
	t.Remarks = append(t.Remarks, "claim: ours O(1) query rounds; AGM Boruvka levels grow ~log n on a path")
	return t
}

// E4ExactMSF measures the exact-MSF insertion-only algorithm: rounds per
// batch and exactness against Kruskal.
func E4ExactMSF(sizes []int, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E4: exact MSF, insertion-only (Theorem 7.1(i))",
		Header: []string{"n", "rounds/batch", "exchange waves", "weight == kruskal"},
	}
	for _, n := range sizes {
		m, err := msf.NewExactMSF(cfg(n, 0.6, seed))
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 2, MaxWeight: 64})
		k := m.Forest().Config().MaxBatch()
		total := 0
		for i := 0; i < batches; i++ {
			b := gen.NextInsertOnly(k)
			var edges []graph.WeightedEdge
			for _, u := range b {
				edges = append(edges, graph.WeightedEdge{Edge: u.Edge, Weight: u.Weight})
			}
			total += batchRounds(func() int { return m.Forest().Cluster().Stats().Rounds }, func() { must(m.InsertBatch(edges)) })
		}
		_, want := oracle.MSF(gen.Mirror())
		t.Rows = append(t.Rows, []string{
			d(n),
			f2(float64(total) / float64(batches)),
			d(m.SwapWaves()),
			fmt.Sprintf("%v (%d)", m.Weight() == want, m.Weight()),
		})
	}
	t.Remarks = append(t.Remarks, "claim: exact weight; constant rounds per batch (exchange waves small)")
	return t
}

// E5ApproxMSF measures the (1+eps)-approximate MSF weight and forest under
// dynamic churn.
func E5ApproxMSF(n int, epss []float64, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E5: (1+eps)-approximate MSF, dynamic (Theorem 7.1(ii))",
		Header: []string{"eps", "levels", "est/true weight", "forest/true weight", "within (1+eps)"},
	}
	for _, eps := range epss {
		a, err := msf.NewApproxMSF(cfg(n, 0.6, seed), eps, 64)
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 3, MaxWeight: 64, InsertBias: 0.7})
		for i := 0; i < batches; i++ {
			must(a.ApplyBatch(gen.Next(a.MaxBatch())))
		}
		_, want := oracle.MSF(gen.Mirror())
		est, forestW := a.Weight(), a.ForestWeight()
		ok := want == 0 || (float64(est) >= float64(want) && float64(est) <= (1+eps)*float64(want) &&
			float64(forestW) >= float64(want) && float64(forestW) <= (1+eps)*float64(want))
		ratio, fratio := 0.0, 0.0
		if want > 0 {
			ratio = float64(est) / float64(want)
			fratio = float64(forestW) / float64(want)
		}
		t.Rows = append(t.Rows, []string{f2(eps), d(a.Levels()), f2(ratio), f2(fratio), fmt.Sprintf("%v", ok)})
	}
	t.Remarks = append(t.Remarks, "claim: true <= estimate <= (1+eps)*true, for both the weight and the extracted forest")
	return t
}

// E6Bipartiteness injects odd cycles into a bipartite stream and checks
// detection plus rounds per batch.
func E6Bipartiteness(n, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E6: bipartiteness, dynamic (Theorem 7.3)",
		Header: []string{"step", "is bipartite", "oracle", "rounds/batch"},
	}
	bt, err := bipartite.New(cfg(n, 0.6, seed))
	if err != nil {
		panic(err)
	}
	violateAt := batches / 2
	gen := workload.NewBipartiteish(n, seed+4, violateAt)
	for step := 0; step < batches; step++ {
		b := gen.Next(bt.MaxBatch())
		r := batchRounds(func() int { return bt.Graph().Cluster().Stats().Rounds + bt.Cover().Cluster().Stats().Rounds },
			func() { must(bt.ApplyBatch(b)) })
		got := bt.IsBipartite()
		want := oracle.IsBipartite(gen.Mirror())
		if got != want {
			panic(fmt.Sprintf("E6 mismatch at step %d: got %v want %v", step, got, want))
		}
		t.Rows = append(t.Rows, []string{d(step), fmt.Sprintf("%v", got), fmt.Sprintf("%v", want), d(r)})
	}
	t.Remarks = append(t.Remarks, fmt.Sprintf("odd cycle injected at step %d; detection must flip there and agree with the oracle throughout", violateAt))
	return t
}

// E7InsertMatching measures the insertion-only matching and size estimator
// across alpha.
func E7InsertMatching(n int, alphas []float64, seed uint64) *Table {
	t := &Table{
		Title:  "E7: insertion-only matching and size estimation (Theorems 8.1, 8.5)",
		Header: []string{"alpha", "opt", "greedy size", "opt/size", "estimate", "est/opt", "cap(n/alpha)"},
	}
	for _, alpha := range alphas {
		gm, err := matching.NewGreedyInsertOnly(n, alpha, 0)
		if err != nil {
			panic(err)
		}
		est, err := matching.NewInsertOnlySizeEstimator(n, alpha, seed)
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 5})
		for i := 0; i < 12; i++ {
			b := gen.NextInsertOnly(n / 8)
			var edges []graph.Edge
			for _, u := range b {
				edges = append(edges, u.Edge)
			}
			must(gm.InsertBatch(edges))
			must(est.InsertBatch(edges))
		}
		opt := oracle.MaxMatchingSize(gen.Mirror())
		ratio := 0.0
		if gm.Size() > 0 {
			ratio = float64(opt) / float64(gm.Size())
		}
		estRatio := 0.0
		if opt > 0 {
			estRatio = float64(est.Estimate()) / float64(opt)
		}
		t.Rows = append(t.Rows, []string{
			f2(alpha), d(opt), d(gm.Size()), f2(ratio), d(est.Estimate()), f2(estRatio), d(gm.Cap()),
		})
	}
	t.Remarks = append(t.Remarks, "claim: opt/size = O(alpha); estimate within O(alpha) of opt")
	return t
}

// E8DynamicMatching measures the AKLY dynamic matching and the dynamic size
// estimator.
func E8DynamicMatching(n int, alphas []float64, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E8: dynamic matching via AKLY + NO21 (Theorems 8.2, 8.6)",
		Header: []string{"alpha", "opt", "akly size", "opt/size", "estimate", "est/opt", "sampler words"},
	}
	for _, alpha := range alphas {
		d8, err := matching.NewAKLYDynamic(n, alpha, seed)
		if err != nil {
			panic(err)
		}
		de, err := matching.NewDynamicSizeEstimator(n, alpha, n/4, seed+1)
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 6, InsertBias: 0.7})
		for i := 0; i < batches; i++ {
			b := gen.Next(n / 8)
			must(d8.ApplyBatch(b))
			must(de.ApplyBatch(b))
		}
		opt := oracle.MaxMatchingSize(gen.Mirror())
		ratio := 0.0
		if d8.Size() > 0 {
			ratio = float64(opt) / float64(d8.Size())
		}
		estRatio := 0.0
		if opt > 0 {
			estRatio = float64(de.Estimate()) / float64(opt)
		}
		t.Rows = append(t.Rows, []string{
			f2(alpha), d(opt), d(d8.Size()), f2(ratio), d(de.Estimate()), f2(estRatio),
			d(d8.SparsifierWords()),
		})
	}
	t.Remarks = append(t.Remarks, "claim: opt/size = O(alpha); sampler memory grows as the guesses' beta*gamma = Õ(n^2/alpha^3)")
	return t
}

// E9BatchScaling fixes n and sweeps the batch size: rounds per batch must
// stay flat (the whole point of batch processing).
func E9BatchScaling(n int, fractions []float64, batchesPer int, seed uint64) *Table {
	t := &Table{
		Title:  "E9: rounds vs batch size at fixed n (batch-scalability)",
		Header: []string{"n", "batch", "batch/max", "rounds/batch", "rounds/update"},
	}
	for _, frac := range fractions {
		dc, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
		if err != nil {
			panic(err)
		}
		k := int(frac * float64(dc.MaxBatch()))
		if k < 1 {
			k = 1
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 7, InsertBias: 0.6})
		total := 0
		for i := 0; i < batchesPer; i++ {
			b := gen.Next(k)
			total += batchRounds(func() int { return dc.Cluster().Stats().Rounds }, func() { must(dc.ApplyBatch(b)) })
		}
		perBatch := float64(total) / float64(batchesPer)
		t.Rows = append(t.Rows, []string{d(n), d(k), f2(frac), f2(perBatch), f2(perBatch / float64(k))})
	}
	t.Remarks = append(t.Remarks, "claim: rounds/batch flat in batch size => rounds/update falls as 1/batch")
	return t
}

// E10EulerTourAblation compares one batched Link of k edges against k
// single-edge Links (the paper's core data-structure contribution,
// Section 6.2).
func E10EulerTourAblation(n int, ks []int, seed uint64) *Table {
	t := &Table{
		Title:  "E10: ablation, batched vs sequential Euler-tour joins (Section 6.2)",
		Header: []string{"k", "batched rounds", "sequential rounds", "speedup"},
	}
	for _, k := range ks {
		batched, err := core.NewForest(cfg(n, 0.8, seed))
		if err != nil {
			panic(err)
		}
		if k > batched.Config().MaxBatch() {
			// The batch would exceed the Õ(n^φ) cap at this n (possible in
			// reduced -quick runs); skip rather than crash.
			continue
		}
		sequential, err := core.NewForest(cfg(n, 0.8, seed))
		if err != nil {
			panic(err)
		}
		var edges []graph.WeightedEdge
		for i := 0; i < k; i++ {
			edges = append(edges, graph.NewWeightedEdge(i, i+1, 1))
		}
		br := batchRounds(func() int { return batched.Cluster().Stats().Rounds }, func() { must(batched.Link(edges)) })
		sr := 0
		for _, e := range edges {
			sr += batchRounds(func() int { return sequential.Cluster().Stats().Rounds },
				func() { must(sequential.Link([]graph.WeightedEdge{e})) })
		}
		t.Rows = append(t.Rows, []string{d(k), d(br), d(sr), f2(float64(sr) / float64(br))})
	}
	t.Remarks = append(t.Remarks, "claim: batched join costs the same rounds as a single join; sequential replay costs k times as much")
	return t
}

// checkAgainstOracle verifies the maintained solution against the
// sequential reference via the shared differential checker, panicking on
// divergence (experiments must not silently report numbers from a broken
// run).
func checkAgainstOracle(dc *core.DynamicConnectivity, g *graph.Graph) {
	if err := harness.VerifyConnectivity(dc, g); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// E11SketchCopiesAblation varies the number t of independent sketch copies
// per vertex and counts solution divergences from the oracle under a
// replacement-heavy workload (build a dense cyclic graph, then delete many
// tree edges per batch, forcing multi-level Borůvka searches): the design
// calls for t = 2 log n + 8 copies so the search succeeds w.h.p.; starving
// the sampler must visibly fail.
func E11SketchCopiesAblation(n int, copies []int, batches int, seeds []uint64) *Table {
	t := &Table{
		Title:  "E11: ablation, sketch copies t vs replacement-search reliability",
		Header: []string{"t", "runs", "diverged runs", "divergence rate"},
	}
	for _, tc := range copies {
		diverged := 0
		for _, seed := range seeds {
			if e11OneRun(n, tc, batches, seed) {
				diverged++
			}
		}
		t.Rows = append(t.Rows, []string{
			d(tc), d(len(seeds)), d(diverged),
			f2(float64(diverged) / float64(len(seeds))),
		})
	}
	t.Remarks = append(t.Remarks,
		"claim: with t = 2 log n + 8 copies divergence is (essentially) never observed; starving the sampler must degrade reliability",
		"a diverged run means the maintained components stopped matching the oracle at some batch")
	return t
}

// e11OneRun reports whether one seeded run diverged from the oracle.
func e11OneRun(n, sketchCopies, batches int, seed uint64) bool {
	dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.7, Seed: seed, SketchCopies: sketchCopies, Parallelism: Parallelism})
	if err != nil {
		panic(err)
	}
	g := graph.New(n)
	apply := func(b graph.Batch) {
		must(g.Apply(b))
		must(dc.ApplyBatch(b))
	}
	// Build a dense band graph: every vertex linked to its next three
	// neighbors, so deleted tree edges always have nearby replacements.
	var all graph.Batch
	for i := 0; i < n; i++ {
		for dlt := 1; dlt <= 3; dlt++ {
			all = append(all, graph.Ins(i, (i+dlt)%n))
		}
	}
	k := dc.MaxBatch()
	for i := 0; i < len(all); i += k {
		end := i + k
		if end > len(all) {
			end = len(all)
		}
		apply(graph.Batch(all[i:end]))
	}
	// Delete batches of current tree edges, forcing replacement searches.
	prg := hash.NewPRG(seed * 31)
	for b := 0; b < batches; b++ {
		forest := dc.SnapshotForest()
		if len(forest) == 0 {
			break
		}
		var del graph.Batch
		used := map[int]bool{}
		for len(del) < k && len(del) < len(forest) {
			i := int(prg.NextN(uint64(len(forest))))
			if used[i] {
				continue
			}
			used[i] = true
			e := forest[i]
			if g.Has(e.U, e.V) {
				del = append(del, graph.Del(e.U, e.V))
			}
		}
		apply(del)
		want := oracle.Components(g)
		got := dc.SnapshotComponents()
		for v := range want {
			if got[v] != want[v] {
				return true
			}
		}
	}
	return false
}

// E12CommunicationPerRound verifies the model bound that global
// communication per round is Õ(n), independent of m.
func E12CommunicationPerRound(sizes []int, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E12: communication volume (global words per round vs n)",
		Header: []string{"n", "m (final)", "rounds", "total words", "words/round", "words/round / n"},
	}
	for _, n := range sizes {
		dc, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 23, InsertBias: 0.6})
		for i := 0; i < batches; i++ {
			must(dc.ApplyBatch(gen.Next(dc.MaxBatch())))
		}
		st := dc.Cluster().Stats()
		perRound := float64(st.WordsSent) / float64(st.Rounds)
		t.Rows = append(t.Rows, []string{
			d(n), d(gen.Mirror().M()), d(st.Rounds),
			fmt.Sprintf("%d", st.WordsSent), f2(perRound), f2(perRound / float64(n)),
		})
	}
	t.Remarks = append(t.Remarks, "claim: words/round = Õ(n) (the last column stays bounded as n grows)")
	return t
}

// E13ParallelSpeedup measures the wall-clock effect of the pluggable
// execution engine: the same seeded workload is replayed through dynamic
// connectivity once per parallelism level, timing the run and checking the
// engine's core guarantee that Stats (rounds, messages, words, peaks,
// violations) are bit-identical to the sequential executor. Two workloads
// are timed: uniform churn, and the hub-centric powerlaw stream whose
// heavy-tailed degrees skew the per-machine load — the regime the engine's
// chunked work stealing and sharded merge exist for. This is the one
// experiment whose numbers are wall-clock, not MPC metrics: it
// characterizes the simulator substrate, not the algorithm.
func E13ParallelSpeedup(n int, parallelisms []int, batches int, seed uint64) *Table {
	t := &Table{
		Title:  "E13: execution engine, worker-pool vs sequential wall-clock",
		Header: []string{"workload", "n", "parallelism", "wall ms", "speedup", "rounds", "stats identical"},
	}
	workloads := []struct {
		name string
		gen  func() workload.Generator
	}{
		{"churn", func() workload.Generator {
			return workload.NewChurn(workload.Config{N: n, Seed: seed + 1, InsertBias: 0.6})
		}},
		{"powerlaw", func() workload.Generator {
			return workload.NewPowerLaw(n, seed+1, 0.25, 0)
		}},
	}
	for _, wl := range workloads {
		run := func(p int) (mpc.Stats, time.Duration) {
			dc, err := core.NewDynamicConnectivity(core.Config{N: n, Phi: 0.6, Seed: seed, Parallelism: p})
			if err != nil {
				panic(err)
			}
			gen := wl.gen()
			start := time.Now()
			for i := 0; i < batches; i++ {
				must(dc.ApplyBatch(gen.Next(dc.MaxBatch())))
			}
			wall := time.Since(start)
			checkAgainstOracle(dc, gen.Mirror())
			return dc.Cluster().Stats(), wall
		}
		run(1) // untimed warmup so the baseline doesn't pay allocator/cache cold-start
		baseStats, baseWall := run(1)
		for _, p := range parallelisms {
			st, wall := run(p)
			t.Rows = append(t.Rows, []string{
				wl.name, d(n), d(resolvedParallelism(p)), f2(float64(wall.Microseconds()) / 1000),
				f2(float64(baseWall) / float64(wall)),
				d(st.Rounds),
				fmt.Sprintf("%v", reflect.DeepEqual(st, baseStats)),
			})
		}
	}
	t.Remarks = append(t.Remarks,
		"claim: identical Stats at every parallelism; speedup grows with machine count and local work",
		"powerlaw rows time the skew regime (hub-heavy per-machine load) that work stealing absorbs",
		"wall-clock of the simulator substrate (not an MPC metric); small n may not amortize the round barrier")
	return t
}

// resolvedParallelism normalizes a Config.Parallelism value to the worker
// count it selects, so the table shows resolved numbers.
func resolvedParallelism(p int) int { return mpc.ResolveParallelism(p) }

// E14ScenarioSweep streams every listed scenario (default: the whole
// registry) through every compatible algorithm under the differential
// harness, cross-checking each batch against the brute-force oracles. The
// table is the systematic scenario-coverage matrix the ad-hoc
// per-experiment workloads never gave: a row per (scenario, algorithm)
// pair that survived its checks.
func E14ScenarioSweep(n, batches int, scenarios []string, seed uint64) *Table {
	t := &Table{
		Title:  "E14: scenario sweep, differential harness over the registry",
		Header: []string{"scenario", "algorithm", "batches", "updates", "edges", "rounds/batch", "checks"},
	}
	if len(scenarios) == 0 {
		scenarios = workload.Names()
	}
	for _, scName := range scenarios {
		sc, err := workload.Get(scName)
		if err != nil {
			panic(err)
		}
		for _, algoName := range harness.AlgorithmNames() {
			algo, err := harness.GetAlgorithm(algoName)
			if err != nil {
				panic(err)
			}
			if harness.Compatible(algo, sc) != nil {
				continue
			}
			rep, err := harness.RunScenario(algo, sc, harness.Options{
				N: n, Batches: batches, Seed: seed, Parallelism: Parallelism,
			})
			must(err) // a divergence is a broken run, not a table row
			roundsPerBatch := "n/a"
			if rep.Rounds >= 0 && rep.Batches > 0 {
				roundsPerBatch = f2(float64(rep.Rounds) / float64(rep.Batches))
			}
			t.Rows = append(t.Rows, []string{
				rep.Scenario, rep.Algorithm, d(rep.Batches), d(rep.Updates),
				d(rep.FinalEdges), roundsPerBatch, d(rep.Checks),
			})
		}
	}
	t.Remarks = append(t.Remarks,
		"every row passed its per-batch brute-force oracle checks (the run panics on divergence)",
		"insertion-only algorithms pair only with grow* scenarios; MSF algorithms only with weighted ones")
	return t
}

// E15QueryThroughput measures the batched query engine (the read path of
// the read/write-mix workload): per-query-collective vs one batched
// collective vs warm label cache, in MPC rounds per query. The batched
// answers are cross-checked against the brute-force oracle before any
// number is reported.
func E15QueryThroughput(sizes []int, batches, queries int, seed uint64) *Table {
	t := &Table{
		Title:  "E15: query throughput, per-query loop vs batched vs label cache",
		Header: []string{"n", "queries", "loop rds/q", "batched rds/q", "warm rds/q", "loop/batched"},
	}
	for _, n := range sizes {
		dc, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(workload.Config{N: n, Seed: seed + 1, InsertBias: 0.6})
		mix := workload.NewQueryMix(gen, n, seed+2)
		for i := 0; i < batches; i++ {
			must(dc.ApplyBatch(mix.Next(dc.MaxBatch())))
		}
		raw := mix.NextQueries(queries)
		pairs := make([]core.Pair, len(raw))
		for i, q := range raw {
			pairs[i] = core.Pair{U: q[0], V: q[1]}
		}
		rounds := func() int { return dc.Cluster().Stats().Rounds }
		// Regime 1: one collective per query (the pre-cache cost model).
		loopRounds := batchRounds(rounds, func() {
			for _, p := range pairs {
				dc.InvalidateQueryCache()
				dc.Connected(p.U, p.V)
			}
		})
		// Regime 2: one batched collective for the whole query set.
		dc.InvalidateQueryCache()
		var batchedAns []bool
		batchedRounds := batchRounds(rounds, func() { batchedAns = dc.ConnectedAll(pairs) })
		// Regime 3: warm repeat against the label cache.
		warmRounds := batchRounds(rounds, func() { dc.ConnectedAll(pairs) })
		want := mix.OracleAnswers(raw)
		for i := range pairs {
			if batchedAns[i] != want[i] {
				panic(fmt.Sprintf("E15: query %v answered %v, oracle %v", pairs[i], batchedAns[i], want[i]))
			}
		}
		q := float64(queries)
		speedup := 0.0
		if batchedRounds > 0 {
			speedup = float64(loopRounds) / float64(batchedRounds)
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(queries),
			f2(float64(loopRounds) / q),
			fmt.Sprintf("%.4f", float64(batchedRounds)/q),
			fmt.Sprintf("%.4f", float64(warmRounds)/q),
			f2(speedup),
		})
	}
	t.Remarks = append(t.Remarks,
		"claim: N queries cost one broadcast + one flat aggregation (O(1/phi) rounds total) instead of N collectives",
		"warm repeats answer from the coordinator label cache with zero MPC rounds; every batched answer is oracle-verified")
	return t
}

// E16CrashRecovery exercises the crash-safe checkpoint/restore subsystem
// (internal/snapshot): for each size it runs dynamic connectivity over the
// powerlaw scenario twice — uninterrupted, and with seeded kill/restore
// cycles (the cluster state is checkpointed, torn down, rebuilt, and
// restored mid-stream) — and demands that the final Stats, component
// labels, and maintained forest are bit-identical; both runs are
// oracle-verified. With a non-empty checkpointPath the crash run's final
// state is additionally round-tripped through a snapshot file on disk, and
// with a non-empty resumePath an existing snapshot file is restored and
// re-verified instead of the in-memory image (restart-without-replay).
func E16CrashRecovery(sizes []int, batches, every int, seed uint64, checkpointPath, resumePath string) *Table {
	t := &Table{
		Title:  "E16: crash recovery, kill+restore vs uninterrupted",
		Header: []string{"n", "batches", "crashes", "rounds", "snapshot words", "bit-identical"},
	}
	for _, n := range sizes {
		runOnce := func(crashEvery int) (*core.DynamicConnectivity, *graph.Graph, int, int) {
			dc, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
			must(err)
			gen := workload.NewPowerLaw(n, seed+1, 0.25, 0)
			var sched *workload.CrashSchedule
			if crashEvery > 0 {
				sched = workload.NewCrashSchedule(seed+3, crashEvery)
			}
			crashes, snapWords := 0, 0
			for i := 0; i < batches; i++ {
				must(dc.ApplyBatch(gen.Next(dc.MaxBatch())))
				if sched != nil && sched.Crash() {
					var buf bytes.Buffer
					must(snapshot.Save(&buf, dc))
					snapWords = buf.Len() / 8
					fresh, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
					must(err)
					must(snapshot.Load(&buf, fresh))
					dc = fresh
					crashes++
				}
			}
			must(harness.VerifyConnectivity(dc, gen.Mirror()))
			return dc, gen.Mirror(), crashes, snapWords
		}
		base, _, _, _ := runOnce(0)
		crashed, _, crashes, snapWords := runOnce(every)
		identical := reflect.DeepEqual(base.Cluster().Stats(), crashed.Cluster().Stats()) &&
			reflect.DeepEqual(base.SnapshotComponents(), crashed.SnapshotComponents()) &&
			reflect.DeepEqual(base.SnapshotForest(), crashed.SnapshotForest())
		t.Rows = append(t.Rows, []string{
			d(n), d(batches), d(crashes), d(crashed.Cluster().Stats().Rounds),
			d(snapWords), fmt.Sprintf("%v", identical),
		})
		if n == sizes[len(sizes)-1] {
			if checkpointPath != "" {
				f, err := os.Create(checkpointPath)
				must(err)
				must(snapshot.Save(f, crashed))
				must(f.Close())
				t.Remarks = append(t.Remarks, fmt.Sprintf("final state written to %s", checkpointPath))
			}
			if resumePath != "" {
				fresh, err := core.NewDynamicConnectivity(cfg(n, 0.6, seed))
				must(err)
				f, err := os.Open(resumePath)
				must(err)
				loadErr := snapshot.Load(f, fresh)
				f.Close()
				if loadErr != nil {
					t.Remarks = append(t.Remarks, fmt.Sprintf("resume from %s rejected: %v", resumePath, loadErr))
				} else {
					match := reflect.DeepEqual(fresh.SnapshotComponents(), crashed.SnapshotComponents())
					t.Remarks = append(t.Remarks, fmt.Sprintf("resumed %s (components match current run: %v)", resumePath, match))
				}
			}
		}
	}
	t.Remarks = append(t.Remarks,
		"claim: checkpoint -> kill -> restore -> continue is bit-identical to never crashing (Stats, labels, forest)",
		"crash points are a seeded oblivious schedule (workload.NewCrashSchedule); both runs pass the brute-force oracle")
	return t
}
