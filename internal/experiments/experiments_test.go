package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The experiment functions self-verify against oracles and panic on
// divergence; these tests run each one at reduced scale so every table can
// be regenerated, and spot-check the table structure.

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Header:  []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}},
		Remarks: []string{"note"},
	}
	s := tb.String()
	for _, want := range []string{"demo", "bbbb", "# note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestE1Small(t *testing.T) {
	tb := E1ConnectivityRounds([]int{48}, []float64{0.6}, 4, 1)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][5] != "0" {
		t.Errorf("violations: %v", tb.Rows[0])
	}
}

func TestE2Small(t *testing.T) {
	tb := E2ConnectivityMemory(48, 0.6, []int{20, 40}, 2)
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE3Small(t *testing.T) {
	tb := E3QueryVsAGM([]int{48}, 3)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][2] != "0" {
		t.Errorf("ours query rounds = %s, want 0", tb.Rows[0][2])
	}
}

func TestE4Small(t *testing.T) {
	tb := E4ExactMSF([]int{32}, 4, 4)
	if !strings.HasPrefix(tb.Rows[0][3], "true") {
		t.Errorf("MSF not exact: %v", tb.Rows[0])
	}
}

func TestE5Small(t *testing.T) {
	tb := E5ApproxMSF(32, []float64{0.25}, 5, 5)
	if tb.Rows[0][4] != "true" {
		t.Errorf("approx MSF outside (1+eps): %v", tb.Rows[0])
	}
}

func TestE6Small(t *testing.T) {
	tb := E6Bipartiteness(32, 6, 6)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE7Small(t *testing.T) {
	tb := E7InsertMatching(32, []float64{2}, 7)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE8Small(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	tb := E8DynamicMatching(24, []float64{2}, 5, 8)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE9Small(t *testing.T) {
	tb := E9BatchScaling(48, []float64{0.5, 1}, 3, 9)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE10Small(t *testing.T) {
	tb := E10EulerTourAblation(64, []int{4, 8}, 10)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE11Small(t *testing.T) {
	tb := E11SketchCopiesAblation(32, []int{1, 18}, 4, []uint64{1, 2, 3})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The well-provisioned configuration must not diverge.
	if tb.Rows[1][2] != "0" {
		t.Errorf("t=18 diverged: %v", tb.Rows[1])
	}
}

func TestE12Small(t *testing.T) {
	tb := E12CommunicationPerRound([]int{32, 64}, 4, 12)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE14Small(t *testing.T) {
	tb := E14ScenarioSweep(48, 4, []string{"star", "grow-weighted"}, 14)
	if len(tb.Rows) < 5 {
		t.Fatalf("rows = %d: star should pair with the dynamic algorithms and grow-weighted with every insert-capable one", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[6] == "0" {
			t.Errorf("row ran no checks: %v", r)
		}
	}
}

func TestE13Small(t *testing.T) {
	tb := E13ParallelSpeedup(48, []int{1, 4}, 4, 13)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 workloads x 2 parallelisms", len(tb.Rows))
	}
	seen := map[string]bool{}
	for _, r := range tb.Rows {
		seen[r[0]] = true
		if r[6] != "true" {
			t.Errorf("stats not identical across engines: %v", r)
		}
	}
	if !seen["churn"] || !seen["powerlaw"] {
		t.Errorf("missing workload rows: %v", seen)
	}
}

func TestE16Small(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e16.snap")
	tb := E16CrashRecovery([]int{48}, 8, 3, 16, path, "")
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][5] != "true" {
		t.Errorf("crash run not bit-identical: %v", tb.Rows[0])
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}
	// Resume from the file we just wrote: the remark must report a match,
	// never a rejection.
	tb = E16CrashRecovery([]int{48}, 8, 3, 16, "", path)
	found := false
	for _, r := range tb.Remarks {
		if strings.Contains(r, "components match current run: true") {
			found = true
		}
		if strings.Contains(r, "rejected") {
			t.Errorf("valid snapshot rejected: %s", r)
		}
	}
	if !found {
		t.Errorf("resume remark missing: %v", tb.Remarks)
	}
}
