package oracle

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hash"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		_ = g.Insert(i, i+1, 1)
	}
	return g
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if uf.Find(0) != uf.Find(2) || uf.Find(0) == uf.Find(3) {
		t.Fatal("Find wrong")
	}
	if uf.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", uf.Sets())
	}
}

func TestComponentsLabels(t *testing.T) {
	g := graph.New(6)
	_ = g.Insert(0, 1, 1)
	_ = g.Insert(4, 5, 1)
	labels := Components(g)
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("component of {0,1} labeled %d,%d", labels[0], labels[1])
	}
	if labels[4] != 4 || labels[5] != 4 {
		t.Errorf("component of {4,5} labeled %d,%d", labels[4], labels[5])
	}
	if labels[2] != 2 || labels[3] != 3 {
		t.Error("singleton labels wrong")
	}
}

func TestNumComponentsAndConnected(t *testing.T) {
	g := pathGraph(4)
	if NumComponents(g) != 1 {
		t.Errorf("NumComponents = %d", NumComponents(g))
	}
	_ = g.Delete(1, 2)
	if NumComponents(g) != 2 {
		t.Errorf("after split NumComponents = %d", NumComponents(g))
	}
	if !Connected(g, 0, 1) || Connected(g, 0, 3) {
		t.Error("Connected wrong after split")
	}
}

func TestIsSpanningForest(t *testing.T) {
	g := pathGraph(4)
	forest := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3)}
	if !IsSpanningForest(g, forest) {
		t.Error("valid spanning forest rejected")
	}
	// Too few edges: not spanning.
	if IsSpanningForest(g, forest[:2]) {
		t.Error("non-spanning forest accepted")
	}
	// Cycle.
	_ = g.Insert(0, 3, 1)
	cyc := append(append([]graph.Edge{}, forest...), graph.NewEdge(0, 3))
	if IsSpanningForest(g, cyc) {
		t.Error("cyclic edge set accepted")
	}
	// Edge not in graph.
	g2 := pathGraph(3)
	if IsSpanningForest(g2, []graph.Edge{graph.NewEdge(0, 2), graph.NewEdge(1, 2)}) {
		t.Error("forest with phantom edge accepted")
	}
}

func TestMSFSimple(t *testing.T) {
	g := graph.New(4)
	_ = g.Insert(0, 1, 1)
	_ = g.Insert(1, 2, 2)
	_ = g.Insert(2, 3, 3)
	_ = g.Insert(0, 3, 10)
	edges, w := MSF(g)
	if w != 6 {
		t.Errorf("MSF weight = %d, want 6", w)
	}
	if len(edges) != 3 {
		t.Errorf("MSF size = %d, want 3", len(edges))
	}
}

func TestMSFDisconnected(t *testing.T) {
	g := graph.New(5)
	_ = g.Insert(0, 1, 5)
	_ = g.Insert(3, 4, 7)
	edges, w := MSF(g)
	if len(edges) != 2 || w != 12 {
		t.Errorf("MSF = %d edges weight %d", len(edges), w)
	}
}

func TestMSFIsSpanningForest(t *testing.T) {
	prg := hash.NewPRG(3)
	g := graph.New(20)
	for i := 0; i < 40; i++ {
		u, v := int(prg.NextN(20)), int(prg.NextN(20))
		if u != v && !g.Has(u, v) {
			_ = g.Insert(u, v, int64(prg.NextN(100)+1))
		}
	}
	edges, _ := MSF(g)
	plain := make([]graph.Edge, len(edges))
	for i, e := range edges {
		plain[i] = e.Edge
	}
	if !IsSpanningForest(g, plain) {
		t.Error("MSF output is not a spanning forest")
	}
}

func TestIsBipartite(t *testing.T) {
	even := pathGraph(6) // paths are bipartite
	if !IsBipartite(even) {
		t.Error("path declared non-bipartite")
	}
	tri := graph.New(3)
	_ = tri.Insert(0, 1, 1)
	_ = tri.Insert(1, 2, 1)
	_ = tri.Insert(0, 2, 1)
	if IsBipartite(tri) {
		t.Error("triangle declared bipartite")
	}
	c4 := graph.New(4)
	_ = c4.Insert(0, 1, 1)
	_ = c4.Insert(1, 2, 1)
	_ = c4.Insert(2, 3, 1)
	_ = c4.Insert(3, 0, 1)
	if !IsBipartite(c4) {
		t.Error("C4 declared non-bipartite")
	}
	c5 := graph.New(5)
	for i := 0; i < 5; i++ {
		_ = c5.Insert(i, (i+1)%5, 1)
	}
	if IsBipartite(c5) {
		t.Error("C5 declared bipartite")
	}
}

func TestIsMatching(t *testing.T) {
	g := pathGraph(4)
	if !IsMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)}) {
		t.Error("valid matching rejected")
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}) {
		t.Error("overlapping edges accepted")
	}
	if IsMatching(g, []graph.Edge{graph.NewEdge(0, 2)}) {
		t.Error("phantom edge accepted")
	}
}

func TestGreedyMaximalMatching(t *testing.T) {
	g := pathGraph(5)
	m := GreedyMaximalMatching(g)
	if !IsMatching(g, m) {
		t.Fatal("greedy output not a matching")
	}
	// Maximality: no remaining edge has both endpoints free.
	used := make(map[int]bool)
	for _, e := range m {
		used[e.U] = true
		used[e.V] = true
	}
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			t.Errorf("edge %v violates maximality", e)
		}
	}
}

func TestMaxMatchingSizePath(t *testing.T) {
	for n, want := range map[int]int{2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3} {
		if got := MaxMatchingSize(pathGraph(n)); got != want {
			t.Errorf("path %d: matching %d, want %d", n, got, want)
		}
	}
}

func TestMaxMatchingSizeOddCycle(t *testing.T) {
	// C5 has max matching 2; blossom must handle the odd cycle.
	c5 := graph.New(5)
	for i := 0; i < 5; i++ {
		_ = c5.Insert(i, (i+1)%5, 1)
	}
	if got := MaxMatchingSize(c5); got != 2 {
		t.Errorf("C5 matching = %d, want 2", got)
	}
}

func TestMaxMatchingSizePetersen(t *testing.T) {
	// The Petersen graph has a perfect matching (size 5).
	g := graph.New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, es := range [][][2]int{outer, inner, spokes} {
		for _, e := range es {
			_ = g.Insert(e[0], e[1], 1)
		}
	}
	if got := MaxMatchingSize(g); got != 5 {
		t.Errorf("Petersen matching = %d, want 5", got)
	}
}

func TestMaxMatchingAgainstBruteForce(t *testing.T) {
	// Exhaustive verification on random graphs with at most 16 edges.
	prg := hash.NewPRG(11)
	for trial := 0; trial < 30; trial++ {
		g := graph.New(8)
		var edges []graph.Edge
		for len(edges) < 10 {
			u, v := int(prg.NextN(8)), int(prg.NextN(8))
			if u == v || g.Has(u, v) {
				continue
			}
			_ = g.Insert(u, v, 1)
			edges = append(edges, graph.NewEdge(u, v))
		}
		want := bruteForceMatching(edges)
		if got := MaxMatchingSize(g); got != want {
			t.Fatalf("trial %d: blossom %d, brute force %d (edges %v)", trial, got, want, edges)
		}
	}
}

// bruteForceMatching finds the maximum matching size by trying all subsets.
func bruteForceMatching(edges []graph.Edge) int {
	best := 0
	for mask := 0; mask < 1<<len(edges); mask++ {
		used := make(map[int]bool)
		ok := true
		count := 0
		for i, e := range edges {
			if mask&(1<<i) == 0 {
				continue
			}
			if used[e.U] || used[e.V] {
				ok = false
				break
			}
			used[e.U] = true
			used[e.V] = true
			count++
		}
		if ok && count > best {
			best = count
		}
	}
	return best
}

func TestForestPath(t *testing.T) {
	forest := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 3), graph.NewEdge(4, 5),
	}
	path := ForestPath(6, forest, 0, 3)
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3", len(path))
	}
	if path[0] != graph.NewEdge(0, 1) || path[2] != graph.NewEdge(2, 3) {
		t.Errorf("path order wrong: %v", path)
	}
	if ForestPath(6, forest, 0, 5) != nil {
		t.Error("path across components should be nil")
	}
	if got := ForestPath(6, forest, 2, 2); len(got) != 0 {
		t.Errorf("self path = %v", got)
	}
}

func TestIsMaximalMatching(t *testing.T) {
	g := graph.New(5) // path 0-1-2-3-4
	for v := 0; v+1 < 5; v++ {
		if err := g.Insert(v, v+1, 0); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name  string
		edges []graph.Edge
		want  bool
	}{
		{"maximal", []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)}, true},
		{"not maximal", []graph.Edge{graph.NewEdge(1, 2)}, false},
		{"not a matching", []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)}, false},
		{"missing edge", []graph.Edge{graph.NewEdge(0, 2)}, false},
		{"empty on nonempty graph", nil, false},
	}
	for _, c := range cases {
		if got := IsMaximalMatching(g, c.edges); got != c.want {
			t.Errorf("%s: IsMaximalMatching = %v, want %v", c.name, got, c.want)
		}
	}
	if !IsMaximalMatching(graph.New(3), nil) {
		t.Error("empty matching on the empty graph should be maximal")
	}
}
