// Package oracle provides sequential reference implementations used to
// verify the MPC algorithms: connectivity labels, spanning-forest checking,
// Kruskal minimum spanning forests, bipartiteness, and exact maximum
// matching (Edmonds' blossom algorithm). Oracles favour clarity over speed;
// they run on test-sized graphs.
package oracle

import (
	"sort"

	"repro/internal/graph"
)

// UnionFind is a disjoint-set forest with path compression and union by
// size.
type UnionFind struct {
	parent []int
	size   []int
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning false if they were already
// joined.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Components returns a component label for each vertex; two vertices share a
// label iff they are connected in g. Labels are the minimum vertex id of the
// component, matching the paper's component-id convention.
func Components(g *graph.Graph) []int {
	n := g.N()
	uf := NewUnionFind(n)
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, _ int64) bool {
			uf.Union(u, v)
			return true
		})
	}
	minOf := make(map[int]int)
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		if cur, ok := minOf[r]; !ok || v < cur {
			minOf[r] = v
		}
	}
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = minOf[uf.Find(v)]
	}
	return labels
}

// NumComponents returns the number of connected components of g.
func NumComponents(g *graph.Graph) int {
	n := g.N()
	uf := NewUnionFind(n)
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, _ int64) bool {
			uf.Union(u, v)
			return true
		})
	}
	return uf.Sets()
}

// Connected reports whether u and v are in the same component of g.
func Connected(g *graph.Graph, u, v int) bool {
	labels := Components(g)
	return labels[u] == labels[v]
}

// IsSpanningForest verifies that forest is a spanning forest of g: every
// forest edge exists in g, the forest is acyclic, and it has exactly
// n - #components(g) edges (which together imply it spans every component).
func IsSpanningForest(g *graph.Graph, forest []graph.Edge) bool {
	uf := NewUnionFind(g.N())
	for _, e := range forest {
		if !g.Has(e.U, e.V) {
			return false
		}
		if !uf.Union(e.U, e.V) {
			return false // cycle
		}
	}
	return len(forest) == g.N()-NumComponents(g)
}

// MSF returns a minimum spanning forest of g (Kruskal) and its total weight.
// Ties are broken by canonical edge order, making the weight unique and the
// edge set deterministic.
func MSF(g *graph.Graph) ([]graph.WeightedEdge, int64) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	uf := NewUnionFind(g.N())
	var out []graph.WeightedEdge
	var total int64
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			total += e.Weight
		}
	}
	return out, total
}

// IsBipartite reports whether g is bipartite, via BFS 2-coloring.
func IsBipartite(g *graph.Graph) bool {
	n := g.N()
	color := make([]int8, n) // 0 unvisited, 1/2 colors
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ok := true
			g.Neighbors(u, func(v int, _ int64) bool {
				switch color[v] {
				case 0:
					color[v] = 3 - color[u]
					queue = append(queue, v)
				case color[u]:
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
	}
	return true
}

// IsMatching verifies that edges form a matching in g: each edge exists and
// no vertex is covered twice.
func IsMatching(g *graph.Graph, edges []graph.Edge) bool {
	covered := make(map[int]bool)
	for _, e := range edges {
		if !g.Has(e.U, e.V) {
			return false
		}
		if covered[e.U] || covered[e.V] {
			return false
		}
		covered[e.U] = true
		covered[e.V] = true
	}
	return true
}

// IsMaximalMatching verifies that edges form a *maximal* matching of g: a
// valid matching (every edge present, no vertex covered twice) that leaves
// no edge of g with both endpoints uncovered. Maximality is the exact
// invariant of the Nowicki–Onak matcher and implies a 2-approximation of
// the maximum matching.
func IsMaximalMatching(g *graph.Graph, edges []graph.Edge) bool {
	if !IsMatching(g, edges) {
		return false
	}
	covered := make([]bool, g.N())
	for _, e := range edges {
		covered[e.U] = true
		covered[e.V] = true
	}
	for u := 0; u < g.N(); u++ {
		if covered[u] {
			continue
		}
		maximal := true
		g.Neighbors(u, func(v int, _ int64) bool {
			if !covered[v] {
				maximal = false
				return false
			}
			return true
		})
		if !maximal {
			return false
		}
	}
	return true
}

// GreedyMaximalMatching returns a maximal matching of g, scanning edges in
// canonical sorted order. Its size is at least half the maximum matching.
func GreedyMaximalMatching(g *graph.Graph) []graph.Edge {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	used := make([]bool, g.N())
	var out []graph.Edge
	for _, e := range edges {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			out = append(out, e.Edge)
		}
	}
	return out
}

// MaxMatchingSize returns the size of a maximum matching of g, computed with
// Edmonds' blossom algorithm in O(V^3).
func MaxMatchingSize(g *graph.Graph) int {
	n := g.N()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		g.Neighbors(u, func(v int, _ int64) bool {
			adj[u] = append(adj[u], v)
			return true
		})
		sort.Ints(adj[u])
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	p := make([]int, n)    // parent in the alternating tree
	base := make([]int, n) // blossom base of each vertex
	q := make([]int, 0, n)
	inQueue := make([]bool, n)
	inBlossom := make([]bool, n)

	lca := func(a, b int) int {
		used := make([]bool, n)
		for {
			a = base[a]
			used[a] = true
			if match[a] == -1 {
				break
			}
			a = p[match[a]]
		}
		for {
			b = base[b]
			if used[b] {
				return b
			}
			b = p[match[b]]
		}
	}

	markPath := func(v, b, child int) {
		for base[v] != b {
			inBlossom[base[v]] = true
			inBlossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	findPath := func(root int) int {
		for i := range p {
			p[i] = -1
			inQueue[i] = false
			base[i] = i
		}
		q = q[:0]
		q = append(q, root)
		inQueue[root] = true
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, to := range adj[v] {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// Found a blossom: contract it.
					curBase := lca(v, to)
					for i := range inBlossom {
						inBlossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < n; i++ {
						if inBlossom[base[i]] {
							base[i] = curBase
							if !inQueue[i] {
								inQueue[i] = true
								q = append(q, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						return to // augmenting path found
					}
					inQueue[match[to]] = true
					q = append(q, match[to])
				}
			}
		}
		return -1
	}

	size := 0
	for v := 0; v < n; v++ {
		if match[v] != -1 {
			continue
		}
		u := findPath(v)
		if u == -1 {
			continue
		}
		size++
		// Flip the augmenting path ending at u.
		for u != -1 {
			pv := p[u]
			ppv := match[pv]
			match[u] = pv
			match[pv] = u
			u = ppv
		}
	}
	return size
}

// ForestPath returns the unique path between u and v in the forest given by
// parent adjacency (as an edge list), or nil if they are disconnected. It is
// used to validate Identify-Path and MSF cycle properties.
func ForestPath(n int, forest []graph.Edge, u, v int) []graph.Edge {
	adj := make(map[int][]graph.Edge)
	for _, e := range forest {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	prev := make(map[int]graph.Edge)
	visited := map[int]bool{u: true}
	queue := []int{u}
	for len(queue) > 0 && !visited[v] {
		x := queue[0]
		queue = queue[1:]
		for _, e := range adj[x] {
			y := e.Other(x)
			if !visited[y] {
				visited[y] = true
				prev[y] = e
				queue = append(queue, y)
			}
		}
	}
	if !visited[v] {
		return nil
	}
	var path []graph.Edge
	for x := v; x != u; {
		e := prev[x]
		path = append(path, e)
		x = e.Other(x)
	}
	// Reverse into u→v order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
