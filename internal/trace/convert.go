package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Sink consumes converted batches. Both trace.Writer and streamio.Writer
// satisfy it, so one conversion pass can target either format.
type Sink interface {
	WriteBatch(b graph.Batch) error
}

// ConvertOptions parameterizes ConvertEdgeList. The zero value converts an
// unwindowed edge list into batches of DefaultConvertBatch updates.
type ConvertOptions struct {
	// Window > 0 expires each inserted edge once the stream time advances
	// past insertTime + Window, emitting a deletion (carrying the insert
	// weight) before the update that advanced time. 0 keeps every edge
	// live forever (insert-only output).
	Window int64
	// BatchSize caps the updates per emitted batch (default
	// DefaultConvertBatch). Batches also cut early whenever an edge would
	// be touched twice, preserving the generator batch invariant.
	BatchSize int
	// MaxLineBytes bounds a single input line (default 16 MiB, matching
	// streamio).
	MaxLineBytes int
}

// DefaultConvertBatch is the default updates-per-batch of the converter.
const DefaultConvertBatch = 256

// ConvertStats summarizes one conversion.
type ConvertStats struct {
	// Lines is the number of input lines read (including comments/blanks).
	Lines int
	// Edges is the number of well-formed edge lines.
	Edges int
	// Duplicates counts edge lines skipped because the edge was already
	// live; SelfLoops counts u==v lines skipped.
	Duplicates, SelfLoops int
	// Expired counts the deletions emitted by the sliding window.
	Expired int
	// Batches and Updates count what reached the sink.
	Batches, Updates int
	// N is the observed vertex-space size (max endpoint + 1); Weighted
	// reports whether any update carried a nonzero weight.
	N        int
	Weighted bool
}

// liveEdge is one window entry: the edge, its insert time, and its weight
// (re-emitted on expiry so deletions carry the insert weight, matching the
// generator convention).
type liveEdge struct {
	e graph.Edge
	t int64
	w int64
}

// converter is the streaming state of one ConvertEdgeList call.
type converter struct {
	sink  Sink
	opt   ConvertOptions
	stats ConvertStats

	// live maps each live edge to its weight; fifo holds the live edges in
	// insert order (input timestamps are required non-decreasing, so the
	// FIFO is also ordered by time and expiry pops only from the front).
	live map[graph.Edge]int64
	fifo []liveEdge

	// batch accumulates the next output batch; used enforces the
	// at-most-once-per-edge batch invariant.
	batch graph.Batch
	used  map[graph.Edge]bool

	lastT  int64
	anyT   bool
	fields int // field count of the first data line; all lines must match
}

// ConvertEdgeList streams a SNAP-style text edge list from r into sink as
// timestamp-ordered batches, in memory bounded by the live-edge window plus
// one batch. Lines are:
//
//	u v          insertion at line-order time
//	u v t        insertion at time t
//	u v w t      weighted insertion at time t
//
// with '#'- or '%'-prefixed comment lines and blank lines skipped. All data
// lines must use the same field count, and timestamps must be
// non-decreasing — bounded-memory windowing is only possible over sorted
// input, so out-of-order timestamps are an error naming the line.
// Self-loops and duplicates of live edges are skipped and counted.
// Converting an input with no usable edges is an error.
func ConvertEdgeList(r io.Reader, sink Sink, opt ConvertOptions) (ConvertStats, error) {
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultConvertBatch
	}
	if opt.MaxLineBytes <= 0 {
		opt.MaxLineBytes = 16 << 20
	}
	c := &converter{
		sink: sink,
		opt:  opt,
		live: map[graph.Edge]int64{},
		used: map[graph.Edge]bool{},
	}
	c.stats.N = 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), opt.MaxLineBytes)
	for sc.Scan() {
		c.stats.Lines++
		if err := c.line(sc.Text()); err != nil {
			return c.stats, err
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return c.stats, fmt.Errorf("trace: convert: line %d: longer than %d bytes", c.stats.Lines+1, opt.MaxLineBytes)
		}
		return c.stats, fmt.Errorf("trace: convert: %w", err)
	}
	if err := c.flush(); err != nil {
		return c.stats, err
	}
	if c.stats.Updates == 0 {
		return c.stats, fmt.Errorf("trace: convert: no usable edges in %d input lines (%d duplicates, %d self-loops)",
			c.stats.Lines, c.stats.Duplicates, c.stats.SelfLoops)
	}
	return c.stats, nil
}

// line processes one input line.
func (c *converter) line(s string) error {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" || trimmed[0] == '#' || trimmed[0] == '%' {
		return nil
	}
	f := strings.Fields(trimmed)
	if c.fields == 0 {
		switch len(f) {
		case 2, 3, 4:
			c.fields = len(f)
		default:
			return fmt.Errorf("trace: convert: line %d: %d fields, want 2 (u v), 3 (u v t), or 4 (u v w t)", c.stats.Lines, len(f))
		}
	}
	if len(f) != c.fields {
		return fmt.Errorf("trace: convert: line %d: %d fields where the first data line had %d", c.stats.Lines, len(f), c.fields)
	}
	u, err := strconv.Atoi(f[0])
	if err != nil {
		return fmt.Errorf("trace: convert: line %d: bad vertex %q", c.stats.Lines, f[0])
	}
	v, err := strconv.Atoi(f[1])
	if err != nil {
		return fmt.Errorf("trace: convert: line %d: bad vertex %q", c.stats.Lines, f[1])
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("trace: convert: line %d: negative vertex in {%d,%d}", c.stats.Lines, u, v)
	}
	if u >= MaxVertices || v >= MaxVertices {
		return fmt.Errorf("trace: convert: line %d: vertex in {%d,%d} exceeds the format limit of %d", c.stats.Lines, u, v, MaxVertices)
	}
	var w int64
	t := int64(c.stats.Edges) // 2-field lines: line order is the clock
	switch c.fields {
	case 3:
		if t, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return fmt.Errorf("trace: convert: line %d: bad timestamp %q", c.stats.Lines, f[2])
		}
	case 4:
		if w, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return fmt.Errorf("trace: convert: line %d: bad weight %q", c.stats.Lines, f[2])
		}
		if w < 1 {
			return fmt.Errorf("trace: convert: line %d: weight %d, want >= 1", c.stats.Lines, w)
		}
		if t, err = strconv.ParseInt(f[3], 10, 64); err != nil {
			return fmt.Errorf("trace: convert: line %d: bad timestamp %q", c.stats.Lines, f[3])
		}
	}
	if c.anyT && t < c.lastT {
		return fmt.Errorf("trace: convert: line %d: timestamp %d after %d — input must be sorted by time (bounded-memory windowing needs non-decreasing timestamps)",
			c.stats.Lines, t, c.lastT)
	}
	c.lastT, c.anyT = t, true
	c.stats.Edges++
	if err := c.expire(t); err != nil {
		return err
	}
	if u == v {
		c.stats.SelfLoops++
		return nil
	}
	e := graph.NewEdge(u, v)
	if _, dup := c.live[e]; dup {
		c.stats.Duplicates++
		return nil
	}
	if m := e.V; m >= c.stats.N {
		c.stats.N = m + 1
	}
	if w != 0 {
		c.stats.Weighted = true
	}
	c.live[e] = w
	c.fifo = append(c.fifo, liveEdge{e: e, t: t, w: w})
	return c.emit(graph.Update{Op: graph.Insert, Edge: e, Weight: w})
}

// expire emits deletions for every live edge whose window closed before t.
func (c *converter) expire(t int64) error {
	if c.opt.Window <= 0 {
		return nil
	}
	for len(c.fifo) > 0 && c.fifo[0].t <= t-c.opt.Window {
		le := c.fifo[0]
		c.fifo = c.fifo[1:]
		if _, ok := c.live[le.e]; !ok {
			continue // already expired by an earlier window pass
		}
		delete(c.live, le.e)
		c.stats.Expired++
		if err := c.emit(graph.Update{Op: graph.Delete, Edge: le.e, Weight: le.w}); err != nil {
			return err
		}
	}
	return nil
}

// emit appends one update to the current batch, flushing first when the
// batch is full or would touch the update's edge twice.
func (c *converter) emit(up graph.Update) error {
	if len(c.batch) >= c.opt.BatchSize || c.used[up.Edge] {
		if err := c.flush(); err != nil {
			return err
		}
	}
	c.used[up.Edge] = true
	c.batch = append(c.batch, up)
	return nil
}

// flush hands the accumulated batch to the sink.
func (c *converter) flush() error {
	if len(c.batch) == 0 {
		return nil
	}
	if err := c.sink.WriteBatch(c.batch); err != nil {
		return err
	}
	c.stats.Batches++
	c.stats.Updates += len(c.batch)
	c.batch = nil
	for e := range c.used {
		delete(c.used, e)
	}
	return nil
}
