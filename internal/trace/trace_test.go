package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// mkBatches builds a deterministic stream of structurally valid batches
// over n vertices: each batch touches distinct edges, no self-loops, a few
// deletions and weights mixed in.
func mkBatches(n, batches int) []graph.Batch {
	var out []graph.Batch
	for i := 0; i < batches; i++ {
		var b graph.Batch
		for j := 0; j < 1+i%3; j++ {
			u := (i + j) % n
			v := (i + j + 1 + i%2) % n
			if u == v {
				v = (v + 1) % n
			}
			up := graph.Ins(u, v)
			if i%4 == 3 {
				up = graph.Del(u, v)
			}
			if i%5 == 2 {
				up.Weight = int64(1 + j)
			}
			b = append(b, up)
		}
		out = append(out, b)
	}
	return out
}

// writeTrace encodes batches with the given options and returns the bytes.
func writeTrace(t testing.TB, batches []graph.Batch, opt WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain pulls a reader to io.EOF.
func drain(t testing.TB, r *Reader) []graph.Batch {
	t.Helper()
	var out []graph.Batch
	for {
		b, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

// TestTraceRoundTrip writes a multi-segment trace and reads it back: the
// batch sequence, shape echo, and segment count must all survive.
func TestTraceRoundTrip(t *testing.T) {
	const n, batches, segBatches = 12, 10, 4
	in := mkBatches(n, batches)
	raw := writeTrace(t, in, WriterOptions{SegmentBatches: segBatches})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if want := (batches + segBatches - 1) / segBatches; r.Segments() != want {
		t.Errorf("Segments() = %d, want %d", r.Segments(), want)
	}
	shape := r.Shape()
	updates := 0
	maxV := -1
	for _, b := range in {
		updates += len(b)
		if m := b.MaxVertex(); m > maxV {
			maxV = m
		}
	}
	if shape.N != maxV+1 || shape.Batches != batches || shape.Updates != updates || !shape.Weighted {
		t.Errorf("Shape() = %+v, want N=%d Batches=%d Updates=%d Weighted=true", shape, maxV+1, batches, updates)
	}
	got := drain(t, r)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip changed the stream:\n got %v\nwant %v", got, in)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("exhausted reader returned %v, want io.EOF", err)
	}
}

// TestTraceWriterSkipsEmptyBatches pins the bit-identity contract with the
// text format: empty batches vanish on write, so the decoded sequence holds
// only the non-empty ones.
func TestTraceWriterSkipsEmptyBatches(t *testing.T) {
	in := []graph.Batch{{graph.Ins(0, 1)}, nil, {}, {graph.Ins(1, 2)}}
	raw := writeTrace(t, in, WriterOptions{})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, r)
	want := []graph.Batch{{graph.Ins(0, 1)}, {graph.Ins(1, 2)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want empties skipped: %v", got, want)
	}
	if r.Shape().Batches != 2 {
		t.Errorf("shape counts %d batches, want 2", r.Shape().Batches)
	}
}

// TestTraceWriterValidation covers the writer's rejection paths.
func TestTraceWriterValidation(t *testing.T) {
	t.Run("negative vertex", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bad := graph.Batch{{Op: graph.Insert, Edge: graph.Edge{U: -1, V: 2}}}
		if err := w.WriteBatch(bad); err == nil {
			t.Fatal("negative vertex accepted")
		}
	})
	t.Run("declared vertex space too small", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, WriterOptions{N: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBatch(graph.Batch{graph.Ins(0, 9)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil {
			t.Fatal("Close accepted vertex 9 in a declared space of 3")
		}
	})
	t.Run("write after close", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBatch(graph.Batch{graph.Ins(0, 1)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBatch(graph.Batch{graph.Ins(1, 2)}); err == nil {
			t.Fatal("WriteBatch after Close accepted")
		}
	})
	t.Run("declared N echoed", func(t *testing.T) {
		raw := writeTrace(t, []graph.Batch{{graph.Ins(0, 1)}}, WriterOptions{N: 64})
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Shape().N; got != 64 {
			t.Errorf("Shape().N = %d, want the declared 64", got)
		}
	})
}

// TestTraceSeekBatch checks the footer-index seek: from every batch index,
// the remaining replay must equal the original suffix, and seeking to the
// end must report io.EOF.
func TestTraceSeekBatch(t *testing.T) {
	const n, batches = 10, 11
	in := mkBatches(n, batches)
	raw := writeTrace(t, in, WriterOptions{SegmentBatches: 3})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Walk the indices out of order to exercise backward seeks too.
	order := []int{5, 0, 10, 3, 8, 1, 9, 2, 7, 4, 6}
	for _, idx := range order {
		if err := r.SeekBatch(idx); err != nil {
			t.Fatalf("SeekBatch(%d): %v", idx, err)
		}
		got := drain(t, r)
		if !reflect.DeepEqual(got, in[idx:]) {
			t.Fatalf("SeekBatch(%d): suffix of %d batches, want %d", idx, len(got), len(in)-idx)
		}
	}
	if err := r.SeekBatch(batches); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("seek to end then Next = %v, want io.EOF", err)
	}
	if err := r.SeekBatch(-1); err == nil {
		t.Error("SeekBatch(-1) accepted")
	}
	if err := r.SeekBatch(batches + 1); err == nil {
		t.Error("SeekBatch past the end accepted")
	}
}

// TestTraceResumeMatchesFullReplay mirrors the CLI resume path: a fresh
// reader seeked to the checkpoint batch must continue exactly where a
// partial replay stopped.
func TestTraceResumeMatchesFullReplay(t *testing.T) {
	const n, batches, resumeAt = 9, 13, 7
	in := mkBatches(n, batches)
	raw := writeTrace(t, in, WriterOptions{SegmentBatches: 4})
	a, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var replayed []graph.Batch
	for i := 0; i < resumeAt; i++ {
		b, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		replayed = append(replayed, b)
	}
	b2, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.SeekBatch(resumeAt); err != nil {
		t.Fatal(err)
	}
	replayed = append(replayed, drain(t, b2)...)
	if !reflect.DeepEqual(replayed, in) {
		t.Fatal("prefix + resumed suffix differs from the full stream")
	}
}

// TestTraceReplayMemoryBounded replays a trace much larger than one segment
// and asserts the O(segment) contract: the reader never buffers more than
// SegmentBatches decoded batches at once.
func TestTraceReplayMemoryBounded(t *testing.T) {
	const n, batches, segBatches = 16, 100, 8
	if batches <= segBatches {
		t.Fatal("test misconfigured: the trace must exceed the batch buffer")
	}
	in := mkBatches(n, batches)
	raw := writeTrace(t, in, WriterOptions{SegmentBatches: segBatches})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, r); len(got) != batches {
		t.Fatalf("drained %d batches, want %d", len(got), batches)
	}
	if hw := r.BufferedHighWater(); hw > segBatches {
		t.Errorf("buffered %d batches at once, O(segment) bound is %d", hw, segBatches)
	}
	// A seek into the last segment must stay bounded too.
	r2, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SeekBatch(batches - 1); err != nil {
		t.Fatal(err)
	}
	drain(t, r2)
	if hw := r2.BufferedHighWater(); hw > segBatches {
		t.Errorf("seek+drain buffered %d batches, bound is %d", hw, segBatches)
	}
}

// corruptible builds a small valid trace for the corruption tests.
func corruptible(t testing.TB) []byte {
	t.Helper()
	return writeTrace(t, mkBatches(8, 6), WriterOptions{SegmentBatches: 2})
}

// readAll opens raw as a trace and replays it to the end, returning the
// first error (NewReader or Next).
func readAll(raw []byte) error {
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestTraceRejectsTruncation cuts a valid trace at several boundaries: the
// reader must refuse each, never return a silently shortened stream.
func TestTraceRejectsTruncation(t *testing.T) {
	raw := corruptible(t)
	for _, cut := range []int{0, 1, headerBytes - 1, headerBytes, len(raw) / 2, len(raw) - trailerBytes, len(raw) - 1} {
		if err := readAll(raw[:cut]); err == nil {
			t.Errorf("trace truncated to %d of %d bytes replayed cleanly", cut, len(raw))
		}
	}
}

// TestTraceRejectsBitFlips flips one bit in every byte of a valid trace;
// each flip must surface as an error (bad magic, CRC mismatch, or a failed
// structural check) somewhere before the replay completes.
func TestTraceRejectsBitFlips(t *testing.T) {
	raw := corruptible(t)
	if err := readAll(raw); err != nil {
		t.Fatalf("pristine trace failed: %v", err)
	}
	mut := make([]byte, len(raw))
	for off := 0; off < len(raw); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			copy(mut, raw)
			mut[off] ^= bit
			if err := readAll(mut); err == nil {
				t.Fatalf("flip of bit %#x at byte %d/%d went undetected", bit, off, len(raw))
			}
		}
	}
}

// TestTraceRejectsVersionSkew bumps the header version word: readers must
// reject future formats with a diagnostic, never guess.
func TestTraceRejectsVersionSkew(t *testing.T) {
	raw := corruptible(t)
	skewed := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(skewed[8:], Version+1)
	err := readAll(skewed)
	if err == nil {
		t.Fatal("future-version trace accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("version-skew error %q does not name the version", err)
	}
}

// TestTraceRejectsForeignFile feeds non-trace bytes to the reader.
func TestTraceRejectsForeignFile(t *testing.T) {
	for _, raw := range [][]byte{
		[]byte("i 0 1\nd 0 1\n"),
		bytes.Repeat([]byte{0xff}, 96),
		make([]byte, 96),
	} {
		if err := readAll(raw); err == nil {
			t.Errorf("non-trace input of %d bytes accepted", len(raw))
		}
	}
}
