// Package trace is the at-scale ingestion format: a segmented binary
// container for update streams, plus a streaming converter from SNAP-style
// text edge lists. It exists so multi-gigabyte real-graph traces replay
// through the workload.BatchSource interface in O(segment) memory — the
// text format of internal/streamio stays the debug/interchange format.
//
// # File format
//
// A trace file is a sequence of little-endian uint64 words:
//
//	header    FileMagic ("MPCTRCF1"), Version
//	segments  one container per segment (magic SegMagic "MPCTRSG1")
//	footer    one container (magic FooterMagic "MPCTRFT1")
//	trailer   footer byte offset, TrailerMagic ("MPCTREN1")
//
// Segment and footer containers reuse the snapshot container discipline
// (internal/snapshot): magic word, format version, declared payload length,
// mpc.MessageBatch frame-encoded sections, trailing CRC-32C over the whole
// container. A truncated, bit-flipped, or version-skewed container is
// rejected with a diagnostic before a single update is handed out, segment
// by segment — corruption in segment k still lets segments 0..k-1 replay.
//
// Each segment holds up to a fixed number of batches (WriterOptions
// .SegmentBatches, default 1024) and carries:
//
//	tagSegMeta   first batch index, batch count, update count
//	tagSegBatch  one section per batch: count-prefixed (op, u, v, w) words
//
// The footer carries the shape echo (vertex count, batch/update totals,
// weighted flag) and the segment index: one (byte offset, byte length,
// first batch, batch count) entry per segment. The trailing two words let a
// reader locate the footer with one seek from the end, so Reader.SeekBatch
// positions replay at any batch by loading only the segment that contains
// it — which is how a resumed replay (mpcstream -trace -resume) continues
// from a checkpoint without re-reading the prefix.
//
// # Memory guarantees
//
// Writer buffers at most one segment of batches before encoding it;
// Reader holds at most one decoded segment. Neither ever materializes the
// stream, so replay and conversion memory are O(segment + batch),
// independent of trace size. The converter additionally holds the live-edge
// window (O(live edges)) to validate duplicates and emit expirations.
//
// # Version policy
//
// Same as internal/snapshot: the version word bumps on any incompatible
// layout change and old traces are rejected, never migrated — regenerate
// with the converter.
package trace
